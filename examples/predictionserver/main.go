// Prediction server: train an LFO admission model, serve it over TCP, and
// drive it from a client that tracks online features for a live request
// stream — the shape of a production deployment where CDN frontends
// consult a shared prediction service (Fig 7 of the paper asks whether
// this path is fast enough; see BenchmarkFig7Throughput).
//
//	go run ./examples/predictionserver
package main

import (
	"fmt"
	"log"

	"lfo"
)

func main() {
	const cacheSize = 16 << 20

	// Train an admission model on one window of CDN traffic.
	train, err := lfo.GenerateCDNMix(30000, 3)
	if err != nil {
		log.Fatal(err)
	}
	train = train.WithCosts(lfo.ObjectiveBHR)
	model, err := lfo.TrainWindowModel(train, lfo.CacheConfig{
		CacheSize:  cacheSize,
		WindowSize: train.Len(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained model: %d trees, %d leaves\n", model.NumTrees(), model.NumLeaves())

	// Serve it.
	srv := lfo.NewPredictionServer(model, 2)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("prediction server on %s\n", addr)

	// A frontend: stream fresh traffic, build online features, and ask
	// the server whether OPT would admit each object.
	client, err := lfo.DialPrediction(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	live, err := lfo.GenerateCDNMix(2000, 99)
	if err != nil {
		log.Fatal(err)
	}
	live = live.WithCosts(lfo.ObjectiveBHR)

	tracker := lfo.NewFeatureTracker(0)
	freeBytes := int64(cacheSize) // a real frontend reports its cache's free bytes

	const batch = 256
	rows := make([]float64, 0, batch*lfo.FeatureDim)
	admitted, total := 0, 0
	flush := func() {
		if len(rows) == 0 {
			return
		}
		probs, err := client.Predict(rows)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range probs {
			total++
			if p >= 0.5 {
				admitted++
			}
		}
		rows = rows[:0]
	}

	buf := make([]float64, lfo.FeatureDim)
	for _, r := range live.Requests {
		tracker.Features(r, freeBytes, buf)
		rows = append(rows, buf...)
		tracker.Update(r)
		if len(rows) == batch*lfo.FeatureDim {
			flush()
		}
	}
	flush()

	fmt.Printf("served %d predictions over TCP; model admits %.1f%% of requests\n",
		total, 100*float64(admitted)/float64(total))

	// The compact protocol: ship raw request tuples (40 bytes each) and
	// let the server track features — a tenth of the bandwidth.
	compact, err := lfo.DialPrediction(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer compact.Close()
	tuples := make([]lfo.AdmitRequest, 0, 256)
	admitted2 := 0
	for _, r := range live.Requests {
		tuples = append(tuples, lfo.AdmitRequest{
			Time: r.Time, ID: uint64(r.ID), Size: r.Size, Cost: r.Cost, Free: freeBytes,
		})
		if len(tuples) == cap(tuples) {
			probs, err := compact.Admit(tuples)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range probs {
				if p >= 0.5 {
					admitted2++
				}
			}
			tuples = tuples[:0]
		}
	}
	if len(tuples) > 0 {
		probs, err := compact.Admit(tuples)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range probs {
			if p >= 0.5 {
				admitted2++
			}
		}
	}
	fmt.Printf("compact protocol (server-side feature tracking) admits %.1f%% — same decisions, ~10x less wire traffic\n",
		100*float64(admitted2)/float64(live.Len()))
}
