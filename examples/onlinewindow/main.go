// Online adaptation: demonstrate LFO's sliding-window retraining (Fig 2
// of the paper) through the traffic events built into the CDN mix — a
// software-download flash crowd ("iOS update day") at 50% of the trace,
// its subsidence at 65%, and a load-balancer shift at 80% that replaces
// the entire hot web set. The per-window byte hit ratios show LFO
// retraining into each new mix while the non-learning baselines ride
// their fixed heuristics.
//
//	go run ./examples/onlinewindow
package main

import (
	"fmt"
	"log"

	"lfo"
)

func main() {
	const (
		requests  = 120000
		cacheSize = 16 << 20
		window    = 15000
	)

	// The standard mixed CDN workload: web, photos, video and software
	// downloads, with the three drift events described above.
	tr, err := lfo.GenerateCDNMix(requests, 11)
	if err != nil {
		log.Fatal(err)
	}
	tr = tr.WithCosts(lfo.ObjectiveBHR)

	cache, err := lfo.NewCache(lfo.CacheConfig{CacheSize: cacheSize, WindowSize: window})
	if err != nil {
		log.Fatal(err)
	}
	lru, err := lfo.NewPolicy("lru", cacheSize, 1)
	if err != nil {
		log.Fatal(err)
	}
	s4, err := lfo.NewPolicy("s4lru", cacheSize, 1)
	if err != nil {
		log.Fatal(err)
	}

	opts := lfo.SimOptions{WindowSize: window}
	lfoM := lfo.Simulate(tr, cache, opts)
	lruM := lfo.Simulate(tr, lru, opts)
	s4M := lfo.Simulate(tr, s4, opts)

	events := map[int]string{
		requests / 2:        "  <- download flash crowd begins",
		requests * 65 / 100: "  <- flash crowd subsides",
		requests * 80 / 100: "  <- load balancer replaces hot web set",
	}

	fmt.Println("per-window byte hit ratio on the drifting CDN mix:")
	fmt.Println()
	fmt.Printf("%-10s %8s %8s %8s\n", "window", "LFO", "LRU", "S4LRU")
	for i := range lfoM.Windows {
		start := lfoM.Windows[i].Start
		marker := ""
		for at, label := range events {
			if start <= at && at < start+window {
				marker = label
			}
		}
		fmt.Printf("@%-9d %8.4f %8.4f %8.4f%s\n",
			start, lfoM.Windows[i].BHR(), lruM.Windows[i].BHR(), s4M.Windows[i].BHR(), marker)
	}
	fmt.Println()
	fmt.Printf("overall: LFO %.4f  LRU %.4f  S4LRU %.4f  (LFO windows trained: %d)\n",
		lfoM.BHR(), lruM.BHR(), s4M.BHR(), cache.Windows())
	fmt.Println()
	fmt.Println("LFO's first window is an admit-all LRU bootstrap; every later window")
	fmt.Println("runs the model trained on the previous one, so the policy re-learns a")
	fmt.Println("shifted mix within one window (paper §1: \"content mix changes can")
	fmt.Println("happen within minutes\").")
}
