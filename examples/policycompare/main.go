// Policy comparison: replay one CDN trace against every caching system in
// the repository — the paper's Figure 6 line-up plus extras — and print a
// leaderboard with the offline-optimal (OPT) bound on top.
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"log"
	"sort"

	"lfo"
)

func main() {
	const (
		requests  = 80000
		cacheSize = 32 << 20
		warmup    = 20000
	)
	tr, err := lfo.GenerateCDNMix(requests, 7)
	if err != nil {
		log.Fatal(err)
	}
	tr = tr.WithCosts(lfo.ObjectiveBHR)

	type row struct {
		name     string
		bhr, ohr float64
	}
	var rows []row

	// Baseline heuristics.
	for _, name := range lfo.PolicyNames() {
		p, err := lfo.NewPolicy(name, cacheSize, 7)
		if err != nil {
			log.Fatal(err)
		}
		m := lfo.Simulate(tr, p, lfo.SimOptions{Warmup: warmup})
		rows = append(rows, row{m.Policy, m.BHR(), m.OHR()})
	}

	// The LFO learning cache.
	cache, err := lfo.NewCache(lfo.CacheConfig{CacheSize: cacheSize, WindowSize: warmup})
	if err != nil {
		log.Fatal(err)
	}
	m := lfo.Simulate(tr, cache, lfo.SimOptions{Warmup: warmup})
	rows = append(rows, row{"LFO", m.BHR(), m.OHR()})

	// The offline-optimal bound over the measured portion.
	optRes, err := lfo.ComputeOPT(tr.Slice(warmup, tr.Len()), lfo.OPTConfig{CacheSize: cacheSize})
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].bhr > rows[j].bhr })
	fmt.Printf("%-12s %8s %8s\n", "policy", "BHR", "OHR")
	fmt.Printf("%-12s %8.4f %8.4f   (offline bound)\n", "OPT", optRes.BHR(), optRes.OHR())
	for _, r := range rows {
		marker := ""
		if r.name == "LFO" {
			marker = "   <- learned from OPT"
		}
		fmt.Printf("%-12s %8.4f %8.4f%s\n", r.name, r.bhr, r.ohr, marker)
	}
}
