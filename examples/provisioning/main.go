// Cache provisioning: compute the exact LRU miss-ratio curve for a CDN
// workload in one pass (Mattson's stack algorithm, byte-weighted), sample
// the offline-optimal bound at selected sizes, and report how much cache
// an LFO deployment would need to match LRU at a given hit-ratio target —
// the provisioning question §5 of the paper raises via footprint
// descriptors.
//
//	go run ./examples/provisioning
package main

import (
	"fmt"
	"log"

	"lfo"
)

func main() {
	tr, err := lfo.GenerateCDNMix(60000, 21)
	if err != nil {
		log.Fatal(err)
	}
	tr = tr.WithCosts(lfo.ObjectiveBHR)

	curve := lfo.ComputeMRC(tr)
	fmt.Printf("working set saturates LRU at %d MiB\n\n", curve.MaxUseful()>>20)

	sizes := lfo.LogCacheSizes(4<<20, 512<<20, 8)
	optPts, err := lfo.ComputeOPTCurve(tr, sizes, lfo.OPTConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %10s %14s\n", "cache", "LRU BHR", "OPT BHR", "OPT headroom")
	for i, s := range sizes {
		lruBHR := curve.BHR(s)
		headroom := "-"
		if lruBHR > 0 {
			headroom = fmt.Sprintf("%.2fx", optPts[i].BHR/lruBHR)
		}
		fmt.Printf("%-10s %10.4f %10.4f %14s\n",
			fmt.Sprintf("%dMiB", s>>20), lruBHR, optPts[i].BHR, headroom)
	}

	// Provisioning question: how much LRU cache buys the hit ratio OPT
	// achieves at a mid-range size? Binary-search the exact curve.
	ref := len(sizes) / 2
	target := optPts[ref].BHR
	lo, hi := sizes[ref], curve.MaxUseful()
	for lo < hi {
		mid := (lo + hi) / 2
		if curve.BHR(mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	fmt.Printf("\nTo match OPT's BHR at %dMiB (%.4f), plain LRU needs ≈%dMiB —\n",
		sizes[ref]>>20, target, lo>>20)
	fmt.Printf("a %.1fx provisioning gap that a better policy can close in software.\n",
		float64(lo)/float64(sizes[ref]))
}
