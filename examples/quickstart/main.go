// Quickstart: generate a synthetic CDN trace, run the LFO learning cache
// on it, and compare its byte hit ratio against plain LRU.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lfo"
)

func main() {
	// A mixed CDN workload: web pages, photos, video segments and
	// software downloads, with a mid-trace flash crowd.
	tr, err := lfo.GenerateCDNMix(60000, 1)
	if err != nil {
		log.Fatal(err)
	}
	tr = tr.WithCosts(lfo.ObjectiveBHR)

	const cacheSize = 32 << 20 // 32 MiB

	// The LFO cache: every 15000 requests it computes OPT's decisions
	// for the window just served, trains a boosted decision tree to
	// imitate them, and uses the model for admission and eviction.
	cache, err := lfo.NewCache(lfo.CacheConfig{
		CacheSize:  cacheSize,
		WindowSize: 15000,
		OnRetrain: func(s lfo.RetrainStats) {
			fmt.Printf("window %d trained: %d samples, %.1f%% admitted by OPT, %.1f%% train accuracy\n",
				s.Window, s.Samples, 100*s.PositiveRate, 100*s.TrainAccuracy)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := lfo.SimOptions{Warmup: 15000} // skip the bootstrap window
	lfoMetrics := lfo.Simulate(tr, cache, opts)

	lru, err := lfo.NewPolicy("lru", cacheSize, 1)
	if err != nil {
		log.Fatal(err)
	}
	lruMetrics := lfo.Simulate(tr, lru, opts)

	fmt.Println()
	fmt.Printf("%-6s  BHR %.4f  OHR %.4f\n", "LFO", lfoMetrics.BHR(), lfoMetrics.OHR())
	fmt.Printf("%-6s  BHR %.4f  OHR %.4f\n", "LRU", lruMetrics.BHR(), lruMetrics.OHR())
	fmt.Printf("\nLFO improves BHR by %.1f%% over LRU\n",
		100*(lfoMetrics.BHR()-lruMetrics.BHR())/lruMetrics.BHR())
}
