// Package lfo is the public API of the LFO repository — a Go
// implementation of "Towards Lightweight and Robust Machine Learning for
// CDN Caching" (Berger, HotNets-XVII, 2018).
//
// LFO (Learning From OPT) reduces cache admission to supervised learning:
// it computes the offline-optimal caching decisions (OPT) for a sliding
// window of requests via a min-cost-flow model, trains a boosted decision
// tree to imitate OPT from online features, and uses the model as the
// cache's admission and eviction-ranking policy for the next window.
//
// Quick start:
//
//	tr, _ := lfo.GenerateCDNMix(100000, 1)
//	cache, _ := lfo.NewCache(lfo.CacheConfig{CacheSize: 64 << 20})
//	m := lfo.Simulate(tr, cache, lfo.SimOptions{Warmup: 25000})
//	fmt.Printf("byte hit ratio: %.3f\n", m.BHR())
//
// The façade re-exports the pieces a downstream user needs: trace model
// and I/O, the synthetic CDN workload generator, the baseline policy zoo,
// the simulator, OPT computation, and the TCP prediction service. The
// full implementation lives under internal/; see DESIGN.md for the map.
package lfo

import (
	"io"
	"net"

	"lfo/internal/core"
	"lfo/internal/features"
	"lfo/internal/fleet"
	"lfo/internal/gbdt"
	"lfo/internal/gen"
	"lfo/internal/mrc"
	"lfo/internal/obs"
	"lfo/internal/opt"
	"lfo/internal/policy"
	"lfo/internal/server"
	"lfo/internal/sim"
	"lfo/internal/tiered"
	"lfo/internal/trace"
)

// Trace model (see internal/trace).
type (
	// Request is a single trace request.
	Request = trace.Request
	// ObjectID identifies a cached object.
	ObjectID = trace.ObjectID
	// Trace is an ordered request sequence.
	Trace = trace.Trace
	// Objective selects how retrieval costs are assigned (BHR/OHR/cost).
	Objective = trace.Objective
)

// Cost objectives.
const (
	ObjectiveBHR  = trace.ObjectiveBHR
	ObjectiveOHR  = trace.ObjectiveOHR
	ObjectiveCost = trace.ObjectiveCost
)

// ReadTrace parses a webcachesim-style text trace ("time id size [cost]").
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// WriteTrace writes a trace in the text format understood by ReadTrace.
func WriteTrace(w io.Writer, t *Trace) error { return trace.Write(w, t) }

// ReadTraceFile reads a text trace from a file.
func ReadTraceFile(path string) (*Trace, error) { return trace.ReadFile(path) }

// WriteTraceFile writes a text trace to a file.
func WriteTraceFile(path string, t *Trace) error { return trace.WriteFile(path, t) }

// Workload generation (see internal/gen). The generator substitutes for
// the paper's proprietary production trace; see DESIGN.md.

// GenConfig parameterizes the synthetic CDN workload generator.
type GenConfig = gen.Config

// Workload building blocks for custom GenConfigs.
type (
	// GenClass is one content class (popularity skew, sizes, weight).
	GenClass = gen.ContentClass
	// DriftEvent changes the traffic mix mid-trace.
	DriftEvent = gen.DriftEvent
	// SizeModel draws object sizes.
	SizeModel = gen.SizeModel
	// LogNormalSize models web-object bodies.
	LogNormalSize = gen.LogNormalSize
	// ParetoSize models heavy-tailed large objects.
	ParetoSize = gen.ParetoSize
	// FixedSize yields constant sizes.
	FixedSize = gen.FixedSize
	// UniformSize yields uniform sizes.
	UniformSize = gen.UniformSize
)

// GenerateTrace produces a synthetic trace from a full generator config.
func GenerateTrace(cfg GenConfig) (*Trace, error) { return gen.Generate(cfg) }

// GenerateCDNMix produces the standard mixed-content CDN workload
// (web + photo + video + software downloads, with mid-trace drift).
func GenerateCDNMix(requests int, seed int64) (*Trace, error) {
	return gen.Generate(gen.CDNMix(requests, seed))
}

// GenerateWebMix produces a single-class web workload.
func GenerateWebMix(requests int, seed int64) (*Trace, error) {
	return gen.Generate(gen.WebMix(requests, seed))
}

// Simulation (see internal/sim).
type (
	// Policy is a complete caching system (admission + eviction).
	Policy = sim.Policy
	// Metrics holds simulation results (BHR, OHR, miss cost).
	Metrics = sim.Metrics
	// SimOptions tunes warmup and windowed metrics.
	SimOptions = sim.Options
)

// Simulate replays a trace against a policy.
func Simulate(tr *Trace, p Policy, opts SimOptions) *Metrics {
	return sim.Run(tr, p, opts)
}

// Baseline policies (see internal/policy).

// NewPolicy constructs a baseline policy by name; see PolicyNames.
func NewPolicy(name string, capacity, seed int64) (Policy, error) {
	return policy.New(name, capacity, seed)
}

// PolicyNames lists the available baseline policy names.
func PolicyNames() []string { return policy.Names() }

// The LFO cache (see internal/core).
type (
	// CacheConfig parameterizes an LFO cache.
	CacheConfig = core.Config
	// Cache is the online-learning LFO cache; it implements Policy.
	Cache = core.LFO
	// RetrainStats describes one retraining round.
	RetrainStats = core.RetrainStats
)

// CutoffAdmitAll is the CacheConfig.Cutoff sentinel for an effective
// admission cutoff of exactly 0 (a literal 0 means "unset" → 0.5).
const CutoffAdmitAll = core.CutoffAdmitAll

// NewCache returns an LFO cache. Until its first window completes it
// bootstraps as admit-all LRU.
func NewCache(cfg CacheConfig) (*Cache, error) { return core.New(cfg) }

// Observability (see internal/obs).
type (
	// MetricsRegistry collects atomic counters, gauges and latency
	// histograms from the cache, simulator, OPT solver and prediction
	// server. Pass one via CacheConfig.Obs, SimOptions.Obs,
	// OPTConfig.Obs or PredictionServer.Obs; recording is lock- and
	// allocation-free and a nil registry disables it entirely.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time view of a MetricsRegistry.
	MetricsSnapshot = obs.Snapshot
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ServeDebug binds addr with an HTTP listener serving /metrics (flat
// "name value" text), /debug/vars (expvar) and /debug/pprof/ for the
// registry. It returns the bound address and a stop function.
func ServeDebug(addr string, r *MetricsRegistry) (net.Addr, func() error, error) {
	return obs.ServeDebug(addr, r)
}

// OPT computation (see internal/opt).
type (
	// OPTConfig parameterizes the offline-optimal computation.
	OPTConfig = opt.Config
	// OPTResult holds OPT's per-request decisions and hit ratios.
	OPTResult = opt.Result
)

// OPT algorithm selectors.
const (
	OPTAuto   = opt.AlgoAuto
	OPTFlow   = opt.AlgoFlow
	OPTGreedy = opt.AlgoGreedy
)

// ComputeOPT derives the offline-optimal caching decisions for a trace.
func ComputeOPT(tr *Trace, cfg OPTConfig) (*OPTResult, error) {
	return opt.Compute(tr, cfg)
}

// Learned models (see internal/gbdt).
type (
	// Model is a trained boosted-tree admission classifier.
	Model = gbdt.Model
	// ModelParams configures training.
	ModelParams = gbdt.Params
)

// DefaultModelParams returns LightGBM-style defaults with the paper's 30
// boosting iterations.
func DefaultModelParams() ModelParams { return gbdt.DefaultParams() }

// TrainWindowModel trains an admission model on one trace window, the
// offline equivalent of LFO's Figure 2 pipeline. It returns the model.
func TrainWindowModel(tr *Trace, cfg CacheConfig) (*Model, error) {
	m, _, err := core.TrainOnWindow(tr, cfg)
	return m, err
}

// LoadModel deserializes a model written by Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return gbdt.Load(r) }

// Feature tracking (see internal/features).

// FeatureDim is the width of LFO's feature vectors: size, cost, free
// bytes, and the last 50 request gaps (§2.2 of the paper).
const FeatureDim = features.Dim

// FeatureTracker maintains the per-object request history behind LFO's
// online features. Use it to build feature rows for Model.Predict or the
// prediction service.
type FeatureTracker = features.Tracker

// NewFeatureTracker returns a tracker bounded to maxObjects tracked
// objects (0 = unbounded).
func NewFeatureTracker(maxObjects int) *FeatureTracker {
	return features.NewTracker(maxObjects)
}

// FeatureNames returns human-readable names for each feature position.
func FeatureNames() []string { return features.Names() }

// Miss-ratio curves (see internal/mrc) — the cache-provisioning view §5
// of the paper points to.
type (
	// MRC is an exact LRU hit-ratio-vs-cache-size curve.
	MRC = mrc.Curve
	// MRCPoint is one (size, hit ratio) sample.
	MRCPoint = mrc.Point
)

// ComputeMRC builds the exact LRU miss-ratio curve for a trace in one
// O(n log n) pass.
func ComputeMRC(tr *Trace) *MRC { return mrc.ComputeLRU(tr) }

// ComputeOPTCurve samples the offline-optimal hit ratios at each size.
func ComputeOPTCurve(tr *Trace, sizes []int64, cfg OPTConfig) ([]MRCPoint, error) {
	return mrc.ComputeOPT(tr, sizes, cfg)
}

// LogCacheSizes returns k cache sizes geometrically spaced in [lo, hi].
func LogCacheSizes(lo, hi int64, k int) []int64 { return mrc.LogSizes(lo, hi, k) }

// Tiered caching (see internal/tiered) — §5's hierarchical model.
type (
	// Tier is one storage level of a TieredCache.
	Tier = tiered.Tier
	// TieredCache is a RAM/SSD/HDD-style hierarchical cache.
	TieredCache = tiered.TieredCache
	// Admitter is the level-one cache-at-all decision.
	Admitter = tiered.Admitter
	// Placer is the level-two tier-placement decision.
	Placer = tiered.Placer
)

// NewTieredCache builds a hierarchical cache; see tiered.New.
func NewTieredCache(tiers []Tier, admitter Admitter, placer Placer) (*TieredCache, error) {
	return tiered.New(tiers, admitter, placer)
}

// NewModelAdmitter wraps a trained LFO model as a tiered-cache admitter.
func NewModelAdmitter(m *Model, cutoff float64) Admitter {
	return tiered.NewModelAdmitter(m, cutoff)
}

// PlaceByLikelihood places hot predictions in tier 0, lukewarm in tier 1,
// the rest in tier 2.
func PlaceByLikelihood(hot, warm float64) Placer { return tiered.PlaceByLikelihood(hot, warm) }

// PlaceBySize places objects into the first tier whose bound fits them.
func PlaceBySize(bounds ...int64) Placer { return tiered.PlaceBySize(bounds...) }

// Prediction service (see internal/server).
type (
	// PredictionServer serves admission likelihoods over TCP.
	PredictionServer = server.Server
	// PredictionClient talks to a PredictionServer.
	PredictionClient = server.Client
	// PredictionClientConfig tunes the client's per-attempt timeout and
	// bounded retry/backoff.
	PredictionClientConfig = server.ClientConfig
	// DegradeEvent describes one serving-path degradation (timeout,
	// limit rejection, accept error, drain force-close); see
	// PredictionServer.OnDegrade.
	DegradeEvent = server.DegradeEvent
	// AdmitRequest is one raw request tuple for the compact protocol
	// (the server tracks feature history per connection).
	AdmitRequest = server.AdmitRequest
)

// NewPredictionServer returns a TCP prediction server for the model.
func NewPredictionServer(m *Model, workers int) *PredictionServer {
	return server.New(m, workers)
}

// DialPrediction connects to a prediction server with default robustness
// settings (per-attempt timeout, bounded retries with backoff).
func DialPrediction(addr string) (*PredictionClient, error) { return server.Dial(addr) }

// DialPredictionConfig connects to a prediction server with explicit
// robustness settings.
func DialPredictionConfig(addr string, cfg PredictionClientConfig) (*PredictionClient, error) {
	return server.DialConfig(addr, cfg)
}

// Graceful degradation (see internal/core and internal/policy).
type (
	// RemoteAdmitter consults a PredictionServer for admission and falls
	// back to a local heuristic when the remote path fails; it
	// implements Admitter.
	RemoteAdmitter = core.RemoteAdmitter
	// RemoteAdmitterConfig tunes cutoff, fallback and metrics.
	RemoteAdmitterConfig = core.RemoteAdmitterConfig
	// SecondHitCensor admits objects on their second request within
	// recent (bounded) history — the degraded-mode heuristic.
	SecondHitCensor = policy.SecondHitCensor
)

// NewRemoteAdmitter wires a prediction client to a fallback heuristic.
func NewRemoteAdmitter(remote core.RemotePredictor, cfg RemoteAdmitterConfig) (*RemoteAdmitter, error) {
	return core.NewRemoteAdmitter(remote, cfg)
}

// NewSecondHitCensor returns a bounded second-hit admission heuristic
// (maxIDs 0 = default bound, negative = unbounded).
func NewSecondHitCensor(maxIDs int) *SecondHitCensor { return policy.NewSecondHitCensor(maxIDs) }

// Fleet serving (see internal/fleet): a consistent-hash ring shards
// objects across N prediction servers and a client-side router coalesces
// admission rows into per-shard batches pipelined over multiplexed
// connections, with per-shard failover to a local heuristic.
type (
	// FleetConfig parameterizes a FleetRouter (shard addresses, batch
	// size, pipeline window, failover knobs).
	FleetConfig = fleet.Config
	// FleetRouter batches and routes admission rows to a shard fleet.
	FleetRouter = fleet.Router
	// FleetRing is the consistent-hash ring mapping objects to shards.
	FleetRing = fleet.Ring
)

// NewFleetRouter dials every shard in cfg.Addrs and returns a router.
// Unreachable shards start in failed-over state and are re-admitted by
// the probe cycle; only a fully unreachable fleet is an error.
func NewFleetRouter(cfg FleetConfig) (*FleetRouter, error) { return fleet.NewRouter(cfg) }

// NewFleetRing returns a consistent-hash ring over shards 0..shards-1
// with the given virtual-node count per shard (0 = default).
func NewFleetRing(shards, replicas int) *FleetRing { return fleet.NewRing(shards, replicas) }
