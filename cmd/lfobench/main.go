// Command lfobench regenerates the paper's evaluation figures (§3) and
// the ablation studies. Each figure prints as a text table; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// Usage:
//
//	lfobench -fig all                 # every figure at default scale
//	lfobench -fig 6 -scale quick      # Fig 6 at CI scale
//	lfobench -fig 5c -seeds 100       # full seed sweep
//	lfobench -fig ablate              # all ablation studies
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lfo/internal/cliutil"
	"lfo/internal/experiments"
	"lfo/internal/obs"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure: 1, 5a, 5b, 5c, 6, 7, 8, acc, evict, drift, tiered, robust, ablate, or all")
		scale   = flag.String("scale", "default", "harness scale: quick or default")
		seeds   = flag.Int("seeds", 100, "seed count for Fig 5c")
		repeats = flag.Int("repeats", 3, "subset repeats for Fig 5b")
		seed    = flag.Int64("seed", 42, "base seed")
		sizeStr = flag.String("size", "", "override cache size (e.g. 64m)")
		reqs    = flag.Int("n", 0, "override trace length")
		workers = flag.Int("workers", 0, "goroutines for LFO training/scoring and OPT labeling: 0=all cores, 1=sequential")
		showObs = flag.Bool("obs", false, "print the observability snapshot (internal/obs counters) after the figures")
	)
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.Quick()
	case "default":
		cfg = experiments.Default()
	default:
		fatalf("unknown -scale %q", *scale)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	var reg *obs.Registry
	if *showObs {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	if *sizeStr != "" {
		size, err := cliutil.ParseBytes(*sizeStr)
		if err != nil || size <= 0 {
			fatalf("bad -size %q: %v", *sizeStr, err)
		}
		cfg.CacheSize = size
	}
	if *reqs > 0 {
		cfg.Requests = *reqs
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	ran := false

	run := func(names []string, fn func() error) {
		for _, n := range names {
			if all || want[n] {
				ran = true
				if err := fn(); err != nil {
					fatalf("%s: %v", n, err)
				}
				fmt.Println()
				return
			}
		}
	}

	run([]string{"1"}, func() error {
		rs, err := experiments.Fig1(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Fig1Table(rs))
		return nil
	})
	run([]string{"acc"}, func() error {
		res, err := experiments.Accuracy(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("== §3 headline: prediction accuracy ==\n")
		fmt.Printf("accuracy: %.2f%% (paper: >93%%)\n", 100*res.Accuracy)
		fmt.Printf("FP rate:  %.2f%%   FN rate: %.2f%%\n",
			100*res.Eval.FalsePositiveRate, 100*res.Eval.FalseNegativeRate)
		fmt.Printf("windows:  train %d, eval %d requests\n", res.TrainWindow, res.EvalWindow)
		return nil
	})
	run([]string{"5a"}, func() error {
		pts, err := experiments.Fig5a(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Fig5aTable(pts))
		return nil
	})
	run([]string{"5b"}, func() error {
		pts, err := experiments.Fig5b(cfg, nil, *repeats)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Fig5bTable(pts))
		return nil
	})
	run([]string{"5c"}, func() error {
		res, err := experiments.Fig5c(cfg, *seeds)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Fig5cTable(res))
		return nil
	})
	run([]string{"6"}, func() error {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Fig6Table(res, cfg.Objective.String()))
		return nil
	})
	run([]string{"7"}, func() error {
		pts, err := experiments.Fig7(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Fig7Table(pts))
		return nil
	})
	run([]string{"8"}, func() error {
		entries, _, err := experiments.Fig8(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Fig8Table(entries))
		return nil
	})
	run([]string{"evict"}, func() error {
		rs, err := experiments.EvictionGrid(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.EvictionGridTable(rs))
		return nil
	})
	run([]string{"drift"}, func() error {
		rs, err := experiments.DriftGrid(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.DriftGridTable(rs))
		return nil
	})
	run([]string{"tiered"}, func() error {
		rs, err := experiments.TieredExperiment(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.TieredTable(rs))
		return nil
	})
	run([]string{"robust"}, func() error {
		rs, err := experiments.Robustness(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RobustnessTable(rs))
		return nil
	})
	run([]string{"ablate"}, func() error {
		rf, err := experiments.AblationRankFraction(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AblationRankFractionTable(rf))
		fmt.Println()
		fv, err := experiments.AblationFeatureVariants(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AblationFeatureVariantsTable(fv))
		fmt.Println()
		pd, err := experiments.AblationPolicyDesign(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AblationPolicyDesignTable(pd))
		fmt.Println()
		it, err := experiments.AblationIterations(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AblationIterationsTable(it))
		return nil
	})

	if !ran {
		fatalf("unknown -fig %q (want 1, 5a, 5b, 5c, 6, 7, 8, acc, evict, drift, tiered, robust, ablate or all)", *fig)
	}
	if reg != nil {
		fmt.Println("observability snapshot:")
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			fatalf("write snapshot: %v", err)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lfobench: "+format+"\n", args...)
	os.Exit(1)
}
