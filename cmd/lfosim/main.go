// Command lfosim replays a request trace against a caching policy — any
// of the baseline heuristics or the LFO learning cache — and reports the
// byte and object hit ratios.
//
// Usage:
//
//	lfosim -policy lfo -size 256m -trace trace.txt
//	lfosim -policy s4lru -size 64m -gen cdn -n 200000
//	lfosim -policy all -size 64m -gen cdn -n 100000 -warmup 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"lfo/internal/cliutil"
	"lfo/internal/core"
	"lfo/internal/evict"
	"lfo/internal/gen"
	"lfo/internal/obs"
	"lfo/internal/opt"
	"lfo/internal/policy"
	"lfo/internal/policy/ogd"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (text format); mutually exclusive with -gen")
		genMix    = flag.String("gen", "", "generate a synthetic trace instead: cdn or web")
		n         = flag.Int("n", 100000, "generated trace length (with -gen)")
		seed      = flag.Int64("seed", 1, "seed for generation and randomized policies")
		name      = flag.String("policy", "lru", "policy name, 'lfo', or 'all' (see -list)")
		list      = flag.Bool("list", false, "list available policies and exit")
		sizeStr   = flag.String("size", "64m", "cache size (e.g. 64m, 1g)")
		objective = flag.String("objective", "bhr", "cost objective: bhr, ohr or cost")
		warmup    = flag.Int("warmup", 0, "requests excluded from metrics")
		window    = flag.Int("window", 50000, "training window for lfo and evict policies")
		evictMode = flag.String("evict", "", "eviction mechanism: rank|learned|gdsf|lru for -policy lfo (default rank), learned|gdsf|lru for -policy evict (default learned)")
		admit     = flag.String("admit", "admit-all", "admission side for -policy evict: admit-all or second-hit")
		workers   = flag.Int("workers", 0, "goroutines for LFO training/scoring and OPT labeling: 0=all cores, 1=sequential")
		ogdEta    = flag.Float64("ogd", 0, "OGD gradient step scale for -policy ogd and the lfo hybrid shadow learner (0 = default)")
		hybridLR  = flag.Float64("hybrid-lr", 0, "per-size-class bias learning rate for -policy lfo: > 0 enables the online-learning bridge")
		driftThr  = flag.Float64("drift-threshold", 0, "PSI threshold for -policy lfo: > 0 enables the drift detector and early-retrain trigger")
		series    = flag.Int("series", 0, "also print per-window metrics every N requests")
		showObs   = flag.Bool("obs", false, "print the observability snapshot (internal/obs counters) after the run")
	)
	flag.Parse()

	if *list {
		fmt.Println("baseline policies:", policy.Names())
		fmt.Println("learning cache:    lfo (eviction via -evict: rank, learned, gdsf, lru)")
		fmt.Println("combined cache:    evict (-admit admit-all|second-hit, -evict learned|gdsf|lru)")
		return
	}

	size, err := cliutil.ParseBytes(*sizeStr)
	if err != nil || size <= 0 {
		fatalf("bad -size %q: %v", *sizeStr, err)
	}
	obj, err := trace.ParseObjective(*objective)
	if err != nil {
		fatalf("%v", err)
	}

	tr, err := loadTrace(*tracePath, *genMix, *n, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	tr = tr.WithCosts(obj)

	var reg *obs.Registry
	if *showObs {
		reg = obs.NewRegistry()
	}
	opts := sim.Options{Warmup: *warmup, WindowSize: *series, Obs: reg}
	names := []string{*name}
	if *name == "all" {
		names = append(policy.Names(), "lfo")
	}

	var results []*sim.Metrics
	for _, pn := range names {
		p, err := makePolicy(pn, size, *seed, *window, *workers, *evictMode, *admit, bridgeFlags{eta: *ogdEta, lr: *hybridLR, threshold: *driftThr}, reg)
		if err != nil {
			fatalf("%v", err)
		}
		m := sim.Run(tr, p, opts)
		results = append(results, m)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].BHR() > results[j].BHR() })

	fmt.Printf("trace: %d requests, cache %s, objective %s, warmup %d\n",
		tr.Len(), cliutil.FormatBytes(size), obj, *warmup)
	fmt.Printf("%-12s %8s %8s %12s\n", "policy", "BHR", "OHR", "miss cost")
	for _, m := range results {
		fmt.Printf("%-12s %8.4f %8.4f %12.0f\n", m.Policy, m.BHR(), m.OHR(), m.MissCost)
		for _, w := range m.Windows {
			fmt.Printf("  window@%-8d BHR=%.4f OHR=%.4f misscost=%.0f\n", w.Start, w.BHR(), w.OHR(), w.MissCost)
		}
	}
	if reg != nil {
		fmt.Println("observability snapshot:")
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			fatalf("write snapshot: %v", err)
		}
	}
}

func loadTrace(path, mix string, n int, seed int64) (*trace.Trace, error) {
	switch {
	case path != "" && mix != "":
		return nil, fmt.Errorf("-trace and -gen are mutually exclusive")
	case path != "":
		return trace.ReadFile(path)
	case mix == "cdn":
		return gen.Generate(gen.CDNMix(n, seed))
	case mix == "web":
		return gen.Generate(gen.WebMix(n, seed))
	case mix != "":
		return nil, fmt.Errorf("unknown -gen mix %q", mix)
	default:
		return nil, fmt.Errorf("need -trace FILE or -gen MIX")
	}
}

// bridgeFlags carries the online-learning-bridge knobs: the OGD step
// scale, the hybrid bias learning rate, and the drift trigger threshold.
type bridgeFlags struct {
	eta, lr, threshold float64
}

func makePolicy(name string, size, seed int64, window, workers int, evictMode, admit string, bridge bridgeFlags, reg *obs.Registry) (sim.Policy, error) {
	switch name {
	case "lfo":
		return core.New(core.Config{
			CacheSize:      size,
			WindowSize:     window,
			OPT:            opt.Config{Algorithm: opt.AlgoAuto, RankFraction: 0.5},
			Workers:        workers,
			Eviction:       evictMode,
			Seed:           seed,
			OGDEta:         bridge.eta,
			HybridLR:       bridge.lr,
			DriftThreshold: bridge.threshold,
			Obs:            reg,
		})
	case "ogd":
		// Registered in the baseline table too, but the -ogd step-scale
		// override only reaches it through this explicit construction.
		return ogd.New(ogd.Config{CacheSize: size, Eta: bridge.eta})
	case "evict":
		cfg := evict.Config{
			CacheSize:  size,
			Eviction:   evictMode,
			Seed:       seed,
			WindowSize: window,
			Workers:    workers,
			Obs:        reg,
		}
		switch admit {
		case "", "admit-all":
		case "second-hit":
			cfg.Admitter = policy.NewSecondHitCensor(0)
			cfg.AdmitterName = "second-hit"
		default:
			return nil, fmt.Errorf("unknown -admit %q (want admit-all or second-hit)", admit)
		}
		return evict.New(cfg)
	}
	return policy.New(name, size, seed)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lfosim: "+format+"\n", args...)
	os.Exit(1)
}
