// Command lfoload is the saturation load harness for a prediction fleet:
// M concurrent clients drive admission batches at one or more predserve
// shards and report throughput (rows/sec) and batch latency quantiles
// (p50/p99) as JSON. It exists to answer the deployment question behind
// the paper's Fig 7 — how many admission decisions per second one fleet
// sustains — and to put numbers on the pipelined router against the
// classic synchronous client.
//
// Usage:
//
//	lfoload -addrs 127.0.0.1:7070 -mode sync -clients 4 -rows 20000
//	lfoload -addrs 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072 \
//	        -mode router -clients 4 -rows 200000
//
// Modes:
//
//	router — each client runs a fleet.Router over all shards: per-shard
//	         batches, pipelined over multiplexed connections.
//	sync   — each client runs a classic server.Client against one shard
//	         (round-robin), one row per round trip: the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"lfo/internal/fleet"
	"lfo/internal/obs"
	"lfo/internal/server"
)

func main() {
	var (
		addrs      = flag.String("addrs", "127.0.0.1:7070", "comma-separated shard addresses")
		mode       = flag.String("mode", "router", "router (pipelined fleet) or sync (classic client baseline)")
		clients    = flag.Int("clients", 4, "concurrent load clients")
		rows       = flag.Int("rows", 20000, "admission rows per client")
		batch      = flag.Int("batch", fleet.DefaultBatch, "router batch size")
		inflight   = flag.Int("inflight", fleet.DefaultMaxInFlight, "router pipeline window")
		probeEvery = flag.Int("probe-every", fleet.DefaultProbeEvery, "router reconnect probe interval (fallback rows)")
		idSpace    = flag.Int("ids", 5000, "distinct object IDs per client (repeats exercise trackers)")
		seed       = flag.Int64("seed", 1, "load stream seed")
	)
	flag.Parse()
	cfg := loadConfig{
		addrs:      strings.Split(*addrs, ","),
		mode:       *mode,
		clients:    *clients,
		rows:       *rows,
		batch:      *batch,
		inflight:   *inflight,
		probeEvery: *probeEvery,
		idSpace:    *idSpace,
		seed:       *seed,
	}
	if err := runLoad(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "lfoload: %v\n", err)
		os.Exit(1)
	}
}

// loadConfig carries the flags into runLoad; split from main so tests
// can run the exact harness the flags produce.
type loadConfig struct {
	addrs      []string
	mode       string
	clients    int
	rows       int
	batch      int
	inflight   int
	probeEvery int
	idSpace    int
	seed       int64
}

// loadResult is the harness's JSON report. Latencies are per burst in
// router mode (one pipeline window of batches) and per row in sync mode.
type loadResult struct {
	Mode       string  `json:"mode"`
	Shards     int     `json:"shards"`
	Clients    int     `json:"clients"`
	Batch      int     `json:"batch"`
	Inflight   int     `json:"inflight"`
	Rows       int     `json:"rows_total"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	RowsPerSec float64 `json:"rows_per_sec"`
	P50Us      int64   `json:"p50_us"`
	P99Us      int64   `json:"p99_us"`
	Failovers  int64   `json:"failovers_total"`
	Fallbacks  int64   `json:"fallback_rows_total"`
}

// latencyBounds are the histogram buckets in microseconds: geometric
// 1-2-5 decades from 1µs to 10s, fine enough for interpolated p50/p99.
var latencyBounds = []int64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000,
	1000000, 2000000, 5000000, 10000000,
}

// runLoad drives the configured load and writes one JSON result line.
func runLoad(cfg loadConfig, w io.Writer) error {
	if len(cfg.addrs) == 0 || cfg.clients < 1 || cfg.rows < 1 {
		return fmt.Errorf("need at least one shard address, one client and one row")
	}
	switch cfg.mode {
	case "router", "sync":
	default:
		return fmt.Errorf("unknown -mode %q (want router or sync)", cfg.mode)
	}

	reg := obs.NewRegistry()
	lat := reg.Histogram("lfoload_latency_us", latencyBounds)

	var wg sync.WaitGroup
	errs := make([]error, cfg.clients)
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if cfg.mode == "router" {
				errs[c] = routerClient(cfg, c, reg, lat)
			} else {
				errs[c] = syncClient(cfg, c, lat)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for c, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", c, err)
		}
	}

	total := cfg.clients * cfg.rows
	res := loadResult{
		Mode:       cfg.mode,
		Shards:     len(cfg.addrs),
		Clients:    cfg.clients,
		Batch:      cfg.batch,
		Inflight:   cfg.inflight,
		Rows:       total,
		ElapsedNs:  elapsed.Nanoseconds(),
		RowsPerSec: float64(total) / elapsed.Seconds(),
		P50Us:      lat.Quantile(0.50),
		P99Us:      lat.Quantile(0.99),
	}
	for _, c := range reg.Snapshot().Counters {
		switch {
		case strings.HasSuffix(c.Name, "_failovers_total"):
			res.Failovers += c.Value
		case strings.HasSuffix(c.Name, "_fallback_rows_total"):
			res.Fallbacks += c.Value
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(res)
}

// fillReqs regenerates the client's deterministic admit burst in place.
func fillReqs(rng *rand.Rand, reqs []server.AdmitRequest, idSpace int, now *int64) {
	for i := range reqs {
		reqs[i] = server.AdmitRequest{
			Time: *now,
			ID:   rng.Uint64() % uint64(idSpace),
			Size: 1 + rng.Int63n(1<<20),
			Cost: 1,
			Free: 1 << 30,
		}
		*now++
	}
}

// routerClient drives one fleet.Router: bursts of a full pipeline window
// are enqueued and flushed, and each burst's wall time lands in the
// latency histogram.
func routerClient(cfg loadConfig, id int, reg *obs.Registry, lat *obs.Histogram) error {
	r, err := fleet.NewRouter(fleet.Config{
		Addrs:       cfg.addrs,
		Batch:       cfg.batch,
		MaxInFlight: cfg.inflight,
		ProbeEvery:  cfg.probeEvery,
		Obs:         reg.Prefixed(fmt.Sprintf("client%d_", id)),
	})
	if err != nil {
		return err
	}
	defer r.Close()

	burst := cfg.batch * cfg.inflight
	if burst > cfg.rows {
		burst = cfg.rows
	}
	reqs := make([]server.AdmitRequest, burst)
	probs := make([]float64, burst)
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
	now := int64(0)
	for done := 0; done < cfg.rows; {
		n := burst
		if cfg.rows-done < n {
			n = cfg.rows - done
		}
		fillReqs(rng, reqs[:n], cfg.idSpace, &now)
		t0 := time.Now()
		for i := 0; i < n; i++ {
			r.Enqueue(reqs[i], &probs[i])
		}
		r.Flush()
		lat.Observe(time.Since(t0).Microseconds())
		done += n
	}
	return nil
}

// syncClient drives one classic synchronous client against a single
// shard, one row per round trip — the pre-fleet baseline the router is
// measured against.
func syncClient(cfg loadConfig, id int, lat *obs.Histogram) error {
	c, err := server.Dial(cfg.addrs[id%len(cfg.addrs)])
	if err != nil {
		return err
	}
	defer c.Close()

	req := make([]server.AdmitRequest, 1)
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
	now := int64(0)
	for done := 0; done < cfg.rows; done++ {
		fillReqs(rng, req, cfg.idSpace, &now)
		t0 := time.Now()
		if _, err := c.Admit(req); err != nil {
			return err
		}
		lat.Observe(time.Since(t0).Microseconds())
	}
	return nil
}
