package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/server"
)

func testModel(t *testing.T) *gbdt.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ds := gbdt.NewDataset(features.Dim)
	row := make([]float64, features.Dim)
	for i := 0; i < 2000; i++ {
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		label := 0.0
		if row[features.FeatSize] > 50 {
			label = 1
		}
		ds.Append(row, label)
	}
	p := gbdt.DefaultParams()
	p.NumIterations = 10
	m, err := gbdt.Train(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func startShards(t *testing.T, n int) []string {
	t.Helper()
	m := testModel(t)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		s := server.New(m, 2)
		addr, err := s.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		addrs[i] = addr.String()
	}
	return addrs
}

func runAndDecode(t *testing.T, cfg loadConfig) loadResult {
	t.Helper()
	var buf bytes.Buffer
	if err := runLoad(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var res loadResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON %q: %v", buf.String(), err)
	}
	return res
}

func TestRunLoadRouterMode(t *testing.T) {
	addrs := startShards(t, 3)
	res := runAndDecode(t, loadConfig{
		addrs: addrs, mode: "router",
		clients: 2, rows: 2000, batch: 32, inflight: 2,
		probeEvery: 32, idSpace: 500, seed: 7,
	})
	if res.Rows != 4000 {
		t.Errorf("rows_total = %d, want 4000", res.Rows)
	}
	if res.Shards != 3 || res.Mode != "router" {
		t.Errorf("mode/shards = %s/%d", res.Mode, res.Shards)
	}
	if res.RowsPerSec <= 0 || res.ElapsedNs <= 0 {
		t.Errorf("throughput not measured: %+v", res)
	}
	if res.P50Us <= 0 || res.P99Us < res.P50Us {
		t.Errorf("quantiles p50=%d p99=%d", res.P50Us, res.P99Us)
	}
	if res.Failovers != 0 || res.Fallbacks != 0 {
		t.Errorf("healthy fleet reports failovers=%d fallbacks=%d", res.Failovers, res.Fallbacks)
	}
}

func TestRunLoadSyncMode(t *testing.T) {
	addrs := startShards(t, 1)
	res := runAndDecode(t, loadConfig{
		addrs: addrs, mode: "sync",
		clients: 2, rows: 300, batch: 64, inflight: 4,
		probeEvery: 32, idSpace: 100, seed: 7,
	})
	if res.Rows != 600 || res.Mode != "sync" {
		t.Errorf("rows/mode = %d/%s", res.Rows, res.Mode)
	}
	if res.RowsPerSec <= 0 || res.P50Us <= 0 {
		t.Errorf("throughput not measured: %+v", res)
	}
}

func TestRunLoadRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := runLoad(loadConfig{mode: "router"}, &buf); err == nil {
		t.Error("empty config accepted")
	}
	if err := runLoad(loadConfig{addrs: []string{"x"}, mode: "nope", clients: 1, rows: 1}, &buf); err == nil {
		t.Error("unknown mode accepted")
	}
}
