// Command optcalc computes the offline-optimal caching decisions (OPT)
// for a trace via the FOO min-cost-flow model (§2.1 of the paper) and
// reports OPT's hit ratios. Optionally it writes the per-request
// admission decisions for inspection or external training pipelines.
//
// Usage:
//
//	optcalc -trace trace.txt -size 256m
//	optcalc -gen cdn -n 50000 -size 64m -algo flow -rank 0.3 -decisions out.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"lfo/internal/cliutil"
	"lfo/internal/gen"
	"lfo/internal/opt"
	"lfo/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (text format)")
		genMix    = flag.String("gen", "", "generate a synthetic trace: cdn or web")
		n         = flag.Int("n", 50000, "generated trace length (with -gen)")
		seed      = flag.Int64("seed", 1, "generator seed")
		sizeStr   = flag.String("size", "64m", "cache size")
		objective = flag.String("objective", "bhr", "cost objective: bhr, ohr or cost")
		algo      = flag.String("algo", "auto", "solver: auto, flow or greedy")
		rank      = flag.Float64("rank", 1.0, "rank fraction of intervals to solve (0,1]")
		segments  = flag.Int("segments", 0, "time-axis solve segments: 0=auto, 1=unsegmented, N>1 as given")
		workers   = flag.Int("workers", 0, "goroutines for concurrent segment solves: 0=all cores, 1=sequential")
		decisions = flag.String("decisions", "", "write per-request decisions (0/1) to this file")
	)
	flag.Parse()

	size, err := cliutil.ParseBytes(*sizeStr)
	if err != nil || size <= 0 {
		fatalf("bad -size %q: %v", *sizeStr, err)
	}
	obj, err := trace.ParseObjective(*objective)
	if err != nil {
		fatalf("%v", err)
	}
	var algorithm opt.Algorithm
	switch *algo {
	case "auto":
		algorithm = opt.AlgoAuto
	case "flow":
		algorithm = opt.AlgoFlow
	case "greedy":
		algorithm = opt.AlgoGreedy
	default:
		fatalf("unknown -algo %q", *algo)
	}

	var tr *trace.Trace
	switch {
	case *tracePath != "":
		tr, err = trace.ReadFile(*tracePath)
	case *genMix == "cdn":
		tr, err = gen.Generate(gen.CDNMix(*n, *seed))
	case *genMix == "web":
		tr, err = gen.Generate(gen.WebMix(*n, *seed))
	default:
		fatalf("need -trace FILE or -gen MIX")
	}
	if err != nil {
		fatalf("load trace: %v", err)
	}
	tr = tr.WithCosts(obj)

	start := time.Now()
	res, err := opt.Compute(tr, opt.Config{
		CacheSize:    size,
		Algorithm:    algorithm,
		RankFraction: *rank,
		Segments:     *segments,
		Workers:      *workers,
	})
	if err != nil {
		fatalf("compute OPT: %v", err)
	}
	elapsed := time.Since(start)

	fmt.Printf("requests:   %d\n", tr.Len())
	fmt.Printf("intervals:  %d (solved %d, dropped %d)\n", res.Intervals, res.Solved, res.DroppedIntervals())
	fmt.Printf("cache:      %s, objective %s, algorithm %s, rank %.2f\n",
		cliutil.FormatBytes(size), obj, algorithm, *rank)
	fmt.Printf("labeled by: %s (%d segments: %d flow, %d greedy; %d flow ivs, %d greedy ivs, %d boundary)\n",
		res.AlgoLabel(), res.Segments, res.FlowSegments, res.GreedySegments,
		res.FlowIntervals, res.GreedyIntervals, res.BoundaryIntervals)
	fmt.Printf("OPT BHR:    %.4f\n", res.BHR())
	fmt.Printf("OPT OHR:    %.4f\n", res.OHR())
	fmt.Printf("miss cost:  %.0f\n", res.MissCost)
	fmt.Printf("solve time: %s\n", elapsed.Round(time.Millisecond))

	if *decisions != "" {
		f, err := os.Create(*decisions)
		if err != nil {
			fatalf("create %s: %v", *decisions, err)
		}
		w := bufio.NewWriter(f)
		for i, admit := range res.Admit {
			v := 0
			if admit {
				v = 1
			}
			//lfolint:ignore unchecked-error bufio errors are sticky and surface at the checked Flush below
			fmt.Fprintf(w, "%d %d %d\n", i, uint64(tr.Requests[i].ID), v)
		}
		if err := w.Flush(); err != nil {
			fatalf("write decisions: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close decisions: %v", err)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "optcalc: "+format+"\n", args...)
	os.Exit(1)
}
