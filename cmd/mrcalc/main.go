// Command mrcalc computes miss-ratio curves: the exact LRU hit ratio as a
// function of cache size (one O(n log n) pass), optionally alongside the
// offline-optimal bound — the provisioning view of a trace.
//
// Usage:
//
//	mrcalc -trace trace.txt -min 16m -max 4g -points 12
//	mrcalc -gen cdn -n 100000 -opt
package main

import (
	"flag"
	"fmt"
	"os"

	"lfo/internal/cliutil"
	"lfo/internal/gen"
	"lfo/internal/mrc"
	"lfo/internal/opt"
	"lfo/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (text format)")
		genMix    = flag.String("gen", "", "generate a synthetic trace: cdn or web")
		n         = flag.Int("n", 100000, "generated trace length (with -gen)")
		seed      = flag.Int64("seed", 1, "generator seed")
		minStr    = flag.String("min", "4m", "smallest cache size")
		maxStr    = flag.String("max", "1g", "largest cache size")
		points    = flag.Int("points", 10, "number of curve points")
		withOPT   = flag.Bool("opt", false, "also sample the offline-optimal bound (slower)")
		workers   = flag.Int("workers", 0, "goroutines for the OPT curve points: 0=all cores, 1=sequential")
	)
	flag.Parse()

	minSize, err := cliutil.ParseBytes(*minStr)
	if err != nil || minSize <= 0 {
		fatalf("bad -min %q: %v", *minStr, err)
	}
	maxSize, err := cliutil.ParseBytes(*maxStr)
	if err != nil || maxSize < minSize {
		fatalf("bad -max %q: %v", *maxStr, err)
	}

	var tr *trace.Trace
	switch {
	case *tracePath != "":
		tr, err = trace.ReadFile(*tracePath)
	case *genMix == "cdn":
		tr, err = gen.Generate(gen.CDNMix(*n, *seed))
	case *genMix == "web":
		tr, err = gen.Generate(gen.WebMix(*n, *seed))
	default:
		fatalf("need -trace FILE or -gen MIX")
	}
	if err != nil {
		fatalf("load trace: %v", err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)

	curve := mrc.ComputeLRU(tr)
	sizes := mrc.LogSizes(minSize, maxSize, *points)

	var optPts []mrc.Point
	if *withOPT {
		optPts, err = mrc.ComputeOPT(tr, sizes, opt.Config{Workers: *workers})
		if err != nil {
			fatalf("OPT curve: %v", err)
		}
	}

	fmt.Printf("trace: %d requests; LRU saturates at %s\n\n",
		tr.Len(), cliutil.FormatBytes(curve.MaxUseful()))
	if *withOPT {
		fmt.Printf("%-10s %10s %10s %10s %10s\n", "cache", "LRU BHR", "LRU OHR", "OPT BHR", "OPT OHR")
	} else {
		fmt.Printf("%-10s %10s %10s\n", "cache", "LRU BHR", "LRU OHR")
	}
	for i, s := range sizes {
		if *withOPT {
			fmt.Printf("%-10s %10.4f %10.4f %10.4f %10.4f\n",
				cliutil.FormatBytes(s), curve.BHR(s), curve.OHR(s), optPts[i].BHR, optPts[i].OHR)
		} else {
			fmt.Printf("%-10s %10.4f %10.4f\n", cliutil.FormatBytes(s), curve.BHR(s), curve.OHR(s))
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mrcalc: "+format+"\n", args...)
	os.Exit(1)
}
