// Command lfolint runs the repository's custom static analyzer (see
// internal/lint): determinism rules over the training pipeline,
// float-safety rules over the numeric kernels, API-hygiene rules over all
// library code, and the interprocedural flow analyses (see
// internal/lint/flow): determinism taint tracking, //lfo:hotpath
// allocation discipline, goroutine join paths, and lock ordering.
//
// Usage:
//
//	lfolint [flags] [./... | package-dir ...]
//
// With no arguments (or "./...") every package in the enclosing module is
// checked. Specific package directories restrict reporting to those
// packages; the whole module is still loaded and analyzed so that
// cross-package call chains resolve.
//
// Exit status is 1 when any non-suppressed diagnostic is reported, 2 on
// load/usage errors, 0 otherwise. Findings can be waived in place with
// "//lfolint:ignore <rule> <reason>"; waivers that no longer suppress
// anything are themselves reported by the stale-waiver rule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lfo/internal/lint"
	"lfo/internal/lint/flow"
)

func main() {
	listRules := flag.Bool("rules", false, "list the lint rules and their policy scopes, then exit")
	only := flag.String("only", "", "comma-separated rule names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout (for CI and editors)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lfolint [flags] [./... | package-dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	policy := lint.DefaultPolicy()
	rules := append(lint.AllRules(), flow.Rules()...)
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-16s %s\n", r.Name, r.Doc)
		}
		fmt.Printf("%-16s %s\n", lint.StaleWaiverRule, "flag //lfolint:ignore directives that no longer suppress anything")
		return
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		// Staleness is only decidable for waivers whose rules actually ran:
		// under a rule subset the audit runs only on explicit request.
		if !keep[lint.StaleWaiverRule] {
			delete(policy, lint.StaleWaiverRule)
		}
		delete(keep, lint.StaleWaiverRule)
		var filtered []lint.Rule
		for _, r := range rules {
			if keep[r.Name] {
				filtered = append(filtered, r)
				delete(keep, r.Name)
			}
		}
		for name := range keep {
			fatalf("unknown rule %q (see lfolint -rules)", name)
		}
		rules = filtered
	}

	root, err := moduleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fatalf("%v", err)
	}

	// The full module is always analyzed — the flow rules need every
	// package in the call graph — and explicit directory arguments filter
	// the *findings*, not the analysis.
	diags := lint.Run(pkgs, rules, policy)
	if dirs := explicitDirs(flag.Args()); dirs != nil {
		diags = filterByDir(diags, pkgs, dirs)
	}

	cwd, _ := os.Getwd()
	if *jsonOut {
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File:    relTo(cwd, d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("encode findings: %v", err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", relTo(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lfolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lfolint: "+format+"\n", args...)
	os.Exit(2)
}

// relTo shortens an absolute filename to a cwd-relative one when that
// does not escape upward.
func relTo(cwd, name string) string {
	if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// explicitDirs returns the argument list as directories, or nil when the
// whole module is requested ("./...", "all", or no arguments).
func explicitDirs(args []string) []string {
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == "all" {
			return nil
		}
		dirs = append(dirs, strings.TrimSuffix(a, "/..."))
	}
	return dirs
}

// filterByDir keeps the diagnostics located in the requested package
// directories. It also validates that every argument names a loaded
// package, so a typo fails loudly instead of silencing the run.
func filterByDir(diags []lint.Diagnostic, pkgs []*lint.Package, dirs []string) []lint.Diagnostic {
	want := make(map[string]bool)
	for _, d := range dirs {
		abs, err := filepath.Abs(d)
		if err != nil {
			fatalf("%v", err)
		}
		want[abs] = true
	}
	known := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		known[p.Dir] = true
	}
	for dir := range want {
		if !known[dir] {
			fatalf("no package in directory %s", dir)
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if want[filepath.Dir(d.Pos.Filename)] {
			out = append(out, d)
		}
	}
	return out
}
