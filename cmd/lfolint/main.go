// Command lfolint runs the repository's custom static analyzer (see
// internal/lint): determinism rules over the training pipeline,
// float-safety rules over the numeric kernels, and API-hygiene rules over
// all library code.
//
// Usage:
//
//	lfolint [flags] [./... | package-dir ...]
//
// With no arguments (or "./...") every package in the enclosing module is
// checked. Specific package directories restrict reporting to those
// packages; the whole module is still loaded for type information.
//
// Exit status is 1 when any non-suppressed diagnostic is reported, 2 on
// load/usage errors, 0 otherwise. Findings can be waived in place with
// "//lfolint:ignore <rule> <reason>".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lfo/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the lint rules and their policy scopes, then exit")
	only := flag.String("only", "", "comma-separated rule names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lfolint [flags] [./... | package-dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	policy := lint.DefaultPolicy()
	rules := lint.AllRules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-16s %s\n", r.Name, r.Doc)
		}
		return
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []lint.Rule
		for _, r := range rules {
			if keep[r.Name] {
				filtered = append(filtered, r)
				delete(keep, r.Name)
			}
		}
		for name := range keep {
			fatalf("unknown rule %q (see lfolint -rules)", name)
		}
		rules = filtered
	}

	root, err := moduleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fatalf("%v", err)
	}
	if dirs := explicitDirs(flag.Args()); dirs != nil {
		pkgs = filterByDir(pkgs, dirs)
		if len(pkgs) == 0 {
			fatalf("no packages match %v", flag.Args())
		}
	}

	diags := lint.Run(pkgs, rules, policy)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lfolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lfolint: "+format+"\n", args...)
	os.Exit(2)
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// explicitDirs returns the argument list as directories, or nil when the
// whole module is requested ("./...", "all", or no arguments).
func explicitDirs(args []string) []string {
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == "all" {
			return nil
		}
		dirs = append(dirs, strings.TrimSuffix(a, "/..."))
	}
	return dirs
}

func filterByDir(pkgs []*lint.Package, dirs []string) []*lint.Package {
	want := make(map[string]bool)
	for _, d := range dirs {
		abs, err := filepath.Abs(d)
		if err != nil {
			fatalf("%v", err)
		}
		want[abs] = true
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if want[p.Dir] {
			out = append(out, p)
		}
	}
	return out
}
