// Command predserve runs LFO's TCP prediction service: it trains (or
// loads) an admission model and serves likelihood predictions to CDN
// frontends over the length-prefixed binary protocol in internal/server.
//
// Usage:
//
//	predserve -addr :7070 -model model.gob
//	predserve -addr :7070 -train-gen cdn -n 50000 -size 64m
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"lfo/internal/cliutil"
	"lfo/internal/core"
	"lfo/internal/gbdt"
	"lfo/internal/gen"
	"lfo/internal/opt"
	"lfo/internal/server"
	"lfo/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		modelPath = flag.String("model", "", "load a model saved with Model.Save")
		trainFile = flag.String("train-trace", "", "train a model from this trace file")
		trainGen  = flag.String("train-gen", "", "train a model from a generated trace: cdn or web")
		n         = flag.Int("n", 50000, "generated training trace length")
		seed      = flag.Int64("seed", 1, "generator seed")
		sizeStr   = flag.String("size", "64m", "cache size used for OPT labels")
		workers   = flag.Int("workers", 0, "prediction parallelism per request batch (0 = serial)")
		saveModel = flag.String("save-model", "", "after training, save the model here")
	)
	flag.Parse()

	model, err := obtainModel(*modelPath, *trainFile, *trainGen, *n, *seed, *sizeStr)
	if err != nil {
		fatalf("%v", err)
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			fatalf("create %s: %v", *saveModel, err)
		}
		if err := model.Save(f); err != nil {
			fatalf("save model: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close model: %v", err)
		}
		fmt.Printf("model saved to %s\n", *saveModel)
	}

	srv := server.New(model, *workers)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("predserve: %d trees, listening on %s\n", model.NumTrees(), bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("predserve: shutting down")
	if err := srv.Close(); err != nil {
		fatalf("close: %v", err)
	}
}

func obtainModel(modelPath, trainFile, trainGen string, n int, seed int64, sizeStr string) (*gbdt.Model, error) {
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gbdt.Load(f)
	}
	size, err := cliutil.ParseBytes(sizeStr)
	if err != nil || size <= 0 {
		return nil, fmt.Errorf("bad -size %q: %v", sizeStr, err)
	}
	var tr *trace.Trace
	switch {
	case trainFile != "":
		tr, err = trace.ReadFile(trainFile)
	case trainGen == "cdn":
		tr, err = gen.Generate(gen.CDNMix(n, seed))
	case trainGen == "web":
		tr, err = gen.Generate(gen.WebMix(n, seed))
	default:
		return nil, fmt.Errorf("need -model, -train-trace or -train-gen")
	}
	if err != nil {
		return nil, err
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	model, _, err := core.TrainOnWindow(tr, core.Config{
		CacheSize:  size,
		WindowSize: tr.Len(),
		OPT:        opt.Config{Algorithm: opt.AlgoAuto, RankFraction: 0.5},
	})
	return model, err
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "predserve: "+format+"\n", args...)
	os.Exit(1)
}
