// Command predserve runs LFO's TCP prediction service: it trains (or
// loads) an admission model and serves likelihood predictions to CDN
// frontends over the length-prefixed binary protocol in internal/server.
//
// Usage:
//
//	predserve -addr :7070 -model model.gob
//	predserve -addr :7070 -train-gen cdn -n 50000 -size 64m
//	predserve -addr :7070 -train-gen cdn -debug.addr 127.0.0.1:7071
//
// With -debug.addr set, a second HTTP listener serves /metrics (flat
// "name value" text), /debug/vars (expvar), and /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lfo/internal/cliutil"
	"lfo/internal/core"
	"lfo/internal/gbdt"
	"lfo/internal/gen"
	"lfo/internal/obs"
	"lfo/internal/opt"
	"lfo/internal/server"
	"lfo/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		debugAddr  = flag.String("debug.addr", "", "optional HTTP listener for /metrics, /debug/vars and /debug/pprof")
		modelPath  = flag.String("model", "", "load a model saved with Model.Save")
		trainFile  = flag.String("train-trace", "", "train a model from this trace file")
		trainGen   = flag.String("train-gen", "", "train a model from a generated trace: cdn or web")
		n          = flag.Int("n", 50000, "generated training trace length")
		seed       = flag.Int64("seed", 1, "generator seed")
		sizeStr    = flag.String("size", "64m", "cache size used for OPT labels")
		workers    = flag.Int("workers", 0, "prediction parallelism per request batch (0 = serial)")
		shardID    = flag.Int("shard-id", -1, "fleet shard index: tags log lines with shard=<id> and metric names with shard<id>_ (negative = standalone)")
		maxTracked = flag.Int("max-tracked", 0, "per-connection admit tracker bound in objects (0 = default 1<<22, negative = unbounded)")
		saveModel  = flag.String("save-model", "", "after training, save the model here")

		readTimeout  = flag.Duration("read-timeout", 0, "per-frame read deadline (0 = default 2m, negative = none)")
		writeTimeout = flag.Duration("write-timeout", 0, "response write deadline (0 = default 30s, negative = none)")
		drainTimeout = flag.Duration("drain-timeout", 0, "graceful shutdown drain bound (0 = default 5s, negative = wait forever)")
		maxFrame     = flag.Int("max-frame", 0, "request frame payload bound in bytes (0 = default 64MiB, negative = unbounded)")
		maxConns     = flag.Int("max-conns", 0, "concurrent connection bound (0 = default 1024, negative = unbounded)")
	)
	flag.Parse()

	model, err := obtainModel(*modelPath, *trainFile, *trainGen, *n, *seed, *sizeStr)
	if err != nil {
		fatalf("%v", err)
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			fatalf("create %s: %v", *saveModel, err)
		}
		if err := model.Save(f); err != nil {
			fatalf("save model: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close model: %v", err)
		}
		fmt.Printf("model saved to %s\n", *saveModel)
	}

	cfg := serveConfig{
		workers:      *workers,
		shardID:      *shardID,
		maxTracked:   *maxTracked,
		readTimeout:  *readTimeout,
		writeTimeout: *writeTimeout,
		drainTimeout: *drainTimeout,
		maxFrame:     *maxFrame,
		maxConns:     *maxConns,
		degradeLog:   func(line string) { fmt.Fprintln(os.Stderr, line) },
	}
	srv, dbg, err := buildServer(model, cfg, *debugAddr)
	if err != nil {
		fatalf("%v", err)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatalf("%v", err)
	}
	if *shardID >= 0 {
		fmt.Printf("predserve: shard=%d %d trees, listening on %s\n", *shardID, model.NumTrees(), bound)
	} else {
		fmt.Printf("predserve: %d trees, listening on %s\n", model.NumTrees(), bound)
	}
	if dbg != nil {
		fmt.Printf("predserve: debug endpoints on http://%s/metrics\n", dbg.addr)
		defer func() {
			_ = dbg.stop() // shutdown path; nothing actionable on error
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("predserve: shutting down")
	if err := srv.Close(); err != nil {
		fatalf("close: %v", err)
	}
}

// debugListener is a running -debug.addr HTTP listener.
type debugListener struct {
	addr net.Addr
	stop func() error
}

// serveConfig carries the serving-path flags into buildServer. Zero
// values defer to the server package's safe defaults (negative disables
// a knob, matching the flag help text).
type serveConfig struct {
	workers int
	// shardID tags this process as one member of a fleet (see
	// internal/fleet): log lines gain shard=<id> and metric names the
	// shard<id>_ prefix, so one aggregation pipeline can tell the
	// shards apart. Negative means standalone (no tagging).
	shardID      int
	maxTracked   int
	readTimeout  time.Duration
	writeTimeout time.Duration
	drainTimeout time.Duration
	maxFrame     int
	maxConns     int
	degradeLog   func(line string) // sink for one structured line per degradation event
}

// degradeLine renders a degradation event as one structured key=value
// log line, stable enough to grep or ship to a log pipeline. A
// non-negative shardID adds a shard=<id> key.
func degradeLine(ev server.DegradeEvent, shardID int) string {
	remote := ev.Remote
	if remote == "" {
		remote = "-"
	}
	shard := ""
	if shardID >= 0 {
		shard = fmt.Sprintf(" shard=%d", shardID)
	}
	if ev.Err != nil {
		return fmt.Sprintf("predserve: degrade%s kind=%s remote=%s err=%q", shard, ev.Kind, remote, ev.Err)
	}
	return fmt.Sprintf("predserve: degrade%s kind=%s remote=%s", shard, ev.Kind, remote)
}

// buildServer assembles the prediction server and, when debugAddr is
// non-empty, an obs registry plus its debug HTTP listener. Split from
// main so tests can exercise the exact wiring the flags produce.
func buildServer(model *gbdt.Model, cfg serveConfig, debugAddr string) (*server.Server, *debugListener, error) {
	srv := server.New(model, cfg.workers)
	srv.MaxTrackedObjects = cfg.maxTracked
	srv.ReadTimeout = cfg.readTimeout
	srv.WriteTimeout = cfg.writeTimeout
	srv.DrainTimeout = cfg.drainTimeout
	srv.MaxFramePayload = cfg.maxFrame
	srv.MaxConns = cfg.maxConns
	if cfg.degradeLog != nil {
		sink := cfg.degradeLog
		shardID := cfg.shardID
		srv.OnDegrade = func(ev server.DegradeEvent) { sink(degradeLine(ev, shardID)) }
	}
	if debugAddr == "" {
		return srv, nil, nil
	}
	reg := obs.NewRegistry()
	srv.Obs = reg
	if cfg.shardID >= 0 {
		// The server records under shard<id>_-prefixed names; the debug
		// listener snapshots the shared root, so /metrics shows them.
		srv.Obs = reg.Prefixed(fmt.Sprintf("shard%d_", cfg.shardID))
	}
	addr, stop, err := obs.ServeDebug(debugAddr, reg)
	if err != nil {
		return nil, nil, fmt.Errorf("debug listener: %w", err)
	}
	return srv, &debugListener{addr: addr, stop: stop}, nil
}

func obtainModel(modelPath, trainFile, trainGen string, n int, seed int64, sizeStr string) (*gbdt.Model, error) {
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gbdt.Load(f)
	}
	size, err := cliutil.ParseBytes(sizeStr)
	if err != nil || size <= 0 {
		return nil, fmt.Errorf("bad -size %q: %v", sizeStr, err)
	}
	var tr *trace.Trace
	switch {
	case trainFile != "":
		tr, err = trace.ReadFile(trainFile)
	case trainGen == "cdn":
		tr, err = gen.Generate(gen.CDNMix(n, seed))
	case trainGen == "web":
		tr, err = gen.Generate(gen.WebMix(n, seed))
	default:
		return nil, fmt.Errorf("need -model, -train-trace or -train-gen")
	}
	if err != nil {
		return nil, err
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	model, _, err := core.TrainOnWindow(tr, core.Config{
		CacheSize:  size,
		WindowSize: tr.Len(),
		OPT:        opt.Config{Algorithm: opt.AlgoAuto, RankFraction: 0.5},
	})
	return model, err
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "predserve: "+format+"\n", args...)
	os.Exit(1)
}
