package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/server"
)

// TestDebugAddrServesLiveCounts exercises the exact wiring -debug.addr
// produces: the debug listener must serve /metrics, /debug/vars and
// /debug/pprof/ with live counters after one Predict and one Admit
// round-trip.
func TestDebugAddrServesLiveCounts(t *testing.T) {
	model := &gbdt.Model{Dim: features.Dim, BaseScore: 1}
	srv, dbg, err := buildServer(model, serveConfig{workers: 1, shardID: -1}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if dbg == nil {
		t.Fatal("no debug listener for a non-empty -debug.addr")
	}
	t.Cleanup(func() {
		if err := dbg.stop(); err != nil {
			t.Errorf("debug stop: %v", err)
		}
	})
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	c, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Predict(make([]float64, 2*features.Dim)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit([]server.AdmitRequest{{Time: 1, ID: 3, Size: 64, Cost: 64, Free: 1 << 20}}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + dbg.addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"server_predict_requests_total 1",
		"server_predict_rows_total 2",
		"server_admit_requests_total 1",
	} {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("/metrics missing %q; got:\n%s", want, metrics)
		}
	}

	var vars struct {
		LFO map[string]int64 `json:"lfo"`
	}
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.LFO["server_admit_rows_total"] != 1 {
		t.Errorf("/debug/vars server_admit_rows_total = %d, want 1", vars.LFO["server_admit_rows_total"])
	}

	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}

// TestBuildServerWithoutDebugAddr: no -debug.addr means no registry and
// no listener.
func TestBuildServerWithoutDebugAddr(t *testing.T) {
	model := &gbdt.Model{Dim: features.Dim}
	srv, dbg, err := buildServer(model, serveConfig{workers: 1, shardID: -1, maxTracked: 7}, "")
	if err != nil {
		t.Fatal(err)
	}
	if dbg != nil {
		t.Error("debug listener created without -debug.addr")
	}
	if srv.Obs != nil {
		t.Error("registry created without -debug.addr")
	}
	if srv.MaxTrackedObjects != 7 {
		t.Errorf("MaxTrackedObjects = %d, want 7", srv.MaxTrackedObjects)
	}
}

// TestServingFlagsReachServer: every serving-path flag value must land
// on the corresponding server knob, and a degradation event must come
// out as exactly one structured log line.
func TestServingFlagsReachServer(t *testing.T) {
	var lines []string
	cfg := serveConfig{
		workers:      1,
		shardID:      -1,
		readTimeout:  3 * time.Second,
		writeTimeout: 4 * time.Second,
		drainTimeout: 5 * time.Second,
		maxFrame:     1 << 16,
		maxConns:     9,
		degradeLog:   func(line string) { lines = append(lines, line) },
	}
	srv, _, err := buildServer(&gbdt.Model{Dim: features.Dim}, cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if srv.ReadTimeout != cfg.readTimeout || srv.WriteTimeout != cfg.writeTimeout ||
		srv.DrainTimeout != cfg.drainTimeout || srv.MaxFramePayload != cfg.maxFrame ||
		srv.MaxConns != cfg.maxConns {
		t.Errorf("flags not wired: server = %+v", srv)
	}
	if srv.OnDegrade == nil {
		t.Fatal("OnDegrade not wired")
	}
	srv.OnDegrade(server.DegradeEvent{Kind: "read_timeout", Remote: "1.2.3.4:5", Err: errors.New("boom")})
	srv.OnDegrade(server.DegradeEvent{Kind: "conn_limit"})
	want := []string{
		`predserve: degrade kind=read_timeout remote=1.2.3.4:5 err="boom"`,
		"predserve: degrade kind=conn_limit remote=-",
	}
	if len(lines) != len(want) {
		t.Fatalf("degrade lines = %q, want %q", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("degrade line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

// TestShardIDTagsLogsAndMetrics: -shard-id must show up as a shard= key
// in degrade lines and as a shard<id>_ prefix on every metric the server
// records, so a fleet's shards stay distinguishable in one pipeline.
func TestShardIDTagsLogsAndMetrics(t *testing.T) {
	var lines []string
	cfg := serveConfig{
		workers:    1,
		shardID:    2,
		degradeLog: func(line string) { lines = append(lines, line) },
	}
	model := &gbdt.Model{Dim: features.Dim, BaseScore: 1}
	srv, dbg, err := buildServer(model, cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := dbg.stop(); err != nil {
			t.Errorf("debug stop: %v", err)
		}
	})
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	c, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Predict(make([]float64, features.Dim)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + dbg.addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "shard2_server_predict_requests_total 1\n") {
		t.Errorf("/metrics missing shard-prefixed counter; got:\n%s", body)
	}

	srv.OnDegrade(server.DegradeEvent{Kind: "conn_limit"})
	if want := "predserve: degrade shard=2 kind=conn_limit remote=-"; len(lines) != 1 || lines[0] != want {
		t.Errorf("degrade lines = %q, want [%q]", lines, want)
	}
}
