package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/server"
)

// TestDebugAddrServesLiveCounts exercises the exact wiring -debug.addr
// produces: the debug listener must serve /metrics, /debug/vars and
// /debug/pprof/ with live counters after one Predict and one Admit
// round-trip.
func TestDebugAddrServesLiveCounts(t *testing.T) {
	model := &gbdt.Model{Dim: features.Dim, BaseScore: 1}
	srv, dbg, err := buildServer(model, 1, 0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if dbg == nil {
		t.Fatal("no debug listener for a non-empty -debug.addr")
	}
	t.Cleanup(func() {
		if err := dbg.stop(); err != nil {
			t.Errorf("debug stop: %v", err)
		}
	})
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	c, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Predict(make([]float64, 2*features.Dim)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit([]server.AdmitRequest{{Time: 1, ID: 3, Size: 64, Cost: 64, Free: 1 << 20}}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + dbg.addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"server_predict_requests_total 1",
		"server_predict_rows_total 2",
		"server_admit_requests_total 1",
	} {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("/metrics missing %q; got:\n%s", want, metrics)
		}
	}

	var vars struct {
		LFO map[string]int64 `json:"lfo"`
	}
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.LFO["server_admit_rows_total"] != 1 {
		t.Errorf("/debug/vars server_admit_rows_total = %d, want 1", vars.LFO["server_admit_rows_total"])
	}

	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}

// TestBuildServerWithoutDebugAddr: no -debug.addr means no registry and
// no listener.
func TestBuildServerWithoutDebugAddr(t *testing.T) {
	model := &gbdt.Model{Dim: features.Dim}
	srv, dbg, err := buildServer(model, 1, 7, "")
	if err != nil {
		t.Fatal(err)
	}
	if dbg != nil {
		t.Error("debug listener created without -debug.addr")
	}
	if srv.Obs != nil {
		t.Error("registry created without -debug.addr")
	}
	if srv.MaxTrackedObjects != 7 {
		t.Errorf("MaxTrackedObjects = %d, want 7", srv.MaxTrackedObjects)
	}
}
