// Command traceinfo characterizes a request trace: popularity skew, size
// distribution, reuse behaviour, and working-set footprint — the workload
// table CDN caching papers report.
//
// Usage:
//
//	traceinfo -trace trace.txt
//	traceinfo -gen cdn -n 200000
package main

import (
	"flag"
	"fmt"
	"os"

	"lfo/internal/analysis"
	"lfo/internal/gen"
	"lfo/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (text format)")
		genMix    = flag.String("gen", "", "generate a synthetic trace: cdn or web")
		n         = flag.Int("n", 100000, "generated trace length (with -gen)")
		seed      = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var tr *trace.Trace
	var err error
	switch {
	case *tracePath != "":
		tr, err = trace.ReadFile(*tracePath)
	case *genMix == "cdn":
		tr, err = gen.Generate(gen.CDNMix(*n, *seed))
	case *genMix == "web":
		tr, err = gen.Generate(gen.WebMix(*n, *seed))
	default:
		err = fmt.Errorf("need -trace FILE or -gen MIX")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(analysis.Analyze(tr))
}
