// Command tracegen generates synthetic CDN request traces in the
// webcachesim-compatible text format (or the compact binary format).
//
// Usage:
//
//	tracegen -n 500000 -seed 1 -mix cdn -o trace.txt
//	tracegen -n 100000 -mix web -format binary -o trace.bin
//
// The generator substitutes for the proprietary production trace used in
// the paper's evaluation; see DESIGN.md for the substitution rationale.
package main

import (
	"flag"
	"fmt"
	"os"

	"lfo/internal/gen"
	"lfo/internal/trace"
)

func main() {
	var (
		n      = flag.Int("n", 100000, "number of requests")
		seed   = flag.Int64("seed", 1, "generator seed")
		mix    = flag.String("mix", "cdn", "workload mix: cdn, web, or unit")
		out    = flag.String("o", "-", "output path ('-' = stdout)")
		format = flag.String("format", "text", "output format: text or binary")
		stats  = flag.Bool("stats", false, "print trace statistics to stderr")
	)
	flag.Parse()

	var cfg gen.Config
	switch *mix {
	case "cdn":
		cfg = gen.CDNMix(*n, *seed)
	case "web":
		cfg = gen.WebMix(*n, *seed)
	case "unit":
		cfg = gen.UnitMix(*n, *seed, 1<<16, 0.9)
	default:
		fatalf("unknown mix %q (want cdn, web or unit)", *mix)
	}

	tr, err := gen.Generate(cfg)
	if err != nil {
		fatalf("generate: %v", err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", *out, err)
			}
		}()
		w = f
	}
	switch *format {
	case "text":
		err = trace.Write(w, tr)
	case "binary":
		err = trace.WriteBinary(w, tr)
	default:
		fatalf("unknown format %q (want text or binary)", *format)
	}
	if err != nil {
		fatalf("write: %v", err)
	}

	if *stats {
		s := tr.ComputeStats()
		fmt.Fprintf(os.Stderr,
			"requests=%d objects=%d totalBytes=%d uniqueBytes=%d meanSize=%.0f oneHitWonders=%d\n",
			s.Requests, s.UniqueObjects, s.TotalBytes, s.UniqueBytes, s.MeanSize, s.OneHitWonders)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
