module lfo

go 1.22
