# allocgate.awk — alloc-budget regression gate (scripts/check.sh).
#
# Reads `go test -bench -benchmem` output on stdin and compares each
# benchmark's allocs/op against the budgets file passed via
# -v budgets=<path> (format: "<BenchmarkName> <max allocs/op>", with
# '#' comments). Exits non-zero when any benchmark exceeds its budget,
# reports a benchmark with no budget line, or a budgeted benchmark did
# not appear in the input — so neither a regression nor a silently
# skipped benchmark can pass the gate.
BEGIN {
    if (budgets == "") {
        print "allocgate: pass -v budgets=<file>" > "/dev/stderr"
        exit 2
    }
    n = 0
    while ((getline line < budgets) > 0) {
        sub(/#.*/, "", line)
        if (line ~ /^[ \t]*$/) continue
        split(line, f, /[ \t]+/)
        budget[f[1]] = f[2]
        n++
    }
    close(budgets)
    if (n == 0) {
        printf "allocgate: no budgets found in %s\n", budgets > "/dev/stderr"
        exit 2
    }
}
/allocs\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (allocs == "") next
    if (!(name in budget)) {
        printf "allocgate: %s has no budget in %s; add one\n", name, budgets > "/dev/stderr"
        bad = 1
        next
    }
    seen[name] = 1
    if (allocs + 0 > budget[name] + 0) {
        printf "allocgate: %s at %d allocs/op exceeds budget %d\n", name, allocs, budget[name] > "/dev/stderr"
        bad = 1
    } else {
        printf "   %s: %d allocs/op (budget %d)\n", name, allocs, budget[name]
    }
}
END {
    for (name in budget) {
        if (!(name in seen)) {
            printf "allocgate: budgeted benchmark %s did not run\n", name > "/dev/stderr"
            bad = 1
        }
    }
    exit bad
}
