#!/usr/bin/env bash
# bench.sh — record the hot-path benchmark suite as a JSON artifact.
#
# Runs the hot-path micro-benchmarks (GBDT train/predict, the flat
# inference kernels and their batch-major walk, feature tracking,
# simulator, LFO cache request, serving round trips, fleet router) with
# -benchmem at GOMAXPROCS 1 and 4, then drives a live 1-shard sync vs
# 3-shard router lfoload comparison, and writes BENCH_<date>.json with
# ns/op, B/op, and allocs/op per benchmark plus the fleet load results.
# The JSON is the comparable record: commit it alongside perf changes so
# regressions show up in review.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=2s scripts/bench.sh    # override -benchtime (default 1s)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_$(date +%Y-%m-%d).json}
benchtime=${BENCHTIME:-1s}
raw=$(mktemp)
fleetraw=$(mktemp)
tmpdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$raw" "$fleetraw" "$tmpdir"
}
trap cleanup EXIT

bench='^(BenchmarkGBDTTrain|BenchmarkGBDTPredict|BenchmarkFeatureTracking|BenchmarkSimulatorRun|BenchmarkLFOCacheRequest|BenchmarkOPTCompute|BenchmarkFlatPredict|BenchmarkNodePredict|BenchmarkPredictBatch|BenchmarkPredictMatrix|BenchmarkPredictionServerRoundTrip|BenchmarkPredictionServerSingleRow|BenchmarkRouterEnqueueFlush|BenchmarkPickVictim|BenchmarkEvictCacheRequest|BenchmarkGDSFRequest|BenchmarkOGDRequest|BenchmarkOGDLearnerUpdate|BenchmarkDriftObserve|BenchmarkDriftMaxScore)$'

echo "== go test -bench (this takes a few minutes)"
go test -run '^$' -bench "$bench" -benchmem -benchtime "$benchtime" -cpu 1,4 . ./internal/gbdt ./internal/fleet ./internal/evict ./internal/policy ./internal/policy/ogd ./internal/drift | tee "$raw"

# Fleet saturation comparison: the classic one-row-per-RTT sync client
# against one shard vs the pipelined router against three shards, same
# load generator and seed. Both lfoload JSON lines land under "fleet" in
# the artifact; rows_per_sec is the headline.
echo "== lfoload: 1-shard sync vs 3-shard router"
go build -o "$tmpdir/predserve" ./cmd/predserve
go build -o "$tmpdir/lfoload" ./cmd/lfoload

start_shard() { # $1 = shard id; prints the bound address
    local id=$1 log="$tmpdir/shard$1.log" addr i
    shift
    "$tmpdir/predserve" -addr 127.0.0.1:0 -shard-id "$id" "$@" >"$log" 2>&1 &
    pids+=($!)
    for i in $(seq 1 600); do
        addr=$(awk '/listening on/ {print $NF; exit}' "$log" 2>/dev/null || true)
        if [ -n "$addr" ]; then echo "$addr"; return; fi
        sleep 0.1
    done
    echo "shard did not come up; log:" >&2
    cat "$log" >&2
    exit 1
}
# Shard 0 trains the model once and saves it; shards 1-2 load it.
a0=$(start_shard 0 -train-gen cdn -n 20000 -save-model "$tmpdir/model.gob")
a1=$(start_shard 1 -model "$tmpdir/model.gob")
a2=$(start_shard 2 -model "$tmpdir/model.gob")

"$tmpdir/lfoload" -addrs "$a0" -mode sync -clients 4 -rows 3000 -seed 1 | tee -a "$fleetraw"
"$tmpdir/lfoload" -addrs "$a0,$a1,$a2" -mode router -clients 4 -rows 50000 -batch 64 -seed 1 | tee -a "$fleetraw"

awk -v date="$(date +%Y-%m-%d)" -v cpus="$(nproc)" -v benchtime="$benchtime" -v fleetfile="$fleetraw" '
BEGIN { n = 0 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    cpu = 1
    # Trailing -N on the benchmark name is the GOMAXPROCS setting.
    if (match(name, /-[0-9]+$/)) {
        cpu = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
    }
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    n++
    line = sprintf("    {\"name\": \"%s\", \"gomaxprocs\": %s, \"ns_per_op\": %s", name, cpu, ns)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    results[n] = line
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"hardware_cpus\": %s,\n", cpus
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"note\": \"-cpu sets GOMAXPROCS; wall-clock speedup is bounded by hardware_cpus\",\n"
    printf "  \"results\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", results[i], (i < n ? "," : "")
    printf "  ],\n"
    nf = 0
    while ((getline line < fleetfile) > 0) if (line != "") fleet[++nf] = line
    printf "  \"fleet\": [\n"
    for (i = 1; i <= nf; i++) printf "    %s%s\n", fleet[i], (i < nf ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" > "$out"

# The acceptance headline: pipelined router throughput over the sync
# baseline, from the two lfoload runs above.
awk '
/"mode":"sync"/   { if (match($0, /"rows_per_sec":[0-9.eE+]+/)) sync = substr($0, RSTART + 15, RLENGTH - 15) }
/"mode":"router"/ { if (match($0, /"rows_per_sec":[0-9.eE+]+/)) router = substr($0, RSTART + 15, RLENGTH - 15) }
END { if (sync > 0) printf "router vs sync: %.1fx rows/sec (%.0f vs %.0f)\n", router / sync, router, sync }
' "$fleetraw"

echo "wrote $out"
