#!/usr/bin/env bash
# bench.sh — record the hot-path benchmark suite as a JSON artifact.
#
# Runs the hot-path micro-benchmarks (GBDT train/predict, the flat
# inference kernels and their batch-major walk, feature tracking,
# simulator, LFO cache request) with -benchmem at GOMAXPROCS 1 and 4, and
# writes BENCH_<date>.json with ns/op, B/op, and allocs/op per benchmark.
# The JSON is the comparable record: commit it alongside perf changes so
# regressions show up in review.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=2s scripts/bench.sh    # override -benchtime (default 1s)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_$(date +%Y-%m-%d).json}
benchtime=${BENCHTIME:-1s}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

bench='^(BenchmarkGBDTTrain|BenchmarkGBDTPredict|BenchmarkFeatureTracking|BenchmarkSimulatorRun|BenchmarkLFOCacheRequest|BenchmarkOPTCompute|BenchmarkFlatPredict|BenchmarkNodePredict|BenchmarkPredictBatch|BenchmarkPredictMatrix)$'

echo "== go test -bench (this takes a few minutes)"
go test -run '^$' -bench "$bench" -benchmem -benchtime "$benchtime" -cpu 1,4 . ./internal/gbdt | tee "$raw"

awk -v date="$(date +%Y-%m-%d)" -v cpus="$(nproc)" -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    cpu = 1
    # Trailing -N on the benchmark name is the GOMAXPROCS setting.
    if (match(name, /-[0-9]+$/)) {
        cpu = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
    }
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    n++
    line = sprintf("    {\"name\": \"%s\", \"gomaxprocs\": %s, \"ns_per_op\": %s", name, cpu, ns)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    results[n] = line
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"hardware_cpus\": %s,\n", cpus
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"note\": \"-cpu sets GOMAXPROCS; wall-clock speedup is bounded by hardware_cpus\",\n"
    printf "  \"results\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", results[i], (i < n ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" > "$out"

echo "wrote $out"
