#!/usr/bin/env bash
# check.sh — the repository's full verification gate (tier 1+).
#
# Runs formatting, vet, build, the custom lfolint analyzer, the full test
# suite, and the race detector over the concurrent packages. Every step
# must pass; the script exits non-zero on the first failure, so it is
# directly usable as a CI gate.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '== %s\n' "$*"; }

step "gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet ./..."
go vet ./...

step "go build ./..."
go build ./...

step "lfolint ./..."
go run ./cmd/lfolint ./...

step "go test ./..."
go test ./...

step "go test -race (concurrent packages)"
go test -race ./internal/server ./internal/tiered ./internal/sim \
    ./internal/par ./internal/gbdt ./internal/features ./internal/core \
    ./internal/opt ./internal/mcf ./internal/obs

echo "ALL CHECKS PASSED"
