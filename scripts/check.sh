#!/usr/bin/env bash
# check.sh — the repository's full verification gate (tier 1+).
#
# Runs formatting, vet, build, the custom lfolint analyzer, the full test
# suite, and the race detector over the concurrent packages. Every step
# must pass; the script exits non-zero on the first failure, so it is
# directly usable as a CI gate.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '== %s\n' "$*"; }

step "gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet ./..."
go vet ./...

step "go build ./..."
go build ./...

step "lfolint ./..."
go run ./cmd/lfolint ./...

step "go test ./..."
go test ./...

step "go test -race (concurrent packages)"
go test -race ./internal/server ./internal/fleet ./internal/faultnet \
    ./internal/tiered ./internal/sim ./internal/par ./internal/pq \
    ./internal/gbdt ./internal/features ./internal/core ./internal/opt \
    ./internal/mcf ./internal/obs ./internal/evict \
    ./internal/policy/ogd ./internal/drift

# Coverage floors on the serving path: the chaos/fuzz suites are the
# main guard on these packages, so a silent drop in what they exercise
# should fail the gate.
cover_floor() {
    pkg=$1 floor=$2
    pct=$(go test -cover "$pkg" | awk '{for (i = 1; i <= NF; i++) if ($i == "coverage:") {gsub("%", "", $(i+1)); print $(i+1)}}')
    if [ -z "$pct" ]; then
        echo "no coverage figure for $pkg" >&2
        exit 1
    fi
    awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p+0 >= f+0) }' || {
        echo "coverage for $pkg is ${pct}%, below the ${floor}% floor" >&2
        exit 1
    }
    printf '   %s: %s%% (floor %s%%)\n' "$pkg" "$pct" "$floor"
}
step "go test -cover floors"
cover_floor ./internal/server 85
cover_floor ./internal/fleet 80
cover_floor ./internal/faultnet 70
cover_floor ./internal/evict 80
cover_floor ./internal/policy/ogd 80
cover_floor ./internal/drift 80

# Alloc-budget regression gate over the pinned hot-path benchmarks. The
# budgets in testdata/alloc_budgets.txt are exact current figures; any
# increase fails. The gate is self-tested first: fabricated output one
# alloc over budget must fail, so a broken parser cannot silently pass.
step "alloc budgets (self-test)"
synth_bench() { # fabricate bench output with every budget shifted by $1
    awk -v delta="$1" '!/^[ \t]*#/ && NF { printf "%s-8 100 10 ns/op 0 B/op %d allocs/op\n", $1, $2 + delta }' \
        testdata/alloc_budgets.txt
}
if ! synth_bench 0 | awk -v budgets=testdata/alloc_budgets.txt -f scripts/allocgate.awk >/dev/null; then
    echo "allocgate self-test failed: at-budget output was rejected" >&2
    exit 1
fi
if synth_bench 1 | awk -v budgets=testdata/alloc_budgets.txt -f scripts/allocgate.awk >/dev/null 2>&1; then
    echo "allocgate self-test failed: +1 allocs/op regression was not caught" >&2
    exit 1
fi

step "alloc budgets"
go test -run '^$' \
    -bench '^(BenchmarkPredict|BenchmarkFlatPredict|BenchmarkPredictBatch|BenchmarkPredictMatrix|BenchmarkRunRequestLoop|BenchmarkRequestObs|BenchmarkRouterEnqueueFlush|BenchmarkPickVictim|BenchmarkGDSFRequest|BenchmarkOGDRequest)$' \
    -benchmem -benchtime 200x ./internal/gbdt ./internal/sim ./internal/obs ./internal/fleet ./internal/evict ./internal/policy ./internal/policy/ogd \
    | awk -v budgets=testdata/alloc_budgets.txt -f scripts/allocgate.awk

# Short fuzz smoke over the frame codec and the model parser. The
# committed seed corpora under testdata/fuzz always replay; the smoke
# additionally mutates for a few seconds per target. -fuzzminimizetime
# is capped because the engine's default 60s minimization budget would
# otherwise swallow the whole run.
step "fuzz smoke"
go test -run '^$' -fuzz '^FuzzFrameDecode$' -fuzztime 5s -fuzzminimizetime 5s ./internal/server
go test -run '^$' -fuzz '^FuzzMuxFrameDecode$' -fuzztime 5s -fuzzminimizetime 5s ./internal/server
go test -run '^$' -fuzz '^FuzzModelLoad$' -fuzztime 5s -fuzzminimizetime 5s ./internal/gbdt

echo "ALL CHECKS PASSED"
