package lfo

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// runSeededPipeline executes the full window pipeline — synthetic trace
// generation, OPT labeling, online feature tracking, GBDT training, and
// simulation — from a fixed seed with the given worker count and returns
// every stage's result in serialized form.
func runSeededPipeline(t *testing.T, workers int) (traceBytes, optBytes, modelBytes, metricBytes []byte) {
	t.Helper()
	return runSeededPipelineObs(t, workers, nil)
}

// runSeededPipelineObs is runSeededPipeline with an optional metrics
// registry wired through every stage that accepts one.
func runSeededPipelineObs(t *testing.T, workers int, reg *MetricsRegistry) (traceBytes, optBytes, modelBytes, metricBytes []byte) {
	t.Helper()

	tr, err := GenerateCDNMix(8000, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(ObjectiveBHR)
	var traceBuf bytes.Buffer
	if err := WriteTrace(&traceBuf, tr); err != nil {
		t.Fatal(err)
	}

	res, err := ComputeOPT(tr, OPTConfig{CacheSize: 8 << 20, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	opt := make([]byte, len(res.Admit))
	for i, a := range res.Admit {
		if a {
			opt[i] = 1
		}
	}

	cache, err := NewCache(CacheConfig{CacheSize: 8 << 20, WindowSize: 3000, Workers: workers, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	m := Simulate(tr, cache, SimOptions{Warmup: 2000, Obs: reg})
	if cache.Model() == nil {
		t.Fatal("pipeline never trained a model")
	}
	var modelBuf bytes.Buffer
	if err := cache.Model().Save(&modelBuf); err != nil {
		t.Fatal(err)
	}

	metrics := make([]byte, 0, 3*8)
	metrics = binary.LittleEndian.AppendUint64(metrics, math.Float64bits(m.BHR()))
	metrics = binary.LittleEndian.AppendUint64(metrics, math.Float64bits(m.OHR()))
	metrics = binary.LittleEndian.AppendUint64(metrics, uint64(m.Requests))

	return traceBuf.Bytes(), opt, modelBuf.Bytes(), metrics
}

// TestPipelineDeterminism runs the complete gen → OPT → features → train →
// simulate pipeline twice with the same seed and requires byte-identical
// results at every stage — the reproducibility property lfolint's
// determinism rules exist to protect. A diff in traceBytes points at gen,
// in optBytes at opt/mcf, in modelBytes at features/gbdt, and in
// metricBytes at core/sim.
func TestPipelineDeterminism(t *testing.T) {
	tr1, opt1, model1, met1 := runSeededPipeline(t, 1)
	tr2, opt2, model2, met2 := runSeededPipeline(t, 1)

	if !bytes.Equal(tr1, tr2) {
		t.Error("generated traces differ between identically seeded runs")
	}
	if !bytes.Equal(opt1, opt2) {
		t.Error("OPT decisions differ between identically seeded runs")
	}
	if !bytes.Equal(model1, model2) {
		t.Error("serialized models differ between identically seeded runs")
	}
	if !bytes.Equal(met1, met2) {
		t.Error("simulation metrics differ between identically seeded runs")
	}
}

// TestObsCountersDeterministic guards the observability layer's
// non-interference contract: wiring a metrics registry through every
// pipeline stage must leave each stage's bytes identical to the
// uninstrumented run, and all count-valued metrics must themselves be
// deterministic (durations, of course, are not — only histogram
// observation counts are compared).
func TestObsCountersDeterministic(t *testing.T) {
	base1, base2, base3, base4 := runSeededPipeline(t, 1)

	regA := NewMetricsRegistry()
	a1, a2, a3, a4 := runSeededPipelineObs(t, 1, regA)
	for i, pair := range [][2][]byte{{base1, a1}, {base2, a2}, {base3, a3}, {base4, a4}} {
		if !bytes.Equal(pair[0], pair[1]) {
			t.Errorf("stage %d: instrumented run differs from uninstrumented run", i)
		}
	}

	regB := NewMetricsRegistry()
	runSeededPipelineObs(t, 1, regB)
	sa, sb := regA.Snapshot(), regB.Snapshot()
	if len(sa.Counters) == 0 {
		t.Fatal("instrumented run recorded no counters")
	}
	if len(sa.Counters) != len(sb.Counters) {
		t.Fatalf("counter sets differ: %d vs %d", len(sa.Counters), len(sb.Counters))
	}
	for i := range sa.Counters {
		if sa.Counters[i] != sb.Counters[i] {
			t.Errorf("counter %s: %d vs %s: %d across identical runs",
				sa.Counters[i].Name, sa.Counters[i].Value, sb.Counters[i].Name, sb.Counters[i].Value)
		}
	}
	for i := range sa.Gauges {
		if sa.Gauges[i] != sb.Gauges[i] {
			t.Errorf("gauge %s differs across identical runs", sa.Gauges[i].Name)
		}
	}
	if len(sa.Histograms) != len(sb.Histograms) {
		t.Fatalf("histogram sets differ: %d vs %d", len(sa.Histograms), len(sb.Histograms))
	}
	for i := range sa.Histograms {
		if sa.Histograms[i].Name != sb.Histograms[i].Name || sa.Histograms[i].Count != sb.Histograms[i].Count {
			t.Errorf("histogram %s observation count %d vs %d across identical runs",
				sa.Histograms[i].Name, sa.Histograms[i].Count, sb.Histograms[i].Count)
		}
	}
}

// TestPipelineDeterminismAcrossWorkers requires the parallel pipeline to
// reproduce the sequential run byte-for-byte at every stage, for several
// worker counts. Workers changes only how the work is scheduled — fixed
// shard decomposition and in-order reduction keep every float sum, split
// choice, and feature row identical.
func TestPipelineDeterminismAcrossWorkers(t *testing.T) {
	tr1, opt1, model1, met1 := runSeededPipeline(t, 1)
	for _, workers := range []int{2, 4, 8} {
		trN, optN, modelN, metN := runSeededPipeline(t, workers)
		if !bytes.Equal(tr1, trN) {
			t.Errorf("workers=%d: generated trace differs from sequential run", workers)
		}
		if !bytes.Equal(opt1, optN) {
			t.Errorf("workers=%d: OPT decisions differ from sequential run", workers)
		}
		if !bytes.Equal(model1, modelN) {
			t.Errorf("workers=%d: serialized model differs from sequential run", workers)
		}
		if !bytes.Equal(met1, metN) {
			t.Errorf("workers=%d: simulation metrics differ from sequential run", workers)
		}
	}
}
