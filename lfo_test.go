package lfo

import (
	"bytes"
	"strings"
	"testing"

	"lfo/internal/features"
)

// The façade tests exercise the public API end to end, the way a
// downstream user would.

func TestPublicQuickstartFlow(t *testing.T) {
	tr, err := GenerateCDNMix(12000, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(ObjectiveBHR)
	cache, err := NewCache(CacheConfig{CacheSize: 8 << 20, WindowSize: 4000})
	if err != nil {
		t.Fatal(err)
	}
	m := Simulate(tr, cache, SimOptions{Warmup: 4000})
	if m.Requests != 8000 {
		t.Errorf("measured requests = %d, want 8000", m.Requests)
	}
	if cache.Windows() == 0 {
		t.Error("cache never retrained")
	}
	if m.BHR() <= 0 || m.BHR() >= 1 {
		t.Errorf("BHR = %g out of range", m.BHR())
	}
}

func TestPublicPolicies(t *testing.T) {
	names := PolicyNames()
	if len(names) < 10 {
		t.Fatalf("only %d policies", len(names))
	}
	tr, err := GenerateWebMix(5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		p, err := NewPolicy(n, 4<<20, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m := Simulate(tr, p, SimOptions{}); m.Requests != 5000 {
			t.Errorf("%s: requests = %d", n, m.Requests)
		}
	}
	if _, err := NewPolicy("bogus", 1, 1); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestPublicOPTAndModel(t *testing.T) {
	tr, err := GenerateWebMix(6000, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(ObjectiveBHR)
	res, err := ComputeOPT(tr, OPTConfig{CacheSize: 2 << 20, Algorithm: OPTFlow})
	if err != nil {
		t.Fatal(err)
	}
	if res.BHR() <= 0 {
		t.Error("OPT BHR zero")
	}
	model, err := TrainWindowModel(tr, CacheConfig{CacheSize: 2 << 20, WindowSize: 6000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumTrees() != model.NumTrees() {
		t.Error("model round trip lost trees")
	}
}

func TestPublicTraceIO(t *testing.T) {
	tr, err := GenerateWebMix(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Errorf("round trip %d != %d requests", got.Len(), tr.Len())
	}
}

func TestPublicPredictionService(t *testing.T) {
	tr, err := GenerateWebMix(6000, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(ObjectiveBHR)
	model, err := TrainWindowModel(tr, CacheConfig{CacheSize: 2 << 20, WindowSize: 6000})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewPredictionServer(model, 2)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialPrediction(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	row := make([]float64, features.Dim)
	row[features.FeatSize] = 1024
	probs, err := c.Predict(row)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 1 || probs[0] < 0 || probs[0] > 1 {
		t.Errorf("probs = %v", probs)
	}
}

func TestPublicMRC(t *testing.T) {
	tr, err := GenerateWebMix(20000, 6)
	if err != nil {
		t.Fatal(err)
	}
	curve := ComputeMRC(tr)
	sizes := LogCacheSizes(1<<20, 64<<20, 5)
	if len(sizes) != 5 {
		t.Fatalf("sizes = %d", len(sizes))
	}
	prev := -1.0
	for _, s := range sizes {
		b := curve.BHR(s)
		if b < prev {
			t.Fatalf("curve not monotone at %d", s)
		}
		prev = b
	}
	// The curve must agree with an actual LRU simulation.
	size := sizes[3]
	p, err := NewPolicy("lru", size, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := Simulate(tr, p, SimOptions{})
	if got := curve.BHR(size); got != m.BHR() {
		t.Errorf("curve BHR %.6f != simulated %.6f", got, m.BHR())
	}
	optPts, err := ComputeOPTCurve(tr, []int64{size}, OPTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if optPts[0].BHR < m.BHR() {
		t.Errorf("OPT %.4f below LRU %.4f", optPts[0].BHR, m.BHR())
	}
}

func TestPublicTieredCache(t *testing.T) {
	tr, err := GenerateCDNMix(20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(ObjectiveBHR)
	model, err := TrainWindowModel(tr.Slice(0, 10000), CacheConfig{CacheSize: 12 << 20, WindowSize: 10000})
	if err != nil {
		t.Fatal(err)
	}
	tiers := []Tier{
		{Name: "ram", Capacity: 2 << 20, ReadCost: 1},
		{Name: "ssd", Capacity: 4 << 20, ReadCost: 10},
		{Name: "hdd", Capacity: 6 << 20, ReadCost: 100},
	}
	learned, err := NewTieredCache(tiers, NewModelAdmitter(model, 0.5), PlaceByLikelihood(0.85, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewTieredCache(tiers, nil, PlaceBySize(64<<10, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	eval := tr.Slice(10000, 20000)
	lm := Simulate(eval, learned, SimOptions{})
	nm := Simulate(eval, naive, SimOptions{})
	if lm.BHR() <= nm.BHR() {
		t.Errorf("learned tiered BHR %.4f <= naive %.4f", lm.BHR(), nm.BHR())
	}
	st := learned.Stats()
	if st.Hits[0]+st.Hits[1]+st.Hits[2] != lm.Hits {
		t.Errorf("tier hits %v don't sum to %d", st.Hits, lm.Hits)
	}
}

func TestPublicCompactProtocol(t *testing.T) {
	tr, err := GenerateWebMix(6000, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(ObjectiveBHR)
	model, err := TrainWindowModel(tr, CacheConfig{CacheSize: 2 << 20, WindowSize: tr.Len()})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewPredictionServer(model, 0)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialPrediction(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	probs, err := c.Admit([]AdmitRequest{
		{Time: 1, ID: 9, Size: 1024, Cost: 1024, Free: 1 << 20},
		{Time: 2, ID: 9, Size: 1024, Cost: 1024, Free: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 2 {
		t.Fatalf("probs = %v", probs)
	}
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %g out of range", p)
		}
	}
}
