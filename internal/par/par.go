// Package par provides the deterministic fan-out helpers behind the
// repository's Workers knobs. Every helper runs a caller-supplied closure
// over disjoint index ranges; callers guarantee the closure only writes
// state owned by its range (or per-shard accumulator slots), so the result
// is byte-identical for any worker count — parallelism changes wall-clock
// time, never output. Shard decomposition depends only on the problem
// size, never on the worker count, so per-shard reductions performed in
// shard order are reproducible too.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers knob value to a concrete goroutine count:
// 0 means all available cores (runtime.GOMAXPROCS), values below 1 clamp
// to 1 (fully sequential).
func Resolve(workers int) int {
	if workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// Ranges splits [0, n) into at most workers contiguous chunks of at least
// minChunk indices and runs fn on each chunk concurrently, returning when
// all chunks are done. fn must only write state owned by its [lo, hi)
// range. When a single chunk results (workers <= 1, n <= minChunk), fn
// runs inline with no goroutine.
func Ranges(n, workers, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	workers = Resolve(workers)
	chunks := (n + minChunk - 1) / minChunk
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RangesArg is Ranges with the range body split into a package-level
// function and an explicit argument that is handed back to fn on every
// chunk. A hot caller that would otherwise build a fresh capturing
// closure per call (one heap allocation each time) instead passes a
// static func value plus a by-value argument struct: when a single chunk
// results (workers <= 1, n <= minChunk) the call runs inline and
// allocates nothing at all. The multi-chunk path spawns one goroutine
// per chunk of at least minChunk indices, exactly like Ranges.
func RangesArg[T any](n, workers, minChunk int, arg T, fn func(arg T, lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	workers = Resolve(workers)
	chunks := (n + minChunk - 1) / minChunk
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		//lfolint:ignore hotpath-alloc fn is the caller's range body; hot-path callers verify it at their own annotation root
		fn(arg, 0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		//lfolint:ignore hotpath-alloc one goroutine+closure per chunk of >=minChunk indices, amortized across the range
		go func(lo, hi int) {
			defer wg.Done()
			//lfolint:ignore hotpath-alloc fn is the caller's range body; hot-path callers verify it at their own annotation root
			fn(arg, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Shards runs fn once per fixed-size shard of [0, n): shard s covers
// [s*shardSize, min((s+1)*shardSize, n)). The decomposition depends only
// on n and shardSize — never on workers — so a caller that accumulates
// into a per-shard slot and reduces the slots in shard order computes the
// same floating-point result for every worker count. With workers <= 1
// (or a single shard) the shards run inline in order.
func Shards(n, shardSize, workers int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if shardSize < 1 {
		shardSize = 1
	}
	shards := (n + shardSize - 1) / shardSize
	workers = Resolve(workers)
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			lo := s * shardSize
			hi := lo + shardSize
			if hi > n {
				hi = n
			}
			fn(s, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				lo := s * shardSize
				hi := lo + shardSize
				if hi > n {
					hi = n
				}
				fn(s, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// NumShards returns the shard count Shards would use for n and shardSize,
// for callers sizing per-shard accumulator slices.
func NumShards(n, shardSize int) int {
	if n <= 0 {
		return 0
	}
	if shardSize < 1 {
		shardSize = 1
	}
	return (n + shardSize - 1) / shardSize
}
