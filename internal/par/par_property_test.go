package par_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"lfo/internal/par"
)

// span is one callback invocation recorded by the property harness.
type span struct {
	shard  int // -1 for Ranges, which has no shard index
	lo, hi int
}

// collectRanges runs Ranges and returns every chunk it produced, sorted
// by lo (chunks run concurrently, so arrival order is meaningless).
func collectRanges(n, workers, minChunk int) []span {
	var mu sync.Mutex
	var out []span
	par.Ranges(n, workers, minChunk, func(lo, hi int) {
		mu.Lock()
		out = append(out, span{shard: -1, lo: lo, hi: hi})
		mu.Unlock()
	})
	sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
	return out
}

// collectShards runs Shards and returns every shard callback, sorted by
// shard index, plus the raw arrival order of shard indices.
func collectShards(n, shardSize, workers int) ([]span, []int) {
	var mu sync.Mutex
	var out []span
	var order []int
	par.Shards(n, shardSize, workers, func(shard, lo, hi int) {
		mu.Lock()
		out = append(out, span{shard: shard, lo: lo, hi: hi})
		order = append(order, shard)
		mu.Unlock()
	})
	sort.Slice(out, func(i, j int) bool { return out[i].shard < out[j].shard })
	return out, order
}

// checkTiling asserts the sorted spans tile [0, n) exactly: first chunk
// starts at 0, every chunk is non-empty, consecutive chunks touch with
// no gap or overlap, and the last chunk ends at n.
func checkTiling(t *testing.T, spans []span, n int, label string) {
	t.Helper()
	if n <= 0 {
		if len(spans) != 0 {
			t.Errorf("%s: n=%d produced %d chunks, want none", label, n, len(spans))
		}
		return
	}
	if len(spans) == 0 {
		t.Errorf("%s: n=%d produced no chunks", label, n)
		return
	}
	next := 0
	for i, s := range spans {
		if s.lo != next {
			t.Errorf("%s: chunk %d starts at %d, want %d (gap or overlap)", label, i, s.lo, next)
			return
		}
		if s.hi <= s.lo {
			t.Errorf("%s: chunk %d is empty [%d, %d)", label, i, s.lo, s.hi)
			return
		}
		next = s.hi
	}
	if next != n {
		t.Errorf("%s: chunks end at %d, want %d", label, next, n)
	}
}

// TestRangesProperty: for seeded-random (n, workers, minChunk), the
// chunks Ranges produces always tile [0, n) exactly once — no index
// visited twice, none skipped, regardless of worker count.
func TestRangesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(5000) - 10 // includes n <= 0
		workers := rng.Intn(20) - 3
		minChunk := rng.Intn(200) - 5
		spans := collectRanges(n, workers, minChunk)
		checkTiling(t, spans, n, "Ranges")
		// At most Resolve(workers) chunks, each at least minChunk wide
		// except possibly the last (the remainder).
		if w := par.Resolve(workers); len(spans) > w {
			t.Errorf("Ranges(n=%d, workers=%d): %d chunks > %d workers", n, workers, len(spans), w)
		}
	}
}

// TestShardsProperty: for seeded-random (n, shardSize, workers), shard s
// must cover exactly [s*shardSize, min((s+1)*shardSize, n)), every shard
// index in [0, NumShards) fires exactly once, and the decomposition is
// identical for every worker count — only scheduling changes.
func TestShardsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(4000) - 10
		shardSize := rng.Intn(150) - 5
		workers := 1 + rng.Intn(8)

		spans, _ := collectShards(n, shardSize, workers)
		checkTiling(t, spans, n, "Shards")

		effSize := shardSize
		if effSize < 1 {
			effSize = 1
		}
		want := par.NumShards(n, shardSize)
		if len(spans) != want {
			t.Fatalf("Shards(n=%d, size=%d): %d callbacks, NumShards says %d", n, shardSize, len(spans), want)
		}
		for i, s := range spans {
			if s.shard != i {
				t.Fatalf("Shards(n=%d, size=%d): shard index %d fired %d times or out of set", n, shardSize, i, s.shard)
			}
			wantLo := i * effSize
			wantHi := wantLo + effSize
			if wantHi > n {
				wantHi = n
			}
			if s.lo != wantLo || s.hi != wantHi {
				t.Fatalf("shard %d covers [%d, %d), want [%d, %d)", i, s.lo, s.hi, wantLo, wantHi)
			}
		}

		// Worker-count independence: the (shard, lo, hi) set is fixed.
		again, _ := collectShards(n, shardSize, 1+rng.Intn(8))
		for i := range spans {
			if spans[i] != again[i] {
				t.Fatalf("shard decomposition depends on workers: %+v vs %+v", spans[i], again[i])
			}
		}
	}
}

// TestShardsSequentialOrder: with workers <= 1 the shards must run
// inline, in ascending shard order — callers rely on this for ordered
// reductions without an extra sort.
func TestShardsSequentialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		shardSize := 1 + rng.Intn(100)
		_, order := collectShards(n, shardSize, 1)
		for i, s := range order {
			if s != i {
				t.Fatalf("sequential Shards ran shard %d at position %d", s, i)
			}
		}
	}
}
