package par_test

import (
	"sync/atomic"
	"testing"

	"lfo/internal/par"
)

func TestResolve(t *testing.T) {
	if got := par.Resolve(1); got != 1 {
		t.Errorf("Resolve(1) = %d, want 1", got)
	}
	if got := par.Resolve(-3); got != 1 {
		t.Errorf("Resolve(-3) = %d, want 1", got)
	}
	if got := par.Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d, want 7", got)
	}
	if got := par.Resolve(0); got < 1 {
		t.Errorf("Resolve(0) = %d, want >= 1", got)
	}
}

// TestRangesCovers verifies every index is visited exactly once for a
// spread of sizes and worker counts.
func TestRangesCovers(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1001} {
		for _, workers := range []int{1, 2, 3, 8} {
			seen := make([]int32, n)
			par.Ranges(n, workers, 4, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad range [%d, %d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestShardsDecompositionFixed verifies the shard boundaries are a
// function of (n, shardSize) only, independent of the worker count — the
// property deterministic per-shard reductions rely on.
func TestShardsDecompositionFixed(t *testing.T) {
	n, shardSize := 1000, 64
	shards := par.NumShards(n, shardSize)
	ref := make([][2]int, shards)
	par.Shards(n, shardSize, 1, func(s, lo, hi int) { ref[s] = [2]int{lo, hi} })
	for _, workers := range []int{2, 3, 8} {
		got := make([][2]int, shards)
		par.Shards(n, shardSize, workers, func(s, lo, hi int) { got[s] = [2]int{lo, hi} })
		for s := range ref {
			if got[s] != ref[s] {
				t.Fatalf("workers=%d shard %d = %v, want %v", workers, s, got[s], ref[s])
			}
		}
	}
}

// TestShardsSumDeterministic runs a per-shard float accumulation reduced
// in shard order and requires bit-identical totals across worker counts.
func TestShardsSumDeterministic(t *testing.T) {
	n := 4096
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+3)
	}
	sum := func(workers int) float64 {
		shards := par.NumShards(n, 128)
		part := make([]float64, shards)
		par.Shards(n, 128, workers, func(s, lo, hi int) {
			acc := 0.0
			for i := lo; i < hi; i++ {
				acc += vals[i]
			}
			part[s] = acc
		})
		total := 0.0
		for _, p := range part {
			total += p
		}
		return total
	}
	want := sum(1)
	for _, workers := range []int{2, 4, 8} {
		if got := sum(workers); got != want {
			t.Errorf("workers=%d sum %v != sequential %v", workers, got, want)
		}
	}
}
