package core

import (
	"testing"

	"lfo/internal/evict"
	"lfo/internal/obs"
	"lfo/internal/policy"
	"lfo/internal/sim"
)

func TestLFOEvictionModeValidated(t *testing.T) {
	cfg := testConfig(1<<20, 1000)
	cfg.Eviction = "clairvoyant"
	if _, err := New(cfg); err == nil {
		t.Error("unknown eviction mode accepted")
	}
}

func TestLFOEvictorNames(t *testing.T) {
	for mode, want := range map[string]string{
		"":        "LFO",
		"rank":    "LFO",
		"learned": "LFO+learned",
		"gdsf":    "LFO+gdsf",
		"lru":     "LFO+lru",
	} {
		cfg := testConfig(1<<20, 1000)
		cfg.Eviction = mode
		lfo, err := New(cfg)
		if err != nil {
			t.Fatalf("mode %q: %v", mode, err)
		}
		if got := lfo.Name(); got != want {
			t.Errorf("mode %q: Name() = %q, want %q", mode, got, want)
		}
	}
}

func TestLFOEvictionModesServe(t *testing.T) {
	tr := webTrace(t, 12000, 11)
	for _, mode := range []string{"learned", "gdsf", "lru"} {
		cfg := testConfig(2<<20, 4000)
		cfg.Eviction = mode
		lfo, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		m := sim.Run(tr, lfo, sim.Options{})
		if m.Hits == 0 {
			t.Errorf("%s: zero hits", mode)
		}
		if lfo.Windows() != 3 {
			t.Errorf("%s: Windows = %d, want 3", mode, lfo.Windows())
		}
		if lfo.Model() == nil {
			t.Errorf("%s: no admission model after three windows", mode)
		}
		if mode == "learned" {
			l, ok := lfo.evictor.(*evict.Learned)
			if !ok {
				t.Fatal("learned mode evictor is not *evict.Learned")
			}
			if l.Model() == nil {
				t.Error("learned: no eviction ranker deployed after three windows")
			}
		}
	}
}

// TestLFOLearnedEvictionDeterministic pins the acceptance requirement:
// LFO+learned is byte-identical across reruns and Workers values (the
// sampled-candidate stream is seeded, and both models train from
// fixed-order reductions).
func TestLFOLearnedEvictionDeterministic(t *testing.T) {
	tr := webTrace(t, 9000, 12)
	run := func(workers int) *sim.Metrics {
		cfg := testConfig(1<<20, 3000)
		cfg.Eviction = "learned"
		cfg.Seed = 7
		cfg.Workers = workers
		lfo, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(tr, lfo, sim.Options{})
	}
	a, b, c := run(1), run(1), run(4)
	if a.Hits != b.Hits || a.HitBytes != b.HitBytes {
		t.Errorf("rerun differs: %d/%d vs %d/%d", a.Hits, a.HitBytes, b.Hits, b.HitBytes)
	}
	if a.Hits != c.Hits || a.HitBytes != c.HitBytes {
		t.Errorf("workers=4 differs: %d/%d vs %d/%d", a.Hits, a.HitBytes, c.Hits, c.HitBytes)
	}
}

// TestLFOBootstrapLRUModeMatchesLRU pins the delegated-evictor bootstrap:
// before the first window, admit-all plus the lru evictor must reproduce
// plain LRU hit-for-hit (the rank-mode analogue is
// TestLFOBootstrapActsAsLRU).
func TestLFOBootstrapLRUModeMatchesLRU(t *testing.T) {
	tr := webTrace(t, 3000, 13)
	cfg := testConfig(1<<20, 1<<30 /* never retrain */)
	cfg.Eviction = "lru"
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := sim.Run(tr, lfo, sim.Options{})
	b := sim.Run(tr, policy.NewLRU(1<<20), sim.Options{})
	if a.Hits != b.Hits || a.HitBytes != b.HitBytes {
		t.Errorf("lru mode bootstrap %d/%d != LRU %d/%d", a.Hits, a.HitBytes, b.Hits, b.HitBytes)
	}
}

func TestLFOLearnedEvictionAsyncDeploys(t *testing.T) {
	tr := webTrace(t, 12000, 14)
	cfg := testConfig(2<<20, 3000)
	cfg.Eviction = "learned"
	cfg.AsyncTraining = true
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(tr, lfo, sim.Options{})
	lfo.Close()
	if lfo.Windows() == 0 {
		t.Fatal("no window deployed")
	}
	if lfo.evictor.(*evict.Learned).Model() == nil {
		t.Error("async round deployed no eviction ranker")
	}
}

func TestLFOEvictionObsMetrics(t *testing.T) {
	tr := webTrace(t, 9000, 15)
	reg := obs.NewRegistry()
	cfg := testConfig(1<<20, 3000)
	cfg.Eviction = "learned"
	cfg.Obs = reg
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(tr, lfo, sim.Options{})
	snap := reg.Snapshot()
	counters := make(map[string]int64, len(snap.Counters))
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{
		"evict_victims_total",
		"evict_candidate_sets_total",
		"evict_candidates_total",
		"evict_model_swaps_total",
	} {
		if counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "core_retrain_evict_train_ns" && h.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Error("core_retrain_evict_train_ns histogram recorded no samples")
	}
}
