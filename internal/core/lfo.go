// Package core implements LFO (Learning From OPT), the paper's
// contribution: a caching policy that learns the offline-optimal admission
// decisions from online features.
//
// The online pipeline follows Figure 2 of the paper. While serving
// requests, LFO records each request's online feature vector (§2.2). When
// a window of WindowSize requests completes, LFO computes OPT's decisions
// for the window (§2.1, package opt), trains a boosted-tree classifier
// mapping features to decisions (§2.3, package gbdt), and deploys the new
// model for the next window (§2.4): admit when the predicted likelihood is
// at least Cutoff, rank resident objects by predicted likelihood, and
// evict the minimum. Re-evaluating likelihoods on hits means a cache hit
// can demote — or even evict — the hit object, mirroring OPT.
package core

import (
	"fmt"
	"sort"

	"lfo/internal/drift"
	"lfo/internal/evict"
	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/obs"
	"lfo/internal/opt"
	"lfo/internal/par"
	"lfo/internal/policy/ogd"
	"lfo/internal/pq"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// Config parameterizes an LFO cache.
type Config struct {
	// CacheSize is the capacity in bytes. Required.
	CacheSize int64
	// WindowSize is the training window length in requests (Figure 2's
	// W). Zero means 50000.
	WindowSize int
	// Cutoff is the admission likelihood threshold (§2.4). Zero means
	// 0.5; use CutoffAdmitAll for an effective threshold of exactly 0
	// (admit everything the model scores). Other values must lie in
	// [0, 1] or New returns an error.
	Cutoff float64
	// OPT configures the offline-optimal computation for training
	// labels. OPT.CacheSize is overridden with CacheSize.
	OPT opt.Config
	// GBDT configures the learner; zero value means gbdt.DefaultParams.
	GBDT gbdt.Params
	// MaxTrackedObjects bounds the feature tracker's sparse state
	// (0 = unbounded).
	MaxTrackedObjects int
	// Workers caps the goroutines the retrain/score pipeline may use:
	// GBDT training parallelism, batched prediction, sharded window
	// feature extraction, and the OPT-labeling/rescore-extraction overlap
	// at window handoff. 0 means all available cores, 1 reproduces the
	// fully sequential pipeline. Every stage reduces in a fixed order, so
	// results are byte-identical for any value (unlike AsyncTraining,
	// which trades reproducibility for latency).
	Workers int
	// DisableEvictOnHit keeps hit objects resident even when their
	// re-evaluated likelihood falls below Cutoff. By default LFO evicts
	// them immediately (the paper's "a cache hit [may lead] to the
	// eviction of the hit object", §2.4); disabling is for ablations.
	DisableEvictOnHit bool
	// Eviction selects the eviction mechanism. "" or "rank" keeps §2.4's
	// full likelihood-ranked queue (re-scored on every retrain). The
	// alternatives delegate victim selection to internal/evict:
	// "learned" ranks a sampled candidate set with a second GBDT trained
	// from the same OPT window labels as the admission model (deployed
	// atomically alongside it each retrain), "gdsf" and "lru" are the
	// heuristic baselines for the admission×eviction ablation grid.
	Eviction string
	// EvictionCandidates is the sampled candidate set size K for
	// Eviction == "learned" (default evict.DefaultCandidates).
	EvictionCandidates int
	// Seed seeds the learned evictor's candidate sampler. Runs are
	// byte-reproducible for a fixed seed.
	Seed int64
	// Hybrid enables the online-learning bridge (see hybrid.go): a
	// shadow OGD learner runs beside the model and a per-size-class bias
	// pulls admission likelihoods toward the online learner's view
	// between retrains. With HybridLR == 0 the bias stays zero and
	// decisions are identical to the frozen-GBDT path — the machinery
	// runs, the modulation is inert.
	Hybrid bool
	// HybridLR is the bias learning rate; > 0 implies Hybrid.
	HybridLR float64
	// OGDEta overrides the shadow learner's gradient step scale
	// (default ogd.DefaultEta). Only meaningful with Hybrid.
	OGDEta float64
	// DriftThreshold, when positive, enables the feature-drift detector
	// and its early-retrain trigger: when any monitored feature's PSI
	// against the training-window snapshot exceeds the threshold, the
	// current window retrains early. drift.DefaultThreshold (0.25) is
	// the classic "population changed" break.
	DriftThreshold float64
	// DriftCheckEvery is how often (in requests) the drift statistic is
	// evaluated. Zero means 1000.
	DriftCheckEvery int
	// EarlyRetrainMin is the minimum current-window length (in requests)
	// an early retrain may train on. Zero means WindowSize/4.
	EarlyRetrainMin int
	// OnRetrain, when set, is called after each training round with
	// diagnostics about the new model.
	OnRetrain func(stats RetrainStats)
	// AsyncTraining trains each window's model in a background goroutine
	// and deploys it when ready, instead of blocking the request path —
	// the production concern §3 raises ("training tasks [must] not
	// interfere with the request traffic"). The request path stays on
	// the previous model until the swap; results are therefore no longer
	// bit-reproducible across runs. Callers must Close the cache to wait
	// for an in-flight training round.
	AsyncTraining bool
	// InitialModel warm-starts the cache with a previously trained model
	// (e.g. gbdt.Load of a persisted model), skipping the admit-all
	// bootstrap phase.
	InitialModel *gbdt.Model
	// Obs, when set, records the cache's runtime metrics: request/hit
	// counts, retrain stage durations (OPT labeling, GBDT training,
	// resident rescoring), async windows dropped, and deployed-window
	// lag. Metrics observe the pipeline and never feed back into
	// decisions, so determinism is unaffected; when nil, recording is a
	// no-op (see internal/obs).
	Obs *obs.Registry
}

// CutoffAdmitAll is the Config.Cutoff sentinel for an effective cutoff of
// exactly 0 — every request the model scores is admitted. A literal 0 is
// Go's zero value and therefore means "unset" (defaulting to 0.5), which
// would otherwise make the admit-all ablation unconfigurable.
const CutoffAdmitAll = -1

// RetrainStats summarizes one retraining round, surfaced via OnRetrain.
type RetrainStats struct {
	// Window is the index of the completed window (0-based).
	Window int
	// Samples is the training set size.
	Samples int
	// PositiveRate is the fraction of OPT-admitted samples.
	PositiveRate float64
	// TrainAccuracy is the model's agreement with OPT on its own
	// training window.
	TrainAccuracy float64
	// OPTAlgo reports which solver(s) labeled the window: "flow",
	// "greedy", "flow+greedy", or "none" (see opt.Result.AlgoLabel).
	OPTAlgo string
	// OPTSegments is the number of time-axis segments the OPT solve used.
	OPTSegments int
	// OPTFlowIntervals and OPTGreedyIntervals count the intervals labeled
	// by the exact flow solver and by the feasible greedy (including
	// segment-boundary stitching), respectively.
	OPTFlowIntervals   int
	OPTGreedyIntervals int
	// OPTDroppedIntervals counts intervals excluded by rank selection and
	// declared uncached without solving.
	OPTDroppedIntervals int
	// WindowsDropped is the cumulative number of completed windows
	// discarded untrained because an async round was still in flight
	// (always 0 for synchronous training).
	WindowsDropped int
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 50000
	}
	if c.Cutoff == 0 {
		c.Cutoff = 0.5
	} else if c.Cutoff == CutoffAdmitAll {
		c.Cutoff = 0
	}
	if c.GBDT.NumIterations == 0 {
		c.GBDT = gbdt.DefaultParams()
	}
	if c.HybridLR > 0 {
		c.Hybrid = true
	}
	if c.OGDEta == 0 {
		c.OGDEta = ogd.DefaultEta
	}
	if c.DriftCheckEvery <= 0 {
		c.DriftCheckEvery = 1000
	}
	if c.EarlyRetrainMin <= 0 {
		c.EarlyRetrainMin = c.WindowSize / 4
	}
	if c.GBDT.Workers == 0 {
		c.GBDT.Workers = c.Workers
	}
	if c.OPT.Workers == 0 {
		c.OPT.Workers = c.Workers
	}
	if c.OPT.Obs == nil {
		c.OPT.Obs = c.Obs
	}
	c.OPT.CacheSize = c.CacheSize
	return c
}

// LFO is the online learning cache. It implements sim.Policy.
type LFO struct {
	cfg     Config
	store   *sim.Store[evict.Meta]
	rank    *pq.Queue     // rank mode: min predicted likelihood first
	evictor evict.Evictor // non-rank modes; nil in rank mode
	tracker *features.Tracker
	model   *gbdt.Model

	// Window recording.
	winReqs  []trace.Request
	winFeats []float64 // flat rows, features.Dim wide
	windows  int

	clock int64 // request counter (bootstrap LRU rank)
	now   int64 // last request's trace time (feature time base)
	buf   []float64

	// Async training state: pending receives at most one in-flight
	// result; training spawns only when pending is nil.
	pending chan trainResult

	// completedWindows counts window boundaries crossed; windowsDropped
	// counts the subset discarded untrained by the async path. Their gap
	// against the deployed count p.windows is the window lag gauge.
	completedWindows int
	windowsDropped   int

	// Online-learning bridge state (hybrid.go): the shadow OGD learner
	// and per-size-class bias (nil unless cfg.Hybrid), the drift
	// detector and its row buffer (nil unless cfg.DriftThreshold > 0),
	// and the early-retrain count.
	shadow        *ogd.Learner
	bias          []float64
	det           *drift.Detector
	driftRow      [driftFeatures]float64
	driftRefs     int // SetReference count; the trigger arms at 2
	earlyRetrains int
	hm            hybridMetrics

	m  coreMetrics         // nil-safe handles; zero cost when cfg.Obs is nil
	em evict.VictimMetrics // victims-by-tier counters for evictor modes
}

// trainResult is one finished training round: the admission model, the
// eviction ranker (nil unless Eviction == "learned"), and the OnRetrain
// diagnostics (stats are only populated when OnRetrain is set).
type trainResult struct {
	model      *gbdt.Model
	evictModel *gbdt.Model
	stats      RetrainStats
}

// coreMetrics bundles the LFO hot-path metric handles, resolved once at
// construction. All handles are nil (single-branch no-ops) when the
// registry is nil.
type coreMetrics struct {
	requests       *obs.Counter
	hits           *obs.Counter
	retrains       *obs.Counter
	windowsDropped *obs.Counter
	windowLag      *obs.Gauge
	optNS          *obs.Histogram
	trainNS        *obs.Histogram
	rescoreNS      *obs.Histogram
	evictTrainNS   *obs.Histogram
}

func newCoreMetrics(r *obs.Registry) coreMetrics {
	return coreMetrics{
		requests:       r.Counter("core_requests_total"),
		hits:           r.Counter("core_hits_total"),
		retrains:       r.Counter("core_retrains_total"),
		windowsDropped: r.Counter("core_windows_dropped_total"),
		windowLag:      r.Gauge("core_window_lag"),
		optNS:          r.Histogram("core_retrain_opt_ns", obs.LatencyBounds),
		trainNS:        r.Histogram("core_retrain_train_ns", obs.LatencyBounds),
		rescoreNS:      r.Histogram("core_retrain_rescore_ns", obs.LatencyBounds),
		evictTrainNS:   r.Histogram("core_retrain_evict_train_ns", obs.LatencyBounds),
	}
}

// updateLag refreshes the deployed-window lag gauge: completed window
// boundaries not yet accounted for by a deployed or dropped round.
func (p *LFO) updateLag() {
	p.m.windowLag.Set(int64(p.completedWindows - p.windows - p.windowsDropped))
}

// New returns an LFO cache. Until the first window completes, LFO runs a
// bootstrap policy: admit everything, evict least-recently-used.
func New(cfg Config) (*LFO, error) {
	cfg = cfg.withDefaults()
	if cfg.CacheSize <= 0 {
		return nil, fmt.Errorf("core: CacheSize must be positive, got %d", cfg.CacheSize)
	}
	if cfg.Cutoff < 0 || cfg.Cutoff > 1 {
		return nil, fmt.Errorf("core: Cutoff must be in [0,1] (or the CutoffAdmitAll sentinel), got %v", cfg.Cutoff)
	}
	if err := cfg.GBDT.Validate(); err != nil {
		return nil, err
	}
	if cfg.HybridLR < 0 {
		return nil, fmt.Errorf("core: HybridLR must be non-negative, got %v", cfg.HybridLR)
	}
	if cfg.DriftThreshold < 0 {
		return nil, fmt.Errorf("core: DriftThreshold must be non-negative, got %v", cfg.DriftThreshold)
	}
	store := sim.NewStore[evict.Meta](cfg.CacheSize)
	p := &LFO{
		cfg:     cfg,
		store:   store,
		tracker: features.NewTracker(cfg.MaxTrackedObjects),
		buf:     make([]float64, features.Dim),
		m:       newCoreMetrics(cfg.Obs),
	}
	if cfg.Hybrid || cfg.DriftThreshold > 0 {
		p.hm = newHybridMetrics(cfg.Obs)
	}
	if cfg.Hybrid {
		shadow, err := ogd.NewLearner(ogd.Config{CacheSize: cfg.CacheSize, Eta: cfg.OGDEta})
		if err != nil {
			return nil, fmt.Errorf("core: %v", err)
		}
		p.shadow = shadow
		p.bias = make([]float64, numSizeClasses)
	}
	if cfg.DriftThreshold > 0 {
		det, err := drift.New(drift.Config{Features: driftFeatures})
		if err != nil {
			return nil, fmt.Errorf("core: %v", err)
		}
		p.det = det
	}
	switch cfg.Eviction {
	case "", "rank":
		p.rank = pq.New()
	default:
		ev, err := evict.NewEvictor(cfg.Eviction, store, evict.Options{
			Candidates: cfg.EvictionCandidates,
			Seed:       cfg.Seed,
			Obs:        cfg.Obs,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %v", err)
		}
		p.evictor = ev
		p.em = evict.NewVictimMetrics(cfg.Obs)
	}
	if cfg.InitialModel != nil {
		if cfg.InitialModel.Dim != features.Dim {
			return nil, fmt.Errorf("core: InitialModel dim %d != %d", cfg.InitialModel.Dim, features.Dim)
		}
		// Compile the flat inference kernel for hand-assembled warm-start
		// models; trained/loaded models are already compiled and recompile
		// cheaply.
		if err := cfg.InitialModel.Compile(); err != nil {
			return nil, fmt.Errorf("core: InitialModel: %v", err)
		}
		p.model = cfg.InitialModel
	}
	return p, nil
}

// Name implements sim.Policy.
func (p *LFO) Name() string {
	if p.evictor != nil {
		return "LFO+" + p.evictor.Name()
	}
	return "LFO"
}

// Model returns the currently deployed model (nil during bootstrap).
func (p *LFO) Model() *gbdt.Model { return p.model }

// Windows returns the number of completed training windows.
func (p *LFO) Windows() int { return p.windows }

// Request implements sim.Policy.
func (p *LFO) Request(r trace.Request) bool {
	p.clock++
	p.now = r.Time
	p.m.requests.Inc()
	p.tracker.Features(r, p.store.Free(), p.buf)

	// Record the window sample before acting (features must reflect the
	// pre-decision state, exactly what the deployed model would see).
	p.winReqs = append(p.winReqs, r)
	p.winFeats = append(p.winFeats, p.buf...)

	var likelihood float64
	if p.model != nil {
		likelihood = p.model.Predict(p.buf)
	}
	// admitScore is the admission-side likelihood: the hybrid bridge
	// modulates the admission decision only, leaving eviction ranks on
	// the raw model score so the rank queue stays internally consistent
	// between retrains.
	admitScore := likelihood
	if p.shadow != nil {
		admitScore = p.hybridScore(r, likelihood)
	}
	if p.det != nil {
		p.observeDrift(p.buf)
		if p.clock%int64(p.cfg.DriftCheckEvery) == 0 {
			p.driftCheck()
		}
	}

	e := p.store.Get(r.ID)
	hit := e != nil
	if hit {
		p.m.hits.Inc()
	}
	switch {
	case hit && p.model != nil:
		// Re-evaluate on every request (§2.4): update the eviction rank
		// and, matching OPT's behavior, drop the object right away when
		// the model says OPT would not keep it. The keep/evict call is an
		// admission-style decision, so it uses the hybrid-modulated score.
		if admitScore < p.cfg.Cutoff && !p.cfg.DisableEvictOnHit {
			p.removeResident(e)
		} else {
			p.touch(e, r, likelihood)
		}
	case hit:
		p.touch(e, r, float64(p.clock)) // bootstrap: LRU order
	case r.Size <= p.store.Capacity():
		if p.model == nil {
			// Bootstrap: admit all, LRU eviction order.
			p.admitWith(r, float64(p.clock))
		} else if admitScore >= p.cfg.Cutoff {
			p.admitWith(r, likelihood)
		}
	}

	p.tracker.Update(r)

	if p.pending != nil {
		// Deploy an asynchronously trained model as soon as it lands.
		select {
		case tr := <-p.pending:
			p.pending = nil
			p.deploy(tr)
		default:
		}
	}
	if len(p.winReqs) >= p.cfg.WindowSize {
		p.completedWindows++
		if p.cfg.AsyncTraining {
			p.retrainAsync()
		} else {
			p.retrain()
		}
	}
	return hit
}

// Close waits for any in-flight background training round and deploys its
// model. It is a no-op without AsyncTraining.
func (p *LFO) Close() {
	if p.pending != nil {
		tr := <-p.pending
		p.pending = nil
		p.deploy(tr)
	}
}

// removeResident drops a resident object (model-driven evict-on-hit),
// keeping whichever eviction structure is active consistent.
func (p *LFO) removeResident(e *sim.StoreEntry[evict.Meta]) {
	if p.evictor != nil {
		p.evictor.OnRemove(e)
	} else {
		p.rank.Remove(e.ID)
	}
	p.store.Remove(e.ID)
}

// touch records a hit: in rank mode the object's queue priority becomes
// rank; in evictor mode the evictor updates the entry's metadata.
func (p *LFO) touch(e *sim.StoreEntry[evict.Meta], r trace.Request, rank float64) {
	if p.evictor != nil {
		p.evictor.OnHit(e, r)
	} else {
		p.rank.Update(e.ID, rank)
	}
}

// admitWith dispatches admission to the active eviction mechanism.
func (p *LFO) admitWith(r trace.Request, rank float64) {
	if p.evictor != nil {
		p.admitEvictor(r)
	} else {
		p.admit(r, rank)
	}
}

// admit inserts the object with the given eviction rank, evicting
// lowest-ranked objects to make room. This is the per-request
// store/eviction loop, so it is held to the zero-allocation discipline.
//
//lfo:hotpath
func (p *LFO) admit(r trace.Request, rank float64) {
	for !p.store.Fits(r.Size) {
		id, _ := p.rank.PopMin()
		p.store.Remove(id)
	}
	p.store.Add(r.ID, r.Size)
	p.rank.Push(r.ID, rank)
}

// admitEvictor inserts the object under a delegated eviction strategy,
// asking the evictor for victims until the newcomer fits. The
// zero-allocation guarantee for victim selection lives on the concrete
// evictors (internal/evict pins the learned ranker's pick at 0 allocs);
// this wrapper stays off the annotated set because the interface
// dispatch itself defeats static verification.
func (p *LFO) admitEvictor(r trace.Request) {
	for !p.store.Fits(r.Size) {
		id := p.evictor.Victim(p.now)
		victim := p.store.Get(id)
		p.em.Observe(victim.Size)
		p.evictor.OnRemove(victim)
		p.store.Remove(id)
	}
	e := p.store.Add(r.ID, r.Size)
	p.evictor.OnAdmit(e, r)
}

// retrain runs the window handoff (Figure 2) as an explicit two-stage
// pipeline. Stage 1: OPT labeling of the completed window overlaps with
// extraction of the rescore matrix — the feature rows the incoming model
// will score for every resident object, i.e. the next window's first
// feature-extraction work. Stage 2: GBDT training (feature-parallel
// inside gbdt.Train), then one batched prediction over the prebuilt
// matrix re-ranks the residents. Every stage is a pure function of the
// boundary state and joins at a fixed point, so results are byte-identical
// to the sequential pipeline for any Workers value.
func (p *LFO) retrain() {
	if p.det != nil {
		// The live histogram now holds exactly the rows this round trains
		// on; snapshot it as the drift reference for the incoming model.
		p.det.SetReference()
		p.driftRefs++
	}
	win := &trace.Trace{Requests: p.winReqs}
	var res *opt.Result
	var optErr error
	var ids []trace.ObjectID
	var rescoreRows []float64
	if par.Resolve(p.cfg.Workers) > 1 {
		done := make(chan struct{})
		go func() {
			defer close(done)
			sc := obs.Start(p.m.optNS)
			res, optErr = opt.Compute(win, p.cfg.OPT)
			sc.Stop()
		}()
		if p.rank != nil {
			ids, rescoreRows = p.gatherResidents()
		}
		<-done
	} else {
		sc := obs.Start(p.m.optNS)
		res, optErr = opt.Compute(win, p.cfg.OPT)
		sc.Stop()
		if p.rank != nil {
			ids, rescoreRows = p.gatherResidents()
		}
	}
	if optErr != nil {
		// OPT computation cannot fail for a valid window and positive
		// cache size; fail loudly rather than serve a stale model
		// silently.
		panic(fmt.Sprintf("core: OPT computation failed: %v", optErr))
	}

	// The recorded window matrix becomes the training set without a copy;
	// it is released (re-sliced to zero length) only after training and
	// the stats pass are done with it.
	labels := make([]float64, len(p.winReqs))
	for i := range labels {
		if res.Admit[i] {
			labels[i] = 1
		}
	}
	ds := gbdt.DatasetFromMatrix(features.Dim, p.winFeats, labels)
	sc := obs.Start(p.m.trainNS)
	model, err := gbdt.Train(ds, p.cfg.GBDT)
	sc.Stop()
	if err != nil {
		panic(fmt.Sprintf("core: training failed: %v", err))
	}

	if p.cfg.OnRetrain != nil {
		p.cfg.OnRetrain(p.retrainStats(model, ds, res))
	}

	// The eviction ranker trains from the same window's OPT labels (an
	// object OPT would not cache is the ideal victim), so the one solve
	// above supervises both models.
	var evictModel *gbdt.Model
	if p.cfg.Eviction == "learned" {
		sc = obs.Start(p.m.evictTrainNS)
		evictModel, err = evict.Train(p.winReqs, res.Admit, p.cfg.GBDT)
		sc.Stop()
		if err != nil {
			panic(fmt.Sprintf("core: eviction training failed: %v", err))
		}
	}

	p.winReqs = p.winReqs[:0]
	p.winFeats = p.winFeats[:0]
	// Deploy both models at the same point, atomically between requests.
	// The fresh model owns the adapted state again: the bridge bias
	// starts over from zero.
	p.model = model
	p.resetBias()
	if evictModel != nil {
		p.evictor.SetModel(evictModel)
	}
	p.windows++
	p.m.retrains.Inc()
	p.updateLag()
	if p.rank != nil {
		sc = obs.Start(p.m.rescoreNS)
		p.rescoreWith(ids, rescoreRows)
		sc.Stop()
	}
}

// retrainStats measures the new model against OPT on its own training
// window with one batched prediction.
func (p *LFO) retrainStats(model *gbdt.Model, ds *gbdt.Dataset, res *opt.Result) RetrainStats {
	preds := make([]float64, ds.Len())
	model.PredictMatrix(p.winFeats, preds, p.cfg.Workers)
	correct, pos := 0, 0
	for i := 0; i < ds.Len(); i++ {
		pred := preds[i] >= p.cfg.Cutoff
		if pred == (ds.Label(i) == 1) {
			correct++
		}
		if ds.Label(i) == 1 {
			pos++
		}
	}
	return RetrainStats{
		Window:              p.windows,
		Samples:             ds.Len(),
		PositiveRate:        float64(pos) / float64(ds.Len()),
		TrainAccuracy:       float64(correct) / float64(ds.Len()),
		OPTAlgo:             res.AlgoLabel(),
		OPTSegments:         res.Segments,
		OPTFlowIntervals:    res.FlowIntervals,
		OPTGreedyIntervals:  res.GreedyIntervals,
		OPTDroppedIntervals: res.DroppedIntervals(),
		WindowsDropped:      p.windowsDropped,
	}
}

// deploy swaps in an asynchronously trained model and re-ranks residents;
// the async path has no prebuilt rescore matrix, so it extracts one here.
func (p *LFO) deploy(tr trainResult) {
	if p.cfg.OnRetrain != nil {
		tr.stats.Window = p.windows
		tr.stats.WindowsDropped = p.windowsDropped
		p.cfg.OnRetrain(tr.stats)
	}
	p.model = tr.model
	p.resetBias()
	if tr.evictModel != nil {
		p.evictor.SetModel(tr.evictModel)
	}
	p.windows++
	p.m.retrains.Inc()
	p.updateLag()
	if p.rank != nil {
		ids, rows := p.gatherResidents()
		sc := obs.Start(p.m.rescoreNS)
		p.rescoreWith(ids, rows)
		sc.Stop()
	}
}

// retrainAsync snapshots the window and trains in a goroutine; the model
// deploys on a later Request (or Close). The request path keeps serving
// on the previous model meanwhile. If a training round is still in
// flight, the window is dropped without snapshotting it (training lags
// the traffic), which matches a production deployment that sheds stale
// training work — the drop is counted, not silent.
func (p *LFO) retrainAsync() {
	if p.pending != nil {
		// Previous round still training; drop this window before paying
		// for the two snapshot copies it would otherwise never use.
		p.winReqs = p.winReqs[:0]
		p.winFeats = p.winFeats[:0]
		p.windowsDropped++
		p.m.windowsDropped.Inc()
		p.updateLag()
		return
	}
	if p.det != nil {
		// Snapshot the drift reference at launch: the rows observed since
		// the previous launch are what this round trains on (plus any
		// dropped windows, which the incoming model never saw but which
		// are the best available stand-in for its training distribution).
		p.det.SetReference()
		p.driftRefs++
	}
	reqs := append([]trace.Request(nil), p.winReqs...)
	feats := append([]float64(nil), p.winFeats...)
	p.winReqs = p.winReqs[:0]
	p.winFeats = p.winFeats[:0]
	p.updateLag()
	ch := make(chan trainResult, 1)
	p.pending = ch
	cfg := p.cfg
	m := p.m
	go func() {
		ch <- trainWindow(reqs, feats, cfg, m)
	}()
}

// trainWindow runs the OPT-label + fit pipeline on a snapshot; it is free
// of references to the live cache so it can run concurrently with
// serving. Stats are computed only when someone will read them.
func trainWindow(reqs []trace.Request, feats []float64, cfg Config, m coreMetrics) trainResult {
	win := &trace.Trace{Requests: reqs}
	sc := obs.Start(m.optNS)
	res, err := opt.Compute(win, cfg.OPT)
	sc.Stop()
	if err != nil {
		panic(fmt.Sprintf("core: OPT computation failed: %v", err))
	}
	labels := make([]float64, len(reqs))
	for i := range labels {
		if res.Admit[i] {
			labels[i] = 1
		}
	}
	ds := gbdt.DatasetFromMatrix(features.Dim, feats, labels)
	sc = obs.Start(m.trainNS)
	model, err := gbdt.Train(ds, cfg.GBDT)
	sc.Stop()
	if err != nil {
		panic(fmt.Sprintf("core: training failed: %v", err))
	}
	tr := trainResult{model: model}
	if cfg.Eviction == "learned" {
		sc = obs.Start(m.evictTrainNS)
		em, everr := evict.Train(reqs, res.Admit, cfg.GBDT)
		sc.Stop()
		if everr != nil {
			panic(fmt.Sprintf("core: eviction training failed: %v", everr))
		}
		tr.evictModel = em
	}
	if cfg.OnRetrain != nil {
		preds := make([]float64, ds.Len())
		model.PredictMatrix(feats, preds, cfg.Workers)
		correct, pos := 0, 0
		for i := 0; i < ds.Len(); i++ {
			pred := preds[i] >= cfg.Cutoff
			if pred == (ds.Label(i) == 1) {
				correct++
			}
			if ds.Label(i) == 1 {
				pos++
			}
		}
		// Window and WindowsDropped are stamped at deploy time, when the
		// live cache's counters are in scope.
		tr.stats = RetrainStats{
			Samples:             ds.Len(),
			PositiveRate:        float64(pos) / float64(ds.Len()),
			TrainAccuracy:       float64(correct) / float64(ds.Len()),
			OPTAlgo:             res.AlgoLabel(),
			OPTSegments:         res.Segments,
			OPTFlowIntervals:    res.FlowIntervals,
			OPTGreedyIntervals:  res.GreedyIntervals,
			OPTDroppedIntervals: res.DroppedIntervals(),
		}
	}
	return tr
}

// gatherResidents snapshots the resident set in sorted ID order and
// extracts the feature row the model scores each resident with. Sorting
// keeps map iteration order out of the rank queue's tie-breaking; the
// tracker is only read, so rows fill in parallel chunks.
func (p *LFO) gatherResidents() ([]trace.ObjectID, []float64) {
	type resident struct {
		id   trace.ObjectID
		size int64
	}
	residents := make([]resident, 0, p.store.Len())
	p.store.Range(func(e *sim.StoreEntry[evict.Meta]) bool {
		residents = append(residents, resident{e.ID, e.Size})
		return true
	})
	sort.Slice(residents, func(i, j int) bool { return residents[i].id < residents[j].id })

	ids := make([]trace.ObjectID, len(residents))
	rows := make([]float64, len(residents)*features.Dim)
	free := p.store.Free()
	par.Ranges(len(residents), p.cfg.Workers, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ids[i] = residents[i].id
			p.tracker.FeaturesByID(residents[i].id, residents[i].size, p.now, free,
				rows[i*features.Dim:(i+1)*features.Dim])
		}
	})
	return ids, rows
}

// rescoreWith re-ranks the prebuilt resident rows under the current model
// with one batched prediction, so bootstrap-era or stale-model priorities
// cannot linger.
func (p *LFO) rescoreWith(ids []trace.ObjectID, rows []float64) {
	if len(ids) == 0 {
		return
	}
	scores := make([]float64, len(ids))
	p.model.PredictMatrix(rows, scores, p.cfg.Workers)
	for i, id := range ids {
		p.rank.Update(id, scores[i])
	}
}
