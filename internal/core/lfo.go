// Package core implements LFO (Learning From OPT), the paper's
// contribution: a caching policy that learns the offline-optimal admission
// decisions from online features.
//
// The online pipeline follows Figure 2 of the paper. While serving
// requests, LFO records each request's online feature vector (§2.2). When
// a window of WindowSize requests completes, LFO computes OPT's decisions
// for the window (§2.1, package opt), trains a boosted-tree classifier
// mapping features to decisions (§2.3, package gbdt), and deploys the new
// model for the next window (§2.4): admit when the predicted likelihood is
// at least Cutoff, rank resident objects by predicted likelihood, and
// evict the minimum. Re-evaluating likelihoods on hits means a cache hit
// can demote — or even evict — the hit object, mirroring OPT.
package core

import (
	"fmt"
	"sort"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/opt"
	"lfo/internal/par"
	"lfo/internal/pq"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// Config parameterizes an LFO cache.
type Config struct {
	// CacheSize is the capacity in bytes. Required.
	CacheSize int64
	// WindowSize is the training window length in requests (Figure 2's
	// W). Zero means 50000.
	WindowSize int
	// Cutoff is the admission likelihood threshold (§2.4). Zero means
	// 0.5.
	Cutoff float64
	// OPT configures the offline-optimal computation for training
	// labels. OPT.CacheSize is overridden with CacheSize.
	OPT opt.Config
	// GBDT configures the learner; zero value means gbdt.DefaultParams.
	GBDT gbdt.Params
	// MaxTrackedObjects bounds the feature tracker's sparse state
	// (0 = unbounded).
	MaxTrackedObjects int
	// Workers caps the goroutines the retrain/score pipeline may use:
	// GBDT training parallelism, batched prediction, sharded window
	// feature extraction, and the OPT-labeling/rescore-extraction overlap
	// at window handoff. 0 means all available cores, 1 reproduces the
	// fully sequential pipeline. Every stage reduces in a fixed order, so
	// results are byte-identical for any value (unlike AsyncTraining,
	// which trades reproducibility for latency).
	Workers int
	// DisableEvictOnHit keeps hit objects resident even when their
	// re-evaluated likelihood falls below Cutoff. By default LFO evicts
	// them immediately (the paper's "a cache hit [may lead] to the
	// eviction of the hit object", §2.4); disabling is for ablations.
	DisableEvictOnHit bool
	// OnRetrain, when set, is called after each training round with
	// diagnostics about the new model.
	OnRetrain func(stats RetrainStats)
	// AsyncTraining trains each window's model in a background goroutine
	// and deploys it when ready, instead of blocking the request path —
	// the production concern §3 raises ("training tasks [must] not
	// interfere with the request traffic"). The request path stays on
	// the previous model until the swap; results are therefore no longer
	// bit-reproducible across runs. Callers must Close the cache to wait
	// for an in-flight training round.
	AsyncTraining bool
	// InitialModel warm-starts the cache with a previously trained model
	// (e.g. gbdt.Load of a persisted model), skipping the admit-all
	// bootstrap phase.
	InitialModel *gbdt.Model
}

// RetrainStats summarizes one retraining round, surfaced via OnRetrain.
type RetrainStats struct {
	// Window is the index of the completed window (0-based).
	Window int
	// Samples is the training set size.
	Samples int
	// PositiveRate is the fraction of OPT-admitted samples.
	PositiveRate float64
	// TrainAccuracy is the model's agreement with OPT on its own
	// training window.
	TrainAccuracy float64
	// OPTAlgo reports which solver(s) labeled the window: "flow",
	// "greedy", "flow+greedy", or "none" (see opt.Result.AlgoLabel).
	OPTAlgo string
	// OPTSegments is the number of time-axis segments the OPT solve used.
	OPTSegments int
	// OPTFlowIntervals and OPTGreedyIntervals count the intervals labeled
	// by the exact flow solver and by the feasible greedy (including
	// segment-boundary stitching), respectively.
	OPTFlowIntervals   int
	OPTGreedyIntervals int
	// OPTDroppedIntervals counts intervals excluded by rank selection and
	// declared uncached without solving.
	OPTDroppedIntervals int
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 50000
	}
	if c.Cutoff <= 0 {
		c.Cutoff = 0.5
	}
	if c.GBDT.NumIterations == 0 {
		c.GBDT = gbdt.DefaultParams()
	}
	if c.GBDT.Workers == 0 {
		c.GBDT.Workers = c.Workers
	}
	if c.OPT.Workers == 0 {
		c.OPT.Workers = c.Workers
	}
	c.OPT.CacheSize = c.CacheSize
	return c
}

// LFO is the online learning cache. It implements sim.Policy.
type LFO struct {
	cfg     Config
	store   *sim.Store[struct{}]
	rank    *pq.Queue // eviction rank: min predicted likelihood first
	tracker *features.Tracker
	model   *gbdt.Model

	// Window recording.
	winReqs  []trace.Request
	winFeats []float64 // flat rows, features.Dim wide
	windows  int

	clock int64 // request counter (bootstrap LRU rank)
	now   int64 // last request's trace time (feature time base)
	buf   []float64

	// Async training state: pending receives at most one in-flight
	// result; training spawns only when pending is nil.
	pending chan *gbdt.Model
}

// New returns an LFO cache. Until the first window completes, LFO runs a
// bootstrap policy: admit everything, evict least-recently-used.
func New(cfg Config) (*LFO, error) {
	cfg = cfg.withDefaults()
	if cfg.CacheSize <= 0 {
		return nil, fmt.Errorf("core: CacheSize must be positive, got %d", cfg.CacheSize)
	}
	if err := cfg.GBDT.Validate(); err != nil {
		return nil, err
	}
	p := &LFO{
		cfg:     cfg,
		store:   sim.NewStore[struct{}](cfg.CacheSize),
		rank:    pq.New(),
		tracker: features.NewTracker(cfg.MaxTrackedObjects),
		buf:     make([]float64, features.Dim),
	}
	if cfg.InitialModel != nil {
		if cfg.InitialModel.Dim != features.Dim {
			return nil, fmt.Errorf("core: InitialModel dim %d != %d", cfg.InitialModel.Dim, features.Dim)
		}
		p.model = cfg.InitialModel
	}
	return p, nil
}

// Name implements sim.Policy.
func (p *LFO) Name() string { return "LFO" }

// Model returns the currently deployed model (nil during bootstrap).
func (p *LFO) Model() *gbdt.Model { return p.model }

// Windows returns the number of completed training windows.
func (p *LFO) Windows() int { return p.windows }

// Request implements sim.Policy.
func (p *LFO) Request(r trace.Request) bool {
	p.clock++
	p.now = r.Time
	p.tracker.Features(r, p.store.Free(), p.buf)

	// Record the window sample before acting (features must reflect the
	// pre-decision state, exactly what the deployed model would see).
	p.winReqs = append(p.winReqs, r)
	p.winFeats = append(p.winFeats, p.buf...)

	var likelihood float64
	if p.model != nil {
		likelihood = p.model.Predict(p.buf)
	}

	hit := p.store.Has(r.ID)
	switch {
	case hit && p.model != nil:
		// Re-evaluate on every request (§2.4): update the eviction rank
		// and, matching OPT's behavior, drop the object right away when
		// the model says OPT would not keep it.
		if likelihood < p.cfg.Cutoff && !p.cfg.DisableEvictOnHit {
			p.rank.Remove(r.ID)
			p.store.Remove(r.ID)
		} else {
			p.rank.Update(r.ID, likelihood)
		}
	case hit:
		p.rank.Update(r.ID, float64(p.clock)) // bootstrap: LRU order
	case r.Size <= p.store.Capacity():
		if p.model == nil {
			// Bootstrap: admit all, LRU eviction order.
			p.admit(r, float64(p.clock))
		} else if likelihood >= p.cfg.Cutoff {
			p.admit(r, likelihood)
		}
	}

	p.tracker.Update(r)

	if p.pending != nil {
		// Deploy an asynchronously trained model as soon as it lands.
		select {
		case m := <-p.pending:
			p.pending = nil
			p.deploy(m)
		default:
		}
	}
	if len(p.winReqs) >= p.cfg.WindowSize {
		if p.cfg.AsyncTraining {
			p.retrainAsync()
		} else {
			p.retrain()
		}
	}
	return hit
}

// Close waits for any in-flight background training round and deploys its
// model. It is a no-op without AsyncTraining.
func (p *LFO) Close() {
	if p.pending != nil {
		p.deploy(<-p.pending)
		p.pending = nil
	}
}

// admit inserts the object with the given eviction rank, evicting
// lowest-ranked objects to make room.
func (p *LFO) admit(r trace.Request, rank float64) {
	for !p.store.Fits(r.Size) {
		id, _ := p.rank.PopMin()
		p.store.Remove(id)
	}
	p.store.Add(r.ID, r.Size)
	p.rank.Push(r.ID, rank)
}

// retrain runs the window handoff (Figure 2) as an explicit two-stage
// pipeline. Stage 1: OPT labeling of the completed window overlaps with
// extraction of the rescore matrix — the feature rows the incoming model
// will score for every resident object, i.e. the next window's first
// feature-extraction work. Stage 2: GBDT training (feature-parallel
// inside gbdt.Train), then one batched prediction over the prebuilt
// matrix re-ranks the residents. Every stage is a pure function of the
// boundary state and joins at a fixed point, so results are byte-identical
// to the sequential pipeline for any Workers value.
func (p *LFO) retrain() {
	win := &trace.Trace{Requests: p.winReqs}
	var res *opt.Result
	var optErr error
	var ids []trace.ObjectID
	var rescoreRows []float64
	if par.Resolve(p.cfg.Workers) > 1 {
		done := make(chan struct{})
		go func() {
			defer close(done)
			res, optErr = opt.Compute(win, p.cfg.OPT)
		}()
		ids, rescoreRows = p.gatherResidents()
		<-done
	} else {
		res, optErr = opt.Compute(win, p.cfg.OPT)
		ids, rescoreRows = p.gatherResidents()
	}
	if optErr != nil {
		// OPT computation cannot fail for a valid window and positive
		// cache size; fail loudly rather than serve a stale model
		// silently.
		panic(fmt.Sprintf("core: OPT computation failed: %v", optErr))
	}

	// The recorded window matrix becomes the training set without a copy;
	// it is released (re-sliced to zero length) only after training and
	// the stats pass are done with it.
	labels := make([]float64, len(p.winReqs))
	for i := range labels {
		if res.Admit[i] {
			labels[i] = 1
		}
	}
	ds := gbdt.DatasetFromMatrix(features.Dim, p.winFeats, labels)
	model, err := gbdt.Train(ds, p.cfg.GBDT)
	if err != nil {
		panic(fmt.Sprintf("core: training failed: %v", err))
	}

	if p.cfg.OnRetrain != nil {
		p.cfg.OnRetrain(p.retrainStats(model, ds, res))
	}

	p.winReqs = p.winReqs[:0]
	p.winFeats = p.winFeats[:0]
	p.model = model
	p.windows++
	p.rescoreWith(ids, rescoreRows)
}

// retrainStats measures the new model against OPT on its own training
// window with one batched prediction.
func (p *LFO) retrainStats(model *gbdt.Model, ds *gbdt.Dataset, res *opt.Result) RetrainStats {
	preds := make([]float64, ds.Len())
	model.PredictBatch(p.winFeats, preds, p.cfg.Workers)
	correct, pos := 0, 0
	for i := 0; i < ds.Len(); i++ {
		pred := preds[i] >= p.cfg.Cutoff
		if pred == (ds.Label(i) == 1) {
			correct++
		}
		if ds.Label(i) == 1 {
			pos++
		}
	}
	return RetrainStats{
		Window:              p.windows,
		Samples:             ds.Len(),
		PositiveRate:        float64(pos) / float64(ds.Len()),
		TrainAccuracy:       float64(correct) / float64(ds.Len()),
		OPTAlgo:             res.AlgoLabel(),
		OPTSegments:         res.Segments,
		OPTFlowIntervals:    res.FlowIntervals,
		OPTGreedyIntervals:  res.GreedyIntervals,
		OPTDroppedIntervals: res.DroppedIntervals(),
	}
}

// deploy swaps in a freshly trained model and re-ranks residents; the
// async path has no prebuilt rescore matrix, so it extracts one here.
func (p *LFO) deploy(model *gbdt.Model) {
	p.model = model
	p.windows++
	ids, rows := p.gatherResidents()
	p.rescoreWith(ids, rows)
}

// retrainAsync snapshots the window and trains in a goroutine; the model
// deploys on a later Request (or Close). The request path keeps serving
// on the previous model meanwhile. If a training round is still in
// flight, the oldest window is dropped (training lags the traffic), which
// matches a production deployment that sheds stale training work.
func (p *LFO) retrainAsync() {
	reqs := append([]trace.Request(nil), p.winReqs...)
	feats := append([]float64(nil), p.winFeats...)
	p.winReqs = p.winReqs[:0]
	p.winFeats = p.winFeats[:0]
	if p.pending != nil {
		return // previous round still training; drop this window
	}
	ch := make(chan *gbdt.Model, 1)
	p.pending = ch
	cfg := p.cfg
	go func() {
		ch <- trainWindow(reqs, feats, cfg)
	}()
}

// trainWindow runs the OPT-label + fit pipeline on a snapshot; it is free
// of references to the live cache so it can run concurrently with
// serving.
func trainWindow(reqs []trace.Request, feats []float64, cfg Config) *gbdt.Model {
	win := &trace.Trace{Requests: reqs}
	res, err := opt.Compute(win, cfg.OPT)
	if err != nil {
		panic(fmt.Sprintf("core: OPT computation failed: %v", err))
	}
	labels := make([]float64, len(reqs))
	for i := range labels {
		if res.Admit[i] {
			labels[i] = 1
		}
	}
	model, err := gbdt.Train(gbdt.DatasetFromMatrix(features.Dim, feats, labels), cfg.GBDT)
	if err != nil {
		panic(fmt.Sprintf("core: training failed: %v", err))
	}
	return model
}

// gatherResidents snapshots the resident set in sorted ID order and
// extracts the feature row the model scores each resident with. Sorting
// keeps map iteration order out of the rank queue's tie-breaking; the
// tracker is only read, so rows fill in parallel chunks.
func (p *LFO) gatherResidents() ([]trace.ObjectID, []float64) {
	type resident struct {
		id   trace.ObjectID
		size int64
	}
	residents := make([]resident, 0, p.store.Len())
	p.store.Range(func(e *sim.StoreEntry[struct{}]) bool {
		residents = append(residents, resident{e.ID, e.Size})
		return true
	})
	sort.Slice(residents, func(i, j int) bool { return residents[i].id < residents[j].id })

	ids := make([]trace.ObjectID, len(residents))
	rows := make([]float64, len(residents)*features.Dim)
	free := p.store.Free()
	par.Ranges(len(residents), p.cfg.Workers, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ids[i] = residents[i].id
			p.tracker.FeaturesByID(residents[i].id, residents[i].size, p.now, free,
				rows[i*features.Dim:(i+1)*features.Dim])
		}
	})
	return ids, rows
}

// rescoreWith re-ranks the prebuilt resident rows under the current model
// with one batched prediction, so bootstrap-era or stale-model priorities
// cannot linger.
func (p *LFO) rescoreWith(ids []trace.ObjectID, rows []float64) {
	if len(ids) == 0 {
		return
	}
	scores := make([]float64, len(ids))
	p.model.PredictBatch(rows, scores, p.cfg.Workers)
	for i, id := range ids {
		p.rank.Update(id, scores[i])
	}
}
