package core

import (
	"testing"

	"lfo/internal/gbdt"

	"lfo/internal/gen"
	"lfo/internal/obs"
	"lfo/internal/opt"
	"lfo/internal/policy"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// testConfig returns a small, fast configuration for unit tests.
func testConfig(cacheSize int64, window int) Config {
	return Config{
		CacheSize:  cacheSize,
		WindowSize: window,
		OPT:        opt.Config{Algorithm: opt.AlgoFlow},
	}
}

func webTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	tr, err := gen.Generate(gen.WebMix(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return tr.WithCosts(trace.ObjectiveBHR)
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero CacheSize accepted")
	}
	cfg := testConfig(1<<20, 1000)
	cfg.GBDT.NumIterations = -1
	if _, err := New(cfg); err == nil {
		t.Error("invalid GBDT params accepted")
	}
}

func TestCutoffDefaultsAndSentinel(t *testing.T) {
	// Regression: withDefaults used to treat Cutoff <= 0 as unset, which
	// made the admit-all ablation (cutoff exactly 0) unconfigurable and
	// silently mapped negative cutoffs to 0.5.
	mk := func(cutoff float64) (*LFO, error) {
		cfg := testConfig(1<<20, 1000)
		cfg.Cutoff = cutoff
		return New(cfg)
	}

	lfo, err := mk(0) // zero value: unset, defaults to 0.5
	if err != nil {
		t.Fatal(err)
	}
	if lfo.cfg.Cutoff != 0.5 {
		t.Errorf("unset cutoff = %v, want 0.5", lfo.cfg.Cutoff)
	}

	lfo, err = mk(CutoffAdmitAll) // sentinel: effective cutoff exactly 0
	if err != nil {
		t.Fatal(err)
	}
	if lfo.cfg.Cutoff != 0 {
		t.Errorf("CutoffAdmitAll cutoff = %v, want 0", lfo.cfg.Cutoff)
	}

	lfo, err = mk(0.25) // explicit in-range value passes through
	if err != nil {
		t.Fatal(err)
	}
	if lfo.cfg.Cutoff != 0.25 {
		t.Errorf("explicit cutoff = %v, want 0.25", lfo.cfg.Cutoff)
	}

	for _, bad := range []float64{-0.3, -2, 1.5} {
		if _, err := mk(bad); err == nil {
			t.Errorf("cutoff %v accepted, want error", bad)
		}
	}
}

func TestLFOTrainsAndServes(t *testing.T) {
	tr := webTrace(t, 12000, 1)
	lfo, err := New(testConfig(2<<20, 4000))
	if err != nil {
		t.Fatal(err)
	}
	var retrains []RetrainStats
	lfo.cfg.OnRetrain = func(s RetrainStats) { retrains = append(retrains, s) }
	m := sim.Run(tr, lfo, sim.Options{})
	if lfo.Windows() != 3 {
		t.Errorf("Windows = %d, want 3", lfo.Windows())
	}
	if lfo.Model() == nil {
		t.Fatal("no model after three windows")
	}
	if len(retrains) != 3 {
		t.Fatalf("OnRetrain fired %d times, want 3", len(retrains))
	}
	for _, s := range retrains {
		if s.Samples != 4000 {
			t.Errorf("window %d: %d samples, want 4000", s.Window, s.Samples)
		}
		if s.TrainAccuracy < 0.7 {
			t.Errorf("window %d: train accuracy %.3f implausibly low", s.Window, s.TrainAccuracy)
		}
		if s.PositiveRate <= 0 || s.PositiveRate >= 1 {
			t.Errorf("window %d: degenerate positive rate %.3f", s.Window, s.PositiveRate)
		}
		if s.OPTAlgo != "flow" {
			t.Errorf("window %d: OPTAlgo = %q, want flow (AlgoFlow, small window)", s.Window, s.OPTAlgo)
		}
		if s.OPTSegments < 1 {
			t.Errorf("window %d: OPTSegments = %d, want >= 1", s.Window, s.OPTSegments)
		}
		if s.OPTFlowIntervals+s.OPTGreedyIntervals+s.OPTDroppedIntervals <= 0 {
			t.Errorf("window %d: no interval accounting in stats", s.Window)
		}
	}
	if m.Hits == 0 {
		t.Error("LFO scored zero hits")
	}
}

func TestLFOBeatsLRUOnSkewedTrace(t *testing.T) {
	// The paper's headline (Fig 6): LFO outperforms LRU on BHR. Use a
	// small cache so admission control matters.
	tr := webTrace(t, 30000, 2)
	const capacity = 1 << 20
	lfo, err := New(testConfig(capacity, 5000))
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options{Warmup: 10000}
	lfoM := sim.Run(tr, lfo, opts)
	lruM := sim.Run(tr, policy.NewLRU(capacity), opts)
	if lfoM.BHR() <= lruM.BHR() {
		t.Errorf("LFO BHR %.4f <= LRU %.4f", lfoM.BHR(), lruM.BHR())
	}
}

func TestLFODeterministic(t *testing.T) {
	tr := webTrace(t, 9000, 3)
	run := func() *sim.Metrics {
		lfo, err := New(testConfig(1<<20, 3000))
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(tr, lfo, sim.Options{})
	}
	a, b := run(), run()
	if a.Hits != b.Hits || a.HitBytes != b.HitBytes {
		t.Errorf("nondeterministic: %d/%d vs %d/%d", a.Hits, a.HitBytes, b.Hits, b.HitBytes)
	}
}

func TestLFOBootstrapActsAsLRU(t *testing.T) {
	// Before the first window completes, LFO admits everything with LRU
	// eviction — its hits must match plain LRU exactly.
	tr := webTrace(t, 3000, 4)
	lfo, err := New(testConfig(1<<20, 1<<30 /* never retrain */))
	if err != nil {
		t.Fatal(err)
	}
	a := sim.Run(tr, lfo, sim.Options{})
	b := sim.Run(tr, policy.NewLRU(1<<20), sim.Options{})
	if a.Hits != b.Hits {
		t.Errorf("bootstrap hits %d != LRU hits %d", a.Hits, b.Hits)
	}
	if lfo.Windows() != 0 || lfo.Model() != nil {
		t.Error("model trained unexpectedly")
	}
}

func TestExtractAlignsLabelsAndFeatures(t *testing.T) {
	tr := webTrace(t, 4000, 5)
	cfg := testConfig(1<<20, 4000)
	ex, err := Extract(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Requests != 4000 || len(ex.Labels) != 4000 {
		t.Fatalf("Requests,Labels = %d,%d", ex.Requests, len(ex.Labels))
	}
	// Labels must match a direct OPT computation.
	optCfg := cfg.withDefaults().OPT
	res, err := opt.Compute(tr, optCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Admit {
		if res.Admit[i] != ex.Labels[i] {
			t.Fatalf("label %d mismatch", i)
		}
	}
	// Size feature must equal request size.
	for i, r := range tr.Requests {
		if ex.Row(i)[0] != float64(r.Size) {
			t.Fatalf("row %d size feature %g != %d", i, ex.Row(i)[0], r.Size)
		}
	}
}

func TestTrainOnWindowAccuracy(t *testing.T) {
	// Paper §3 headline: LFO matches OPT on >93% of requests (their
	// trace). Require >85% on our synthetic mix, train window -> next
	// window, plus sane error structure.
	tr := webTrace(t, 16000, 6)
	cfg := testConfig(2<<20, 8000)
	model, _, err := TrainOnWindow(tr.Slice(0, 8000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	evalEx, err := Extract(tr.Slice(8000, 16000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := Evaluate(model, evalEx, 0.5)
	if acc := 1 - res.Error; acc < 0.85 {
		t.Errorf("next-window accuracy %.3f, want >= 0.85", acc)
	}
	if res.Positives+res.Negatives != evalEx.Requests {
		t.Error("positives+negatives != requests")
	}
}

func TestEvaluateCutoffMonotonicity(t *testing.T) {
	// Raising the cutoff can only decrease false positives and increase
	// false negatives (Fig 5a's two monotone curves).
	tr := webTrace(t, 12000, 7)
	cfg := testConfig(2<<20, 6000)
	model, _, err := TrainOnWindow(tr.Slice(0, 6000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Extract(tr.Slice(6000, 12000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prevFP, prevFN := 2.0, -1.0
	for _, cutoff := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		res := Evaluate(model, ex, cutoff)
		if res.FalsePositiveRate > prevFP+1e-12 {
			t.Errorf("cutoff %.1f: FP rate %.4f increased", cutoff, res.FalsePositiveRate)
		}
		if res.FalseNegativeRate < prevFN-1e-12 {
			t.Errorf("cutoff %.1f: FN rate %.4f decreased", cutoff, res.FalseNegativeRate)
		}
		prevFP, prevFN = res.FalsePositiveRate, res.FalseNegativeRate
	}
}

func TestExtractionSubset(t *testing.T) {
	tr := webTrace(t, 3000, 8)
	ex, err := Extract(tr, testConfig(1<<20, 3000))
	if err != nil {
		t.Fatal(err)
	}
	sub := ex.Subset(1000, 2000)
	if sub.Requests != 1000 {
		t.Fatalf("subset requests = %d", sub.Requests)
	}
	for i := 0; i < 5; i++ {
		if sub.Row(i)[0] != ex.Row(1000 + i)[0] {
			t.Fatal("subset rows misaligned")
		}
		if sub.Labels[i] != ex.Labels[1000+i] {
			t.Fatal("subset labels misaligned")
		}
	}
	if got := ex.Subset(-5, 1<<30).Requests; got != 3000 {
		t.Errorf("clamped subset = %d", got)
	}
}

func TestLFOHitCanEvictHitObject(t *testing.T) {
	// §2.4: after a model is deployed, a hit whose re-evaluated
	// likelihood is below the cutoff evicts the object. Construct this
	// directly: train on a window, then find a resident object whose
	// likelihood dropped below the cutoff and check the store.
	tr := webTrace(t, 12000, 9)
	lfo, err := New(testConfig(1<<20, 3000))
	if err != nil {
		t.Fatal(err)
	}
	evictedOnHit := 0
	for _, r := range tr.Requests {
		before := lfo.store.Has(r.ID)
		lfo.Request(r)
		if before && lfo.model != nil && !lfo.store.Has(r.ID) {
			evictedOnHit++
		}
	}
	if lfo.Windows() == 0 {
		t.Fatal("never trained")
	}
	// The behavior must at least be exercisable; on heavy-tailed traces
	// some hit objects do get demoted below the cutoff.
	t.Logf("hits that evicted the hit object: %d", evictedOnHit)
}

func TestDisableEvictOnHitKeepsResidents(t *testing.T) {
	tr := webTrace(t, 12000, 9)
	cfg := testConfig(1<<20, 3000)
	cfg.DisableEvictOnHit = true
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests {
		before := lfo.store.Has(r.ID)
		hit := lfo.Request(r)
		if before != hit {
			t.Fatal("hit accounting inconsistent")
		}
		if before && !lfo.store.Has(r.ID) {
			t.Fatal("hit object evicted despite DisableEvictOnHit")
		}
	}
}

func TestLFOAsyncTrainingDeploys(t *testing.T) {
	tr := webTrace(t, 20000, 12)
	cfg := testConfig(1<<20, 4000)
	cfg.AsyncTraining = true
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run(tr, lfo, sim.Options{})
	lfo.Close()
	if lfo.Windows() == 0 {
		t.Fatal("async training never deployed a model")
	}
	if lfo.Model() == nil {
		t.Fatal("no model after Close")
	}
	if m.Hits == 0 {
		t.Error("async LFO scored no hits")
	}
}

func TestAsyncDroppedWindowCounted(t *testing.T) {
	// Regression: retrainAsync used to snapshot the window (two copies)
	// before noticing a round was still in flight, then discard the
	// copies silently. The drop must now happen before the copies and be
	// counted in both the obs registry and RetrainStats.
	tr := webTrace(t, 2000, 14)
	cfg := testConfig(1<<20, 1000)
	cfg.AsyncTraining = true
	reg := obs.NewRegistry()
	cfg.Obs = reg
	var stats []RetrainStats
	cfg.OnRetrain = func(s RetrainStats) { stats = append(stats, s) }
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a training round that is still in flight at the first
	// window boundary, deterministically: pending is non-nil and nothing
	// ever arrives on it.
	stuck := make(chan trainResult, 1)
	lfo.pending = stuck
	for _, r := range tr.Requests[:1000] {
		lfo.Request(r)
	}
	if lfo.windowsDropped != 1 {
		t.Fatalf("windowsDropped = %d, want 1", lfo.windowsDropped)
	}
	if got := reg.Counter("core_windows_dropped_total").Value(); got != 1 {
		t.Errorf("core_windows_dropped_total = %d, want 1", got)
	}
	if len(lfo.winReqs) != 0 || len(lfo.winFeats) != 0 {
		t.Error("dropped window left samples behind")
	}
	if lag := reg.Gauge("core_window_lag").Value(); lag != 0 {
		t.Errorf("window lag after drop = %d, want 0 (dropped windows never deploy)", lag)
	}

	// Release the simulated round and complete a real one; its OnRetrain
	// stats must carry the cumulative drop count.
	lfo.pending = nil
	for _, r := range tr.Requests[1000:2000] {
		lfo.Request(r)
	}
	lfo.Close()
	if lfo.Windows() != 1 {
		t.Fatalf("Windows = %d, want 1", lfo.Windows())
	}
	if len(stats) != 1 {
		t.Fatalf("OnRetrain fired %d times, want 1", len(stats))
	}
	if stats[0].WindowsDropped != 1 {
		t.Errorf("stats.WindowsDropped = %d, want 1", stats[0].WindowsDropped)
	}
	if stats[0].Samples != 1000 {
		t.Errorf("stats.Samples = %d, want 1000", stats[0].Samples)
	}
	if got := reg.Counter("core_retrains_total").Value(); got != 1 {
		t.Errorf("core_retrains_total = %d, want 1", got)
	}
	if lag := reg.Gauge("core_window_lag").Value(); lag != 0 {
		t.Errorf("window lag after deploy = %d, want 0", lag)
	}
}

func TestObsMetricsRecorded(t *testing.T) {
	tr := webTrace(t, 6000, 15)
	cfg := testConfig(1<<20, 2000)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run(tr, lfo, sim.Options{})
	if got := reg.Counter("core_requests_total").Value(); got != int64(len(tr.Requests)) {
		t.Errorf("core_requests_total = %d, want %d", got, len(tr.Requests))
	}
	if got := reg.Counter("core_hits_total").Value(); got != int64(m.Hits) {
		t.Errorf("core_hits_total = %d, want %d", got, m.Hits)
	}
	wantRetrains := int64(lfo.Windows())
	if got := reg.Counter("core_retrains_total").Value(); got != wantRetrains {
		t.Errorf("core_retrains_total = %d, want %d", got, wantRetrains)
	}
	for _, name := range []string{"core_retrain_opt_ns", "core_retrain_train_ns", "core_retrain_rescore_ns"} {
		if got := reg.Histogram(name, obs.LatencyBounds).Count(); got != wantRetrains {
			t.Errorf("%s count = %d, want %d", name, got, wantRetrains)
		}
	}
	// The OPT solve counters propagate via the core config.
	if got := reg.Counter("opt_solves_total").Value(); got != wantRetrains {
		t.Errorf("opt_solves_total = %d, want %d", got, wantRetrains)
	}
}

func TestLFOCloseWithoutAsyncIsNoop(t *testing.T) {
	lfo, err := New(testConfig(1<<20, 1000))
	if err != nil {
		t.Fatal(err)
	}
	lfo.Close() // must not block or panic
}

func TestLFOInitialModelSkipsBootstrap(t *testing.T) {
	tr := webTrace(t, 12000, 13)
	// Train a model offline, then warm-start a fresh cache with it.
	model, _, err := TrainOnWindow(tr.Slice(0, 6000), testConfig(1<<20, 6000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1<<20, 1<<30) // never retrain
	cfg.InitialModel = model
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lfo.Model() == nil {
		t.Fatal("initial model not installed")
	}
	// The warm-started cache must behave differently from bootstrap LRU:
	// it applies learned admission from request one.
	warm := sim.Run(tr.Slice(6000, 12000), lfo, sim.Options{})
	cold, err := New(testConfig(1<<20, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	coldM := sim.Run(tr.Slice(6000, 12000), cold, sim.Options{})
	if warm.Hits == coldM.Hits && warm.HitBytes == coldM.HitBytes {
		t.Error("warm start indistinguishable from bootstrap")
	}
}

func TestLFOInitialModelDimChecked(t *testing.T) {
	cfg := testConfig(1<<20, 1000)
	cfg.InitialModel = &gbdt.Model{Dim: 3}
	if _, err := New(cfg); err == nil {
		t.Error("wrong-dim initial model accepted")
	}
}
