package core

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lfo/internal/faultnet"
	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/obs"
	"lfo/internal/server"
	"lfo/internal/trace"
)

// chaosPipeListener mirrors the server package's test listener: an
// in-memory net.Listener over net.Pipe, so fault-schedule op indices
// never depend on kernel timing.
type chaosPipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newChaosPipeListener() *chaosPipeListener {
	return &chaosPipeListener{ch: make(chan net.Conn, 64), done: make(chan struct{})}
}

func (l *chaosPipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chaosPipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type chaosPipeAddr struct{}

func (chaosPipeAddr) Network() string { return "pipe" }
func (chaosPipeAddr) String() string  { return "pipe" }

func (l *chaosPipeListener) Addr() net.Addr { return chaosPipeAddr{} }

func (l *chaosPipeListener) dial() (net.Conn, error) {
	client, srv := net.Pipe()
	select {
	case l.ch <- srv:
		return client, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func chaosAdmitModel(t *testing.T) *gbdt.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	ds := gbdt.NewDataset(features.Dim)
	row := make([]float64, features.Dim)
	for i := 0; i < 2000; i++ {
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		label := 0.0
		if row[features.FeatSize] > 50 {
			label = 1
		}
		ds.Append(row, label)
	}
	p := gbdt.DefaultParams()
	p.NumIterations = 5
	m, err := gbdt.Train(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runFallbackChaos drives admissions through a faulty serving path with
// client retries disabled, so every conn-killing fault becomes exactly
// one heuristic fallback. Returns the decision log and the fallback
// accounting.
func runFallbackChaos(t *testing.T, seed uint64) (string, int64, int64, int64) {
	t.Helper()
	m := chaosAdmitModel(t)
	s := server.New(m, 1)
	s.Logf = func(format string, args ...interface{}) {}
	s.Obs = obs.NewRegistry()
	s.ReadTimeout = 100 * time.Millisecond
	s.WriteTimeout = 100 * time.Millisecond
	sched := faultnet.NewSchedule(faultnet.Config{
		Seed:      seed,
		ShortRead: 30, ShortWrite: 30,
		StallRead: 15, StallWrite: 15,
		DropRead: 30, DropWrite: 30,
		MaxShort: 6,
	})
	pl := newChaosPipeListener()
	s.Serve(faultnet.Wrap(pl, sched))
	defer s.Close()

	creg := obs.NewRegistry()
	c, err := server.DialConfig("pipe", server.ClientConfig{
		Timeout:    2 * time.Second,
		MaxRetries: -1, // no retries: every transport fault degrades one admission
		Dial:       pl.dial,
		Obs:        creg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	areg := obs.NewRegistry()
	adm, err := NewRemoteAdmitter(c, RemoteAdmitterConfig{Obs: areg})
	if err != nil {
		t.Fatal(err)
	}

	var decisions strings.Builder
	const calls = 120
	for i := 0; i < calls; i++ {
		r := trace.Request{Time: int64(i), ID: trace.ObjectID(i % 17), Size: int64(100 + i%5*50), Cost: 1}
		ok, lik := adm.Admit(r, 1<<19)
		adm.Observe(r)
		fmt.Fprintf(&decisions, "%d %v %.6f\n", i, ok, lik)
	}
	fallbacks := areg.Counter("core_remote_fallbacks_total").Value()
	predictions := areg.Counter("core_remote_predictions_total").Value()
	failures := creg.Counter("client_failures_total").Value()
	if predictions+fallbacks != calls {
		t.Errorf("predictions %d + fallbacks %d != %d calls", predictions, fallbacks, calls)
	}
	return decisions.String(), fallbacks, predictions, failures
}

// TestRemoteAdmitterChaosFallback: under injected serving-path faults
// with retries disabled, no admission ever errors — each failed remote
// call degrades to the heuristic, counted exactly once per client
// failure — and the whole degraded run is deterministic.
func TestRemoteAdmitterChaosFallback(t *testing.T) {
	dec1, fb1, pred1, fail1 := runFallbackChaos(t, 5)
	if fb1 == 0 {
		t.Fatal("chaos schedule never forced a fallback")
	}
	if pred1 == 0 {
		t.Fatal("chaos schedule never let a remote prediction through")
	}
	if fb1 != fail1 {
		t.Errorf("fallbacks %d != client failures %d", fb1, fail1)
	}
	dec2, fb2, pred2, fail2 := runFallbackChaos(t, 5)
	if dec1 != dec2 || fb1 != fb2 || pred1 != pred2 || fail1 != fail2 {
		t.Errorf("degraded run not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			fb1, pred1, fail1, fb2, pred2, fail2)
	}
}
