// Online-learning bridge for the retrain gap (§2.4's robustness
// concern): between window retrains the GBDT admission model is frozen
// and drift-blind. Two mechanisms cover the gap.
//
// First, a shadow OGD learner (internal/policy/ogd) runs next to the
// model and its fractional allocations teach a per-size-class additive
// bias: when the online learner values a class of objects more (or less)
// than the frozen model scores them, the bias pulls the effective
// admission likelihood toward the online view at rate HybridLR. The bias
// is bounded, applied between retrains only, and reset to zero whenever
// a freshly trained model deploys — the bridge adapts the gap, the
// retrain owns the steady state.
//
// Second, a streaming PSI drift detector (internal/drift) compares the
// live feature distribution against a snapshot taken when the serving
// model's training round launched. When any monitored feature's PSI
// crosses DriftThreshold and enough of the current window has
// accumulated, the window retrains early instead of waiting for the
// boundary. If an async round is already in flight the trigger is
// suppressed (and counted): one training round at a time, no
// double-train, no deadlock.
package core

import (
	"math/bits"

	"lfo/internal/features"
	"lfo/internal/obs"
	"lfo/internal/trace"
)

// hybridBiasClamp bounds the per-class bias magnitude. Likelihoods live
// in [0,1] and the default cutoff is 0.5, so ±0.35 lets the bridge
// overturn a moderately confident model but never a certain one.
const hybridBiasClamp = 0.35

// numSizeClasses is the per-class bias table size: log2 size buckets
// (bits.Len64 of a positive int64 is at most 63, plus the zero bucket).
const numSizeClasses = 64

// driftFeatures is how many feature columns the detector monitors:
// size, cost, and the three most recent request gaps — the
// request-intrinsic head of the feature row. Free bytes is deliberately
// excluded: it is cache state, a single autocorrelated value whose
// histogram is a spike that wanders bins between windows and reads as
// PSI > 1 even on stationary traffic. The deeper gap columns decay into
// Missing and add no signal.
const driftFeatures = 5

// driftFeatureNames labels the monitored columns in metric names.
var driftFeatureNames = [driftFeatures]string{"size", "cost", "gap0", "gap1", "gap2"}

// HybridBiasBounds buckets the per-request applied bias for the obs
// histogram, in micro-units (bias 0.35 → 350000), symmetric around 0.
var HybridBiasBounds = []int64{
	-350000, -200000, -100000, -50000, -20000, -5000,
	0, 5000, 20000, 50000, 100000, 200000, 350000,
}

// driftMicro converts a PSI score to the micro-unit int64 the gauges use.
func driftMicro(s float64) int64 { return int64(s * 1e6) }

// sizeClass maps an object size to its log2 bias bucket.
func sizeClass(size int64) int {
	if size <= 0 {
		return 0
	}
	return bits.Len64(uint64(size))
}

// hybridMetrics bundles the bridge's obs handles (all nil-safe no-ops
// when the registry is nil).
type hybridMetrics struct {
	earlyRetrains   *obs.Counter
	earlySuppressed *obs.Counter
	bias            *obs.Histogram
	driftMax        *obs.Gauge
	driftPerFeature [driftFeatures]*obs.Gauge
}

func newHybridMetrics(r *obs.Registry) hybridMetrics {
	m := hybridMetrics{
		earlyRetrains:   r.Counter("core_early_retrains_total"),
		earlySuppressed: r.Counter("core_early_retrains_suppressed_total"),
		bias:            r.Histogram("core_hybrid_bias_micro", HybridBiasBounds),
		driftMax:        r.Gauge("core_drift_psi_max_micro"),
	}
	for i, name := range driftFeatureNames {
		m.driftPerFeature[i] = r.Gauge("core_drift_psi_" + name + "_micro")
	}
	return m
}

// hybridScore advances the shadow learner one request and returns the
// effective admission likelihood: the model's raw score plus the
// per-size-class bias. The bias is an exponential moving average of the
// class's disagreement (shadow allocation minus raw score) at rate
// HybridLR — it tracks the mean disagreement rather than integrating
// it, so a persistent mild mismatch settles at a mild bias instead of
// railing to the clamp. During bootstrap (no model) the shadow still
// learns but the raw score passes through untouched — there is nothing
// to modulate yet.
func (p *LFO) hybridScore(r trace.Request, raw float64) float64 {
	y := p.shadow.Update(r)
	if p.model == nil {
		return raw
	}
	c := sizeClass(r.Size)
	b := p.bias[c] + p.cfg.HybridLR*(y-raw-p.bias[c])
	if b > hybridBiasClamp {
		b = hybridBiasClamp
	} else if b < -hybridBiasClamp {
		b = -hybridBiasClamp
	}
	p.bias[c] = b
	p.hm.bias.Observe(int64(b * 1e6))
	eff := raw + b
	if eff < 0 {
		eff = 0
	} else if eff > 1 {
		eff = 1
	}
	return eff
}

// resetBias zeroes the per-class bias table; called when a freshly
// trained model deploys, handing the adapted state back to the model.
func (p *LFO) resetBias() {
	if p.bias == nil {
		return
	}
	for i := range p.bias {
		p.bias[i] = 0
	}
}

// driftCheck scores the live feature distribution against the training
// snapshot and fires the early-retrain trigger when it has shifted. The
// trigger needs a deployed model (bootstrap has nothing to re-fit), a
// Ready detector, and at least EarlyRetrainMin rows of the current
// window to train on. With an async round already in flight the trigger
// is suppressed and counted — never a second concurrent round.
func (p *LFO) driftCheck() {
	// The first reference is the bootstrap window, recorded by an empty
	// tracker against a draining cache: its gap-missingness and
	// free-bytes distributions are cold-start artifacts that read as
	// drift against any warm window. Detection arms from the second
	// reference on, when both sides of the comparison are warm.
	if p.model == nil || p.driftRefs < 2 || !p.det.Ready() {
		return
	}
	_, score := p.det.MaxScore()
	p.hm.driftMax.Set(driftMicro(score))
	for f, s := range p.det.Scores() {
		p.hm.driftPerFeature[f].Set(driftMicro(s))
	}
	if score <= p.cfg.DriftThreshold || len(p.winReqs) < p.cfg.EarlyRetrainMin {
		return
	}
	if p.cfg.AsyncTraining && p.pending != nil {
		p.hm.earlySuppressed.Inc()
		return
	}
	p.earlyRetrains++
	p.hm.earlyRetrains.Inc()
	// An early retrain closes the window at its current length: it is a
	// completed (short) window for lag accounting, then trains exactly
	// like a boundary retrain.
	p.completedWindows++
	if p.cfg.AsyncTraining {
		p.retrainAsync()
	} else {
		p.retrain()
	}
}

// EarlyRetrains returns how many training rounds the drift trigger
// started ahead of the window boundary.
func (p *LFO) EarlyRetrains() int { return p.earlyRetrains }

// DriftScore returns the detector's current maximum per-feature PSI (0
// when drift detection is disabled or the detector is not Ready).
func (p *LFO) DriftScore() float64 {
	if p.det == nil || !p.det.Ready() {
		return 0
	}
	_, s := p.det.MaxScore()
	return s
}

// observeDrift copies the monitored columns out of a feature row (by
// their named indices, so a feature-layout change cannot silently point
// the detector at the wrong columns) and counts them into the live
// histogram.
//
//lfo:hotpath
func (p *LFO) observeDrift(row []float64) {
	p.driftRow[0] = row[features.FeatSize]
	p.driftRow[1] = row[features.FeatCost]
	p.driftRow[2] = row[features.FeatGap0]
	p.driftRow[3] = row[features.FeatGap0+1]
	p.driftRow[4] = row[features.FeatGap0+2]
	p.det.Observe(p.driftRow[:])
}
