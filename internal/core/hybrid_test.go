package core

import (
	"testing"

	"lfo/internal/gen"
	"lfo/internal/obs"
	"lfo/internal/trace"
)

func TestHybridValidation(t *testing.T) {
	cfg := testConfig(1<<20, 1000)
	cfg.HybridLR = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative HybridLR accepted")
	}
	cfg = testConfig(1<<20, 1000)
	cfg.DriftThreshold = -0.5
	if _, err := New(cfg); err == nil {
		t.Error("negative DriftThreshold accepted")
	}
	cfg = testConfig(1<<20, 1000)
	cfg.HybridLR = 0.5 // implies Hybrid
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lfo.shadow == nil {
		t.Error("HybridLR > 0 did not enable the shadow learner")
	}
}

// scenarioTraces builds the three evaluation scenarios at unit-test
// scale: a stationary web mix, the CDN mix with its built-in drift
// events, and a web mix whose popular set reshuffles cold mid-trace.
func scenarioTraces(t *testing.T, n int, seed int64) map[string]*trace.Trace {
	t.Helper()
	out := make(map[string]*trace.Trace, 3)
	for name, cfg := range map[string]gen.Config{
		"stable":    gen.WebMix(n, seed),
		"cdn-drift": gen.CDNMix(n, seed),
		"reshuffle": func() gen.Config {
			c := gen.WebMix(n, seed)
			c.Drift = append(c.Drift, gen.DriftEvent{At: 0.5, Class: 0, NewWeight: 1, Reshuffle: true})
			return c
		}(),
	} {
		tr, err := gen.Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = tr.WithCosts(trace.ObjectiveBHR)
	}
	return out
}

// TestHybridZeroLRMatchesFrozen pins that the bridge is opt-in: with the
// full hybrid machinery running but a bias learning rate of zero, the
// decision log is identical to the frozen-GBDT path on all three
// scenarios. The shadow learner runs, the bias table is consulted — and
// adds exactly 0.0 to every score.
func TestHybridZeroLRMatchesFrozen(t *testing.T) {
	for name, tr := range scenarioTraces(t, 2000, 42) {
		t.Run(name, func(t *testing.T) {
			frozen, err := New(testConfig(1<<20, 1000))
			if err != nil {
				t.Fatal(err)
			}
			hcfg := testConfig(1<<20, 1000)
			hcfg.Hybrid = true // HybridLR stays 0
			hybrid, err := New(hcfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range tr.Requests {
				a, b := frozen.Request(r), hybrid.Request(r)
				if a != b {
					t.Fatalf("decision %d diverged: frozen=%v hybrid(lr=0)=%v", i, a, b)
				}
			}
			if frozen.Windows() != hybrid.Windows() {
				t.Errorf("windows diverged: %d vs %d", frozen.Windows(), hybrid.Windows())
			}
		})
	}
}

// TestHybridBiasAdaptsAndResets: with a positive learning rate the bias
// table moves away from zero between retrains, and a model deploy hands
// the state back — every class resets to zero.
func TestHybridBiasAdaptsAndResets(t *testing.T) {
	tr := webTrace(t, 2000, 7)
	cfg := testConfig(1<<20, 1000)
	cfg.HybridLR = 0.05
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First window trains and deploys at request 1000; drive halfway into
	// the second window so the bias has a deployed model to adapt against.
	for _, r := range tr.Requests[:1500] {
		lfo.Request(r)
	}
	if lfo.Windows() != 1 {
		t.Fatalf("Windows = %d, want 1", lfo.Windows())
	}
	moved := false
	for _, b := range lfo.bias {
		if b != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("bias table still all-zero mid-window with HybridLR > 0")
	}
	// Crossing the second boundary retrains and deploys: reset.
	for _, r := range tr.Requests[1500:2000] {
		lfo.Request(r)
	}
	if lfo.Windows() != 2 {
		t.Fatalf("Windows = %d, want 2", lfo.Windows())
	}
	for c, b := range lfo.bias {
		if b != 0 {
			t.Errorf("bias[%d] = %v after deploy, want 0", c, b)
		}
	}
}

// driftTrace hand-builds a trace whose feature distribution shifts
// sharply at the given request index: object sizes jump by a factor of
// 64, which moves the size feature six log2 bins.
func driftTrace(n, shiftAt int) []trace.Request {
	reqs := make([]trace.Request, n)
	for i := range reqs {
		size := int64(1 << 10)
		if i >= shiftAt {
			size = 1 << 16
		}
		reqs[i] = trace.Request{
			Time: int64(i),
			ID:   trace.ObjectID(i % 200),
			Size: size,
			Cost: float64(size),
		}
	}
	return reqs
}

// TestEarlyRetrainTrigger: a sharp distribution shift mid-window fires
// the trigger well before the boundary, the retrain is counted in obs,
// and the drift gauges expose the statistic that fired it. The shift
// lands in window 3 because the trigger only arms once both the
// reference and the live side are past the cold-start window.
func TestEarlyRetrainTrigger(t *testing.T) {
	const window = 4000
	shiftAt := 2*window + window/4
	reqs := driftTrace(3*window, shiftAt)
	cfg := testConfig(1<<26, window)
	cfg.DriftThreshold = 0.25
	cfg.DriftCheckEvery = 200
	reg := obs.NewRegistry()
	cfg.Obs = reg
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fired := -1
	for i, r := range reqs {
		lfo.Request(r)
		if fired < 0 && lfo.EarlyRetrains() > 0 {
			fired = i
			// Read the gauges at fire time: they hold the statistic that
			// crossed the threshold (later checks overwrite them with the
			// post-adaptation PSI, which correctly decays back toward 0).
			if max := reg.Gauge("core_drift_psi_max_micro").Value(); max <= 250000 {
				t.Errorf("core_drift_psi_max_micro = %d at fire time, want > 250000", max)
			}
			if sizePSI := reg.Gauge("core_drift_psi_size_micro").Value(); sizePSI <= 250000 {
				t.Errorf("core_drift_psi_size_micro = %d at fire time, want > 250000 (size is the shifted feature)", sizePSI)
			}
		}
	}
	if fired < 0 {
		t.Fatal("64x size shift never fired the early-retrain trigger")
	}
	if fired <= shiftAt || fired >= 3*window-1 {
		t.Fatalf("trigger fired at request %d, want after the shift at %d and before the window boundary at %d",
			fired, shiftAt, 3*window)
	}
	if lfo.Windows() < 3 {
		t.Fatalf("Windows = %d, want >= 3 (two boundaries + early)", lfo.Windows())
	}
	if got := reg.Counter("core_early_retrains_total").Value(); got != int64(lfo.EarlyRetrains()) {
		t.Errorf("core_early_retrains_total = %d, want %d", got, lfo.EarlyRetrains())
	}
}

// TestEarlyRetrainStableTraceQuiet: on a stationary stream the trigger
// must not fire — the same-distribution PSI stays under the threshold.
func TestEarlyRetrainStableTraceQuiet(t *testing.T) {
	tr := webTrace(t, 4000, 11)
	cfg := testConfig(1<<20, 1000)
	cfg.DriftThreshold = 0.25
	cfg.DriftCheckEvery = 200
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests {
		lfo.Request(r)
	}
	if lfo.EarlyRetrains() != 0 {
		t.Errorf("EarlyRetrains = %d on a stationary trace, want 0", lfo.EarlyRetrains())
	}
	if lfo.Windows() != 4 {
		t.Errorf("Windows = %d, want 4 boundary retrains", lfo.Windows())
	}
}

// TestEarlyRetrainSuppressedWhileAsyncPending extends the PR 4 dropped-
// window accounting to the trigger path: a drift trigger that lands
// while an async round is in flight must be suppressed and counted —
// never a second concurrent round, never a deadlock. Run under -race by
// scripts/check.sh.
func TestEarlyRetrainSuppressedWhileAsyncPending(t *testing.T) {
	const window = 4000
	shiftAt := 2*window + window/4
	reqs := driftTrace(4*window, shiftAt)
	cfg := testConfig(1<<26, window)
	cfg.AsyncTraining = true
	cfg.DriftThreshold = 0.25
	cfg.DriftCheckEvery = 200
	reg := obs.NewRegistry()
	cfg.Obs = reg
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two windows train async off their boundaries, Close deploying each,
	// so the trigger is armed (two references, warm on both sides).
	for _, r := range reqs[:window] {
		lfo.Request(r)
	}
	lfo.Close()
	for _, r := range reqs[window : 2*window] {
		lfo.Request(r)
	}
	lfo.Close()
	if lfo.Windows() != 2 {
		t.Fatalf("Windows = %d after two Closes, want 2", lfo.Windows())
	}

	// Wedge a fake in-flight round, then drive the shifted stream far
	// past every trigger condition: the trigger must keep suppressing.
	stuck := make(chan trainResult, 1)
	lfo.pending = stuck
	for _, r := range reqs[2*window : 3*window] {
		lfo.Request(r)
	}
	if lfo.EarlyRetrains() != 0 {
		t.Fatalf("EarlyRetrains = %d with a round in flight, want 0", lfo.EarlyRetrains())
	}
	suppressed := reg.Counter("core_early_retrains_suppressed_total").Value()
	if suppressed == 0 {
		t.Fatal("trigger conditions held while pending but nothing was counted as suppressed")
	}
	// The boundary crossed while wedged must have dropped its window, as
	// in the plain async path.
	if lfo.windowsDropped != 1 {
		t.Errorf("windowsDropped = %d, want 1", lfo.windowsDropped)
	}

	// Release the wedge: the next drift check fires a real early retrain
	// (the shifted distribution persists and the dropped window means no
	// re-baselining happened meanwhile).
	lfo.pending = nil
	for _, r := range reqs[3*window:] {
		lfo.Request(r)
	}
	lfo.Close()
	if lfo.EarlyRetrains() == 0 {
		t.Error("trigger never fired after the in-flight round cleared")
	}
	if got := reg.Counter("core_early_retrains_total").Value(); got != int64(lfo.EarlyRetrains()) {
		t.Errorf("core_early_retrains_total = %d, want %d", got, lfo.EarlyRetrains())
	}
}

// TestHybridBiasHistogramRecorded: the per-request applied bias lands in
// the obs histogram once a model is serving.
func TestHybridBiasHistogramRecorded(t *testing.T) {
	tr := webTrace(t, 1500, 3)
	cfg := testConfig(1<<20, 1000)
	cfg.HybridLR = 0.05
	reg := obs.NewRegistry()
	cfg.Obs = reg
	lfo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests {
		lfo.Request(r)
	}
	h := reg.Histogram("core_hybrid_bias_micro", HybridBiasBounds)
	if h.Count() != 500 {
		t.Errorf("bias histogram count = %d, want 500 (one per post-bootstrap request)", h.Count())
	}
}
