package core

import (
	"fmt"

	"lfo/internal/obs"
	"lfo/internal/policy"
	"lfo/internal/server"
	"lfo/internal/trace"
)

// RemotePredictor is the client surface RemoteAdmitter consults —
// satisfied by *server.Client (the compact stateful opAdmit protocol).
type RemotePredictor interface {
	Admit(reqs []server.AdmitRequest) ([]float64, error)
}

// FallbackAdmitter is the heuristic consulted when the remote path fails.
// It matches tiered.Admitter structurally; policy.SecondHitCensor is the
// default implementation.
type FallbackAdmitter interface {
	Admit(r trace.Request, freeBytes int64) (bool, float64)
	Observe(r trace.Request)
}

// RemoteAdmitterConfig tunes a RemoteAdmitter.
type RemoteAdmitterConfig struct {
	// Cutoff is the admission threshold on the remote likelihood. 0
	// means 0.5; CutoffAdmitAll means an effective cutoff of exactly 0
	// (mirrors Config.Cutoff).
	Cutoff float64
	// Fallback is the heuristic used when the remote call errors or
	// times out. Nil means policy.NewSecondHitCensor(0).
	Fallback FallbackAdmitter
	// Obs, when set, counts remote predictions, remote errors, and
	// heuristic fallbacks.
	Obs *obs.Registry
}

type remoteMetrics struct {
	predictions *obs.Counter
	errors      *obs.Counter
	fallbacks   *obs.Counter
}

func newRemoteMetrics(r *obs.Registry) remoteMetrics {
	return remoteMetrics{
		predictions: r.Counter("core_remote_predictions_total"),
		errors:      r.Counter("core_remote_errors_total"),
		fallbacks:   r.Counter("core_remote_fallbacks_total"),
	}
}

// RemoteAdmitter is the graceful-degradation admission path: it asks a
// prediction server for the admission likelihood and, when the remote
// call fails (error, timeout, bad response), falls back to a local
// heuristic instead of failing the request — the Cold-RL-style "the cache
// must answer even when the model path is down" posture. Every fallback
// is counted, never silently absorbed.
//
// It implements the tiered.Admitter shape (Admit + Observe). The
// fallback's Observe is fed on every request, so its history is warm the
// moment degradation starts, not cold from that point on.
//
// Like server.Client, it is synchronous and not safe for concurrent use.
type RemoteAdmitter struct {
	remote   RemotePredictor
	cutoff   float64
	fallback FallbackAdmitter
	m        remoteMetrics
	req      [1]server.AdmitRequest // reused per call; RemoteAdmitter is single-goroutine
}

// NewRemoteAdmitter wires a remote predictor to a fallback heuristic.
func NewRemoteAdmitter(remote RemotePredictor, cfg RemoteAdmitterConfig) (*RemoteAdmitter, error) {
	if remote == nil {
		return nil, fmt.Errorf("core: RemoteAdmitter needs a RemotePredictor")
	}
	cutoff := cfg.Cutoff
	switch {
	case cutoff == 0:
		cutoff = 0.5
	case cutoff == CutoffAdmitAll:
		cutoff = 0
	case cutoff < 0 || cutoff > 1:
		return nil, fmt.Errorf("core: Cutoff must be in [0,1] (or the CutoffAdmitAll sentinel), got %v", cutoff)
	}
	fallback := cfg.Fallback
	if fallback == nil {
		fallback = policy.NewSecondHitCensor(0)
	}
	return &RemoteAdmitter{
		remote:   remote,
		cutoff:   cutoff,
		fallback: fallback,
		m:        newRemoteMetrics(cfg.Obs),
	}, nil
}

// Admit consults the remote model; on any remote failure it degrades to
// the fallback heuristic and counts the event.
func (a *RemoteAdmitter) Admit(r trace.Request, freeBytes int64) (bool, float64) {
	a.req[0] = server.AdmitRequest{
		Time: r.Time,
		ID:   uint64(r.ID),
		Size: r.Size,
		Cost: r.Cost,
		Free: freeBytes,
	}
	probs, err := a.remote.Admit(a.req[:])
	if err != nil || len(probs) != 1 {
		a.m.errors.Inc()
		a.m.fallbacks.Inc()
		return a.fallback.Admit(r, freeBytes)
	}
	a.m.predictions.Inc()
	return probs[0] >= a.cutoff, probs[0]
}

// Observe feeds the fallback's request history (the remote server tracks
// its own history per connection).
func (a *RemoteAdmitter) Observe(r trace.Request) {
	a.fallback.Observe(r)
}
