package core

import (
	"container/list"
	"fmt"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/opt"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// Extraction is an aligned set of online feature vectors and OPT labels
// for one trace window — the offline counterpart of LFO's training
// pipeline, used by the accuracy experiments (Fig 5a/5b/5c) where
// prediction error is measured against OPT rather than through cache
// metrics.
//
// The free-bytes feature requires a cache state; offline extraction
// replays the window against a plain LRU reference cache of the same
// capacity, which makes the features deterministic and independent of the
// model under study.
type Extraction struct {
	// Feats is a flat row-major matrix, features.Dim wide.
	Feats []float64
	// Labels[i] reports whether OPT admits request i.
	Labels []bool
	// Requests is the number of rows.
	Requests int
}

// Extract computes features and OPT labels for every request in the trace.
func Extract(tr *trace.Trace, cfg Config) (*Extraction, error) {
	cfg = cfg.withDefaults()
	if cfg.CacheSize <= 0 {
		return nil, fmt.Errorf("core: CacheSize must be positive, got %d", cfg.CacheSize)
	}
	res, err := opt.Compute(tr, cfg.OPT)
	if err != nil {
		return nil, err
	}

	// The free-bytes feature comes from a sequential replay of the
	// reference LRU (cache state is inherently serial); with that column
	// precomputed, the tracker-driven rows shard across workers.
	free := make([]int64, tr.Len())
	ref := newRefLRU(cfg.CacheSize)
	for i, r := range tr.Requests {
		free[i] = ref.free()
		ref.request(r)
	}
	tracker := features.NewTracker(cfg.MaxTrackedObjects)
	return &Extraction{
		Feats:    tracker.BuildMatrix(tr.Requests, free, cfg.Workers),
		Labels:   res.Admit,
		Requests: tr.Len(),
	}, nil
}

// Row returns feature row i.
func (e *Extraction) Row(i int) []float64 {
	return e.Feats[i*features.Dim : (i+1)*features.Dim]
}

// Dataset converts the extraction into a training set. The feature
// matrix is shared, not copied; do not mutate the extraction while the
// dataset is in use.
func (e *Extraction) Dataset() *gbdt.Dataset {
	y := make([]float64, e.Requests)
	for i, admit := range e.Labels[:e.Requests] {
		if admit {
			y[i] = 1
		}
	}
	return gbdt.DatasetFromMatrix(features.Dim, e.Feats, y)
}

// Subset returns an extraction over rows [lo, hi).
func (e *Extraction) Subset(lo, hi int) *Extraction {
	if lo < 0 {
		lo = 0
	}
	if hi > e.Requests {
		hi = e.Requests
	}
	if lo > hi {
		lo = hi
	}
	return &Extraction{
		Feats:    e.Feats[lo*features.Dim : hi*features.Dim],
		Labels:   e.Labels[lo:hi],
		Requests: hi - lo,
	}
}

// EvalResult quantifies a model's agreement with OPT on an extraction.
type EvalResult struct {
	// Error is the disagreement rate (1 − accuracy) at the cutoff.
	Error float64
	// FalsePositiveRate is the share of OPT-rejected requests the model
	// admits ("accidentally admitted", Fig 5a).
	FalsePositiveRate float64
	// FalseNegativeRate is the share of OPT-admitted requests the model
	// rejects ("accidentally not admitted", Fig 5a).
	FalseNegativeRate float64
	// Positives is the number of OPT-admitted requests.
	Positives int
	// Negatives is the number of OPT-rejected requests.
	Negatives int
}

// Evaluate measures model-vs-OPT agreement on the extraction at the given
// admission cutoff. Rows are scored with one batched prediction across
// all cores; the verdict is identical to a sequential scan.
func Evaluate(m *gbdt.Model, e *Extraction, cutoff float64) EvalResult {
	probs := make([]float64, e.Requests)
	m.PredictMatrix(e.Feats[:e.Requests*features.Dim], probs, 0)
	var res EvalResult
	fp, fn := 0, 0
	for i := 0; i < e.Requests; i++ {
		pred := probs[i] >= cutoff
		if e.Labels[i] {
			res.Positives++
			if !pred {
				fn++
			}
		} else {
			res.Negatives++
			if pred {
				fp++
			}
		}
	}
	if e.Requests > 0 {
		res.Error = float64(fp+fn) / float64(e.Requests)
	}
	if res.Negatives > 0 {
		res.FalsePositiveRate = float64(fp) / float64(res.Negatives)
	}
	if res.Positives > 0 {
		res.FalseNegativeRate = float64(fn) / float64(res.Positives)
	}
	return res
}

// TrainOnWindow extracts a window and fits a model to it — the offline
// equivalent of one Figure 2 training round.
func TrainOnWindow(tr *trace.Trace, cfg Config) (*gbdt.Model, *Extraction, error) {
	cfg = cfg.withDefaults()
	ex, err := Extract(tr, cfg)
	if err != nil {
		return nil, nil, err
	}
	m, err := gbdt.Train(ex.Dataset(), cfg.GBDT)
	if err != nil {
		return nil, nil, err
	}
	return m, ex, nil
}

// refLRU is the minimal reference cache that supplies the free-bytes
// feature during offline extraction.
type refLRU struct {
	store *sim.Store[*list.Element]
	lru   *list.List
}

func newRefLRU(capacity int64) *refLRU {
	return &refLRU{store: sim.NewStore[*list.Element](capacity), lru: list.New()}
}

func (c *refLRU) free() int64 { return c.store.Free() }

func (c *refLRU) request(r trace.Request) {
	if e := c.store.Get(r.ID); e != nil {
		c.lru.MoveToFront(e.Payload)
		return
	}
	if r.Size > c.store.Capacity() {
		return
	}
	for !c.store.Fits(r.Size) {
		tail := c.lru.Back()
		id := tail.Value.(trace.ObjectID)
		c.lru.Remove(tail)
		c.store.Remove(id)
	}
	e := c.store.Add(r.ID, r.Size)
	e.Payload = c.lru.PushFront(r.ID)
}
