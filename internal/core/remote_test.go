package core

import (
	"errors"
	"testing"

	"lfo/internal/obs"
	"lfo/internal/server"
	"lfo/internal/tiered"
	"lfo/internal/trace"
)

// RemoteAdmitter must satisfy the tiered admission interface.
var _ tiered.Admitter = (*RemoteAdmitter)(nil)

// fakePredictor scripts remote responses: each call pops the next entry.
type fakePredictor struct {
	probs []float64 // one response likelihood per call
	errs  []error   // non-nil → the call fails
	calls int
	last  []server.AdmitRequest
}

func (f *fakePredictor) Admit(reqs []server.AdmitRequest) ([]float64, error) {
	i := f.calls
	f.calls++
	f.last = append([]server.AdmitRequest(nil), reqs...)
	if i < len(f.errs) && f.errs[i] != nil {
		return nil, f.errs[i]
	}
	if i < len(f.probs) {
		return []float64{f.probs[i]}, nil
	}
	return []float64{1}, nil
}

func remoteReq(id trace.ObjectID) trace.Request {
	return trace.Request{Time: int64(id), ID: id, Size: 100, Cost: 2}
}

func TestRemoteAdmitterUsesRemoteLikelihood(t *testing.T) {
	f := &fakePredictor{probs: []float64{0.9, 0.1}}
	reg := obs.NewRegistry()
	a, err := NewRemoteAdmitter(f, RemoteAdmitterConfig{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if ok, lik := a.Admit(remoteReq(1), 500); !ok || lik != 0.9 {
		t.Errorf("Admit = (%v, %v), want (true, 0.9)", ok, lik)
	}
	if ok, lik := a.Admit(remoteReq(2), 500); ok || lik != 0.1 {
		t.Errorf("Admit = (%v, %v), want (false, 0.1)", ok, lik)
	}
	if got := reg.Counter("core_remote_predictions_total").Value(); got != 2 {
		t.Errorf("predictions counter = %d, want 2", got)
	}
	if got := reg.Counter("core_remote_fallbacks_total").Value(); got != 0 {
		t.Errorf("fallbacks counter = %d, want 0", got)
	}
	// The wire tuple carries the request and free bytes faithfully.
	want := server.AdmitRequest{Time: 2, ID: 2, Size: 100, Cost: 2, Free: 500}
	if len(f.last) != 1 || f.last[0] != want {
		t.Errorf("wire tuple %+v, want %+v", f.last, want)
	}
}

func TestRemoteAdmitterFallsBackOnError(t *testing.T) {
	boom := errors.New("injected remote failure")
	f := &fakePredictor{errs: []error{boom, boom}}
	reg := obs.NewRegistry()
	a, err := NewRemoteAdmitter(f, RemoteAdmitterConfig{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Default fallback is the second-hit censor: first sight denied...
	if ok, _ := a.Admit(remoteReq(7), 0); ok {
		t.Error("fallback admitted an unseen object")
	}
	a.Observe(remoteReq(7))
	// ...second sight admitted, still through the fallback.
	if ok, _ := a.Admit(remoteReq(7), 0); !ok {
		t.Error("fallback denied a previously seen object")
	}
	if got := reg.Counter("core_remote_errors_total").Value(); got != 2 {
		t.Errorf("errors counter = %d, want 2", got)
	}
	if got := reg.Counter("core_remote_fallbacks_total").Value(); got != 2 {
		t.Errorf("fallbacks counter = %d, want 2", got)
	}
	if got := reg.Counter("core_remote_predictions_total").Value(); got != 0 {
		t.Errorf("predictions counter = %d, want 0", got)
	}
}

func TestRemoteAdmitterRecoversAfterDegradation(t *testing.T) {
	f := &fakePredictor{probs: []float64{0, 0.8}, errs: []error{errors.New("blip"), nil}}
	a, err := NewRemoteAdmitter(f, RemoteAdmitterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a.Admit(remoteReq(1), 0) // degraded call
	if ok, lik := a.Admit(remoteReq(2), 0); !ok || lik != 0.8 {
		t.Errorf("post-recovery Admit = (%v, %v), want (true, 0.8)", ok, lik)
	}
}

func TestRemoteAdmitterCutoff(t *testing.T) {
	f := &fakePredictor{probs: []float64{0.3, 0.3}}
	a, err := NewRemoteAdmitter(f, RemoteAdmitterConfig{Cutoff: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.Admit(remoteReq(1), 0); !ok {
		t.Error("likelihood 0.3 denied at cutoff 0.25")
	}
	aAll, err := NewRemoteAdmitter(&fakePredictor{probs: []float64{0}}, RemoteAdmitterConfig{Cutoff: CutoffAdmitAll})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := aAll.Admit(remoteReq(1), 0); !ok {
		t.Error("CutoffAdmitAll denied a scored request")
	}
	if _, err := NewRemoteAdmitter(f, RemoteAdmitterConfig{Cutoff: 1.5}); err == nil {
		t.Error("out-of-range cutoff accepted")
	}
	if _, err := NewRemoteAdmitter(nil, RemoteAdmitterConfig{}); err == nil {
		t.Error("nil predictor accepted")
	}
}

// badLenPredictor returns the wrong number of probabilities.
type badLenPredictor struct{}

func (badLenPredictor) Admit(reqs []server.AdmitRequest) ([]float64, error) {
	return []float64{1, 1}, nil
}

func TestRemoteAdmitterFallsBackOnBadResponseShape(t *testing.T) {
	reg := obs.NewRegistry()
	a, err := NewRemoteAdmitter(badLenPredictor{}, RemoteAdmitterConfig{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	a.Admit(remoteReq(1), 0)
	if got := reg.Counter("core_remote_fallbacks_total").Value(); got != 1 {
		t.Errorf("fallbacks counter = %d, want 1", got)
	}
}
