// Package tiered implements the hierarchical cache model the paper
// proposes in §5 ("Is model-based learning extensible?"): apply LFO's
// single-cache model to the aggregate cache space of a CDN server (RAM +
// SSD + HDD), learning first whether to cache an object at all, and then
// where to place it based on storage characteristics.
//
// A TieredCache is a stack of byte-accurate tiers. Lookups probe tiers in
// order; a hit in a lower tier promotes the object toward the top. On a
// miss, an Admitter decides whether to cache the object at all (level one
// of the hierarchical model — typically LFO's learned admission), and a
// Placer maps the admission likelihood and object size onto a tier (level
// two — e.g. likely-hot small objects to RAM, bulky or lukewarm objects
// to SSD/HDD). Evictions demote objects to the next tier down instead of
// discarding them; the bottom tier evicts to the origin.
package tiered

import (
	"container/list"
	"fmt"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// Tier describes one storage level.
type Tier struct {
	// Name labels the tier in stats (e.g. "ram", "ssd", "hdd").
	Name string
	// Capacity is the tier size in bytes.
	Capacity int64
	// ReadCost is the per-request cost of serving a hit from this tier
	// (e.g. a relative latency). Used only for reporting.
	ReadCost float64
}

// Admitter decides whether a missed object should be cached at all, and
// with what likelihood/confidence (0..1). LFO's learned model implements
// this (ModelAdmitter); heuristics can too.
type Admitter interface {
	// Admit returns whether to cache the object and a likelihood used by
	// the Placer and as the eviction rank hint. Called only on misses,
	// before Observe.
	Admit(r trace.Request, freeBytes int64) (bool, float64)
	// Observe is called for every request (hit or miss) so stateful
	// admitters can maintain request history.
	Observe(r trace.Request)
}

// AdmitAll admits everything with likelihood 1.
type AdmitAll struct{}

// Admit implements Admitter.
func (AdmitAll) Admit(r trace.Request, freeBytes int64) (bool, float64) { return true, 1 }

// Observe implements Admitter.
func (AdmitAll) Observe(trace.Request) {}

// SizeThreshold admits objects up to MaxSize bytes.
type SizeThreshold struct {
	MaxSize int64
}

// Admit implements Admitter.
func (s SizeThreshold) Admit(r trace.Request, freeBytes int64) (bool, float64) {
	if r.Size <= s.MaxSize {
		return true, 1
	}
	return false, 0
}

// Observe implements Admitter.
func (SizeThreshold) Observe(trace.Request) {}

// ModelAdmitter is the learned level-one decision of §5's hierarchical
// model: a trained LFO admission model over the aggregate cache space.
type ModelAdmitter struct {
	model   *gbdt.Model
	tracker *features.Tracker
	cutoff  float64
	buf     []float64
}

// NewModelAdmitter wraps a trained model as an Admitter. cutoff <= 0
// means 0.5.
func NewModelAdmitter(m *gbdt.Model, cutoff float64) *ModelAdmitter {
	if cutoff <= 0 {
		cutoff = 0.5
	}
	return &ModelAdmitter{
		model:   m,
		tracker: features.NewTracker(0),
		cutoff:  cutoff,
		buf:     make([]float64, features.Dim),
	}
}

// Admit implements Admitter.
func (a *ModelAdmitter) Admit(r trace.Request, freeBytes int64) (bool, float64) {
	a.tracker.Features(r, freeBytes, a.buf)
	p := a.model.Predict(a.buf)
	return p >= a.cutoff, p
}

// Observe implements Admitter.
func (a *ModelAdmitter) Observe(r trace.Request) { a.tracker.Update(r) }

// Placer maps an admitted object to a tier index (0 = fastest).
type Placer func(r trace.Request, likelihood float64) int

// PlaceBySize returns a Placer that places objects into the first tier
// whose size bound is >= the object size. bounds has one entry per tier
// except the last (which takes everything).
func PlaceBySize(bounds ...int64) Placer {
	return func(r trace.Request, likelihood float64) int {
		for i, b := range bounds {
			if r.Size <= b {
				return i
			}
		}
		return len(bounds)
	}
}

// PlaceByLikelihood returns a Placer that places hot predictions (>= hot)
// into tier 0, lukewarm (>= warm) into tier 1, everything else into the
// last tier.
func PlaceByLikelihood(hot, warm float64) Placer {
	return func(r trace.Request, likelihood float64) int {
		switch {
		case likelihood >= hot:
			return 0
		case likelihood >= warm:
			return 1
		default:
			return 2
		}
	}
}

// Stats reports per-tier hit counts.
type Stats struct {
	// Hits[i] counts hits served by tier i.
	Hits []int
	// HitBytes[i] counts bytes served by tier i.
	HitBytes []int64
	// ReadCost accumulates Σ hits_i × ReadCost_i.
	ReadCost float64
	// Demotions counts objects moved down a tier on eviction.
	Demotions int
}

// TieredCache is a hierarchical cache. It implements sim.Policy; a hit in
// any tier counts as a hit.
type TieredCache struct {
	tiers    []Tier
	stores   []*sim.Store[*list.Element]
	lrus     []*list.List
	admitter Admitter
	placer   Placer
	stats    Stats
}

// New returns a tiered cache. At least one tier is required; the placer
// may return any index in [0, len(tiers)); out-of-range placements are
// clamped.
func New(tiers []Tier, admitter Admitter, placer Placer) (*TieredCache, error) {
	if len(tiers) == 0 {
		return nil, fmt.Errorf("tiered: at least one tier required")
	}
	if admitter == nil {
		admitter = AdmitAll{}
	}
	if placer == nil {
		placer = func(trace.Request, float64) int { return 0 }
	}
	c := &TieredCache{
		tiers:    tiers,
		admitter: admitter,
		placer:   placer,
	}
	for _, t := range tiers {
		if t.Capacity <= 0 {
			return nil, fmt.Errorf("tiered: tier %q has non-positive capacity", t.Name)
		}
		c.stores = append(c.stores, sim.NewStore[*list.Element](t.Capacity))
		c.lrus = append(c.lrus, list.New())
	}
	c.stats.Hits = make([]int, len(tiers))
	c.stats.HitBytes = make([]int64, len(tiers))
	return c, nil
}

// Name implements sim.Policy.
func (c *TieredCache) Name() string { return "Tiered" }

// Stats returns per-tier hit statistics.
func (c *TieredCache) Stats() Stats { return c.stats }

// FreeBytes returns the aggregate free space across tiers — the §5 idea
// of treating RAM+SSD+HDD as one aggregate cache space for the model.
func (c *TieredCache) FreeBytes() int64 {
	var free int64
	for _, s := range c.stores {
		free += s.Free()
	}
	return free
}

// Request implements sim.Policy.
func (c *TieredCache) Request(r trace.Request) bool {
	// Probe tiers top-down.
	for i, s := range c.stores {
		if e := s.Get(r.ID); e != nil {
			c.stats.Hits[i]++
			c.stats.HitBytes[i] += r.Size
			c.stats.ReadCost += c.tiers[i].ReadCost
			c.lrus[i].MoveToFront(e.Payload)
			// Promote hits from lower tiers one level up (standard
			// multi-level caching; keeps hot objects migrating toward
			// RAM).
			if i > 0 && r.Size <= c.tiers[i-1].Capacity {
				c.removeFrom(i, r.ID)
				c.insertInto(i-1, r)
			}
			c.admitter.Observe(r)
			return true
		}
	}

	admit, likelihood := c.admitter.Admit(r, c.FreeBytes())
	c.admitter.Observe(r)
	if !admit {
		return false
	}
	tier := c.placer(r, likelihood)
	if tier < 0 {
		tier = 0
	}
	if tier >= len(c.tiers) {
		tier = len(c.tiers) - 1
	}
	// Skip tiers the object cannot physically fit.
	for tier < len(c.tiers) && r.Size > c.tiers[tier].Capacity {
		tier++
	}
	if tier == len(c.tiers) {
		return false
	}
	c.insertInto(tier, r)
	return false
}

// insertInto places an object at the head of a tier, demoting evicted
// objects down the hierarchy.
func (c *TieredCache) insertInto(tier int, r trace.Request) {
	s := c.stores[tier]
	for !s.Fits(r.Size) {
		tail := c.lrus[tier].Back()
		victim := tail.Value.(trace.ObjectID)
		victimSize := s.Get(victim).Size
		c.removeFrom(tier, victim)
		// Demote to the next tier down if it fits there at all.
		if next := tier + 1; next < len(c.tiers) && victimSize <= c.tiers[next].Capacity {
			c.stats.Demotions++
			c.insertInto(next, trace.Request{ID: victim, Size: victimSize})
		}
	}
	e := s.Add(r.ID, r.Size)
	e.Payload = c.lrus[tier].PushFront(r.ID)
}

func (c *TieredCache) removeFrom(tier int, id trace.ObjectID) {
	e := c.stores[tier].Get(id)
	c.lrus[tier].Remove(e.Payload)
	c.stores[tier].Remove(id)
}
