package tiered

import (
	"testing"

	"lfo/internal/core"
	"lfo/internal/gen"
	"lfo/internal/opt"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

func threeTiers() []Tier {
	return []Tier{
		{Name: "ram", Capacity: 1 << 20, ReadCost: 1},
		{Name: "ssd", Capacity: 4 << 20, ReadCost: 10},
		{Name: "hdd", Capacity: 16 << 20, ReadCost: 100},
	}
}

func req(t int64, id trace.ObjectID, size int64) trace.Request {
	return trace.Request{Time: t, ID: id, Size: size, Cost: float64(size)}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil); err == nil {
		t.Error("no tiers accepted")
	}
	if _, err := New([]Tier{{Name: "x", Capacity: 0}}, nil, nil); err == nil {
		t.Error("zero-capacity tier accepted")
	}
}

func TestHitInAnyTierCounts(t *testing.T) {
	c, err := New(threeTiers(), AdmitAll{}, PlaceBySize(64<<10, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	// Small object -> ram; big object -> ssd; huge -> hdd.
	small := req(0, 1, 1<<10)
	big := req(1, 2, 512<<10)
	huge := req(2, 3, 8<<20)
	for _, r := range []trace.Request{small, big, huge} {
		if c.Request(r) {
			t.Fatal("first request hit")
		}
	}
	for i, r := range []trace.Request{small, big, huge} {
		if !c.Request(r) {
			t.Fatalf("repeat request %d missed", i)
		}
	}
	s := c.Stats()
	// small hits ram; big was placed in ssd but its hit promotes it; the
	// first repeat hit is counted in the tier it was found in.
	if s.Hits[0] < 1 {
		t.Errorf("ram hits = %d, want >= 1", s.Hits[0])
	}
	if s.Hits[1] != 1 || s.Hits[2] != 1 {
		t.Errorf("ssd,hdd hits = %d,%d, want 1,1", s.Hits[1], s.Hits[2])
	}
	if s.ReadCost != 1+10+100 {
		t.Errorf("ReadCost = %g, want 111", s.ReadCost)
	}
}

func TestPromotionMovesUp(t *testing.T) {
	c, err := New(threeTiers(), AdmitAll{}, func(trace.Request, float64) int { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	r := req(0, 1, 1<<10)
	c.Request(r) // placed in hdd
	c.Request(r) // hit in hdd, promoted to ssd
	c.Request(r) // hit in ssd, promoted to ram
	if !c.Request(r) {
		t.Fatal("missed after promotions")
	}
	s := c.Stats()
	if s.Hits[2] != 1 || s.Hits[1] != 1 || s.Hits[0] != 1 {
		t.Errorf("hit ladder = %v, want one hit per tier", s.Hits)
	}
}

func TestDemotionOnEviction(t *testing.T) {
	tiers := []Tier{
		{Name: "ram", Capacity: 2, ReadCost: 1},
		{Name: "ssd", Capacity: 10, ReadCost: 10},
	}
	c, err := New(tiers, AdmitAll{}, nil) // everything placed in ram
	if err != nil {
		t.Fatal(err)
	}
	c.Request(req(0, 1, 1))
	c.Request(req(1, 2, 1))
	c.Request(req(2, 3, 1)) // evicts 1 from ram -> demoted to ssd
	if c.Stats().Demotions != 1 {
		t.Fatalf("demotions = %d, want 1", c.Stats().Demotions)
	}
	if !c.Request(req(3, 1, 1)) {
		t.Error("demoted object lost instead of hitting in ssd")
	}
	if c.Stats().Hits[1] != 1 {
		t.Errorf("ssd hits = %d, want 1", c.Stats().Hits[1])
	}
}

func TestBottomTierEvictsToOrigin(t *testing.T) {
	tiers := []Tier{{Name: "ram", Capacity: 2, ReadCost: 1}}
	c, err := New(tiers, AdmitAll{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Request(req(0, 1, 1))
	c.Request(req(1, 2, 1))
	c.Request(req(2, 3, 1)) // evicts 1 entirely
	if c.Request(req(3, 1, 1)) {
		t.Error("evicted object still hit")
	}
}

func TestSizeThresholdAdmitter(t *testing.T) {
	c, err := New(threeTiers(), SizeThreshold{MaxSize: 1 << 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Request(req(0, 1, 2<<10)) // rejected
	if c.Request(req(1, 1, 2<<10)) {
		t.Error("rejected object hit")
	}
	c.Request(req(2, 2, 512)) // admitted
	if !c.Request(req(3, 2, 512)) {
		t.Error("admitted object missed")
	}
}

func TestOversizedObjectSkipsTiers(t *testing.T) {
	c, err := New(threeTiers(), AdmitAll{}, nil) // placer -> tier 0
	if err != nil {
		t.Fatal(err)
	}
	// 8MB object cannot fit ram (1MB) or ssd (4MB); lands in hdd.
	c.Request(req(0, 1, 8<<20))
	if !c.Request(req(1, 1, 8<<20)) {
		t.Fatal("oversized-for-ram object not cached in hdd")
	}
	if c.Stats().Hits[2] != 1 {
		t.Errorf("hdd hits = %v", c.Stats().Hits)
	}
	// Larger than every tier: never cached.
	c.Request(req(2, 2, 64<<20))
	if c.Request(req(3, 2, 64<<20)) {
		t.Error("object larger than all tiers hit")
	}
}

func TestPlaceByLikelihood(t *testing.T) {
	p := PlaceByLikelihood(0.8, 0.4)
	r := req(0, 1, 1)
	if p(r, 0.9) != 0 || p(r, 0.5) != 1 || p(r, 0.1) != 2 {
		t.Error("likelihood placement wrong")
	}
}

// TestModelAdmitterEndToEnd trains an LFO model and uses it as the
// level-one decision of a tiered cache (§5's hierarchical model),
// checking it beats admit-all on BHR under pressure.
func TestModelAdmitterEndToEnd(t *testing.T) {
	tr, err := gen.Generate(gen.CDNMix(30000, 5))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	train := tr.Slice(0, 15000)
	eval := tr.Slice(15000, 30000)

	tiers := []Tier{
		{Name: "ram", Capacity: 2 << 20, ReadCost: 1},
		{Name: "ssd", Capacity: 6 << 20, ReadCost: 10},
		{Name: "hdd", Capacity: 8 << 20, ReadCost: 100},
	}
	var total int64
	for _, tt := range tiers {
		total += tt.Capacity
	}

	model, _, err := core.TrainOnWindow(train, core.Config{
		CacheSize:  total, // aggregate cache space, per §5
		WindowSize: train.Len(),
		OPT:        opt.Config{Algorithm: opt.AlgoAuto, RankFraction: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}

	learned, err := New(tiers, NewModelAdmitter(model, 0.5), PlaceByLikelihood(0.85, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := New(tiers, AdmitAll{}, PlaceBySize(64<<10, 1<<20))
	if err != nil {
		t.Fatal(err)
	}

	lm := sim.Run(eval, learned, sim.Options{})
	nm := sim.Run(eval, naive, sim.Options{})
	if lm.BHR() <= nm.BHR() {
		t.Errorf("learned admission BHR %.4f <= admit-all %.4f", lm.BHR(), nm.BHR())
	}
	if learned.Stats().Hits[0] == 0 {
		t.Error("no RAM hits with likelihood placement")
	}
}

func TestTieredIsPolicy(t *testing.T) {
	var _ sim.Policy = &TieredCache{}
}
