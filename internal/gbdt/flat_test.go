package gbdt

import (
	"bufio"
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// splitMix is a SplitMix64 PRNG: deterministic rows without math/rand
// state shared across tests.
type splitMix struct{ s uint64 }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitMix) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// trainedFlatModel trains a real model over rows with NaN-valued features
// so the learned missing-direction routing is exercised, not just the
// numeric compares. Labels carry noise so the trainer grows full-depth
// trees instead of separating the classes in a few splits.
func trainedFlatModel(tb testing.TB, seed uint64, dim int) *Model {
	tb.Helper()
	rng := splitMix{s: seed}
	ds := NewDataset(dim)
	row := make([]float64, dim)
	for i := 0; i < 4000; i++ {
		s := 0.0
		for j := range row {
			v := rng.float() * 100
			if rng.next()%7 == 0 {
				v = math.NaN()
			} else {
				s += v
			}
			row[j] = v
		}
		label := 0.0
		if (s > 50*float64(dim)/2) != (rng.next()%4 == 0) {
			label = 1
		}
		ds.Append(row, label)
	}
	p := DefaultParams()
	p.Workers = 1
	m, err := Train(ds, p)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// diffRows returns n deterministic test rows (flat row-major) mixing
// in-range values, out-of-range values, and NaNs.
func diffRows(seed uint64, n, dim int) []float64 {
	rng := splitMix{s: seed}
	rows := make([]float64, n*dim)
	for i := range rows {
		switch rng.next() % 8 {
		case 0:
			rows[i] = math.NaN()
		case 1:
			rows[i] = -rng.float() * 1e6
		default:
			rows[i] = rng.float() * 120
		}
	}
	return rows
}

// TestFlatDifferentialTrained: on trained models the compiled kernel must
// reproduce the pointer-walk oracle bit for bit, row by row.
func TestFlatDifferentialTrained(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		m := trainedFlatModel(t, seed, 13)
		if m.Flat() == nil {
			t.Fatal("trained model was not compiled")
		}
		rows := diffRows(seed+100, 300, m.Dim)
		for i := 0; i < 300; i++ {
			row := rows[i*m.Dim : (i+1)*m.Dim]
			got := m.RawPredict(row)
			want := m.nodeRawPredict(row)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("seed %d row %d: flat %v (%#x) != oracle %v (%#x)",
					seed, i, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestFlatDifferentialCorpus replays every committed fuzz-corpus seed:
// any stream Load accepts must predict identically through the flat
// kernel and the pointer walk.
func TestFlatDifferentialCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzModelLoad")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	loaded := 0
	for _, e := range entries {
		data, err := readCorpusEntry(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			continue // rejected streams have nothing to compare
		}
		loaded++
		if m.Dim > 1<<12 {
			continue
		}
		rows := diffRows(uint64(len(data)), 64, m.Dim)
		for i := 0; i < 64; i++ {
			row := rows[i*m.Dim : (i+1)*m.Dim]
			got, want := m.RawPredict(row), m.nodeRawPredict(row)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s row %d: flat %v != oracle %v", e.Name(), i, got, want)
			}
		}
	}
	if loaded == 0 {
		t.Fatal("no corpus entry loaded successfully; differential corpus check is vacuous")
	}
}

// readCorpusEntry parses the `go test fuzz v1` + `[]byte("...")` format
// of a committed corpus file.
func readCorpusEntry(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Scan() // version header
	sc.Scan()
	line := strings.TrimSuffix(strings.TrimPrefix(sc.Text(), "[]byte("), ")")
	if err := sc.Err(); err != nil {
		return nil, err
	}
	s, err := strconv.Unquote(line)
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// TestPredictMatrixWorkerInvariance: the batched walk must be
// byte-identical to per-row Predict for every worker count and for sizes
// that are empty, smaller than a block, or straddle block boundaries.
func TestPredictMatrixWorkerInvariance(t *testing.T) {
	m := trainedFlatModel(t, 3, 9)
	for _, n := range []int{0, 1, 63, 64, 65, 513} {
		rows := diffRows(uint64(n)+9, n, m.Dim)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			want[i] = m.Predict(rows[i*m.Dim : (i+1)*m.Dim])
		}
		for _, workers := range []int{0, 1, 2, 8} {
			out := make([]float64, n)
			m.PredictMatrix(rows, out, workers)
			for i := range out {
				if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d workers=%d row %d: matrix %v != per-row %v", n, workers, i, out[i], want[i])
				}
			}
		}
	}
}

// TestAccumulateRawMatchesOracle: the trainer's score-update path must add
// exactly what per-row tree walks add, in the same order.
func TestAccumulateRawMatchesOracle(t *testing.T) {
	m := trainedFlatModel(t, 5, 7)
	const n = 130
	rows := diffRows(17, n, m.Dim)
	got := make([]float64, n)
	want := make([]float64, n)
	for i := range got {
		got[i] = 0.25
		want[i] = 0.25
		row := rows[i*m.Dim : (i+1)*m.Dim]
		for ti := range m.Trees {
			want[i] += m.Trees[ti].predict(row)
		}
	}
	m.Flat().AccumulateRaw(rows, got, 2)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("row %d: accumulate %v != oracle %v", i, got[i], want[i])
		}
	}
}

// TestUncompiledFallback: a hand-assembled model that was never Compiled
// must predict identically through the pointer-walk fallback paths.
func TestUncompiledFallback(t *testing.T) {
	compiled := trainedFlatModel(t, 11, 6)
	plain := &Model{Dim: compiled.Dim, BaseScore: compiled.BaseScore, Trees: compiled.Trees}
	if plain.Flat() != nil {
		t.Fatal("copy unexpectedly compiled")
	}
	const n = 70
	rows := diffRows(23, n, plain.Dim)
	want := make([]float64, n)
	compiled.PredictMatrix(rows, want, 2)
	got := make([]float64, n)
	plain.PredictMatrix(rows, got, 2)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("row %d: fallback %v != compiled %v", i, got[i], want[i])
		}
	}
	row := rows[:plain.Dim]
	if g, w := plain.Predict(row), compiled.Predict(row); math.Float64bits(g) != math.Float64bits(w) {
		t.Fatalf("per-row fallback %v != compiled %v", g, w)
	}
}

// TestFlatSingleLeafTrees: trees that are a lone leaf compile to negative
// root words and take the constant-add fast path in the block walks.
func TestFlatSingleLeafTrees(t *testing.T) {
	m := &Model{Dim: 3, BaseScore: -0.5, Trees: []Tree{
		{Nodes: []node{{Feature: -1, Value: 0.75}}},
		{Nodes: []node{
			{Feature: 1, Threshold: 4, MissingLeft: true, Left: 1, Right: 2},
			{Feature: -1, Value: -0.25}, {Feature: -1, Value: 0.125},
		}},
		{Nodes: []node{{Feature: -1, Value: -1.5}}},
	}}
	if err := m.Compile(); err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]float64{{0, 0, 0}, {0, 9, 0}, {0, math.NaN(), 1}} {
		got, want := m.RawPredict(row), m.nodeRawPredict(row)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("row %v: flat %v != oracle %v", row, got, want)
		}
	}
	const n = 67
	rows := diffRows(31, n, m.Dim)
	out := make([]float64, n)
	m.PredictMatrix(rows, out, 1)
	for i := range out {
		want := m.Predict(rows[i*m.Dim : (i+1)*m.Dim])
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: matrix %v != per-row %v", i, out[i], want)
		}
	}
	inout := make([]float64, n)
	m.Flat().AccumulateRaw(rows, inout, 1)
	for i := range inout {
		want := 0.0
		row := rows[i*m.Dim : (i+1)*m.Dim]
		for ti := range m.Trees {
			want += m.Trees[ti].predict(row)
		}
		if math.Float64bits(inout[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: accumulate %v != oracle %v", i, inout[i], want)
		}
	}
}

// TestCompileIdempotent: recompiling must be safe and change nothing.
func TestCompileIdempotent(t *testing.T) {
	m := trainedFlatModel(t, 13, 5)
	row := diffRows(1, 1, m.Dim)
	before := m.RawPredict(row)
	if err := m.Compile(); err != nil {
		t.Fatal(err)
	}
	if after := m.RawPredict(row); math.Float64bits(before) != math.Float64bits(after) {
		t.Fatalf("recompile changed prediction: %v != %v", before, after)
	}
}
