// Package gbdt implements histogram-based gradient-boosted decision trees
// for binary classification, following the LightGBM algorithm the paper's
// prototype uses (§2.3): quantile feature binning, leaf-wise (best-first)
// tree growth, logistic loss, shrinkage, optional bagging and feature
// subsampling, and native missing-value routing with learned default
// directions.
//
// The repro environment has no tree-learning library for Go, so this
// package is a from-scratch substrate. Defaults mirror LightGBM's, with
// the paper's one deviation: NumIterations is 30 instead of 100.
package gbdt

import (
	"fmt"
)

// Params configures training. The zero value is not valid; start from
// DefaultParams.
type Params struct {
	// NumIterations is the number of boosting rounds (trees). The paper
	// reduces LightGBM's default 100 to 30 (§2.3).
	NumIterations int
	// LearningRate shrinks each tree's contribution.
	LearningRate float64
	// NumLeaves caps leaves per tree (leaf-wise growth).
	NumLeaves int
	// MaxDepth caps tree depth; 0 means unlimited.
	MaxDepth int
	// MinDataInLeaf is the minimum sample count per leaf.
	MinDataInLeaf int
	// MinSumHessianInLeaf is the minimal hessian mass per leaf.
	MinSumHessianInLeaf float64
	// Lambda is the L2 regularization on leaf values.
	Lambda float64
	// MinGainToSplit prunes splits with smaller gain.
	MinGainToSplit float64
	// MaxBins caps histogram bins per feature (≤ 255).
	MaxBins int
	// BaggingFraction subsamples rows per bagging round, in (0, 1].
	BaggingFraction float64
	// BaggingFreq re-samples rows every BaggingFreq iterations; 0
	// disables bagging.
	BaggingFreq int
	// FeatureFraction subsamples features per tree, in (0, 1].
	FeatureFraction float64
	// GOSSTopRate enables LightGBM's gradient-based one-side sampling
	// when positive: each tree trains on the GOSSTopRate fraction of
	// rows with the largest gradient magnitudes plus a GOSSOtherRate
	// random sample of the rest, re-weighted by (1-a)/b to keep the
	// gradient distribution unbiased. GOSS and bagging are mutually
	// exclusive.
	GOSSTopRate float64
	// GOSSOtherRate is the sampling rate for small-gradient rows; only
	// meaningful when GOSSTopRate > 0.
	GOSSOtherRate float64
	// Seed drives bagging, GOSS and feature sampling.
	Seed int64
	// Workers caps the goroutines used inside Train: row-sharded
	// gradient/score updates and feature-parallel histogram building and
	// split search. 0 means all available cores (runtime.GOMAXPROCS),
	// 1 trains single-threaded. The trained model is byte-identical for
	// every value — parallelism only changes wall-clock time.
	Workers int
}

// DefaultParams returns LightGBM-style defaults with the paper's 30
// iterations.
func DefaultParams() Params {
	return Params{
		NumIterations:       30,
		LearningRate:        0.1,
		NumLeaves:           31,
		MaxDepth:            0,
		MinDataInLeaf:       20,
		MinSumHessianInLeaf: 1e-3,
		Lambda:              0,
		MinGainToSplit:      0,
		MaxBins:             255,
		BaggingFraction:     1,
		BaggingFreq:         0,
		FeatureFraction:     1,
		Seed:                0,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.NumIterations <= 0:
		return fmt.Errorf("gbdt: NumIterations must be positive, got %d", p.NumIterations)
	case p.LearningRate <= 0:
		return fmt.Errorf("gbdt: LearningRate must be positive, got %g", p.LearningRate)
	case p.NumLeaves < 2:
		return fmt.Errorf("gbdt: NumLeaves must be >= 2, got %d", p.NumLeaves)
	case p.MinDataInLeaf < 1:
		return fmt.Errorf("gbdt: MinDataInLeaf must be >= 1, got %d", p.MinDataInLeaf)
	case p.MaxBins < 2 || p.MaxBins > 255:
		return fmt.Errorf("gbdt: MaxBins must be in [2,255], got %d", p.MaxBins)
	case p.BaggingFraction <= 0 || p.BaggingFraction > 1:
		return fmt.Errorf("gbdt: BaggingFraction must be in (0,1], got %g", p.BaggingFraction)
	case p.FeatureFraction <= 0 || p.FeatureFraction > 1:
		return fmt.Errorf("gbdt: FeatureFraction must be in (0,1], got %g", p.FeatureFraction)
	case p.Lambda < 0:
		return fmt.Errorf("gbdt: Lambda must be >= 0, got %g", p.Lambda)
	case p.GOSSTopRate < 0 || p.GOSSTopRate >= 1:
		return fmt.Errorf("gbdt: GOSSTopRate must be in [0,1), got %g", p.GOSSTopRate)
	case p.GOSSTopRate > 0 && (p.GOSSOtherRate <= 0 || p.GOSSTopRate+p.GOSSOtherRate > 1):
		return fmt.Errorf("gbdt: GOSSOtherRate %g invalid for top rate %g", p.GOSSOtherRate, p.GOSSTopRate)
	case p.GOSSTopRate > 0 && p.BaggingFreq > 0 && p.BaggingFraction < 1:
		return fmt.Errorf("gbdt: GOSS and bagging are mutually exclusive")
	case p.Workers < 0:
		return fmt.Errorf("gbdt: Workers must be >= 0, got %d", p.Workers)
	}
	return nil
}
