package gbdt

import (
	"fmt"
	"math"
	"sort"
)

// Dataset is a row-major feature matrix with binary labels.
type Dataset struct {
	dim int
	x   []float64 // n*dim, row-major
	y   []float64 // labels in {0, 1}
}

// NewDataset returns an empty dataset with the given feature dimension.
func NewDataset(dim int) *Dataset {
	if dim <= 0 {
		panic("gbdt: dataset dimension must be positive")
	}
	return &Dataset{dim: dim}
}

// Dim returns the feature dimension.
func (d *Dataset) Dim() int { return d.dim }

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.y) }

// Append adds a row. The label must be 0 or 1. The row is copied.
func (d *Dataset) Append(row []float64, label float64) {
	if len(row) != d.dim {
		panic(fmt.Sprintf("gbdt: row dim %d != dataset dim %d", len(row), d.dim))
	}
	//lfolint:ignore float-equal labels are exact 0/1 sentinels assigned from constants, never computed
	if label != 0 && label != 1 {
		panic(fmt.Sprintf("gbdt: label must be 0 or 1, got %g", label))
	}
	d.x = append(d.x, row...)
	d.y = append(d.y, label)
}

// DatasetFromMatrix wraps an existing flat row-major matrix (len(y) rows,
// dim wide) as a dataset without copying. Labels must be 0 or 1. The
// caller must not mutate x or y while the dataset is in use.
func DatasetFromMatrix(dim int, x []float64, y []float64) *Dataset {
	if dim <= 0 {
		panic("gbdt: dataset dimension must be positive")
	}
	if len(x) != len(y)*dim {
		panic(fmt.Sprintf("gbdt: matrix length %d != %d rows × dim %d", len(x), len(y), dim))
	}
	for _, label := range y {
		//lfolint:ignore float-equal labels are exact 0/1 sentinels assigned from constants, never computed
		if label != 0 && label != 1 {
			panic(fmt.Sprintf("gbdt: label must be 0 or 1, got %g", label))
		}
	}
	return &Dataset{dim: dim, x: x, y: y}
}

// Row returns row i (not a copy; do not modify).
func (d *Dataset) Row(i int) []float64 {
	return d.x[i*d.dim : (i+1)*d.dim]
}

// Label returns the label of row i.
func (d *Dataset) Label(i int) float64 { return d.y[i] }

// missingBin is the reserved histogram bin for NaN values.
const missingBin = 0

// binner maps raw feature values to histogram bins. Bin 0 is reserved for
// missing (NaN); bins 1..len(edges[f]) cover values, where bin b holds
// values v with edges[f][b-2] < v <= edges[f][b-1] (edges ascending, last
// edge +Inf).
type binner struct {
	edges [][]float64
}

// buildBinner computes per-feature quantile bin edges from the dataset.
func buildBinner(d *Dataset, maxBins int) *binner {
	b := &binner{edges: make([][]float64, d.dim)}
	vals := make([]float64, 0, d.Len())
	for f := 0; f < d.dim; f++ {
		vals = vals[:0]
		for i := 0; i < d.Len(); i++ {
			v := d.x[i*d.dim+f]
			if !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		b.edges[f] = quantileEdges(vals, maxBins)
	}
	return b
}

// quantileEdges returns ascending bin upper bounds for values, at most
// maxBins of them, ending in +Inf.
func quantileEdges(vals []float64, maxBins int) []float64 {
	if len(vals) == 0 {
		return []float64{math.Inf(1)}
	}
	sort.Float64s(vals)
	// Distinct values.
	distinct := vals[:0:0]
	for i, v := range vals {
		//lfolint:ignore float-equal dedup of sorted values is exact by design: identical bits share a bin
		if i == 0 || v != vals[i-1] {
			distinct = append(distinct, v)
		}
	}
	var edges []float64
	if len(distinct) <= maxBins {
		// One bin per distinct value; upper bound is the value itself.
		edges = append(edges, distinct...)
	} else {
		// Quantile cut points over the full (non-distinct) value list so
		// heavy values get their own bins.
		prev := math.Inf(-1)
		for b := 1; b <= maxBins; b++ {
			idx := b*len(vals)/maxBins - 1
			v := vals[idx]
			//lfolint:ignore float-equal cut-point dedup is exact by design: only bit-identical edges collapse
			if v != prev {
				edges = append(edges, v)
				prev = v
			}
		}
	}
	// Terminal catch-all: the top bin absorbs values beyond the training
	// range. edges is non-empty because vals is non-empty.
	edges[len(edges)-1] = math.Inf(1)
	return edges
}

// bin maps a value to its bin for feature f.
func (b *binner) bin(f int, v float64) uint8 {
	if math.IsNaN(v) {
		return missingBin
	}
	e := b.edges[f]
	// Binary search: first edge >= v.
	lo, hi := 0, len(e)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint8(lo + 1)
}

// numBins returns the bin count (including the missing bin) for feature f.
func (b *binner) numBins(f int) int { return len(b.edges[f]) + 1 }

// threshold returns the raw-value upper bound of bin index (1-based data
// bin) for feature f, used as the tree's split threshold.
func (b *binner) threshold(f int, bin int) float64 {
	return b.edges[f][bin-1]
}

// binned is a column-major binned copy of a dataset.
type binned struct {
	n, dim int
	cols   [][]uint8 // cols[f][i]
}

func binDataset(d *Dataset, b *binner) *binned {
	bd := &binned{n: d.Len(), dim: d.dim, cols: make([][]uint8, d.dim)}
	for f := 0; f < d.dim; f++ {
		col := make([]uint8, d.Len())
		for i := 0; i < d.Len(); i++ {
			col[i] = b.bin(f, d.x[i*d.dim+f])
		}
		bd.cols[f] = col
	}
	return bd
}
