package gbdt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synth builds a dataset where the label is a noisy function of the
// features: y = 1 if x0 > 5 XOR x1 > 3 (a non-linear relationship trees
// must capture).
func synth(n int, seed int64, noise float64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := NewDataset(4)
	for i := 0; i < n; i++ {
		row := []float64{
			rng.Float64() * 10,
			rng.Float64() * 6,
			rng.NormFloat64(), // irrelevant
			rng.Float64(),     // irrelevant
		}
		y := 0.0
		if (row[0] > 5) != (row[1] > 3) {
			y = 1
		}
		if rng.Float64() < noise {
			y = 1 - y
		}
		d.Append(row, y)
	}
	return d
}

func accuracy(m *Model, d *Dataset) float64 {
	correct := 0
	for i := 0; i < d.Len(); i++ {
		p := m.Predict(d.Row(i))
		if (p >= 0.5) == (d.Label(i) == 1) {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

func TestTrainLearnsXOR(t *testing.T) {
	train := synth(4000, 1, 0)
	test := synth(1000, 2, 0)
	m, err := Train(train, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, test); acc < 0.97 {
		t.Errorf("XOR accuracy = %.3f, want >= 0.97", acc)
	}
}

func TestTrainNoisyLabels(t *testing.T) {
	train := synth(4000, 3, 0.1)
	test := synth(1000, 4, 0)
	m, err := Train(train, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, test); acc < 0.9 {
		t.Errorf("noisy XOR accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestPredictInUnitInterval(t *testing.T) {
	train := synth(1000, 5, 0.05)
	m, err := Train(train, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < train.Len(); i++ {
		p := m.Predict(train.Row(i))
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("Predict = %g outside [0,1]", p)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	p := DefaultParams()
	p.BaggingFraction = 0.8
	p.BaggingFreq = 1
	p.FeatureFraction = 0.75
	p.Seed = 42
	a, err := Train(synth(1000, 6, 0.05), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(synth(1000, 6, 0.05), p)
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{3, 2, 0, 0.5}
	if a.RawPredict(row) != b.RawPredict(row) {
		t.Error("same seed, different models")
	}
	if a.NumTrees() != b.NumTrees() || a.NumLeaves() != b.NumLeaves() {
		t.Error("same seed, different structure")
	}
}

func TestSeedChangesBaggedModel(t *testing.T) {
	p := DefaultParams()
	p.BaggingFraction = 0.5
	p.BaggingFreq = 1
	d := synth(1000, 7, 0.1)
	p.Seed = 1
	a, _ := Train(d, p)
	p.Seed = 2
	b, _ := Train(d, p)
	diff := false
	for i := 0; i < 50; i++ {
		if a.RawPredict(d.Row(i)) != b.RawPredict(d.Row(i)) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical bagged models")
	}
}

func TestConstantLabels(t *testing.T) {
	d := NewDataset(2)
	for i := 0; i < 100; i++ {
		d.Append([]float64{float64(i), 1}, 1)
	}
	m, err := Train(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{50, 1}); p < 0.99 {
		t.Errorf("all-positive training: Predict = %g, want ≈1", p)
	}
}

func TestMissingValuesRouted(t *testing.T) {
	// Feature 0 determines the label; feature 0 is missing for a class
	// of rows whose label is always 1. The model must learn to route
	// NaN to the positive side.
	rng := rand.New(rand.NewSource(8))
	d := NewDataset(2)
	for i := 0; i < 3000; i++ {
		if rng.Intn(3) == 0 {
			d.Append([]float64{math.NaN(), rng.Float64()}, 1)
		} else {
			x := rng.Float64() * 10
			y := 0.0
			if x > 7 {
				y = 1
			}
			d.Append([]float64{x, rng.Float64()}, y)
		}
	}
	m, err := Train(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{math.NaN(), 0.5}); p < 0.8 {
		t.Errorf("missing-feature row predicted %g, want > 0.8", p)
	}
	if p := m.Predict([]float64{1, 0.5}); p > 0.3 {
		t.Errorf("x=1 row predicted %g, want < 0.3", p)
	}
	if p := m.Predict([]float64{9, 0.5}); p < 0.7 {
		t.Errorf("x=9 row predicted %g, want > 0.7", p)
	}
}

func TestNumLeavesRespected(t *testing.T) {
	p := DefaultParams()
	p.NumLeaves = 4
	m, err := Train(synth(2000, 9, 0), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Trees {
		if got := m.Trees[i].numLeaves(); got > 4 {
			t.Errorf("tree %d has %d leaves, want <= 4", i, got)
		}
	}
}

func TestMaxDepthRespected(t *testing.T) {
	p := DefaultParams()
	p.MaxDepth = 2
	m, err := Train(synth(2000, 10, 0), p)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range m.Trees {
		var walk func(i int32, depth int)
		walk = func(i int32, depth int) {
			n := m.Trees[ti].Nodes[i]
			if n.Feature < 0 {
				return
			}
			if depth >= 2 {
				t.Fatalf("tree %d splits at depth %d, max 2", ti, depth)
			}
			walk(n.Left, depth+1)
			walk(n.Right, depth+1)
		}
		walk(0, 0)
	}
}

func TestMinDataInLeafRespected(t *testing.T) {
	p := DefaultParams()
	p.MinDataInLeaf = 100
	d := synth(500, 11, 0)
	m, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	// Count training rows per leaf for each tree.
	for ti := range m.Trees {
		counts := make(map[int32]int)
		for i := 0; i < d.Len(); i++ {
			leaf := leafIndex(&m.Trees[ti], d.Row(i))
			counts[leaf]++
		}
		for leaf, c := range counts {
			if c < 100 {
				t.Errorf("tree %d leaf %d holds %d rows, want >= 100", ti, leaf, c)
			}
		}
	}
}

func leafIndex(tr *Tree, row []float64) int32 {
	i := int32(0)
	for {
		n := tr.Nodes[i]
		if n.Feature < 0 {
			return i
		}
		v := row[n.Feature]
		if math.IsNaN(v) {
			if n.MissingLeft {
				i = n.Left
			} else {
				i = n.Right
			}
		} else if v <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

func TestFeatureImportance(t *testing.T) {
	m, err := Train(synth(3000, 12, 0), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	if len(imp) != 4 {
		t.Fatalf("importance dim = %d, want 4", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sums to %g, want 1", sum)
	}
	// The informative features (0, 1) must dominate the noise features:
	// each informative feature outranks each noise feature, and together
	// they carry the majority of splits. (Later trees fit residual noise,
	// so noise features legitimately appear in some splits.)
	for _, info := range []int{0, 1} {
		for _, noise := range []int{2, 3} {
			if imp[info] <= imp[noise] {
				t.Errorf("importance[%d]=%.3f not above noise feature %d=%.3f", info, imp[info], noise, imp[noise])
			}
		}
	}
	if imp[0]+imp[1] < 0.5 {
		t.Errorf("informative features carry %.2f importance, want >= 0.5", imp[0]+imp[1])
	}
}

func TestMoreIterationsImproveTrainFit(t *testing.T) {
	d := synth(3000, 13, 0.02)
	p := DefaultParams()
	p.NumIterations = 2
	short, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	p.NumIterations = 40
	long, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if accuracy(long, d) < accuracy(short, d) {
		t.Errorf("40 iters train acc %.3f < 2 iters %.3f", accuracy(long, d), accuracy(short, d))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := Train(synth(1000, 14, 0.05), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{5, 3, 0, 0.1}
	if got.RawPredict(row) != m.RawPredict(row) {
		t.Error("loaded model predicts differently")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("Load accepted garbage")
	}
}

func TestPredictBatchMatchesSequential(t *testing.T) {
	d := synth(500, 15, 0.1)
	m, err := Train(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]float64, 0, d.Len()*d.Dim())
	for i := 0; i < d.Len(); i++ {
		rows = append(rows, d.Row(i)...)
	}
	seq := make([]float64, d.Len())
	par := make([]float64, d.Len())
	m.PredictBatch(rows, seq, 1)
	m.PredictBatch(rows, par, 8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("row %d: parallel %g != sequential %g", i, par[i], seq[i])
		}
	}
}

func TestParamsValidate(t *testing.T) {
	mods := []struct {
		name string
		mut  func(*Params)
	}{
		{"iterations", func(p *Params) { p.NumIterations = 0 }},
		{"learning rate", func(p *Params) { p.LearningRate = 0 }},
		{"leaves", func(p *Params) { p.NumLeaves = 1 }},
		{"min data", func(p *Params) { p.MinDataInLeaf = 0 }},
		{"bins low", func(p *Params) { p.MaxBins = 1 }},
		{"bins high", func(p *Params) { p.MaxBins = 300 }},
		{"bagging", func(p *Params) { p.BaggingFraction = 1.5 }},
		{"feature fraction", func(p *Params) { p.FeatureFraction = 0 }},
		{"lambda", func(p *Params) { p.Lambda = -1 }},
	}
	for _, tc := range mods {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mut(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted bad params")
			}
		})
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	if _, err := Train(NewDataset(3), DefaultParams()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestDatasetPanics(t *testing.T) {
	d := NewDataset(2)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"wrong dim", func() { d.Append([]float64{1}, 0) }},
		{"bad label", func() { d.Append([]float64{1, 2}, 0.5) }},
		{"zero dim dataset", func() { NewDataset(0) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.f()
		})
	}
}

func TestBinnerMonotone(t *testing.T) {
	// Bins must be monotone in the raw value.
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		d := NewDataset(1)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			d.Append([]float64{v}, float64(i%2))
		}
		b := buildBinner(d, 16)
		for i := 0; i < len(raw); i++ {
			for j := 0; j < len(raw); j++ {
				if raw[i] < raw[j] && b.bin(0, raw[i]) > b.bin(0, raw[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBinnerMissingBin(t *testing.T) {
	d := NewDataset(1)
	d.Append([]float64{1}, 0)
	d.Append([]float64{2}, 1)
	b := buildBinner(d, 8)
	if got := b.bin(0, math.NaN()); got != missingBin {
		t.Errorf("NaN bin = %d, want %d", got, missingBin)
	}
	if b.bin(0, 1) == missingBin || b.bin(0, 2) == missingBin {
		t.Error("real values landed in the missing bin")
	}
	if b.bin(0, 1) >= b.bin(0, 2) {
		t.Error("bins not ordered")
	}
	// Values beyond the training range map into the top bin.
	if got, want := b.bin(0, 99), b.bin(0, 2); got != want {
		t.Errorf("out-of-range bin = %d, want %d", got, want)
	}
}

func TestQuantileEdgesDedup(t *testing.T) {
	// A heavily repeated value must not produce duplicate edges.
	vals := make([]float64, 0, 1000)
	for i := 0; i < 900; i++ {
		vals = append(vals, 7)
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, float64(i))
	}
	edges := quantileEdges(vals, 8)
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges not strictly increasing: %v", edges)
		}
	}
	if !math.IsInf(edges[len(edges)-1], 1) {
		t.Error("last edge not +Inf")
	}
}

// TestGradientHessianProperty: for logistic loss, grad = p - y and
// hess = p(1-p) must satisfy |grad| <= 1 and 0 <= hess <= 0.25.
func TestGradientHessianProperty(t *testing.T) {
	d := synth(200, 16, 0.3)
	tr := &trainer{p: DefaultParams(), d: d}
	tr.grad = make([]float64, d.Len())
	tr.hess = make([]float64, d.Len())
	tr.scores = make([]float64, d.Len())
	rng := rand.New(rand.NewSource(1))
	for i := range tr.scores {
		tr.scores[i] = rng.NormFloat64() * 3
	}
	tr.computeGradients()
	for i := range tr.grad {
		if math.Abs(tr.grad[i]) > 1 {
			t.Fatalf("grad[%d] = %g outside [-1,1]", i, tr.grad[i])
		}
		if tr.hess[i] < 0 || tr.hess[i] > 0.25 {
			t.Fatalf("hess[%d] = %g outside [0,0.25]", i, tr.hess[i])
		}
	}
}

func TestHistogramSubtraction(t *testing.T) {
	d := synth(300, 17, 0.2)
	p := DefaultParams()
	tr := &trainer{p: p, d: d, rng: rand.New(rand.NewSource(0))}
	tr.b = buildBinner(d, p.MaxBins)
	tr.bd = binDataset(d, tr.b)
	tr.grad = make([]float64, d.Len())
	tr.hess = make([]float64, d.Len())
	tr.scores = make([]float64, d.Len())
	tr.computeGradients()

	feats := []int{0, 1, 2, 3}
	offsets := tr.histOffsets(feats)
	all := tr.allRows()
	parent := tr.newHistogram(offsets)
	tr.buildHist(parent, feats, all)

	half := all[:150]
	rest := all[150:]
	hHalf := tr.newHistogram(offsets)
	tr.buildHist(hHalf, feats, half)
	derived := subtractHist(parent, hHalf)

	direct := tr.newHistogram(offsets)
	tr.buildHist(direct, feats, rest)
	for i := range direct.bins {
		if direct.bins[i].count != derived.bins[i].count {
			t.Fatalf("bin %d count: direct %d != derived %d", i, direct.bins[i].count, derived.bins[i].count)
		}
		if math.Abs(direct.bins[i].grad-derived.bins[i].grad) > 1e-9 {
			t.Fatalf("bin %d grad mismatch", i)
		}
		if math.Abs(direct.bins[i].hess-derived.bins[i].hess) > 1e-9 {
			t.Fatalf("bin %d hess mismatch", i)
		}
	}
}

func TestGOSSLearnsXOR(t *testing.T) {
	p := DefaultParams()
	p.GOSSTopRate = 0.2
	p.GOSSOtherRate = 0.2
	p.NumIterations = 40
	train := synth(4000, 20, 0)
	test := synth(1000, 21, 0)
	m, err := Train(train, p)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, test); acc < 0.93 {
		t.Errorf("GOSS XOR accuracy = %.3f, want >= 0.93", acc)
	}
}

func TestGOSSDeterministic(t *testing.T) {
	p := DefaultParams()
	p.GOSSTopRate = 0.3
	p.GOSSOtherRate = 0.2
	p.Seed = 5
	d := synth(1500, 22, 0.05)
	a, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{7, 1, 0, 0.3}
	if a.RawPredict(row) != b.RawPredict(row) {
		t.Error("GOSS training nondeterministic for fixed seed")
	}
}

func TestGOSSParamValidation(t *testing.T) {
	for _, tc := range []struct {
		name     string
		top, oth float64
		bagFreq  int
		bagFrac  float64
	}{
		{"top=1", 1, 0.1, 0, 1},
		{"negative top", -0.1, 0.1, 0, 1},
		{"zero other", 0.3, 0, 0, 1},
		{"sum>1", 0.7, 0.4, 0, 1},
		{"with bagging", 0.3, 0.2, 1, 0.5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			p.GOSSTopRate = tc.top
			p.GOSSOtherRate = tc.oth
			p.BaggingFreq = tc.bagFreq
			p.BaggingFraction = tc.bagFrac
			if err := p.Validate(); err == nil {
				t.Error("invalid GOSS params accepted")
			}
		})
	}
	p := DefaultParams()
	p.GOSSTopRate = 0.2
	p.GOSSOtherRate = 0.1
	if err := p.Validate(); err != nil {
		t.Errorf("valid GOSS params rejected: %v", err)
	}
}
