package gbdt

import "testing"

// benchModel builds a synthetic model of complete binary trees, sized to
// look like a trained LFO classifier (depth-6 trees over a small feature
// vector) without depending on the trainer. The model is compiled, like
// every trained or loaded model.
func benchModel(trees, depth, dim int) *Model {
	m := &Model{Dim: dim, BaseScore: 0.1}
	for t := 0; t < trees; t++ {
		var tr Tree
		var build func(d int) int32
		build = func(d int) int32 {
			i := int32(len(tr.Nodes))
			if d == 0 {
				tr.Nodes = append(tr.Nodes, node{Feature: -1, Value: 0.01 * float64(t+1)})
				return i
			}
			tr.Nodes = append(tr.Nodes, node{
				Feature:   int32((d + t) % dim),
				Threshold: float64(d) / float64(depth+1),
			})
			l := build(d - 1)
			r := build(d - 1)
			tr.Nodes[i].Left, tr.Nodes[i].Right = l, r
			return i
		}
		build(depth)
		m.Trees = append(m.Trees, tr)
	}
	if err := m.Compile(); err != nil {
		panic(err)
	}
	return m
}

func benchRow(dim int) []float64 {
	row := make([]float64, dim)
	for i := range row {
		row[i] = float64(i) / float64(dim)
	}
	return row
}

// BenchmarkPredict is the per-row serving hot path (Model.Predict over
// the compiled flat kernel); it is pinned to 0 allocs/op by
// testdata/alloc_budgets.txt (scripts/check.sh) and enforced statically by
// the //lfo:hotpath annotation on Predict.
func BenchmarkPredict(b *testing.B) {
	m := benchModel(32, 6, 16)
	row := benchRow(m.Dim)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Predict(row)
	}
	if sink == -1 {
		b.Fatal("impossible") // keep the loop from being optimized away
	}
}

// BenchmarkFlatPredict measures the compiled kernel called directly,
// without the Model dispatch; pinned to 0 allocs/op.
func BenchmarkFlatPredict(b *testing.B) {
	m := benchModel(32, 6, 16)
	f := m.Flat()
	row := benchRow(m.Dim)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.Predict(row)
	}
	if sink == -1 {
		b.Fatal("impossible")
	}
}

// BenchmarkNodePredict measures the retired pointer-walk oracle on the
// same model, as the in-tree baseline the flat kernel is compared against.
func BenchmarkNodePredict(b *testing.B) {
	m := benchModel(32, 6, 16)
	row := benchRow(m.Dim)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += sigmoid(m.nodeRawPredict(row))
	}
	if sink == -1 {
		b.Fatal("impossible")
	}
}

func benchMatrix(m *Model, rows int) []float64 {
	flat := make([]float64, rows*m.Dim)
	for i := range flat {
		flat[i] = float64(i%m.Dim) / float64(m.Dim)
	}
	return flat
}

// BenchmarkPredictBatch scores a 512-row matrix per op through the
// historical entry point, single worker; 0 allocs/op now that the batch
// fan-out passes a static function instead of a per-call closure.
func BenchmarkPredictBatch(b *testing.B) {
	m := benchModel(32, 6, 16)
	const rows = 512
	flat := benchMatrix(m, rows)
	out := make([]float64, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(flat, out, 1)
	}
}

// BenchmarkPredictMatrix scores a 512-row matrix per op with the
// batch-major level-synchronous walk, single worker; pinned to 0
// allocs/op.
func BenchmarkPredictMatrix(b *testing.B) {
	m := benchModel(32, 6, 16)
	const rows = 512
	flat := benchMatrix(m, rows)
	out := make([]float64, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictMatrix(flat, out, 1)
	}
}
