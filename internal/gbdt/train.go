package gbdt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lfo/internal/par"
)

// rowShardSize is the fixed row-shard granularity for parallel gradient
// work. It depends only on the dataset, never on the worker count, so
// per-shard accumulators reduced in shard order give bit-identical sums
// for any Params.Workers value.
const rowShardSize = 8192

// parHistMinWork gates feature-parallel histogram/split work: leaves with
// less scanning work than this run inline, where goroutine fan-out costs
// more than it saves. The gate depends only on the data, so it cannot
// break cross-worker-count determinism.
const parHistMinWork = 1 << 13

// Train fits a boosted-tree classifier to the dataset.
func Train(d *Dataset, p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("gbdt: empty dataset")
	}

	t := &trainer{
		p:       p,
		d:       d,
		rng:     rand.New(rand.NewSource(p.Seed)),
		workers: par.Resolve(p.Workers),
	}
	t.b = buildBinner(d, p.MaxBins)
	t.bd = binDataset(d, t.b)

	n := d.Len()
	t.grad = make([]float64, n)
	t.hess = make([]float64, n)
	t.scores = make([]float64, n)

	// Base score: log-odds of the positive rate, clamped away from
	// degenerate infinities.
	pos := 0.0
	for i := 0; i < n; i++ {
		pos += d.Label(i)
	}
	rate := clamp(pos/float64(n), 1e-6, 1-1e-6)
	base := math.Log(rate / (1 - rate))
	for i := range t.scores {
		t.scores[i] = base
	}

	m := &Model{Dim: d.Dim(), BaseScore: base}
	rows := t.allRows()
	for iter := 0; iter < p.NumIterations; iter++ {
		t.computeGradients()
		switch {
		case p.GOSSTopRate > 0:
			// GOSS re-samples (and re-weights gradients) every tree;
			// gradients are recomputed fresh above, so the in-place
			// amplification cannot compound across iterations.
			rows = t.sampleGOSS()
		case p.BaggingFreq > 0 && p.BaggingFraction < 1:
			if iter%p.BaggingFreq == 0 {
				rows = t.sampleRows()
			}
		}
		feats := t.sampleFeatures()
		tree := t.buildTree(rows, feats)
		if tree == nil {
			// No split improved the objective on this sample; another
			// bagging/feature sample may still find one.
			continue
		}
		m.Trees = append(m.Trees, *tree)
		// Update raw scores with the new tree through the flat kernel —
		// the same batched walk serving uses. Per-row writes are disjoint
		// and the single tree adds exactly one leaf value per row, so the
		// scores are bit-identical to per-row tree.predict calls for any
		// worker count. Trainer output always compiles: thresholds come
		// from finite bin edges and leaf values from hessian-guarded
		// ratios.
		ft, err := compileFlat(d.Dim(), 0, m.Trees[len(m.Trees)-1:])
		if err != nil {
			return nil, fmt.Errorf("gbdt: compiling tree %d: %w", len(m.Trees)-1, err)
		}
		ft.AccumulateRaw(d.x, t.scores, t.workers)
	}
	if err := m.Compile(); err != nil {
		return nil, fmt.Errorf("gbdt: compiling model: %w", err)
	}
	return m, nil
}

type trainer struct {
	p       Params
	d       *Dataset
	b       *binner
	bd      *binned
	rng     *rand.Rand
	workers int

	grad, hess []float64
	scores     []float64

	// Scratch reused across boosting rounds to avoid per-iteration churn.
	rowScratch  []int32      // allRows / sampleRows output
	gossIdx     []int32      // GOSS gradient-order permutation
	gossRows    []int32      // GOSS sampled-row output
	partG       []float64    // per-shard gradient sums (rowSums)
	partH       []float64    // per-shard hessian sums (rowSums)
	bestScratch []splitInfo  // per-feature split candidates (findBestSplit)
	histFree    []*histogram // recycled histogram storage
	histLive    []*histogram // histograms handed out for the current tree
}

// computeGradients evaluates the logistic loss gradient/hessian at the
// current scores. Writes are per-row, so the fan-out is deterministic.
func (t *trainer) computeGradients() {
	par.Ranges(len(t.grad), t.workers, 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := sigmoid(t.scores[i])
			t.grad[i] = p - t.d.Label(i)
			t.hess[i] = p * (1 - p)
		}
	})
}

// rowSums totals gradient/hessian mass over rows as fixed-size shard
// partials reduced in shard order — bit-identical for any worker count.
func (t *trainer) rowSums(rows []int32) (sumG, sumH float64) {
	shards := par.NumShards(len(rows), rowShardSize)
	if cap(t.partG) < shards {
		t.partG = make([]float64, shards)
		t.partH = make([]float64, shards)
	}
	partG := t.partG[:shards]
	partH := t.partH[:shards]
	par.Shards(len(rows), rowShardSize, t.workers, func(s, lo, hi int) {
		var g, h float64
		for _, r := range rows[lo:hi] {
			g += t.grad[r]
			h += t.hess[r]
		}
		partG[s] = g
		partH[s] = h
	})
	for s := 0; s < shards; s++ {
		sumG += partG[s]
		sumH += partH[s]
	}
	return sumG, sumH
}

// allRows fills the reusable row-index scratch with every row.
func (t *trainer) allRows() []int32 {
	rows := t.rowBuf(t.d.Len())
	for i := range rows {
		rows[i] = int32(i)
	}
	return rows
}

// rowBuf returns the shared row scratch resized to n. Only one sampled
// row set is live at a time (the trainer re-samples in place), so reuse
// across boosting rounds is safe.
func (t *trainer) rowBuf(n int) []int32 {
	if cap(t.rowScratch) < n {
		t.rowScratch = make([]int32, n)
	}
	t.rowScratch = t.rowScratch[:n]
	return t.rowScratch
}

// sampleRows draws BaggingFraction of the rows without replacement.
func (t *trainer) sampleRows() []int32 {
	n := t.d.Len()
	k := int(float64(n) * t.p.BaggingFraction)
	if k < 1 {
		k = 1
	}
	perm := t.rng.Perm(n)
	rows := t.rowBuf(k)
	for i := 0; i < k; i++ {
		rows[i] = int32(perm[i])
	}
	return rows
}

// sampleGOSS implements gradient-based one-side sampling (Ke et al.,
// NeurIPS 2017): keep the top-a fraction of rows by |gradient|, sample a
// b fraction of the remainder uniformly, and amplify the sampled rows'
// gradient and hessian by (1-a)/b so histogram statistics stay unbiased.
func (t *trainer) sampleGOSS() []int32 {
	n := t.d.Len()
	if cap(t.gossIdx) < n {
		t.gossIdx = make([]int32, n)
	}
	idx := t.gossIdx[:n]
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ga, gb := math.Abs(t.grad[idx[a]]), math.Abs(t.grad[idx[b]])
		if ga != gb {
			return ga > gb
		}
		return idx[a] < idx[b] // deterministic tie-break
	})
	topN := int(t.p.GOSSTopRate * float64(n))
	if topN < 1 {
		topN = 1
	}
	if topN > n {
		topN = n
	}
	rows := append(t.gossRows[:0], idx[:topN]...)
	rest := idx[topN:]
	sampleN := int(t.p.GOSSOtherRate * float64(n))
	if sampleN > len(rest) {
		sampleN = len(rest)
	}
	if sampleN > 0 {
		amplify := (1 - t.p.GOSSTopRate) / t.p.GOSSOtherRate
		perm := t.rng.Perm(len(rest))
		for i := 0; i < sampleN; i++ {
			r := rest[perm[i]]
			t.grad[r] *= amplify
			t.hess[r] *= amplify
			rows = append(rows, r)
		}
	}
	t.gossRows = rows
	return rows
}

// sampleFeatures draws FeatureFraction of the features for one tree.
func (t *trainer) sampleFeatures() []int {
	dim := t.d.Dim()
	if t.p.FeatureFraction >= 1 {
		feats := make([]int, dim)
		for i := range feats {
			feats[i] = i
		}
		return feats
	}
	k := int(float64(dim) * t.p.FeatureFraction)
	if k < 1 {
		k = 1
	}
	perm := t.rng.Perm(dim)
	feats := perm[:k]
	// Sort for deterministic iteration order.
	for i := 1; i < len(feats); i++ {
		for j := i; j > 0 && feats[j] < feats[j-1]; j-- {
			feats[j], feats[j-1] = feats[j-1], feats[j]
		}
	}
	return feats
}

// histBin accumulates gradient statistics for one (feature, bin) cell.
type histBin struct {
	grad, hess float64
	count      int32
}

// histogram is the per-leaf gradient histogram over the selected features,
// stored flat with per-feature offsets. The offsets slice is shared by
// every histogram of one tree (read-only).
type histogram struct {
	bins    []histBin
	offsets []int // parallel to the selected feature list
}

// histOffsets computes the shared per-feature bin offsets for one tree's
// selected features.
func (t *trainer) histOffsets(feats []int) []int {
	offsets := make([]int, len(feats)+1)
	for i, f := range feats {
		offsets[i+1] = offsets[i] + t.b.numBins(f)
	}
	return offsets
}

// newHistogram hands out a zeroed histogram, recycling storage released by
// previous trees so steady-state training allocates no per-leaf buffers.
func (t *trainer) newHistogram(offsets []int) *histogram {
	need := offsets[len(offsets)-1]
	var h *histogram
	if n := len(t.histFree); n > 0 && cap(t.histFree[n-1].bins) >= need {
		h = t.histFree[n-1]
		t.histFree = t.histFree[:n-1]
		h.bins = h.bins[:need]
		clear(h.bins)
		h.offsets = offsets
	} else {
		h = &histogram{bins: make([]histBin, need), offsets: offsets}
	}
	t.histLive = append(t.histLive, h)
	return h
}

// recycleHistograms returns every histogram handed out for the finished
// tree to the free pool.
func (t *trainer) recycleHistograms() {
	t.histFree = append(t.histFree, t.histLive...)
	t.histLive = t.histLive[:0]
}

// buildHist fills the histogram from the rows in idx, feature-parallel:
// each worker owns a contiguous slice of the selected features and writes
// only that slice's bin range, and rows are scanned in idx order within
// every feature — exactly the sequential accumulation order, so the bins
// are bit-identical for any worker count.
func (t *trainer) buildHist(h *histogram, feats []int, idx []int32) {
	workers := t.workers
	if len(idx)*len(feats) < parHistMinWork {
		workers = 1
	}
	par.Ranges(len(feats), workers, 1, func(fiLo, fiHi int) {
		for fi := fiLo; fi < fiHi; fi++ {
			col := t.bd.cols[feats[fi]]
			base := h.offsets[fi]
			for _, r := range idx {
				b := &h.bins[base+int(col[r])]
				b.grad += t.grad[r]
				b.hess += t.hess[r]
				b.count++
			}
		}
	})
}

// subtract sets h = parent - sibling, reusing parent's storage.
func subtractHist(parent, sibling *histogram) *histogram {
	for i := range parent.bins {
		parent.bins[i].grad -= sibling.bins[i].grad
		parent.bins[i].hess -= sibling.bins[i].hess
		parent.bins[i].count -= sibling.bins[i].count
	}
	return parent
}

// splitInfo describes the best split found for a leaf.
type splitInfo struct {
	valid       bool
	gain        float64
	featPos     int // position in the selected feature list
	feature     int
	bin         int // non-missing bins <= bin go left
	missingLeft bool
}

// leafCand is an open leaf during leaf-wise growth.
type leafCand struct {
	rows    []int32
	sumGrad float64
	sumHess float64
	depth   int
	nodeIdx int32
	hist    *histogram
	best    splitInfo
}

// leafObjective is the regularized loss contribution of a leaf.
func (t *trainer) leafObjective(g, h float64) float64 {
	return g * g / (h + t.p.Lambda)
}

// leafValue is the shrunk optimal leaf weight.
func (t *trainer) leafValue(g, h float64) float64 {
	return -t.p.LearningRate * g / (h + t.p.Lambda)
}

// findBestSplit scans the histogram for the leaf's best split. Features
// are scanned in parallel into per-feature candidates, then reduced in
// feature order with a strictly-greater gain comparison — the same
// first-wins tie-break (lowest feature index, lowest bin) as a sequential
// scan, so the chosen split is identical for any worker count.
func (t *trainer) findBestSplit(c *leafCand, feats []int) splitInfo {
	totalC := int32(len(c.rows))
	parentObj := t.leafObjective(c.sumGrad, c.sumHess)

	if cap(t.bestScratch) < len(feats) {
		t.bestScratch = make([]splitInfo, len(feats))
	}
	bests := t.bestScratch[:len(feats)]
	workers := t.workers
	if len(c.hist.bins) < parHistMinWork {
		workers = 1
	}
	par.Ranges(len(feats), workers, 1, func(fiLo, fiHi int) {
		for fi := fiLo; fi < fiHi; fi++ {
			bests[fi] = t.bestSplitForFeature(c, parentObj, totalC, fi, feats[fi])
		}
	})

	best := splitInfo{}
	for fi := range bests {
		if bests[fi].valid && (!best.valid || bests[fi].gain > best.gain) {
			best = bests[fi]
		}
	}
	return best
}

// bestSplitForFeature scans one feature's histogram column for its best
// split, visiting candidate bins in the sequential order.
func (t *trainer) bestSplitForFeature(c *leafCand, parentObj float64, totalC int32, fi, f int) splitInfo {
	best := splitInfo{}
	totalG, totalH := c.sumGrad, c.sumHess
	minData := int32(t.p.MinDataInLeaf)
	base := c.hist.offsets[fi]
	nb := t.b.numBins(f)
	miss := c.hist.bins[base+missingBin]
	var accG, accH float64
	var accC int32
	// Split after bin b (bins 1..b left); last bin excluded (empty
	// right side).
	for b := 1; b < nb-1; b++ {
		cell := c.hist.bins[base+b]
		accG += cell.grad
		accH += cell.hess
		accC += cell.count
		// Case 1: missing goes right.
		t.evalSplit(&best, parentObj, fi, f, b, false,
			accG, accH, accC,
			totalG-accG, totalH-accH, totalC-accC, minData)
		// Case 2: missing goes left.
		if miss.count > 0 {
			t.evalSplit(&best, parentObj, fi, f, b, true,
				accG+miss.grad, accH+miss.hess, accC+miss.count,
				totalG-accG-miss.grad, totalH-accH-miss.hess, totalC-accC-miss.count, minData)
		}
	}
	return best
}

func (t *trainer) evalSplit(best *splitInfo, parentObj float64, fi, f, b int, missingLeft bool,
	lg, lh float64, lc int32, rg, rh float64, rc int32, minData int32) {
	if lc < minData || rc < minData {
		return
	}
	if lh < t.p.MinSumHessianInLeaf || rh < t.p.MinSumHessianInLeaf {
		return
	}
	gain := t.leafObjective(lg, lh) + t.leafObjective(rg, rh) - parentObj
	if gain <= t.p.MinGainToSplit {
		return
	}
	if !best.valid || gain > best.gain {
		*best = splitInfo{valid: true, gain: gain, featPos: fi, feature: f, bin: b, missingLeft: missingLeft}
	}
}

// buildTree grows one tree leaf-wise. Returns nil when no split improves
// the objective.
func (t *trainer) buildTree(rows []int32, feats []int) *Tree {
	defer t.recycleHistograms()

	sumG, sumH := t.rowSums(rows)
	tree := &Tree{}
	rootRows := append([]int32(nil), rows...)
	tree.Nodes = append(tree.Nodes, node{Feature: -1, Value: t.leafValue(sumG, sumH)})

	offsets := t.histOffsets(feats)
	root := &leafCand{rows: rootRows, sumGrad: sumG, sumHess: sumH, nodeIdx: 0}
	root.hist = t.newHistogram(offsets)
	t.buildHist(root.hist, feats, root.rows)
	root.best = t.findBestSplit(root, feats)

	open := []*leafCand{root}
	numLeaves := 1
	split := false
	for numLeaves < t.p.NumLeaves {
		// Pick the open leaf with the highest gain.
		bi := -1
		for i, c := range open {
			if c.best.valid && (bi < 0 || c.best.gain > open[bi].best.gain) {
				bi = i
			}
		}
		if bi < 0 {
			break
		}
		c := open[bi]
		open[bi] = open[len(open)-1]
		open = open[:len(open)-1]

		left, right := t.applySplit(tree, c, feats)
		split = true
		numLeaves++

		if t.p.MaxDepth > 0 && left.depth >= t.p.MaxDepth {
			left.best = splitInfo{}
			right.best = splitInfo{}
		} else {
			// Histogram subtraction: materialize the smaller child,
			// derive the sibling from the parent.
			if len(left.rows) <= len(right.rows) {
				left.hist = t.newHistogram(offsets)
				t.buildHist(left.hist, feats, left.rows)
				right.hist = subtractHist(c.hist, left.hist)
			} else {
				right.hist = t.newHistogram(offsets)
				t.buildHist(right.hist, feats, right.rows)
				left.hist = subtractHist(c.hist, right.hist)
			}
			left.best = t.findBestSplit(left, feats)
			right.best = t.findBestSplit(right, feats)
		}
		open = append(open, left, right)
	}
	if !split {
		return nil
	}
	return tree
}

// applySplit partitions the leaf's rows and rewrites its tree node as an
// internal split with two fresh leaves.
func (t *trainer) applySplit(tree *Tree, c *leafCand, feats []int) (left, right *leafCand) {
	s := c.best
	col := t.bd.cols[s.feature]
	leftRows := make([]int32, 0, len(c.rows))
	rightRows := make([]int32, 0, len(c.rows))
	var lg, lh float64
	for _, r := range c.rows {
		b := col[r]
		goLeft := false
		if b == missingBin {
			goLeft = s.missingLeft
		} else {
			goLeft = int(b) <= s.bin
		}
		if goLeft {
			leftRows = append(leftRows, r)
			lg += t.grad[r]
			lh += t.hess[r]
		} else {
			rightRows = append(rightRows, r)
		}
	}

	li := int32(len(tree.Nodes))
	tree.Nodes = append(tree.Nodes, node{Feature: -1, Value: t.leafValue(lg, lh)})
	ri := int32(len(tree.Nodes))
	tree.Nodes = append(tree.Nodes, node{
		Feature: -1,
		Value:   t.leafValue(c.sumGrad-lg, c.sumHess-lh),
	})

	n := &tree.Nodes[c.nodeIdx]
	n.Feature = int32(s.feature)
	n.Threshold = t.b.threshold(s.feature, s.bin)
	n.MissingLeft = s.missingLeft
	n.Left, n.Right = li, ri
	n.Value = 0

	left = &leafCand{rows: leftRows, sumGrad: lg, sumHess: lh, depth: c.depth + 1, nodeIdx: li}
	right = &leafCand{rows: rightRows, sumGrad: c.sumGrad - lg, sumHess: c.sumHess - lh, depth: c.depth + 1, nodeIdx: ri}
	return left, right
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
