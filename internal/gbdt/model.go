package gbdt

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"lfo/internal/par"
)

// Model is a trained boosted-tree binary classifier.
type Model struct {
	// Dim is the expected feature dimension.
	Dim int
	// BaseScore is the initial raw margin (log-odds of the training
	// positive rate).
	BaseScore float64
	// Trees are the boosted stages in training order.
	Trees []Tree

	// flat is the compiled inference kernel. It is unexported so gob
	// round-trips see only the tree structure; Load rebuilds it. A nil
	// flat (hand-assembled model without Compile) falls back to the
	// pointer walk.
	flat *Flat
}

// Compile builds the flattened inference kernel that every predict path
// uses, validating the model the same way Load does. Train and Load call
// it automatically; call it manually only on hand-assembled models. The
// tree structure must not be mutated after Compile.
func (m *Model) Compile() error {
	f, err := compileFlat(m.Dim, m.BaseScore, m.Trees)
	if err != nil {
		return err
	}
	m.flat = f
	return nil
}

// Flat returns the compiled kernel, or nil if the model was never
// Compiled.
func (m *Model) Flat() *Flat { return m.flat }

// RawPredict returns the unsquashed margin for one feature row.
//
//lfo:hotpath
func (m *Model) RawPredict(row []float64) float64 {
	if m.flat != nil {
		return m.flat.RawPredict(row)
	}
	mustRowDim(len(row), m.Dim)
	return m.nodeRawPredict(row)
}

// nodeRawPredict is the pointer-chasing walk over the Trees structs — the
// differential-test oracle for the flat kernel and the fallback for
// models that were never Compiled.
//
//lfo:hotpath
func (m *Model) nodeRawPredict(row []float64) float64 {
	s := m.BaseScore
	for i := range m.Trees {
		s += m.Trees[i].predict(row)
	}
	return s
}

// Predict returns the probability of the positive class for one row.
//
//lfo:hotpath
func (m *Model) Predict(row []float64) float64 {
	return sigmoid(m.RawPredict(row))
}

// PredictBatch fills out[i] with the positive-class probability of rows[i],
// using up to workers goroutines (0 = all available cores, 1 = inline).
// rows is a flat row-major matrix of n rows; out must have length n. It is
// PredictMatrix under its historical name.
//
//lfo:hotpath
func (m *Model) PredictBatch(rows []float64, out []float64, workers int) {
	m.PredictMatrix(rows, out, workers)
}

// PredictMatrix fills out[i] with the positive-class probability of row i
// of the flat row-major matrix rows, scoring blocks of rows through the
// compiled kernel (see Flat.PredictMatrix). Rows are scored independently
// and accumulation order per row is fixed, so the output is byte-identical
// for any worker count and identical to per-row Predict calls. Models
// never Compiled fall back to per-row pointer walks.
//
//lfo:hotpath
func (m *Model) PredictMatrix(rows []float64, out []float64, workers int) {
	if f := m.flat; f != nil {
		f.PredictMatrix(rows, out, workers)
		return
	}
	mustMatrixDims(len(rows), len(out), m.Dim)
	par.RangesArg(len(out), workers, matrixBlock, nodeMatrixArgs{m, rows, out}, nodeScoreRange)
}

// nodeMatrixArgs mirrors matrixArgs for the uncompiled fallback path.
type nodeMatrixArgs struct {
	m         *Model
	rows, out []float64
}

func nodeScoreRange(a nodeMatrixArgs, lo, hi int) {
	dim := a.m.Dim
	for i := lo; i < hi; i++ {
		a.out[i] = sigmoid(a.m.nodeRawPredict(a.rows[i*dim : (i+1)*dim]))
	}
}

// NumTrees returns the number of boosted stages.
func (m *Model) NumTrees() int { return len(m.Trees) }

// NumLeaves returns the total leaf count across all trees.
func (m *Model) NumLeaves() int {
	n := 0
	for i := range m.Trees {
		n += m.Trees[i].numLeaves()
	}
	return n
}

// FeatureImportance returns, per feature, the fraction of all split nodes
// that test the feature (Fig 8 of the paper: "occurrence in tree
// branches"). The fractions sum to 1 unless the model has no splits.
func (m *Model) FeatureImportance() []float64 {
	counts := make([]float64, m.Dim)
	total := 0.0
	for i := range m.Trees {
		m.Trees[i].visitSplits(func(f int) {
			counts[f]++
			total++
		})
	}
	if total > 0 {
		for f := range counts {
			counts[f] /= total
		}
	}
	return counts
}

// Save serializes the model with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(m)
}

// Load deserializes a model written by Save and compiles the flat
// inference kernel. Compilation doubles as validation, so a corrupted or
// hostile stream cannot yield a model whose predict walk panics, loops,
// or launders non-finite values into scores: every split feature must be
// within Dim, child indices must point past their parent (the shape the
// trainer emits — children are always appended after the node that
// split), and thresholds, leaf values, and the base score must be finite.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("gbdt: load model: %w", err)
	}
	if err := m.Compile(); err != nil {
		return nil, fmt.Errorf("gbdt: load model: %w", err)
	}
	return &m, nil
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}
