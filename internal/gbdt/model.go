package gbdt

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"lfo/internal/par"
)

// Model is a trained boosted-tree binary classifier.
type Model struct {
	// Dim is the expected feature dimension.
	Dim int
	// BaseScore is the initial raw margin (log-odds of the training
	// positive rate).
	BaseScore float64
	// Trees are the boosted stages in training order.
	Trees []Tree
}

// RawPredict returns the unsquashed margin for one feature row.
//
//lfo:hotpath
func (m *Model) RawPredict(row []float64) float64 {
	if len(row) != m.Dim {
		panic(fmt.Sprintf("gbdt: row dim %d != model dim %d", len(row), m.Dim))
	}
	s := m.BaseScore
	for i := range m.Trees {
		s += m.Trees[i].predict(row)
	}
	return s
}

// Predict returns the probability of the positive class for one row.
//
//lfo:hotpath
func (m *Model) Predict(row []float64) float64 {
	return sigmoid(m.RawPredict(row))
}

// PredictBatch fills out[i] with the positive-class probability of rows[i],
// using up to workers goroutines (0 = all available cores, 1 = inline).
// rows is a flat row-major matrix of n rows; out must have length n. Rows
// are scored independently, so the output is byte-identical for any
// worker count.
//
//lfo:hotpath
func (m *Model) PredictBatch(rows []float64, out []float64, workers int) {
	n := len(out)
	if len(rows) != n*m.Dim {
		panic(fmt.Sprintf("gbdt: rows length %d != %d rows × dim %d", len(rows), n, m.Dim))
	}
	//lfolint:ignore hotpath-alloc one closure per batch call, amortized over the whole row matrix
	par.Ranges(n, workers, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.Predict(rows[i*m.Dim : (i+1)*m.Dim])
		}
	})
}

// NumTrees returns the number of boosted stages.
func (m *Model) NumTrees() int { return len(m.Trees) }

// NumLeaves returns the total leaf count across all trees.
func (m *Model) NumLeaves() int {
	n := 0
	for i := range m.Trees {
		n += m.Trees[i].numLeaves()
	}
	return n
}

// FeatureImportance returns, per feature, the fraction of all split nodes
// that test the feature (Fig 8 of the paper: "occurrence in tree
// branches"). The fractions sum to 1 unless the model has no splits.
func (m *Model) FeatureImportance() []float64 {
	counts := make([]float64, m.Dim)
	total := 0.0
	for i := range m.Trees {
		m.Trees[i].visitSplits(func(f int) {
			counts[f]++
			total++
		})
	}
	if total > 0 {
		for f := range counts {
			counts[f] /= total
		}
	}
	return counts
}

// Save serializes the model with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(m)
}

// Load deserializes a model written by Save. The decoded structure is
// validated so a corrupted or hostile stream cannot yield a model whose
// predict walk panics or loops: every split feature must be within Dim,
// and child indices must point past their parent (the shape the trainer
// emits — children are always appended after the node that split), which
// makes every walk strictly increasing and therefore terminating.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("gbdt: load model: %w", err)
	}
	if m.Dim <= 0 {
		return nil, fmt.Errorf("gbdt: loaded model has invalid dim %d", m.Dim)
	}
	for ti := range m.Trees {
		t := &m.Trees[ti]
		if len(t.Nodes) == 0 {
			return nil, fmt.Errorf("gbdt: loaded model tree %d has no nodes", ti)
		}
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if n.Feature < 0 {
				continue // leaf
			}
			if int(n.Feature) >= m.Dim {
				return nil, fmt.Errorf("gbdt: loaded model tree %d node %d splits feature %d, dim %d", ti, i, n.Feature, m.Dim)
			}
			if n.Left <= int32(i) || int(n.Left) >= len(t.Nodes) ||
				n.Right <= int32(i) || int(n.Right) >= len(t.Nodes) {
				return nil, fmt.Errorf("gbdt: loaded model tree %d node %d has out-of-order children (%d, %d)", ti, i, n.Left, n.Right)
			}
		}
	}
	return &m, nil
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}
