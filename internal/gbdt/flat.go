package gbdt

import (
	"fmt"
	"math"

	"lfo/internal/par"
)

// This file is the flattened inference kernel. Compile packs every tree's
// nodes into contiguous SoA slices so a walk is pure index arithmetic over
// four flat arrays instead of pointer-chasing 40-byte node structs:
//
//	features[c]   split feature of internal node c
//	thresholds[c] split threshold (validated finite at compile time)
//	missSub[c]    NaN substitute: -Inf for missing-left, +Inf for
//	              missing-right, so the learned default direction costs one
//	              IsNaN test plus the same single compare as a real value
//	children[2c], children[2c+1]  left/right child words
//
// A child word w encodes both the edge and the leaf/internal distinction:
// w >= 0 is the packed index of an internal node, w < 0 is a leaf whose
// value lives at leaves[^w]. That removes the per-node "is this a leaf"
// struct load and shrinks the ensemble's working set ~2.5x (a trained
// 30-tree window model drops from ~73 KB of node structs to ~26 KB of
// packed arrays, L1/L2-resident), which is where the single-row speedup
// comes from: the pointer walk's per-visit cost is dominated by pulling
// scattered 40-byte structs through the cache hierarchy.
//
// Two walk shapes share the layout:
//
//   - RawPredict walks tree-by-tree with ordinary conditional branches.
//     For a single row the branch predictor + out-of-order speculation
//     already overlap consecutive tree walks, so the branchy loop beats
//     any hand-interleaved or branch-free (CMOV) variant, whose select
//     serializes the load-to-load dependence chain.
//
//   - scoreBlock/accumBlock walk a block of up to matrixBlock rows
//     level-synchronously per tree (LightGBM's batch-major trick): every
//     still-active row advances one level per pass, so the tree's packed
//     arrays stay hot across the whole block and the rows' independent
//     load chains overlap. Direction selects compile branch-free (SETcc),
//     which matters here: with many distinct rows in flight the
//     per-direction branches of a per-row walk are data-dependent noise
//     that mispredicts constantly, while the block walk replaces them
//     with straight-line dataflow. Rows that reach a leaf are dropped
//     from the active list branchlessly (compaction, not masking), so
//     finished rows cost nothing and total work equals true visit count.
//
// Accumulation order is base + tree 0 + tree 1 + ... in both shapes, so
// results are byte-identical to the pointer-walk oracle (Tree.predict)
// for any block or worker split.

// matrixBlock is the row-block size of the batch-major walk and the
// minimum per-goroutine chunk of the batched entry points. A block's rows
// and cursor state stay cache-resident while every tree walks the whole
// block.
const matrixBlock = 64

// Flat is a Model compiled into the packed layout above. It is immutable
// after Compile and safe for concurrent use.
type Flat struct {
	dim  int
	base float64

	features   []int32
	thresholds []float64
	missSub    []float64
	children   []int32 // 2 words per internal node: [2c]=left, [2c+1]=right
	leaves     []float64
	roots      []int32 // per tree, child-word encoded (a tree may be one leaf)
}

// compileFlat validates a model's shape and packs it. It is the single
// validation point for hostile models: Load and Compile both funnel here.
// Beyond the structural checks the pointer walker needs (features within
// dim, strictly forward children, so every walk terminates), the flat
// encoding needs finite thresholds — the ±Inf missSub trick compares the
// substitute against the threshold, which is only exact when thresholds
// are finite — and finite base/leaf values so a hostile stream cannot
// launder NaN into every score. A model with zero trees is valid (it
// predicts sigmoid(base)), matching the warm-start models core accepts.
func compileFlat(dim int, base float64, trees []Tree) (*Flat, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("gbdt: model has invalid dim %d", dim)
	}
	if !isFinite(base) {
		return nil, fmt.Errorf("gbdt: model base score %v is not finite", base)
	}
	internal, leaves := 0, 0
	for ti := range trees {
		t := &trees[ti]
		if len(t.Nodes) == 0 {
			return nil, fmt.Errorf("gbdt: model tree %d has no nodes", ti)
		}
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if n.Feature < 0 {
				if !isFinite(n.Value) {
					return nil, fmt.Errorf("gbdt: model tree %d leaf %d has non-finite value %v", ti, i, n.Value)
				}
				leaves++
				continue
			}
			if int(n.Feature) >= dim {
				return nil, fmt.Errorf("gbdt: model tree %d node %d splits feature %d, dim %d", ti, i, n.Feature, dim)
			}
			if !isFinite(n.Threshold) {
				return nil, fmt.Errorf("gbdt: model tree %d node %d has non-finite threshold %v", ti, i, n.Threshold)
			}
			if n.Left <= int32(i) || int(n.Left) >= len(t.Nodes) ||
				n.Right <= int32(i) || int(n.Right) >= len(t.Nodes) {
				return nil, fmt.Errorf("gbdt: model tree %d node %d has out-of-order children (%d, %d)", ti, i, n.Left, n.Right)
			}
			internal++
		}
	}
	f := &Flat{
		dim:        dim,
		base:       base,
		features:   make([]int32, 0, internal),
		thresholds: make([]float64, 0, internal),
		missSub:    make([]float64, 0, internal),
		children:   make([]int32, 0, 2*internal),
		leaves:     make([]float64, 0, leaves),
		roots:      make([]int32, 0, len(trees)),
	}
	for ti := range trees {
		t := &trees[ti]
		// First pass: assign each tree-local node its child word — packed
		// internal index or complemented leaf slot — in node order, which
		// keeps packed indices strictly forward exactly like the source
		// indices, so flat walks terminate for the same reason.
		words := make([]int32, len(t.Nodes))
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if n.Feature < 0 {
				words[i] = ^int32(len(f.leaves))
				f.leaves = append(f.leaves, n.Value)
				continue
			}
			words[i] = int32(len(f.features))
			f.features = append(f.features, n.Feature)
			f.thresholds = append(f.thresholds, n.Threshold)
			if n.MissingLeft {
				f.missSub = append(f.missSub, math.Inf(-1))
			} else {
				f.missSub = append(f.missSub, math.Inf(1))
			}
			f.children = append(f.children, 0, 0) // patched in the second pass
		}
		// Second pass: resolve child edges through the word map.
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if n.Feature < 0 {
				continue
			}
			f.children[2*words[i]] = words[n.Left]
			f.children[2*words[i]+1] = words[n.Right]
		}
		f.roots = append(f.roots, words[0])
	}
	// Encoding self-check: every root and child word must resolve inside
	// the packed arrays. The construction above guarantees this; checking
	// it here means any future change to the word encoding fails loudly at
	// compile time instead of as an out-of-bounds panic mid-walk.
	for _, w := range f.roots {
		if err := f.checkWord(w); err != nil {
			return nil, err
		}
	}
	for _, w := range f.children {
		if err := f.checkWord(w); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (f *Flat) checkWord(w int32) error {
	if w >= 0 {
		if int(w) >= len(f.features) {
			return fmt.Errorf("gbdt: flat compile produced out-of-range internal word %d (%d internal nodes)", w, len(f.features))
		}
		return nil
	}
	if int(^w) >= len(f.leaves) {
		return fmt.Errorf("gbdt: flat compile produced out-of-range leaf word %d (%d leaves)", w, len(f.leaves))
	}
	return nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// NumTrees returns the number of boosted stages in the compiled model.
func (f *Flat) NumTrees() int { return len(f.roots) }

// RawPredict returns the unsquashed margin for one feature row.
//
//lfo:hotpath
func (f *Flat) RawPredict(row []float64) float64 {
	mustRowDim(len(row), f.dim)
	feats, ths, miss, kids := f.features, f.thresholds, f.missSub, f.children
	s := f.base
	for _, root := range f.roots {
		c := int(root)
		for c >= 0 {
			v := row[feats[c]]
			if math.IsNaN(v) {
				v = miss[c]
			}
			if v <= ths[c] {
				c = int(kids[2*c])
			} else {
				c = int(kids[2*c+1])
			}
		}
		s += f.leaves[^c]
	}
	return s
}

// Predict returns the positive-class probability for one row.
//
//lfo:hotpath
func (f *Flat) Predict(row []float64) float64 {
	return sigmoid(f.RawPredict(row))
}

// walkBlock advances every row of a block through one tree until all
// cursors are leaf words: cur[i] starts at root and ends < 0. All active
// rows take one level step per pass; rows that reach a leaf are dropped
// from the act list with a branch-free compaction (the conditional
// increment compiles to flag arithmetic), so finished rows cost no padded
// passes and no mispredicted "is it done" branches. root must be an
// internal word (callers handle single-leaf trees).
//
//lfo:hotpath
func (f *Flat) walkBlock(block []float64, cur, act []int32, root int32) {
	feats, ths, miss, kids := f.features, f.thresholds, f.missSub, f.children
	dim := f.dim
	for i := range cur {
		cur[i] = root
		act[i] = int32(i)
	}
	n := len(cur)
	for n > 0 {
		w := 0
		for _, i := range act[:n] {
			c := int(cur[i])
			v := block[int(i)*dim+int(feats[c])]
			if math.IsNaN(v) {
				v = miss[c]
			}
			b := 0
			if v > ths[c] {
				b = 1
			}
			nw := kids[2*c+b]
			cur[i] = nw
			act[w] = i
			w += int((^uint32(nw)) >> 31)
		}
		n = w
	}
}

// scoreBlock fills out[lo:hi] with positive-class probabilities for rows
// [lo, hi), hi-lo <= matrixBlock. Cursor and active-list arrays live on
// the stack, so the whole batched path allocates nothing.
//
//lfo:hotpath
func (f *Flat) scoreBlock(rows, out []float64, lo, hi int) {
	var cur, act [matrixBlock]int32
	block := rows[lo*f.dim : hi*f.dim]
	o := out[lo:hi]
	c := cur[:hi-lo]
	a := act[:hi-lo]
	for i := range o {
		o[i] = f.base
	}
	for _, root := range f.roots {
		leaves := f.leaves
		if root < 0 {
			lv := leaves[^root]
			for i := range o {
				o[i] += lv
			}
			continue
		}
		f.walkBlock(block, c, a, root)
		for i := range o {
			o[i] += leaves[^c[i]]
		}
	}
	for i := range o {
		o[i] = sigmoid(o[i])
	}
}

// accumBlock adds each row's summed raw tree contributions (no base
// score, no sigmoid) to inout[lo:hi] — the trainer's score update.
//
//lfo:hotpath
func (f *Flat) accumBlock(rows, inout []float64, lo, hi int) {
	var cur, act [matrixBlock]int32
	block := rows[lo*f.dim : hi*f.dim]
	o := inout[lo:hi]
	c := cur[:hi-lo]
	a := act[:hi-lo]
	for _, root := range f.roots {
		leaves := f.leaves
		if root < 0 {
			lv := leaves[^root]
			for i := range o {
				o[i] += lv
			}
			continue
		}
		f.walkBlock(block, c, a, root)
		for i := range o {
			o[i] += leaves[^c[i]]
		}
	}
}

// matrixArgs carries one batched call's bindings through par.RangesArg, so
// the hot entry points hand par a static package function instead of
// allocating a capturing closure per call.
type matrixArgs struct {
	f         *Flat
	rows, out []float64
}

func flatScoreRange(a matrixArgs, lo, hi int) {
	for b := lo; b < hi; b += matrixBlock {
		e := b + matrixBlock
		if e > hi {
			e = hi
		}
		a.f.scoreBlock(a.rows, a.out, b, e)
	}
}

func flatAccumRange(a matrixArgs, lo, hi int) {
	for b := lo; b < hi; b += matrixBlock {
		e := b + matrixBlock
		if e > hi {
			e = hi
		}
		a.f.accumBlock(a.rows, a.out, b, e)
	}
}

// PredictMatrix fills out[i] with the positive-class probability of row i
// of the flat row-major matrix rows, scoring matrixBlock-row blocks
// level-synchronously per tree across up to workers goroutines (0 = all
// cores, 1 = inline). Rows are scored independently and each row's
// accumulation order matches RawPredict, so the output is byte-identical
// to per-row scoring for any worker count.
//
//lfo:hotpath
func (f *Flat) PredictMatrix(rows, out []float64, workers int) {
	mustMatrixDims(len(rows), len(out), f.dim)
	par.RangesArg(len(out), workers, matrixBlock, matrixArgs{f, rows, out}, flatScoreRange)
}

// AccumulateRaw adds each row's summed raw tree contributions (no base
// score, no sigmoid) to inout[i]. The trainer uses it to fold each new
// tree into the boosting scores through the same batched walk that serves
// predictions.
//
//lfo:hotpath
func (f *Flat) AccumulateRaw(rows, inout []float64, workers int) {
	mustMatrixDims(len(rows), len(inout), f.dim)
	par.RangesArg(len(inout), workers, matrixBlock, matrixArgs{f, rows, inout}, flatAccumRange)
}

// mustRowDim validates a row's width outside the annotated kernels; the
// fmt interpolation below runs only on the failing (panic) path, keeping
// allocation out of the measured hot loop.
func mustRowDim(n, dim int) {
	if n != dim {
		panic(fmt.Sprintf("gbdt: row dim %d != model dim %d", n, dim))
	}
}

// mustMatrixDims validates a batched call's matrix shape outside the
// annotated kernels, for the same reason as mustRowDim.
func mustMatrixDims(rowsLen, n, dim int) {
	if rowsLen != n*dim {
		panic(fmt.Sprintf("gbdt: rows length %d != %d rows × dim %d", rowsLen, n, dim))
	}
}
