package gbdt

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

// modelBytes gob-serializes a model so determinism checks compare the
// exact float bit patterns, not rounded renderings.
func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainDeterministicAcrossWorkers proves the parallel trainer is
// byte-identical to the sequential one for every worker count: the shard
// decomposition and reduction order are fixed, so the same sums, splits,
// and leaf values come out no matter how many goroutines computed them.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*Params)
	}{
		{"default", func(p *Params) {}},
		{"bagging", func(p *Params) { p.BaggingFraction = 0.7; p.BaggingFreq = 2 }},
		{"goss", func(p *Params) { p.GOSSTopRate = 0.3; p.GOSSOtherRate = 0.2 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			base := DefaultParams()
			base.Seed = 41
			v.mut(&base)

			seq := base
			seq.Workers = 1
			ref, err := Train(synth(4000, 13, 0.05), seq)
			if err != nil {
				t.Fatal(err)
			}
			want := modelBytes(t, ref)

			for _, workers := range []int{2, 8} {
				p := base
				p.Workers = workers
				m, err := Train(synth(4000, 13, 0.05), p)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, modelBytes(t, m)) {
					t.Errorf("workers=%d: serialized model differs from workers=1", workers)
				}
			}
		})
	}
}

// TestPredictBatchMatchesPredict pins batched scoring to per-row scoring
// for several worker counts.
func TestPredictBatchMatchesPredict(t *testing.T) {
	d := synth(500, 17, 0.05)
	m, err := Train(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, d.Len())
	for i := range want {
		want[i] = m.Predict(d.Row(i))
	}
	for _, workers := range []int{0, 1, 3, 8} {
		got := make([]float64, d.Len())
		m.PredictBatch(d.x, got, workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d: PredictBatch %v != Predict %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestPredictBatchDuringModelSwap stress-tests the deployment pattern the
// core pipeline uses: readers score batches through an atomic model
// pointer while a writer swaps in freshly trained models. Run under
// -race (scripts/check.sh does) this proves scoring never shares mutable
// state with training.
func TestPredictBatchDuringModelSwap(t *testing.T) {
	d := synth(2000, 19, 0.05)
	p := DefaultParams()
	p.NumIterations = 5

	var current atomic.Pointer[Model]
	first, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	current.Store(first)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for swap := int64(0); swap < 4; swap++ {
			q := p
			q.Seed = swap
			q.BaggingFraction = 0.8
			q.BaggingFreq = 1
			m, err := Train(d, q)
			if err != nil {
				t.Error(err)
				break
			}
			current.Store(m)
		}
		close(stop)
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, d.Len())
			for {
				select {
				case <-stop:
					return
				default:
				}
				current.Load().PredictBatch(d.x, out, 2)
			}
		}()
	}
	wg.Wait()
}
