package gbdt

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// fuzzSeedModel trains a tiny deterministic model for the seed corpus.
func fuzzSeedModel() *Model {
	rng := rand.New(rand.NewSource(11))
	ds := NewDataset(4)
	row := make([]float64, 4)
	for i := 0; i < 400; i++ {
		for j := range row {
			row[j] = rng.Float64() * 10
		}
		label := 0.0
		if row[0]+row[2] > 10 {
			label = 1
		}
		ds.Append(row, label)
	}
	p := DefaultParams()
	p.NumIterations = 3
	m, err := Train(ds, p)
	if err != nil {
		panic(err)
	}
	return m
}

// FuzzModelLoad feeds arbitrary bytes through the gob model parser.
// Whatever Load accepts must be safe to evaluate (no panic, no endless
// walk) and must survive a serialize/parse round trip bit-exactly.
func FuzzModelLoad(f *testing.F) {
	var buf bytes.Buffer
	if err := fuzzSeedModel().Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// Corrupted variants of the valid stream: truncations and byte flips
	// at a few offsets.
	f.Add(valid[:len(valid)/2])
	for _, off := range []int{8, len(valid) / 3, len(valid) - 9} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x41
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	// Structurally valid gob streams carrying non-finite numerics: these
	// decode cleanly and must be rejected by flat-kernel compilation.
	hostile := hostileSeeds(f)
	names := make([]string, 0, len(hostile))
	for name := range hostile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f.Add(hostile[name])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m.Dim <= 0 {
			t.Fatalf("Load accepted dim %d", m.Dim)
		}
		// Hostile streams can claim absurd dims with no trees to back
		// them; evaluating those would just be the harness allocating a
		// giant row, not a model defect.
		if m.Dim > 1<<12 {
			return
		}
		row := make([]float64, m.Dim)
		for i := range row {
			row[i] = float64(i%7) - 3
		}
		p := m.Predict(row) // must terminate, whatever the tree shape

		// Round trip: anything Load accepts, Save must reproduce.
		var out bytes.Buffer
		if err := m.Save(&out); err != nil {
			t.Fatalf("Save of a loaded model failed: %v", err)
		}
		m2, err := Load(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if m2.Dim != m.Dim || len(m2.Trees) != len(m.Trees) {
			t.Fatalf("round trip changed shape: dim %d→%d, trees %d→%d", m.Dim, m2.Dim, len(m.Trees), len(m2.Trees))
		}
		p2 := m2.Predict(row)
		if p != p2 && !(math.IsNaN(p) && math.IsNaN(p2)) {
			t.Fatalf("round trip changed prediction: %v → %v", p, p2)
		}
	})
}

// hostileSeeds serializes models that gob decodes without error but that
// flat compilation must reject: non-finite thresholds, leaf values, and
// base scores. The ±Inf missing-direction encoding of the flat kernel is
// only exact because these can never reach it (see compileFlat).
func hostileSeeds(tb testing.TB) map[string][]byte {
	leaf := func(v float64) []node { return []node{{Feature: -1, Value: v}} }
	split := func(th float64) []node {
		return []node{{Feature: 0, Threshold: th, Left: 1, Right: 2}, {Feature: -1}, {Feature: -1}}
	}
	models := map[string]*Model{
		"seed-nan-threshold": {Dim: 4, Trees: []Tree{{Nodes: split(math.NaN())}}},
		"seed-inf-threshold": {Dim: 4, Trees: []Tree{{Nodes: split(math.Inf(1))}}},
		"seed-nan-leaf":      {Dim: 4, Trees: []Tree{{Nodes: leaf(math.NaN())}}},
		"seed-neginf-leaf":   {Dim: 4, Trees: []Tree{{Nodes: leaf(math.Inf(-1))}}},
		"seed-nan-base":      {Dim: 4, BaseScore: math.NaN(), Trees: []Tree{{Nodes: leaf(0.5)}}},
	}
	out := make(map[string][]byte, len(models))
	for name, m := range models {
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			tb.Fatal(err)
		}
		out[name] = buf.Bytes()
	}
	return out
}

// TestRegenerateFuzzCorpus rewrites the committed seed corpus under
// testdata/fuzz when LFO_REGEN_CORPUS=1 is set; otherwise it is a no-op.
// The committed files mirror the in-code f.Add seeds so `go test` (and
// the check.sh fuzz smoke) always replays them from a fresh checkout.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("LFO_REGEN_CORPUS") == "" {
		t.Skip("set LFO_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	var buf bytes.Buffer
	if err := fuzzSeedModel().Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x41
	seeds := map[string][]byte{
		"seed-valid-model":  valid,
		"seed-truncated":    valid[:len(valid)/2],
		"seed-bitflip":      flipped,
		"seed-not-gob":      []byte("not a gob stream"),
		"seed-empty-stream": {},
	}
	for name, data := range hostileSeeds(t) {
		seeds[name] = data
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzModelLoad")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadRejectsHostileModels pins the validation Load performs beyond
// gob decoding: structures that would make predict panic or never return
// must be rejected.
func TestLoadRejectsHostileModels(t *testing.T) {
	cases := []struct {
		name string
		m    Model
	}{
		{"empty tree", Model{Dim: 4, Trees: []Tree{{}}}},
		{"feature out of range", Model{Dim: 4, Trees: []Tree{{Nodes: []node{
			{Feature: 9, Left: 1, Right: 2}, {Feature: -1}, {Feature: -1},
		}}}}},
		{"child out of range", Model{Dim: 4, Trees: []Tree{{Nodes: []node{
			{Feature: 0, Left: 1, Right: 7}, {Feature: -1},
		}}}}},
		{"self cycle", Model{Dim: 4, Trees: []Tree{{Nodes: []node{
			{Feature: 0, Left: 0, Right: 0},
		}}}}},
		{"backward cycle", Model{Dim: 4, Trees: []Tree{{Nodes: []node{
			{Feature: 0, Left: 1, Right: 2}, {Feature: -1}, {Feature: 1, Left: 0, Right: 1},
		}}}}},
		{"NaN threshold", Model{Dim: 4, Trees: []Tree{{Nodes: []node{
			{Feature: 0, Threshold: math.NaN(), Left: 1, Right: 2}, {Feature: -1}, {Feature: -1},
		}}}}},
		{"+Inf threshold", Model{Dim: 4, Trees: []Tree{{Nodes: []node{
			{Feature: 0, Threshold: math.Inf(1), Left: 1, Right: 2}, {Feature: -1}, {Feature: -1},
		}}}}},
		{"NaN leaf value", Model{Dim: 4, Trees: []Tree{{Nodes: []node{
			{Feature: -1, Value: math.NaN()},
		}}}}},
		{"-Inf leaf value", Model{Dim: 4, Trees: []Tree{{Nodes: []node{
			{Feature: -1, Value: math.Inf(-1)},
		}}}}},
		{"NaN base score", Model{Dim: 4, BaseScore: math.NaN(), Trees: []Tree{{Nodes: []node{
			{Feature: -1, Value: 0.5},
		}}}}},
		{"invalid dim", Model{Dim: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			if _, err := Load(&buf); err == nil {
				t.Error("hostile model accepted")
			}
		})
	}
}

// TestLoadAcceptsTrainedModels: validation must not reject anything the
// trainer actually produces.
func TestLoadAcceptsTrainedModels(t *testing.T) {
	m := fuzzSeedModel()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatalf("trained model rejected: %v", err)
	}
	row := []float64{1, 2, 3, 4}
	if got, want := m2.Predict(row), m.Predict(row); got != want {
		t.Errorf("round trip changed prediction: %v != %v", got, want)
	}
}
