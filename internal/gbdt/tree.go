package gbdt

import "math"

// node is one tree node. Leaves have Feature == -1.
type node struct {
	Feature     int32   // split feature, -1 for leaf
	Threshold   float64 // go left iff value <= Threshold (non-missing)
	MissingLeft bool    // learned default direction for NaN values
	Left, Right int32   // child indices
	Value       float64 // leaf value (already shrunk by learning rate)
}

// Tree is a single regression tree over raw feature values.
type Tree struct {
	Nodes []node
}

// predict returns the tree's raw contribution for a feature row.
func (t *Tree) predict(row []float64) float64 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		v := row[n.Feature]
		if math.IsNaN(v) {
			if n.MissingLeft {
				i = n.Left
			} else {
				i = n.Right
			}
		} else if v <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// numLeaves counts leaf nodes.
func (t *Tree) numLeaves() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].Feature < 0 {
			n++
		}
	}
	return n
}

// visitSplits calls fn for every internal node's split feature.
func (t *Tree) visitSplits(fn func(feature int)) {
	for i := range t.Nodes {
		if t.Nodes[i].Feature >= 0 {
			fn(int(t.Nodes[i].Feature))
		}
	}
}
