package features

import (
	"fmt"

	"lfo/internal/par"
	"lfo/internal/trace"
)

// matrixMinChunk is the smallest request chunk worth a tracker snapshot:
// below this, cloning per-object state costs more than the extraction it
// parallelizes.
const matrixMinChunk = 2048

// Clone returns a deep copy of the tracker: mutating the clone (or the
// original) never affects the other. Used to snapshot chunk-boundary
// state for the parallel matrix builder and to fork per-connection state.
func (t *Tracker) Clone() *Tracker {
	c := &Tracker{
		objects:    make(map[trace.ObjectID]*objectState, len(t.objects)),
		maxObjects: t.maxObjects,
		evictHeap:  append(ageHeap(nil), t.evictHeap...),
	}
	for id, st := range t.objects {
		dup := *st
		c.objects[id] = &dup
	}
	return c
}

// BuildMatrix returns the flat row-major feature matrix (len(reqs) rows,
// Dim wide) that a sequential Features-then-Update replay of reqs would
// produce, with free[i] supplying the free-bytes feature of request i.
// The tracker ends in the sequential replay's final state.
//
// With workers > 1 the requests are split into chunks: a sequential
// Update-only pass snapshots the tracker at each chunk boundary, then the
// chunks extract their rows in parallel, each replaying from its boundary
// snapshot. Features is a pure function of tracker state, so the matrix
// is byte-identical for every worker count.
func (t *Tracker) BuildMatrix(reqs []trace.Request, free []int64, workers int) []float64 {
	if len(free) != len(reqs) {
		panic(fmt.Sprintf("features: free length %d != %d requests", len(free), len(reqs)))
	}
	out := make([]float64, len(reqs)*Dim)
	workers = par.Resolve(workers)
	if workers <= 1 || len(reqs) < 2*matrixMinChunk {
		for i, r := range reqs {
			t.Features(r, free[i], out[i*Dim:(i+1)*Dim])
			t.Update(r)
		}
		return out
	}

	chunks := workers
	if maxChunks := len(reqs) / matrixMinChunk; chunks > maxChunks {
		chunks = maxChunks
	}
	size := (len(reqs) + chunks - 1) / chunks

	// Pass 1 (sequential): snapshot the boundary state of every chunk,
	// advancing the live tracker with Update only.
	snaps := make([]*Tracker, 0, chunks)
	for lo := 0; lo < len(reqs); lo += size {
		snaps = append(snaps, t.Clone())
		hi := lo + size
		if hi > len(reqs) {
			hi = len(reqs)
		}
		for _, r := range reqs[lo:hi] {
			t.Update(r)
		}
	}

	// Pass 2 (parallel): each chunk replays from its snapshot and fills
	// its disjoint row range.
	par.Shards(len(reqs), size, workers, func(s, lo, hi int) {
		tr := snaps[s]
		for i := lo; i < hi; i++ {
			r := reqs[i]
			tr.Features(r, free[i], out[i*Dim:(i+1)*Dim])
			tr.Update(r)
		}
	})
	return out
}
