package features

import (
	"math"
	"testing"

	"lfo/internal/trace"
)

func req(t int64, id trace.ObjectID, size int64, cost float64) trace.Request {
	return trace.Request{Time: t, ID: id, Size: size, Cost: cost}
}

func TestFirstRequestAllGapsMissing(t *testing.T) {
	tr := NewTracker(0)
	dst := make([]float64, Dim)
	tr.Features(req(10, 1, 100, 5), 999, dst)
	if dst[FeatSize] != 100 || dst[FeatCost] != 5 || dst[FeatFree] != 999 {
		t.Errorf("size/cost/free = %g/%g/%g, want 100/5/999", dst[FeatSize], dst[FeatCost], dst[FeatFree])
	}
	for i := 0; i < NumGaps; i++ {
		if !math.IsNaN(dst[FeatGap0+i]) {
			t.Errorf("gap%d = %g, want Missing", i+1, dst[FeatGap0+i])
		}
	}
}

func TestGapSequence(t *testing.T) {
	tr := NewTracker(0)
	// Requests to object 1 at times 0, 10, 25, 45: gaps 10, 15, 20.
	for _, tm := range []int64{0, 10, 25} {
		tr.Update(req(tm, 1, 50, 50))
	}
	dst := make([]float64, Dim)
	tr.Features(req(45, 1, 50, 50), 0, dst)
	// gap1 = 45-25 = 20 (time since previous request);
	// gap2 = 25-10 = 15; gap3 = 10-0 = 10.
	if dst[FeatGap0] != 20 {
		t.Errorf("gap1 = %g, want 20", dst[FeatGap0])
	}
	if dst[FeatGap0+1] != 15 {
		t.Errorf("gap2 = %g, want 15", dst[FeatGap0+1])
	}
	if dst[FeatGap0+2] != 10 {
		t.Errorf("gap3 = %g, want 10", dst[FeatGap0+2])
	}
	if !math.IsNaN(dst[FeatGap0+3]) {
		t.Errorf("gap4 = %g, want Missing", dst[FeatGap0+3])
	}
}

// TestGapShiftInvariance: shifting all request times by a constant leaves
// gaps 2..N unchanged and only changes gap1 if the probe time shifts too.
func TestGapShiftInvariance(t *testing.T) {
	build := func(shift int64) []float64 {
		tr := NewTracker(0)
		for _, tm := range []int64{0, 7, 19, 40} {
			tr.Update(req(tm+shift, 9, 10, 10))
		}
		dst := make([]float64, Dim)
		tr.Features(req(55+shift, 9, 10, 10), 0, dst)
		return dst
	}
	a, b := build(0), build(100000)
	for i := 0; i < NumGaps; i++ {
		av, bv := a[FeatGap0+i], b[FeatGap0+i]
		if math.IsNaN(av) != math.IsNaN(bv) {
			t.Fatalf("gap%d missing-ness differs", i+1)
		}
		if !math.IsNaN(av) && av != bv {
			t.Errorf("gap%d = %g vs %g after shift", i+1, av, bv)
		}
	}
}

func TestGapRingOverflow(t *testing.T) {
	tr := NewTracker(0)
	// 60 requests with gap 2 each: ring holds NumGaps-1 = 49 historical gaps.
	for i := 0; i < 60; i++ {
		tr.Update(req(int64(i*2), 3, 10, 10))
	}
	dst := make([]float64, Dim)
	tr.Features(req(120, 3, 10, 10), 0, dst)
	for i := 0; i < NumGaps; i++ {
		if dst[FeatGap0+i] != 2 {
			t.Errorf("gap%d = %g, want 2", i+1, dst[FeatGap0+i])
		}
	}
}

func TestCostComesFromLastRetrieval(t *testing.T) {
	tr := NewTracker(0)
	tr.Update(req(0, 1, 10, 7))
	dst := make([]float64, Dim)
	// Current request claims cost 99, but the most recent retrieval cost
	// was 7 (§2.2: "most recent retrieval cost").
	tr.Features(req(5, 1, 10, 99), 0, dst)
	if dst[FeatCost] != 7 {
		t.Errorf("cost = %g, want 7", dst[FeatCost])
	}
}

func TestMaxObjectsEvictsOldest(t *testing.T) {
	tr := NewTracker(2)
	tr.Update(req(0, 1, 10, 10))
	tr.Update(req(1, 2, 10, 10))
	tr.Update(req(2, 3, 10, 10)) // evicts object 1
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	dst := make([]float64, Dim)
	tr.Features(req(3, 1, 10, 10), 0, dst)
	if !math.IsNaN(dst[FeatGap0]) {
		t.Error("evicted object 1 still has history")
	}
	tr.Features(req(3, 2, 10, 10), 0, dst)
	if math.IsNaN(dst[FeatGap0]) {
		t.Error("object 2 history lost")
	}
}

func TestMaxObjectsEvictionUsesRecency(t *testing.T) {
	tr := NewTracker(2)
	tr.Update(req(0, 1, 10, 10))
	tr.Update(req(1, 2, 10, 10))
	tr.Update(req(2, 1, 10, 10)) // object 1 now newer than 2
	tr.Update(req(3, 3, 10, 10)) // should evict 2, not 1
	dst := make([]float64, Dim)
	tr.Features(req(4, 1, 10, 10), 0, dst)
	if math.IsNaN(dst[FeatGap0]) {
		t.Error("recently used object 1 was evicted")
	}
	tr.Features(req(4, 2, 10, 10), 0, dst)
	if !math.IsNaN(dst[FeatGap0]) {
		t.Error("stale object 2 survived eviction")
	}
}

func TestSaturate32(t *testing.T) {
	tests := []struct {
		in   int64
		want uint32
	}{{-5, 0}, {0, 0}, {42, 42}, {math.MaxUint32, math.MaxUint32}, {math.MaxUint32 + 10, math.MaxUint32}}
	for _, tc := range tests {
		if got := saturate32(tc.in); got != tc.want {
			t.Errorf("saturate32(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFeaturesPanicsOnShortDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on short dst")
		}
	}()
	NewTracker(0).Features(req(0, 1, 1, 1), 0, make([]float64, Dim-1))
}

func TestNames(t *testing.T) {
	n := Names()
	if len(n) != Dim {
		t.Fatalf("len(Names) = %d, want %d", len(n), Dim)
	}
	if n[FeatSize] != "size" || n[FeatCost] != "cost" || n[FeatFree] != "free" {
		t.Errorf("base names = %q,%q,%q", n[FeatSize], n[FeatCost], n[FeatFree])
	}
	if n[FeatGap0] != "gap1" || n[FeatGap0+NumGaps-1] != "gap50" {
		t.Errorf("gap names = %q..%q, want gap1..gap50", n[FeatGap0], n[FeatGap0+NumGaps-1])
	}
}
