// Package features tracks the online features LFO feeds its learner
// (§2.2 of the paper):
//
//   - object size
//   - most recent retrieval cost
//   - currently free (available) bytes in the cache
//   - the time gaps between the last NumGaps consecutive requests to the
//     object
//
// Gaps are inter-arrival times, not absolute recency: except for the most
// recent gap they are shift invariant, which the paper argues is important
// for robustness (contrast with LRU-K's absolute reference times).
//
// Per-object state is a fixed ring of 32-bit gaps plus the last request
// time — mirroring the paper's 208-byte-per-object accounting — held in a
// sparse map bounded by MaxObjects with oldest-last-use eviction.
package features

import (
	"container/heap"
	"math"

	"lfo/internal/trace"
)

// NumGaps is the request-history depth per object (the paper uses the last
// 50 requests).
const NumGaps = 50

// Feature vector layout.
const (
	// FeatSize is the object size in bytes.
	FeatSize = 0
	// FeatCost is the most recent retrieval cost.
	FeatCost = 1
	// FeatFree is the cache's free bytes at request time.
	FeatFree = 2
	// FeatGap0 is the first gap feature (time since the previous request
	// to this object); gap i lives at FeatGap0 + i.
	FeatGap0 = 3
	// Dim is the feature vector dimension.
	Dim = FeatGap0 + NumGaps
)

// Missing marks absent feature values (e.g. gap 7 of an object seen twice).
// It is NaN; the learner routes missing values down a learned default
// branch, like LightGBM.
var Missing = math.NaN()

// objectState is the per-object history. Gap ring entries are saturating
// uint32s, keeping per-object state near the paper's 208-byte budget.
type objectState struct {
	lastTime int64
	cost     float64
	gaps     [NumGaps - 1]uint32 // historical inter-arrival gaps, newest first
	n        uint8               // number of valid entries in gaps
}

// Tracker maintains per-object request history.
type Tracker struct {
	objects map[trace.ObjectID]*objectState
	// maxObjects bounds the sparse feature store; 0 means unbounded.
	maxObjects int
	// evictHeap orders tracked objects by lastTime for state eviction,
	// with lazy invalidation.
	evictHeap ageHeap
}

// NewTracker returns a tracker bounded to maxObjects tracked objects
// (0 = unbounded).
func NewTracker(maxObjects int) *Tracker {
	return &Tracker{
		objects:    make(map[trace.ObjectID]*objectState, 1024),
		maxObjects: maxObjects,
	}
}

// Len returns the number of objects with tracked state.
func (t *Tracker) Len() int { return len(t.objects) }

// Features fills dst (length Dim) with the feature vector for a request
// arriving at time now, given the cache's current free bytes. It does not
// modify tracker state; call Update afterwards.
func (t *Tracker) Features(r trace.Request, freeBytes int64, dst []float64) {
	if len(dst) < Dim {
		panic("features: dst smaller than Dim")
	}
	dst[FeatSize] = float64(r.Size)
	dst[FeatCost] = r.Cost
	dst[FeatFree] = float64(freeBytes)
	st := t.objects[r.ID]
	if st == nil {
		for i := 0; i < NumGaps; i++ {
			dst[FeatGap0+i] = Missing
		}
		return
	}
	// Gap 1: time since the object's previous request (the only
	// non-shift-invariant gap).
	dst[FeatGap0] = float64(r.Time - st.lastTime)
	for i := 0; i < NumGaps-1; i++ {
		if i < int(st.n) {
			dst[FeatGap0+1+i] = float64(st.gaps[i])
		} else {
			dst[FeatGap0+1+i] = Missing
		}
	}
	if st.cost != 0 {
		dst[FeatCost] = st.cost
	}
}

// FeaturesByID fills dst with the feature vector an object would have if
// probed at time now — used to re-score resident objects after a model
// swap, where no request for the object is in flight. The cost feature
// comes from the object's tracked retrieval cost (0 if untracked).
func (t *Tracker) FeaturesByID(id trace.ObjectID, size, now, freeBytes int64, dst []float64) {
	r := trace.Request{Time: now, ID: id, Size: size}
	if st := t.objects[id]; st != nil {
		r.Cost = st.cost
	}
	t.Features(r, freeBytes, dst)
}

// Update records the request into the object's history.
func (t *Tracker) Update(r trace.Request) {
	st := t.objects[r.ID]
	if st == nil {
		if t.maxObjects > 0 && len(t.objects) >= t.maxObjects {
			t.evictOldest()
		}
		st = &objectState{lastTime: r.Time, cost: r.Cost}
		t.objects[r.ID] = st
		heap.Push(&t.evictHeap, ageEntry{id: r.ID, lastTime: r.Time})
		return
	}
	gap := r.Time - st.lastTime
	// Shift the gap ring: newest first.
	copy(st.gaps[1:], st.gaps[:len(st.gaps)-1])
	st.gaps[0] = saturate32(gap)
	if st.n < NumGaps-1 {
		st.n++
	}
	st.lastTime = r.Time
	st.cost = r.Cost
	heap.Push(&t.evictHeap, ageEntry{id: r.ID, lastTime: r.Time})
}

// evictOldest drops the least-recently-requested object's state.
func (t *Tracker) evictOldest() {
	for t.evictHeap.Len() > 0 {
		e := heap.Pop(&t.evictHeap).(ageEntry)
		st, ok := t.objects[e.id]
		if !ok || st.lastTime != e.lastTime {
			continue // stale heap entry
		}
		delete(t.objects, e.id)
		return
	}
}

func saturate32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}

// ageEntry orders objects by last request time.
type ageEntry struct {
	id       trace.ObjectID
	lastTime int64
}

type ageHeap []ageEntry

func (h ageHeap) Len() int            { return len(h) }
func (h ageHeap) Less(i, j int) bool  { return h[i].lastTime < h[j].lastTime }
func (h ageHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ageHeap) Push(x interface{}) { *h = append(*h, x.(ageEntry)) }
func (h *ageHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Names returns human-readable feature names indexed by feature position,
// used by the Fig 8 importance report.
func Names() []string {
	names := make([]string, Dim)
	names[FeatSize] = "size"
	names[FeatCost] = "cost"
	names[FeatFree] = "free"
	for i := 0; i < NumGaps; i++ {
		names[FeatGap0+i] = gapName(i + 1)
	}
	return names
}

func gapName(i int) string {
	return "gap" + itoa(i)
}

// itoa avoids strconv for this tiny use.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
