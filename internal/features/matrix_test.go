package features

import (
	"math"
	"math/rand"
	"testing"

	"lfo/internal/trace"
)

// synthReqs builds a request stream with heavy re-reference so gap
// features are exercised.
func synthReqs(n int, seed int64) ([]trace.Request, []int64) {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]trace.Request, n)
	free := make([]int64, n)
	now := int64(0)
	for i := range reqs {
		now += int64(rng.Intn(50))
		reqs[i] = trace.Request{
			Time: now,
			ID:   trace.ObjectID(rng.Intn(n / 20)),
			Size: int64(64 + rng.Intn(4096)),
			Cost: float64(1 + rng.Intn(3)),
		}
		free[i] = int64(rng.Intn(1 << 20))
	}
	return reqs, free
}

// sequentialMatrix is the reference implementation: Features then Update
// per request.
func sequentialMatrix(t *Tracker, reqs []trace.Request, free []int64) []float64 {
	out := make([]float64, len(reqs)*Dim)
	for i, r := range reqs {
		t.Features(r, free[i], out[i*Dim:(i+1)*Dim])
		t.Update(r)
	}
	return out
}

// matEqual compares matrices treating NaN (the Missing sentinel) as equal
// to NaN.
func matEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.IsNaN(a[i]) && math.IsNaN(b[i]) {
			continue
		}
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBuildMatrixMatchesSequential proves the sharded builder is
// bit-identical to the sequential replay for several worker counts, and
// leaves the tracker in the same final state.
func TestBuildMatrixMatchesSequential(t *testing.T) {
	reqs, free := synthReqs(12000, 11)
	ref := NewTracker(0)
	want := sequentialMatrix(ref, reqs, free)

	probe := trace.Request{Time: 1 << 40, ID: 3, Size: 100}
	wantProbe := make([]float64, Dim)
	ref.Features(probe, 500, wantProbe)

	for _, workers := range []int{1, 2, 4, 8} {
		tr := NewTracker(0)
		got := tr.BuildMatrix(reqs, free, workers)
		if !matEqual(got, want) {
			t.Errorf("workers=%d: matrix differs from sequential replay", workers)
		}
		gotProbe := make([]float64, Dim)
		tr.Features(probe, 500, gotProbe)
		if !matEqual(gotProbe, wantProbe) {
			t.Errorf("workers=%d: final tracker state differs from sequential replay", workers)
		}
	}
}

// TestBuildMatrixBoundedTracker exercises the eviction path: boundary
// snapshots must replay the same evictions the sequential pass performs.
func TestBuildMatrixBoundedTracker(t *testing.T) {
	reqs, free := synthReqs(10000, 23)
	ref := NewTracker(64)
	want := sequentialMatrix(ref, reqs, free)

	tr := NewTracker(64)
	got := tr.BuildMatrix(reqs, free, 4)
	if !matEqual(got, want) {
		t.Error("workers=4 with bounded tracker: matrix differs from sequential replay")
	}
	if tr.Len() != ref.Len() {
		t.Errorf("tracked objects: got %d, want %d", tr.Len(), ref.Len())
	}
}

// TestCloneIsolation verifies mutations of a clone never leak into the
// original and vice versa.
func TestCloneIsolation(t *testing.T) {
	orig := NewTracker(0)
	orig.Update(trace.Request{Time: 10, ID: 1, Size: 50, Cost: 2})
	orig.Update(trace.Request{Time: 30, ID: 1, Size: 50, Cost: 2})

	clone := orig.Clone()
	clone.Update(trace.Request{Time: 70, ID: 1, Size: 50, Cost: 9})
	clone.Update(trace.Request{Time: 75, ID: 2, Size: 10, Cost: 1})

	if orig.Len() != 1 || clone.Len() != 2 {
		t.Fatalf("Len: orig %d (want 1), clone %d (want 2)", orig.Len(), clone.Len())
	}
	buf := make([]float64, Dim)
	orig.Features(trace.Request{Time: 100, ID: 1, Size: 50}, 0, buf)
	if got := buf[FeatGap0]; got != 70 {
		t.Errorf("orig gap0 = %g, want 70 (clone's update leaked)", got)
	}
	if got := buf[FeatCost]; got != 2 {
		t.Errorf("orig cost = %g, want 2 (clone's update leaked)", got)
	}
}

// TestBuildMatrixLengthMismatchPanics pins the API contract.
func TestBuildMatrixLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on free/reqs length mismatch")
		}
	}()
	NewTracker(0).BuildMatrix(make([]trace.Request, 3), make([]int64, 2), 1)
}
