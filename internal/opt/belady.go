package opt

import (
	"container/heap"

	"lfo/internal/trace"
)

// Belady simulates Belady's MIN algorithm: on each miss with a full cache,
// evict the resident object whose next request is furthest in the future.
// Belady is provably optimal for the object hit ratio when all objects
// have equal sizes; the opt package uses it to anchor correctness tests of
// the flow and greedy solvers (footnote 6 of the paper: in settings with
// unit sizes, computing OPT is simple).
//
// capacity is expressed in bytes, like Config.CacheSize; with unit-size
// objects it equals the object count.
func Belady(tr *trace.Trace, capacity int64) *Result {
	n := tr.Len()
	next := tr.NextRequestIndex()
	res := &Result{
		Admit: make([]bool, n),
		Hit:   make([]bool, n),
	}

	resident := make(map[trace.ObjectID]int, 1024) // id -> heap position is not tracked; use lazy deletion
	// Max-heap on nextUse with lazy invalidation: stale entries are
	// skipped when popped.
	h := &beladyHeap{}
	current := make(map[trace.ObjectID]int) // id -> current nextUse (validity check)
	var used int64

	evictToFit := func(need int64) bool {
		for used+need > capacity {
			for h.Len() > 0 {
				top := (*h)[0]
				if cur, ok := current[top.id]; !ok || cur != top.nextUse {
					heap.Pop(h) // stale
					continue
				}
				break
			}
			if h.Len() == 0 {
				return false
			}
			victim := heap.Pop(h).(beladyEntry)
			delete(current, victim.id)
			delete(resident, victim.id)
			used -= victim.size
		}
		return true
	}

	for i, r := range tr.Requests {
		res.TotalBytes += r.Size
		if _, ok := resident[r.ID]; ok {
			res.Hit[i] = true
			res.Hits++
			res.HitBytes += r.Size
		} else {
			res.MissCost += r.Cost
		}
		if next[i] < 0 {
			// No future use: evict immediately (never beneficial to keep).
			if _, ok := resident[r.ID]; ok {
				used -= r.Size
				delete(resident, r.ID)
				delete(current, r.ID)
			}
			continue
		}
		if _, ok := resident[r.ID]; ok {
			// Refresh next-use priority (lazy: push new entry).
			current[r.ID] = next[i]
			heap.Push(h, beladyEntry{id: r.ID, nextUse: next[i], size: r.Size})
		} else {
			if r.Size > capacity {
				continue
			}
			resident[r.ID] = i
			current[r.ID] = next[i]
			heap.Push(h, beladyEntry{id: r.ID, nextUse: next[i], size: r.Size})
			used += r.Size
		}
		// Evict furthest-future objects until the cache fits again. The
		// just-inserted object is itself a candidate: evicting it
		// immediately is equivalent to bypassing the cache, which MIN
		// needs to remain optimal when its next use is furthest.
		evictToFit(0)
		if _, stillIn := resident[r.ID]; stillIn {
			res.Admit[i] = true
		}
	}

	// Admit semantics: true only if the object actually survives until
	// its next request. Belady may admit and later evict before reuse;
	// reconcile by replaying hits: Admit[i] holds iff Hit[next[i]].
	for i := range res.Admit {
		if res.Admit[i] {
			res.Admit[i] = next[i] >= 0 && res.Hit[next[i]]
		}
	}
	res.Solved = 0
	res.Intervals = 0
	for i := range tr.Requests {
		if next[i] >= 0 {
			res.Intervals++
		}
	}
	return res
}

// beladyEntry is a heap record: an object and the next request index at
// which it will be used.
type beladyEntry struct {
	id      trace.ObjectID
	nextUse int
	size    int64
}

type beladyHeap []beladyEntry

func (h beladyHeap) Len() int            { return len(h) }
func (h beladyHeap) Less(i, j int) bool  { return h[i].nextUse > h[j].nextUse }
func (h beladyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *beladyHeap) Push(x interface{}) { *h = append(*h, x.(beladyEntry)) }
func (h *beladyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
