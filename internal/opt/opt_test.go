package opt

import (
	"math/rand"
	"testing"

	"lfo/internal/gen"
	"lfo/internal/trace"
)

// paperTrace is the running example from Figure 3 of the paper:
// objects a=1(size 3), b=2(1), c=3(1), d=4(2), request order
// a b c b d a c d a b b a.
func paperTrace(obj trace.Objective) *trace.Trace {
	ids := []trace.ObjectID{1, 2, 3, 2, 4, 1, 3, 4, 1, 2, 2, 1}
	sizes := map[trace.ObjectID]int64{1: 3, 2: 1, 3: 1, 4: 2}
	t := &trace.Trace{}
	for i, id := range ids {
		t.Requests = append(t.Requests, trace.Request{Time: int64(i), ID: id, Size: sizes[id]})
	}
	return t.WithCosts(obj)
}

// TestFlowPaperExampleBHR checks the exact OPT value for the Figure 3
// trace with cache size 4 under the BHR objective, worked out by hand:
// OPT caches all three a-intervals and all three b-intervals for 12 hit
// bytes out of 22 requested bytes.
func TestFlowPaperExampleBHR(t *testing.T) {
	tr := paperTrace(trace.ObjectiveBHR)
	res, err := Compute(tr, Config{CacheSize: 4, Algorithm: AlgoFlow})
	if err != nil {
		t.Fatal(err)
	}
	if res.HitBytes != 12 {
		t.Errorf("HitBytes = %d, want 12", res.HitBytes)
	}
	if res.TotalBytes != 22 {
		t.Errorf("TotalBytes = %d, want 22", res.TotalBytes)
	}
	if got := res.BHR(); got != 12.0/22.0 {
		t.Errorf("BHR = %g, want %g", got, 12.0/22.0)
	}
	// Hits must fall exactly on the later a and b requests.
	wantHits := map[int]bool{3: true, 5: true, 8: true, 9: true, 10: true, 11: true}
	for i, h := range res.Hit {
		if h != wantHits[i] {
			t.Errorf("Hit[%d] = %v, want %v", i, h, wantHits[i])
		}
	}
	if res.Intervals != 8 {
		t.Errorf("Intervals = %d, want 8", res.Intervals)
	}
}

// TestFlowPaperExampleOHR checks the OHR objective on the same trace:
// the optimum caches b1,b2,b3,c1,d1 and the last a-interval for 6 of 12
// hits.
func TestFlowPaperExampleOHR(t *testing.T) {
	tr := paperTrace(trace.ObjectiveOHR)
	res, err := Compute(tr, Config{CacheSize: 4, Algorithm: AlgoFlow})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 6 {
		t.Errorf("Hits = %d, want 6", res.Hits)
	}
	if got := res.OHR(); got != 0.5 {
		t.Errorf("OHR = %g, want 0.5", got)
	}
}

func TestComputeRejectsBadCacheSize(t *testing.T) {
	if _, err := Compute(paperTrace(trace.ObjectiveBHR), Config{CacheSize: 0}); err == nil {
		t.Error("CacheSize=0 accepted")
	}
}

func TestComputeEmptyTrace(t *testing.T) {
	res, err := Compute(&trace.Trace{}, Config{CacheSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 0 || len(res.Admit) != 0 {
		t.Error("empty trace produced hits")
	}
}

// TestGreedyFeasibleAndDominatedByFlow: the greedy schedule must be
// feasible and can never beat the flow-based optimum.
func TestGreedyFeasibleAndDominatedByFlow(t *testing.T) {
	tr := paperTrace(trace.ObjectiveBHR)
	flow, err := Compute(tr, Config{CacheSize: 4, Algorithm: AlgoFlow})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Compute(tr, Config{CacheSize: 4, Algorithm: AlgoGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.HitBytes > flow.HitBytes {
		t.Errorf("greedy HitBytes %d > flow %d", greedy.HitBytes, flow.HitBytes)
	}
	if greedy.HitBytes <= 0 {
		t.Error("greedy cached nothing")
	}
	checkFeasible(t, tr, greedy.Admit, 4)
}

// checkFeasible replays an admission schedule and asserts cache occupancy
// never exceeds capacity at any time step.
func checkFeasible(t *testing.T, tr *trace.Trace, admit []bool, capacity int64) {
	t.Helper()
	next := tr.NextRequestIndex()
	occ := newSegTree(tr.Len())
	for i, a := range admit {
		if !a {
			continue
		}
		if next[i] < 0 {
			t.Errorf("Admit[%d] set but object has no next request", i)
			continue
		}
		occ.Add(i, next[i], tr.Requests[i].Size)
	}
	if got := occ.Max(0, tr.Len()); got > capacity {
		t.Errorf("schedule occupancy %d exceeds capacity %d", got, capacity)
	}
}

// TestFlowScheduleFeasible: admitted intervals from the flow solution fit
// within the cache at every time step (see the cut argument in flow.go).
func TestFlowScheduleFeasible(t *testing.T) {
	cfg := gen.CDNMix(3000, 17)
	tr, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	const capacity = 64 << 20
	res, err := Compute(tr, Config{CacheSize: capacity, Algorithm: AlgoFlow})
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, tr, res.Admit, capacity)
	if res.Hits == 0 {
		t.Error("flow OPT produced no hits on CDN mix")
	}
}

// TestFlowMatchesBeladyUnitSizes: with unit object sizes the flow LP is
// integral and its hit count equals Belady's, which is provably optimal.
func TestFlowMatchesBeladyUnitSizes(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		tr, err := gen.Generate(gen.UnitMix(2000, seed, 128, 0.9))
		if err != nil {
			t.Fatal(err)
		}
		tr = tr.WithCosts(trace.ObjectiveOHR)
		const capacity = 16 // 16 unit-size objects
		flow, err := Compute(tr, Config{CacheSize: capacity, Algorithm: AlgoFlow})
		if err != nil {
			t.Fatal(err)
		}
		bel := Belady(tr, capacity)
		if flow.Hits != bel.Hits {
			t.Errorf("seed %d: flow hits %d != belady hits %d", seed, flow.Hits, bel.Hits)
		}
	}
}

// TestGreedyNeverBeatsBelady on unit-size traces.
func TestGreedyNeverBeatsBelady(t *testing.T) {
	tr, err := gen.Generate(gen.UnitMix(3000, 7, 200, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveOHR)
	const capacity = 20
	greedy, err := Compute(tr, Config{CacheSize: capacity, Algorithm: AlgoGreedy})
	if err != nil {
		t.Fatal(err)
	}
	bel := Belady(tr, capacity)
	if greedy.Hits > bel.Hits {
		t.Errorf("greedy hits %d > belady %d", greedy.Hits, bel.Hits)
	}
}

// TestBeladySmall verifies Belady on a hand-checked sequence.
func TestBeladySmall(t *testing.T) {
	// Capacity 2 objects, unit sizes, trace 1 2 3 1 2 3.
	// Bypass-capable MIN: miss 1, miss 2; at request 3 the next uses are
	// 1->idx3, 2->idx4, 3->idx5, so 3 itself is furthest and is bypassed.
	// Requests 1 (idx 3) and 2 (idx 4) then hit; the final 3 misses.
	// Two hits is optimal (no schedule achieves three).
	ids := []trace.ObjectID{1, 2, 3, 1, 2, 3}
	tr := &trace.Trace{}
	for i, id := range ids {
		tr.Requests = append(tr.Requests, trace.Request{Time: int64(i), ID: id, Size: 1, Cost: 1})
	}
	res := Belady(tr, 2)
	if res.Hits != 2 {
		t.Errorf("Belady hits = %d, want 2", res.Hits)
	}
	if !res.Hit[3] || !res.Hit[4] {
		t.Errorf("Hit = %v, want hits at 3 and 4", res.Hit)
	}
}

// TestBeladyAdmitConsistent: Admit[i] implies Hit[next[i]].
func TestBeladyAdmitConsistent(t *testing.T) {
	tr, err := gen.Generate(gen.UnitMix(2000, 11, 100, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveOHR)
	res := Belady(tr, 10)
	next := tr.NextRequestIndex()
	for i, a := range res.Admit {
		if a && (next[i] < 0 || !res.Hit[next[i]]) {
			t.Fatalf("Admit[%d] set but next request not a hit", i)
		}
	}
}

// TestBeladyObjectLargerThanCache never admits oversized objects.
func TestBeladyObjectLargerThanCache(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Time: 0, ID: 1, Size: 100, Cost: 100},
		{Time: 1, ID: 1, Size: 100, Cost: 100},
	}}
	res := Belady(tr, 10)
	if res.Hits != 0 {
		t.Errorf("oversized object hit %d times", res.Hits)
	}
}

// TestRankFractionReducesWork: a smaller rank fraction must shrink the
// solved interval count while keeping decisions a subset of intervals.
func TestRankFractionReducesWork(t *testing.T) {
	tr, err := gen.Generate(gen.CDNMix(4000, 5))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	full, err := Compute(tr, Config{CacheSize: 32 << 20, Algorithm: AlgoFlow})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Compute(tr, Config{CacheSize: 32 << 20, Algorithm: AlgoFlow, RankFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if half.Solved >= full.Solved {
		t.Errorf("RankFraction=0.3 solved %d >= full %d", half.Solved, full.Solved)
	}
	if half.Intervals != full.Intervals {
		t.Errorf("interval counts differ: %d vs %d", half.Intervals, full.Intervals)
	}
	// The approximation should retain most of the achievable hit bytes
	// (the rank prioritizes high-value intervals).
	if float64(half.HitBytes) < 0.5*float64(full.HitBytes) {
		t.Errorf("ranked approximation lost too much: %d vs %d hit bytes", half.HitBytes, full.HitBytes)
	}
}

// TestAutoSelectsFlowForSmall ensures AlgoAuto picks flow under the limit
// and greedy above it.
func TestAutoSelectsFlowForSmall(t *testing.T) {
	tr := paperTrace(trace.ObjectiveBHR)
	auto, err := Compute(tr, Config{CacheSize: 4, Algorithm: AlgoAuto})
	if err != nil {
		t.Fatal(err)
	}
	flow, err := Compute(tr, Config{CacheSize: 4, Algorithm: AlgoFlow})
	if err != nil {
		t.Fatal(err)
	}
	if auto.HitBytes != flow.HitBytes {
		t.Errorf("auto HitBytes %d != flow %d", auto.HitBytes, flow.HitBytes)
	}
	// Force greedy via a tiny AutoFlowLimit.
	g, err := Compute(tr, Config{CacheSize: 4, Algorithm: AlgoAuto, AutoFlowLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Compute(tr, Config{CacheSize: 4, Algorithm: AlgoGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if g.HitBytes != greedy.HitBytes {
		t.Errorf("auto(limit=1) HitBytes %d != greedy %d", g.HitBytes, greedy.HitBytes)
	}
}

// TestLargerCacheNeverHurts: OPT hit bytes are monotone in cache size.
func TestLargerCacheNeverHurts(t *testing.T) {
	tr, err := gen.Generate(gen.WebMix(3000, 23))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	var prevHits int64 = -1
	for _, size := range []int64{1 << 18, 1 << 20, 4 << 20, 16 << 20} {
		res, err := Compute(tr, Config{CacheSize: size, Algorithm: AlgoFlow})
		if err != nil {
			t.Fatal(err)
		}
		if res.HitBytes < prevHits {
			t.Errorf("cache %d: HitBytes %d < smaller cache %d", size, res.HitBytes, prevHits)
		}
		prevHits = res.HitBytes
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, tc := range []struct {
		a    Algorithm
		want string
	}{{AlgoAuto, "auto"}, {AlgoFlow, "flow"}, {AlgoGreedy, "greedy"}} {
		if got := tc.a.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestSegTree(t *testing.T) {
	st := newSegTree(10)
	st.Add(0, 5, 3)
	st.Add(3, 8, 2)
	if got := st.Max(0, 10); got != 5 {
		t.Errorf("Max(0,10) = %d, want 5", got)
	}
	if got := st.Max(0, 3); got != 3 {
		t.Errorf("Max(0,3) = %d, want 3", got)
	}
	if got := st.Max(5, 8); got != 2 {
		t.Errorf("Max(5,8) = %d, want 2", got)
	}
	if got := st.Max(8, 10); got != 0 {
		t.Errorf("Max(8,10) = %d, want 0", got)
	}
	st.Add(4, 5, -3)
	if got := st.Max(4, 5); got != 2 {
		t.Errorf("after negative add, Max(4,5) = %d, want 2", got)
	}
}

// TestSegTreeMatchesBruteForce random cross-check against a plain array.
func TestSegTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 64
	st := newSegTree(n)
	ref := make([]int64, n)
	for op := 0; op < 2000; op++ {
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo) + 1
		if rng.Intn(2) == 0 {
			v := int64(rng.Intn(21) - 10)
			st.Add(lo, hi, v)
			for i := lo; i < hi; i++ {
				ref[i] += v
			}
		} else {
			want := int64(-1 << 63)
			for i := lo; i < hi; i++ {
				if ref[i] > want {
					want = ref[i]
				}
			}
			if got := st.Max(lo, hi); got != want {
				t.Fatalf("op %d: Max(%d,%d) = %d, want %d", op, lo, hi, got, want)
			}
		}
	}
}

func TestSegTreeEmptyRange(t *testing.T) {
	st := newSegTree(5)
	if got := st.Max(3, 3); got != -1<<63 {
		t.Errorf("Max(empty) = %d, want MinInt64", got)
	}
	st.Add(4, 2, 10) // no-op
	if got := st.Max(0, 5); got != 0 {
		t.Errorf("Max after no-op add = %d, want 0", got)
	}
}

// TestCostScaleInsensitive: for BHR costs the per-byte cost is uniform,
// so the solution value must not depend on the fixed-point scale.
func TestCostScaleInsensitive(t *testing.T) {
	tr := paperTrace(trace.ObjectiveBHR)
	var prev int64 = -1
	for _, scale := range []int64{64, 1024, 1 << 20} {
		res, err := Compute(tr, Config{CacheSize: 4, Algorithm: AlgoFlow, CostScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.HitBytes != prev {
			t.Errorf("scale %d: HitBytes %d != %d", scale, res.HitBytes, prev)
		}
		prev = res.HitBytes
	}
}

// TestGreedyOHRObjective: greedy under OHR costs favors many small
// intervals over few large ones.
func TestGreedyOHRObjective(t *testing.T) {
	tr, err := gen.Generate(gen.CDNMix(4000, 3))
	if err != nil {
		t.Fatal(err)
	}
	bhr, err := Compute(tr.WithCosts(trace.ObjectiveBHR), Config{CacheSize: 16 << 20, Algorithm: AlgoGreedy})
	if err != nil {
		t.Fatal(err)
	}
	ohr, err := Compute(tr.WithCosts(trace.ObjectiveOHR), Config{CacheSize: 16 << 20, Algorithm: AlgoGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if ohr.OHR() < bhr.OHR() {
		t.Errorf("OHR-objective OHR %.4f < BHR-objective OHR %.4f", ohr.OHR(), bhr.OHR())
	}
	if bhr.BHR() < ohr.BHR() {
		t.Errorf("BHR-objective BHR %.4f < OHR-objective BHR %.4f", bhr.BHR(), ohr.BHR())
	}
}
