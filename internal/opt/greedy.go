package opt

import (
	"sort"

	"lfo/internal/trace"
)

// solveGreedy computes a feasible OPT approximation in the spirit of
// PFOO: intervals are considered in decreasing C/(S·L) rank order and
// admitted when the object fits in the cache over the interval's entire
// time span. Occupancy over time is tracked with a lazy segment tree, so
// each admission check is O(log n).
//
// Unlike the flow relaxation, the greedy schedule is feasible — it
// corresponds to an actual cache content assignment — so its hit ratio
// lower-bounds OPT while remaining within a few percent on CDN-like
// workloads.
func solveGreedy(tr *trace.Trace, selected []interval, cfg Config, res *Result) {
	ivs := append([]interval(nil), selected...)
	sort.Slice(ivs, func(a, b int) bool {
		if ivs[a].rank != ivs[b].rank {
			return ivs[a].rank > ivs[b].rank
		}
		return ivs[a].from < ivs[b].from // deterministic tie-break
	})
	occ := newSegTree(tr.Len())
	for _, iv := range ivs {
		// The object occupies cache space during [from, to): it must be
		// resident the instant request `from` completes and until
		// request `to` arrives.
		if occ.Max(iv.from, iv.to)+iv.size <= cfg.CacheSize {
			occ.Add(iv.from, iv.to, iv.size)
			res.Admit[iv.from] = true
		}
	}
}
