package opt

// greedySegment computes a feasible OPT approximation in the spirit of
// PFOO over one segment: intervals are considered in decreasing C/(S·L)
// rank order and admitted when the object fits in the cache over the
// interval's entire time span. Occupancy over time is tracked with a lazy
// segment tree (pre-seeded with stitched boundary reservations), so each
// admission check is O(log n).
//
// Unlike the flow relaxation, the greedy schedule is feasible — it
// corresponds to an actual cache content assignment — so its hit ratio
// lower-bounds OPT while remaining within a few percent on CDN-like
// workloads.
func greedySegment(sg *segment, cfg Config, res *Result, sc *solveScratch) {
	ivs := append(sc.rest[:0], sg.ivs...)
	sortByRank(ivs)
	for _, iv := range ivs {
		// The object occupies cache space during [from, to): it must be
		// resident the instant request `from` completes and until
		// request `to` arrives.
		if sc.occ.Max(iv.from-sg.lo, iv.to-sg.lo)+iv.size <= cfg.CacheSize {
			sc.occ.Add(iv.from-sg.lo, iv.to-sg.lo, iv.size)
			res.Admit[iv.from] = true
		}
	}
	sc.rest = ivs[:0]
}
