package opt

// segTree is a lazy-propagation segment tree over n slots supporting
// range-add and range-max. The feasible greedy OPT approximation uses it
// to track cache occupancy over time: admitting an interval adds the
// object's size to every time step the interval spans, and feasibility is
// a range-max query against the cache capacity.
type segTree struct {
	n    int
	max  []int64
	lazy []int64
}

// newSegTree returns a tree over slots [0, n).
func newSegTree(n int) *segTree {
	if n <= 0 {
		n = 1
	}
	return &segTree{n: n, max: make([]int64, 4*n), lazy: make([]int64, 4*n)}
}

// reset clears the tree and resizes it to n slots, reusing the node
// arrays when they are large enough. Per-segment occupancy trees are
// reset once per segment instead of reallocated.
func (s *segTree) reset(n int) {
	if n <= 0 {
		n = 1
	}
	if cap(s.max) < 4*n {
		s.max = make([]int64, 4*n)
		s.lazy = make([]int64, 4*n)
		s.n = n
		return
	}
	s.max = s.max[:4*n]
	s.lazy = s.lazy[:4*n]
	for i := range s.max {
		s.max[i] = 0
		s.lazy[i] = 0
	}
	s.n = n
}

// Add adds v to every slot in [lo, hi).
func (s *segTree) Add(lo, hi int, v int64) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return
	}
	s.add(1, 0, s.n, lo, hi, v)
}

// Max returns the maximum over slots [lo, hi); it returns the smallest
// int64 for an empty range.
func (s *segTree) Max(lo, hi int) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return -1 << 63
	}
	return s.query(1, 0, s.n, lo, hi)
}

func (s *segTree) add(node, nlo, nhi, lo, hi int, v int64) {
	if lo <= nlo && nhi <= hi {
		s.max[node] += v
		s.lazy[node] += v
		return
	}
	mid := (nlo + nhi) / 2
	if lo < mid {
		s.add(2*node, nlo, mid, lo, hi, v)
	}
	if hi > mid {
		s.add(2*node+1, mid, nhi, lo, hi, v)
	}
	s.max[node] = maxI64(s.max[2*node], s.max[2*node+1]) + s.lazy[node]
}

func (s *segTree) query(node, nlo, nhi, lo, hi int) int64 {
	if lo <= nlo && nhi <= hi {
		return s.max[node]
	}
	mid := (nlo + nhi) / 2
	res := int64(-1 << 63)
	if lo < mid {
		res = maxI64(res, s.query(2*node, nlo, mid, lo, hi))
	}
	if hi > mid {
		res = maxI64(res, s.query(2*node+1, mid, nhi, lo, hi))
	}
	return res + s.lazy[node]
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
