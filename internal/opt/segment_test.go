package opt

import (
	"reflect"
	"testing"

	"lfo/internal/gen"
	"lfo/internal/trace"
)

// phaseTrace concatenates independently generated traces with disjoint
// object ID spaces. Nothing crosses a phase boundary, so the minimum
// interval-crossing cut points coincide with the phase joins and the
// segmented solve decomposes exactly.
func phaseTrace(t *testing.T, cfgs []gen.Config, obj trace.Objective) *trace.Trace {
	t.Helper()
	out := &trace.Trace{}
	for p, cfg := range cfgs {
		sub, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range sub.Requests {
			// Bits 58+ are unused by gen's ID layout (8-bit class values
			// stay tiny); tagging them keeps phase ID spaces disjoint.
			r.ID |= trace.ObjectID(uint64(p+1) << 58)
			r.Time = int64(len(out.Requests))
			out.Requests = append(out.Requests, r)
		}
	}
	return out.WithCosts(obj)
}

// TestSegmentedFlowMatchesUnsegmented: the Figure 3 paper trace repeated
// with disjoint IDs per phase. No interval crosses a phase join, so the
// cuts land at zero-crossing points and the per-segment flow solves must
// reproduce the unsegmented AlgoFlow schedule admit for admit. (Generic
// traces under BHR give every bypass arc the same per-byte cost, so the
// flow has many optima and tie-breaking may legitimately differ between
// the combined and per-phase solves; the paper trace's optimum is pinned
// by the hand-verified hit set.)
func TestSegmentedFlowMatchesUnsegmented(t *testing.T) {
	const phases = 5
	ids := []trace.ObjectID{1, 2, 3, 2, 4, 1, 3, 4, 1, 2, 2, 1}
	sizes := map[trace.ObjectID]int64{1: 3, 2: 1, 3: 1, 4: 2}
	tr := &trace.Trace{}
	for p := 0; p < phases; p++ {
		for _, id := range ids {
			tr.Requests = append(tr.Requests, trace.Request{
				Time: int64(len(tr.Requests)),
				ID:   id + trace.ObjectID(10*p),
				Size: sizes[id],
			})
		}
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)

	whole, err := Compute(tr, Config{CacheSize: 4, Algorithm: AlgoFlow, Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	if whole.Segments != 1 || whole.FlowSegments != 1 {
		t.Fatalf("unsegmented solve: got %d segments (%d flow)", whole.Segments, whole.FlowSegments)
	}
	seg, err := Compute(tr, Config{CacheSize: 4, Algorithm: AlgoFlow, Segments: phases})
	if err != nil {
		t.Fatal(err)
	}
	if seg.Segments < 2 {
		t.Fatalf("segmented solve used %d segments, want >= 2", seg.Segments)
	}
	if seg.BoundaryIntervals != 0 {
		t.Errorf("phase trace produced %d boundary intervals, want 0", seg.BoundaryIntervals)
	}
	for i := range whole.Admit {
		if whole.Admit[i] != seg.Admit[i] {
			t.Fatalf("Admit[%d]: unsegmented %v, segmented %v", i, whole.Admit[i], seg.Admit[i])
		}
	}
	// Per-phase OPT is the hand-verified 12 hit bytes (TestFlowPaperExampleBHR).
	if seg.HitBytes != 12*phases {
		t.Errorf("segmented HitBytes = %d, want %d", seg.HitBytes, 12*phases)
	}
	checkFeasible(t, tr, seg.Admit, 4)
}

// TestSegmentedMatchesBeladyUnitSizes: with unit sizes the flow hit count
// equals Belady's provably optimal one (TestFlowMatchesBeladyUnitSizes);
// on a phase-structured trace the segmented solve decomposes exactly, so
// its total must still match Belady on the concatenated trace.
func TestSegmentedMatchesBeladyUnitSizes(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfgs := []gen.Config{
			gen.UnitMix(1000, seed, 128, 0.9),
			gen.UnitMix(1000, seed+100, 128, 0.9),
			gen.UnitMix(1000, seed+200, 128, 0.9),
		}
		tr := phaseTrace(t, cfgs, trace.ObjectiveOHR)
		const capacity = 16
		seg, err := Compute(tr, Config{CacheSize: capacity, Algorithm: AlgoFlow, Segments: len(cfgs)})
		if err != nil {
			t.Fatal(err)
		}
		if seg.Segments < 2 {
			t.Fatalf("seed %d: segmented solve used %d segments, want >= 2", seed, seg.Segments)
		}
		if seg.BoundaryIntervals != 0 {
			t.Fatalf("seed %d: %d boundary intervals on a phase trace, want 0", seed, seg.BoundaryIntervals)
		}
		bel := Belady(tr, capacity)
		if seg.Hits != bel.Hits {
			t.Errorf("seed %d: segmented hits %d != belady hits %d", seed, seg.Hits, bel.Hits)
		}
	}
}

// TestSegmentedNeverBeatsBelady: on generic unit-size traces the stitched
// segmented schedule is feasible, so it can never exceed Belady's optimum.
func TestSegmentedNeverBeatsBelady(t *testing.T) {
	tr, err := gen.Generate(gen.UnitMix(3000, 7, 200, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveOHR)
	const capacity = 20
	seg, err := Compute(tr, Config{CacheSize: capacity, Algorithm: AlgoFlow, Segments: 5})
	if err != nil {
		t.Fatal(err)
	}
	bel := Belady(tr, capacity)
	if seg.Hits > bel.Hits {
		t.Errorf("segmented hits %d > belady %d", seg.Hits, bel.Hits)
	}
	checkFeasible(t, tr, seg.Admit, capacity)
}

// TestOPTDeterministicAcrossWorkers: the full Result must be byte-identical
// for every Workers value, for flow segments and for the greedy fallback
// path alike.
func TestOPTDeterministicAcrossWorkers(t *testing.T) {
	tr, err := gen.Generate(gen.CDNMix(6000, 19))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	cases := []struct {
		name string
		cfg  Config
	}{
		// Auto with a low flow limit: forces segmentation AND drives some
		// segments through the greedy fallback.
		{"auto-fallback", Config{CacheSize: 8 << 20, Algorithm: AlgoAuto, AutoFlowLimit: 400, Segments: 3}},
		{"flow-seg4", Config{CacheSize: 8 << 20, Algorithm: AlgoFlow, Segments: 4}},
		{"flow-seg9", Config{CacheSize: 8 << 20, Algorithm: AlgoFlow, Segments: 9}},
		{"greedy-seg2", Config{CacheSize: 8 << 20, Algorithm: AlgoGreedy, Segments: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var base *Result
			for _, workers := range []int{1, 2, 0} {
				cfg := tc.cfg
				cfg.Workers = workers
				res, err := Compute(tr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if base == nil {
					base = res
					if res.Segments < 2 {
						t.Fatalf("want >= 2 segments to exercise the parallel path, got %d", res.Segments)
					}
					if tc.name == "auto-fallback" && (res.GreedySegments == 0 || res.FlowSegments == 0) {
						t.Fatalf("fallback case: want a mix of flow and greedy segments, got %d flow / %d greedy",
							res.FlowSegments, res.GreedySegments)
					}
					continue
				}
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("workers=%d: Result differs from workers=1", workers)
				}
			}
		})
	}
}

// TestGreedyFallbackRecorded: AlgoAuto on an oversized single segment
// falls back to greedy and says so in the stats.
func TestGreedyFallbackRecorded(t *testing.T) {
	tr, err := gen.Generate(gen.CDNMix(2000, 31))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	res, err := Compute(tr, Config{
		CacheSize: 8 << 20, Algorithm: AlgoAuto,
		AutoFlowLimit: 10, Segments: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GreedySegments != 1 || res.FlowSegments != 0 {
		t.Errorf("want 1 greedy / 0 flow segments, got %d / %d", res.GreedySegments, res.FlowSegments)
	}
	if res.GreedyIntervals != res.Solved || res.FlowIntervals != 0 {
		t.Errorf("want all %d solved intervals greedy, got %d greedy / %d flow",
			res.Solved, res.GreedyIntervals, res.FlowIntervals)
	}
	if got := res.AlgoLabel(); got != "greedy" {
		t.Errorf("AlgoLabel = %q, want greedy", got)
	}
}

// TestIntervalAccounting: flow + greedy interval counts partition the
// solved set, and boundary intervals are included in the greedy count.
func TestIntervalAccounting(t *testing.T) {
	tr, err := gen.Generate(gen.CDNMix(5000, 7))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	res, err := Compute(tr, Config{
		CacheSize: 8 << 20, Algorithm: AlgoFlow,
		Segments: 6, RankFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FlowIntervals + res.GreedyIntervals; got != res.Solved {
		t.Errorf("FlowIntervals+GreedyIntervals = %d, want Solved = %d", got, res.Solved)
	}
	if res.GreedyIntervals < res.BoundaryIntervals {
		t.Errorf("GreedyIntervals %d < BoundaryIntervals %d", res.GreedyIntervals, res.BoundaryIntervals)
	}
	if got := res.DroppedIntervals(); got != res.Intervals-res.Solved {
		t.Errorf("DroppedIntervals = %d, want %d", got, res.Intervals-res.Solved)
	}
	checkFeasible(t, tr, res.Admit, 8<<20)
}

// TestSegmentedFeasibleWithBoundaries: a generic (non-phase) trace forces
// boundary stitching; the combined schedule must still respect capacity at
// every time step.
func TestSegmentedFeasibleWithBoundaries(t *testing.T) {
	tr, err := gen.Generate(gen.CDNMix(6000, 3))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	const capacity = 4 << 20
	res, err := Compute(tr, Config{CacheSize: capacity, Algorithm: AlgoFlow, Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundaryIntervals == 0 {
		t.Log("note: no boundary intervals on this trace; cut points were all zero-crossing")
	}
	checkFeasible(t, tr, res.Admit, capacity)
	if res.Hits == 0 {
		t.Error("segmented solve produced no hits")
	}
}

// TestSegmentedCloseToUnsegmented: on a generic trace segmentation is an
// approximation, but the stitched schedule should stay within a small
// margin of the whole-window flow optimum.
func TestSegmentedCloseToUnsegmented(t *testing.T) {
	tr, err := gen.Generate(gen.CDNMix(5000, 13))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	const capacity = 16 << 20
	whole, err := Compute(tr, Config{CacheSize: capacity, Algorithm: AlgoFlow, Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := Compute(tr, Config{CacheSize: capacity, Algorithm: AlgoFlow, Segments: 6})
	if err != nil {
		t.Fatal(err)
	}
	if seg.HitBytes > whole.HitBytes {
		// Segmentation can only remove options from the flow, modulo the
		// greedy repair; beating the whole-window solve would indicate an
		// infeasible schedule.
		checkFeasible(t, tr, seg.Admit, capacity)
	}
	lo := float64(whole.HitBytes) * 0.95
	if float64(seg.HitBytes) < lo {
		t.Errorf("segmented HitBytes %d below 95%% of unsegmented %d", seg.HitBytes, whole.HitBytes)
	}
}
