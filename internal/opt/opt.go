// Package opt computes the offline-optimal caching decisions (OPT) that
// LFO learns from (§2.1 of the paper).
//
// The exact method models OPT as a min-cost flow problem (FOO — flow-based
// offline optimal, after Berger, Beckmann and Harchol-Balter, SIGMETRICS
// 2018): each pair of consecutive requests to the same object forms an
// interval whose bytes either rest in the cache (zero cost, bounded by the
// cache size) or bypass it (a miss, costing the retrieval cost). See
// Figure 4 of the paper.
//
// Because min-cost flow on multi-million-node graphs is slow, the package
// also implements the paper's ranking approximation — solve only for the
// intervals with the highest C/(S·L) rank and declare the rest uncached —
// and a fast feasible greedy (in the spirit of PFOO-L) that admits
// intervals in rank order subject to a per-time-step capacity check.
// Belady's algorithm is provided for the unit-size special case, where it
// is provably optimal and anchors correctness tests.
package opt

import (
	"fmt"
	"sort"

	"lfo/internal/obs"
	"lfo/internal/trace"
)

// Algorithm selects how OPT decisions are computed.
type Algorithm int

const (
	// AlgoAuto uses AlgoFlow when the (ranked) interval count is small
	// enough and AlgoGreedy otherwise.
	AlgoAuto Algorithm = iota
	// AlgoFlow solves the FOO min-cost flow exactly over the selected
	// intervals.
	AlgoFlow
	// AlgoGreedy admits intervals in C/(S·L) rank order subject to a
	// feasible per-time-step capacity constraint.
	AlgoGreedy
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoFlow:
		return "flow"
	case AlgoGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Config parameterizes the OPT computation.
type Config struct {
	// CacheSize is the cache capacity in bytes. Required.
	CacheSize int64
	// Algorithm selects the solver; AlgoAuto by default.
	Algorithm Algorithm
	// RankFraction, in (0, 1], keeps only the top fraction of intervals
	// ranked by C/(S·L) (§2.1: "split the set of requests along a
	// ranking axis"); the remainder are declared uncached without
	// solving. Zero means 1.0 (solve everything).
	RankFraction float64
	// CostScale converts fractional per-byte costs to the integral costs
	// the flow solver needs. Zero means 1024.
	CostScale int64
	// AutoFlowLimit is the interval count up to which a single segment is
	// solved with the exact flow solver (the successive-shortest-path
	// solve grows super-linearly in the interval count). With Segments=0
	// it is also the window size above which the solve auto-segments;
	// under AlgoAuto a segment that still exceeds the limit (only
	// possible when Segments forces very few cuts) falls back to the
	// feasible greedy for that segment alone. Zero means 12000.
	AutoFlowLimit int
	// Segments controls PFOO-style time-axis segmentation of the solve
	// (Berger/Beckmann/Harchol-Balter: the FOO flow problem decomposes
	// at low-occupancy points on the time axis). The window's intervals
	// are partitioned at low-crossing cut points, each segment's flow is
	// solved independently (concurrently under Workers), and intervals
	// that span a cut are stitched deterministically by rank-order
	// greedy admission before the segment solves. 0 (auto) keeps one
	// segment up to AutoFlowLimit intervals and targets ~4000 intervals
	// per segment beyond; 1 forces the unsegmented whole-window solve;
	// values > 1 request that many segments (best effort — cuts are
	// placed near equal-interval-count positions).
	Segments int
	// Workers caps the goroutines used for concurrent segment solves:
	// 0 means all available cores, 1 solves segments sequentially. The
	// result is byte-identical for every value — segmentation depends
	// only on the trace and the config, and each segment writes a
	// disjoint part of the result (same determinism bar as the training
	// pipeline's Workers knob).
	Workers int
	// Obs, when set, records per-solve totals (solves, flow vs greedy
	// segment and interval counts, dropped intervals). Metrics never
	// influence the solve; nil disables recording (see internal/obs).
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.RankFraction <= 0 || c.RankFraction > 1 {
		c.RankFraction = 1
	}
	if c.CostScale <= 0 {
		c.CostScale = 1024
	}
	if c.AutoFlowLimit <= 0 {
		c.AutoFlowLimit = 12000
	}
	return c
}

// Result holds OPT's per-request decisions and the performance OPT
// achieves on the analyzed trace.
type Result struct {
	// Admit reports, per request index, whether OPT keeps the object in
	// the cache from this request until the object's next request.
	// Requests without a further request to the same object are always
	// false (caching them yields no hit).
	Admit []bool
	// Hit reports, per request index, whether the request is served from
	// the cache under OPT's schedule (i.e. the previous interval for the
	// object was admitted).
	Hit []bool
	// Hits is the number of true entries in Hit.
	Hits int
	// HitBytes is the total size of hit requests.
	HitBytes int64
	// TotalBytes is the total size of all requests.
	TotalBytes int64
	// MissCost is the summed Cost of all missed requests, including
	// compulsory first-request misses.
	MissCost float64
	// Solved is the number of intervals given to the solver (after rank
	// selection); Intervals - Solved intervals were dropped unsolved.
	Solved int
	// Intervals is the total number of intervals (requests with a next
	// request).
	Intervals int
	// Segments is the number of time-axis segments the solve used
	// (0 when no intervals were selected).
	Segments int
	// FlowSegments and GreedySegments count the segments labeled by the
	// exact flow solver and by the feasible greedy, respectively.
	FlowSegments   int
	GreedySegments int
	// FlowIntervals and GreedyIntervals count selected intervals labeled
	// by each solver; intervals stitched across segment cuts count as
	// greedy. FlowIntervals + GreedyIntervals == Solved.
	FlowIntervals   int
	GreedyIntervals int
	// BoundaryIntervals counts intervals that crossed a segment cut and
	// were therefore stitched greedily rather than solved exactly.
	BoundaryIntervals int
}

// DroppedIntervals returns the intervals excluded by rank selection and
// declared uncached without solving.
func (r *Result) DroppedIntervals() int { return r.Intervals - r.Solved }

// AlgoLabel reports which solver(s) actually produced the labels:
// "flow", "greedy", "flow+greedy", or "none" (no intervals).
func (r *Result) AlgoLabel() string {
	switch {
	case r.FlowIntervals > 0 && r.GreedyIntervals > 0:
		return "flow+greedy"
	case r.FlowIntervals > 0:
		return "flow"
	case r.GreedyIntervals > 0:
		return "greedy"
	default:
		return "none"
	}
}

// BHR returns the byte hit ratio achieved by OPT's schedule.
func (r *Result) BHR() float64 {
	if r.TotalBytes == 0 {
		return 0
	}
	return float64(r.HitBytes) / float64(r.TotalBytes)
}

// OHR returns the object hit ratio achieved by OPT's schedule.
func (r *Result) OHR() float64 {
	if len(r.Hit) == 0 {
		return 0
	}
	return float64(r.Hits) / float64(len(r.Hit))
}

// interval is a span between consecutive requests to one object.
type interval struct {
	from, to int // request indices
	size     int64
	cost     float64 // full retrieval cost C for a miss on this interval
	rank     float64 // C / (S * L)
}

// buildIntervals extracts all reuse intervals and ranks them.
func buildIntervals(tr *trace.Trace) []interval {
	next := tr.NextRequestIndex()
	var ivs []interval
	for i, r := range tr.Requests {
		j := next[i]
		if j < 0 {
			continue
		}
		l := float64(j - i)
		ivs = append(ivs, interval{
			from: i, to: j,
			size: r.Size,
			cost: tr.Requests[j].Cost, // cost saved if request j hits
			rank: tr.Requests[j].Cost / (float64(r.Size) * l),
		})
	}
	return ivs
}

// selectByRank returns the top fraction of intervals by rank, preserving
// no particular order. fraction must be in (0,1].
func selectByRank(ivs []interval, fraction float64) []interval {
	if fraction >= 1 || len(ivs) == 0 {
		return ivs
	}
	keep := int(float64(len(ivs)) * fraction)
	if keep < 1 {
		keep = 1
	}
	sorted := append([]interval(nil), ivs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].rank > sorted[b].rank })
	return sorted[:keep]
}

// Compute derives OPT's decisions for the trace under the config.
func Compute(tr *trace.Trace, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.CacheSize <= 0 {
		return nil, fmt.Errorf("opt: CacheSize must be positive, got %d", cfg.CacheSize)
	}
	n := tr.Len()
	res := &Result{
		Admit: make([]bool, n),
		Hit:   make([]bool, n),
	}
	ivs := buildIntervals(tr)
	res.Intervals = len(ivs)
	selected := selectByRank(ivs, cfg.RankFraction)
	res.Solved = len(selected)

	switch cfg.Algorithm {
	case AlgoAuto, AlgoFlow, AlgoGreedy:
		if err := solveSegmented(tr, selected, cfg, res); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("opt: unknown algorithm %v", cfg.Algorithm)
	}

	// Derive hits and miss cost from the admission schedule.
	prev := tr.PrevRequestIndex()
	for j, r := range tr.Requests {
		res.TotalBytes += r.Size
		i := prev[j]
		if i >= 0 && res.Admit[i] {
			res.Hit[j] = true
			res.Hits++
			res.HitBytes += r.Size
		} else {
			res.MissCost += r.Cost
		}
	}
	recordSolve(cfg.Obs, res)
	return res, nil
}

// recordSolve accumulates one solve's solver mix into the registry (a
// no-op for a nil registry).
func recordSolve(r *obs.Registry, res *Result) {
	if r == nil {
		return
	}
	r.Counter("opt_solves_total").Inc()
	r.Counter("opt_intervals_total").Add(int64(res.Intervals))
	r.Counter("opt_solved_intervals_total").Add(int64(res.Solved))
	r.Counter("opt_dropped_intervals_total").Add(int64(res.DroppedIntervals()))
	r.Counter("opt_flow_segments_total").Add(int64(res.FlowSegments))
	r.Counter("opt_greedy_segments_total").Add(int64(res.GreedySegments))
	r.Counter("opt_flow_intervals_total").Add(int64(res.FlowIntervals))
	r.Counter("opt_greedy_intervals_total").Add(int64(res.GreedyIntervals))
	r.Counter("opt_boundary_intervals_total").Add(int64(res.BoundaryIntervals))
}
