package opt

import (
	"fmt"
	"sort"

	"lfo/internal/mcf"
	"lfo/internal/par"
)

// Segmented solve (the PFOO decomposition). The FOO min-cost flow only
// couples intervals through the shared cache capacity over time, so the
// window decomposes along the time axis: cut the request sequence at
// points few intervals cross, solve each segment's flow independently,
// and stitch the intervals that span a cut with the rank-order greedy.
// Because the cuts, the stitching order, and each segment's solve depend
// only on the trace and the config — never on scheduling — the result is
// byte-identical for any Workers value.

// autoSegmentIntervals is the per-segment interval target when Segments=0
// auto-segments a window larger than AutoFlowLimit. The successive-
// shortest-path solve grows super-quadratically in the interval count, so
// many moderate segments beat one big solve even on a single core. The
// target trades exactness against time: smaller segments cut more
// intervals (each stitched greedily instead of solved), larger ones blow
// up the per-segment solve. ~4000 keeps a segment solve around half a
// second while labeling the majority of a 100k+-interval window exactly.
const autoSegmentIntervals = 4000

// segment is one time-axis slice of the window: the request span [lo, hi)
// plus the selected intervals fully contained in it.
type segment struct {
	lo, hi int
	ivs    []interval // contained intervals, sorted by from
	bnd    []interval // admitted boundary intervals overlapping the span
	greedy bool       // true when this segment uses the greedy fallback
}

// solveSegmented partitions the selected intervals into time-axis
// segments, stitches boundary intervals, and solves the segments
// concurrently, writing admissions and label stats into res.
func solveSegmented(tr trLike, selected []interval, cfg Config, res *Result) error {
	if len(selected) == 0 {
		return nil
	}
	n := tr.Len()

	// Normalize to from-order: froms are unique (one interval per request
	// index), so this is a strict total order independent of how rank
	// selection permuted the slice.
	ivs := append([]interval(nil), selected...)
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].from < ivs[b].from })

	segs, boundary := planSegments(n, ivs, cfg)
	res.Segments = len(segs)
	res.BoundaryIntervals = len(boundary)

	// Stitch boundary intervals first: admit them greedily in rank order
	// against a whole-window occupancy tree, so every segment then sees
	// the same reserved bytes. This runs before (and independent of) the
	// parallel phase — in-order, deterministic.
	if len(boundary) > 0 {
		sortByRank(boundary)
		occ := newSegTree(n)
		admitted := boundary[:0] // reuse: admitted is a prefix-filtered view
		for _, iv := range boundary {
			if occ.Max(iv.from, iv.to)+iv.size <= cfg.CacheSize {
				occ.Add(iv.from, iv.to, iv.size)
				res.Admit[iv.from] = true
				admitted = append(admitted, iv)
			}
		}
		distributeBoundary(segs, admitted)
	}

	// Per-segment solver choice. Only AlgoAuto may fall back to greedy,
	// and only for segments whose interval count exceeds AutoFlowLimit
	// (possible when Segments forces fewer cuts than auto would pick).
	for i := range segs {
		switch cfg.Algorithm {
		case AlgoGreedy:
			segs[i].greedy = true
		case AlgoAuto:
			segs[i].greedy = len(segs[i].ivs) > cfg.AutoFlowLimit
		}
	}

	// Solve segments concurrently. Each chunk of segments shares one
	// scratch set (graph arena, solver state, occupancy tree); each
	// segment writes only its own intervals' Admit slots and its own
	// error slot, so the parallel phase is race-free and byte-identical
	// for any worker count.
	errs := make([]error, len(segs))
	par.Ranges(len(segs), cfg.Workers, 1, func(lo, hi int) {
		sc := newSolveScratch()
		for s := lo; s < hi; s++ {
			errs[s] = solveSegment(&segs[s], cfg, res, sc)
		}
	})
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("opt: segment %d [%d,%d): %w", s, segs[s].lo, segs[s].hi, err)
		}
	}

	// Reduce label stats in segment order.
	for i := range segs {
		if segs[i].greedy {
			res.GreedySegments++
			res.GreedyIntervals += len(segs[i].ivs)
		} else {
			res.FlowSegments++
			res.FlowIntervals += len(segs[i].ivs)
		}
	}
	res.GreedyIntervals += len(boundary) // stitched greedily
	return nil
}

// trLike is the slice of trace.Trace the solver needs; it keeps the
// segmented solver testable without building full traces.
type trLike interface{ Len() int }

// planSegments picks the segment count, the cut points, and partitions
// the from-sorted intervals into contained-per-segment and boundary sets.
func planSegments(n int, ivs []interval, cfg Config) ([]segment, []interval) {
	target := segmentCount(len(ivs), cfg)
	cuts := chooseCuts(n, ivs, target)
	bounds := make([]int, 0, len(cuts)+2)
	bounds = append(bounds, 0)
	bounds = append(bounds, cuts...)
	bounds = append(bounds, n)

	segs := make([]segment, len(bounds)-1)
	for i := range segs {
		segs[i].lo, segs[i].hi = bounds[i], bounds[i+1]
	}
	var boundary []interval
	si := 0
	for _, iv := range ivs {
		for iv.from >= segs[si].hi {
			si++
		}
		if iv.to <= segs[si].hi {
			segs[si].ivs = append(segs[si].ivs, iv)
		} else {
			boundary = append(boundary, iv)
		}
	}
	return segs, boundary
}

// segmentCount resolves the Segments knob to a target segment count.
func segmentCount(nIntervals int, cfg Config) int {
	s := cfg.Segments
	if s <= 0 {
		if nIntervals <= cfg.AutoFlowLimit {
			return 1
		}
		s = (nIntervals + autoSegmentIntervals - 1) / autoSegmentIntervals
	}
	if s > nIntervals {
		s = nIntervals
	}
	if s < 1 {
		s = 1
	}
	return s
}

// chooseCuts picks up to segments-1 interior cut times in (0, n), each
// minimizing the number of intervals crossing it. Ideal positions split
// the intervals into equal-count runs; each cut searches a bounded window
// around its ideal position for the minimum-crossing time, breaking ties
// toward the time closest to the ideal and then toward the smaller time,
// so the cuts are a pure function of the intervals and the config.
func chooseCuts(n int, ivs []interval, segments int) []int {
	if segments <= 1 || len(ivs) == 0 || n <= 1 {
		return nil
	}
	// crossing[t] = #intervals with from < t < to, built as a difference
	// array and prefix-summed.
	crossing := make([]int32, n+1)
	for _, iv := range ivs {
		if iv.from+1 < iv.to {
			crossing[iv.from+1]++
			crossing[iv.to]--
		}
	}
	for t := 1; t <= n; t++ {
		crossing[t] += crossing[t-1]
	}

	radius := n / (4 * segments)
	if radius < 1 {
		radius = 1
	}
	cuts := make([]int, 0, segments-1)
	prev := 0
	for k := 1; k < segments; k++ {
		ideal := ivs[k*len(ivs)/segments].from
		lo := ideal - radius
		if lo <= prev {
			lo = prev + 1
		}
		hi := ideal + radius
		if hi >= n {
			hi = n - 1
		}
		if lo > hi {
			continue // no room left for this cut; merge with neighbor
		}
		bestT := -1
		var best int32
		for t := lo; t <= hi; t++ {
			c := crossing[t]
			if bestT < 0 || c < best ||
				(c == best && absInt(t-ideal) < absInt(bestT-ideal)) {
				best, bestT = c, t
			}
		}
		cuts = append(cuts, bestT)
		prev = bestT
	}
	return cuts
}

// distributeBoundary hands each admitted boundary interval to every
// segment whose span it overlaps, so segment solves can subtract the
// reserved bytes from their local capacity profile.
func distributeBoundary(segs []segment, admitted []interval) {
	for _, iv := range admitted {
		// First segment whose span extends past the interval start.
		s := sort.Search(len(segs), func(i int) bool { return segs[i].hi > iv.from })
		for ; s < len(segs) && segs[s].lo < iv.to; s++ {
			segs[s].bnd = append(segs[s].bnd, iv)
		}
	}
}

// sortByRank orders intervals by descending C/(S·L) rank with the
// deterministic from-ascending tie-break shared by every greedy pass.
func sortByRank(ivs []interval) {
	sort.Slice(ivs, func(a, b int) bool {
		if ivs[a].rank != ivs[b].rank {
			return ivs[a].rank > ivs[b].rank
		}
		return ivs[a].from < ivs[b].from
	})
}

// solveScratch is the reusable per-worker state for segment solves: the
// flow graph arena, the SSP solver scratch, the local occupancy tree, and
// the endpoint/bypass/repair buffers. One scratch serves all segments of
// a worker's chunk, so repeated window solves stop reallocating.
type solveScratch struct {
	g      *mcf.Graph
	solver *mcf.Solver
	occ    *segTree
	idx    []int
	bypass []int
	rest   []interval
}

func newSolveScratch() *solveScratch {
	return &solveScratch{
		g:      mcf.NewGraph(0),
		solver: mcf.NewSolver(),
		occ:    newSegTree(1),
	}
}

// solveSegment labels one segment's intervals, seeding the local
// occupancy tree with the boundary bytes reserved across its span.
func solveSegment(sg *segment, cfg Config, res *Result, sc *solveScratch) error {
	if len(sg.ivs) == 0 {
		return nil
	}
	sc.occ.reset(sg.hi - sg.lo)
	for _, b := range sg.bnd {
		lo, hi := b.from, b.to
		if lo < sg.lo {
			lo = sg.lo
		}
		if hi > sg.hi {
			hi = sg.hi
		}
		sc.occ.Add(lo-sg.lo, hi-sg.lo, b.size)
	}
	if sg.greedy {
		greedySegment(sg, cfg, res, sc)
		return nil
	}
	return flowSegment(sg, cfg, res, sc)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
