package opt

import (
	"fmt"
	"sort"

	"lfo/internal/mcf"
	"lfo/internal/trace"
)

// solveFlow builds the FOO min-cost flow graph (Figure 4 of the paper) over
// the selected intervals and marks Admit[i] for every interval whose bytes
// are routed entirely along the cache (central) path.
//
// The graph uses the per-interval formulation, which is equivalent to the
// paper's first-to-last-request formulation after supply cancellation at
// interior nodes: each interval injects size bytes at its start request and
// withdraws them at its end request; a bypass arc of capacity size and
// per-byte cost C/S models a miss, while central arcs of capacity CacheSize
// and zero cost model storing bytes in the cache.
//
// Only request indices that appear as interval endpoints become nodes
// (consecutive endpoints are joined by a single central arc), which keeps
// the graph small when rank selection drops intervals.
func solveFlow(tr *trace.Trace, selected []interval, cfg Config, res *Result) error {
	if len(selected) == 0 {
		return nil
	}

	// Collect endpoint request indices and compress to node ids.
	idxSet := make(map[int]struct{}, 2*len(selected))
	for _, iv := range selected {
		idxSet[iv.from] = struct{}{}
		idxSet[iv.to] = struct{}{}
	}
	idx := make([]int, 0, len(idxSet))
	for i := range idxSet {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	node := make(map[int]int, len(idx))
	for k, i := range idx {
		node[i] = k
	}

	g := mcf.NewGraph(len(idx))
	// Central path: consecutive compressed nodes, capacity = cache size.
	for k := 0; k+1 < len(idx); k++ {
		g.AddEdge(k, k+1, cfg.CacheSize, 0)
	}
	// Bypass arcs and supplies per interval.
	bypass := make([]int, len(selected))
	for k, iv := range selected {
		perByte := iv.cost / float64(iv.size) * float64(cfg.CostScale)
		c := int64(perByte + 0.5)
		if c < 1 {
			c = 1
		}
		bypass[k] = g.AddEdge(node[iv.from], node[iv.to], iv.size, c)
		g.AddSupply(node[iv.from], iv.size)
		g.AddSupply(node[iv.to], -iv.size)
	}
	if _, err := g.Solve(); err != nil {
		return fmt.Errorf("opt: FOO flow solve: %w", err)
	}
	for k, iv := range selected {
		// Cached iff no byte bypassed the cache (§2.1: "verify that all
		// the request's bytes are routed along the central path").
		res.Admit[iv.from] = g.Flow(bypass[k]) == 0
	}
	repairSchedule(tr, selected, cfg, res)
	return nil
}

// repairSchedule greedily re-admits intervals the flow extraction left
// out. Min-cost flow optima can split an interval's bytes between the
// cache and the bypass (footnote 2 of the paper); the all-bytes-central
// extraction rule then discards the interval even when fully caching it
// would have been feasible. The repair replays occupancy of the admitted
// set and adds any remaining interval, highest C/(S·L) rank first, that
// fits at every time step. The result is feasible and never worse than the
// raw extraction.
func repairSchedule(tr *trace.Trace, selected []interval, cfg Config, res *Result) {
	occ := newSegTree(tr.Len())
	var rest []interval
	for _, iv := range selected {
		if res.Admit[iv.from] {
			occ.Add(iv.from, iv.to, iv.size)
		} else {
			rest = append(rest, iv)
		}
	}
	sort.Slice(rest, func(a, b int) bool {
		if rest[a].rank != rest[b].rank {
			return rest[a].rank > rest[b].rank
		}
		return rest[a].from < rest[b].from
	})
	for _, iv := range rest {
		if occ.Max(iv.from, iv.to)+iv.size <= cfg.CacheSize {
			occ.Add(iv.from, iv.to, iv.size)
			res.Admit[iv.from] = true
		}
	}
}
