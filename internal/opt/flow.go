package opt

import (
	"fmt"
	"sort"
)

// flowSegment builds the FOO min-cost flow graph (Figure 4 of the paper)
// over one segment's intervals and marks Admit[i] for every interval whose
// bytes are routed entirely along the cache (central) path.
//
// The graph uses the per-interval formulation, which is equivalent to the
// paper's first-to-last-request formulation after supply cancellation at
// interior nodes: each interval injects size bytes at its start request and
// withdraws them at its end request; a bypass arc of capacity size and
// per-byte cost C/S models a miss, while central arcs of zero cost model
// storing bytes in the cache. A central arc's capacity is the cache size
// minus the bytes already reserved by stitched boundary intervals over the
// arc's time span, so segments never overcommit shared capacity.
//
// Only request indices that appear as interval endpoints become nodes
// (consecutive endpoints are joined by a single central arc), which keeps
// the graph small when rank selection drops intervals.
//
// sc.occ must be sized for the segment and pre-seeded with the boundary
// occupancy (indices relative to sg.lo); the graph, solver, and buffers in
// sc are reused across calls.
func flowSegment(sg *segment, cfg Config, res *Result, sc *solveScratch) error {
	// Collect endpoint request indices and compress to node ids: sort,
	// dedup in place, and look nodes up by binary search — no maps, so the
	// hot path stays allocation-free across reuses.
	idx := sc.idx[:0]
	for _, iv := range sg.ivs {
		idx = append(idx, iv.from, iv.to)
	}
	sort.Ints(idx)
	m := 0
	for _, v := range idx {
		if m == 0 || v != idx[m-1] {
			idx[m] = v
			m++
		}
	}
	idx = idx[:m]
	sc.idx = idx

	g := sc.g
	g.Reset(len(idx))
	// Central path: consecutive compressed nodes, capacity = cache size
	// minus peak boundary occupancy over the gap.
	for k := 0; k+1 < len(idx); k++ {
		free := cfg.CacheSize - sc.occ.Max(idx[k]-sg.lo, idx[k+1]-sg.lo)
		if free < 0 {
			free = 0
		}
		g.AddEdge(k, k+1, free, 0)
	}
	// Bypass arcs and supplies per interval.
	bypass := sc.bypass[:0]
	for _, iv := range sg.ivs {
		perByte := iv.cost / float64(iv.size) * float64(cfg.CostScale)
		c := int64(perByte + 0.5)
		if c < 1 {
			c = 1
		}
		u := sort.SearchInts(idx, iv.from)
		v := sort.SearchInts(idx, iv.to)
		bypass = append(bypass, g.AddEdge(u, v, iv.size, c))
		g.AddSupply(u, iv.size)
		g.AddSupply(v, -iv.size)
	}
	sc.bypass = bypass

	if _, err := sc.solver.Solve(g); err != nil {
		return fmt.Errorf("FOO flow solve: %w", err)
	}
	for k, iv := range sg.ivs {
		// Cached iff no byte bypassed the cache (§2.1: "verify that all
		// the request's bytes are routed along the central path").
		res.Admit[iv.from] = g.Flow(bypass[k]) == 0
	}
	repairSegment(sg, cfg, res, sc)
	return nil
}

// repairSegment greedily re-admits intervals the flow extraction left
// out. Min-cost flow optima can split an interval's bytes between the
// cache and the bypass (footnote 2 of the paper); the all-bytes-central
// extraction rule then discards the interval even when fully caching it
// would have been feasible. The repair replays occupancy of the admitted
// set on top of the boundary reservation already in sc.occ and adds any
// remaining interval, highest C/(S·L) rank first, that fits at every time
// step. The result is feasible and never worse than the raw extraction.
func repairSegment(sg *segment, cfg Config, res *Result, sc *solveScratch) {
	rest := sc.rest[:0]
	for _, iv := range sg.ivs {
		if res.Admit[iv.from] {
			sc.occ.Add(iv.from-sg.lo, iv.to-sg.lo, iv.size)
		} else {
			rest = append(rest, iv)
		}
	}
	sortByRank(rest)
	for _, iv := range rest {
		if sc.occ.Max(iv.from-sg.lo, iv.to-sg.lo)+iv.size <= cfg.CacheSize {
			sc.occ.Add(iv.from-sg.lo, iv.to-sg.lo, iv.size)
			res.Admit[iv.from] = true
		}
	}
	sc.rest = rest[:0]
}
