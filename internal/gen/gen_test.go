package gen

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lfo/internal/trace"
)

func TestZipfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 0.8, 100)
	for i := 0; i < 10000; i++ {
		k := z.Next()
		if k < 1 || k > 100 {
			t.Fatalf("Zipf sample %d outside [1,100]", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With alpha=1 over 1000 ranks, rank 1 should receive close to
	// 1/H(1000) ≈ 13.4% of samples; rank frequencies must be decreasing
	// in aggregate (top 10 >> bottom 10).
	rng := rand.New(rand.NewSource(7))
	const n, samples = 1000, 200000
	z := NewZipf(rng, 1.0, n)
	counts := make([]int, n+1)
	for i := 0; i < samples; i++ {
		counts[z.Next()]++
	}
	h := 0.0
	for k := 1; k <= n; k++ {
		h += 1 / float64(k)
	}
	want := samples / h
	got := float64(counts[1])
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("rank-1 count = %g, want within 10%% of %g", got, want)
	}
	top, bottom := 0, 0
	for k := 1; k <= 10; k++ {
		top += counts[k]
	}
	for k := n - 9; k <= n; k++ {
		bottom += counts[k]
	}
	if top < bottom*20 {
		t.Errorf("top-10 count %d not >> bottom-10 count %d", top, bottom)
	}
}

func TestZipfLowAlpha(t *testing.T) {
	// alpha < 1 must work (math/rand's Zipf cannot do this).
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 0.6, 50)
	seen := make(map[uint64]bool)
	for i := 0; i < 5000; i++ {
		seen[z.Next()] = true
	}
	if len(seen) < 45 {
		t.Errorf("alpha=0.6 over 50 ranks touched only %d ranks", len(seen))
	}
}

func TestZipfPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		alpha float64
		n     uint64
	}{{0, 10}, {-1, 10}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%g,%d) did not panic", tc.alpha, tc.n)
				}
			}()
			NewZipf(rng, tc.alpha, tc.n)
		}()
	}
}

func TestSizeModels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	models := []struct {
		name     string
		m        SizeModel
		min, max int64
	}{
		{"lognormal", LogNormalSize{Mu: 9, Sigma: 1.5, Min: 100, Max: 10000}, 100, 10000},
		{"pareto", ParetoSize{Alpha: 1.3, Min: 1000, Max: 100000}, 1000, 100000},
		{"fixed", FixedSize{Size: 77}, 77, 77},
		{"uniform", UniformSize{Min: 5, Max: 10}, 5, 10},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 2000; i++ {
				s := tc.m.Sample(rng)
				if s < tc.min || s > tc.max {
					t.Fatalf("sample %d outside [%d,%d]", s, tc.min, tc.max)
				}
			}
		})
	}
}

func TestParetoHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := ParetoSize{Alpha: 1.1, Min: 1 << 20, Max: 256 << 20}
	var max int64
	for i := 0; i < 20000; i++ {
		if s := m.Sample(rng); s > max {
			max = s
		}
	}
	if max < 64<<20 {
		t.Errorf("Pareto(1.1) max over 20k samples = %d, want tail beyond 64MB", max)
	}
}

func TestConfigValidate(t *testing.T) {
	valid := WebMix(100, 1)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero requests", func(c *Config) { c.Requests = 0 }},
		{"no classes", func(c *Config) { c.Classes = nil }},
		{"zero objects", func(c *Config) { c.Classes[0].Objects = 0 }},
		{"zero alpha", func(c *Config) { c.Classes[0].ZipfAlpha = 0 }},
		{"nil sizes", func(c *Config) { c.Classes[0].Sizes = nil }},
		{"negative weight", func(c *Config) { c.Classes[0].Weight = -1 }},
		{"drift class out of range", func(c *Config) { c.Drift = []DriftEvent{{Class: 5}} }},
		{"drift At out of range", func(c *Config) { c.Drift = []DriftEvent{{Class: 0, At: 1.5}} }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := WebMix(100, 1)
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestGenerateValidTrace(t *testing.T) {
	tr, err := Generate(CDNMix(20000, 42))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tr.Len() != 20000 {
		t.Fatalf("Len = %d, want 20000", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(CDNMix(5000, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(CDNMix(5000, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Requests, b.Requests) {
		t.Error("same seed produced different traces")
	}
	c, err := Generate(CDNMix(5000, 10))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Requests, c.Requests) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateDriftReshuffle(t *testing.T) {
	cfg := WebMix(10000, 4)
	cfg.Drift = []DriftEvent{{At: 0.5, Class: 0, NewWeight: 1, Reshuffle: true}}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := make(map[trace.ObjectID]bool)
	for _, r := range tr.Requests[:5000] {
		first[r.ID] = true
	}
	overlap := 0
	secondIDs := make(map[trace.ObjectID]bool)
	for _, r := range tr.Requests[5000:] {
		secondIDs[r.ID] = true
		if first[r.ID] {
			overlap++
		}
	}
	if overlap != 0 {
		t.Errorf("reshuffle: %d requests in second half hit pre-shift objects, want 0", overlap)
	}
	if len(secondIDs) == 0 {
		t.Error("second half empty")
	}
}

func TestGenerateDriftWeights(t *testing.T) {
	// Two classes; drift silences class 0 halfway.
	cfg := Config{
		Requests: 10000,
		Seed:     2,
		Classes: []ContentClass{
			{Name: "a", Objects: 100, ZipfAlpha: 1, Sizes: FixedSize{1}, Weight: 1},
			{Name: "b", Objects: 100, ZipfAlpha: 1, Sizes: FixedSize{2}, Weight: 1},
		},
		Drift: []DriftEvent{{At: 0.5, Class: 0, NewWeight: 0}},
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Requests[5001:] {
		if r.Size == 1 {
			t.Fatalf("request %d after drift still from silenced class", 5001+i)
		}
	}
}

func TestGenerateInterarrival(t *testing.T) {
	cfg := WebMix(20000, 3)
	cfg.MeanInterarrival = 5
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	span := tr.Requests[tr.Len()-1].Time - tr.Requests[0].Time
	mean := float64(span) / float64(tr.Len()-1)
	if math.Abs(mean-5) > 0.5 {
		t.Errorf("mean interarrival = %g, want ≈5", mean)
	}
}

func TestGenerateSizeStability(t *testing.T) {
	f := func(seed int64) bool {
		tr, err := Generate(CDNMix(3000, seed))
		if err != nil {
			return false
		}
		sizes := make(map[trace.ObjectID]int64)
		for _, r := range tr.Requests {
			if s, ok := sizes[r.ID]; ok && s != r.Size {
				return false
			}
			sizes[r.ID] = r.Size
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{CDNMix(100, 1), WebMix(100, 1), UnitMix(100, 1, 50, 0.8)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}

func TestUnitMixAllUnitSizes(t *testing.T) {
	tr, err := Generate(UnitMix(1000, 1, 64, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Requests {
		if r.Size != 1 {
			t.Fatalf("request %d size = %d, want 1", i, r.Size)
		}
	}
}

func TestWithScansInjectsBursts(t *testing.T) {
	base, err := Generate(WebMix(1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	out := WithScans(base, ScanConfig{Every: 100, Burst: 10, ObjectSize: 512})
	wantLen := 1000 + 10*10
	if out.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", out.Len(), wantLen)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("scanned trace invalid: %v", err)
	}
	// Scan objects never repeat.
	seen := map[trace.ObjectID]int{}
	scans := 0
	for _, r := range out.Requests {
		if uint64(r.ID) >= 1<<60 {
			scans++
			seen[r.ID]++
			if seen[r.ID] > 1 {
				t.Fatal("scan object repeated")
			}
			if r.Size != 512 {
				t.Fatalf("scan size = %d", r.Size)
			}
		}
	}
	if scans != 100 {
		t.Errorf("scan requests = %d, want 100", scans)
	}
	// Degenerate configs return the base unchanged.
	if got := WithScans(base, ScanConfig{}); got != base {
		t.Error("zero config did not return base")
	}
}

func TestAppendLoop(t *testing.T) {
	base, err := Generate(WebMix(500, 2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	out := AppendLoop(base, LoopConfig{Objects: 50, ObjectSize: 100, Cycles: 3}, rng)
	if out.Len() != 500+150 {
		t.Fatalf("Len = %d", out.Len())
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("looped trace invalid: %v", err)
	}
	// Each loop object appears exactly Cycles times.
	counts := map[trace.ObjectID]int{}
	for _, r := range out.Requests[500:] {
		counts[r.ID]++
	}
	if len(counts) != 50 {
		t.Fatalf("loop objects = %d, want 50", len(counts))
	}
	for id, c := range counts {
		if c != 3 {
			t.Errorf("loop object %d appears %d times, want 3", id, c)
		}
	}
}
