package gen

import (
	"math"
	"math/rand"
)

// SizeModel draws object sizes in bytes.
type SizeModel interface {
	// Sample returns a size in bytes, always >= 1.
	Sample(rng *rand.Rand) int64
}

// LogNormalSize draws sizes from a log-normal distribution, the canonical
// fit for web-object bodies, clamped to [Min, Max].
type LogNormalSize struct {
	// Mu and Sigma parameterize the underlying normal of ln(size).
	Mu, Sigma float64
	// Min and Max clamp the sampled size. Max <= 0 means no upper clamp.
	Min, Max int64
}

// Sample implements SizeModel.
func (m LogNormalSize) Sample(rng *rand.Rand) int64 {
	s := int64(math.Exp(m.Mu + m.Sigma*rng.NormFloat64()))
	return clampSize(s, m.Min, m.Max)
}

// ParetoSize draws sizes from a bounded Pareto distribution, modeling the
// heavy tail of large software/video objects.
type ParetoSize struct {
	// Alpha is the tail index; smaller is heavier. Typical: 1.0–2.5.
	Alpha float64
	// Min and Max bound the support; Max must exceed Min.
	Min, Max int64
}

// Sample implements SizeModel.
func (m ParetoSize) Sample(rng *rand.Rand) int64 {
	// Inverse-CDF sampling of a bounded Pareto.
	lo, hi, a := float64(m.Min), float64(m.Max), m.Alpha
	u := rng.Float64()
	x := math.Pow(math.Pow(lo, a)/(u*math.Pow(lo/hi, a)-u+1), 1/a)
	return clampSize(int64(x), m.Min, m.Max)
}

// FixedSize always returns Size; useful for unit-size experiments where
// OPT reduces to Belady.
type FixedSize struct {
	Size int64
}

// Sample implements SizeModel.
func (m FixedSize) Sample(rng *rand.Rand) int64 { return m.Size }

// UniformSize draws sizes uniformly in [Min, Max].
type UniformSize struct {
	Min, Max int64
}

// Sample implements SizeModel.
func (m UniformSize) Sample(rng *rand.Rand) int64 {
	if m.Max <= m.Min {
		return clampSize(m.Min, 1, 0)
	}
	return m.Min + rng.Int63n(m.Max-m.Min+1)
}

func clampSize(s, min, max int64) int64 {
	if min < 1 {
		min = 1
	}
	if s < min {
		s = min
	}
	if max > 0 && s > max {
		s = max
	}
	return s
}
