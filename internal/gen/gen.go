package gen

import (
	"fmt"
	"math/rand"

	"lfo/internal/trace"
)

// ContentClass describes one content type served by a CDN server, e.g.
// small photos with a long popularity tail, or huge software downloads.
type ContentClass struct {
	// Name labels the class (for documentation only).
	Name string
	// Objects is the size of the class's object universe.
	Objects uint64
	// ZipfAlpha is the popularity skew (P(rank k) ∝ 1/k^alpha).
	ZipfAlpha float64
	// Sizes draws object sizes for the class.
	Sizes SizeModel
	// Weight is the class's relative share of requests (need not be
	// normalized across classes).
	Weight float64
}

// DriftEvent changes the traffic mix mid-trace, modeling load-balancer
// shifts and flash crowds (§1 of the paper: "content mix changes can
// happen within minutes").
type DriftEvent struct {
	// At is the fraction of the trace (0..1) at which the event fires.
	At float64
	// Class indexes into Config.Classes.
	Class int
	// NewWeight replaces the class's weight.
	NewWeight float64
	// Reshuffle, when true, remaps the class's object identifiers so the
	// popular set changes entirely (a cold shift, like traffic moving in
	// from another CDN).
	Reshuffle bool
}

// Config parameterizes the trace generator.
type Config struct {
	// Requests is the trace length.
	Requests int
	// Seed makes the trace reproducible.
	Seed int64
	// Classes is the content mix. Must be non-empty.
	Classes []ContentClass
	// Drift optionally changes the mix mid-trace.
	Drift []DriftEvent
	// MeanInterarrival is the mean logical-time gap between requests.
	// Zero or negative means 1 (time equals request index). Gaps are
	// geometric around the mean so timestamps remain integral and
	// non-decreasing.
	MeanInterarrival float64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Requests <= 0 {
		return fmt.Errorf("gen: Requests must be positive, got %d", c.Requests)
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("gen: at least one content class required")
	}
	for i, cl := range c.Classes {
		if cl.Objects == 0 {
			return fmt.Errorf("gen: class %d (%s): Objects must be positive", i, cl.Name)
		}
		if cl.ZipfAlpha <= 0 {
			return fmt.Errorf("gen: class %d (%s): ZipfAlpha must be positive", i, cl.Name)
		}
		if cl.Sizes == nil {
			return fmt.Errorf("gen: class %d (%s): Sizes model required", i, cl.Name)
		}
		if cl.Weight < 0 {
			return fmt.Errorf("gen: class %d (%s): negative Weight", i, cl.Name)
		}
	}
	for i, d := range c.Drift {
		if d.Class < 0 || d.Class >= len(c.Classes) {
			return fmt.Errorf("gen: drift %d: class index %d out of range", i, d.Class)
		}
		if d.At < 0 || d.At > 1 {
			return fmt.Errorf("gen: drift %d: At %g outside [0,1]", i, d.At)
		}
	}
	return nil
}

// classState is the mutable per-class generator state.
type classState struct {
	zipf   *Zipf
	weight float64
	// epoch shifts object IDs on Reshuffle drift events.
	epoch uint64
}

// Generate produces a trace from the config. Object sizes are stable per
// object ID, and the result always passes trace.Validate.
func Generate(cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	states := make([]*classState, len(cfg.Classes))
	for i, cl := range cfg.Classes {
		states[i] = &classState{
			zipf:   NewZipf(rng, cl.ZipfAlpha, cl.Objects),
			weight: cl.Weight,
		}
	}

	drift := append([]DriftEvent(nil), cfg.Drift...)
	// Process drift events in order of At; insertion sort keeps it simple.
	for i := 1; i < len(drift); i++ {
		for j := i; j > 0 && drift[j].At < drift[j-1].At; j-- {
			drift[j], drift[j-1] = drift[j-1], drift[j]
		}
	}

	mean := cfg.MeanInterarrival
	if mean <= 0 {
		mean = 1
	}

	sizes := make(map[trace.ObjectID]int64, 1024)
	t := &trace.Trace{Requests: make([]trace.Request, 0, cfg.Requests)}
	now := int64(0)
	nextDrift := 0
	for i := 0; i < cfg.Requests; i++ {
		frac := float64(i) / float64(cfg.Requests)
		for nextDrift < len(drift) && drift[nextDrift].At <= frac {
			d := drift[nextDrift]
			states[d.Class].weight = d.NewWeight
			if d.Reshuffle {
				states[d.Class].epoch++
			}
			nextDrift++
		}

		ci := pickClass(rng, states)
		st := states[ci]
		rank := st.zipf.Next() // 1-based
		id := makeID(ci, st.epoch, rank-1)

		size, ok := sizes[id]
		if !ok {
			size = cfg.Classes[ci].Sizes.Sample(rng)
			sizes[id] = size
		}

		t.Requests = append(t.Requests, trace.Request{
			Time: now,
			ID:   id,
			Size: size,
			Cost: float64(size), // BHR convention; callers can re-cost via WithCosts
		})

		gap := int64(1)
		if mean > 1 {
			// Geometric gap with the configured mean (mean >= 1).
			p := 1 / mean
			for rng.Float64() >= p {
				gap++
			}
		}
		now += gap
	}
	return t, nil
}

// makeID packs (class, epoch, object index) into a single ObjectID.
// Layout: 8 bits class | 8 bits epoch | 48 bits object.
func makeID(class int, epoch, obj uint64) trace.ObjectID {
	return trace.ObjectID(uint64(class)<<56 | (epoch&0xff)<<48 | (obj & ((1 << 48) - 1)))
}

// pickClass samples a class index proportionally to current weights.
func pickClass(rng *rand.Rand, states []*classState) int {
	total := 0.0
	for _, st := range states {
		total += st.weight
	}
	if total <= 0 {
		return 0
	}
	x := rng.Float64() * total
	for i, st := range states {
		x -= st.weight
		if x < 0 {
			return i
		}
	}
	return len(states) - 1
}
