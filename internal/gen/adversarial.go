package gen

import (
	"math/rand"

	"lfo/internal/trace"
)

// Adversarial workload transforms, modeling the "unexpected (or even
// adversarial) traffic patterns" §1 of the paper says CDN servers face.
// They contaminate a base trace with cache-hostile request patterns.

// ScanConfig injects sequential scans: bursts of requests to fresh,
// never-reused objects (a crawler sweep or an attack). Scans pollute
// recency-based caches, evicting the hot set for objects that yield no
// future hits.
type ScanConfig struct {
	// Every inserts a scan burst after every `Every` base requests.
	Every int
	// Burst is the number of scan requests per burst.
	Burst int
	// ObjectSize is the size of scan objects in bytes.
	ObjectSize int64
}

// WithScans returns a new trace interleaving scan bursts into the base
// trace. Scan objects use a dedicated ID namespace and never repeat.
// Timestamps are rebased to remain non-decreasing.
func WithScans(base *trace.Trace, cfg ScanConfig) *trace.Trace {
	if cfg.Every <= 0 || cfg.Burst <= 0 || cfg.ObjectSize <= 0 {
		return base
	}
	out := &trace.Trace{Requests: make([]trace.Request, 0, base.Len()+base.Len()/cfg.Every*cfg.Burst)}
	nextScanID := uint64(1) << 60 // disjoint from generator IDs (class<<56, class<16)
	now := int64(0)
	emit := func(r trace.Request) {
		if r.Time < now {
			r.Time = now
		}
		now = r.Time
		out.Requests = append(out.Requests, r)
	}
	for i, r := range base.Requests {
		emit(r)
		if (i+1)%cfg.Every == 0 {
			for b := 0; b < cfg.Burst; b++ {
				now++
				emit(trace.Request{
					Time: now,
					ID:   trace.ObjectID(nextScanID),
					Size: cfg.ObjectSize,
					Cost: float64(cfg.ObjectSize),
				})
				nextScanID++
			}
		}
	}
	return out
}

// LoopConfig injects cyclic sweeps over a working set slightly larger
// than the cache — the classic LRU-pathological pattern (every request
// misses under LRU although the loop is perfectly predictable).
type LoopConfig struct {
	// Objects is the loop's working-set size in objects.
	Objects int
	// ObjectSize is each loop object's size.
	ObjectSize int64
	// Cycles is how many times the loop repeats.
	Cycles int
}

// AppendLoop appends a cyclic scan to the base trace.
func AppendLoop(base *trace.Trace, cfg LoopConfig, rng *rand.Rand) *trace.Trace {
	out := &trace.Trace{Requests: append([]trace.Request(nil), base.Requests...)}
	now := int64(0)
	if n := len(out.Requests); n > 0 {
		now = out.Requests[n-1].Time
	}
	const loopBase = uint64(1) << 59
	for c := 0; c < cfg.Cycles; c++ {
		for o := 0; o < cfg.Objects; o++ {
			now++
			out.Requests = append(out.Requests, trace.Request{
				Time: now,
				ID:   trace.ObjectID(loopBase + uint64(o)),
				Size: cfg.ObjectSize,
				Cost: float64(cfg.ObjectSize),
			})
		}
	}
	return out
}
