package gen

// Presets approximating the content mixes discussed in the paper's
// introduction: web pages, social photos with a long tail, video segments,
// and large software downloads with flash-crowd spikes. They stand in for
// the proprietary production trace (see DESIGN.md, substitutions).

// CDNMix returns the default mixed-content CDN workload used throughout
// the experiments: four content classes with strongly heterogeneous sizes
// plus one mid-trace flash crowd on the software-download class and one
// cold load-balancer shift on the web class.
func CDNMix(requests int, seed int64) Config {
	return Config{
		Requests: requests,
		Seed:     seed,
		Classes: []ContentClass{
			{
				Name:      "web",
				Objects:   1 << 17,
				ZipfAlpha: 0.9,
				// Median ~12 KB bodies, spread over ~1–200 KB.
				Sizes:  LogNormalSize{Mu: 9.4, Sigma: 1.0, Min: 128, Max: 1 << 20},
				Weight: 0.45,
			},
			{
				Name:      "photo",
				Objects:   1 << 18,
				ZipfAlpha: 0.7, // long tail of rarely requested photos
				Sizes:     LogNormalSize{Mu: 10.6, Sigma: 0.7, Min: 1 << 10, Max: 1 << 21},
				Weight:    0.30,
			},
			{
				Name:      "video",
				Objects:   1 << 14,
				ZipfAlpha: 1.05,
				// 2–8 MB segments.
				Sizes:  UniformSize{Min: 2 << 20, Max: 8 << 20},
				Weight: 0.20,
			},
			{
				Name:      "download",
				Objects:   1 << 10,
				ZipfAlpha: 1.2,
				// Heavy Pareto tail up to 256 MB installers.
				Sizes:  ParetoSize{Alpha: 1.2, Min: 4 << 20, Max: 256 << 20},
				Weight: 0.05,
			},
		},
		Drift: []DriftEvent{
			// "iOS update day": download traffic spikes to dominate.
			{At: 0.5, Class: 3, NewWeight: 0.6},
			// Spike subsides.
			{At: 0.65, Class: 3, NewWeight: 0.05},
			// Load balancer shifts a new user population onto this
			// server: the hot web set changes entirely.
			{At: 0.8, Class: 0, NewWeight: 0.45, Reshuffle: true},
		},
	}
}

// WebMix returns a single-class web workload with small objects and mild
// skew; useful for quick tests and the Fig 1 RL-baseline comparison.
func WebMix(requests int, seed int64) Config {
	return Config{
		Requests: requests,
		Seed:     seed,
		Classes: []ContentClass{{
			Name:      "web",
			Objects:   1 << 15,
			ZipfAlpha: 0.85,
			Sizes:     LogNormalSize{Mu: 9.0, Sigma: 1.2, Min: 64, Max: 1 << 22},
			Weight:    1,
		}},
	}
}

// UnitMix returns a unit-size workload (all objects 1 byte). With unit
// sizes OPT reduces to Belady's algorithm, which anchors the OPT
// implementation's correctness tests.
func UnitMix(requests int, seed int64, objects uint64, alpha float64) Config {
	return Config{
		Requests: requests,
		Seed:     seed,
		Classes: []ContentClass{{
			Name:      "unit",
			Objects:   objects,
			ZipfAlpha: alpha,
			Sizes:     FixedSize{Size: 1},
			Weight:    1,
		}},
	}
}
