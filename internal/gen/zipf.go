// Package gen generates synthetic CDN request traces. It substitutes for
// the proprietary 500M-request production trace used in the paper's
// evaluation: the generator reproduces the trace properties the paper's
// experiments depend on — Zipf-skewed popularity, highly variable object
// sizes across content classes, a long tail of one-hit wonders, and
// temporal drift (flash crowds, load-balancer traffic shifts).
//
// All randomness is seeded, so traces are reproducible.
package gen

import (
	"math"
	"math/rand"
)

// Zipf samples ranks 1..N with P(rank=k) proportional to 1/k^alpha.
//
// The math/rand Zipf implementation requires alpha > 1; CDN popularity
// commonly has alpha in [0.6, 1.1], so we implement the rejection-inversion
// sampler of Hörmann & Derflinger (1996), which supports any alpha > 0.
type Zipf struct {
	rng              *rand.Rand
	n                uint64
	alpha            float64
	hIntegralX1      float64
	hIntegralN       float64
	s                float64
	uniformToSurface float64 // cached hIntegralN - hIntegralX1
}

// NewZipf returns a Zipf sampler over ranks [1, n] with skew alpha > 0.
// The sampler panics if n == 0 or alpha <= 0.
func NewZipf(rng *rand.Rand, alpha float64, n uint64) *Zipf {
	if n == 0 {
		panic("gen: NewZipf requires n > 0")
	}
	if alpha <= 0 {
		panic("gen: NewZipf requires alpha > 0")
	}
	z := &Zipf{rng: rng, n: n, alpha: alpha}
	z.hIntegralX1 = z.hIntegral(1.5) - 1.0
	z.hIntegralN = z.hIntegral(float64(n) + 0.5)
	z.s = 2.0 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2.0))
	z.uniformToSurface = z.hIntegralN - z.hIntegralX1
	return z
}

// Next returns a rank in [1, n].
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralX1 + z.rng.Float64()*z.uniformToSurface
		x := z.hIntegralInverse(u)
		k := math.Round(x)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.s || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k)
		}
	}
}

// h is the unnormalized density 1/x^alpha.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.alpha * math.Log(x))
}

// hIntegral is the antiderivative of h.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.alpha)*logX) * logX
}

// hIntegralInverse inverts hIntegral.
func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * (1 - z.alpha)
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a stable series near 0.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-x*0.25))
}

// helper2 computes expm1(x)/x with a stable series near 0.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+x*0.25))
}
