// Package cliutil holds small helpers shared by the cmd/ binaries.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBytes parses a human-friendly byte size: a plain integer, or an
// integer/decimal with a k/m/g/t suffix (binary units), case-insensitive,
// with an optional trailing "b" or "ib" (e.g. "64m", "1.5G", "256MiB").
func ParseBytes(s string) (int64, error) {
	in := strings.TrimSpace(strings.ToLower(s))
	if in == "" {
		return 0, fmt.Errorf("cliutil: empty size")
	}
	mult := int64(1)
	for _, sfx := range []struct {
		suffix string
		mult   int64
	}{
		{"tib", 1 << 40}, {"tb", 1 << 40}, {"t", 1 << 40},
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"b", 1},
	} {
		if strings.HasSuffix(in, sfx.suffix) {
			mult = sfx.mult
			in = strings.TrimSuffix(in, sfx.suffix)
			break
		}
	}
	in = strings.TrimSpace(in)
	if in == "" {
		return 0, fmt.Errorf("cliutil: size %q has no numeric part", s)
	}
	if f, err := strconv.ParseFloat(in, 64); err == nil {
		if f < 0 {
			return 0, fmt.Errorf("cliutil: negative size %q", s)
		}
		return int64(f * float64(mult)), nil
	}
	return 0, fmt.Errorf("cliutil: cannot parse size %q", s)
}

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.1fTiB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
