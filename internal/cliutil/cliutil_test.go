package cliutil

import "testing"

func TestParseBytes(t *testing.T) {
	tests := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"1234", 1234},
		{"1k", 1024},
		{"1K", 1024},
		{"2kb", 2048},
		{"4KiB", 4096},
		{"64m", 64 << 20},
		{"1g", 1 << 30},
		{"1.5g", 3 << 29},
		{"2t", 2 << 40},
		{"100b", 100},
		{" 8M ", 8 << 20},
	}
	for _, tc := range tests {
		got, err := ParseBytes(tc.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "x", "k", "-5", "-1g", "1.2.3m"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) accepted", in)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		in   int64
		want string
	}{
		{512, "512B"},
		{2048, "2.0KiB"},
		{64 << 20, "64.0MiB"},
		{3 << 29, "1.5GiB"},
		{1 << 41, "2.0TiB"},
	}
	for _, tc := range tests {
		if got := FormatBytes(tc.in); got != tc.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int64{1 << 10, 1 << 20, 1 << 30, 5 << 20} {
		s := FormatBytes(n)
		got, err := ParseBytes(s)
		if err != nil || got != n {
			t.Errorf("round trip %d -> %q -> %d (%v)", n, s, got, err)
		}
	}
}
