package evict

import (
	"math"
	"reflect"
	"testing"

	"lfo/internal/gen"
	"lfo/internal/obs"
	"lfo/internal/policy"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

func genTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	tr, err := gen.Generate(gen.CDNMix(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewEvictorUnknown(t *testing.T) {
	if _, err := NewEvictor("clock", sim.NewStore[Meta](1024), Options{}); err == nil {
		t.Fatal("unknown evictor kind accepted")
	}
	if _, err := New(Config{CacheSize: 1024, Eviction: "clock"}); err == nil {
		t.Fatal("unknown Config.Eviction accepted")
	}
	if _, err := New(Config{CacheSize: 0}); err == nil {
		t.Fatal("zero CacheSize accepted")
	}
}

// TestCacheLRUMatchesPolicyLRU pins the combined cache's plumbing against
// the standalone LRU policy: with admit-all admission and the lru
// evictor, every decision must agree byte-for-byte.
func TestCacheLRUMatchesPolicyLRU(t *testing.T) {
	tr := genTrace(t, 20000, 7)
	const size = 4 << 20

	c, err := New(Config{CacheSize: size, Eviction: "lru"})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := policy.New("lru", size, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Requests {
		if got, want := c.Request(r), ref.Request(r); got != want {
			t.Fatalf("request %d (id %d): cache hit=%v, policy LRU hit=%v", i, r.ID, got, want)
		}
	}
}

// TestCacheGDSFMatchesPolicyGDSF pins the gdsf evictor against the
// standalone GDSF policy: same priorities, same aging, same
// deterministic pq tie-breaks.
func TestCacheGDSFMatchesPolicyGDSF(t *testing.T) {
	tr := genTrace(t, 20000, 11)
	const size = 4 << 20

	c, err := New(Config{CacheSize: size, Eviction: "gdsf"})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := policy.New("gdsf", size, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Requests {
		if got, want := c.Request(r), ref.Request(r); got != want {
			t.Fatalf("request %d (id %d): cache hit=%v, policy GDSF hit=%v", i, r.ID, got, want)
		}
	}
}

// TestLearnedBootstrapIsExactLRUWhenSmall: before any model deploys the
// learned evictor falls back to oldest-LastAccess, and with the resident
// set at or under K the candidate scan is exhaustive — so on a trace
// whose resident count never exceeds K the bootstrap must equal LRU
// exactly.
func TestLearnedBootstrapIsExactLRUWhenSmall(t *testing.T) {
	// 1 KiB objects in a 16 KiB cache: at most 16 residents, K = 64.
	const size = 16 << 10
	learned, err := New(Config{CacheSize: size, Eviction: "learned", WindowSize: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	lru, err := New(Config{CacheSize: size, Eviction: "lru"})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic mixed stream with distinct times.
	for i := 0; i < 5000; i++ {
		id := trace.ObjectID((i * 7919) % 64)
		r := trace.Request{Time: int64(i), ID: id, Size: 1 << 10, Cost: 1}
		if got, want := learned.Request(r), lru.Request(r); got != want {
			t.Fatalf("request %d (id %d): learned bootstrap hit=%v, lru hit=%v", i, id, got, want)
		}
	}
	if learned.Windows() != 0 {
		t.Fatalf("bootstrap cache trained %d windows, want 0", learned.Windows())
	}
}

func TestBuildDataset(t *testing.T) {
	reqs := []trace.Request{
		{Time: 10, ID: 1, Size: 100, Cost: 2},
		{Time: 20, ID: 2, Size: 200, Cost: 3},
		{Time: 35, ID: 1, Size: 100, Cost: 2},
		{Time: 60, ID: 1, Size: 100, Cost: 5},
	}
	admit := []bool{false, true, true, false}
	ds := BuildDataset(reqs, admit)
	if ds.Len() != 4 || ds.Dim() != Dim {
		t.Fatalf("dataset %dx%d, want 4x%d", ds.Len(), ds.Dim(), Dim)
	}
	row := func(i int) []float64 { return ds.Row(i) }

	// Row 0: first sight of object 1 — no history.
	if r := row(0); r[FeatSize] != 100 || r[FeatCost] != 2 || r[FeatFreq] != 1 ||
		!math.IsNaN(r[FeatAge]) || !math.IsNaN(r[FeatIdle]) {
		t.Errorf("row 0 = %v", r)
	}
	// Row 2: object 1 again — age 25, idle 25, freq 2.
	if r := row(2); r[FeatFreq] != 2 || r[FeatAge] != 25 || r[FeatIdle] != 25 {
		t.Errorf("row 2 = %v", r)
	}
	// Row 3: object 1 — age 50, idle 25, freq 3, current cost 5.
	if r := row(3); r[FeatFreq] != 3 || r[FeatAge] != 50 || r[FeatIdle] != 25 || r[FeatCost] != 5 {
		t.Errorf("row 3 = %v", r)
	}
	for i, want := range []float64{0, 1, 1, 0} {
		if ds.Label(i) != want {
			t.Errorf("label %d = %v, want %v", i, ds.Label(i), want)
		}
	}
}

func TestBuildDatasetShortLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	BuildDataset(make([]trace.Request, 3), make([]bool, 2))
}

// TestCacheLearnedRetrainsAndStaysDeterministic drives the learned cache
// across several training windows and pins (a) the ranker actually
// deploys, (b) reruns are byte-identical, and (c) the retrain worker
// count does not leak into results.
func TestCacheLearnedRetrainsAndStaysDeterministic(t *testing.T) {
	tr := genTrace(t, 24000, 3)

	run := func(workers int) (*sim.Metrics, int) {
		c, err := New(Config{
			CacheSize:  2 << 20,
			Eviction:   "learned",
			WindowSize: 6000,
			Workers:    workers,
			Seed:       42,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := sim.Run(tr, c, sim.Options{})
		return m, c.Windows()
	}

	m1, w1 := run(1)
	if w1 < 3 {
		t.Fatalf("completed %d windows, want >= 3", w1)
	}
	if m1.Hits == 0 || m1.Hits == m1.Requests {
		t.Fatalf("degenerate hit count %d/%d", m1.Hits, m1.Requests)
	}
	m2, _ := run(1)
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("rerun diverged: %+v vs %+v", m1, m2)
	}
	m4, _ := run(4)
	if !reflect.DeepEqual(m1, m4) {
		t.Errorf("workers=4 diverged from workers=1: %+v vs %+v", m1, m4)
	}
}

// TestSeedChangesSampledVictims sanity-checks that the sampler seed is
// wired through: with more residents than K (so the sampled path, not
// the exhaustive scan, runs) different seeds must pick different victim
// sequences, while equal seeds must agree exactly.
func TestSeedChangesSampledVictims(t *testing.T) {
	victims := func(seed int64) []trace.ObjectID {
		store := sim.NewStore[Meta](1 << 20)
		l := newLearned(store, Options{Seed: seed})
		for i := 0; i < 1000; i++ {
			e := store.Add(trace.ObjectID(i), 256)
			l.OnAdmit(e, trace.Request{Time: int64(i), ID: trace.ObjectID(i), Size: 256, Cost: 1})
		}
		out := make([]trace.ObjectID, 20)
		for i := range out {
			// Victim does not mutate the store, but each call advances the
			// sampler, so the sequence exercises 20 distinct candidate sets.
			out[i] = l.Victim(int64(1000 + i))
		}
		return out
	}
	a, b := victims(1), victims(1)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if c := victims(999); reflect.DeepEqual(a, c) {
		t.Errorf("seeds 1 and 999 picked identical victim sequences: %v", a)
	}
}

// TestCacheOversizedAndAdmitters covers the oversized-object guard and
// the Admitter hook for every evictor kind.
func TestCacheOversizedAndAdmitters(t *testing.T) {
	for _, kind := range []string{"learned", "gdsf", "lru"} {
		t.Run(kind, func(t *testing.T) {
			const size = 1 << 20
			c, err := New(Config{
				CacheSize:    size,
				Eviction:     kind,
				Admitter:     policy.NewSecondHitCensor(1024),
				AdmitterName: "secondhit",
				WindowSize:   1 << 30,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := c.Name(), "secondhit+"+kind; got != want {
				t.Errorf("Name = %q, want %q", got, want)
			}
			// Oversized request against the empty cache: plain miss.
			if c.Request(trace.Request{ID: 999, Size: size + 1, Cost: 1}) {
				t.Error("oversized request hit")
			}
			// Second-hit admission: first request observes, second admits,
			// third hits.
			r := trace.Request{Time: 1, ID: 1, Size: 1024, Cost: 1}
			if c.Request(r) {
				t.Error("unseen object hit")
			}
			r.Time = 2
			c.Request(r)
			r.Time = 3
			if !c.Request(r) {
				t.Error("admitted object missed")
			}
			// Fill past capacity to force evictions; accounting must hold.
			for i := 0; i < 4096; i++ {
				c.Request(trace.Request{Time: int64(10 + i), ID: trace.ObjectID(100 + i%2048), Size: 4 << 10, Cost: 1})
			}
			if used := sizeOf(c); used > size {
				t.Errorf("store overfull: %d > %d", used, size)
			}
		})
	}
}

func sizeOf(c *Cache) int64 { return c.store.Used() }

// TestEvictObsMetrics pins the observability wiring: victim counters,
// size tiers, candidate counters, and the latency histogram.
func TestEvictObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Config{CacheSize: 256 << 10, Eviction: "learned", WindowSize: 1 << 30, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	// 8 KiB objects: 32 fit; drive 256 distinct so evictions happen.
	for i := 0; i < 256; i++ {
		c.Request(trace.Request{Time: int64(i), ID: trace.ObjectID(i), Size: 8 << 10, Cost: 1})
	}
	victims := reg.Counter("evict_victims_total").Value()
	if victims == 0 {
		t.Fatal("no victims recorded")
	}
	if small := reg.Counter("evict_victims_small_total").Value(); small != victims {
		t.Errorf("small-tier victims %d != total %d (all objects are 8KiB)", small, victims)
	}
	if sets := reg.Counter("evict_candidate_sets_total").Value(); sets != victims {
		t.Errorf("candidate sets %d != victims %d", sets, victims)
	}
	if cands := reg.Counter("evict_candidates_total").Value(); cands < victims {
		t.Errorf("candidates %d < victims %d", cands, victims)
	}
	if boots := reg.Counter("evict_bootstrap_picks_total").Value(); boots != victims {
		t.Errorf("bootstrap picks %d != victims %d (no model ever deployed)", boots, victims)
	}
	if reg.Counter("evict_cache_requests_total").Value() != 256 {
		t.Error("request counter unwired")
	}
}

// TestVictimTiers pins the size-tier classification boundaries.
func TestVictimTiers(t *testing.T) {
	reg := obs.NewRegistry()
	m := newEvictMetrics(reg)
	m.observeVictim(tierSmallMax - 1)
	m.observeVictim(tierSmallMax)
	m.observeVictim(tierMediumMax - 1)
	m.observeVictim(tierMediumMax)
	m.observeVictim(1 << 30)
	if got := reg.Counter("evict_victims_small_total").Value(); got != 1 {
		t.Errorf("small = %d, want 1", got)
	}
	if got := reg.Counter("evict_victims_medium_total").Value(); got != 2 {
		t.Errorf("medium = %d, want 2", got)
	}
	if got := reg.Counter("evict_victims_large_total").Value(); got != 2 {
		t.Errorf("large = %d, want 2", got)
	}
	if got := reg.Counter("evict_victims_total").Value(); got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
}

// TestLearnedSamplerDeterminism: the SplitMix64 stream must be a pure
// function of the seed.
func TestLearnedSamplerDeterminism(t *testing.T) {
	a := newLearned(sim.NewStore[Meta](1024), Options{Seed: 9})
	b := newLearned(sim.NewStore[Meta](1024), Options{Seed: 9})
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := newLearned(sim.NewStore[Meta](1024), Options{Seed: 10})
	same := 0
	for i := 0; i < 100; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}
