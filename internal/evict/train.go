package evict

import (
	"lfo/internal/gbdt"
	"lfo/internal/trace"
)

// BuildDataset turns one labeled trace window into an eviction training
// set: one row per request, carrying the eviction features the ranker
// would see for that object at that moment, labeled with OPT's decision
// (1 = OPT caches the object here, so it is a poor victim; 0 = OPT does
// not, the ideal victim). This is the same label stream LFO's admission
// model trains on — one offline solve supervises both models.
//
// Features are reconstructed by replaying the window against per-object
// state, mirroring what the online Meta would hold: frequency counts the
// object's requests so far in the window (+1 for the current one, as a
// resident's Freq includes its admission), age and idle time measure
// back to the window-local first and most recent request. First-seen
// objects have no history, so age and idle are the missing-value marker
// (NaN), which the learner routes down a default branch — exactly how
// internal/features marks unknown inter-arrival gaps.
func BuildDataset(reqs []trace.Request, admit []bool) *gbdt.Dataset {
	if len(admit) < len(reqs) {
		panic("evict: label slice shorter than request window")
	}
	type state struct {
		first int64
		last  int64
		count int64
	}
	seen := make(map[trace.ObjectID]state, len(reqs)/4+1)
	rows := make([]float64, len(reqs)*Dim)
	labels := make([]float64, len(reqs))
	for i, r := range reqs {
		row := rows[i*Dim : (i+1)*Dim]
		s, ok := seen[r.ID]
		row[FeatSize] = float64(r.Size)
		row[FeatCost] = r.Cost
		row[FeatFreq] = float64(s.count + 1)
		if ok {
			row[FeatAge] = float64(r.Time - s.first)
			row[FeatIdle] = float64(r.Time - s.last)
		} else {
			s.first = r.Time
			row[FeatAge] = nan
			row[FeatIdle] = nan
		}
		s.last = r.Time
		s.count++
		seen[r.ID] = s
		if admit[i] {
			labels[i] = 1
		}
	}
	return gbdt.DatasetFromMatrix(Dim, rows, labels)
}

// Train fits an eviction ranker from one OPT-labeled window.
func Train(reqs []trace.Request, admit []bool, params gbdt.Params) (*gbdt.Model, error) {
	return gbdt.Train(BuildDataset(reqs, admit), params)
}
