package evict

import (
	"testing"

	"lfo/internal/gbdt"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// trainedRanker fits a small real model so the benchmark exercises the
// flat kernel, not the bootstrap fallback.
func trainedRanker(b *testing.B) *gbdt.Model {
	b.Helper()
	reqs := make([]trace.Request, 2000)
	admit := make([]bool, len(reqs))
	for i := range reqs {
		id := trace.ObjectID(i % 97)
		reqs[i] = trace.Request{Time: int64(i), ID: id, Size: int64(id%13+1) << 10, Cost: 1}
		admit[i] = id%3 != 0
	}
	params := gbdt.DefaultParams()
	params.Workers = 1
	m, err := Train(reqs, admit, params)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkPickVictim measures one learned candidate ranking: sample K=64
// residents, build K feature rows, one PredictMatrix call, take the
// minimum. This is the eviction hot path and is pinned at 0 allocs/op in
// testdata/alloc_budgets.txt.
func BenchmarkPickVictim(b *testing.B) {
	store := sim.NewStore[Meta](64 << 20)
	l := newLearned(store, Options{Seed: 1})
	l.SetModel(trainedRanker(b))
	for i := 0; i < 4096; i++ {
		e := store.Add(trace.ObjectID(i), 8<<10)
		l.OnAdmit(e, trace.Request{Time: int64(i), ID: trace.ObjectID(i), Size: 8 << 10, Cost: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Victim(int64(4096 + i))
	}
}

// BenchmarkEvictCacheRequest drives the combined cache at steady-state
// eviction churn with the learned evictor (trained model deployed), the
// end-to-end per-request cost of learned eviction.
func BenchmarkEvictCacheRequest(b *testing.B) {
	c, err := New(Config{CacheSize: 8 << 20, Eviction: "learned", WindowSize: 1 << 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	c.learned.SetModel(trainedRanker(b))
	const universe = 4096
	reqs := make([]trace.Request, universe)
	for i := range reqs {
		reqs[i] = trace.Request{Time: int64(i), ID: trace.ObjectID(i), Size: 8 << 10, Cost: 1}
	}
	for _, r := range reqs {
		c.Request(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := reqs[i%universe]
		r.Time = int64(universe + i)
		c.Request(r)
	}
}
