package evict

import (
	"lfo/internal/gbdt"
	"lfo/internal/obs"
	"lfo/internal/pq"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// Learned is the sampled-candidate learned evictor: Victim draws K
// uniform candidates from the store's dense index, scores them with the
// deployed ranker in one PredictMatrix call, and returns the minimum
// (the object the model believes OPT is least likely to keep). Before
// the first model deploys it falls back to sampled-LRU: the candidate
// with the oldest LastAccess.
//
// All candidate buffers are preallocated at construction, so a pick is
// allocation-free; the sampler is a seeded SplitMix64 stream, so victim
// sequences are byte-reproducible for a given seed.
type Learned struct {
	store  *sim.Store[Meta]
	model  *gbdt.Model
	k      int
	rng    uint64
	rows   []float64
	scores []float64
	cands  []*sim.StoreEntry[Meta]
	m      metrics
}

func newLearned(store *sim.Store[Meta], opts Options) *Learned {
	k := opts.Candidates
	if k <= 0 {
		k = DefaultCandidates
	}
	return &Learned{
		store:  store,
		k:      k,
		rng:    uint64(opts.Seed),
		rows:   make([]float64, k*Dim),
		scores: make([]float64, k),
		cands:  make([]*sim.StoreEntry[Meta], k),
		m:      newEvictMetrics(opts.Obs),
	}
}

// Name implements Evictor.
func (l *Learned) Name() string { return "learned" }

// OnAdmit implements Evictor.
func (l *Learned) OnAdmit(e *sim.StoreEntry[Meta], r trace.Request) {
	e.Payload = Meta{AdmitTime: r.Time, LastAccess: r.Time, Freq: 1, Cost: r.Cost}
}

// OnHit implements Evictor.
func (l *Learned) OnHit(e *sim.StoreEntry[Meta], r trace.Request) {
	e.Payload.LastAccess = r.Time
	e.Payload.Freq++
	e.Payload.Cost = r.Cost
}

// OnRemove implements Evictor.
func (l *Learned) OnRemove(e *sim.StoreEntry[Meta]) {}

// SetModel deploys a trained eviction ranker. The swap is atomic with
// respect to requests (the owning cache is single-threaded), so every
// subsequent Victim ranks with the new model.
func (l *Learned) SetModel(m *gbdt.Model) {
	l.model = m
	l.m.modelSwaps.Inc()
}

// Model returns the deployed ranker (nil during bootstrap).
func (l *Learned) Model() *gbdt.Model { return l.model }

// Victim implements Evictor: the observability wrapper around the
// annotated zero-allocation pick.
func (l *Learned) Victim(now int64) trace.ObjectID {
	sc := obs.Start(l.m.rankNS)
	id, n := l.pickVictim(now)
	sc.Stop()
	l.m.candidateSets.Inc()
	l.m.candidates.Add(int64(n))
	if l.model == nil {
		l.m.bootstrapPicks.Inc()
	}
	return id
}

// pickVictim samples min(K, Len) candidates with replacement and returns
// the lowest-scored one (first-wins on ties, so results are independent
// of scoring order). This is the per-eviction hot path: no map lookups,
// no allocation — candidate rows are built straight from entry metadata
// and scored with the flat kernel's batch-major walk at workers=1.
//
//lfo:hotpath
func (l *Learned) pickVictim(now int64) (trace.ObjectID, int) {
	n := l.k
	resident := l.store.Len()
	if resident <= n {
		// Small resident set: scan it exhaustively instead of sampling
		// with replacement (which could repeat entries and miss the true
		// minimum). The pick is then exact, not approximate.
		n = resident
		for i := 0; i < n; i++ {
			e := l.store.At(i)
			l.cands[i] = e
			featuresInto(l.rows[i*Dim:(i+1)*Dim], e.Size, &e.Payload, now)
		}
	} else {
		for i := 0; i < n; i++ {
			e := l.store.At(l.intn(resident))
			l.cands[i] = e
			featuresInto(l.rows[i*Dim:(i+1)*Dim], e.Size, &e.Payload, now)
		}
	}
	best := 0
	if l.model == nil {
		// Bootstrap: sampled-LRU (oldest last access wins).
		for i := 1; i < n; i++ {
			if l.cands[i].Payload.LastAccess < l.cands[best].Payload.LastAccess {
				best = i
			}
		}
		return l.cands[best].ID, n
	}
	l.model.PredictMatrix(l.rows[:n*Dim], l.scores[:n], 1)
	for i := 1; i < n; i++ {
		if l.scores[i] < l.scores[best] {
			best = i
		}
	}
	return l.cands[best].ID, n
}

// next advances the SplitMix64 stream (same mixer as the fleet ring).
//
//lfo:hotpath
func (l *Learned) next() uint64 {
	l.rng += 0x9E3779B97F4A7C15
	x := l.rng
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// intn returns a uniform-ish index in [0, n); the modulo bias is
// negligible against 64-bit outputs and irrelevant for victim sampling.
//
//lfo:hotpath
func (l *Learned) intn(n int) int {
	return int(l.next() % uint64(n))
}

// gdsfEvictor is Greedy-Dual-Size-Frequency over Meta: priority
// age + freq*cost/size, evicting the minimum and aging to the evicted
// priority. It mirrors internal/policy's GDSF exactly (same priorities,
// same deterministic tie-breaks), so the standalone policy and the
// combined cache agree byte-for-byte.
type gdsfEvictor struct {
	store *sim.Store[Meta]
	q     *pq.Queue
	age   float64
}

func newGDSFEvictor(store *sim.Store[Meta]) *gdsfEvictor {
	return &gdsfEvictor{store: store, q: pq.New()}
}

func (g *gdsfEvictor) Name() string { return "gdsf" }

func (g *gdsfEvictor) priority(m *Meta, size int64) float64 {
	return g.age + float64(m.Freq)*m.Cost/float64(size)
}

func (g *gdsfEvictor) OnAdmit(e *sim.StoreEntry[Meta], r trace.Request) {
	e.Payload = Meta{AdmitTime: r.Time, LastAccess: r.Time, Freq: 1, Cost: r.Cost}
	g.q.Push(e.ID, g.priority(&e.Payload, e.Size))
}

func (g *gdsfEvictor) OnHit(e *sim.StoreEntry[Meta], r trace.Request) {
	e.Payload.LastAccess = r.Time
	e.Payload.Freq++
	e.Payload.Cost = r.Cost
	g.q.Update(e.ID, g.priority(&e.Payload, e.Size))
}

func (g *gdsfEvictor) OnRemove(e *sim.StoreEntry[Meta]) {
	g.q.Remove(e.ID)
}

func (g *gdsfEvictor) Victim(now int64) trace.ObjectID {
	id, key := g.q.Min()
	g.age = key // dynamic aging: L := key of the evicted object
	return id
}

func (g *gdsfEvictor) SetModel(m *gbdt.Model) {}

// lruEvictor threads an intrusive recency list through the Meta links.
type lruEvictor struct {
	store      *sim.Store[Meta]
	head, tail *sim.StoreEntry[Meta]
}

func newLRUEvictor(store *sim.Store[Meta]) *lruEvictor {
	return &lruEvictor{store: store}
}

func (l *lruEvictor) Name() string { return "lru" }

func (l *lruEvictor) OnAdmit(e *sim.StoreEntry[Meta], r trace.Request) {
	e.Payload = Meta{AdmitTime: r.Time, LastAccess: r.Time, Freq: 1, Cost: r.Cost}
	l.pushFront(e)
}

func (l *lruEvictor) OnHit(e *sim.StoreEntry[Meta], r trace.Request) {
	e.Payload.LastAccess = r.Time
	e.Payload.Freq++
	e.Payload.Cost = r.Cost
	l.moveToFront(e)
}

func (l *lruEvictor) OnRemove(e *sim.StoreEntry[Meta]) {
	l.remove(e)
}

func (l *lruEvictor) Victim(now int64) trace.ObjectID {
	return l.tail.ID
}

func (l *lruEvictor) SetModel(m *gbdt.Model) {}

func (l *lruEvictor) pushFront(e *sim.StoreEntry[Meta]) {
	e.Payload.prev = nil
	e.Payload.next = l.head
	if l.head != nil {
		l.head.Payload.prev = e
	} else {
		l.tail = e
	}
	l.head = e
}

func (l *lruEvictor) remove(e *sim.StoreEntry[Meta]) {
	if e.Payload.prev != nil {
		e.Payload.prev.Payload.next = e.Payload.next
	} else {
		l.head = e.Payload.next
	}
	if e.Payload.next != nil {
		e.Payload.next.Payload.prev = e.Payload.prev
	} else {
		l.tail = e.Payload.prev
	}
	e.Payload.prev, e.Payload.next = nil, nil
}

func (l *lruEvictor) moveToFront(e *sim.StoreEntry[Meta]) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}
