// Package evict implements learned sampled-candidate eviction, closing
// the admission×eviction loop around the paper's admission-only LFO.
//
// The design follows the minimal-overhead learned-eviction line of work
// (Cold-RL; Yang/Berger/Li/Lloyd): instead of maintaining a total order
// over residents, eviction draws K uniform candidates from the store's
// dense entry index (O(K), allocation-free), scores them with a boosted-
// tree ranker over lightweight per-object features (size, cost,
// frequency, age, time-since-last-access), and evicts the minimum. The
// ranker is trained from the same OPT window labels that train LFO's
// admission model: an object OPT would not cache now is the ideal
// eviction victim, so one offline solve per window labels both models.
//
// The package provides the Evictor strategy interface with learned, GDSF,
// and LRU implementations over a shared Meta payload (so internal/core
// can swap eviction mechanisms under LFO admission), plus a standalone
// Cache that pairs any Admitter (admit-all, SecondHitCensor, ...) with
// any Evictor and retrains the eviction ranker on the same window
// cadence — the {admission}×{eviction} ablation grid's building block.
package evict

import (
	"fmt"
	"math"

	"lfo/internal/gbdt"
	"lfo/internal/obs"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// Dim is the eviction feature vector width: size, cost, frequency, age,
// and idle time. The features are deliberately cheap — everything is
// already in the entry's Meta, so building a candidate row is five
// stores, no map lookups.
const Dim = 5

// Feature indices into an eviction row.
const (
	FeatSize = iota // object size in bytes
	FeatCost        // retrieval cost at the last access
	FeatFreq        // accesses during the current residency
	FeatAge         // time since admission (trace time units)
	FeatIdle        // time since last access
)

// DefaultCandidates is the sampled candidate set size K. 64 keeps one
// PredictMatrix block per eviction (the flat kernel's batch-major walk is
// sized in 64-row blocks) while sampling enough of the resident set that
// the empirical victim quality is close to a full scan.
const DefaultCandidates = 64

// Meta is the per-object payload every evictor shares. The embedded
// intrusive list links serve the LRU evictor; the scalar fields double as
// the learned ranker's feature source.
type Meta struct {
	// AdmitTime is the trace time the object was admitted.
	AdmitTime int64
	// LastAccess is the trace time of the most recent hit (or admission).
	LastAccess int64
	// Freq counts accesses during the current residency (1 at admission).
	Freq int64
	// Cost is the retrieval cost observed at the last access.
	Cost float64

	prev, next *sim.StoreEntry[Meta] // intrusive LRU list
}

// featuresInto fills row (len >= Dim) with the entry's eviction features
// at trace time now.
func featuresInto(row []float64, size int64, m *Meta, now int64) {
	row[FeatSize] = float64(size)
	row[FeatCost] = m.Cost
	row[FeatFreq] = float64(m.Freq)
	row[FeatAge] = float64(now - m.AdmitTime)
	row[FeatIdle] = float64(now - m.LastAccess)
}

// Evictor is an eviction strategy over a store of Meta payloads. The
// owning cache calls the On* hooks as objects move through the store and
// Victim when it must free space; implementations keep their auxiliary
// state (heap, list, model) consistent through those hooks alone.
type Evictor interface {
	// Name identifies the strategy in reports.
	Name() string
	// OnAdmit initializes the entry's metadata right after Store.Add.
	OnAdmit(e *sim.StoreEntry[Meta], r trace.Request)
	// OnHit updates the entry's metadata on a cache hit.
	OnHit(e *sim.StoreEntry[Meta], r trace.Request)
	// OnRemove tears down the entry's metadata right before Store.Remove
	// (called for ranked evictions and admission-driven drops alike).
	OnRemove(e *sim.StoreEntry[Meta])
	// Victim returns the object to evict next at trace time now. The
	// store must be non-empty; Victim never fails.
	Victim(now int64) trace.ObjectID
	// SetModel deploys a trained eviction ranker. Only the learned
	// evictor uses it; the heuristics ignore the call.
	SetModel(m *gbdt.Model)
}

// NewEvictor constructs the named eviction strategy over the store.
// Kinds: "learned" (sampled-candidate ranker), "gdsf", "lru".
func NewEvictor(kind string, store *sim.Store[Meta], opts Options) (Evictor, error) {
	switch kind {
	case "learned":
		return newLearned(store, opts), nil
	case "gdsf":
		return newGDSFEvictor(store), nil
	case "lru":
		return newLRUEvictor(store), nil
	default:
		return nil, fmt.Errorf("evict: unknown evictor %q (want learned, gdsf, or lru)", kind)
	}
}

// Options tunes evictor construction.
type Options struct {
	// Candidates is the learned evictor's sample size K; 0 means
	// DefaultCandidates.
	Candidates int
	// Seed seeds the learned evictor's candidate sampler.
	Seed int64
	// Obs, when set, records eviction metrics (ranker latency, candidate
	// counts, victims by size tier, model swaps); nil disables recording
	// at zero cost.
	Obs *obs.Registry
}

// Victim size-tier boundaries for the victims-by-tier counters.
const (
	tierSmallMax  = 64 << 10 // < 64 KiB
	tierMediumMax = 1 << 20  // < 1 MiB
)

// metrics bundles the package's obs handles, resolved once at
// construction; all handles are nil-safe no-ops without a registry.
type metrics struct {
	rankNS         *obs.Histogram
	candidates     *obs.Counter
	candidateSets  *obs.Counter
	bootstrapPicks *obs.Counter
	victims        *obs.Counter
	victimsSmall   *obs.Counter
	victimsMedium  *obs.Counter
	victimsLarge   *obs.Counter
	modelSwaps     *obs.Counter
}

func newEvictMetrics(r *obs.Registry) metrics {
	return metrics{
		rankNS:         r.Histogram("evict_rank_ns", obs.LatencyBounds),
		candidates:     r.Counter("evict_candidates_total"),
		candidateSets:  r.Counter("evict_candidate_sets_total"),
		bootstrapPicks: r.Counter("evict_bootstrap_picks_total"),
		victims:        r.Counter("evict_victims_total"),
		victimsSmall:   r.Counter("evict_victims_small_total"),
		victimsMedium:  r.Counter("evict_victims_medium_total"),
		victimsLarge:   r.Counter("evict_victims_large_total"),
		modelSwaps:     r.Counter("evict_model_swaps_total"),
	}
}

// observeVictim records one eviction in the total and size-tier counters.
func (m *metrics) observeVictim(size int64) {
	m.victims.Inc()
	switch {
	case size < tierSmallMax:
		m.victimsSmall.Inc()
	case size < tierMediumMax:
		m.victimsMedium.Inc()
	default:
		m.victimsLarge.Inc()
	}
}

// VictimMetrics is the exported victims-by-tier recorder for caches
// outside this package that drive an Evictor directly (internal/core's
// delegated eviction modes). It shares counter names with the package's
// internal recording, so grid reports see one set of eviction metrics
// regardless of which cache hosts the evictor.
type VictimMetrics struct {
	m metrics
}

// NewVictimMetrics resolves the victim counters against r (nil-safe).
func NewVictimMetrics(r *obs.Registry) VictimMetrics {
	return VictimMetrics{m: newEvictMetrics(r)}
}

// Observe records one eviction of the given size.
func (v *VictimMetrics) Observe(size int64) {
	v.m.observeVictim(size)
}

// nan is the missing-feature marker shared with internal/features: the
// learner routes NaN down a learned default branch.
var nan = math.NaN()
