package evict

import (
	"fmt"

	"lfo/internal/gbdt"
	"lfo/internal/obs"
	"lfo/internal/opt"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// Admitter is the admission-side strategy interface (the same shape as
// internal/tiered's: policy.SecondHitCensor and tiered's admitters all
// satisfy it structurally). Admit decides; Observe records the request in
// the admitter's history after the decision.
type Admitter interface {
	Admit(r trace.Request, freeBytes int64) (bool, float64)
	Observe(r trace.Request)
}

// Config parameterizes a combined admission×eviction cache.
type Config struct {
	// CacheSize is the capacity in bytes. Required.
	CacheSize int64
	// Admitter decides admission; nil means admit everything.
	Admitter Admitter
	// AdmitterName labels the admission side in Name() ("admit-all" when
	// the Admitter is nil, "custom" otherwise unless set).
	AdmitterName string
	// Eviction selects the eviction strategy: "learned" (default),
	// "gdsf", or "lru".
	Eviction string
	// Candidates is the learned evictor's sample size K (default 64).
	Candidates int
	// Seed seeds the learned evictor's candidate sampler.
	Seed int64
	// WindowSize is the eviction-ranker retrain cadence in requests,
	// matching core's admission window (default 50000). Only the learned
	// evictor trains; heuristic evictors ignore the window entirely.
	WindowSize int
	// OPT configures the offline label solve; OPT.CacheSize is overridden
	// with CacheSize.
	OPT opt.Config
	// GBDT configures the ranker's learner; zero value means
	// gbdt.DefaultParams.
	GBDT gbdt.Params
	// Workers caps OPT/GBDT parallelism at retrain time. Results are
	// byte-identical for any value.
	Workers int
	// Obs, when set, records cache and eviction metrics.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Eviction == "" {
		c.Eviction = "learned"
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 50000
	}
	if c.GBDT.NumIterations == 0 {
		c.GBDT = gbdt.DefaultParams()
	}
	if c.GBDT.Workers == 0 {
		c.GBDT.Workers = c.Workers
	}
	if c.OPT.Workers == 0 {
		c.OPT.Workers = c.Workers
	}
	if c.OPT.Obs == nil {
		c.OPT.Obs = c.Obs
	}
	c.OPT.CacheSize = c.CacheSize
	if c.AdmitterName == "" {
		if c.Admitter == nil {
			c.AdmitterName = "admit-all"
		} else {
			c.AdmitterName = "custom"
		}
	}
	return c
}

// Cache pairs an admission strategy with an eviction strategy over one
// byte-accurate store, and — when the evictor is learned — retrains the
// eviction ranker from OPT labels every WindowSize requests, deploying
// the new model atomically between requests. It implements sim.Policy.
type Cache struct {
	cfg     Config
	store   *sim.Store[Meta]
	evictor Evictor
	learned *Learned // non-nil iff cfg.Eviction == "learned"

	winReqs []trace.Request
	windows int

	m  metrics
	cm cacheMetrics
}

// cacheMetrics are the cache-level handles (the eviction-side handles
// live in metrics, shared with the evictors).
type cacheMetrics struct {
	requests *obs.Counter
	hits     *obs.Counter
	retrains *obs.Counter
	optNS    *obs.Histogram
	trainNS  *obs.Histogram
}

// New returns a combined admission×eviction cache.
func New(cfg Config) (*Cache, error) {
	cfg = cfg.withDefaults()
	if cfg.CacheSize <= 0 {
		return nil, fmt.Errorf("evict: CacheSize must be positive, got %d", cfg.CacheSize)
	}
	if err := cfg.GBDT.Validate(); err != nil {
		return nil, err
	}
	store := sim.NewStore[Meta](cfg.CacheSize)
	ev, err := NewEvictor(cfg.Eviction, store, Options{
		Candidates: cfg.Candidates,
		Seed:       cfg.Seed,
		Obs:        cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:     cfg,
		store:   store,
		evictor: ev,
		m:       newEvictMetrics(cfg.Obs),
		cm: cacheMetrics{
			requests: cfg.Obs.Counter("evict_cache_requests_total"),
			hits:     cfg.Obs.Counter("evict_cache_hits_total"),
			retrains: cfg.Obs.Counter("evict_cache_retrains_total"),
			optNS:    cfg.Obs.Histogram("evict_retrain_opt_ns", obs.LatencyBounds),
			trainNS:  cfg.Obs.Histogram("evict_retrain_train_ns", obs.LatencyBounds),
		},
	}
	c.learned, _ = ev.(*Learned)
	return c, nil
}

// Name implements sim.Policy.
func (c *Cache) Name() string {
	return c.cfg.AdmitterName + "+" + c.evictor.Name()
}

// Windows returns the number of completed eviction-ranker training
// windows (always 0 for heuristic evictors).
func (c *Cache) Windows() int { return c.windows }

// Evictor returns the cache's eviction strategy.
func (c *Cache) Evictor() Evictor { return c.evictor }

// Request implements sim.Policy.
func (c *Cache) Request(r trace.Request) bool {
	c.cm.requests.Inc()
	if c.learned != nil {
		c.winReqs = append(c.winReqs, r)
	}

	hit := false
	if e := c.store.Get(r.ID); e != nil {
		hit = true
		c.cm.hits.Inc()
		c.evictor.OnHit(e, r)
	} else if r.Size <= c.store.Capacity() {
		ok := true
		if c.cfg.Admitter != nil {
			ok, _ = c.cfg.Admitter.Admit(r, c.store.Free())
		}
		if ok {
			for !c.store.Fits(r.Size) {
				id := c.evictor.Victim(r.Time)
				e := c.store.Get(id)
				c.m.observeVictim(e.Size)
				c.evictor.OnRemove(e)
				c.store.Remove(id)
			}
			e := c.store.Add(r.ID, r.Size)
			c.evictor.OnAdmit(e, r)
		}
	}
	if c.cfg.Admitter != nil {
		c.cfg.Admitter.Observe(r)
	}

	if c.learned != nil && len(c.winReqs) >= c.cfg.WindowSize {
		c.retrain()
	}
	return hit
}

// retrain labels the completed window with OPT and fits a fresh eviction
// ranker, deploying it for the next window. Mirrors core's synchronous
// window handoff; since only the ranker (not admission) trains here, the
// round is a single solve plus a fit.
func (c *Cache) retrain() {
	win := &trace.Trace{Requests: c.winReqs}
	sc := obs.Start(c.cm.optNS)
	res, err := opt.Compute(win, c.cfg.OPT)
	sc.Stop()
	if err != nil {
		panic(fmt.Sprintf("evict: OPT computation failed: %v", err))
	}
	sc = obs.Start(c.cm.trainNS)
	model, err := Train(c.winReqs, res.Admit, c.cfg.GBDT)
	sc.Stop()
	if err != nil {
		panic(fmt.Sprintf("evict: training failed: %v", err))
	}
	c.learned.SetModel(model)
	c.winReqs = c.winReqs[:0]
	c.windows++
	c.cm.retrains.Inc()
}
