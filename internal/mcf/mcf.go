// Package mcf implements a minimum-cost flow solver using the successive
// shortest path algorithm with Johnson node potentials (Dijkstra on reduced
// costs). It replaces the LEMON C++ library the paper's prototype uses for
// computing OPT's decisions (§2.1).
//
// The solver supports arbitrary directed graphs with integral capacities and
// integral edge costs, and multiple sources/sinks via per-node supplies.
// Edge costs must be non-negative: the OPT (FOO) graphs built by package opt
// only ever need non-negative costs, and this restriction lets every
// shortest-path search use Dijkstra.
package mcf

import (
	"errors"
	"fmt"
	"math"
)

// Graph is a directed graph with capacities, costs, and node supplies.
// The zero value is not usable; create graphs with NewGraph.
type Graph struct {
	n      int
	supply []int64

	// Edge arrays; forward edge 2k and its residual twin 2k+1.
	to   []int32
	cap  []int64
	cost []int64
	// Adjacency as head/next chains.
	head []int32
	next []int32

	solved bool
}

// NewGraph returns an empty graph with n nodes, numbered 0..n-1.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("mcf: negative node count")
	}
	head := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	return &Graph{n: n, supply: make([]int64, n), head: head}
}

// Reset reuses the graph's arrays for a fresh n-node instance, dropping
// all edges and supplies. Repeated solves over same-shaped problems (the
// per-segment OPT graphs) reuse one Graph instead of reallocating the
// edge arena each time.
func (g *Graph) Reset(n int) {
	if n < 0 {
		panic("mcf: negative node count")
	}
	if cap(g.head) < n {
		g.head = make([]int32, n)
	}
	if cap(g.supply) < n {
		g.supply = make([]int64, n)
	}
	g.head = g.head[:n]
	g.supply = g.supply[:n]
	for i := range g.head {
		g.head[i] = -1
		g.supply[i] = 0
	}
	g.n = n
	g.to = g.to[:0]
	g.cap = g.cap[:0]
	g.cost = g.cost[:0]
	g.next = g.next[:0]
	g.solved = false
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of forward edges added via AddEdge.
func (g *Graph) NumEdges() int { return len(g.to) / 2 }

// AddEdge adds a directed edge from -> to with the given capacity and
// non-negative per-unit cost, returning an edge handle for Flow.
func (g *Graph) AddEdge(from, to int, capacity, cost int64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mcf: AddEdge(%d,%d) out of range [0,%d)", from, to, g.n))
	}
	if capacity < 0 {
		panic("mcf: negative capacity")
	}
	if cost < 0 {
		panic("mcf: negative cost")
	}
	id := len(g.to) / 2
	// Forward edge.
	g.to = append(g.to, int32(to))
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
	g.next = append(g.next, g.head[from])
	g.head[from] = int32(len(g.to) - 1)
	// Residual twin.
	g.to = append(g.to, int32(from))
	g.cap = append(g.cap, 0)
	g.cost = append(g.cost, -cost)
	g.next = append(g.next, g.head[to])
	g.head[to] = int32(len(g.to) - 1)
	return id
}

// SetSupply sets the flow excess of a node: positive for sources, negative
// for sinks. Supplies must sum to zero across the graph for Solve to
// succeed.
func (g *Graph) SetSupply(node int, supply int64) {
	g.supply[node] = supply
}

// AddSupply adds to the flow excess of a node.
func (g *Graph) AddSupply(node int, delta int64) {
	g.supply[node] += delta
}

// Flow returns the flow routed on a forward edge after Solve.
func (g *Graph) Flow(edge int) int64 {
	return g.cap[2*edge+1] // residual capacity of the twin = routed flow
}

// ErrInfeasible is returned when supplies cannot be routed to demands
// within the edge capacities.
var ErrInfeasible = errors.New("mcf: infeasible flow problem")

// ErrUnbalanced is returned when node supplies do not sum to zero.
var ErrUnbalanced = errors.New("mcf: supplies do not sum to zero")

// Solve routes all supply to demand at minimum total cost and returns that
// cost. Solve may be called once per graph. Callers solving many graphs
// should allocate one Solver and reuse it; this convenience wrapper
// allocates fresh scratch every call.
func (g *Graph) Solve() (int64, error) {
	return NewSolver().Solve(g)
}

// Solver holds the successive-shortest-path scratch state (potentials,
// distances, predecessor edges, the Dijkstra heap) so that repeated
// solves — one per OPT window segment — reuse a single allocation instead
// of rebuilding the arrays per graph. A Solver is not safe for concurrent
// use; give each worker its own.
type Solver struct {
	pot      []int64
	dist     []int64
	visited  []bool
	prevEdge []int32
	h        *heap
}

// NewSolver returns an empty solver; scratch grows to fit the largest
// graph it solves and is retained between calls.
func NewSolver() *Solver {
	return &Solver{h: newHeap(0)}
}

// grow sizes the scratch for a graph with nn nodes (including the
// super-source/sink pair) and resets the potentials.
func (s *Solver) grow(nn int) {
	if cap(s.pot) < nn {
		s.pot = make([]int64, nn)
		s.dist = make([]int64, nn)
		s.visited = make([]bool, nn)
		s.prevEdge = make([]int32, nn)
	}
	s.pot = s.pot[:nn]
	s.dist = s.dist[:nn]
	s.visited = s.visited[:nn]
	s.prevEdge = s.prevEdge[:nn]
	for i := range s.pot {
		s.pot[i] = 0
	}
}

// Solve routes all supply to demand at minimum total cost and returns
// that cost. Each graph may be solved once (Solve consumes the residual
// capacities); the solver itself is reusable across graphs.
func (s *Solver) Solve(g *Graph) (int64, error) {
	if g.solved {
		return 0, errors.New("mcf: Solve called twice")
	}
	g.solved = true

	var balance int64
	for _, sup := range g.supply {
		balance += sup
	}
	if balance != 0 {
		return 0, fmt.Errorf("%w: total %d", ErrUnbalanced, balance)
	}

	// Super-source / super-sink reformulation: append two nodes and
	// connect them to every source/sink.
	src, t := g.n, g.n+1
	g.head = append(g.head, -1, -1)
	var totalSupply int64
	for v := 0; v < g.n; v++ {
		if g.supply[v] > 0 {
			g.addInternal(src, v, g.supply[v], 0)
			totalSupply += g.supply[v]
		} else if g.supply[v] < 0 {
			g.addInternal(v, t, -g.supply[v], 0)
		}
	}
	nn := g.n + 2

	s.grow(nn)
	pot, dist := s.pot, s.dist

	var totalCost int64
	routed := int64(0)
	for routed < totalSupply {
		if !s.dijkstra(g, src, t) {
			return 0, fmt.Errorf("%w: %d of %d units unroutable", ErrInfeasible, totalSupply-routed, totalSupply)
		}
		// Update potentials. Dijkstra terminated as soon as t was
		// finalized, so tentative distances beyond dist[t] are not
		// final; clamping to dist[t] preserves the reduced-cost
		// invariant (standard early-termination fix).
		dt := dist[t]
		for v := 0; v < nn; v++ {
			if dist[v] < dt {
				pot[v] += dist[v]
			} else {
				pot[v] += dt
			}
		}
		n, c := s.augment(g, src, t, totalSupply-routed)
		routed += n
		totalCost += c
	}
	return totalCost, nil
}

// dijkstra runs one shortest-path pass from src over reduced costs,
// filling s.dist and s.prevEdge, and reports whether t was reached. One
// pass runs per augmenting path, so this is the solver's hottest loop and
// is held to the zero-allocation discipline.
//
//lfo:hotpath
func (s *Solver) dijkstra(g *Graph, src, t int) bool {
	pot, dist, visited, prevEdge := s.pot, s.dist, s.visited, s.prevEdge
	for i := range dist {
		dist[i] = math.MaxInt64
		visited[i] = false
		prevEdge[i] = -1
	}
	dist[src] = 0
	h := s.h
	h.reset()
	h.push(0, int32(src))
	for h.len() > 0 {
		d, u := h.pop()
		if visited[u] {
			continue
		}
		visited[u] = true
		if int(u) == t {
			break
		}
		for e := g.head[u]; e != -1; e = g.next[e] {
			if g.cap[e] <= 0 {
				continue
			}
			v := g.to[e]
			if visited[v] {
				continue
			}
			nd := d + g.cost[e] + pot[u] - pot[v]
			if nd < dist[v] {
				dist[v] = nd
				prevEdge[v] = e
				h.push(nd, v)
			}
		}
	}
	return visited[t]
}

// augment pushes flow along the predecessor path t..src recorded by
// dijkstra, bounded by remaining, and returns the units routed and their
// cost contribution.
//
//lfo:hotpath
func (s *Solver) augment(g *Graph, src, t int, remaining int64) (int64, int64) {
	prevEdge := s.prevEdge
	bottleneck := remaining
	for v := int32(t); int(v) != src; {
		e := prevEdge[v]
		if g.cap[e] < bottleneck {
			bottleneck = g.cap[e]
		}
		v = g.to[e^1]
	}
	var cost int64
	for v := int32(t); int(v) != src; {
		e := prevEdge[v]
		g.cap[e] -= bottleneck
		g.cap[e^1] += bottleneck
		cost += bottleneck * g.cost[e]
		v = g.to[e^1]
	}
	return bottleneck, cost
}

// addInternal appends an edge without bounds checks; used for the
// super-source/super-sink arcs whose endpoints exceed g.n.
func (g *Graph) addInternal(from, to int, capacity, cost int64) {
	g.to = append(g.to, int32(to))
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
	g.next = append(g.next, g.head[from])
	g.head[from] = int32(len(g.to) - 1)

	g.to = append(g.to, int32(from))
	g.cap = append(g.cap, 0)
	g.cost = append(g.cost, -cost)
	g.next = append(g.next, g.head[to])
	g.head[to] = int32(len(g.to) - 1)
}
