package mcf

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveSingleEdge(t *testing.T) {
	g := NewGraph(2)
	e := g.AddEdge(0, 1, 10, 3)
	g.SetSupply(0, 7)
	g.SetSupply(1, -7)
	cost, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if cost != 21 {
		t.Errorf("cost = %d, want 21", cost)
	}
	if got := g.Flow(e); got != 7 {
		t.Errorf("flow = %d, want 7", got)
	}
}

func TestSolvePicksCheaperPath(t *testing.T) {
	// 0 -> 1 -> 3 cost 2, 0 -> 2 -> 3 cost 5; both capacity 10, need 10.
	g := NewGraph(4)
	a1 := g.AddEdge(0, 1, 10, 1)
	a2 := g.AddEdge(1, 3, 10, 1)
	b1 := g.AddEdge(0, 2, 10, 2)
	b2 := g.AddEdge(2, 3, 10, 3)
	g.SetSupply(0, 10)
	g.SetSupply(3, -10)
	cost, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if cost != 20 {
		t.Errorf("cost = %d, want 20", cost)
	}
	if g.Flow(a1) != 10 || g.Flow(a2) != 10 || g.Flow(b1) != 0 || g.Flow(b2) != 0 {
		t.Errorf("flows = %d,%d,%d,%d, want 10,10,0,0", g.Flow(a1), g.Flow(a2), g.Flow(b1), g.Flow(b2))
	}
}

func TestSolveSplitsAcrossPaths(t *testing.T) {
	// Cheap path has capacity 4, must overflow 6 units to expensive path.
	g := NewGraph(4)
	cheap := g.AddEdge(0, 1, 4, 1)
	g.AddEdge(1, 3, 100, 0)
	exp := g.AddEdge(0, 2, 100, 10)
	g.AddEdge(2, 3, 100, 0)
	g.SetSupply(0, 10)
	g.SetSupply(3, -10)
	cost, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if cost != 4*1+6*10 {
		t.Errorf("cost = %d, want 64", cost)
	}
	if g.Flow(cheap) != 4 || g.Flow(exp) != 6 {
		t.Errorf("flows = %d,%d, want 4,6", g.Flow(cheap), g.Flow(exp))
	}
}

func TestSolveRequiresReroute(t *testing.T) {
	// Classic case where a later augmentation must push flow back over a
	// residual edge: diamond with a cross edge.
	//
	//   0 -> 1 (cap 1, cost 1)   0 -> 2 (cap 1, cost 4)
	//   1 -> 2 (cap 1, cost 1)   1 -> 3 (cap 1, cost 5)
	//   2 -> 3 (cap 1, cost 1)
	// Two units 0 -> 3. Optimal: 0-1-3 and 0-2-3? cost (1+5)+(4+1)=11,
	// or 0-1-2-3 and 0-2..: cap of 0->2 is 1 so: unit A 0-1-2-3 = 3,
	// unit B 0-2-3 but 2->3 already full -> must use 1->3: B = 0-2? no.
	// SSP first sends 0-1-2-3 (cost 3) then second unit: 0-2 (4), then
	// residual 2->1 (-1), then 1->3 (5): total 8. Overall 11.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 4)
	g.AddEdge(1, 2, 1, 1)
	g.AddEdge(1, 3, 1, 5)
	g.AddEdge(2, 3, 1, 1)
	g.SetSupply(0, 2)
	g.SetSupply(3, -2)
	cost, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if cost != 11 {
		t.Errorf("cost = %d, want 11", cost)
	}
}

func TestSolveMultiSourceSink(t *testing.T) {
	// Two sources (0:+3, 1:+2), two sinks (2:-1, 3:-4).
	g := NewGraph(4)
	g.AddEdge(0, 2, 10, 1)
	g.AddEdge(0, 3, 10, 2)
	g.AddEdge(1, 3, 10, 1)
	g.SetSupply(0, 3)
	g.SetSupply(1, 2)
	g.SetSupply(2, -1)
	g.SetSupply(3, -4)
	cost, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// 0->2 ×1 (1), 0->3 ×2 (4), 1->3 ×2 (2) = 7.
	if cost != 7 {
		t.Errorf("cost = %d, want 7", cost)
	}
}

func TestSolveInfeasible(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 3, 1)
	g.SetSupply(0, 5)
	g.SetSupply(1, -5)
	if _, err := g.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Solve = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbalanced(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 3, 1)
	g.SetSupply(0, 5)
	if _, err := g.Solve(); !errors.Is(err, ErrUnbalanced) {
		t.Errorf("Solve = %v, want ErrUnbalanced", err)
	}
}

func TestSolveTwiceErrors(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 3, 1)
	g.SetSupply(0, 1)
	g.SetSupply(1, -1)
	if _, err := g.Solve(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Solve(); err == nil {
		t.Error("second Solve succeeded, want error")
	}
}

func TestSolveZeroSupply(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 3, 1)
	cost, err := g.Solve()
	if err != nil || cost != 0 {
		t.Errorf("Solve = %d, %v, want 0, nil", cost, err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	tests := []struct {
		name string
		f    func(*Graph)
	}{
		{"from out of range", func(g *Graph) { g.AddEdge(-1, 0, 1, 1) }},
		{"to out of range", func(g *Graph) { g.AddEdge(0, 9, 1, 1) }},
		{"negative capacity", func(g *Graph) { g.AddEdge(0, 1, -1, 1) }},
		{"negative cost", func(g *Graph) { g.AddEdge(0, 1, 1, -1) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.f(NewGraph(2))
		})
	}
}

// bruteForceMinCost enumerates all feasible integral flows on tiny graphs
// by DFS over per-edge flow assignments, returning the minimum cost or -1
// if infeasible.
func bruteForceMinCost(n int, edges [][4]int64, supply []int64) int64 {
	best := int64(-1)
	flows := make([]int64, len(edges))
	var rec func(i int)
	check := func() {
		bal := make([]int64, n)
		copy(bal, supply)
		var cost int64
		for i, e := range edges {
			bal[e[0]] -= flows[i]
			bal[e[1]] += flows[i]
			cost += flows[i] * e[3]
		}
		for _, b := range bal {
			if b != 0 {
				return
			}
		}
		if best == -1 || cost < best {
			best = cost
		}
	}
	rec = func(i int) {
		if i == len(edges) {
			check()
			return
		}
		for f := int64(0); f <= edges[i][2]; f++ {
			flows[i] = f
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// TestSolveMatchesBruteForce cross-checks the solver against exhaustive
// enumeration on random small graphs.
func TestSolveMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3) // 3..5 nodes
		ne := 2 + rng.Intn(4)
		edges := make([][4]int64, 0, ne)
		for i := 0; i < ne; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			edges = append(edges, [4]int64{int64(from), int64(to), int64(1 + rng.Intn(3)), int64(rng.Intn(5))})
		}
		supply := make([]int64, n)
		amt := int64(1 + rng.Intn(3))
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			return true
		}
		supply[src] = amt
		supply[dst] = -amt

		want := bruteForceMinCost(n, edges, supply)

		g := NewGraph(n)
		for _, e := range edges {
			g.AddEdge(int(e[0]), int(e[1]), e[2], e[3])
		}
		for v, s := range supply {
			g.SetSupply(v, s)
		}
		got, err := g.Solve()
		if want == -1 {
			return errors.Is(err, ErrInfeasible)
		}
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFlowConservation verifies that after Solve, flow is conserved at
// every node relative to its supply, and capacities are respected.
func TestFlowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(5)
		g := NewGraph(n)
		type edge struct {
			from, to int
			cap      int64
			id       int
		}
		var edges []edge
		// A path 0->1->...->n-1 guarantees feasibility, plus random chords.
		for v := 0; v+1 < n; v++ {
			id := g.AddEdge(v, v+1, 100, int64(rng.Intn(4)))
			edges = append(edges, edge{v, v + 1, 100, id})
		}
		for i := 0; i < n; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			c := int64(1 + rng.Intn(10))
			id := g.AddEdge(from, to, c, int64(rng.Intn(6)))
			edges = append(edges, edge{from, to, c, id})
		}
		amt := int64(1 + rng.Intn(50))
		g.SetSupply(0, amt)
		g.SetSupply(n-1, -amt)
		if _, err := g.Solve(); err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		bal := make([]int64, n)
		bal[0] = amt
		bal[n-1] = -amt
		for _, e := range edges {
			f := g.Flow(e.id)
			if f < 0 || f > e.cap {
				t.Fatalf("trial %d: edge flow %d outside [0,%d]", trial, f, e.cap)
			}
			bal[e.from] -= f
			bal[e.to] += f
		}
		for v, b := range bal {
			if b != 0 {
				t.Fatalf("trial %d: node %d imbalance %d", trial, v, b)
			}
		}
	}
}

// TestSolverReuseAcrossGraphs: one Solver solving a sequence of graphs
// must produce the same costs and flows as fresh per-graph solves — the
// scratch (potentials in particular) must not leak between solves.
func TestSolverReuseAcrossGraphs(t *testing.T) {
	build := func(k int64) *Graph {
		g := NewGraph(4)
		g.AddEdge(0, 1, 10, 1+k)
		g.AddEdge(0, 2, 10, 2)
		g.AddEdge(1, 3, 10, 1)
		g.AddEdge(2, 3, 10, 3+k)
		g.SetSupply(0, 7)
		g.SetSupply(3, -7)
		return g
	}
	s := NewSolver()
	for k := int64(0); k < 5; k++ {
		shared, err := s.Solve(build(k))
		if err != nil {
			t.Fatalf("k=%d: shared solver: %v", k, err)
		}
		fresh, err := build(k).Solve()
		if err != nil {
			t.Fatalf("k=%d: fresh solver: %v", k, err)
		}
		if shared != fresh {
			t.Errorf("k=%d: shared solver cost %d != fresh %d", k, shared, fresh)
		}
	}
}

// TestGraphReset: a Reset graph must solve exactly like a newly built one,
// including edge flows, and must drop stale supplies and edges.
func TestGraphReset(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5, 2)
	g.AddEdge(1, 2, 5, 2)
	g.SetSupply(0, 5)
	g.SetSupply(2, -5)
	if _, err := g.Solve(); err != nil {
		t.Fatal(err)
	}

	// Reuse for a different, smaller problem.
	g.Reset(2)
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("after Reset: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	e := g.AddEdge(0, 1, 10, 3)
	g.SetSupply(0, 4)
	g.SetSupply(1, -4)
	cost, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 12 {
		t.Errorf("cost = %d, want 12", cost)
	}
	if got := g.Flow(e); got != 4 {
		t.Errorf("Flow = %d, want 4", got)
	}

	// Reset to a larger instance than ever allocated.
	g.Reset(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1, 3, 1)
	}
	g.SetSupply(0, 3)
	g.SetSupply(5, -3)
	cost, err = g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 15 {
		t.Errorf("cost = %d, want 15", cost)
	}
}
