package mcf

// heap is a binary min-heap of (dist, node) pairs specialized for the
// Dijkstra inner loop; it avoids the interface indirection of
// container/heap, which dominates profile time on large OPT graphs.
type heap struct {
	dist []int64
	node []int32
}

func newHeap(capacity int) *heap {
	return &heap{
		dist: make([]int64, 0, capacity),
		node: make([]int32, 0, capacity),
	}
}

func (h *heap) len() int { return len(h.dist) }

func (h *heap) reset() {
	h.dist = h.dist[:0]
	h.node = h.node[:0]
}

func (h *heap) push(d int64, n int32) {
	//lfolint:ignore hotpath-alloc heap storage grows to the frontier high-water mark; reset() keeps the capacity across solves
	h.dist = append(h.dist, d)
	//lfolint:ignore hotpath-alloc heap storage grows to the frontier high-water mark; reset() keeps the capacity across solves
	h.node = append(h.node, n)
	i := len(h.dist) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.dist[p] <= h.dist[i] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *heap) pop() (int64, int32) {
	d, n := h.dist[0], h.node[0]
	last := len(h.dist) - 1
	h.dist[0], h.node[0] = h.dist[last], h.node[last]
	h.dist = h.dist[:last]
	h.node = h.node[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.dist[l] < h.dist[small] {
			small = l
		}
		if r < last && h.dist[r] < h.dist[small] {
			small = r
		}
		if small == i {
			break
		}
		h.swap(i, small)
		i = small
	}
	return d, n
}

func (h *heap) swap(i, j int) {
	h.dist[i], h.dist[j] = h.dist[j], h.dist[i]
	h.node[i], h.node[j] = h.node[j], h.node[i]
}
