package sim

import (
	"testing"

	"lfo/internal/obs"
	"lfo/internal/trace"
)

// admitAll is a trivial test policy: infinite cache, every repeat is a hit.
type admitAll struct {
	seen map[trace.ObjectID]bool
}

func (a *admitAll) Name() string { return "admit-all" }
func (a *admitAll) Request(r trace.Request) bool {
	if a.seen == nil {
		a.seen = make(map[trace.ObjectID]bool)
	}
	hit := a.seen[r.ID]
	a.seen[r.ID] = true
	return hit
}

// neverHit misses everything.
type neverHit struct{}

func (neverHit) Name() string                 { return "never" }
func (neverHit) Request(r trace.Request) bool { return false }

func testTrace() *trace.Trace {
	ids := []trace.ObjectID{1, 2, 1, 3, 2, 1}
	t := &trace.Trace{}
	for i, id := range ids {
		t.Requests = append(t.Requests, trace.Request{Time: int64(i), ID: id, Size: int64(id) * 10, Cost: float64(id) * 10})
	}
	return t
}

func TestRunBasicMetrics(t *testing.T) {
	m := Run(testTrace(), &admitAll{}, Options{})
	// Hits: 1@2, 2@4, 1@5 -> 3 hits of sizes 10, 20, 10.
	if m.Requests != 6 || m.Hits != 3 {
		t.Errorf("Requests,Hits = %d,%d, want 6,3", m.Requests, m.Hits)
	}
	if m.HitBytes != 40 {
		t.Errorf("HitBytes = %d, want 40", m.HitBytes)
	}
	wantReqBytes := int64(10 + 20 + 10 + 30 + 20 + 10)
	if m.ReqBytes != wantReqBytes {
		t.Errorf("ReqBytes = %d, want %d", m.ReqBytes, wantReqBytes)
	}
	if got := m.BHR(); got != 40.0/float64(wantReqBytes) {
		t.Errorf("BHR = %g", got)
	}
	if got := m.OHR(); got != 0.5 {
		t.Errorf("OHR = %g, want 0.5", got)
	}
	// Misses: 1,2,3 first requests -> cost 10+20+30.
	if m.MissCost != 60 {
		t.Errorf("MissCost = %g, want 60", m.MissCost)
	}
}

func TestRunWarmupExcluded(t *testing.T) {
	m := Run(testTrace(), &admitAll{}, Options{Warmup: 2})
	if m.Requests != 4 {
		t.Errorf("Requests = %d, want 4", m.Requests)
	}
	// Hits after warmup: requests 2,4,5 -> all three hits counted.
	if m.Hits != 3 {
		t.Errorf("Hits = %d, want 3", m.Hits)
	}
}

func TestRunWindows(t *testing.T) {
	m := Run(testTrace(), &admitAll{}, Options{WindowSize: 2})
	if len(m.Windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(m.Windows))
	}
	if m.Windows[0].Hits != 0 || m.Windows[1].Hits != 1 || m.Windows[2].Hits != 2 {
		t.Errorf("window hits = %d,%d,%d, want 0,1,2", m.Windows[0].Hits, m.Windows[1].Hits, m.Windows[2].Hits)
	}
	total := 0
	for _, w := range m.Windows {
		total += w.Requests
	}
	if total != m.Requests {
		t.Errorf("window requests sum %d != %d", total, m.Requests)
	}
	if m.Windows[1].OHR() != 0.5 {
		t.Errorf("window 1 OHR = %g, want 0.5", m.Windows[1].OHR())
	}
}

func TestRunWindowsWithWarmupAndMissCost(t *testing.T) {
	// 10 requests; odd object IDs repeat so admitAll alternates miss/hit:
	// ids 1..5 each requested twice, first = miss (cost), second = hit.
	tr := &trace.Trace{}
	for i := 0; i < 10; i++ {
		id := trace.ObjectID(i/2 + 1)
		tr.Requests = append(tr.Requests, trace.Request{
			Time: int64(i), ID: id, Size: 10, Cost: float64(id),
		})
	}
	m := Run(tr, &admitAll{}, Options{Warmup: 3, WindowSize: 3})

	// 7 measured requests in windows of 3: starts at 3, 6, 9; the last
	// window is partial (1 request).
	if len(m.Windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(m.Windows))
	}
	for i, wantStart := range []int{3, 6, 9} {
		if m.Windows[i].Start != wantStart {
			t.Errorf("window %d Start = %d, want %d", i, m.Windows[i].Start, wantStart)
		}
	}
	if m.Windows[0].Requests != 3 || m.Windows[1].Requests != 3 || m.Windows[2].Requests != 1 {
		t.Errorf("window requests = %d,%d,%d, want 3,3,1",
			m.Windows[0].Requests, m.Windows[1].Requests, m.Windows[2].Requests)
	}

	// Request i misses iff i is even (first touch of its object), costing
	// id = i/2+1. Measured misses: i=4 (cost 3), i=6 (cost 4), i=8
	// (cost 5) -> windows [3,6): 3, [6,9): 4+5, [9,10): 0.
	wantWindowCosts := []float64{3, 9, 0}
	var sum float64
	for i, w := range m.Windows {
		if w.MissCost != wantWindowCosts[i] {
			t.Errorf("window %d MissCost = %g, want %g", i, w.MissCost, wantWindowCosts[i])
		}
		sum += w.MissCost
	}
	// Per-window miss costs must partition the run total (warmup covers
	// the full first windowed request range here, so totals align).
	if sum != m.MissCost {
		t.Errorf("window MissCost sum %g != total %g", sum, m.MissCost)
	}
	// Hits after warmup: i=3,5,7,9 (odd = second touch).
	if m.Hits != 4 || m.Requests != 7 {
		t.Errorf("Hits,Requests = %d,%d, want 4,7", m.Hits, m.Requests)
	}
}

func TestRunRecordsObsTotals(t *testing.T) {
	reg := obs.NewRegistry()
	m := Run(testTrace(), &admitAll{}, Options{Obs: reg})
	checks := []struct {
		name string
		want int64
	}{
		{"sim_runs_total", 1},
		{"sim_requests_total", int64(m.Requests)},
		{"sim_hits_total", int64(m.Hits)},
		{"sim_req_bytes_total", m.ReqBytes},
		{"sim_hit_bytes_total", m.HitBytes},
	}
	for _, c := range checks {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	// A second run accumulates.
	Run(testTrace(), &admitAll{}, Options{Obs: reg})
	if got := reg.Counter("sim_runs_total").Value(); got != 2 {
		t.Errorf("sim_runs_total after second run = %d, want 2", got)
	}
}

func TestRunAll(t *testing.T) {
	ms := RunAll(testTrace(), []Policy{&admitAll{}, neverHit{}}, Options{})
	if len(ms) != 2 {
		t.Fatalf("len = %d", len(ms))
	}
	if ms[0].Policy != "admit-all" || ms[1].Policy != "never" {
		t.Errorf("policies = %s,%s", ms[0].Policy, ms[1].Policy)
	}
	if ms[1].Hits != 0 {
		t.Errorf("never-hit policy scored %d hits", ms[1].Hits)
	}
	if ms[1].MissCost != 100 {
		t.Errorf("never MissCost = %g, want 100", ms[1].MissCost)
	}
}

func TestMetricsZeroSafe(t *testing.T) {
	m := &Metrics{}
	if m.BHR() != 0 || m.OHR() != 0 {
		t.Error("zero metrics not zero")
	}
	w := &WindowMetrics{}
	if w.BHR() != 0 || w.OHR() != 0 {
		t.Error("zero window metrics not zero")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore[int](100)
	if s.Capacity() != 100 || s.Used() != 0 || s.Free() != 100 {
		t.Fatal("fresh store wrong")
	}
	e := s.Add(1, 30)
	e.Payload = 7
	if s.Used() != 30 || s.Free() != 70 || s.Len() != 1 {
		t.Errorf("after add: used=%d free=%d len=%d", s.Used(), s.Free(), s.Len())
	}
	if !s.Has(1) || s.Has(2) {
		t.Error("Has wrong")
	}
	if got := s.Get(1); got == nil || got.Payload != 7 || got.Size != 30 {
		t.Errorf("Get = %+v", got)
	}
	if !s.Fits(70) || s.Fits(71) {
		t.Error("Fits wrong")
	}
	s.Remove(1)
	if s.Used() != 0 || s.Len() != 0 || s.Has(1) {
		t.Error("after remove: store not empty")
	}
}

func TestStoreRange(t *testing.T) {
	s := NewStore[struct{}](100)
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(3, 30)
	var sum int64
	s.Range(func(e *StoreEntry[struct{}]) bool {
		sum += e.Size
		return true
	})
	if sum != 60 {
		t.Errorf("Range sum = %d, want 60", sum)
	}
	// Early stop.
	n := 0
	s.Range(func(e *StoreEntry[struct{}]) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("Range early-stop visited %d", n)
	}
}

func TestStorePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"zero capacity", func() { NewStore[int](0) }},
		{"double add", func() {
			s := NewStore[int](100)
			s.Add(1, 10)
			s.Add(1, 10)
		}},
		{"oversized add", func() {
			s := NewStore[int](100)
			s.Add(1, 101)
		}},
		{"unknown remove", func() {
			s := NewStore[int](100)
			s.Remove(9)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.f()
		})
	}
}
