package sim

import (
	"fmt"

	"lfo/internal/trace"
)

// Store is a byte-accurate cache content tracker shared by the policy
// implementations. It maintains the resident set, used bytes, and an
// optional per-object payload of type T for the policy's metadata (LRU
// list elements, heap indices, priorities, ...).
//
// Store enforces the size invariant (Used <= Capacity is the caller's job
// to restore via evictions, but Used is always the exact sum of resident
// object sizes) and rejects double-adds and unknown removals, turning
// policy bookkeeping bugs into immediate panics rather than silent metric
// corruption.
type Store[T any] struct {
	capacity int64
	used     int64
	entries  map[trace.ObjectID]*StoreEntry[T]
	// dense holds every resident entry in arbitrary but deterministic
	// order (insertion order with swap-with-last deletion), giving O(1)
	// allocation-free uniform sampling via At. It is exactly the resident
	// set: len(dense) == Len().
	dense []*StoreEntry[T]
	// freed entries recycled by Add; bounds steady-state allocation to the
	// peak resident count instead of one allocation per admission.
	free []*StoreEntry[T]
}

// StoreEntry is one resident object with the policy's payload.
type StoreEntry[T any] struct {
	ID      trace.ObjectID
	Size    int64
	Payload T
	dense   int // index into Store.dense, maintained by Add/Remove
}

// NewStore returns an empty store with the given capacity in bytes.
func NewStore[T any](capacity int64) *Store[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: store capacity must be positive, got %d", capacity))
	}
	return &Store[T]{capacity: capacity, entries: make(map[trace.ObjectID]*StoreEntry[T], 1024)}
}

// Capacity returns the configured capacity in bytes.
func (s *Store[T]) Capacity() int64 { return s.capacity }

// Used returns the currently resident bytes.
func (s *Store[T]) Used() int64 { return s.used }

// Free returns the available bytes.
func (s *Store[T]) Free() int64 { return s.capacity - s.used }

// Len returns the number of resident objects.
func (s *Store[T]) Len() int { return len(s.entries) }

// Get returns the entry for id, or nil.
func (s *Store[T]) Get(id trace.ObjectID) *StoreEntry[T] {
	return s.entries[id]
}

// Has reports whether id is resident.
func (s *Store[T]) Has(id trace.ObjectID) bool {
	_, ok := s.entries[id]
	return ok
}

// Add inserts an object and returns its entry. It panics if the object is
// already resident or larger than the capacity; callers must evict first
// if Free() < size. The entry may be recycled from an earlier Remove, so
// callers must not retain entry pointers past the object's eviction.
func (s *Store[T]) Add(id trace.ObjectID, size int64) *StoreEntry[T] {
	if _, ok := s.entries[id]; ok {
		panic(fmt.Sprintf("sim: double add of object %d", id))
	}
	if size > s.capacity {
		panic(fmt.Sprintf("sim: object %d size %d exceeds capacity %d", id, size, s.capacity))
	}
	var e *StoreEntry[T]
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
		var zero T
		e.ID, e.Size, e.Payload = id, size, zero
	} else {
		//lfolint:ignore hotpath-alloc freelist miss: one entry per new peak-resident object, recycled forever after
		e = &StoreEntry[T]{ID: id, Size: size}
	}
	e.dense = len(s.dense)
	//lfolint:ignore hotpath-alloc dense index backing array grows to the peak resident count, then recycles
	s.dense = append(s.dense, e)
	s.entries[id] = e
	s.used += size
	return e
}

// Remove evicts an object. It panics if the object is not resident.
func (s *Store[T]) Remove(id trace.ObjectID) {
	e, ok := s.entries[id]
	if !ok {
		panic(fmt.Sprintf("sim: remove of non-resident object %d", id))
	}
	delete(s.entries, id)
	s.used -= e.Size
	// Swap-with-last keeps the dense index compact in O(1).
	last := len(s.dense) - 1
	if e.dense != last {
		moved := s.dense[last]
		s.dense[e.dense] = moved
		moved.dense = e.dense
	}
	s.dense = s.dense[:last]
	//lfolint:ignore hotpath-alloc freelist backing array grows to the peak resident count, then recycles
	s.free = append(s.free, e)
}

// At returns the i-th resident entry in the store's dense index,
// 0 <= i < Len(). The order is deterministic (insertion order perturbed
// by swap-with-last deletion) but otherwise unspecified; it exists so
// sampled-eviction policies can draw uniform candidates in O(1) without
// allocating. The entry is only valid until the object is removed.
func (s *Store[T]) At(i int) *StoreEntry[T] { return s.dense[i] }

// Fits reports whether an object of the given size could be admitted
// without eviction.
func (s *Store[T]) Fits(size int64) bool { return s.used+size <= s.capacity }

// Range calls fn for every resident entry until fn returns false.
// Iteration order is unspecified.
func (s *Store[T]) Range(fn func(*StoreEntry[T]) bool) {
	for _, e := range s.entries {
		if !fn(e) {
			return
		}
	}
}
