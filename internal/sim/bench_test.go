package sim

import (
	"testing"

	"lfo/internal/trace"
)

// benchTrace builds a deterministic Zipf-ish request stream without
// pulling in the generator: object k recurs with period k+1.
func benchTrace(n int) *trace.Trace {
	t := &trace.Trace{Requests: make([]trace.Request, n)}
	for i := 0; i < n; i++ {
		id := trace.ObjectID(i % (1 + i%64))
		t.Requests[i] = trace.Request{Time: int64(i), ID: id, Size: 100 + int64(id), Cost: 1}
	}
	return t
}

// BenchmarkRunRequestLoop replays a 4096-request trace per op, windowed,
// against a zero-state policy: the measured allocations are the request
// loop's own fixed overhead (metrics + one pre-sized window slice), so
// any per-request allocation regression multiplies by 4096 and trips the
// budget in testdata/alloc_budgets.txt immediately.
func BenchmarkRunRequestLoop(b *testing.B) {
	tr := benchTrace(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(tr, neverHit{}, Options{WindowSize: 256})
	}
}
