// Package sim provides the trace-driven cache simulation engine: a Policy
// interface implemented by every caching system in this repository, a
// byte-accurate cache store helper, and hit-ratio metrics (BHR, OHR,
// miss cost) with optional warmup exclusion and per-window series.
package sim

import (
	"fmt"

	"lfo/internal/obs"
	"lfo/internal/trace"
)

// Policy is a complete caching system: admission plus eviction. Request
// processes one request against the cache and reports whether it was a
// hit. Implementations own all internal state and must be deterministic
// given their construction parameters.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Request serves a request, returning true on a cache hit.
	Request(r trace.Request) bool
}

// Metrics accumulates simulation results.
type Metrics struct {
	Policy   string
	Requests int
	Hits     int
	ReqBytes int64
	HitBytes int64
	MissCost float64
	// Windows holds per-window metrics when Options.WindowSize > 0.
	Windows []WindowMetrics
}

// WindowMetrics is one window of a windowed metrics series.
type WindowMetrics struct {
	// Start is the request index where the window begins.
	Start    int
	Requests int
	Hits     int
	ReqBytes int64
	HitBytes int64
	// MissCost is the summed Cost of the window's missed requests (the
	// per-window share of Metrics.MissCost).
	MissCost float64
}

// BHR returns the byte hit ratio.
func (m *Metrics) BHR() float64 {
	if m.ReqBytes == 0 {
		return 0
	}
	return float64(m.HitBytes) / float64(m.ReqBytes)
}

// OHR returns the object hit ratio.
func (m *Metrics) OHR() float64 {
	if m.Requests == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Requests)
}

// BHR returns the window's byte hit ratio.
func (w *WindowMetrics) BHR() float64 {
	if w.ReqBytes == 0 {
		return 0
	}
	return float64(w.HitBytes) / float64(w.ReqBytes)
}

// OHR returns the window's object hit ratio.
func (w *WindowMetrics) OHR() float64 {
	if w.Requests == 0 {
		return 0
	}
	return float64(w.Hits) / float64(w.Requests)
}

// Options tunes a simulation run.
type Options struct {
	// Warmup excludes the first Warmup requests from the metrics (the
	// policies still see them).
	Warmup int
	// WindowSize, when positive, also records metrics per window of
	// WindowSize requests (warmup requests are never windowed).
	WindowSize int
	// Obs, when set, accumulates run totals (sim_runs_total,
	// sim_requests_total, sim_hits_total, sim_req_bytes_total,
	// sim_hit_bytes_total) after each Run. Recording happens once per
	// run, off the request loop, and never affects results.
	Obs *obs.Registry
}

// Run replays the trace against the policy and returns metrics.
func Run(tr *trace.Trace, p Policy, opts Options) *Metrics {
	m := &Metrics{Policy: p.Name()}
	if opts.WindowSize > 0 {
		if n := len(tr.Requests) - opts.Warmup; n > 0 {
			m.Windows = make([]WindowMetrics, 0, (n+opts.WindowSize-1)/opts.WindowSize)
		}
	}
	var cur *WindowMetrics
	for i, r := range tr.Requests {
		hit := p.Request(r)
		if i < opts.Warmup {
			continue
		}
		m.Requests++
		m.ReqBytes += r.Size
		if hit {
			m.Hits++
			m.HitBytes += r.Size
		} else {
			m.MissCost += r.Cost
		}
		if opts.WindowSize > 0 {
			if cur == nil || cur.Requests >= opts.WindowSize {
				m.Windows = append(m.Windows, WindowMetrics{Start: i})
				cur = &m.Windows[len(m.Windows)-1]
			}
			cur.Requests++
			cur.ReqBytes += r.Size
			if hit {
				cur.Hits++
				cur.HitBytes += r.Size
			} else {
				cur.MissCost += r.Cost
			}
		}
	}
	if opts.Obs != nil {
		opts.Obs.Counter("sim_runs_total").Inc()
		opts.Obs.Counter("sim_requests_total").Add(int64(m.Requests))
		opts.Obs.Counter("sim_hits_total").Add(int64(m.Hits))
		opts.Obs.Counter("sim_req_bytes_total").Add(m.ReqBytes)
		opts.Obs.Counter("sim_hit_bytes_total").Add(m.HitBytes)
	}
	return m
}

// RunAll replays the trace against each policy independently and returns
// metrics in the same order.
func RunAll(tr *trace.Trace, ps []Policy, opts Options) []*Metrics {
	out := make([]*Metrics, len(ps))
	for i, p := range ps {
		out[i] = Run(tr, p, opts)
	}
	return out
}

// String renders a one-line summary.
func (m *Metrics) String() string {
	return fmt.Sprintf("%s: BHR=%.4f OHR=%.4f hits=%d/%d", m.Policy, m.BHR(), m.OHR(), m.Hits, m.Requests)
}
