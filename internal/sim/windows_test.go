package sim

import (
	"testing"

	"lfo/internal/trace"
)

// invariantTrace builds n requests with a mix of repeats (so hits, misses,
// varying sizes and costs all occur) without any policy randomness.
func invariantTrace(n int) *trace.Trace {
	tr := &trace.Trace{Requests: make([]trace.Request, 0, n)}
	for i := 0; i < n; i++ {
		id := trace.ObjectID(i % 7)
		tr.Requests = append(tr.Requests, trace.Request{
			Time: int64(i),
			ID:   id,
			Size: int64(id)*13 + 5,
			Cost: float64(id%3) + 0.5,
		})
	}
	return tr
}

// TestRunWindowTotalsInvariant pins the partition property: summing every
// WindowMetrics field over m.Windows must reproduce the run totals exactly,
// for aligned and non-aligned warmup/window combinations. A stale `cur`
// pointer (e.g. after a Windows reallocation) would silently break this.
func TestRunWindowTotalsInvariant(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		warmup int
		window int
	}{
		{"aligned", 120, 0, 10},
		{"aligned with warmup", 120, 20, 10},
		{"partial last window", 100, 0, 16},
		{"non-aligned warmup", 100, 7, 16},
		{"window larger than run", 50, 0, 64},
		{"window larger than measured", 50, 30, 64},
		{"warmup equals length", 40, 40, 8},
		{"warmup exceeds length", 40, 55, 8},
		{"single-request windows", 33, 5, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Run(invariantTrace(tc.n), &admitAll{}, Options{Warmup: tc.warmup, WindowSize: tc.window})

			var w WindowMetrics
			for _, win := range m.Windows {
				w.Requests += win.Requests
				w.Hits += win.Hits
				w.ReqBytes += win.ReqBytes
				w.HitBytes += win.HitBytes
				w.MissCost += win.MissCost
			}
			if w.Requests != m.Requests {
				t.Errorf("window Requests sum %d != total %d", w.Requests, m.Requests)
			}
			if w.Hits != m.Hits {
				t.Errorf("window Hits sum %d != total %d", w.Hits, m.Hits)
			}
			if w.ReqBytes != m.ReqBytes {
				t.Errorf("window ReqBytes sum %d != total %d", w.ReqBytes, m.ReqBytes)
			}
			if w.HitBytes != m.HitBytes {
				t.Errorf("window HitBytes sum %d != total %d", w.HitBytes, m.HitBytes)
			}
			if w.MissCost != m.MissCost {
				t.Errorf("window MissCost sum %g != total %g", w.MissCost, m.MissCost)
			}

			measured := tc.n - tc.warmup
			if measured < 0 {
				measured = 0
			}
			wantWindows := 0
			if measured > 0 {
				wantWindows = (measured + tc.window - 1) / tc.window
			}
			if len(m.Windows) != wantWindows {
				t.Errorf("len(Windows) = %d, want %d", len(m.Windows), wantWindows)
			}
			// Every window except the last holds exactly WindowSize requests.
			for i, win := range m.Windows[:max(0, len(m.Windows)-1)] {
				if win.Requests != tc.window {
					t.Errorf("window %d Requests = %d, want %d", i, win.Requests, tc.window)
				}
			}
		})
	}
}

// TestRunWindowsNoRealloc pins that the Windows pre-allocation is exact:
// Run appends exactly cap(Windows) windows, so the slice never reallocates
// and the internal `cur` pointer (which points into the slice) stays valid.
func TestRunWindowsNoRealloc(t *testing.T) {
	for _, tc := range []struct {
		name   string
		n      int
		warmup int
		window int
	}{
		{"aligned", 96, 0, 8},
		{"non-aligned", 100, 7, 16},
		{"warmup only partially windowed", 64, 33, 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := Run(invariantTrace(tc.n), &admitAll{}, Options{Warmup: tc.warmup, WindowSize: tc.window})
			if len(m.Windows) == 0 {
				t.Fatal("no windows recorded")
			}
			if len(m.Windows) != cap(m.Windows) {
				t.Errorf("len(Windows) = %d, cap = %d: pre-allocation is not exact, append may reallocate",
					len(m.Windows), cap(m.Windows))
			}
		})
	}
}

// TestStoreDenseIndex exercises At across adds and swap-with-last removes:
// the dense index must always enumerate exactly the resident set.
func TestStoreDenseIndex(t *testing.T) {
	s := NewStore[int](1000)
	check := func(want ...trace.ObjectID) {
		t.Helper()
		if s.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(want))
		}
		got := make(map[trace.ObjectID]bool, s.Len())
		for i := 0; i < s.Len(); i++ {
			e := s.At(i)
			if e == nil {
				t.Fatalf("At(%d) = nil", i)
			}
			if got[e.ID] {
				t.Fatalf("At enumerates object %d twice", e.ID)
			}
			got[e.ID] = true
			if s.Get(e.ID) != e {
				t.Fatalf("At(%d) and Get(%d) disagree", i, e.ID)
			}
		}
		for _, id := range want {
			if !got[id] {
				t.Fatalf("dense index missing resident object %d", id)
			}
		}
	}

	for id := trace.ObjectID(1); id <= 5; id++ {
		s.Add(id, 10)
	}
	check(1, 2, 3, 4, 5)

	s.Remove(3) // middle: swap-with-last moves 5 into slot 2
	check(1, 2, 4, 5)
	s.Remove(5) // tail
	check(1, 2, 4)
	s.Remove(1) // head
	check(2, 4)

	// Recycled entries must get fresh dense slots.
	s.Add(6, 10)
	s.Add(7, 10)
	check(2, 4, 6, 7)
	// Drain completely and rebuild.
	for _, id := range []trace.ObjectID{2, 4, 6, 7} {
		s.Remove(id)
	}
	check()
	s.Add(9, 500)
	check(9)
	if s.At(0).Size != 500 {
		t.Errorf("At(0).Size = %d, want 500", s.At(0).Size)
	}
}
