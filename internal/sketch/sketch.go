// Package sketch provides the probabilistic frequency structures backing
// the TinyLFU admission policy: a conservative-update count-min sketch
// with periodic halving (the "reset" aging mechanism) and a doorkeeper
// Bloom filter that absorbs one-hit wonders before they reach the sketch.
package sketch

import (
	"math/bits"
)

// mix64 is SplitMix64's finalizer, used to derive per-row hash values.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CountMin is a conservative-update count-min sketch with 4-bit counters
// packed two per byte — the same compact footprint production TinyLFU
// implementations use. Counters saturate at 15 and are halved by Reset.
type CountMin struct {
	rows     int
	mask     uint64
	counters [][]byte // rows × (width/2) packed nibbles
}

// NewCountMin returns a sketch with the given width (rounded up to a
// power of two, minimum 16) and depth rows (minimum 1).
func NewCountMin(width, rows int) *CountMin {
	if rows < 1 {
		rows = 1
	}
	if width < 16 {
		width = 16
	}
	// Round width up to a power of two for cheap masking.
	w := 1
	for w < width {
		w <<= 1
	}
	c := &CountMin{rows: rows, mask: uint64(w - 1)}
	c.counters = make([][]byte, rows)
	for r := range c.counters {
		c.counters[r] = make([]byte, w/2)
	}
	return c
}

func (c *CountMin) nibble(row int, slot uint64) byte {
	b := c.counters[row][slot/2]
	if slot%2 == 0 {
		return b & 0x0f
	}
	return b >> 4
}

func (c *CountMin) setNibble(row int, slot uint64, v byte) {
	i := slot / 2
	b := c.counters[row][i]
	if slot%2 == 0 {
		c.counters[row][i] = (b &^ 0x0f) | v
	} else {
		c.counters[row][i] = (b &^ 0xf0) | (v << 4)
	}
}

// Add increments the counters for key (conservative update: only the
// minimal counters grow), saturating at 15.
func (c *CountMin) Add(key uint64) {
	min := c.Estimate(key)
	if min >= 15 {
		return
	}
	for r := 0; r < c.rows; r++ {
		slot := mix64(key+uint64(r)*0x9e3779b97f4a7c15) & c.mask
		if v := c.nibble(r, slot); v == min {
			c.setNibble(r, slot, v+1)
		}
	}
}

// Estimate returns the approximate count for key (an overestimate with
// high probability, capped at 15).
func (c *CountMin) Estimate(key uint64) byte {
	min := byte(15)
	for r := 0; r < c.rows; r++ {
		slot := mix64(key+uint64(r)*0x9e3779b97f4a7c15) & c.mask
		if v := c.nibble(r, slot); v < min {
			min = v
		}
	}
	return min
}

// Reset halves all counters, aging the frequency estimates.
func (c *CountMin) Reset() {
	for r := range c.counters {
		row := c.counters[r]
		for i := range row {
			// Halve both nibbles in place.
			row[i] = (row[i] >> 1) & 0x77
		}
	}
}

// Bloom is a simple Bloom filter used as TinyLFU's doorkeeper.
type Bloom struct {
	bitsArr []uint64
	mask    uint64
	hashes  int
}

// NewBloom returns a filter with the given bit count (rounded up to a
// power of two, minimum 64) and hash count (minimum 1).
func NewBloom(bitCount, hashes int) *Bloom {
	if hashes < 1 {
		hashes = 1
	}
	if bitCount < 64 {
		bitCount = 64
	}
	n := 64
	for n < bitCount {
		n <<= 1
	}
	return &Bloom{bitsArr: make([]uint64, n/64), mask: uint64(n - 1), hashes: hashes}
}

// Add inserts key and reports whether it was (probably) already present.
func (b *Bloom) Add(key uint64) bool {
	present := true
	for h := 0; h < b.hashes; h++ {
		bit := mix64(key+uint64(h)*0xa24baed4963ee407) & b.mask
		w, off := bit/64, bit%64
		if b.bitsArr[w]&(1<<off) == 0 {
			present = false
			b.bitsArr[w] |= 1 << off
		}
	}
	return present
}

// Contains reports whether key is (probably) present.
func (b *Bloom) Contains(key uint64) bool {
	for h := 0; h < b.hashes; h++ {
		bit := mix64(key+uint64(h)*0xa24baed4963ee407) & b.mask
		if b.bitsArr[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the filter.
func (b *Bloom) Clear() {
	for i := range b.bitsArr {
		b.bitsArr[i] = 0
	}
}

// FillRatio returns the fraction of set bits (diagnostics and tests).
func (b *Bloom) FillRatio() float64 {
	set := 0
	for _, w := range b.bitsArr {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(len(b.bitsArr)*64)
}
