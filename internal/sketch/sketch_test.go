package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(1024, 4)
	truth := map[uint64]byte{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(300))
		cm.Add(k)
		if truth[k] < 15 {
			truth[k]++
		}
	}
	for k, want := range truth {
		if got := cm.Estimate(k); got < want {
			t.Fatalf("Estimate(%d) = %d < true count %d", k, got, want)
		}
	}
}

func TestCountMinAccurateWhenSparse(t *testing.T) {
	cm := NewCountMin(1<<14, 4)
	for i := uint64(0); i < 10; i++ {
		for j := uint64(0); j <= i; j++ {
			cm.Add(i)
		}
	}
	for i := uint64(0); i < 10; i++ {
		want := byte(i + 1)
		if got := cm.Estimate(i); got != want {
			t.Errorf("Estimate(%d) = %d, want %d (sparse sketch should be exact)", i, got, want)
		}
	}
}

func TestCountMinSaturates(t *testing.T) {
	cm := NewCountMin(64, 2)
	for i := 0; i < 100; i++ {
		cm.Add(7)
	}
	if got := cm.Estimate(7); got != 15 {
		t.Errorf("Estimate = %d, want saturation at 15", got)
	}
}

func TestCountMinReset(t *testing.T) {
	cm := NewCountMin(1<<12, 4)
	for i := 0; i < 8; i++ {
		cm.Add(42)
	}
	before := cm.Estimate(42)
	cm.Reset()
	after := cm.Estimate(42)
	if after != before/2 {
		t.Errorf("Reset: %d -> %d, want %d", before, after, before/2)
	}
}

func TestCountMinEstimateUnseen(t *testing.T) {
	cm := NewCountMin(1<<14, 4)
	for i := uint64(0); i < 5; i++ {
		cm.Add(i)
	}
	if got := cm.Estimate(99999); got != 0 {
		t.Errorf("unseen Estimate = %d, want 0 (sparse)", got)
	}
}

func TestBloomBasics(t *testing.T) {
	b := NewBloom(1<<12, 3)
	if b.Contains(5) {
		t.Error("empty bloom contains 5")
	}
	if b.Add(5) {
		t.Error("first Add reported present")
	}
	if !b.Contains(5) {
		t.Error("bloom lost 5")
	}
	if !b.Add(5) {
		t.Error("second Add reported absent")
	}
	b.Clear()
	if b.Contains(5) {
		t.Error("Clear did not clear")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		b := NewBloom(1<<14, 3)
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBloomFalsePositiveRateBounded(t *testing.T) {
	b := NewBloom(1<<14, 3)
	for i := uint64(0); i < 1000; i++ {
		b.Add(i)
	}
	fp := 0
	const probes = 10000
	for i := uint64(1 << 30); i < 1<<30+probes; i++ {
		if b.Contains(i) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Errorf("false positive rate %.4f > 0.05 at 1000/16384 fill", rate)
	}
	if b.FillRatio() <= 0 || b.FillRatio() > 0.25 {
		t.Errorf("fill ratio %.4f out of expected range", b.FillRatio())
	}
}

func TestNibblePacking(t *testing.T) {
	cm := NewCountMin(64, 1)
	// Adjacent slots must not clobber each other.
	cm.setNibble(0, 4, 9)
	cm.setNibble(0, 5, 13)
	if got := cm.nibble(0, 4); got != 9 {
		t.Errorf("nibble(4) = %d, want 9", got)
	}
	if got := cm.nibble(0, 5); got != 13 {
		t.Errorf("nibble(5) = %d, want 13", got)
	}
	cm.setNibble(0, 4, 2)
	if got := cm.nibble(0, 5); got != 13 {
		t.Errorf("nibble(5) clobbered to %d", got)
	}
}
