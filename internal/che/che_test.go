package che

import (
	"math"
	"testing"
)

func uniformObjects(n int, rate, size float64) []Object {
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{Rate: rate, Size: size, PAdmit: 1}
	}
	return objs
}

func TestCharacteristicTimeEverythingFits(t *testing.T) {
	objs := uniformObjects(10, 1, 100)
	if tc := CharacteristicTime(objs, 10*100); !math.IsInf(tc, 1) {
		t.Errorf("T = %g, want +Inf when the working set fits", tc)
	}
}

func TestCharacteristicTimeEmpty(t *testing.T) {
	if tc := CharacteristicTime(nil, 100); tc != 0 {
		t.Errorf("T = %g, want 0 for empty set", tc)
	}
	if tc := CharacteristicTime(uniformObjects(5, 1, 1), 0); tc != 0 {
		t.Errorf("T = %g, want 0 for zero capacity", tc)
	}
}

func TestCharacteristicTimeFixedPoint(t *testing.T) {
	// 100 unit-rate unit-size objects, capacity 50: at T*, occupancy = 50.
	objs := uniformObjects(100, 1, 1)
	tc := CharacteristicTime(objs, 50)
	// Occupancy at T: 100 (1 - e^{-T}) = 50 -> T = ln 2.
	if math.Abs(tc-math.Ln2) > 1e-6 {
		t.Errorf("T = %g, want ln2 = %g", tc, math.Ln2)
	}
}

func TestRatiosUniform(t *testing.T) {
	// Uniform popularity, half fits: every request hits with prob 1/2.
	objs := uniformObjects(100, 1, 1)
	ohr, bhr := Ratios(objs, 50)
	if math.Abs(ohr-0.5) > 1e-6 || math.Abs(bhr-0.5) > 1e-6 {
		t.Errorf("ohr,bhr = %g,%g, want 0.5,0.5", ohr, bhr)
	}
}

func TestRatiosSkewFavorsHot(t *testing.T) {
	// Two objects: hot (rate 100) and cold (rate 1), capacity 1 of 2.
	objs := []Object{
		{Rate: 100, Size: 1, PAdmit: 1},
		{Rate: 1, Size: 1, PAdmit: 1},
	}
	ohr, _ := Ratios(objs, 1)
	// The hot object should be near-always resident: OHR ≈ 100/101.
	if ohr < 0.8 {
		t.Errorf("skewed OHR = %g, want > 0.8", ohr)
	}
}

func TestRatiosAdmissionFilter(t *testing.T) {
	// Blocking admission of the large object must raise OHR when the
	// cache is small: classic AdaptSize effect.
	small := Object{Rate: 1, Size: 1, PAdmit: 1}
	largeAdmitted := Object{Rate: 1, Size: 99, PAdmit: 1}
	largeBlocked := Object{Rate: 1, Size: 99, PAdmit: 0}

	manySmall := make([]Object, 50)
	for i := range manySmall {
		manySmall[i] = small
	}
	withLarge := append(append([]Object{}, manySmall...), largeAdmitted)
	withoutLarge := append(append([]Object{}, manySmall...), largeBlocked)

	ohrWith, _ := Ratios(withLarge, 25)
	ohrWithout, _ := Ratios(withoutLarge, 25)
	if ohrWithout <= ohrWith {
		t.Errorf("blocking the large object: OHR %g <= %g", ohrWithout, ohrWith)
	}
}

func TestRatiosMonotoneInCapacity(t *testing.T) {
	objs := []Object{
		{Rate: 5, Size: 10, PAdmit: 1},
		{Rate: 3, Size: 20, PAdmit: 1},
		{Rate: 1, Size: 40, PAdmit: 1},
		{Rate: 0.5, Size: 80, PAdmit: 1},
	}
	prev := -1.0
	for _, cap := range []float64{10, 30, 70, 150} {
		ohr, _ := Ratios(objs, cap)
		if ohr < prev-1e-9 {
			t.Errorf("OHR decreased from %g to %g at capacity %g", prev, ohr, cap)
		}
		prev = ohr
	}
}
