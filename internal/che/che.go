// Package che implements Che's approximation for LRU-like caches: the
// characteristic time T of a cache is the unique solution of
//
//	Σ_i  p_i · s_i · (1 − e^{−λ_i·T}) = capacity
//
// where λ_i is object i's arrival rate, s_i its size, and p_i the
// probability its misses are admitted. Given T, per-object hit
// probabilities follow as p_i·(1 − e^{−λ_i·T}).
//
// AdaptSize's tuning loop (Berger et al., NSDI 2017 [12]) uses this model
// to predict the hit ratio of candidate admission parameters without
// running them; package policy's AdaptSize implementation calls into this
// package.
package che

import (
	"math"
)

// Object is one distinct object's statistics within an observation window.
type Object struct {
	// Rate is the arrival rate (requests per unit time or per request
	// slot; only relative scale matters).
	Rate float64
	// Size is the object size in bytes.
	Size float64
	// PAdmit is the probability a miss on this object is admitted.
	PAdmit float64
}

// occupancy returns the expected resident bytes at characteristic time t.
func occupancy(objs []Object, t float64) float64 {
	var sum float64
	for _, o := range objs {
		sum += o.PAdmit * o.Size * (1 - math.Exp(-o.Rate*t))
	}
	return sum
}

// CharacteristicTime solves Che's fixed point for the given capacity via
// bisection. It returns +Inf when the entire (admitted) working set fits
// in the cache, and 0 for an empty object set or non-positive capacity.
func CharacteristicTime(objs []Object, capacity float64) float64 {
	if len(objs) == 0 || capacity <= 0 {
		return 0
	}
	// If everything fits, T is unbounded.
	var totalBytes float64
	for _, o := range objs {
		totalBytes += o.PAdmit * o.Size
	}
	if totalBytes <= capacity {
		return math.Inf(1)
	}
	lo, hi := 0.0, 1.0
	for occupancy(objs, hi) < capacity {
		hi *= 2
		if hi > 1e18 {
			return math.Inf(1)
		}
	}
	for iter := 0; iter < 100 && hi-lo > 1e-9*hi; iter++ {
		mid := (lo + hi) / 2
		if occupancy(objs, mid) < capacity {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Ratios predicts the object and byte hit ratios of an admission-filtered
// LRU cache with the given capacity: each request to object i hits with
// probability PAdmit_i · (1 − e^{−λ_i·T}).
func Ratios(objs []Object, capacity float64) (ohr, bhr float64) {
	t := CharacteristicTime(objs, capacity)
	if t == 0 {
		return 0, 0
	}
	var hitReqs, reqs, hitBytes, bytes float64
	for _, o := range objs {
		var pHit float64
		if math.IsInf(t, 1) {
			pHit = o.PAdmit
		} else {
			pHit = o.PAdmit * (1 - math.Exp(-o.Rate*t))
		}
		hitReqs += o.Rate * pHit
		reqs += o.Rate
		hitBytes += o.Rate * o.Size * pHit
		bytes += o.Rate * o.Size
	}
	if reqs > 0 {
		ohr = hitReqs / reqs
	}
	if bytes > 0 {
		bhr = hitBytes / bytes
	}
	return ohr, bhr
}
