package fleet

import (
	"fmt"

	"lfo/internal/gbdt"
)

// Rollout hot-swaps the fleet to a new model version: all admission
// traffic is flushed first (the swap frame shares each shard's pipelined
// connection, and the server answers strictly in order), then the
// versioned model is broadcast to every live shard. The broadcast is
// eventually consistent by construction: a down shard — or one that
// dies mid-broadcast and fails over here — receives the recorded
// version when it recovers, before rejoining the ring, so an error is
// returned only for invalid arguments, never for fleet state.
func (r *Router) Rollout(version uint64, m *gbdt.Model) error {
	if version == 0 {
		return fmt.Errorf("fleet: model version 0 is reserved")
	}
	if m == nil {
		return fmt.Errorf("fleet: Rollout needs a model")
	}
	if version < r.version {
		return fmt.Errorf("fleet: rollout version %d is older than current %d", version, r.version)
	}
	r.Flush()
	r.version, r.model = version, m
	for i := range r.shards {
		s := &r.shards[i]
		if !s.up {
			continue // pushed by reconnect on recovery
		}
		if err := s.mc.Rollout(version, m); err != nil {
			r.failShard(s) // recovery will re-push r.version
		}
	}
	return nil
}

// ModelVersion returns the last version Rollout broadcast (0 until the
// first rollout: shards serve their boot-time model).
func (r *Router) ModelVersion() uint64 { return r.version }

// predictFlight is one in-flight predict chunk: its correlation ID and
// the row range it covers in the caller's matrix.
type predictFlight struct {
	id       uint64
	start, n int
}

// Predict evaluates a flat row-major feature matrix (len(rows) divisible
// by dim) across the fleet: chunks are scattered round-robin over live
// shards with the same pipeline window as admission, and chunks lost to
// a shard failure are re-scattered over the survivors. Stateless predict
// rows have no home shard, so the only unrecoverable condition is the
// whole fleet being down. probs must hold len(rows)/dim values.
//
// Predict shares connections with the admission path, so it flushes
// pending admission traffic first. It is not an allocation-free hot
// path; the admission path is.
func (r *Router) Predict(rows []float64, dim int, probs []float64) error {
	if dim <= 0 || len(rows)%dim != 0 {
		return fmt.Errorf("fleet: rows length %d is not a multiple of dim %d", len(rows), dim)
	}
	nrows := len(rows) / dim
	if len(probs) != nrows {
		return fmt.Errorf("fleet: probs length %d, want %d", len(probs), nrows)
	}
	r.Flush()

	var pending []predictFlight // id unset until written
	for start := 0; start < nrows; start += r.batch {
		n := r.batch
		if start+n > nrows {
			n = nrows - start
		}
		pending = append(pending, predictFlight{start: start, n: n})
	}
	infl := make([][]predictFlight, len(r.shards))

	// fail requeues a shard's in-flight chunks and fails it over.
	fail := func(si int) {
		pending = append(pending, infl[si]...)
		infl[si] = infl[si][:0]
		r.failShard(&r.shards[si])
	}
	// readOne completes shard si's oldest chunk; on any mismatch the
	// shard is failed and its chunks requeued.
	readOne := func(si int) {
		f := infl[si][0]
		id, ps, err := r.shards[si].mc.ReadResponse()
		if err != nil || id != f.id || len(ps) != f.n {
			fail(si)
			return
		}
		copy(probs[f.start:f.start+f.n], ps)
		infl[si] = infl[si][1:]
		r.shards[si].served.Add(int64(f.n))
	}

	rr := 0
	for {
		for len(pending) > 0 {
			si := -1
			for k := 0; k < len(r.shards); k++ {
				if cand := (rr + k) % len(r.shards); r.shards[cand].up {
					si, rr = cand, cand+1
					break
				}
			}
			if si < 0 {
				return fmt.Errorf("fleet: all %d shards down", len(r.shards))
			}
			if len(infl[si]) == r.maxInFlight {
				readOne(si)
				continue // the shard may have died; re-pick
			}
			c := pending[0]
			c.id = r.nextID
			r.nextID++
			s := &r.shards[si]
			if err := s.mc.WritePredictBatch(c.id, rows[c.start*dim:(c.start+c.n)*dim], dim); err != nil {
				fail(si)
				continue
			}
			pending = pending[1:]
			infl[si] = append(infl[si], c)
			s.batches.Inc()
		}
		for si := range r.shards {
			for r.shards[si].up && len(infl[si]) > 0 {
				readOne(si)
			}
		}
		if len(pending) == 0 {
			return nil // every chunk completed (failures requeue into pending)
		}
	}
}
