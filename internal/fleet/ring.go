package fleet

import "sort"

// Ring is a consistent-hash ring mapping object IDs to shard indices.
// Each shard contributes `replicas` virtual points; an object belongs to
// the shard owning the first point at or after the object's hash. The
// assignment depends only on (shards, replicas, id), so every client in a
// deployment routes identically, and a shard's key range is a stable
// property the router can degrade independently when that shard dies.
type Ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the ring for `shards` shards with `replicas` virtual
// points each. Both must be positive.
func NewRing(shards, replicas int) *Ring {
	pts := make([]ringPoint, 0, shards*replicas)
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			pts = append(pts, ringPoint{hash: mix64(uint64(s)<<32 | uint64(v)), shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].shard < pts[j].shard // deterministic tie-break
	})
	return &Ring{points: pts}
}

// Shards returns the number of distinct shards on the ring.
func (r *Ring) Shards() int {
	n := 0
	for _, p := range r.points {
		if p.shard+1 > n {
			n = p.shard + 1
		}
	}
	return n
}

// Shard returns the shard index owning the object ID.
//
//lfo:hotpath
func (r *Ring) Shard(id uint64) int {
	h := mix64(id)
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap past the last point
	}
	return r.points[lo].shard
}

// mix64 is the SplitMix64 finalizer: a cheap, well-avalanched 64-bit
// mixer so sequential object IDs spread uniformly over the ring.
//
//lfo:hotpath
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
