package fleet

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/obs"
)

// counterValue pulls one counter out of a registry snapshot.
func counterValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// chaosOutcome is everything one chaos run produces: the admission
// decision log (one byte per row, '1' = admit at cutoff 0.5, in input
// order) and the per-shard failover counts.
type chaosOutcome struct {
	log       []byte
	failovers []int64
	served    []int64
	fallbacks []int64
	up        []bool
}

// runChaos drives a fixed request stream against a 3-shard fleet while
// killing and restarting shards at fixed stream positions (always at
// flush boundaries, so a kill is a clean quiescent-point crash). Every
// row must complete — the admission path has no caller-visible errors by
// construction — and the whole outcome must be a pure function of the
// seed and the kill schedule.
func runChaos(t *testing.T, m *gbdt.Model, seed int64) chaosOutcome {
	t.Helper()
	h := newHarness(t, 3, m)
	reg := obs.NewRegistry()
	r, err := NewRouter(Config{
		Addrs: h.names(), Dial: h.dial,
		Batch: 8, MaxInFlight: 2, ProbeEvery: 4,
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rng := rand.New(rand.NewSource(seed))
	now := int64(0)
	var log []byte
	phase := func(rows int) {
		reqs := randReqs(rng, rows, now)
		now += int64(rows)
		probs := make([]float64, rows)
		for i := range probs {
			probs[i] = math.NaN()
		}
		for i := range reqs {
			r.Enqueue(reqs[i], &probs[i])
		}
		r.Flush()
		for i, p := range probs {
			if math.IsNaN(p) {
				t.Fatalf("row %d of the phase never completed", i)
			}
			if p >= 0.5 {
				log = append(log, '1')
			} else {
				log = append(log, '0')
			}
		}
	}

	phase(400)      // healthy fleet
	h.kill(1)       // crash shard 1 at a quiescent point
	phase(400)      // shard 1's range degrades to its censor
	h.restart(1, m) // bring it back on a fresh listener
	phase(600)      // probes re-admit shard 1 to the ring
	h.kill(2)       // second, independent kill
	phase(400)
	h.restart(2, m)
	phase(600)

	out := chaosOutcome{log: log}
	for i := 0; i < 3; i++ {
		p := func(name string) int64 {
			return counterValue(t, reg, "fleet_shard"+string(rune('0'+i))+"_"+name)
		}
		out.failovers = append(out.failovers, p("failovers_total"))
		out.served = append(out.served, p("rows_total"))
		out.fallbacks = append(out.fallbacks, p("fallback_rows_total"))
		out.up = append(out.up, r.ShardUp(i))
	}
	return out
}

// TestChaosKillRestartDeterministic is the chaos acceptance gate: a
// kill+restart schedule mid-run produces zero caller-visible errors, the
// per-shard failover counters match the injected kills exactly, every
// shard is re-admitted after recovery, and the decision log is
// byte-identical across same-seed reruns.
func TestChaosKillRestartDeterministic(t *testing.T) {
	m := trainModel(t, 1, bigObjects)
	a := runChaos(t, m, 42)
	b := runChaos(t, m, 42)

	if !bytes.Equal(a.log, b.log) {
		t.Fatalf("decision logs diverge across same-seed reruns (%d vs %d rows)", len(a.log), len(b.log))
	}
	if len(a.log) != 2400 {
		t.Fatalf("decision log has %d rows, want 2400", len(a.log))
	}
	wantFailovers := []int64{0, 1, 1} // exactly the injected kills
	for i, want := range wantFailovers {
		if a.failovers[i] != want {
			t.Errorf("shard %d failovers = %d, want %d", i, a.failovers[i], want)
		}
	}
	for i := 0; i < 3; i++ {
		if !a.up[i] {
			t.Errorf("shard %d not re-admitted by the end of the run", i)
		}
		if a.served[i] == 0 {
			t.Errorf("shard %d served no rows", i)
		}
	}
	// The killed shards must actually have degraded (fallback rows) and
	// the healthy shard must never have.
	if a.fallbacks[0] != 0 {
		t.Errorf("healthy shard 0 reports %d fallback rows", a.fallbacks[0])
	}
	for _, i := range []int{1, 2} {
		if a.fallbacks[i] == 0 {
			t.Errorf("killed shard %d reports no fallback rows", i)
		}
	}
	// Conservation: every row is either served remotely or by a fallback.
	var total int64
	for i := 0; i < 3; i++ {
		total += a.served[i] + a.fallbacks[i]
	}
	if total != 2400 {
		t.Errorf("served+fallback rows = %d, want 2400", total)
	}
}

// TestChaosRolloutReachesRecoveredShard: a shard that was down during a
// rollout receives the current model version while rejoining the ring —
// recovery never resurrects a stale model.
func TestChaosRolloutReachesRecoveredShard(t *testing.T) {
	mA := trainModel(t, 1, bigObjects)
	mB := trainModel(t, 99, smallObjects)
	h := newHarness(t, 3, mA)
	r, err := NewRouter(Config{Addrs: h.names(), Dial: h.dial, Batch: 8, MaxInFlight: 2, ProbeEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	h.kill(1)
	if err := r.Rollout(2, mB); err != nil {
		t.Fatalf("rollout with a down shard must succeed for the live shards: %v", err)
	}
	h.restart(1, mA) // restarted from its stale boot model

	// Drive traffic until probing re-admits shard 1.
	rng := rand.New(rand.NewSource(11))
	now := int64(0)
	for round := 0; round < 50 && !r.ShardUp(1); round++ {
		reqs := randReqs(rng, 100, now)
		now += 100
		probs := make([]float64, len(reqs))
		for i := range reqs {
			r.Enqueue(reqs[i], &probs[i])
		}
		r.Flush()
	}
	if !r.ShardUp(1) {
		t.Fatal("shard 1 never re-admitted")
	}
	if v := h.servers[1].ModelVersion(); v != 2 {
		t.Fatalf("recovered shard runs version %d, want 2 (pushed on reconnect)", v)
	}
	// And the fleet as a whole serves model B.
	rows := make([]float64, 30*features.Dim)
	for i := range rows {
		rows[i] = rng.Float64() * 100
	}
	probs := make([]float64, 30)
	if err := r.Predict(rows, features.Dim, probs); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 30)
	mB.PredictMatrix(rows, want, 1)
	for i := range want {
		if probs[i] != want[i] {
			t.Fatalf("row %d served by a stale model after recovery", i)
		}
	}
}
