package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"testing"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/server"
)

// trainModel trains a small model whose label is sizeRule(size); distinct
// rules give distinguishable models for rollout tests.
func trainModel(tb testing.TB, seed int64, sizeRule func(float64) bool) *gbdt.Model {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := gbdt.NewDataset(features.Dim)
	row := make([]float64, features.Dim)
	for i := 0; i < 2000; i++ {
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		label := 0.0
		if sizeRule(row[features.FeatSize]) {
			label = 1
		}
		ds.Append(row, label)
	}
	p := gbdt.DefaultParams()
	p.NumIterations = 10
	m, err := gbdt.Train(ds, p)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func bigObjects(size float64) bool   { return size > 50 }
func smallObjects(size float64) bool { return size < 30 }

// harness runs N shard servers behind stable logical names ("shard0",
// "shard1", …) whose Dial mapping the test can repoint — killing and
// restarting a shard changes the real listener, not the name the router
// routes on.
type harness struct {
	tb      testing.TB
	model   *gbdt.Model
	servers []*server.Server
	addrs   []string
}

func newHarness(tb testing.TB, n int, m *gbdt.Model) *harness {
	tb.Helper()
	h := &harness{tb: tb, model: m, servers: make([]*server.Server, n), addrs: make([]string, n)}
	for i := 0; i < n; i++ {
		h.restart(i, m)
	}
	tb.Cleanup(func() {
		for _, s := range h.servers {
			if s != nil {
				_ = s.Close()
			}
		}
	})
	return h
}

// names returns the logical shard addresses for Config.Addrs.
func (h *harness) names() []string {
	names := make([]string, len(h.servers))
	for i := range names {
		names[i] = fmt.Sprintf("shard%d", i)
	}
	return names
}

// dial resolves a logical shard name to the shard's current listener.
func (h *harness) dial(addr string) (net.Conn, error) {
	i, err := strconv.Atoi(strings.TrimPrefix(addr, "shard"))
	if err != nil || i < 0 || i >= len(h.addrs) {
		return nil, fmt.Errorf("harness: unknown shard %q", addr)
	}
	return net.Dial("tcp", h.addrs[i])
}

// kill closes shard i's server; Close drains handlers, so when it
// returns no further responses can arrive on existing connections.
func (h *harness) kill(i int) {
	h.tb.Helper()
	if err := h.servers[i].Close(); err != nil {
		h.tb.Fatalf("kill shard %d: %v", i, err)
	}
}

// restart boots shard i on a fresh listener with the given model.
func (h *harness) restart(i int, m *gbdt.Model) {
	h.tb.Helper()
	s := server.New(m, 2)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		h.tb.Fatal(err)
	}
	h.servers[i] = s
	h.addrs[i] = addr.String()
}

// randReqs generates a deterministic admit stream: IDs recur (so the
// censor path is meaningful), sizes and times vary.
func randReqs(rng *rand.Rand, n int, startTime int64) []server.AdmitRequest {
	reqs := make([]server.AdmitRequest, n)
	for i := range reqs {
		reqs[i] = server.AdmitRequest{
			Time: startTime + int64(i),
			ID:   rng.Uint64() % 300,
			Size: 1 + rng.Int63n(1<<20),
			Cost: 1,
			Free: 1 << 30,
		}
	}
	return reqs
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	a, b := NewRing(3, 64), NewRing(3, 64)
	counts := make([]int, 3)
	for id := uint64(0); id < 30000; id++ {
		sa, sb := a.Shard(id), b.Shard(id)
		if sa != sb {
			t.Fatalf("id %d: ring built twice disagrees (%d vs %d)", id, sa, sb)
		}
		counts[sa]++
	}
	for s, c := range counts {
		if c < 30000/3/3 {
			t.Errorf("shard %d owns only %d of 30000 ids — ring badly unbalanced", s, c)
		}
	}
	if got := a.Shards(); got != 3 {
		t.Errorf("Shards() = %d, want 3", got)
	}
	one := NewRing(1, 8)
	for id := uint64(0); id < 100; id++ {
		if one.Shard(id) != 0 {
			t.Fatalf("single-shard ring routed id %d to %d", id, one.Shard(id))
		}
	}
}

// TestRouterMatchesPerShardClient is the equivalence property: the
// pipelined router must return, row for row, exactly what a classic
// synchronous client would have returned had it sent each shard's
// sub-stream over its own connection.
func TestRouterMatchesPerShardClient(t *testing.T) {
	m := trainModel(t, 1, bigObjects)
	h := newHarness(t, 3, m)
	r, err := NewRouter(Config{Addrs: h.names(), Dial: h.dial, Batch: 8, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	reqs := randReqs(rand.New(rand.NewSource(5)), 500, 0)
	probs := make([]float64, len(reqs))
	for i := range reqs {
		r.Enqueue(reqs[i], &probs[i])
	}
	r.Flush()

	perShard := make(map[int][]int)
	for i := range reqs {
		s := r.HomeShard(reqs[i].ID)
		perShard[s] = append(perShard[s], i)
	}
	for s, idxs := range perShard {
		c, err := server.Dial(h.addrs[s])
		if err != nil {
			t.Fatal(err)
		}
		sub := make([]server.AdmitRequest, len(idxs))
		for k, i := range idxs {
			sub[k] = reqs[i]
		}
		want, err := c.Admit(sub)
		_ = c.Close()
		if err != nil {
			t.Fatalf("classic client shard %d: %v", s, err)
		}
		for k, i := range idxs {
			if probs[i] != want[k] {
				t.Fatalf("row %d (shard %d): router %v, classic %v", i, s, probs[i], want[k])
			}
		}
	}
}

func TestRouterPredictMatchesLocal(t *testing.T) {
	m := trainModel(t, 1, bigObjects)
	h := newHarness(t, 3, m)
	r, err := NewRouter(Config{Addrs: h.names(), Dial: h.dial, Batch: 16, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rng := rand.New(rand.NewSource(9))
	const nrows = 203 // deliberately not a multiple of the batch
	rows := make([]float64, nrows*features.Dim)
	for i := range rows {
		rows[i] = rng.Float64() * 100
	}
	probs := make([]float64, nrows)
	if err := r.Predict(rows, features.Dim, probs); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, nrows)
	m.PredictMatrix(rows, want, 1)
	for i := range want {
		if probs[i] != want[i] {
			t.Fatalf("row %d: fleet %v, local %v", i, probs[i], want[i])
		}
	}
}

func TestRouterRolloutBroadcast(t *testing.T) {
	mA := trainModel(t, 1, bigObjects)
	mB := trainModel(t, 99, smallObjects)
	h := newHarness(t, 3, mA)
	r, err := NewRouter(Config{Addrs: h.names(), Dial: h.dial, Batch: 16, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.Rollout(2, mB); err != nil {
		t.Fatalf("rollout: %v", err)
	}
	if v := r.ModelVersion(); v != 2 {
		t.Fatalf("router version %d, want 2", v)
	}
	for i, s := range h.servers {
		if v := s.ModelVersion(); v != 2 {
			t.Fatalf("shard %d at version %d after broadcast", i, v)
		}
	}
	rows := make([]float64, 40*features.Dim)
	rng := rand.New(rand.NewSource(3))
	for i := range rows {
		rows[i] = rng.Float64() * 100
	}
	probs := make([]float64, 40)
	if err := r.Predict(rows, features.Dim, probs); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 40)
	mB.PredictMatrix(rows, want, 1)
	for i := range want {
		if probs[i] != want[i] {
			t.Fatalf("row %d served by stale model: %v, want %v", i, probs[i], want[i])
		}
	}
	if err := r.Rollout(1, mA); err == nil {
		t.Fatal("stale rollout accepted")
	}
	if err := r.Rollout(0, mA); err == nil {
		t.Fatal("version-0 rollout accepted")
	}
}

// TestRouterUnreachableShardDegrades: a shard that never comes up only
// degrades its own key range — its rows get censor answers, other
// shards' rows get model answers, and nothing errors.
func TestRouterUnreachableShardDegrades(t *testing.T) {
	m := trainModel(t, 1, bigObjects)
	h := newHarness(t, 2, m)
	// Three logical shards, but shard2 has no server behind it.
	addrs := append(h.names(), "shard2-unreachable")
	dial := func(addr string) (net.Conn, error) {
		if strings.Contains(addr, "unreachable") {
			return nil, fmt.Errorf("harness: shard is gone")
		}
		return h.dial(addr)
	}
	r, err := NewRouter(Config{Addrs: addrs, Dial: dial, Batch: 8, MaxInFlight: 2, ProbeEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.ShardUp(2) {
		t.Fatal("unreachable shard reported up")
	}

	reqs := randReqs(rand.New(rand.NewSource(7)), 400, 0)
	probs := make([]float64, len(reqs))
	for i := range probs {
		probs[i] = math.NaN()
	}
	for i := range reqs {
		r.Enqueue(reqs[i], &probs[i])
	}
	r.Flush()

	downRows := 0
	for i := range reqs {
		if math.IsNaN(probs[i]) {
			t.Fatalf("row %d never completed", i)
		}
		if r.HomeShard(reqs[i].ID) == 2 {
			downRows++
			if probs[i] != 0 && probs[i] != 1 {
				t.Fatalf("down-shard row %d got non-censor likelihood %v", i, probs[i])
			}
		}
	}
	if downRows == 0 {
		t.Fatal("test stream never hit the down shard's range")
	}
	// A second pass over the same IDs must see censor admits (seen → 1)
	// for the down range: its history was fed by the first pass.
	rerun := randReqs(rand.New(rand.NewSource(7)), 400, 400)
	probs2 := make([]float64, len(rerun))
	for i := range rerun {
		r.Enqueue(rerun[i], &probs2[i])
	}
	r.Flush()
	for i := range rerun {
		if r.HomeShard(rerun[i].ID) == 2 && probs2[i] != 1 {
			t.Fatalf("repeat row %d not admitted by warm censor (got %v)", i, probs2[i])
		}
	}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := NewRouter(Config{}); err == nil {
		t.Fatal("empty Addrs accepted")
	}
	if _, err := NewRouter(Config{Addrs: []string{"a"}, Batch: -1}); err == nil {
		t.Fatal("negative batch accepted")
	}
	dialFail := func(string) (net.Conn, error) { return nil, fmt.Errorf("no") }
	if _, err := NewRouter(Config{Addrs: []string{"a", "b"}, Dial: dialFail}); err == nil {
		t.Fatal("fleet with zero reachable shards accepted")
	}
}

func TestRouterPredictAllShardsDownErrors(t *testing.T) {
	m := trainModel(t, 1, bigObjects)
	h := newHarness(t, 2, m)
	r, err := NewRouter(Config{Addrs: h.names(), Dial: h.dial, Batch: 8, MaxInFlight: 2, ProbeEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h.kill(0)
	h.kill(1)
	rows := make([]float64, 10*features.Dim)
	probs := make([]float64, 10)
	if err := r.Predict(rows, features.Dim, probs); err == nil {
		t.Fatal("predict with the whole fleet down succeeded")
	}
}
