// Package fleet serves admission predictions from a sharded fleet of
// prediction servers instead of a single process: a consistent-hash ring
// assigns every object ID a home shard, a client-side Router coalesces
// per-request admission queries into per-shard batches and keeps several
// batches in flight per connection (the mux envelope of internal/server),
// and a versioned model rollout hot-swaps the whole fleet atomically.
//
// Failure handling lifts the RemoteAdmitter posture (internal/core) from
// one connection to the ring: when a shard dies, only its key range
// degrades — rows that hash to it are answered by that shard's local
// SecondHitCensor, whose history was kept warm by observing every
// completed row, while the other shards keep serving model predictions.
// A recovered shard is re-admitted to the ring (and brought up to the
// current model version) after a deterministic, count-based probe.
//
// The Router is single-goroutine and synchronous, like server.Client:
// concurrency across shards comes from pipelining (the server works on
// shard A's batch while the router writes to shard B), not from client
// threads. Saturation is the harness's job (cmd/lfoload runs M routers).
package fleet

import (
	"fmt"
	"net"

	"lfo/internal/gbdt"
	"lfo/internal/obs"
	"lfo/internal/policy"
	"lfo/internal/server"
	"lfo/internal/trace"
)

// Defaults for Config knobs left zero.
const (
	// DefaultBatch is the admission batch size per shard.
	DefaultBatch = 64
	// DefaultMaxInFlight is the pipeline window: batches in flight per
	// shard connection before the router must read a response.
	DefaultMaxInFlight = 4
	// DefaultReplicas is the virtual points per shard on the ring.
	DefaultReplicas = 64
	// DefaultProbeEvery is the number of fallback rows a down shard
	// absorbs between reconnection attempts. Count-based (not timer
	// based) so recovery is deterministic under replay.
	DefaultProbeEvery = 32
)

// FallbackAdmitter is the per-shard degraded-mode heuristic; it matches
// core.FallbackAdmitter structurally. policy.SecondHitCensor is the
// default implementation.
type FallbackAdmitter interface {
	Admit(r trace.Request, freeBytes int64) (bool, float64)
	Observe(r trace.Request)
}

// Config assembles a Router.
type Config struct {
	// Addrs are the shard addresses; position is the shard index.
	Addrs []string
	// Batch is rows per admission batch (0 → DefaultBatch).
	Batch int
	// MaxInFlight is the per-shard pipeline window (0 → DefaultMaxInFlight).
	MaxInFlight int
	// Replicas is virtual ring points per shard (0 → DefaultReplicas).
	Replicas int
	// ProbeEvery is fallback rows between reconnect probes for a down
	// shard (0 → DefaultProbeEvery).
	ProbeEvery int
	// Dial opens a shard connection; nil means net.Dial("tcp", addr).
	// Tests and the chaos harness substitute it to redirect shards.
	Dial func(addr string) (net.Conn, error)
	// NewFallback builds shard i's degraded-mode admitter; nil means
	// policy.NewSecondHitCensor(0).
	NewFallback func(shard int) FallbackAdmitter
	// MaxResponsePayload caps accepted response frames per connection
	// (0 → server.DefaultMuxResponseMax).
	MaxResponsePayload int
	// Obs, when set, receives per-shard counters under the
	// fleet_shard<i>_ prefix.
	Obs *obs.Registry
}

// flight is one in-flight admission batch: its correlation ID and row
// count. The rows themselves live in the shard's slab at the slot whose
// ring position matches the flight's.
type flight struct {
	id uint64
	n  int
}

// shard is the router's view of one fleet member.
type shard struct {
	addr string
	mc   *server.MuxConn
	up   bool

	// rows/dsts are fixed slabs of MaxInFlight×Batch entries. Slot s
	// (a ring position) covers [s·batch, s·batch+n): in-flight slots
	// hold the rows of their flight, and the open slot accumulates
	// pending rows. Destinations are caller pointers filled at
	// completion (remote probability or fallback likelihood).
	rows []server.AdmitRequest
	dsts []*float64
	// pn is pending rows in the open slot.
	pn int

	// fl is the flight ring: fl[flHead] is the oldest in-flight batch,
	// flLen the number in flight. The open slot is (flHead+flLen)%window.
	fl     []flight
	flHead int
	flLen  int

	// fallback answers this shard's key range while it is down and
	// observes every completed row so its history is warm the moment
	// degradation starts.
	fallback FallbackAdmitter
	// downRows counts fallback rows since the shard went down; every
	// ProbeEvery-th triggers a reconnect attempt.
	downRows int

	failovers *obs.Counter // failure events (one per kill), not rows
	fallbacks *obs.Counter // rows answered by the fallback heuristic
	batches   *obs.Counter // batches flushed to the wire
	served    *obs.Counter // rows completed remotely
}

// Router shards admission and prediction traffic over the fleet. It is
// synchronous and not safe for concurrent use; run one Router per client
// goroutine (cmd/lfoload runs M of them).
type Router struct {
	ring        *Ring
	shards      []shard
	batch       int
	maxInFlight int
	probeEvery  int
	maxResp     int
	dial        func(string) (net.Conn, error)
	nextID      uint64

	// version/model are the last Rollout arguments, re-pushed to a
	// recovered shard before it rejoins the ring; 0 means the shards'
	// boot-time model is current.
	version uint64
	model   *gbdt.Model

	// enqueueDown and onFail firewall the cold paths (outage fallback,
	// probing, failure drain) behind func values: the hotpath
	// allocation analysis stops at a dynamic call, so the per-row
	// steady-state path stays provably allocation-free while the
	// failure paths remain free to allocate.
	enqueueDown func(s *shard, req server.AdmitRequest, dst *float64)
	onFail      func(s *shard)
}

// NewRouter connects to every shard and returns the router. A shard that
// cannot be dialed starts down (its range degrades to the fallback until
// a probe brings it back); an error is returned only for bad
// configuration or if no shard is reachable at all.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("fleet: Config.Addrs is empty")
	}
	batch := cfg.Batch
	if batch == 0 {
		batch = DefaultBatch
	}
	window := cfg.MaxInFlight
	if window == 0 {
		window = DefaultMaxInFlight
	}
	replicas := cfg.Replicas
	if replicas == 0 {
		replicas = DefaultReplicas
	}
	probeEvery := cfg.ProbeEvery
	if probeEvery == 0 {
		probeEvery = DefaultProbeEvery
	}
	if batch < 1 || window < 1 || replicas < 1 || probeEvery < 1 {
		return nil, fmt.Errorf("fleet: Batch, MaxInFlight, Replicas and ProbeEvery must be positive")
	}
	dial := cfg.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	newFallback := cfg.NewFallback
	if newFallback == nil {
		newFallback = func(int) FallbackAdmitter { return policy.NewSecondHitCensor(0) }
	}

	r := &Router{
		ring:        NewRing(len(cfg.Addrs), replicas),
		shards:      make([]shard, len(cfg.Addrs)),
		batch:       batch,
		maxInFlight: window,
		probeEvery:  probeEvery,
		maxResp:     cfg.MaxResponsePayload,
		dial:        dial,
		nextID:      1,
	}
	r.enqueueDown = r.enqueueDownSlow
	r.onFail = r.failShard

	anyUp := false
	for i, addr := range cfg.Addrs {
		sreg := cfg.Obs.Prefixed(fmt.Sprintf("fleet_shard%d_", i))
		s := &r.shards[i]
		*s = shard{
			addr:      addr,
			rows:      make([]server.AdmitRequest, window*batch),
			dsts:      make([]*float64, window*batch),
			fl:        make([]flight, window),
			fallback:  newFallback(i),
			failovers: sreg.Counter("failovers_total"),
			fallbacks: sreg.Counter("fallback_rows_total"),
			batches:   sreg.Counter("batches_total"),
			served:    sreg.Counter("rows_total"),
		}
		if conn, err := dial(addr); err == nil {
			s.mc = server.NewMuxConn(conn)
			s.mc.MaxResponsePayload = r.maxResp
			s.up = true
			anyUp = true
		}
	}
	if !anyUp {
		r.closeAll()
		return nil, fmt.Errorf("fleet: none of the %d shards is reachable", len(cfg.Addrs))
	}
	return r, nil
}

// Shards returns the fleet size.
func (r *Router) Shards() int { return len(r.shards) }

// ShardUp reports whether shard i currently serves its key range.
func (r *Router) ShardUp(i int) bool { return r.shards[i].up }

// HomeShard returns the ring assignment for an object ID.
func (r *Router) HomeShard(id uint64) int { return r.ring.Shard(id) }

// Close flushes nothing and closes every live connection; in-flight rows
// are NOT completed — call Flush first if their results matter.
func (r *Router) Close() error {
	r.closeAll()
	return nil
}

func (r *Router) closeAll() {
	for i := range r.shards {
		s := &r.shards[i]
		if s.mc != nil {
			_ = s.mc.Close()
			s.mc = nil
		}
		s.up = false
	}
}
