package fleet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"lfo/internal/server"
)

// stubConn is a synchronous in-memory shard: every mux admit frame
// written to it immediately queues the matching mux response (echoed
// correlation ID, 0.5 per row) for the next Read. It works because the
// Router is single-goroutine — a response can never be needed before its
// request was written — and it keeps the enqueue/flush benchmark free of
// a real server's allocations, which would pollute the 0 allocs/op pin.
type stubConn struct {
	out  []byte
	head int
}

// Wire constants mirrored from internal/server's unexported opcodes.
const (
	stubOpPredict = 1
	stubOpAdmit   = 2
	stubOpMux     = 3
)

func (c *stubConn) Write(p []byte) (int, error) {
	// One complete mux admit frame per Write (the router's contract):
	// u32 len | opMux | u64 corrID | opAdmit | u32 rows | tuples.
	if len(p) < 18 || p[4] != stubOpMux || p[13] != stubOpAdmit {
		return 0, fmt.Errorf("stub: unexpected frame")
	}
	id := binary.LittleEndian.Uint64(p[5:13])
	n := int(binary.LittleEndian.Uint32(p[14:18]))
	if c.head > 0 {
		// Compact: with a pipeline window the buffer never fully
		// drains, so shift the unread tail down instead of growing.
		rest := copy(c.out, c.out[c.head:])
		c.out = c.out[:rest]
		c.head = 0
	}
	payload := 9 + 5 + 8*n
	start := len(c.out)
	c.out = append(c.out, make([]byte, 4+payload)...)
	b := c.out[start:]
	binary.LittleEndian.PutUint32(b, uint32(payload))
	b[4] = stubOpMux
	binary.LittleEndian.PutUint64(b[5:], id)
	b[13] = stubOpPredict
	binary.LittleEndian.PutUint32(b[14:], uint32(n))
	half := math.Float64bits(0.5)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(b[18+8*i:], half)
	}
	return len(p), nil
}

func (c *stubConn) Read(p []byte) (int, error) {
	if c.head == len(c.out) {
		return 0, io.EOF // the router never reads more than it wrote
	}
	n := copy(p, c.out[c.head:])
	c.head += n
	return n, nil
}

func (c *stubConn) Close() error                     { return nil }
func (c *stubConn) LocalAddr() net.Addr              { return nil }
func (c *stubConn) RemoteAddr() net.Addr             { return nil }
func (c *stubConn) SetDeadline(time.Time) error      { return nil }
func (c *stubConn) SetReadDeadline(time.Time) error  { return nil }
func (c *stubConn) SetWriteDeadline(time.Time) error { return nil }

// BenchmarkRouterEnqueueFlush pins the admission hot path — ring lookup,
// slab write, batch framing, pipelined read, fan-back, censor observe —
// at 0 allocs/op in steady state (testdata/alloc_budgets.txt). Object
// IDs recycle within a bounded set so the censor's generations stop
// growing after warmup, exactly like a production stream with repeats.
func BenchmarkRouterEnqueueFlush(b *testing.B) {
	r, err := NewRouter(Config{
		Addrs: []string{"stub"},
		Batch: 64, MaxInFlight: 4,
		Dial: func(string) (net.Conn, error) { return &stubConn{}, nil },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()

	var dst [64]float64
	req := server.AdmitRequest{Size: 1000, Cost: 1, Free: 1 << 30}
	for i := 0; i < 8192; i++ { // warm slabs, buffers, censor generations
		req.ID = uint64(i % 1024)
		req.Time = int64(i)
		r.Enqueue(req, &dst[i%64])
	}
	r.Flush()

	b.ReportAllocs()
	b.SetBytes(40) // one wire tuple per op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.ID = uint64(i % 1024)
		req.Time = int64(i)
		r.Enqueue(req, &dst[i%64])
	}
	b.StopTimer()
	r.Flush()
}
