package fleet

import (
	"lfo/internal/server"
	"lfo/internal/trace"
)

// Enqueue routes one admission row to its home shard and returns
// immediately; *dst receives the admission likelihood by the time Flush
// returns (the remote model's probability, or the shard fallback's 0/1
// likelihood when the shard is down or fails mid-batch). Enqueue never
// reports an error to the caller: shard failure degrades, it does not
// fail the cache.
//
//lfo:hotpath
func (r *Router) Enqueue(req server.AdmitRequest, dst *float64) {
	s := &r.shards[r.ring.Shard(req.ID)]
	if !s.up {
		//lfolint:ignore hotpath-alloc outage path behind a func value: fallback admission and reconnect probing run only while the shard is down
		r.enqueueDown(s, req, dst)
		return
	}
	base := ((s.flHead + s.flLen) % r.maxInFlight) * r.batch
	s.rows[base+s.pn] = req
	s.dsts[base+s.pn] = dst
	s.pn++
	if s.pn == r.batch {
		r.flushShard(s)
	}
}

// Flush sends every partial batch and completes every in-flight flight:
// when it returns, all destinations passed to Enqueue are filled.
//
//lfo:hotpath
func (r *Router) Flush() {
	for i := range r.shards {
		s := &r.shards[i]
		r.flushShard(s)
		for s.up && s.flLen > 0 {
			r.readOne(s)
		}
	}
}

// flushShard writes the open slot's pending rows as one pipelined batch.
// When the pipeline window is full it first completes the oldest flight,
// so there is always a free slot for new rows.
//
//lfo:hotpath
func (r *Router) flushShard(s *shard) {
	if s.pn == 0 || !s.up {
		return
	}
	slot := (s.flHead + s.flLen) % r.maxInFlight
	base := slot * r.batch
	id := r.nextID
	r.nextID++
	if err := s.mc.WriteAdmitBatch(id, s.rows[base:base+s.pn]); err != nil {
		//lfolint:ignore hotpath-alloc failure path behind a func value: runs once per shard failure, draining every queued row to the fallback
		r.onFail(s)
		return
	}
	s.fl[slot] = flight{id: id, n: s.pn}
	s.flLen++
	s.pn = 0
	s.batches.Inc()
	if s.flLen == r.maxInFlight {
		r.readOne(s)
	}
}

// readOne completes the oldest in-flight batch: it validates the echoed
// correlation ID and row count (any mismatch means the stream
// desynchronized and the shard is failed), copies probabilities to the
// callers' destinations, and only then observes the rows into the shard
// fallback — observing at completion rather than enqueue keeps a row
// from being "seen" by its own observation if it later drains to the
// fallback.
//
//lfo:hotpath
func (r *Router) readOne(s *shard) {
	f := s.fl[s.flHead]
	id, probs, err := s.mc.ReadResponse()
	if err != nil || id != f.id || len(probs) != f.n {
		//lfolint:ignore hotpath-alloc failure path behind a func value: runs once per shard failure
		r.onFail(s)
		return
	}
	base := s.flHead * r.batch
	for i := 0; i < f.n; i++ {
		*s.dsts[base+i] = probs[i]
	}
	for i := 0; i < f.n; i++ {
		q := &s.rows[base+i]
		//lfolint:ignore hotpath-alloc fallback heuristic behind an interface; the censor's generation rotation allocates at a bounded amortized rate
		s.fallback.Observe(trace.Request{Time: q.Time, ID: trace.ObjectID(q.ID), Size: q.Size, Cost: q.Cost})
	}
	s.served.Add(int64(f.n))
	s.flHead = (s.flHead + 1) % r.maxInFlight
	s.flLen--
}

// enqueueDownSlow handles a row whose home shard is down: every
// probeEvery-th such row triggers a reconnect attempt (count-based so
// recovery is deterministic under replay); until one succeeds the row is
// answered by the shard's fallback.
func (r *Router) enqueueDownSlow(s *shard, req server.AdmitRequest, dst *float64) {
	s.downRows++
	if s.downRows%r.probeEvery == 0 && r.reconnect(s) {
		r.Enqueue(req, dst) // shard is back up: route remotely
		return
	}
	r.fallbackRow(s, req, dst)
}

// fallbackRow answers one row from the shard's degraded-mode heuristic.
// Admit before Observe, so a row never sees its own observation.
func (r *Router) fallbackRow(s *shard, req server.AdmitRequest, dst *float64) {
	tr := trace.Request{Time: req.Time, ID: trace.ObjectID(req.ID), Size: req.Size, Cost: req.Cost}
	_, p := s.fallback.Admit(tr, req.Free)
	*dst = p
	s.fallback.Observe(tr)
	s.fallbacks.Inc()
}

// failShard tears a shard down after a write/read/correlation failure:
// the failure is counted once, the connection closed, and every queued
// row — in-flight flights oldest first, then the open slot — drains to
// the fallback in enqueue order, so callers still get an answer for
// every row and replays reproduce the same decisions.
func (r *Router) failShard(s *shard) {
	if !s.up {
		return
	}
	s.up = false
	s.failovers.Inc()
	_ = s.mc.Close()
	s.mc = nil
	s.downRows = 0
	for k := 0; k < s.flLen; k++ {
		slot := (s.flHead + k) % r.maxInFlight
		base := slot * r.batch
		for i := 0; i < s.fl[slot].n; i++ {
			r.fallbackRow(s, s.rows[base+i], s.dsts[base+i])
		}
	}
	base := ((s.flHead + s.flLen) % r.maxInFlight) * r.batch
	for i := 0; i < s.pn; i++ {
		r.fallbackRow(s, s.rows[base+i], s.dsts[base+i])
	}
	s.flHead, s.flLen, s.pn = 0, 0, 0
}

// reconnect re-dials a down shard and, if the fleet has rolled a model
// since boot, pushes the current version before the shard rejoins the
// ring — a recovered shard never serves a stale model.
func (r *Router) reconnect(s *shard) bool {
	conn, err := r.dial(s.addr)
	if err != nil {
		return false
	}
	mc := server.NewMuxConn(conn)
	mc.MaxResponsePayload = r.maxResp
	if r.version > 0 {
		if err := mc.Rollout(r.version, r.model); err != nil {
			_ = mc.Close()
			return false
		}
	}
	s.mc = mc
	s.up = true
	s.downRows = 0
	return true
}
