package pq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lfo/internal/trace"
)

func TestPQueueBasics(t *testing.T) {
	q := New()
	q.Push(1, 5)
	q.Push(2, 3)
	q.Push(3, 8)
	if id, pr := q.Min(); id != 2 || pr != 3 {
		t.Fatalf("Min = %d,%g, want 2,3", id, pr)
	}
	q.Update(2, 10)
	if id, _ := q.Min(); id != 1 {
		t.Fatalf("after update Min = %d, want 1", id)
	}
	q.Remove(1)
	if id, _ := q.Min(); id != 3 {
		t.Fatalf("after remove Min = %d, want 3", id)
	}
	if pr, ok := q.Priority(3); !ok || pr != 8 {
		t.Errorf("Priority(3) = %g,%v", pr, ok)
	}
	if _, ok := q.Priority(99); ok {
		t.Error("Priority(99) found")
	}
	id, pr := q.PopMin()
	if id != 3 || pr != 8 {
		t.Errorf("PopMin = %d,%g", id, pr)
	}
	id, _ = q.PopMin()
	if id != 2 || q.Len() != 0 {
		t.Errorf("final PopMin = %d, len = %d", id, q.Len())
	}
}

func TestPQueueTieBreakFIFO(t *testing.T) {
	q := New()
	q.Push(10, 1)
	q.Push(20, 1)
	q.Push(30, 1)
	if id, _ := q.PopMin(); id != 10 {
		t.Errorf("tie broke to %d, want 10 (oldest)", id)
	}
}

// TestPQueueMatchesSort property: popping everything yields priorities in
// non-decreasing order.
func TestPQueueMatchesSort(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := New()
		for i := 0; i < int(n); i++ {
			q.Push(trace.ObjectID(i), float64(rng.Intn(20)))
		}
		// Random updates.
		for i := 0; i < int(n)/2; i++ {
			q.Update(trace.ObjectID(rng.Intn(int(n))), float64(rng.Intn(20)))
		}
		prev := -1.0
		for q.Len() > 0 {
			_, pr := q.PopMin()
			if pr < prev {
				return false
			}
			prev = pr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPQueuePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func(q *Queue)
	}{
		{"dup push", func(q *Queue) { q.Push(1, 1); q.Push(1, 2) }},
		{"missing update", func(q *Queue) { q.Update(9, 1) }},
		{"missing remove", func(q *Queue) { q.Remove(9) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.f(New())
		})
	}
}
