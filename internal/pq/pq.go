// Package pq provides an indexed min-heap over cache objects keyed by a
// float64 priority, supporting O(log n) update and removal by object ID.
// It backs the priority-based policies (LFU, LFUDA, GDSF, LRU-K) and LFO's
// likelihood-ranked eviction.
package pq

import (
	"fmt"

	"lfo/internal/trace"
)

// entry is an element of Queue.
type entry struct {
	id    trace.ObjectID
	prio  float64
	tie   uint64 // insertion sequence breaks priority ties deterministically
	index int
}

// Queue is an indexed min-heap over objects keyed by float64 priority,
// supporting O(log n) update and removal by object ID. It backs the
// priority-based policies (LFU, LFUDA, GDSF, LRU-K, LFO's eviction rank).
type Queue struct {
	items []*entry
	byID  map[trace.ObjectID]*entry
	seq   uint64
	// removed entries recycled by Push; bounds steady-state allocation to
	// the peak queue length instead of one allocation per admission.
	free []*entry
}

// New returns an empty queue.
func New() *Queue {
	return &Queue{byID: make(map[trace.ObjectID]*entry, 1024)}
}

func (q *Queue) Len() int { return len(q.items) }

// Push inserts an object with a priority. Panics on duplicate ID.
func (q *Queue) Push(id trace.ObjectID, prio float64) {
	if _, ok := q.byID[id]; ok {
		panic(fmt.Sprintf("pq: Queue duplicate id %d", id))
	}
	q.seq++
	var e *entry
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free = q.free[:n-1]
		e.id, e.prio, e.tie, e.index = id, prio, q.seq, len(q.items)
	} else {
		//lfolint:ignore hotpath-alloc freelist miss: one entry per new peak queue length, recycled forever after
		e = &entry{id: id, prio: prio, tie: q.seq, index: len(q.items)}
	}
	//lfolint:ignore hotpath-alloc heap storage grows to the peak resident count, then stays
	q.items = append(q.items, e)
	q.byID[id] = e
	q.up(e.index)
}

// Update changes an object's priority. Panics if absent.
func (q *Queue) Update(id trace.ObjectID, prio float64) {
	e, ok := q.byID[id]
	if !ok {
		panic(fmt.Sprintf("pq: Queue update of missing id %d", id))
	}
	e.prio = prio
	q.seq++
	e.tie = q.seq
	q.down(e.index)
	q.up(e.index)
}

// Remove deletes an object. Panics if absent.
func (q *Queue) Remove(id trace.ObjectID) {
	e, ok := q.byID[id]
	if !ok {
		panic(fmt.Sprintf("pq: Queue remove of missing id %d", id))
	}
	q.removeAt(e.index)
}

// Min returns the lowest-priority object without removing it. Panics on
// empty queue.
func (q *Queue) Min() (trace.ObjectID, float64) {
	e := q.items[0]
	return e.id, e.prio
}

// PopMin removes and returns the lowest-priority object.
func (q *Queue) PopMin() (trace.ObjectID, float64) {
	e := q.items[0]
	q.removeAt(0)
	return e.id, e.prio
}

// Priority returns an object's priority and whether it is present.
func (q *Queue) Priority(id trace.ObjectID) (float64, bool) {
	e, ok := q.byID[id]
	if !ok {
		return 0, false
	}
	return e.prio, true
}

func (q *Queue) removeAt(i int) {
	e := q.items[i]
	last := len(q.items) - 1
	q.swap(i, last)
	q.items = q.items[:last]
	delete(q.byID, e.id)
	// Recycle the entry. Its fields stay intact until the next Push, so
	// PopMin may still read id/prio after this returns.
	//lfolint:ignore hotpath-alloc freelist backing array grows to the peak queue length, then recycles
	q.free = append(q.free, e)
	if i < last {
		q.down(i)
		q.up(i)
	}
}

func (q *Queue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.tie < b.tie
}

func (q *Queue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.swap(i, p)
		i = p
	}
}

func (q *Queue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		q.swap(i, small)
		i = small
	}
}
