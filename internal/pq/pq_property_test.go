package pq

import (
	"math/rand"
	"testing"

	"lfo/internal/trace"
)

// refEntry mirrors one queue element in the naive reference model.
type refEntry struct {
	prio float64
	tie  uint64
}

// refModel is the O(n)-per-op reference the heap is checked against: a
// plain map with linear scans for the minimum, using the same
// (priority, insertion-sequence) ordering.
type refModel struct {
	entries map[trace.ObjectID]refEntry
	seq     uint64
}

func newRefModel() *refModel {
	return &refModel{entries: make(map[trace.ObjectID]refEntry)}
}

func (r *refModel) push(id trace.ObjectID, prio float64) {
	r.seq++
	r.entries[id] = refEntry{prio: prio, tie: r.seq}
}

func (r *refModel) update(id trace.ObjectID, prio float64) {
	r.seq++
	r.entries[id] = refEntry{prio: prio, tie: r.seq}
}

func (r *refModel) remove(id trace.ObjectID) { delete(r.entries, id) }

func (r *refModel) min() (trace.ObjectID, float64) {
	var bestID trace.ObjectID
	var best refEntry
	first := true
	for id, e := range r.entries {
		if first || e.prio < best.prio || (e.prio == best.prio && e.tie < best.tie) {
			bestID, best, first = id, e, false
		}
	}
	return bestID, best.prio
}

// checkInvariants verifies the structural invariants the heap's public
// behaviour rests on: the heap property at every edge, index fields that
// match positions, and a byID map in exact sync with the slice.
func checkInvariants(t *testing.T, q *Queue) {
	t.Helper()
	n := len(q.items)
	for i, e := range q.items {
		if e.index != i {
			t.Fatalf("items[%d].index = %d", i, e.index)
		}
		if got, ok := q.byID[e.id]; !ok || got != e {
			t.Fatalf("byID[%d] out of sync with items[%d]", e.id, i)
		}
		if l := 2*i + 1; l < n && q.less(l, i) {
			t.Fatalf("heap violation: items[%d] < parent items[%d]", l, i)
		}
		if r := 2*i + 2; r < n && q.less(r, i) {
			t.Fatalf("heap violation: items[%d] < parent items[%d]", r, i)
		}
	}
	if len(q.byID) != n {
		t.Fatalf("byID has %d entries, items has %d", len(q.byID), n)
	}
}

// TestQueueMatchesReference drives seeded-random op sequences through
// the heap and the naive reference together. After every op the heap
// invariants must hold and Min/Priority/PopMin must agree with linear
// scans — including tie-breaks, which follow insertion sequence.
func TestQueueMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 17, 4242} {
		rng := rand.New(rand.NewSource(seed))
		q := New()
		ref := newRefModel()
		live := []trace.ObjectID{}
		nextID := trace.ObjectID(1)

		pickLive := func() trace.ObjectID { return live[rng.Intn(len(live))] }
		dropLive := func(id trace.ObjectID) {
			for i, v := range live {
				if v == id {
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					return
				}
			}
			t.Fatalf("id %d not in live set", id)
		}
		// Coarse priorities force frequent ties so the insertion-sequence
		// tie-break actually gets exercised.
		randPrio := func() float64 { return float64(rng.Intn(8)) }

		for op := 0; op < 3000; op++ {
			switch r := rng.Intn(10); {
			case r < 4 || len(live) == 0: // push
				id := nextID
				nextID++
				p := randPrio()
				q.Push(id, p)
				ref.push(id, p)
				live = append(live, id)
			case r < 6: // update
				id := pickLive()
				p := randPrio()
				q.Update(id, p)
				ref.update(id, p)
			case r < 8: // remove
				id := pickLive()
				q.Remove(id)
				ref.remove(id)
				dropLive(id)
			default: // pop min
				wantID, wantPrio := ref.min()
				gotID, gotPrio := q.PopMin()
				if gotID != wantID || gotPrio != wantPrio {
					t.Fatalf("seed %d op %d: PopMin = (%d, %g), reference (%d, %g)", seed, op, gotID, gotPrio, wantID, wantPrio)
				}
				ref.remove(wantID)
				dropLive(wantID)
			}
			checkInvariants(t, q)
			if q.Len() != len(ref.entries) {
				t.Fatalf("seed %d op %d: Len = %d, reference %d", seed, op, q.Len(), len(ref.entries))
			}
			if q.Len() > 0 {
				wantID, wantPrio := ref.min()
				gotID, gotPrio := q.Min()
				if gotID != wantID || gotPrio != wantPrio {
					t.Fatalf("seed %d op %d: Min = (%d, %g), reference (%d, %g)", seed, op, gotID, gotPrio, wantID, wantPrio)
				}
				probe := pickLive()
				gotP, ok := q.Priority(probe)
				if !ok || gotP != ref.entries[probe].prio {
					t.Fatalf("seed %d op %d: Priority(%d) = (%g, %v), reference %g", seed, op, probe, gotP, ok, ref.entries[probe].prio)
				}
			}
		}

		// Drain: the full pop order must match repeated reference scans.
		for q.Len() > 0 {
			wantID, wantPrio := ref.min()
			gotID, gotPrio := q.PopMin()
			if gotID != wantID || gotPrio != wantPrio {
				t.Fatalf("seed %d drain: PopMin = (%d, %g), reference (%d, %g)", seed, gotID, gotPrio, wantID, wantPrio)
			}
			ref.remove(wantID)
			checkInvariants(t, q)
		}
		if len(ref.entries) != 0 {
			t.Fatalf("seed %d: reference still holds %d entries after drain", seed, len(ref.entries))
		}
	}
}

// TestQueuePanicsStayConsistent: the documented panics (duplicate push,
// missing update/remove) must fire without corrupting the queue.
func TestQueuePanicsStayConsistent(t *testing.T) {
	q := New()
	q.Push(1, 2)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate Push", func() { q.Push(1, 9) })
	mustPanic("missing Update", func() { q.Update(42, 1) })
	mustPanic("missing Remove", func() { q.Remove(42) })
	checkInvariants(t, q)
	if id, pr := q.Min(); id != 1 || pr != 2 {
		t.Errorf("queue corrupted after panics: Min = (%d, %g)", id, pr)
	}
}
