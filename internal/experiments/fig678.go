package experiments

import (
	"fmt"
	"runtime"
	"time"

	"lfo/internal/core"
	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/opt"
	"lfo/internal/policy"
	"lfo/internal/sim"
)

// Fig6Result holds the full policy comparison plus the OPT bound.
type Fig6Result struct {
	// Policies is sorted descending by BHR, like the paper's Figure 6.
	Policies []PolicyResult
	// OPT is the offline-optimal bound on the same trace (post-warmup
	// portion measured identically).
	OPT PolicyResult
	// LFOShareOfOPT is LFO's BHR divided by OPT's (paper: ≈80%).
	LFOShareOfOPT float64
}

// fig6PolicyNames is the paper's Figure 6 line-up (we additionally carry
// FIFO, LFU and TinyLFU as context rows).
var fig6PolicyNames = []string{
	"lru", "lruk", "lfuda", "s4lru", "gdwheel", "adaptsize", "hyperbolic", "lhd",
	"fifo", "lfu", "gdsf", "tinylfu",
}

// Fig6 reproduces Figure 6: BHR of LFO against the state-of-the-art
// policies and OPT. Shape targets: OPT > LFO > best heuristic; LFO at
// roughly 80% of OPT.
func Fig6(cfg Config) (*Fig6Result, error) {
	tr, err := cfg.cdnTrace()
	if err != nil {
		return nil, err
	}
	warmup := cfg.Window // first LFO window is bootstrap; exclude for all
	opts := sim.Options{Warmup: warmup, Obs: cfg.Obs}

	res := &Fig6Result{}
	for _, name := range fig6PolicyNames {
		p, err := policy.New(name, cfg.CacheSize, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m := sim.Run(tr, p, opts)
		res.Policies = append(res.Policies, PolicyResult{Name: m.Policy, BHR: m.BHR(), OHR: m.OHR()})
	}

	lfo, err := core.New(core.Config{
		CacheSize:  cfg.CacheSize,
		WindowSize: cfg.Window,
		OPT:        opt.Config{Algorithm: opt.AlgoAuto, RankFraction: 0.5},
		Obs:        cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	lfoM := sim.Run(tr, lfo, opts)
	lfoRes := PolicyResult{Name: lfoM.Policy, BHR: lfoM.BHR(), OHR: lfoM.OHR()}
	res.Policies = append(res.Policies, lfoRes)

	// OPT bound over the measured (post-warmup) portion.
	optRes, err := opt.Compute(tr.Slice(warmup, tr.Len()), opt.Config{
		CacheSize: cfg.CacheSize,
		Algorithm: opt.AlgoAuto,
	})
	if err != nil {
		return nil, err
	}
	res.OPT = PolicyResult{Name: "OPT", BHR: optRes.BHR(), OHR: optRes.OHR()}
	if res.OPT.BHR > 0 {
		res.LFOShareOfOPT = lfoRes.BHR / res.OPT.BHR
	}
	sortByBHR(res.Policies)
	return res, nil
}

// Fig6Table formats Fig6 results.
func Fig6Table(r *Fig6Result, objective string) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig 6: policy comparison (%s objective)", objective),
		Header: []string{"policy", "BHR", "OHR"},
	}
	add := func(p PolicyResult) {
		t.Rows = append(t.Rows, []string{p.Name, fmt.Sprintf("%.4f", p.BHR), fmt.Sprintf("%.4f", p.OHR)})
	}
	add(r.OPT)
	for _, p := range r.Policies {
		add(p)
	}
	t.Rows = append(t.Rows, []string{"LFO/OPT", fmt.Sprintf("%.1f%%", 100*r.LFOShareOfOPT), ""})
	return t
}

// ThroughputPoint is one Figure 7 measurement.
type ThroughputPoint struct {
	Threads int
	// ReqsPerSec is the sustained prediction throughput.
	ReqsPerSec float64
	// GbitAt32KB is the link rate those predictions can drive assuming
	// the paper's 32 KB mean object size.
	GbitAt32KB float64
}

// Fig7 reproduces Figure 7: prediction throughput versus predictor
// threads. Shape targets: near-linear scaling; a handful of threads
// saturates a 40 Gbit/s link at 32 KB objects.
func Fig7(cfg Config, threads []int) ([]ThroughputPoint, error) {
	if len(threads) == 0 {
		threads = defaultThreadSweep()
	}
	tr, err := cfg.cdnTrace()
	if err != nil {
		return nil, err
	}
	w := cfg.Window
	if w > tr.Len() {
		w = tr.Len()
	}
	lcfg := core.Config{CacheSize: cfg.CacheSize, WindowSize: w,
		OPT: opt.Config{Algorithm: opt.AlgoAuto, RankFraction: 0.5}}
	model, ex, err := core.TrainOnWindow(tr.Slice(0, w), lcfg)
	if err != nil {
		return nil, err
	}

	rows := ex.Feats
	n := ex.Requests
	out := make([]float64, n)
	var pts []ThroughputPoint
	for _, th := range threads {
		// Warm up once, then time enough repetitions for a stable rate.
		model.PredictMatrix(rows, out, th)
		const minDuration = 200 * time.Millisecond
		reps, elapsed := 0, time.Duration(0)
		//lfolint:ignore time-now throughput benchmarking measures wall-clock by design
		start := time.Now()
		for elapsed < minDuration {
			model.PredictMatrix(rows, out, th)
			reps++
			elapsed = time.Since(start)
		}
		rate := float64(reps*n) / elapsed.Seconds()
		pts = append(pts, ThroughputPoint{
			Threads:    th,
			ReqsPerSec: rate,
			GbitAt32KB: rate * 32 * 1024 * 8 / 1e9,
		})
	}
	return pts, nil
}

func defaultThreadSweep() []int {
	max := runtime.NumCPU()
	sweep := []int{1}
	for t := 2; t < max; t *= 2 {
		sweep = append(sweep, t)
	}
	if sweep[len(sweep)-1] != max {
		sweep = append(sweep, max)
	}
	return sweep
}

// Fig7Table formats Fig7 results.
func Fig7Table(pts []ThroughputPoint) *Table {
	t := &Table{
		Title:  "Fig 7: prediction throughput vs predictor threads",
		Header: []string{"threads", "reqs/sec", "Gbit/s @32KB objects"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Threads),
			fmt.Sprintf("%.0f", p.ReqsPerSec),
			fmt.Sprintf("%.1f", p.GbitAt32KB),
		})
	}
	return t
}

// ImportanceEntry is one feature's share of model splits.
type ImportanceEntry struct {
	Feature string
	Percent float64
}

// Fig8 reproduces Figure 8: the fraction of tree branches testing each
// feature. Shape targets: object size dominates (paper: 28%), free cache
// space is significant (~10%), early gaps (1–4) are heavily used with a
// long tail of higher gaps, and the cost feature is unused under the BHR
// objective (it is redundant with size).
func Fig8(cfg Config) ([]ImportanceEntry, *gbdt.Model, error) {
	tr, err := cfg.cdnTrace()
	if err != nil {
		return nil, nil, err
	}
	w := cfg.Window
	if w > tr.Len() {
		w = tr.Len()
	}
	lcfg := core.Config{CacheSize: cfg.CacheSize, WindowSize: w,
		OPT: opt.Config{Algorithm: opt.AlgoAuto, RankFraction: 0.5}}
	model, _, err := core.TrainOnWindow(tr.Slice(0, w), lcfg)
	if err != nil {
		return nil, nil, err
	}
	imp := model.FeatureImportance()
	names := features.Names()
	out := make([]ImportanceEntry, len(imp))
	for i := range imp {
		out[i] = ImportanceEntry{Feature: names[i], Percent: 100 * imp[i]}
	}
	return out, model, nil
}

// Fig8Table formats Fig8 results, listing size/cost/free and the gap
// features the paper's bar chart shows (1, 5, 10, ..., 50), plus gaps 2–4
// which the paper calls out as heavily used.
func Fig8Table(entries []ImportanceEntry) *Table {
	t := &Table{
		Title:  "Fig 8: relative importance of LFO's features (% of tree branches)",
		Header: []string{"feature", "occurrence %"},
	}
	want := map[string]bool{"size": true, "cost": true, "free": true}
	for _, g := range []int{1, 2, 3, 4, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50} {
		want[fmt.Sprintf("gap%d", g)] = true
	}
	for _, e := range entries {
		if want[e.Feature] {
			t.Rows = append(t.Rows, []string{e.Feature, fmt.Sprintf("%.2f", e.Percent)})
		}
	}
	return t
}
