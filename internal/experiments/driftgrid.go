package experiments

import (
	"fmt"

	"lfo/internal/core"
	"lfo/internal/drift"
	"lfo/internal/gen"
	"lfo/internal/opt"
	"lfo/internal/policy"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// DriftGridResult is one cell of the online-learning-bridge evaluation:
// one serving strategy on one drift scenario, scored by hit ratios and
// by regret against the per-window offline optimum.
type DriftGridResult struct {
	Scenario string
	Policy   string
	BHR      float64
	OHR      float64
	// Regret is the per-window regret series: OPT's byte hit ratio on
	// the window's requests (solved clairvoyantly from a cold cache)
	// minus the policy's. Lower is better; negative windows mean the
	// warm policy beat the cold-start optimum bound.
	Regret []float64
	// AvgRegret is the mean of Regret.
	AvgRegret float64
	// EarlyRetrains counts drift-triggered training rounds (0 for rows
	// without the trigger).
	EarlyRetrains int
}

// hybridGridLR is the bias learning rate the hybrid rows use. The bias
// is an EMA of the per-class disagreement, so 0.01 gives it a time
// constant of ~100 requests per size class — fast enough to track a
// shift within a window, slow enough not to chase per-object noise.
const hybridGridLR = 0.01

// driftGridPolicies enumerates the serving strategies, in the fixed
// order the grid emits rows.
var driftGridPolicies = []string{"frozen-gbdt", "ogd", "hybrid", "hybrid+early-retrain"}

// driftGridPolicy builds the cache for one grid row. The frozen row is
// the plain windowed LFO pipeline (frozen between retrains); ogd is the
// pure online learner with no model at all; the hybrid rows bridge the
// two, the last also arming the drift detector's early-retrain trigger.
func driftGridPolicy(cfg Config, name string) (sim.Policy, error) {
	switch name {
	case "frozen-gbdt":
		return core.New(cfg.lfoConfig())
	case "ogd":
		return policy.New("ogd", cfg.CacheSize, cfg.Seed)
	case "hybrid":
		lcfg := cfg.lfoConfig()
		lcfg.HybridLR = hybridGridLR
		return core.New(lcfg)
	case "hybrid+early-retrain":
		lcfg := cfg.lfoConfig()
		lcfg.HybridLR = hybridGridLR
		lcfg.DriftThreshold = drift.DefaultThreshold
		return core.New(lcfg)
	default:
		return nil, fmt.Errorf("experiments: unknown drift-grid policy %q", name)
	}
}

// WindowRegret scores a windowed metrics series against the per-window
// offline optimum: for each window, OPT is solved clairvoyantly on
// exactly that window's requests and the window's regret is OPT's BHR
// minus the policy's. The OPT side is byte-deterministic for any
// oc.Workers value, so the series is reproducible across worker counts.
func WindowRegret(tr *trace.Trace, wins []sim.WindowMetrics, oc opt.Config) ([]float64, error) {
	out := make([]float64, len(wins))
	for i, w := range wins {
		res, err := opt.Compute(tr.Slice(w.Start, w.Start+w.Requests), oc)
		if err != nil {
			return nil, err
		}
		out[i] = res.BHR() - w.BHR()
	}
	return out, nil
}

// optWindowBHR solves per-window OPT once for a scenario; every grid row
// shares the same window boundaries, so the solve is shared too.
func optWindowBHR(cfg Config, tr *trace.Trace, wins []sim.WindowMetrics) ([]float64, error) {
	oc := cfg.lfoConfig().OPT
	oc.CacheSize = cfg.CacheSize
	out := make([]float64, len(wins))
	for i, w := range wins {
		res, err := opt.Compute(tr.Slice(w.Start, w.Start+w.Requests), oc)
		if err != nil {
			return nil, err
		}
		out[i] = res.BHR()
	}
	return out, nil
}

// DriftGrid runs the {frozen-gbdt, ogd, hybrid, hybrid+early-retrain} ×
// {stable, cdn-drift, reshuffle} evaluation of the online-learning
// bridge, reporting BHR/OHR and per-window regret against OPT. Rows are
// emitted scenario-major in a fixed order and every cell is
// byte-deterministic for a given Config including across Workers values
// (the grid policies are synchronous; only solver internals
// parallelize).
func DriftGrid(cfg Config) ([]DriftGridResult, error) {
	var out []DriftGridResult
	for _, sc := range evictionScenarios(cfg) {
		tr, err := gen.Generate(sc.gen)
		if err != nil {
			return nil, err
		}
		trc := tr.WithCosts(cfg.Objective)
		opts := sim.Options{Warmup: cfg.Requests / 5, WindowSize: cfg.Window, Obs: cfg.Obs}
		var optBHR []float64
		for _, polName := range driftGridPolicies {
			p, err := driftGridPolicy(cfg, polName)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %v", sc.name, polName, err)
			}
			m := sim.Run(trc, p, opts)
			if optBHR == nil {
				if optBHR, err = optWindowBHR(cfg, trc, m.Windows); err != nil {
					return nil, fmt.Errorf("experiments: %s: per-window OPT: %v", sc.name, err)
				}
			}
			regret := make([]float64, len(m.Windows))
			sum := 0.0
			for i := range m.Windows {
				regret[i] = optBHR[i] - m.Windows[i].BHR()
				sum += regret[i]
			}
			avg := 0.0
			if len(regret) > 0 {
				avg = sum / float64(len(regret))
			}
			early := 0
			if lfo, ok := p.(*core.LFO); ok {
				early = lfo.EarlyRetrains()
			}
			out = append(out, DriftGridResult{
				Scenario:      sc.name,
				Policy:        polName,
				BHR:           m.BHR(),
				OHR:           m.OHR(),
				Regret:        regret,
				AvgRegret:     avg,
				EarlyRetrains: early,
			})
		}
	}
	return out, nil
}

// DriftGridTable formats the grid scenario-major.
func DriftGridTable(rs []DriftGridResult) *Table {
	t := &Table{
		Title:  "Online-learning bridge: serving strategy x drift scenario",
		Header: []string{"scenario", "policy", "BHR", "OHR", "avg regret", "early retrains"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Scenario, r.Policy,
			fmt.Sprintf("%.4f", r.BHR),
			fmt.Sprintf("%.4f", r.OHR),
			fmt.Sprintf("%.4f", r.AvgRegret),
			fmt.Sprintf("%d", r.EarlyRetrains),
		})
	}
	return t
}
