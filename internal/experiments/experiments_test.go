package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// The experiment tests validate the paper's qualitative shape targets at
// Quick() scale; EXPERIMENTS.md records the full-scale numbers.

func quick(t *testing.T) Config {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment harness skipped in -short mode")
	}
	return Quick()
}

func TestFig1Shape(t *testing.T) {
	rs, err := Fig1(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PolicyResult{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	gdsf, rlc, lru, rnd := byName["GDSF"], byName["RLC"], byName["LRU"], byName["RND"]
	// Shape: GDSF beats RND, LRU and RLC (Fig 1's point).
	for _, weak := range []PolicyResult{rlc, lru, rnd} {
		if gdsf.OHR <= weak.OHR {
			t.Errorf("GDSF OHR %.4f <= %s %.4f", gdsf.OHR, weak.Name, weak.OHR)
		}
	}
	// RLC lands in the RND/LRU band, far from GDSF (within the band ±
	// a generous margin, not above GDSF).
	band := gdsf.OHR - maxF(rnd.OHR, lru.OHR)
	if band <= 0 {
		t.Fatalf("no separation between GDSF and simple policies")
	}
	if rlc.OHR > gdsf.OHR-band/2 {
		t.Errorf("RLC OHR %.4f not clearly below GDSF %.4f", rlc.OHR, gdsf.OHR)
	}
	tbl := Fig1Table(rs)
	if !strings.Contains(tbl.String(), "GDSF") {
		t.Error("table missing GDSF row")
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestAccuracyHeadline(t *testing.T) {
	res, err := Accuracy(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: >93% on its production trace. Synthetic mixes are noisier;
	// requires a clearly-learned signal.
	if res.Accuracy < 0.80 {
		t.Errorf("accuracy %.3f, want >= 0.80", res.Accuracy)
	}
	if res.Accuracy > 0.999 {
		t.Errorf("accuracy %.3f suspiciously perfect", res.Accuracy)
	}
}

func TestFig5aShape(t *testing.T) {
	pts, err := Fig5a(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("only %d cutoff points", len(pts))
	}
	// FP monotone non-increasing, FN monotone non-decreasing in cutoff.
	for i := 1; i < len(pts); i++ {
		if pts[i].FalsePositivePct > pts[i-1].FalsePositivePct+1e-9 {
			t.Errorf("FP%% increased at cutoff %.2f", pts[i].Cutoff)
		}
		if pts[i].FalseNegativePct < pts[i-1].FalseNegativePct-1e-9 {
			t.Errorf("FN%% decreased at cutoff %.2f", pts[i].Cutoff)
		}
	}
	Fig5aTable(pts) // rendering must not panic
}

func TestFig5bShape(t *testing.T) {
	cfg := quick(t)
	pts, err := Fig5b(cfg, []int{2500, 10000, 20000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Error with the largest training set must not exceed the smallest
	// by more than noise (decaying trend).
	if pts[2].MeanErrPct > pts[0].MeanErrPct+2 {
		t.Errorf("error grew with training size: %.2f -> %.2f", pts[0].MeanErrPct, pts[2].MeanErrPct)
	}
	for _, p := range pts {
		if p.MinErrPct > p.MeanErrPct || p.MeanErrPct > p.MaxErrPct {
			t.Errorf("min/mean/max ordering broken at %d samples", p.Samples)
		}
	}
	Fig5bTable(pts)
}

func TestFig5cShape(t *testing.T) {
	cfg := quick(t)
	cfg.Window = 6000
	res, err := Fig5c(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ErrPcts) != 6 {
		t.Fatalf("errs = %d", len(res.ErrPcts))
	}
	// Robustness claim: small spread across seeds/subsets. The paper
	// reports ~0.5pp on one fixed trace; across different synthetic
	// subsets allow a few points.
	if res.SpreadPct > 10 {
		t.Errorf("seed spread %.2fpp implausibly high", res.SpreadPct)
	}
	if res.MeanErrPct <= 0 || res.MeanErrPct >= 50 {
		t.Errorf("mean error %.2f%% out of plausible range", res.MeanErrPct)
	}
	Fig5cTable(res)
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PolicyResult{}
	for _, p := range res.Policies {
		byName[p.Name] = p
	}
	lfo := byName["LFO"]
	// Core shape targets: OPT bounds everything; LFO beats LRU; LFO is a
	// large share of OPT.
	if res.OPT.BHR < lfo.BHR {
		t.Errorf("OPT BHR %.4f < LFO %.4f", res.OPT.BHR, lfo.BHR)
	}
	if lfo.BHR <= byName["LRU"].BHR {
		t.Errorf("LFO BHR %.4f <= LRU %.4f", lfo.BHR, byName["LRU"].BHR)
	}
	if res.LFOShareOfOPT < 0.5 {
		t.Errorf("LFO/OPT = %.2f, want >= 0.5", res.LFOShareOfOPT)
	}
	// Every policy must be within the OPT bound.
	for _, p := range res.Policies {
		if p.BHR > res.OPT.BHR+1e-9 {
			t.Errorf("%s BHR %.4f exceeds OPT %.4f", p.Name, p.BHR, res.OPT.BHR)
		}
	}
	Fig6Table(res, "bhr")
}

func TestFig7Shape(t *testing.T) {
	cfg := quick(t)
	cfg.Requests = 20000
	cfg.Window = 10000
	pts, err := Fig7(cfg, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].ReqsPerSec < 10000 {
		t.Errorf("single-thread throughput %.0f req/s implausibly low", pts[0].ReqsPerSec)
	}
	// Scaling: with real cores available, 4 threads should beat 1 thread
	// (generously: >1.5×). On a single-CPU host only require that the
	// parallel path is not catastrophically slower.
	if runtime.NumCPU() >= 4 {
		if pts[2].ReqsPerSec < 1.5*pts[0].ReqsPerSec {
			t.Errorf("4 threads %.0f < 1.5× single thread %.0f", pts[2].ReqsPerSec, pts[0].ReqsPerSec)
		}
	} else if pts[2].ReqsPerSec < 0.4*pts[0].ReqsPerSec {
		t.Errorf("4 threads %.0f < 0.4× single thread %.0f on %d-CPU host", pts[2].ReqsPerSec, pts[0].ReqsPerSec, runtime.NumCPU())
	}
	Fig7Table(pts)
}

func TestFig8Shape(t *testing.T) {
	cfg := quick(t)
	entries, model, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatal("no model")
	}
	imp := map[string]float64{}
	total := 0.0
	for _, e := range entries {
		imp[e.Feature] = e.Percent
		total += e.Percent
	}
	if total < 99.9 || total > 100.1 {
		t.Errorf("importances sum to %.2f%%, want 100%%", total)
	}
	// Shape targets: size dominates; cost unused under BHR (redundant
	// with size); gap1 heavily used.
	if imp["size"] < imp["cost"] {
		t.Errorf("size %.2f%% below cost %.2f%%", imp["size"], imp["cost"])
	}
	if imp["cost"] > 5 {
		t.Errorf("cost feature used in %.2f%% of branches, paper says unused for BHR", imp["cost"])
	}
	if imp["gap1"] <= 0 {
		t.Error("gap1 unused, paper says gaps 1-4 are heavily used")
	}
	Fig8Table(entries)
}

func TestAblationRankFraction(t *testing.T) {
	cfg := quick(t)
	cfg.Requests = 10000
	pts, err := AblationRankFraction(cfg, []float64{1.0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Agreement != 1.0 {
		t.Errorf("exact baseline agreement = %.3f, want 1.0", pts[0].Agreement)
	}
	if pts[1].Agreement < 0.7 {
		t.Errorf("0.3-fraction agreement %.3f implausibly low", pts[1].Agreement)
	}
	if pts[1].HitBytesShare > 1.0+1e-9 {
		t.Errorf("approximation hit bytes exceed exact: %.3f", pts[1].HitBytesShare)
	}
	AblationRankFractionTable(pts)
}

func TestAblationFeatureVariants(t *testing.T) {
	cfg := quick(t)
	cfg.Requests = 16000
	cfg.Window = 8000
	rs, err := AblationFeatureVariants(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("variants = %d", len(rs))
	}
	for _, r := range rs {
		if r.ErrPct <= 0 || r.ErrPct >= 60 {
			t.Errorf("%s: err %.2f%% out of plausible range", r.Variant, r.ErrPct)
		}
		if r.Splits <= 0 {
			t.Errorf("%s: no splits", r.Variant)
		}
	}
	AblationFeatureVariantsTable(rs)
}

func TestAblationPolicyDesign(t *testing.T) {
	cfg := quick(t)
	cfg.Requests = 20000
	cfg.Window = 5000
	rs, err := AblationPolicyDesign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("variants = %d", len(rs))
	}
	for _, r := range rs {
		if r.BHR <= 0 || r.BHR >= 1 {
			t.Errorf("%s: BHR %.4f degenerate", r.Variant, r.BHR)
		}
	}
	AblationPolicyDesignTable(rs)
}

func TestAblationIterations(t *testing.T) {
	cfg := quick(t)
	cfg.Requests = 12000
	cfg.Window = 6000
	rs, err := AblationIterations(cfg, []int{5, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[1].TrainTime < rs[0].TrainTime {
		t.Error("30 iterations trained faster than 5")
	}
	AblationIterationsTable(rs)
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "y"}},
	}
	s := tbl.String()
	if !strings.Contains(s, "== demo ==") || !strings.Contains(s, "xxxxx") {
		t.Errorf("bad render:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Errorf("want 3 lines, got %d", len(lines))
	}
}

func TestTieredExperiment(t *testing.T) {
	cfg := quick(t)
	cfg.Requests = 24000
	rs, err := TieredExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("variants = %d", len(rs))
	}
	byName := map[string]TieredResult{}
	for _, r := range rs {
		byName[r.Variant] = r
		if r.BHR <= 0 || r.BHR >= 1 {
			t.Errorf("%s: BHR %.4f degenerate", r.Variant, r.BHR)
		}
	}
	// Learned admission must beat admit-all with the same placement.
	learned := byName["LFO admission + size placement"]
	naive := byName["admit-all + size placement"]
	if learned.BHR <= naive.BHR {
		t.Errorf("learned admission BHR %.4f <= admit-all %.4f", learned.BHR, naive.BHR)
	}
	TieredTable(rs)
}

func TestRobustness(t *testing.T) {
	cfg := quick(t)
	cfg.Requests = 30000
	cfg.Window = 7500
	rs, err := Robustness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RobustnessResult{}
	for _, r := range rs {
		byName[r.Policy] = r
		if r.CleanBHR <= 0 {
			t.Errorf("%s: zero clean BHR", r.Policy)
		}
	}
	// Admission-controlled LFO must degrade less than admit-all LRU.
	lfo, lru := byName["LFO"], byName["LRU"]
	if lfo.Degradation >= lru.Degradation {
		t.Errorf("LFO degradation %.3f >= LRU %.3f under scans", lfo.Degradation, lru.Degradation)
	}
	RobustnessTable(rs)
}

func TestEvictionGridDeterministicAcrossWorkers(t *testing.T) {
	cfg := quick(t)
	cfg.Requests = 12000
	cfg.Window = 4000
	cfg.CacheSize = 8 << 20
	run := func(workers int) []EvictionGridResult {
		c := cfg
		c.Workers = workers
		rs, err := EvictionGrid(c)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b, c := run(1), run(1), run(2)
	if !reflect.DeepEqual(a, b) {
		t.Error("grid differs across reruns")
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("grid differs across worker counts")
	}
	if len(a) != 27 {
		t.Fatalf("cells = %d, want 27", len(a))
	}
	for _, r := range a {
		if r.BHR <= 0 || r.BHR >= 1 {
			t.Errorf("%s/%s/%s: BHR %.4f degenerate", r.Scenario, r.Admission, r.Eviction, r.BHR)
		}
	}
	EvictionGridTable(a)
}

// TestEvictionGridLearnedBeatsGDSFUnderDrift pins the tentpole's payoff:
// on at least one drift scenario, learned eviction matches or beats GDSF
// at equal admission. (At full scale the learned evictor wins every
// cdn-drift admission row; see EXPERIMENTS.md.)
func TestEvictionGridLearnedBeatsGDSFUnderDrift(t *testing.T) {
	cfg := quick(t)
	cfg.Requests = 20000
	cfg.Window = 5000
	cfg.CacheSize = 8 << 20
	rs, err := EvictionGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(sc, adm, ev string) float64 {
		for _, r := range rs {
			if r.Scenario == sc && r.Admission == adm && r.Eviction == ev {
				return r.BHR
			}
		}
		t.Fatalf("missing cell %s/%s/%s", sc, adm, ev)
		return 0
	}
	won := false
	for _, sc := range []string{"cdn-drift", "reshuffle"} {
		for _, adm := range gridAdmissions {
			if cell(sc, adm, "learned") >= cell(sc, adm, "gdsf") {
				won = true
			}
		}
	}
	if !won {
		t.Error("learned eviction lost to GDSF on every drift cell")
	}
}
