package experiments

import (
	"fmt"
	"math"
	"time"

	"lfo/internal/core"
	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/opt"
	"lfo/internal/sim"
)

// Ablation benchmarks for the design choices DESIGN.md calls out.

// RankFractionPoint measures the OPT ranking approximation (§2.1).
type RankFractionPoint struct {
	Fraction float64
	// SolveTime is the OPT computation wall time.
	SolveTime time.Duration
	// HitBytesShare is the approximation's OPT hit bytes relative to the
	// exact solve.
	HitBytesShare float64
	// Agreement is the per-request decision agreement with the exact
	// solve.
	Agreement float64
}

// AblationRankFraction quantifies the paper's claim that ranking by
// C/(S·L) and solving only the top share of intervals saves most of the
// computation time at minor decision cost.
func AblationRankFraction(cfg Config, fractions []float64) ([]RankFractionPoint, error) {
	if len(fractions) == 0 {
		fractions = []float64{1.0, 0.5, 0.3, 0.1}
	}
	tr, err := cfg.cdnTrace()
	if err != nil {
		return nil, err
	}
	var exact *opt.Result
	var out []RankFractionPoint
	for _, f := range fractions {
		//lfolint:ignore time-now wall-clock OPT runtime is this experiment's measured output
		start := time.Now()
		res, err := opt.Compute(tr, opt.Config{
			CacheSize:    cfg.CacheSize,
			Algorithm:    opt.AlgoFlow,
			RankFraction: f,
		})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if exact == nil {
			exact = res // fractions[0] must be 1.0 for exact baseline
		}
		agree := 0
		for i := range res.Admit {
			if res.Admit[i] == exact.Admit[i] {
				agree++
			}
		}
		pt := RankFractionPoint{
			Fraction:  f,
			SolveTime: elapsed,
			Agreement: float64(agree) / float64(len(res.Admit)),
		}
		if exact.HitBytes > 0 {
			pt.HitBytesShare = float64(res.HitBytes) / float64(exact.HitBytes)
		}
		out = append(out, pt)
	}
	return out, nil
}

// AblationRankFractionTable formats the rank-fraction ablation.
func AblationRankFractionTable(pts []RankFractionPoint) *Table {
	t := &Table{
		Title:  "Ablation: OPT rank-based trace splitting (C/(S·L), §2.1)",
		Header: []string{"fraction solved", "solve time", "hit-bytes share", "decision agreement"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", p.Fraction),
			p.SolveTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3f", p.HitBytesShare),
			fmt.Sprintf("%.3f", p.Agreement),
		})
	}
	return t
}

// FeatureVariantResult compares feature-engineering variants.
type FeatureVariantResult struct {
	Variant string
	// ErrPct is the next-window prediction error.
	ErrPct float64
	// Splits is the number of split nodes in the trained model (a model
	// size/speed proxy).
	Splits int
}

// AblationFeatureVariants compares §2.2's design choices on one
// train/eval window pair:
//
//   - "gaps" — LFO's shift-invariant inter-arrival gaps (the paper's
//     choice);
//   - "absolute" — LRU-K style absolute time-since-request features
//     (cumulative sums of the gaps);
//   - "thinned" — only gaps 1, 2, 4, 8, 16, 32 retained (the paper's
//     proposed model speed-up, §3).
func AblationFeatureVariants(cfg Config) ([]FeatureVariantResult, error) {
	tr, err := cfg.cdnTrace()
	if err != nil {
		return nil, err
	}
	w := cfg.Window
	if 2*w > tr.Len() {
		w = tr.Len() / 2
	}
	lcfg := cfg.lfoConfig()
	trainEx, err := core.Extract(tr.Slice(0, w), lcfg)
	if err != nil {
		return nil, err
	}
	evalEx, err := core.Extract(tr.Slice(w, 2*w), lcfg)
	if err != nil {
		return nil, err
	}

	variants := []struct {
		name string
		mut  func(*core.Extraction) *core.Extraction
	}{
		{"gaps (LFO)", func(e *core.Extraction) *core.Extraction { return e }},
		{"absolute (LRU-K style)", toAbsoluteTimes},
		{"thinned gaps {1,2,4,8,16,32}", thinGaps},
		{"log2-quantized gaps", quantizeGaps},
	}
	var out []FeatureVariantResult
	for _, v := range variants {
		trainV := v.mut(cloneExtraction(trainEx))
		evalV := v.mut(cloneExtraction(evalEx))
		model, err := gbdt.Train(trainV.Dataset(), lcfg.GBDT)
		if err != nil {
			return nil, err
		}
		ev := core.Evaluate(model, evalV, 0.5)
		out = append(out, FeatureVariantResult{
			Variant: v.name,
			ErrPct:  100 * ev.Error,
			Splits:  countSplits(model),
		})
	}
	return out, nil
}

func countSplits(m *gbdt.Model) int {
	n := 0
	for i := range m.Trees {
		n += len(m.Trees[i].Nodes) / 2 // splits = (nodes-1)/2 per tree; close enough per-model
	}
	return n
}

func cloneExtraction(e *core.Extraction) *core.Extraction {
	return &core.Extraction{
		Feats:    append([]float64(nil), e.Feats...),
		Labels:   e.Labels,
		Requests: e.Requests,
	}
}

// toAbsoluteTimes converts gap features into LRU-K-style absolute
// "time since k-th most recent request" features via prefix sums.
func toAbsoluteTimes(e *core.Extraction) *core.Extraction {
	for i := 0; i < e.Requests; i++ {
		row := e.Feats[i*features.Dim : (i+1)*features.Dim]
		sum := 0.0
		for g := 0; g < features.NumGaps; g++ {
			v := row[features.FeatGap0+g]
			if math.IsNaN(v) {
				break
			}
			sum += v
			row[features.FeatGap0+g] = sum
		}
	}
	return e
}

// thinGaps keeps only gaps 1, 2, 4, 8, 16, 32, masking the rest.
func thinGaps(e *core.Extraction) *core.Extraction {
	keep := map[int]bool{1: true, 2: true, 4: true, 8: true, 16: true, 32: true}
	for i := 0; i < e.Requests; i++ {
		row := e.Feats[i*features.Dim : (i+1)*features.Dim]
		for g := 1; g <= features.NumGaps; g++ {
			if !keep[g] {
				row[features.FeatGap0+g-1] = features.Missing
			}
		}
	}
	return e
}

// quantizeGaps coarsens every gap to the nearest power of two — §2.2's
// "we can likely decrease the feature accuracy without affecting the
// learning results" (a 4-bit representation per gap would suffice).
func quantizeGaps(e *core.Extraction) *core.Extraction {
	for i := 0; i < e.Requests; i++ {
		row := e.Feats[i*features.Dim : (i+1)*features.Dim]
		for g := 0; g < features.NumGaps; g++ {
			v := row[features.FeatGap0+g]
			if math.IsNaN(v) || v <= 0 {
				continue
			}
			row[features.FeatGap0+g] = math.Pow(2, math.Round(math.Log2(v)))
		}
	}
	return e
}

// AblationFeatureVariantsTable formats the feature-variant ablation.
func AblationFeatureVariantsTable(rs []FeatureVariantResult) *Table {
	t := &Table{
		Title:  "Ablation: feature engineering variants (§2.2, §3)",
		Header: []string{"variant", "next-window err%", "split nodes"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{r.Variant, fmt.Sprintf("%.2f", r.ErrPct), fmt.Sprintf("%d", r.Splits)})
	}
	return t
}

// PolicyDesignResult compares LFO policy-design variants (§2.4 and §5's
// "policy design" discussion).
type PolicyDesignResult struct {
	Variant string
	BHR     float64
	OHR     float64
}

// AblationPolicyDesign compares the full LFO policy against variants that
// disable parts of §2.4's design: hit-triggered eviction off, and a
// higher (more aggressive) cutoff as §3 suggests.
func AblationPolicyDesign(cfg Config) ([]PolicyDesignResult, error) {
	tr, err := cfg.cdnTrace()
	if err != nil {
		return nil, err
	}
	opts := sim.Options{Warmup: cfg.Window}
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"LFO (paper defaults)", func(c *core.Config) {}},
		{"no evict-on-hit", func(c *core.Config) { c.DisableEvictOnHit = true }},
		{"cutoff 0.65 (aggressive)", func(c *core.Config) { c.Cutoff = 0.65 }},
		{"cutoff 0.25 (permissive)", func(c *core.Config) { c.Cutoff = 0.25 }},
	}
	var out []PolicyDesignResult
	for _, v := range variants {
		c := core.Config{
			CacheSize:  cfg.CacheSize,
			WindowSize: cfg.Window,
			OPT:        opt.Config{Algorithm: opt.AlgoAuto, RankFraction: 0.5},
			Obs:        cfg.Obs,
		}
		v.mut(&c)
		lfo, err := core.New(c)
		if err != nil {
			return nil, err
		}
		m := sim.Run(tr, lfo, opts)
		out = append(out, PolicyDesignResult{Variant: v.name, BHR: m.BHR(), OHR: m.OHR()})
	}
	return out, nil
}

// AblationPolicyDesignTable formats the policy-design ablation.
func AblationPolicyDesignTable(rs []PolicyDesignResult) *Table {
	t := &Table{
		Title:  "Ablation: LFO policy design (§2.4)",
		Header: []string{"variant", "BHR", "OHR"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{r.Variant, fmt.Sprintf("%.4f", r.BHR), fmt.Sprintf("%.4f", r.OHR)})
	}
	return t
}

// IterationsResult compares boosting iteration counts (§2.3: the paper
// cut LightGBM's 100 iterations to 30).
type IterationsResult struct {
	Iterations int
	ErrPct     float64
	TrainTime  time.Duration
}

// AblationIterations sweeps the boosting iteration count.
func AblationIterations(cfg Config, iters []int) ([]IterationsResult, error) {
	if len(iters) == 0 {
		iters = []int{10, 30, 100}
	}
	tr, err := cfg.cdnTrace()
	if err != nil {
		return nil, err
	}
	w := cfg.Window
	if 2*w > tr.Len() {
		w = tr.Len() / 2
	}
	lcfg := cfg.lfoConfig()
	trainEx, err := core.Extract(tr.Slice(0, w), lcfg)
	if err != nil {
		return nil, err
	}
	evalEx, err := core.Extract(tr.Slice(w, 2*w), lcfg)
	if err != nil {
		return nil, err
	}
	ds := trainEx.Dataset()
	var out []IterationsResult
	for _, it := range iters {
		p := lcfg.GBDT
		p.NumIterations = it
		//lfolint:ignore time-now wall-clock training time is this experiment's measured output
		start := time.Now()
		model, err := gbdt.Train(ds, p)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		ev := core.Evaluate(model, evalEx, 0.5)
		out = append(out, IterationsResult{Iterations: it, ErrPct: 100 * ev.Error, TrainTime: elapsed})
	}
	return out, nil
}

// AblationIterationsTable formats the iterations ablation.
func AblationIterationsTable(rs []IterationsResult) *Table {
	t := &Table{
		Title:  "Ablation: boosting iterations (§2.3: paper uses 30 of LightGBM's default 100)",
		Header: []string{"iterations", "next-window err%", "train time"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Iterations),
			fmt.Sprintf("%.2f", r.ErrPct),
			r.TrainTime.Round(time.Millisecond).String(),
		})
	}
	return t
}
