package experiments

import (
	"fmt"

	"lfo/internal/core"
)

// CutoffPoint is one point of the Fig 5a sweep.
type CutoffPoint struct {
	Cutoff           float64
	FalsePositivePct float64 // "accidentally admitted"
	FalseNegativePct float64 // "accidentally not admitted"
	PredictionErrPct float64
}

// Fig5a reproduces Figure 5a: false positive and false negative rates as
// a function of the likelihood cutoff. The paper's shape targets: both
// rates are roughly stable between cutoffs .25 and .75; FN explodes below
// .25 and FP explodes above .75.
func Fig5a(cfg Config) ([]CutoffPoint, error) {
	tr, err := cfg.cdnTrace()
	if err != nil {
		return nil, err
	}
	w := cfg.Window
	if 2*w > tr.Len() {
		w = tr.Len() / 2
	}
	lcfg := cfg.lfoConfig()
	model, _, err := core.TrainOnWindow(tr.Slice(0, w), lcfg)
	if err != nil {
		return nil, err
	}
	ex, err := core.Extract(tr.Slice(w, 2*w), lcfg)
	if err != nil {
		return nil, err
	}
	var out []CutoffPoint
	for c := 0.05; c <= 0.951; c += 0.05 {
		ev := core.Evaluate(model, ex, c)
		out = append(out, CutoffPoint{
			Cutoff:           c,
			FalsePositivePct: 100 * ev.FalsePositiveRate,
			FalseNegativePct: 100 * ev.FalseNegativeRate,
			PredictionErrPct: 100 * ev.Error,
		})
	}
	return out, nil
}

// Fig5aTable formats Fig5a results.
func Fig5aTable(pts []CutoffPoint) *Table {
	t := &Table{
		Title:  "Fig 5a: false positives/negatives vs likelihood cutoff",
		Header: []string{"cutoff", "FP% (accid. admitted)", "FN% (accid. not admitted)", "error%"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", p.Cutoff),
			fmt.Sprintf("%.2f", p.FalsePositivePct),
			fmt.Sprintf("%.2f", p.FalseNegativePct),
			fmt.Sprintf("%.2f", p.PredictionErrPct),
		})
	}
	return t
}

// TrainingSizePoint is one point of the Fig 5b sweep.
type TrainingSizePoint struct {
	Samples int
	// ErrPct values across the repeated subsets.
	MeanErrPct, MinErrPct, MaxErrPct float64
}

// Fig5b reproduces Figure 5b: prediction error as a function of the
// training-set size, repeated over random trace subsets. Shape targets:
// error below ~6.5% already at the smallest sizes, decaying and
// stabilizing as the training set grows.
func Fig5b(cfg Config, sizes []int, repeats int) ([]TrainingSizePoint, error) {
	if len(sizes) == 0 {
		sizes = []int{2500, 5000, 10000, 20000, 40000}
	}
	if repeats <= 0 {
		repeats = 3
	}
	lcfg := cfg.lfoConfig()
	var out []TrainingSizePoint
	for _, n := range sizes {
		pt := TrainingSizePoint{Samples: n, MinErrPct: 101}
		var sum float64
		for rep := 0; rep < repeats; rep++ {
			// A fresh trace subset per repeat (different generator seed),
			// like the paper's "ten random subsets of the trace".
			sub := cfg
			sub.Seed = cfg.Seed + int64(rep)*1000
			sub.Requests = 2 * n
			tr, err := sub.cdnTrace()
			if err != nil {
				return nil, err
			}
			model, _, err := core.TrainOnWindow(tr.Slice(0, n), lcfg)
			if err != nil {
				return nil, err
			}
			ex, err := core.Extract(tr.Slice(n, 2*n), lcfg)
			if err != nil {
				return nil, err
			}
			errPct := 100 * core.Evaluate(model, ex, 0.5).Error
			sum += errPct
			if errPct < pt.MinErrPct {
				pt.MinErrPct = errPct
			}
			if errPct > pt.MaxErrPct {
				pt.MaxErrPct = errPct
			}
		}
		pt.MeanErrPct = sum / float64(repeats)
		out = append(out, pt)
	}
	return out, nil
}

// Fig5bTable formats Fig5b results.
func Fig5bTable(pts []TrainingSizePoint) *Table {
	t := &Table{
		Title:  "Fig 5b: prediction error vs training set size",
		Header: []string{"samples", "mean err%", "min err%", "max err%"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%.2f", p.MeanErrPct),
			fmt.Sprintf("%.2f", p.MinErrPct),
			fmt.Sprintf("%.2f", p.MaxErrPct),
		})
	}
	return t
}

// SeedResult summarizes the Fig 5c seed-sensitivity experiment.
type SeedResult struct {
	Seeds      int
	ErrPcts    []float64
	MeanErrPct float64
	MinErrPct  float64
	MaxErrPct  float64
	// SpreadPct is max − min; the paper's robustness claim is a spread
	// within about half a percentage point on its trace.
	SpreadPct float64
}

// Fig5c reproduces Figure 5c: prediction error across random seeds and
// trace subsets. The learner uses bagging and feature subsampling so the
// seed genuinely matters; the shape target is a small spread.
func Fig5c(cfg Config, seeds int) (*SeedResult, error) {
	if seeds <= 0 {
		seeds = 100
	}
	w := cfg.Window
	lcfg := cfg.lfoConfig()
	lcfg.GBDT.BaggingFraction = 0.8
	lcfg.GBDT.BaggingFreq = 1
	lcfg.GBDT.FeatureFraction = 0.9

	res := &SeedResult{Seeds: seeds, MinErrPct: 101}
	var sum float64
	for s := 0; s < seeds; s++ {
		sub := cfg
		// Different trace subset per seed (like the paper's 100 subsets).
		sub.Seed = cfg.Seed + int64(s)
		sub.Requests = 2 * w
		tr, err := sub.cdnTrace()
		if err != nil {
			return nil, err
		}
		lcfg.GBDT.Seed = int64(s)
		model, _, err := core.TrainOnWindow(tr.Slice(0, w), lcfg)
		if err != nil {
			return nil, err
		}
		ex, err := core.Extract(tr.Slice(w, 2*w), lcfg)
		if err != nil {
			return nil, err
		}
		errPct := 100 * core.Evaluate(model, ex, 0.5).Error
		res.ErrPcts = append(res.ErrPcts, errPct)
		sum += errPct
		if errPct < res.MinErrPct {
			res.MinErrPct = errPct
		}
		if errPct > res.MaxErrPct {
			res.MaxErrPct = errPct
		}
	}
	res.MeanErrPct = sum / float64(seeds)
	res.SpreadPct = res.MaxErrPct - res.MinErrPct
	return res, nil
}

// Fig5cTable formats Fig5c results.
func Fig5cTable(r *SeedResult) *Table {
	t := &Table{
		Title:  "Fig 5c: prediction error across random seeds / trace subsets",
		Header: []string{"seeds", "mean err%", "min err%", "max err%", "spread (pp)"},
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("%d", r.Seeds),
		fmt.Sprintf("%.2f", r.MeanErrPct),
		fmt.Sprintf("%.2f", r.MinErrPct),
		fmt.Sprintf("%.2f", r.MaxErrPct),
		fmt.Sprintf("%.2f", r.SpreadPct),
	})
	return t
}
