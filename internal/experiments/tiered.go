package experiments

import (
	"fmt"

	"lfo/internal/core"
	"lfo/internal/opt"
	"lfo/internal/sim"
	"lfo/internal/tiered"
)

// TieredResult compares hierarchical-cache configurations (§5's
// "hierarchical models" proposal).
type TieredResult struct {
	Variant  string
	BHR      float64
	OHR      float64
	RAMHits  int
	ReadCost float64
}

// TieredExperiment evaluates §5's hierarchical model: a RAM+SSD+HDD cache
// where a trained LFO model makes the cache-at-all decision and predicted
// likelihood drives placement, against admit-all baselines with size-based
// and top-tier-only placement. Tier read costs model relative latencies
// (RAM 1, SSD 10, HDD 100), so ReadCost summarizes where hits land.
func TieredExperiment(cfg Config) ([]TieredResult, error) {
	tr, err := cfg.cdnTrace()
	if err != nil {
		return nil, err
	}
	half := tr.Len() / 2
	train, eval := tr.Slice(0, half), tr.Slice(half, tr.Len())

	tiers := []tiered.Tier{
		{Name: "ram", Capacity: cfg.CacheSize / 8, ReadCost: 1},
		{Name: "ssd", Capacity: cfg.CacheSize / 8 * 3, ReadCost: 10},
		{Name: "hdd", Capacity: cfg.CacheSize / 2, ReadCost: 100},
	}
	var total int64
	for _, t := range tiers {
		total += t.Capacity
	}

	model, _, err := core.TrainOnWindow(train, core.Config{
		CacheSize:  total, // aggregate cache space (§5)
		WindowSize: train.Len(),
		OPT:        opt.Config{Algorithm: opt.AlgoAuto, RankFraction: 0.5},
	})
	if err != nil {
		return nil, err
	}

	variants := []struct {
		name     string
		admitter tiered.Admitter
		placer   tiered.Placer
	}{
		{"LFO admission + likelihood placement", tiered.NewModelAdmitter(model, 0.5), tiered.PlaceByLikelihood(0.85, 0.6)},
		{"LFO admission + size placement", tiered.NewModelAdmitter(model, 0.5), tiered.PlaceBySize(64<<10, 1<<20)},
		{"admit-all + size placement", tiered.AdmitAll{}, tiered.PlaceBySize(64<<10, 1<<20)},
		{"admit-all + top-tier placement", tiered.AdmitAll{}, nil},
	}
	var out []TieredResult
	for _, v := range variants {
		c, err := tiered.New(tiers, v.admitter, v.placer)
		if err != nil {
			return nil, err
		}
		m := sim.Run(eval, c, sim.Options{})
		st := c.Stats()
		out = append(out, TieredResult{
			Variant:  v.name,
			BHR:      m.BHR(),
			OHR:      m.OHR(),
			RAMHits:  st.Hits[0],
			ReadCost: st.ReadCost,
		})
	}
	return out, nil
}

// TieredTable formats the tiered-cache experiment.
func TieredTable(rs []TieredResult) *Table {
	t := &Table{
		Title:  "Extension: hierarchical RAM+SSD+HDD cache (§5's proposal)",
		Header: []string{"variant", "BHR", "OHR", "RAM hits", "read cost"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Variant,
			fmt.Sprintf("%.4f", r.BHR),
			fmt.Sprintf("%.4f", r.OHR),
			fmt.Sprintf("%d", r.RAMHits),
			fmt.Sprintf("%.0f", r.ReadCost),
		})
	}
	return t
}
