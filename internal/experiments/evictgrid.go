package experiments

import (
	"fmt"

	"lfo/internal/core"
	"lfo/internal/evict"
	"lfo/internal/gen"
	"lfo/internal/policy"
	"lfo/internal/sim"
)

// EvictionGridResult is one cell of the admission×eviction ablation:
// one admission strategy paired with one eviction strategy on one drift
// scenario.
type EvictionGridResult struct {
	Scenario  string
	Admission string
	Eviction  string
	BHR       float64
	OHR       float64
	// MissCost is the summed retrieval cost of missed requests after
	// warmup (lower is better; under BHR costs it equals missed bytes).
	MissCost float64
}

// evictionScenarios are the grid's drift scenarios: a stationary web
// workload, the full CDN mix with its built-in flash crowd and
// load-balancer shift, and a web workload whose hot set is remapped
// wholesale mid-trace (the hardest case for a stale eviction ranker).
func evictionScenarios(cfg Config) []struct {
	name string
	gen  gen.Config
} {
	reshuffle := gen.WebMix(cfg.Requests, cfg.Seed)
	reshuffle.Drift = []gen.DriftEvent{
		{At: 0.5, Class: 0, NewWeight: 1, Reshuffle: true},
	}
	return []struct {
		name string
		gen  gen.Config
	}{
		{"stable", gen.WebMix(cfg.Requests, cfg.Seed)},
		{"cdn-drift", gen.CDNMix(cfg.Requests, cfg.Seed)},
		{"reshuffle", reshuffle},
	}
}

// gridAdmissions and gridEvictions enumerate the grid axes.
var (
	gridAdmissions = []string{"lfo", "second-hit", "admit-all"}
	gridEvictions  = []string{"learned", "gdsf", "lru"}
)

// gridPolicy builds the cache for one grid cell. LFO rows use
// internal/core with delegated eviction (both models retrain per
// window); heuristic-admission rows use internal/evict's combined cache
// (only the eviction ranker trains).
func gridPolicy(cfg Config, admission, eviction string) (sim.Policy, error) {
	if admission == "lfo" {
		lcfg := cfg.lfoConfig()
		lcfg.Eviction = eviction
		lcfg.Seed = cfg.Seed
		return core.New(lcfg)
	}
	ecfg := evict.Config{
		CacheSize:  cfg.CacheSize,
		Eviction:   eviction,
		Seed:       cfg.Seed,
		WindowSize: cfg.Window,
		Workers:    cfg.Workers,
		Obs:        cfg.Obs,
	}
	if admission == "second-hit" {
		ecfg.Admitter = policy.NewSecondHitCensor(0)
		ecfg.AdmitterName = "second-hit"
	} else {
		ecfg.AdmitterName = "admit-all"
	}
	return evict.New(ecfg)
}

// EvictionGrid runs the {LFO, second-hit, admit-all} × {learned, gdsf,
// lru} admission×eviction ablation across the drift scenarios, reporting
// BHR, OHR, and post-warmup miss cost per cell. Rows are emitted in a
// fixed scenario-major order and every cell is byte-deterministic for a
// given Config (including across Workers values), so reruns produce
// identical tables.
func EvictionGrid(cfg Config) ([]EvictionGridResult, error) {
	var out []EvictionGridResult
	for _, sc := range evictionScenarios(cfg) {
		tr, err := gen.Generate(sc.gen)
		if err != nil {
			return nil, err
		}
		trc := tr.WithCosts(cfg.Objective)
		opts := sim.Options{Warmup: cfg.Requests / 5, Obs: cfg.Obs}
		for _, adm := range gridAdmissions {
			for _, ev := range gridEvictions {
				p, err := gridPolicy(cfg, adm, ev)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s/%s/%s: %v", sc.name, adm, ev, err)
				}
				m := sim.Run(trc, p, opts)
				out = append(out, EvictionGridResult{
					Scenario:  sc.name,
					Admission: adm,
					Eviction:  ev,
					BHR:       m.BHR(),
					OHR:       m.OHR(),
					MissCost:  m.MissCost,
				})
			}
		}
	}
	return out, nil
}

// EvictionGridTable formats the grid scenario-major.
func EvictionGridTable(rs []EvictionGridResult) *Table {
	t := &Table{
		Title:  "Eviction ablation: {admission} x {eviction} across drift scenarios",
		Header: []string{"scenario", "admission", "eviction", "BHR", "OHR", "miss cost"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Scenario, r.Admission, r.Eviction,
			fmt.Sprintf("%.4f", r.BHR),
			fmt.Sprintf("%.4f", r.OHR),
			fmt.Sprintf("%.3g", r.MissCost),
		})
	}
	return t
}
