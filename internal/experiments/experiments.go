// Package experiments reproduces every figure of the paper's evaluation
// (§3): one function per figure, each returning a structured result that
// prints as the same rows/series the paper reports. The cmd/lfobench
// binary and the repository-level benchmarks are thin wrappers around
// this package.
//
// Scale note: the paper evaluates on a 500M-request production trace with
// a 256 GB cache on a 44-core server. The harness defaults are scaled to
// laptop budgets (hundreds of thousands of requests, MB–GB caches); the
// Config lets callers scale back up. EXPERIMENTS.md records paper-vs-
// measured values and the shape targets that must hold at any scale.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lfo/internal/core"
	"lfo/internal/gbdt"
	"lfo/internal/gen"
	"lfo/internal/obs"
	"lfo/internal/opt"
	"lfo/internal/policy"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// Config scales the experiment harness.
type Config struct {
	// Requests is the trace length.
	Requests int
	// CacheSize is the cache capacity in bytes.
	CacheSize int64
	// Window is LFO's training-window length.
	Window int
	// Seed drives trace generation and randomized policies.
	Seed int64
	// Objective assigns retrieval costs (BHR by default).
	Objective trace.Objective
	// Workers caps the goroutines LFO's training/scoring pipeline and the
	// segmented OPT solve may use; 0 means all cores, 1 is sequential.
	// Results are byte-identical for any value.
	Workers int
	// Obs, when set, accumulates runtime metrics across the harness's LFO
	// caches and simulation runs (see internal/obs); results are
	// unaffected.
	Obs *obs.Registry
}

// Quick returns a configuration sized for unit tests and CI (seconds).
func Quick() Config {
	return Config{
		Requests:  40000,
		CacheSize: 16 << 20,
		Window:    10000,
		Seed:      42,
		Objective: trace.ObjectiveBHR,
	}
}

// Default returns the standard harness configuration (a couple of minutes
// for the full figure set).
func Default() Config {
	return Config{
		Requests:  200000,
		CacheSize: 64 << 20,
		Window:    25000,
		Seed:      42,
		Objective: trace.ObjectiveBHR,
	}
}

// cdnTrace generates the standard mixed-content evaluation trace.
func (c Config) cdnTrace() (*trace.Trace, error) {
	tr, err := gen.Generate(gen.CDNMix(c.Requests, c.Seed))
	if err != nil {
		return nil, err
	}
	return tr.WithCosts(c.Objective), nil
}

// webTrace generates the single-class web trace (Fig 1, Fig 5).
func (c Config) webTrace() (*trace.Trace, error) {
	tr, err := gen.Generate(gen.WebMix(c.Requests, c.Seed))
	if err != nil {
		return nil, err
	}
	return tr.WithCosts(c.Objective), nil
}

// lfoConfig returns the LFO configuration for this harness scale. GBDT
// params are materialized here (not left to core's lazy defaulting) so
// ablations can tweak individual fields.
func (c Config) lfoConfig() core.Config {
	return core.Config{
		CacheSize:  c.CacheSize,
		WindowSize: c.Window,
		OPT:        opt.Config{Algorithm: opt.AlgoAuto, RankFraction: 0.5},
		GBDT:       gbdt.DefaultParams(),
		Workers:    c.Workers,
		Obs:        c.Obs,
	}
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// PolicyResult is one policy's hit ratios in a comparison table.
type PolicyResult struct {
	Name string
	BHR  float64
	OHR  float64
}

// Fig1 reproduces Figure 1: the object hit ratio of RND, LRU, RLC and
// GDSF, showing that model-free RL caching (RLC) is not competitive with
// a simple heuristic (GDSF).
func Fig1(cfg Config) ([]PolicyResult, error) {
	tr, err := cfg.webTrace()
	if err != nil {
		return nil, err
	}
	// Figure 1 reports the object hit ratio; GDSF's classic
	// OHR-optimizing configuration uses unit costs.
	tr = tr.WithCosts(trace.ObjectiveOHR)
	opts := sim.Options{Warmup: cfg.Requests / 5, Obs: cfg.Obs}
	var out []PolicyResult
	for _, name := range []string{"rnd", "lru", "rlc", "gdsf"} {
		p, err := policy.New(name, cfg.CacheSize, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m := sim.Run(tr, p, opts)
		out = append(out, PolicyResult{Name: m.Policy, BHR: m.BHR(), OHR: m.OHR()})
	}
	return out, nil
}

// Fig1Table formats Fig1 results.
func Fig1Table(rs []PolicyResult) *Table {
	t := &Table{
		Title:  "Fig 1: RL-based caching vs heuristics (OHR)",
		Header: []string{"policy", "OHR"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{r.Name, fmt.Sprintf("%.4f", r.OHR)})
	}
	return t
}

// AccuracyResult is the §3 headline accuracy measurement.
type AccuracyResult struct {
	// Accuracy is the fraction of eval-window requests where LFO's
	// prediction agrees with OPT (paper: >93%).
	Accuracy float64
	// Eval carries the error decomposition.
	Eval core.EvalResult
	// TrainWindow and EvalWindow are the window sizes used.
	TrainWindow, EvalWindow int
}

// Accuracy reproduces the §3 headline: train LFO on one window and
// measure agreement with OPT on the next.
func Accuracy(cfg Config) (*AccuracyResult, error) {
	tr, err := cfg.cdnTrace()
	if err != nil {
		return nil, err
	}
	w := cfg.Window
	if 2*w > tr.Len() {
		w = tr.Len() / 2
	}
	lcfg := cfg.lfoConfig()
	model, _, err := core.TrainOnWindow(tr.Slice(0, w), lcfg)
	if err != nil {
		return nil, err
	}
	ex, err := core.Extract(tr.Slice(w, 2*w), lcfg)
	if err != nil {
		return nil, err
	}
	ev := core.Evaluate(model, ex, 0.5)
	return &AccuracyResult{
		Accuracy:    1 - ev.Error,
		Eval:        ev,
		TrainWindow: w,
		EvalWindow:  w,
	}, nil
}

// sortByBHR sorts policy results descending by BHR.
func sortByBHR(rs []PolicyResult) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].BHR > rs[j].BHR })
}
