package experiments

import (
	"math"
	"reflect"
	"testing"

	"lfo/internal/policy"
	"lfo/internal/sim"
)

// ogdRegret computes the OGD policy's per-window regret series against
// per-window OPT on the pinned paper web trace, with the OPT side solved
// under the given worker count.
func ogdRegret(t *testing.T, cfg Config, workers int) []float64 {
	t.Helper()
	tr, err := cfg.webTrace()
	if err != nil {
		t.Fatal(err)
	}
	p, err := policy.New("ogd", cfg.CacheSize, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	// No warmup: window 0 is the cold-start window, so the running
	// average starts at the learner's worst and can only improve.
	m := sim.Run(tr, p, sim.Options{WindowSize: cfg.Window})
	oc := cfg.lfoConfig().OPT
	oc.CacheSize = cfg.CacheSize
	oc.Workers = workers
	reg, err := WindowRegret(tr, m.Windows, oc)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// sameBits reports whether two regret series are byte-identical —
// float equality at the bit level, not within a tolerance.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestOGDRegretGolden pins the regret metric: the OGD policy's
// per-window regret against per-window OPT is byte-identical across
// reruns and across OPT worker counts for every seed tried, and on the
// stable web trace its running average is monotonically non-increasing —
// the online learner converges instead of churning.
func TestOGDRegretGolden(t *testing.T) {
	cfg := quick(t)
	cfg.Requests = 20000
	cfg.Window = 2000
	cfg.CacheSize = 8 << 20
	for _, seed := range []int64{42, 7, 123} {
		c := cfg
		c.Seed = seed
		base := ogdRegret(t, c, 1)
		if len(base) != c.Requests/c.Window {
			t.Fatalf("seed %d: %d windows, want %d", seed, len(base), c.Requests/c.Window)
		}
		if !sameBits(base, ogdRegret(t, c, 1)) {
			t.Errorf("seed %d: regret series differs across reruns", seed)
		}
		for _, workers := range []int{0, 2, 8} {
			if !sameBits(base, ogdRegret(t, c, workers)) {
				t.Errorf("seed %d: regret series differs at Workers=%d", seed, workers)
			}
		}
		// Running average non-increasing: each window's regret stays at
		// or below the average of the windows before it.
		sum, prev := 0.0, math.Inf(1)
		for i, r := range base {
			sum += r
			avg := sum / float64(i+1)
			if avg > prev+1e-12 {
				t.Errorf("seed %d: running average regret rose at window %d: %.6f -> %.6f",
					seed, i, prev, avg)
			}
			prev = avg
		}
	}
}

// TestDriftGridDeterministicAcrossWorkers: the full 3-scenario ×
// 4-policy grid — BHR, OHR, regret series, early-retrain counts — is
// identical across reruns and worker counts.
func TestDriftGridDeterministicAcrossWorkers(t *testing.T) {
	cfg := quick(t)
	cfg.Requests = 12000
	cfg.Window = 3000
	cfg.CacheSize = 8 << 20
	run := func(workers int) []DriftGridResult {
		c := cfg
		c.Workers = workers
		rs, err := DriftGrid(c)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b, c := run(1), run(1), run(2)
	if !reflect.DeepEqual(a, b) {
		t.Error("drift grid differs across reruns")
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("drift grid differs across worker counts")
	}
	if len(a) != 12 {
		t.Fatalf("cells = %d, want 12", len(a))
	}
	for _, r := range a {
		if r.BHR <= 0 || r.BHR >= 1 {
			t.Errorf("%s/%s: BHR %.4f degenerate", r.Scenario, r.Policy, r.BHR)
		}
		if len(r.Regret) != len(a[0].Regret) {
			t.Errorf("%s/%s: regret windows %d, want %d", r.Scenario, r.Policy, len(r.Regret), len(a[0].Regret))
		}
	}
	DriftGridTable(a)
}

// TestDriftGridHybridEarlyBeatsFrozenOnCDNDrift pins the tentpole's
// payoff at quick scale: on cdn-drift, the bridge with the early-retrain
// trigger strictly improves BHR over the frozen GBDT path. (At full
// scale the same holds; see EXPERIMENTS.md.)
func TestDriftGridHybridEarlyBeatsFrozenOnCDNDrift(t *testing.T) {
	cfg := quick(t)
	rs, err := DriftGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(sc, pol string) DriftGridResult {
		for _, r := range rs {
			if r.Scenario == sc && r.Policy == pol {
				return r
			}
		}
		t.Fatalf("missing cell %s/%s", sc, pol)
		return DriftGridResult{}
	}
	frozen := cell("cdn-drift", "frozen-gbdt")
	early := cell("cdn-drift", "hybrid+early-retrain")
	if early.BHR <= frozen.BHR {
		t.Errorf("cdn-drift: hybrid+early-retrain BHR %.4f does not beat frozen-gbdt %.4f",
			early.BHR, frozen.BHR)
	}
	if early.EarlyRetrains == 0 {
		t.Error("cdn-drift: trigger never fired")
	}
	if stable := cell("stable", "hybrid+early-retrain"); stable.EarlyRetrains != 0 {
		t.Errorf("stable: %d early retrains on a stationary trace, want 0", stable.EarlyRetrains)
	}
}
