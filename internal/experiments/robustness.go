package experiments

import (
	"fmt"

	"lfo/internal/core"
	"lfo/internal/gen"
	"lfo/internal/opt"
	"lfo/internal/policy"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// RobustnessResult reports one policy's BHR on clean and scan-contaminated
// traffic.
type RobustnessResult struct {
	Policy     string
	CleanBHR   float64
	ScannedBHR float64
	// Degradation is 1 − scanned/clean: the share of hit bytes the scan
	// attack costs the policy.
	Degradation float64
}

// Robustness evaluates §1's motivation that CDN policies must survive
// "unexpected (or even adversarial) traffic patterns": a web workload is
// contaminated with periodic scan bursts of never-reused objects, and
// each policy's BHR degradation is measured. Admission-controlled
// policies (LFO, TinyLFU, AdaptSize) should shrug scans off; admit-all
// recency caches (LRU, FIFO) should bleed.
func Robustness(cfg Config) ([]RobustnessResult, error) {
	base, err := cfg.webTrace()
	if err != nil {
		return nil, err
	}
	scanned := gen.WithScans(base, gen.ScanConfig{
		Every:      20,
		Burst:      5,
		ObjectSize: 256 << 10, // hefty scan objects maximize pollution
	})

	names := []string{"lru", "fifo", "s4lru", "gdsf", "tinylfu", "adaptsize"}
	warmup := cfg.Requests / 5
	var out []RobustnessResult
	for _, name := range names {
		clean, err := policy.New(name, cfg.CacheSize, cfg.Seed)
		if err != nil {
			return nil, err
		}
		dirty, err := policy.New(name, cfg.CacheSize, cfg.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, robustnessRow(clean.Name(),
			baseBHR(base, clean, warmup), baseBHR(scanned, dirty, warmup)))
	}

	mkLFO := func() (sim.Policy, error) {
		return core.New(core.Config{
			CacheSize:  cfg.CacheSize,
			WindowSize: cfg.Window,
			OPT:        opt.Config{Algorithm: opt.AlgoAuto, RankFraction: 0.5},
			Obs:        cfg.Obs,
		})
	}
	cleanLFO, err := mkLFO()
	if err != nil {
		return nil, err
	}
	dirtyLFO, err := mkLFO()
	if err != nil {
		return nil, err
	}
	out = append(out, robustnessRow("LFO",
		baseBHR(base, cleanLFO, warmup), baseBHR(scanned, dirtyLFO, warmup)))
	return out, nil
}

// baseBHR replays the (possibly contaminated) trace but measures the byte
// hit ratio over base requests only: scan objects are compulsory misses
// by construction, so counting them would hide the pollution effect under
// a constant penalty every policy pays equally.
func baseBHR(tr *trace.Trace, p sim.Policy, warmup int) float64 {
	var hitBytes, reqBytes int64
	for i, r := range tr.Requests {
		hit := p.Request(r)
		if i < warmup || uint64(r.ID) >= 1<<59 { // skip warmup and injected objects
			continue
		}
		reqBytes += r.Size
		if hit {
			hitBytes += r.Size
		}
	}
	if reqBytes == 0 {
		return 0
	}
	return float64(hitBytes) / float64(reqBytes)
}

func robustnessRow(name string, clean, scanned float64) RobustnessResult {
	r := RobustnessResult{Policy: name, CleanBHR: clean, ScannedBHR: scanned}
	if clean > 0 {
		r.Degradation = 1 - scanned/clean
	}
	return r
}

// RobustnessTable formats the robustness experiment.
func RobustnessTable(rs []RobustnessResult) *Table {
	t := &Table{
		Title:  "Robustness: BHR under scan contamination (§1's adversarial traffic)",
		Header: []string{"policy", "clean BHR", "scanned BHR", "degradation"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Policy,
			fmt.Sprintf("%.4f", r.CleanBHR),
			fmt.Sprintf("%.4f", r.ScannedBHR),
			fmt.Sprintf("%.1f%%", 100*r.Degradation),
		})
	}
	return t
}
