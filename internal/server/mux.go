// Mux frame extension: correlation-ID envelopes that let a client keep
// multiple request batches in flight on one connection, plus the
// versioned model-rollout opcode.
//
// Wire format (little-endian, inside the u32 length framing of proto.go):
//
//	mux request:   u8 opMux | u64 corrID | inner request payload
//	mux response:  u8 opMux | u64 corrID | inner response payload
//	model swap:    u8 opModel | u64 version | gob model bytes
//	model ack:     u8 opModel | u64 version
//
// The inner payload is a complete classic frame payload (an opPredict or
// opAdmit request; an opPredict or opError response), so the mux layer is
// a pure envelope: every decoder and limit of the base protocol applies
// unchanged. The server processes a connection's frames strictly in
// order and answers in order, echoing each request's correlation ID —
// pipelining removes the per-batch round-trip stall, and the echoed ID
// lets a client prove the stream never desynchronized (and fail fast
// onto its fallback when it did).
package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"lfo/internal/gbdt"
)

// muxHdrBytes is the envelope overhead: opcode byte plus correlation ID.
const muxHdrBytes = 1 + 8

// DefaultMuxResponseMax bounds a response frame a MuxConn will accept.
// Responses carry one float64 per row (plus envelope bytes), so 1 MiB
// covers batches far beyond any sane pipeline window while keeping a
// misbehaving peer from forcing large allocations.
const DefaultMuxResponseMax = 1 << 20

// Mux codec errors are predeclared so the pipelined read path does not
// allocate to report them.
var (
	errMuxShort      = errors.New("server: short mux frame")
	errMuxOpcode     = errors.New("server: frame is not a mux envelope")
	errMuxInnerShape = errors.New("server: mux response payload length does not match its row count")
)

// appendMuxAdmit appends a complete length-prefixed mux opAdmit frame
// (framing header included) to buf and returns the extended slice.
// Writing into a caller-owned buffer keeps the pipelined hot path
// allocation-free once the buffer reaches steady-state capacity.
//
//lfo:hotpath
func appendMuxAdmit(buf []byte, id uint64, reqs []AdmitRequest) []byte {
	payloadLen := muxHdrBytes + 5 + len(reqs)*admitRowBytes
	start := len(buf)
	buf = growFrameBuf(buf, start+4+payloadLen)
	b := buf[start:]
	binary.LittleEndian.PutUint32(b, uint32(payloadLen))
	b[4] = opMux
	binary.LittleEndian.PutUint64(b[5:], id)
	b[13] = opAdmit
	binary.LittleEndian.PutUint32(b[14:], uint32(len(reqs)))
	off := 18
	for i := range reqs {
		r := &reqs[i]
		binary.LittleEndian.PutUint64(b[off:], uint64(r.Time))
		binary.LittleEndian.PutUint64(b[off+8:], r.ID)
		binary.LittleEndian.PutUint64(b[off+16:], uint64(r.Size))
		binary.LittleEndian.PutUint64(b[off+24:], math.Float64bits(r.Cost))
		binary.LittleEndian.PutUint64(b[off+32:], uint64(r.Free))
		off += admitRowBytes
	}
	return buf
}

// appendMuxPredict appends a complete length-prefixed mux opPredict frame
// for a flat row-major feature matrix (len(rows) divisible by dim).
//
//lfo:hotpath
func appendMuxPredict(buf []byte, id uint64, rows []float64, dim int) []byte {
	payloadLen := muxHdrBytes + 5 + len(rows)*8
	start := len(buf)
	buf = growFrameBuf(buf, start+4+payloadLen)
	b := buf[start:]
	binary.LittleEndian.PutUint32(b, uint32(payloadLen))
	b[4] = opMux
	binary.LittleEndian.PutUint64(b[5:], id)
	b[13] = opPredict
	binary.LittleEndian.PutUint32(b[14:], uint32(len(rows)/dim))
	for i, v := range rows {
		binary.LittleEndian.PutUint64(b[18+i*8:], math.Float64bits(v))
	}
	return buf
}

// growFrameBuf extends buf to length n, reallocating only when capacity
// is insufficient — the single amortized allocation of the mux write
// path.
//
//lfo:hotpath
func growFrameBuf(buf []byte, n int) []byte {
	if cap(buf) >= n {
		return buf[:n]
	}
	//lfolint:ignore hotpath-alloc amortized: the frame buffer reaches steady-state capacity after the first few batches and is reused thereafter
	next := make([]byte, n)
	copy(next, buf)
	return next
}

// decodeMux splits a mux envelope into its correlation ID and inner
// payload. The inner slice aliases payload.
//
//lfo:hotpath
func decodeMux(payload []byte) (uint64, []byte, error) {
	if len(payload) < muxHdrBytes {
		return 0, nil, errMuxShort
	}
	if payload[0] != opMux {
		return 0, nil, errMuxOpcode
	}
	return binary.LittleEndian.Uint64(payload[1:9]), payload[muxHdrBytes:], nil
}

// encodeMuxResponse wraps an inner response payload in a mux envelope.
// Used by the server, where a per-response allocation is acceptable; the
// client-side hot path never calls it.
func encodeMuxResponse(id uint64, inner []byte) []byte {
	buf := make([]byte, muxHdrBytes+len(inner))
	buf[0] = opMux
	binary.LittleEndian.PutUint64(buf[1:9], id)
	copy(buf[muxHdrBytes:], inner)
	return buf
}

// encodeModelSwap builds an opModel frame payload carrying a serialized
// model at the given version.
func encodeModelSwap(version uint64, model []byte) []byte {
	buf := make([]byte, muxHdrBytes+len(model))
	buf[0] = opModel
	binary.LittleEndian.PutUint64(buf[1:9], version)
	copy(buf[muxHdrBytes:], model)
	return buf
}

// decodeModelSwap splits an opModel frame into version and model bytes
// (aliasing payload).
func decodeModelSwap(payload []byte) (uint64, []byte, error) {
	if len(payload) < muxHdrBytes || payload[0] != opModel {
		return 0, nil, fmt.Errorf("server: bad model swap frame (%d bytes)", len(payload))
	}
	return binary.LittleEndian.Uint64(payload[1:9]), payload[muxHdrBytes:], nil
}

// encodeModelAck builds the opModel acknowledgement payload.
func encodeModelAck(version uint64) []byte {
	buf := make([]byte, muxHdrBytes)
	buf[0] = opModel
	binary.LittleEndian.PutUint64(buf[1:9], version)
	return buf
}

// decodeModelAck parses an opModel acknowledgement (or surfaces the
// remote opError it came back as).
func decodeModelAck(payload []byte) (uint64, error) {
	if len(payload) >= 5 && payload[0] == opError {
		n := int(binary.LittleEndian.Uint32(payload[1:5]))
		if 5+n > len(payload) {
			n = len(payload) - 5
		}
		return 0, fmt.Errorf("server: remote error: %s", payload[5:5+n])
	}
	if len(payload) != muxHdrBytes || payload[0] != opModel {
		return 0, fmt.Errorf("server: bad model ack (%d bytes)", len(payload))
	}
	return binary.LittleEndian.Uint64(payload[1:9]), nil
}

// MuxConn is the pipelining side of one connection to a prediction
// server: writes and reads are decoupled so several batches can be in
// flight at once, and every buffer (request frame, response frame,
// decoded probabilities) is reused across calls — the write/read cycle
// allocates nothing at steady state.
//
// Like Client it is synchronous per operation and not safe for
// concurrent use; unlike Client it never retries — the caller owns
// failover policy (see internal/fleet), because by the time a pipelined
// connection fails, earlier batches may be unacknowledged and only the
// caller knows what to do with them.
type MuxConn struct {
	conn net.Conn

	// MaxResponsePayload caps an accepted response frame. 0 means
	// DefaultMuxResponseMax.
	MaxResponsePayload int

	wbuf  []byte
	rbuf  []byte
	probs []float64
}

// NewMuxConn wraps an established connection for pipelined use.
func NewMuxConn(conn net.Conn) *MuxConn {
	return &MuxConn{conn: conn}
}

// Close closes the underlying connection.
func (c *MuxConn) Close() error { return c.conn.Close() }

// SetWriteDeadline bounds subsequent writes.
func (c *MuxConn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

// SetReadDeadline bounds subsequent reads.
func (c *MuxConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// respMax resolves the response-size knob.
func (c *MuxConn) respMax() int {
	if c.MaxResponsePayload > 0 {
		return c.MaxResponsePayload
	}
	return DefaultMuxResponseMax
}

// WriteAdmitBatch sends one correlation-ID-tagged admit batch without
// waiting for a response. The frame is assembled in a reused buffer and
// written with a single Write call.
//
//lfo:hotpath
func (c *MuxConn) WriteAdmitBatch(id uint64, reqs []AdmitRequest) error {
	c.wbuf = appendMuxAdmit(c.wbuf[:0], id, reqs)
	//lfolint:ignore hotpath-alloc net.Conn is the wire boundary; there is no static callee to verify
	_, err := c.conn.Write(c.wbuf)
	return err
}

// WritePredictBatch sends one correlation-ID-tagged predict batch (flat
// row-major rows, len divisible by dim) without waiting for a response.
//
//lfo:hotpath
func (c *MuxConn) WritePredictBatch(id uint64, rows []float64, dim int) error {
	c.wbuf = appendMuxPredict(c.wbuf[:0], id, rows, dim)
	//lfolint:ignore hotpath-alloc net.Conn is the wire boundary; there is no static callee to verify
	_, err := c.conn.Write(c.wbuf)
	return err
}

// ReadResponse reads the next pipelined response and returns its
// correlation ID and probabilities. The returned slice is reused by the
// next call — consume it before reading again. A remote application
// error surfaces as an error with the ID it was correlated to, so the
// caller can account the affected batch.
//
//lfo:hotpath
func (c *MuxConn) ReadResponse() (uint64, []float64, error) {
	payload, err := c.readFrameReuse()
	if err != nil {
		return 0, nil, err
	}
	id, inner, err := decodeMux(payload)
	if err != nil {
		return 0, nil, err
	}
	if len(inner) < 5 {
		return id, nil, errMuxShort
	}
	if inner[0] == opError {
		return id, nil, c.remoteError(inner)
	}
	if inner[0] != opPredict {
		return id, nil, errMuxOpcode
	}
	n := int(binary.LittleEndian.Uint32(inner[1:5]))
	if len(inner) != 5+n*8 {
		return id, nil, errMuxInnerShape
	}
	c.probs = growProbs(c.probs, n)
	for i := 0; i < n; i++ {
		c.probs[i] = math.Float64frombits(binary.LittleEndian.Uint64(inner[5+i*8:]))
	}
	return id, c.probs[:n], nil
}

// remoteError materializes a remote opError payload; it allocates, which
// is fine on a path that is about to tear the shard connection down.
func (c *MuxConn) remoteError(inner []byte) error {
	n := int(binary.LittleEndian.Uint32(inner[1:5]))
	if 5+n > len(inner) {
		n = len(inner) - 5
	}
	//lfolint:ignore hotpath-alloc error path: the caller accounts the failed batch and tears the connection down
	return fmt.Errorf("server: remote error: %s", inner[5:5+n])
}

// growProbs extends the decoded-probability scratch, reallocating only on
// capacity growth.
//
//lfo:hotpath
func growProbs(probs []float64, n int) []float64 {
	if cap(probs) >= n {
		return probs[:n]
	}
	//lfolint:ignore hotpath-alloc amortized: the probability scratch reaches steady-state capacity after the first few batches
	return make([]float64, n)
}

// readFrameReuse reads one length-prefixed frame into the connection's
// reused buffer. Unlike readFrame it allocates at most once per capacity
// step, not per frame; the response bound keeps a lying header from
// forcing more than respMax bytes.
//
//lfo:hotpath
func (c *MuxConn) readFrameReuse() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > c.respMax() {
		//lfolint:ignore hotpath-alloc error path: the stream is desynchronized and the connection is about to be torn down
		return nil, &ErrFrameTooLarge{Size: n, Limit: c.respMax()}
	}
	c.rbuf = growFrameBuf(c.rbuf, n)
	if _, err := io.ReadFull(c.conn, c.rbuf[:n]); err != nil {
		return nil, err
	}
	return c.rbuf[:n], nil
}

// Rollout pushes a model to the peer as the given version and waits for
// the acknowledgement: the versioned hot-swap primitive fleet broadcasts
// across shards. The peer swaps atomically, acks version pushes it
// already runs (idempotent re-push), and rejects stale versions.
func (c *MuxConn) Rollout(version uint64, m *gbdt.Model) error {
	var body bytes.Buffer
	if err := m.Save(&body); err != nil {
		return fmt.Errorf("server: serialize model: %w", err)
	}
	if err := writeFrame(c.conn, encodeModelSwap(version, body.Bytes())); err != nil {
		return err
	}
	payload, err := c.readFrameReuse()
	if err != nil {
		return err
	}
	acked, err := decodeModelAck(payload)
	if err != nil {
		return err
	}
	if acked != version {
		return fmt.Errorf("server: model ack version %d, want %d", acked, version)
	}
	return nil
}
