package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/obs"
	"lfo/internal/trace"
)

// testModel trains a small model over features.Dim-wide rows whose label
// depends on the size feature.
func testModel(t *testing.T) *gbdt.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ds := gbdt.NewDataset(features.Dim)
	row := make([]float64, features.Dim)
	for i := 0; i < 2000; i++ {
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		label := 0.0
		if row[features.FeatSize] > 50 {
			label = 1
		}
		ds.Append(row, label)
	}
	p := gbdt.DefaultParams()
	p.NumIterations = 10
	m, err := gbdt.Train(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func startServer(t *testing.T, m *gbdt.Model) (*Server, string) {
	t.Helper()
	s := New(m, 2)
	s.Logf = t.Logf
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

func randRows(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]float64, n*features.Dim)
	for i := range rows {
		rows[i] = rng.Float64() * 100
	}
	return rows
}

func TestPredictOverTCPMatchesLocal(t *testing.T) {
	m := testModel(t)
	_, addr := startServer(t, m)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows := randRows(50, 2)
	got, err := c.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 50)
	m.PredictBatch(rows, want, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: remote %g != local %g", i, got[i], want[i])
		}
	}
}

func TestPredictEmptyBatch(t *testing.T) {
	_, addr := startServer(t, testModel(t))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Predict(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty predict returned %d rows", len(got))
	}
}

func TestPredictBadDim(t *testing.T) {
	_, addr := startServer(t, testModel(t))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Predict(make([]float64, features.Dim+1)); err == nil {
		t.Error("bad row length accepted")
	}
}

func TestServerNoModel(t *testing.T) {
	s, addr := startServer(t, nil)
	_ = s
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Predict(randRows(1, 3))
	if err == nil || !strings.Contains(err.Error(), "no model") {
		t.Errorf("want remote no-model error, got %v", err)
	}
}

func TestModelSwapMidConnection(t *testing.T) {
	m1 := testModel(t)
	s, addr := startServer(t, m1)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows := randRows(10, 4)
	before, err := c.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a trivially different model (base score only).
	s.SetModel(&gbdt.Model{Dim: features.Dim, BaseScore: 3})
	after, err := c.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	if same {
		t.Error("model swap had no effect")
	}
	wantP := 1 / (1 + math.Exp(-3.0))
	if math.Abs(after[0]-wantP) > 1e-12 {
		t.Errorf("after swap, p = %g, want %g", after[0], wantP)
	}
}

func TestConcurrentClients(t *testing.T) {
	m := testModel(t)
	_, addr := startServer(t, m)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rows := randRows(20, seed)
			want := make([]float64, 20)
			m.PredictBatch(rows, want, 1)
			for round := 0; round < 20; round++ {
				got, err := c.Predict(rows)
				if err != nil {
					errs <- err
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs <- err
						return
					}
				}
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf, maxFramePayload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("round trip %v != %v", got, payload)
	}
}

func TestReadFrameRejectsHuge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB claimed
	if _, err := readFrame(&buf, maxFramePayload); err == nil {
		t.Error("huge frame accepted")
	}
}

func TestPredictCodecRoundTrip(t *testing.T) {
	rows := randRows(7, 5)
	enc := encodePredictRequest(rows, features.Dim)
	dec, err := decodePredictRequest(enc, features.Dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != dec[i] {
			t.Fatal("request codec mismatch")
		}
	}
	probs := []float64{0.1, 0.5, 0.99}
	got, err := decodePredictResponse(encodePredictResponse(probs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range probs {
		if got[i] != probs[i] {
			t.Fatal("response codec mismatch")
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := decodePredictRequest([]byte{1}, features.Dim); err == nil {
		t.Error("short request accepted")
	}
	if _, err := decodePredictRequest([]byte{9, 0, 0, 0, 0}, features.Dim); err == nil {
		t.Error("bad opcode accepted")
	}
	if _, err := decodePredictResponse([]byte{1, 9, 0, 0, 0}); err == nil {
		t.Error("truncated response accepted")
	}
	if _, err := decodePredictResponse(encodeError("boom")); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error frame decoded to %v", err)
	}
}

// TestAdmitProtocolMatchesLocalTracking: the compact opAdmit path must
// produce exactly the probabilities a local tracker + model would.
func TestAdmitProtocolMatchesLocalTracking(t *testing.T) {
	m := testModel(t)
	_, addr := startServer(t, m)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A little request stream with repeats so gap features kick in.
	var reqs []AdmitRequest
	for i := 0; i < 60; i++ {
		reqs = append(reqs, AdmitRequest{
			Time: int64(i * 3),
			ID:   uint64(i % 7),
			Size: int64(100 + i%5*50),
			Cost: float64(100 + i%5*50),
			Free: int64(1 << 20),
		})
	}
	got, err := c.Admit(reqs)
	if err != nil {
		t.Fatal(err)
	}

	tracker := features.NewTracker(0)
	buf := make([]float64, features.Dim)
	for i, ar := range reqs {
		r := traceRequest(ar)
		tracker.Features(r, ar.Free, buf)
		want := m.Predict(buf)
		tracker.Update(r)
		if got[i] != want {
			t.Fatalf("request %d: remote %g != local %g", i, got[i], want)
		}
	}
}

// TestAdmitSessionsIsolated: two connections must not share tracker state.
func TestAdmitSessionsIsolated(t *testing.T) {
	m := testModel(t)
	_, addr := startServer(t, m)
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	warm := []AdmitRequest{
		{Time: 0, ID: 42, Size: 100, Cost: 100, Free: 1000},
		{Time: 10, ID: 42, Size: 100, Cost: 100, Free: 1000},
	}
	if _, err := c1.Admit(warm); err != nil {
		t.Fatal(err)
	}
	// On c1 object 42 now has history; on c2 it must look brand new.
	probe := []AdmitRequest{{Time: 20, ID: 42, Size: 100, Cost: 100, Free: 1000}}
	p1, err := c1.Admit(probe)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c2.Admit(probe)
	if err != nil {
		t.Fatal(err)
	}
	// Compute the expected cold prediction locally.
	tracker := features.NewTracker(0)
	buf := make([]float64, features.Dim)
	tracker.Features(traceRequest(probe[0]), probe[0].Free, buf)
	cold := m.Predict(buf)
	if p2[0] != cold {
		t.Errorf("fresh connection prediction %g != cold %g", p2[0], cold)
	}
	if p1[0] == p2[0] {
		t.Log("note: warm and cold predictions coincide on this model (weak but not wrong)")
	}
}

func TestAdmitCodecRoundTrip(t *testing.T) {
	reqs := []AdmitRequest{
		{Time: 5, ID: 9, Size: 100, Cost: 2.5, Free: 777},
		{Time: 6, ID: 10, Size: 200, Cost: 3.5, Free: 0},
	}
	dec, err := decodeAdmitRequest(encodeAdmitRequest(reqs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if dec[i] != reqs[i] {
			t.Fatalf("row %d: %+v != %+v", i, dec[i], reqs[i])
		}
	}
	if _, err := decodeAdmitRequest([]byte{2, 9, 0, 0, 0}); err == nil {
		t.Error("truncated admit frame accepted")
	}
}

func traceRequest(ar AdmitRequest) trace.Request {
	return trace.Request{Time: ar.Time, ID: trace.ObjectID(ar.ID), Size: ar.Size, Cost: ar.Cost}
}

// waitForIdleConns blocks until the server has no tracked connections
// (handlers observed the disconnect) or the deadline passes.
func waitForIdleConns(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server connections never drained")
}

// TestClientDisconnectNotLogged: a client going away — cleanly between
// frames (io.EOF) or mid-frame (io.ErrUnexpectedEOF, possibly wrapped) —
// is benign and must not reach Logf. Regression for the string-compare
// EOF detection that missed wrapped and mid-frame EOFs.
func TestClientDisconnectNotLogged(t *testing.T) {
	m := testModel(t)
	s := New(m, 1)
	var mu sync.Mutex
	var logged []string
	s.Logf = func(format string, args ...interface{}) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	// Clean disconnect: connect, send nothing, close (io.EOF).
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	// Mid-frame disconnect: send a length header claiming more bytes
	// than we deliver, then close (io.ErrUnexpectedEOF inside the frame).
	conn, err = net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{100, 0, 0, 0, opPredict}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	// Header-truncating disconnect: close after half the length prefix.
	conn, err = net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{100, 0}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	waitForIdleConns(t, s)
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 0 {
		t.Errorf("benign disconnects were logged: %q", logged)
	}
}

func TestTrackerBoundMapping(t *testing.T) {
	for _, tc := range []struct{ field, want int }{
		{0, 1 << 22}, // default preserved
		{5, 5},       // explicit bound
		{-1, 0},      // negative = unbounded (features.NewTracker(0))
	} {
		s := &Server{MaxTrackedObjects: tc.field}
		if got := s.trackerBound(); got != tc.want {
			t.Errorf("MaxTrackedObjects=%d: trackerBound = %d, want %d", tc.field, got, tc.want)
		}
	}
}

// TestMaxTrackedObjectsBoundsAdmitTracker: with a small bound configured,
// the server's per-connection tracker must behave exactly like a local
// tracker constructed with the same bound (evictions included).
func TestMaxTrackedObjectsBoundsAdmitTracker(t *testing.T) {
	m := testModel(t)
	const bound = 3
	s := New(m, 1)
	s.Logf = t.Logf
	s.MaxTrackedObjects = bound
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Many more distinct objects than the bound, with revisits, so the
	// bounded tracker's evictions shape the features.
	var reqs []AdmitRequest
	for i := 0; i < 80; i++ {
		reqs = append(reqs, AdmitRequest{
			Time: int64(i * 2),
			ID:   uint64(i % 11),
			Size: int64(100 + i%4*25),
			Cost: float64(100 + i%4*25),
			Free: 1 << 20,
		})
	}
	got, err := c.Admit(reqs)
	if err != nil {
		t.Fatal(err)
	}
	tracker := features.NewTracker(bound)
	buf := make([]float64, features.Dim)
	for i, ar := range reqs {
		r := traceRequest(ar)
		tracker.Features(r, ar.Free, buf)
		want := m.Predict(buf)
		tracker.Update(r)
		if got[i] != want {
			t.Fatalf("request %d: remote %g != bounded-local %g", i, got[i], want)
		}
	}
}

// TestDebugEndpointsServeLiveCounts is the curl-free smoke test: a debug
// listener serves /metrics, /debug/vars, and /debug/pprof/ with live
// counter values after one Predict and one Admit round-trip.
func TestDebugEndpointsServeLiveCounts(t *testing.T) {
	m := testModel(t)
	reg := obs.NewRegistry()
	s := New(m, 1)
	s.Logf = t.Logf
	s.Obs = reg
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	dbgAddr, stop, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := stop(); err != nil {
			t.Errorf("debug listener close: %v", err)
		}
	})

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Predict(randRows(4, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit([]AdmitRequest{{Time: 1, ID: 8, Size: 64, Cost: 64, Free: 1 << 20}}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (string, int) {
		t.Helper()
		resp, err := http.Get("http://" + dbgAddr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return string(body), resp.StatusCode
	}

	// /metrics: flat "name value" text with the live counts.
	metrics, code := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"server_predict_requests_total 1",
		"server_admit_requests_total 1",
		"server_predict_rows_total 4",
		"server_admit_rows_total 1",
		"server_open_connections 1",
	} {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("/metrics missing %q; got:\n%s", want, metrics)
		}
	}

	// /debug/vars: expvar JSON with the registry under the "lfo" key.
	varsBody, code := get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars struct {
		LFO map[string]int64 `json:"lfo"`
	}
	if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.LFO["server_predict_requests_total"] != 1 || vars.LFO["server_admit_requests_total"] != 1 {
		t.Errorf("/debug/vars lfo counters = %v", vars.LFO)
	}

	// /debug/pprof/: the profile index must serve.
	pprofBody, code := get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(pprofBody, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}

// TestBadRequestCounter: a malformed frame is answered with an error
// frame and counted as a bad request.
func TestBadRequestCounter(t *testing.T) {
	m := testModel(t)
	reg := obs.NewRegistry()
	s := New(m, 1)
	s.Logf = t.Logf
	s.Obs = reg
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// An unknown opcode is answered with an error frame and counted.
	if err := writeFrame(c.conn, []byte{0x7f, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(c.conn, maxFramePayload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodePredictResponse(payload); err == nil {
		t.Error("unknown opcode not answered with an error frame")
	}
	if got := reg.Counter("server_bad_requests_total").Value(); got != 1 {
		t.Errorf("server_bad_requests_total = %d, want 1", got)
	}
}
