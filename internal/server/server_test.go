package server

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/trace"
)

// testModel trains a small model over features.Dim-wide rows whose label
// depends on the size feature.
func testModel(t *testing.T) *gbdt.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ds := gbdt.NewDataset(features.Dim)
	row := make([]float64, features.Dim)
	for i := 0; i < 2000; i++ {
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		label := 0.0
		if row[features.FeatSize] > 50 {
			label = 1
		}
		ds.Append(row, label)
	}
	p := gbdt.DefaultParams()
	p.NumIterations = 10
	m, err := gbdt.Train(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func startServer(t *testing.T, m *gbdt.Model) (*Server, string) {
	t.Helper()
	s := New(m, 2)
	s.Logf = t.Logf
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

func randRows(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]float64, n*features.Dim)
	for i := range rows {
		rows[i] = rng.Float64() * 100
	}
	return rows
}

func TestPredictOverTCPMatchesLocal(t *testing.T) {
	m := testModel(t)
	_, addr := startServer(t, m)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows := randRows(50, 2)
	got, err := c.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 50)
	m.PredictBatch(rows, want, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: remote %g != local %g", i, got[i], want[i])
		}
	}
}

func TestPredictEmptyBatch(t *testing.T) {
	_, addr := startServer(t, testModel(t))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Predict(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty predict returned %d rows", len(got))
	}
}

func TestPredictBadDim(t *testing.T) {
	_, addr := startServer(t, testModel(t))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Predict(make([]float64, features.Dim+1)); err == nil {
		t.Error("bad row length accepted")
	}
}

func TestServerNoModel(t *testing.T) {
	s, addr := startServer(t, nil)
	_ = s
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Predict(randRows(1, 3))
	if err == nil || !strings.Contains(err.Error(), "no model") {
		t.Errorf("want remote no-model error, got %v", err)
	}
}

func TestModelSwapMidConnection(t *testing.T) {
	m1 := testModel(t)
	s, addr := startServer(t, m1)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows := randRows(10, 4)
	before, err := c.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a trivially different model (base score only).
	s.SetModel(&gbdt.Model{Dim: features.Dim, BaseScore: 3})
	after, err := c.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	if same {
		t.Error("model swap had no effect")
	}
	wantP := 1 / (1 + math.Exp(-3.0))
	if math.Abs(after[0]-wantP) > 1e-12 {
		t.Errorf("after swap, p = %g, want %g", after[0], wantP)
	}
}

func TestConcurrentClients(t *testing.T) {
	m := testModel(t)
	_, addr := startServer(t, m)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rows := randRows(20, seed)
			want := make([]float64, 20)
			m.PredictBatch(rows, want, 1)
			for round := 0; round < 20; round++ {
				got, err := c.Predict(rows)
				if err != nil {
					errs <- err
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs <- err
						return
					}
				}
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("round trip %v != %v", got, payload)
	}
}

func TestReadFrameRejectsHuge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB claimed
	if _, err := readFrame(&buf); err == nil {
		t.Error("huge frame accepted")
	}
}

func TestPredictCodecRoundTrip(t *testing.T) {
	rows := randRows(7, 5)
	enc := encodePredictRequest(rows, features.Dim)
	dec, err := decodePredictRequest(enc, features.Dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != dec[i] {
			t.Fatal("request codec mismatch")
		}
	}
	probs := []float64{0.1, 0.5, 0.99}
	got, err := decodePredictResponse(encodePredictResponse(probs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range probs {
		if got[i] != probs[i] {
			t.Fatal("response codec mismatch")
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := decodePredictRequest([]byte{1}, features.Dim); err == nil {
		t.Error("short request accepted")
	}
	if _, err := decodePredictRequest([]byte{9, 0, 0, 0, 0}, features.Dim); err == nil {
		t.Error("bad opcode accepted")
	}
	if _, err := decodePredictResponse([]byte{1, 9, 0, 0, 0}); err == nil {
		t.Error("truncated response accepted")
	}
	if _, err := decodePredictResponse(encodeError("boom")); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error frame decoded to %v", err)
	}
}

// TestAdmitProtocolMatchesLocalTracking: the compact opAdmit path must
// produce exactly the probabilities a local tracker + model would.
func TestAdmitProtocolMatchesLocalTracking(t *testing.T) {
	m := testModel(t)
	_, addr := startServer(t, m)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A little request stream with repeats so gap features kick in.
	var reqs []AdmitRequest
	for i := 0; i < 60; i++ {
		reqs = append(reqs, AdmitRequest{
			Time: int64(i * 3),
			ID:   uint64(i % 7),
			Size: int64(100 + i%5*50),
			Cost: float64(100 + i%5*50),
			Free: int64(1 << 20),
		})
	}
	got, err := c.Admit(reqs)
	if err != nil {
		t.Fatal(err)
	}

	tracker := features.NewTracker(0)
	buf := make([]float64, features.Dim)
	for i, ar := range reqs {
		r := traceRequest(ar)
		tracker.Features(r, ar.Free, buf)
		want := m.Predict(buf)
		tracker.Update(r)
		if got[i] != want {
			t.Fatalf("request %d: remote %g != local %g", i, got[i], want)
		}
	}
}

// TestAdmitSessionsIsolated: two connections must not share tracker state.
func TestAdmitSessionsIsolated(t *testing.T) {
	m := testModel(t)
	_, addr := startServer(t, m)
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	warm := []AdmitRequest{
		{Time: 0, ID: 42, Size: 100, Cost: 100, Free: 1000},
		{Time: 10, ID: 42, Size: 100, Cost: 100, Free: 1000},
	}
	if _, err := c1.Admit(warm); err != nil {
		t.Fatal(err)
	}
	// On c1 object 42 now has history; on c2 it must look brand new.
	probe := []AdmitRequest{{Time: 20, ID: 42, Size: 100, Cost: 100, Free: 1000}}
	p1, err := c1.Admit(probe)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c2.Admit(probe)
	if err != nil {
		t.Fatal(err)
	}
	// Compute the expected cold prediction locally.
	tracker := features.NewTracker(0)
	buf := make([]float64, features.Dim)
	tracker.Features(traceRequest(probe[0]), probe[0].Free, buf)
	cold := m.Predict(buf)
	if p2[0] != cold {
		t.Errorf("fresh connection prediction %g != cold %g", p2[0], cold)
	}
	if p1[0] == p2[0] {
		t.Log("note: warm and cold predictions coincide on this model (weak but not wrong)")
	}
}

func TestAdmitCodecRoundTrip(t *testing.T) {
	reqs := []AdmitRequest{
		{Time: 5, ID: 9, Size: 100, Cost: 2.5, Free: 777},
		{Time: 6, ID: 10, Size: 200, Cost: 3.5, Free: 0},
	}
	dec, err := decodeAdmitRequest(encodeAdmitRequest(reqs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if dec[i] != reqs[i] {
			t.Fatalf("row %d: %+v != %+v", i, dec[i], reqs[i])
		}
	}
	if _, err := decodeAdmitRequest([]byte{2, 9, 0, 0, 0}); err == nil {
		t.Error("truncated admit frame accepted")
	}
}

func traceRequest(ar AdmitRequest) trace.Request {
	return trace.Request{Time: ar.Time, ID: trace.ObjectID(ar.ID), Size: ar.Size, Cost: ar.Cost}
}
