// Package server implements LFO's prediction service: a TCP server that
// evaluates the trained admission model over a length-prefixed binary
// protocol, plus the matching client. It backs the paper's throughput
// experiment (Fig 7 — "can LFO predict fast enough for production use?")
// and demonstrates how a CDN frontend would consult an LFO model over the
// network.
//
// Wire format (all integers little-endian):
//
//	request:  u32 payloadLen | u8 op | u32 rows | rows×dim f64 features
//	response: u32 payloadLen | u8 op | u32 rows | rows f64 probabilities
//	error:    u32 payloadLen | u8 opError | u32 msgLen | msg bytes
//
// The feature dimension is fixed per connection to features.Dim.
package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Protocol opcodes.
const (
	opPredict = 1
	// opAdmit carries raw request tuples (time, id, size, cost, free)
	// instead of feature vectors; the server tracks per-object history
	// itself. 40 bytes per request instead of 424, at the cost of a
	// stateful (per-connection) session.
	opAdmit = 2
	// opMux wraps an opPredict/opAdmit payload in a correlation-ID
	// envelope so several batches can be in flight per connection; see
	// mux.go.
	opMux = 3
	// opModel is the versioned model hot-swap request/ack; see mux.go.
	opModel = 4
	opError = 0xff
)

// admitRowBytes is the wire size of one opAdmit tuple.
const admitRowBytes = 8 * 5

// AdmitRequest is one raw request tuple for the compact protocol.
type AdmitRequest struct {
	// Time, ID, Size, Cost mirror trace.Request fields.
	Time int64
	ID   uint64
	Size int64
	Cost float64
	// Free is the requesting frontend's current free cache bytes (the
	// §2.2 free-bytes feature).
	Free int64
}

// encodeAdmitRequest builds an opAdmit frame.
func encodeAdmitRequest(reqs []AdmitRequest) []byte {
	buf := make([]byte, 5+len(reqs)*admitRowBytes)
	buf[0] = opAdmit
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(reqs)))
	off := 5
	for _, r := range reqs {
		binary.LittleEndian.PutUint64(buf[off:], uint64(r.Time))
		binary.LittleEndian.PutUint64(buf[off+8:], r.ID)
		binary.LittleEndian.PutUint64(buf[off+16:], uint64(r.Size))
		binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(r.Cost))
		binary.LittleEndian.PutUint64(buf[off+32:], uint64(r.Free))
		off += admitRowBytes
	}
	return buf
}

// decodeAdmitRequest parses an opAdmit frame.
func decodeAdmitRequest(payload []byte) ([]AdmitRequest, error) {
	if len(payload) < 5 || payload[0] != opAdmit {
		return nil, fmt.Errorf("server: bad admit frame")
	}
	n := int(binary.LittleEndian.Uint32(payload[1:5]))
	if len(payload) != 5+n*admitRowBytes {
		return nil, fmt.Errorf("server: admit frame length %d, want %d for %d rows", len(payload), 5+n*admitRowBytes, n)
	}
	reqs := make([]AdmitRequest, n)
	off := 5
	for i := range reqs {
		reqs[i] = AdmitRequest{
			Time: int64(binary.LittleEndian.Uint64(payload[off:])),
			ID:   binary.LittleEndian.Uint64(payload[off+8:]),
			Size: int64(binary.LittleEndian.Uint64(payload[off+16:])),
			Cost: math.Float64frombits(binary.LittleEndian.Uint64(payload[off+24:])),
			Free: int64(binary.LittleEndian.Uint64(payload[off+32:])),
		}
		off += admitRowBytes
	}
	return reqs, nil
}

// maxFramePayload is the default bound on a frame's payload, keeping a
// malicious or broken peer from forcing huge allocations (64 MiB ≈ 150k
// rows). Server.MaxFramePayload overrides it per server.
const maxFramePayload = 64 << 20

// frameAllocChunk is the initial/step allocation readFrame uses while a
// frame's bytes arrive: memory is committed as data shows up, so a lying
// length header cannot reserve the full frame bound with a 4-byte write.
const frameAllocChunk = 64 << 10

// ErrFrameTooLarge wraps frame-size-limit violations; the stream is
// desynchronized afterwards (the oversized payload is unread), so the
// connection must be closed.
type ErrFrameTooLarge struct {
	Size, Limit int
}

func (e *ErrFrameTooLarge) Error() string {
	return fmt.Sprintf("server: frame payload %d exceeds limit %d", e.Size, e.Limit)
}

// writeFrame writes a length-prefixed frame.
//
//lfo:hotpath
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	//lfolint:ignore hotpath-alloc io.Writer is the wire boundary (a net.Conn at runtime); there is no static callee to verify
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	//lfolint:ignore hotpath-alloc io.Writer is the wire boundary (a net.Conn at runtime); there is no static callee to verify
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame of at most max payload bytes.
// The payload buffer grows geometrically as bytes actually arrive rather
// than being allocated up front from the (untrusted) length header.
//
//lfo:hotpath
func readFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > max {
		//lfolint:ignore hotpath-alloc error path: the stream is desynchronized and the connection is about to be torn down
		return nil, &ErrFrameTooLarge{Size: n, Limit: max}
	}
	if n <= frameAllocChunk {
		//lfolint:ignore hotpath-alloc the payload escapes to the caller by contract: one bounded allocation per frame
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	//lfolint:ignore hotpath-alloc the payload escapes to the caller by contract: one bounded allocation per frame
	payload := make([]byte, frameAllocChunk)
	filled := 0
	for filled < n {
		if filled == len(payload) {
			grown := 2 * len(payload)
			if grown > n {
				grown = n
			}
			//lfolint:ignore hotpath-alloc geometric regrowth while the oversized payload actually arrives; O(log n) allocations per large frame
			next := make([]byte, grown)
			copy(next, payload)
			payload = next
		}
		m, err := io.ReadFull(r, payload[filled:])
		filled += m
		if err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// encodePredictRequest builds a predict frame from a flat row-major
// feature matrix.
func encodePredictRequest(rows []float64, dim int) []byte {
	n := len(rows) / dim
	buf := make([]byte, 5+len(rows)*8)
	buf[0] = opPredict
	binary.LittleEndian.PutUint32(buf[1:5], uint32(n))
	for i, v := range rows {
		binary.LittleEndian.PutUint64(buf[5+i*8:], math.Float64bits(v))
	}
	return buf
}

// decodePredictRequest parses a predict frame into a flat feature matrix.
func decodePredictRequest(payload []byte, dim int) ([]float64, error) {
	if len(payload) < 5 {
		return nil, fmt.Errorf("server: short predict frame (%d bytes)", len(payload))
	}
	if payload[0] != opPredict {
		return nil, fmt.Errorf("server: unexpected opcode %#x", payload[0])
	}
	n := int(binary.LittleEndian.Uint32(payload[1:5]))
	want := 5 + n*dim*8
	if len(payload) != want {
		return nil, fmt.Errorf("server: predict frame length %d, want %d for %d rows × dim %d", len(payload), want, n, dim)
	}
	rows := make([]float64, n*dim)
	for i := range rows {
		rows[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[5+i*8:]))
	}
	return rows, nil
}

// encodePredictResponse builds a response frame from probabilities.
func encodePredictResponse(probs []float64) []byte {
	buf := make([]byte, 5+len(probs)*8)
	buf[0] = opPredict
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(probs)))
	for i, v := range probs {
		binary.LittleEndian.PutUint64(buf[5+i*8:], math.Float64bits(v))
	}
	return buf
}

// decodePredictResponse parses a response frame.
func decodePredictResponse(payload []byte) ([]float64, error) {
	if len(payload) < 5 {
		return nil, fmt.Errorf("server: short response frame (%d bytes)", len(payload))
	}
	switch payload[0] {
	case opPredict:
	case opError:
		n := int(binary.LittleEndian.Uint32(payload[1:5]))
		if 5+n > len(payload) {
			n = len(payload) - 5
		}
		return nil, fmt.Errorf("server: remote error: %s", payload[5:5+n])
	default:
		return nil, fmt.Errorf("server: unexpected opcode %#x", payload[0])
	}
	n := int(binary.LittleEndian.Uint32(payload[1:5]))
	if len(payload) != 5+n*8 {
		return nil, fmt.Errorf("server: response length %d, want %d for %d rows", len(payload), 5+n*8, n)
	}
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[5+i*8:]))
	}
	return probs, nil
}

// encodeError builds an error frame.
func encodeError(msg string) []byte {
	buf := make([]byte, 5+len(msg))
	buf[0] = opError
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(msg)))
	copy(buf[5:], msg)
	return buf
}
