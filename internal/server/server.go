package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/obs"
	"lfo/internal/trace"
)

// Server serves admission-likelihood predictions over TCP. The deployed
// model is swappable at runtime (SetModel), mirroring LFO's per-window
// model handoff, and every connection is handled by its own goroutine.
type Server struct {
	model    atomic.Pointer[gbdt.Model]
	listener net.Listener
	workers  int

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logf receives connection-level errors; defaults to log.Printf.
	// Must be set before Serve.
	Logf func(format string, args ...interface{})

	// MaxTrackedObjects bounds each connection's opAdmit feature tracker,
	// mirroring core.Config.MaxTrackedObjects: 0 keeps the historical
	// default of 1<<22 objects; a negative value removes the bound. Must
	// be set before Listen.
	MaxTrackedObjects int

	// Obs, when set, records request/row counters per opcode, frame
	// read/write errors, a predict latency histogram, and an open-
	// connections gauge (see internal/obs). Must be set before Listen.
	Obs *obs.Registry

	m serverMetrics // handles resolved in Listen; nil-safe no-ops otherwise
}

// serverMetrics bundles the per-server metric handles. All handles are
// nil (single-branch no-ops) when the registry is nil.
type serverMetrics struct {
	predictReqs *obs.Counter
	admitReqs   *obs.Counter
	predictRows *obs.Counter
	admitRows   *obs.Counter
	readErrors  *obs.Counter
	writeErrors *obs.Counter
	badRequests *obs.Counter
	openConns   *obs.Gauge
	predictNS   *obs.Histogram
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	return serverMetrics{
		predictReqs: r.Counter("server_predict_requests_total"),
		admitReqs:   r.Counter("server_admit_requests_total"),
		predictRows: r.Counter("server_predict_rows_total"),
		admitRows:   r.Counter("server_admit_rows_total"),
		readErrors:  r.Counter("server_read_errors_total"),
		writeErrors: r.Counter("server_write_errors_total"),
		badRequests: r.Counter("server_bad_requests_total"),
		openConns:   r.Gauge("server_open_connections"),
		predictNS:   r.Histogram("server_predict_ns", obs.LatencyBounds),
	}
}

// trackerBound resolves MaxTrackedObjects to the features.NewTracker
// argument (0 there means unbounded).
func (s *Server) trackerBound() int {
	switch {
	case s.MaxTrackedObjects > 0:
		return s.MaxTrackedObjects
	case s.MaxTrackedObjects < 0:
		return 0
	default:
		return 1 << 22
	}
}

// New returns a server deploying the given model. workers bounds the
// per-request prediction parallelism (0 = all available cores, 1 =
// serial).
func New(model *gbdt.Model, workers int) *Server {
	s := &Server{workers: workers, conns: make(map[net.Conn]struct{}), Logf: log.Printf}
	s.model.Store(model)
	return s
}

// SetModel atomically swaps the deployed model.
func (s *Server) SetModel(m *gbdt.Model) { s.model.Store(m) }

// Listen binds the address (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	s.m = newServerMetrics(s.Obs)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.Logf("server: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // already shutting down; nothing to report to
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle serves one connection until disconnect or error.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	s.m.openConns.Add(1)
	defer s.m.openConns.Add(-1)
	defer func() {
		_ = conn.Close() // best-effort teardown of a served connection
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Per-connection feature tracker for the compact opAdmit protocol;
	// allocated lazily on the first opAdmit frame.
	var tracker *features.Tracker
	buf := make([]float64, features.Dim)
	for {
		payload, err := readFrame(conn)
		if err != nil {
			if !benignDisconnect(err) {
				s.m.readErrors.Inc()
				s.Logf("server: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		m := s.model.Load()
		if m == nil {
			if werr := writeFrame(conn, encodeError("no model deployed")); werr != nil {
				s.m.writeErrors.Inc()
				return
			}
			continue
		}
		var probs []float64
		switch {
		case len(payload) > 0 && payload[0] == opPredict:
			rows, derr := decodePredictRequest(payload, features.Dim)
			if derr != nil {
				err = derr
				break
			}
			s.m.predictReqs.Inc()
			s.m.predictRows.Add(int64(len(rows) / features.Dim))
			probs = make([]float64, len(rows)/features.Dim)
			sc := obs.Start(s.m.predictNS)
			m.PredictBatch(rows, probs, s.workers)
			sc.Stop()
		case len(payload) > 0 && payload[0] == opAdmit:
			reqs, derr := decodeAdmitRequest(payload)
			if derr != nil {
				err = derr
				break
			}
			if tracker == nil {
				tracker = features.NewTracker(s.trackerBound())
			}
			s.m.admitReqs.Inc()
			s.m.admitRows.Add(int64(len(reqs)))
			probs = make([]float64, len(reqs))
			sc := obs.Start(s.m.predictNS)
			for i, ar := range reqs {
				r := trace.Request{Time: ar.Time, ID: trace.ObjectID(ar.ID), Size: ar.Size, Cost: ar.Cost}
				tracker.Features(r, ar.Free, buf)
				probs[i] = m.Predict(buf)
				tracker.Update(r)
			}
			sc.Stop()
		default:
			err = fmt.Errorf("server: unknown opcode in %d-byte frame", len(payload))
		}
		if err != nil {
			s.m.badRequests.Inc()
			if werr := writeFrame(conn, encodeError(err.Error())); werr != nil {
				s.m.writeErrors.Inc()
				return
			}
			continue
		}
		if err := writeFrame(conn, encodePredictResponse(probs)); err != nil {
			s.m.writeErrors.Inc()
			return
		}
	}
}

// benignDisconnect reports whether a frame-read error is an ordinary
// client disconnect — clean between frames (io.EOF, possibly wrapped) or
// mid-frame (io.ErrUnexpectedEOF) — or our own Close tearing the socket
// down. None of these warrant logging.
func benignDisconnect(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close() // force handlers to unblock; their errors are benign here
	}
	s.mu.Unlock()
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a prediction-service client. It is safe for sequential use;
// wrap with a pool for concurrency.
type Client struct {
	conn net.Conn
}

// Dial connects to a prediction server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Predict sends a flat row-major feature matrix (features.Dim wide) and
// returns one probability per row.
func (c *Client) Predict(rows []float64) ([]float64, error) {
	if len(rows)%features.Dim != 0 {
		return nil, fmt.Errorf("server: rows length %d not a multiple of dim %d", len(rows), features.Dim)
	}
	if err := writeFrame(c.conn, encodePredictRequest(rows, features.Dim)); err != nil {
		return nil, fmt.Errorf("server: send: %w", err)
	}
	payload, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("server: receive: %w", err)
	}
	return decodePredictResponse(payload)
}

// Admit sends raw request tuples over the compact protocol (the server
// tracks per-object feature history for this connection) and returns one
// admission likelihood per request. A tenth of the bandwidth of Predict.
func (c *Client) Admit(reqs []AdmitRequest) ([]float64, error) {
	if err := writeFrame(c.conn, encodeAdmitRequest(reqs)); err != nil {
		return nil, fmt.Errorf("server: send: %w", err)
	}
	payload, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("server: receive: %w", err)
	}
	return decodePredictResponse(payload)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
