package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/obs"
	"lfo/internal/trace"
)

// Default values for the server's robustness knobs. Each knob field reads
// as: 0 = the default below, negative = disabled/unbounded.
const (
	// DefaultReadTimeout bounds the wait for a complete request frame
	// (including idle time between frames).
	DefaultReadTimeout = 2 * time.Minute
	// DefaultWriteTimeout bounds one response write.
	DefaultWriteTimeout = 30 * time.Second
	// DefaultDrainTimeout is how long Close waits for in-flight handlers
	// to finish before force-closing their connections.
	DefaultDrainTimeout = 5 * time.Second
	// DefaultMaxConns bounds concurrently served connections.
	DefaultMaxConns = 1024
)

// DegradeEvent describes one degradation on the serving path: a deadline
// violation, a protocol-limit rejection, an accept failure, or a forced
// close at drain time. Events are rare by construction (per connection or
// per violation, never per request), so a handler can log each one.
type DegradeEvent struct {
	// Kind is one of "read_timeout", "write_timeout", "frame_limit",
	// "conn_limit", "accept_error", "drain_force_close".
	Kind string
	// Remote is the peer address, when known.
	Remote string
	// Err is the underlying error, when there is one.
	Err error
}

// Server serves admission-likelihood predictions over TCP. The deployed
// model is swappable at runtime (SetModel), mirroring LFO's per-window
// model handoff, and every connection is handled by its own goroutine.
//
// The serving path is hardened for production use: per-frame read and
// per-response write deadlines, a frame-size cap enforced before payload
// allocation, a bound on concurrently served connections, an accept loop
// that survives transient accept errors, and a graceful drain on Close.
// Every violation is counted (Obs) and surfaced once via OnDegrade.
type Server struct {
	model    atomic.Pointer[gbdt.Model]
	version  atomic.Uint64
	swapMu   sync.Mutex // serializes versioned swaps (opModel) across connections
	listener net.Listener
	workers  int

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logf receives connection-level errors; defaults to log.Printf.
	// Must be set before Serve.
	Logf func(format string, args ...interface{})

	// MaxTrackedObjects bounds each connection's opAdmit feature tracker,
	// mirroring core.Config.MaxTrackedObjects: 0 keeps the historical
	// default of 1<<22 objects; a negative value removes the bound. Must
	// be set before Listen.
	MaxTrackedObjects int

	// ReadTimeout bounds the wait for one complete request frame; a
	// connection that stalls mid-frame (or idles longer) is closed and
	// counted. 0 means DefaultReadTimeout; negative disables the
	// deadline. Must be set before Listen.
	ReadTimeout time.Duration

	// WriteTimeout bounds one response write. 0 means
	// DefaultWriteTimeout; negative disables the deadline. Must be set
	// before Listen.
	WriteTimeout time.Duration

	// DrainTimeout is how long Close waits for in-flight handlers before
	// force-closing their connections. 0 means DefaultDrainTimeout;
	// negative force-closes immediately. Must be set before Listen.
	DrainTimeout time.Duration

	// MaxFramePayload caps a request frame's payload bytes. 0 means the
	// package default (64 MiB); negative lifts the cap to the protocol
	// maximum (4 GiB minus one). Oversized frames close the connection:
	// the unread payload leaves the stream desynchronized. Must be set
	// before Listen.
	MaxFramePayload int

	// MaxConns bounds concurrently served connections — the server's
	// in-flight limit, since the protocol allows one outstanding request
	// per connection. Excess connections receive an error frame and are
	// closed. 0 means DefaultMaxConns; negative removes the bound. Must
	// be set before Listen.
	MaxConns int

	// OnDegrade, when set, receives one event per degradation (deadline
	// violation, limit rejection, accept error, drain force-close) — the
	// structured alternative to per-request log noise. Called from
	// serving goroutines; must be safe for concurrent use. Must be set
	// before Listen.
	OnDegrade func(ev DegradeEvent)

	// Obs, when set, records request/row counters per opcode, frame
	// read/write errors, degradation counters (timeouts, limit
	// rejections, accept errors, drain force-closes), a predict latency
	// histogram, and an open-connections gauge (see internal/obs). Must
	// be set before Listen.
	Obs *obs.Registry

	m serverMetrics // handles resolved in Listen; nil-safe no-ops otherwise
}

// serverMetrics bundles the per-server metric handles. All handles are
// nil (single-branch no-ops) when the registry is nil.
type serverMetrics struct {
	predictReqs   *obs.Counter
	admitReqs     *obs.Counter
	muxReqs       *obs.Counter
	predictRows   *obs.Counter
	admitRows     *obs.Counter
	readErrors    *obs.Counter
	writeErrors   *obs.Counter
	badRequests   *obs.Counter
	readTimeouts  *obs.Counter
	writeTimeouts *obs.Counter
	frameRejects  *obs.Counter
	connRejects   *obs.Counter
	acceptErrors  *obs.Counter
	drainKills    *obs.Counter
	modelSwaps    *obs.Counter
	swapRejects   *obs.Counter
	modelVersion  *obs.Gauge
	openConns     *obs.Gauge
	predictNS     *obs.Histogram
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	return serverMetrics{
		predictReqs:   r.Counter("server_predict_requests_total"),
		admitReqs:     r.Counter("server_admit_requests_total"),
		muxReqs:       r.Counter("server_mux_requests_total"),
		predictRows:   r.Counter("server_predict_rows_total"),
		admitRows:     r.Counter("server_admit_rows_total"),
		readErrors:    r.Counter("server_read_errors_total"),
		writeErrors:   r.Counter("server_write_errors_total"),
		badRequests:   r.Counter("server_bad_requests_total"),
		readTimeouts:  r.Counter("server_read_timeouts_total"),
		writeTimeouts: r.Counter("server_write_timeouts_total"),
		frameRejects:  r.Counter("server_frame_limit_rejects_total"),
		connRejects:   r.Counter("server_conn_limit_rejects_total"),
		acceptErrors:  r.Counter("server_accept_errors_total"),
		drainKills:    r.Counter("server_drain_force_closes_total"),
		modelSwaps:    r.Counter("server_model_swaps_total"),
		swapRejects:   r.Counter("server_model_swap_rejects_total"),
		modelVersion:  r.Gauge("server_model_version"),
		openConns:     r.Gauge("server_open_connections"),
		predictNS:     r.Histogram("server_predict_ns", obs.LatencyBounds),
	}
}

// trackerBound resolves MaxTrackedObjects to the features.NewTracker
// argument (0 there means unbounded).
func (s *Server) trackerBound() int {
	switch {
	case s.MaxTrackedObjects > 0:
		return s.MaxTrackedObjects
	case s.MaxTrackedObjects < 0:
		return 0
	default:
		return 1 << 22
	}
}

// readTimeout resolves the ReadTimeout knob (0 if disabled).
func (s *Server) readTimeout() time.Duration {
	switch {
	case s.ReadTimeout > 0:
		return s.ReadTimeout
	case s.ReadTimeout < 0:
		return 0
	default:
		return DefaultReadTimeout
	}
}

// writeTimeout resolves the WriteTimeout knob (0 if disabled).
func (s *Server) writeTimeout() time.Duration {
	switch {
	case s.WriteTimeout > 0:
		return s.WriteTimeout
	case s.WriteTimeout < 0:
		return 0
	default:
		return DefaultWriteTimeout
	}
}

// drainTimeout resolves the DrainTimeout knob (0 = force close at once).
func (s *Server) drainTimeout() time.Duration {
	switch {
	case s.DrainTimeout > 0:
		return s.DrainTimeout
	case s.DrainTimeout < 0:
		return 0
	default:
		return DefaultDrainTimeout
	}
}

// maxFrame resolves the MaxFramePayload knob.
func (s *Server) maxFrame() int {
	switch {
	case s.MaxFramePayload > 0:
		return s.MaxFramePayload
	case s.MaxFramePayload < 0:
		return math.MaxUint32
	default:
		return maxFramePayload
	}
}

// maxConns resolves the MaxConns knob (0 if unbounded).
func (s *Server) maxConns() int {
	switch {
	case s.MaxConns > 0:
		return s.MaxConns
	case s.MaxConns < 0:
		return 0
	default:
		return DefaultMaxConns
	}
}

// degrade counts nothing itself — callers bump their counter — but fans
// the event out to OnDegrade when configured.
func (s *Server) degrade(kind string, remote net.Addr, err error) {
	if s.OnDegrade == nil {
		return
	}
	ev := DegradeEvent{Kind: kind, Err: err}
	if remote != nil {
		ev.Remote = remote.String()
	}
	s.OnDegrade(ev)
}

// New returns a server deploying the given model. workers bounds the
// per-request prediction parallelism (0 = all available cores, 1 =
// serial).
func New(model *gbdt.Model, workers int) *Server {
	s := &Server{workers: workers, conns: make(map[net.Conn]struct{}), Logf: log.Printf}
	s.model.Store(model)
	return s
}

// SetModel atomically swaps the deployed model without changing the
// deployed version (the local, unversioned handoff path).
func (s *Server) SetModel(m *gbdt.Model) { s.model.Store(m) }

// SetModelVersion atomically deploys a model as the given version —
// the local equivalent of an opModel rollout frame.
func (s *Server) SetModelVersion(m *gbdt.Model, version uint64) {
	s.swapMu.Lock()
	s.model.Store(m)
	s.version.Store(version)
	s.swapMu.Unlock()
	s.m.modelVersion.Set(int64(version))
}

// ModelVersion returns the deployed model version (0 = never versioned).
func (s *Server) ModelVersion() uint64 { return s.version.Load() }

// Listen binds the address (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	s.m = newServerMetrics(s.Obs)
	s.m.modelVersion.Set(int64(s.version.Load()))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

// Serve accepts connections from an existing listener instead of binding
// one; tests use it to interpose fault-injecting listeners. Like Listen,
// it must be called once and returns immediately.
func (s *Server) Serve(ln net.Listener) {
	s.m = newServerMetrics(s.Obs)
	s.m.modelVersion.Set(int64(s.version.Load()))
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var errStreak int
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// A transient accept failure (connection reset before
			// accept, file-descriptor pressure, injected fault) must not
			// kill the accept loop; back off briefly so a persistent
			// failure cannot spin the CPU.
			s.m.acceptErrors.Inc()
			s.degrade("accept_error", nil, err)
			errStreak++
			if errStreak > 1 {
				backoff := time.Millisecond << uint(min(errStreak-2, 7))
				time.Sleep(backoff)
			}
			continue
		}
		errStreak = 0
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // already shutting down; nothing to report to
			return
		}
		if mc := s.maxConns(); mc > 0 && len(s.conns) >= mc {
			s.mu.Unlock()
			s.m.connRejects.Inc()
			s.degrade("conn_limit", conn.RemoteAddr(), nil)
			s.wg.Add(1)
			go s.rejectConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// rejectConn answers an over-limit connection with an error frame (best
// effort, bounded by the write timeout) and closes it.
func (s *Server) rejectConn(conn net.Conn) {
	defer s.wg.Done()
	if wt := s.writeTimeout(); wt > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(wt)) // best-effort bound on the goodbye frame
	}
	_ = writeFrame(conn, encodeError("server at connection limit")) // best-effort goodbye
	_ = conn.Close()                                                // reject path; nothing to report to
}

// isTimeout reports whether an I/O error is a deadline violation.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// draining reports whether Close has begun.
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// connState is one connection's request-processing scratch: the lazy
// feature tracker for the stateful admit protocol and the reused feature
// matrix the admit handler fills before its PredictMatrix call. Shared
// by the classic and mux paths, which interleave freely on a connection.
type connState struct {
	tracker *features.Tracker
	rows    []float64 // admit feature-matrix scratch, grown to the largest batch seen
}

// errNoModel answers requests that arrive before any model is deployed.
var errNoModel = errors.New("no model deployed")

// handle serves one connection until disconnect, error, or drain.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	s.m.openConns.Add(1)
	defer s.m.openConns.Add(-1)
	defer func() {
		_ = conn.Close() // best-effort teardown of a served connection
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var cs connState
	maxFrame := s.maxFrame()
	readTimeout := s.readTimeout()
	writeTimeout := s.writeTimeout()
	for {
		if readTimeout > 0 && !s.draining() {
			_ = conn.SetReadDeadline(time.Now().Add(readTimeout)) // deadline errors surface on the read itself
		}
		payload, err := readFrame(conn, maxFrame)
		if err != nil {
			var tooLarge *ErrFrameTooLarge
			switch {
			case s.draining():
				// Drain wake-up (Close set an immediate deadline) or the
				// peer leaving during shutdown; never a degradation.
			case isTimeout(err):
				s.m.readTimeouts.Inc()
				s.degrade("read_timeout", conn.RemoteAddr(), err)
			case errors.As(err, &tooLarge):
				// The oversized payload is unread, so the stream cannot
				// be resynchronized: answer (best effort) and close.
				s.m.frameRejects.Inc()
				s.degrade("frame_limit", conn.RemoteAddr(), err)
				if writeTimeout > 0 {
					_ = conn.SetWriteDeadline(time.Now().Add(writeTimeout)) // best-effort bound
				}
				_ = writeFrame(conn, encodeError(err.Error())) // best-effort goodbye on a doomed conn
			case benignDisconnect(err):
			default:
				s.m.readErrors.Inc()
				s.Logf("server: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		var resp []byte
		switch {
		case len(payload) > 0 && payload[0] == opMux:
			resp = s.handleMux(&cs, payload)
		case len(payload) > 0 && payload[0] == opModel:
			resp = s.handleModelSwap(payload)
		default:
			probs, perr := s.process(&cs, payload)
			if perr != nil {
				s.countBadRequest(perr)
				resp = encodeError(perr.Error())
			} else {
				resp = encodePredictResponse(probs)
			}
		}
		if err := s.writeResponse(conn, writeTimeout, resp); err != nil {
			return
		}
	}
}

// countBadRequest bumps the malformed-request counter, except for the
// no-model condition, which is a deployment state rather than a peer
// fault (matching the historical counter semantics).
func (s *Server) countBadRequest(err error) {
	if !errors.Is(err, errNoModel) {
		s.m.badRequests.Inc()
	}
}

// handleMux unwraps a correlation-ID envelope, processes the inner
// request, and wraps the response (or application error) under the same
// ID. An unparseable envelope is answered unwrapped: the client cannot
// correlate it either way and will fail the stream over to its fallback.
func (s *Server) handleMux(cs *connState, payload []byte) []byte {
	id, inner, derr := decodeMux(payload)
	if derr != nil {
		s.m.badRequests.Inc()
		return encodeError(derr.Error())
	}
	s.m.muxReqs.Inc()
	probs, perr := s.process(cs, inner)
	if perr != nil {
		s.countBadRequest(perr)
		return encodeMuxResponse(id, encodeError(perr.Error()))
	}
	return encodeMuxResponse(id, encodePredictResponse(probs))
}

// handleModelSwap deploys a pushed model under its version: newer
// versions swap atomically, the current version acks idempotently
// (re-pushed rollouts), and stale or unversioned pushes are rejected so
// a lagging controller cannot roll a shard backwards.
func (s *Server) handleModelSwap(payload []byte) []byte {
	version, body, derr := decodeModelSwap(payload)
	if derr != nil {
		s.m.badRequests.Inc()
		return encodeError(derr.Error())
	}
	if version == 0 {
		s.m.swapRejects.Inc()
		return encodeError("server: model swap version must be >= 1")
	}
	m, lerr := gbdt.Load(bytes.NewReader(body))
	if lerr != nil {
		s.m.swapRejects.Inc()
		return encodeError(fmt.Sprintf("server: model swap rejected: %v", lerr))
	}
	s.swapMu.Lock()
	cur := s.version.Load()
	if version < cur {
		s.swapMu.Unlock()
		s.m.swapRejects.Inc()
		return encodeError(fmt.Sprintf("server: stale model swap: version %d, deployed %d", version, cur))
	}
	if version > cur {
		s.model.Store(m)
		s.version.Store(version)
	}
	s.swapMu.Unlock()
	if version > cur {
		s.m.modelSwaps.Inc()
		s.m.modelVersion.Set(int64(version))
	}
	return encodeModelAck(version)
}

// process evaluates one classic request payload (opPredict or opAdmit)
// against the deployed model. Admit batches extract features row by row
// (the tracker mutates between rows) into a reused matrix and score it
// with one batch-major PredictMatrix call, so a full pipelined block
// costs one kernel invocation instead of per-row tree walks.
func (s *Server) process(cs *connState, payload []byte) ([]float64, error) {
	m := s.model.Load()
	if m == nil {
		return nil, errNoModel
	}
	switch {
	case len(payload) > 0 && payload[0] == opPredict:
		rows, derr := decodePredictRequest(payload, features.Dim)
		if derr != nil {
			return nil, derr
		}
		s.m.predictReqs.Inc()
		s.m.predictRows.Add(int64(len(rows) / features.Dim))
		probs := make([]float64, len(rows)/features.Dim)
		sc := obs.Start(s.m.predictNS)
		m.PredictMatrix(rows, probs, s.workers)
		sc.Stop()
		return probs, nil
	case len(payload) > 0 && payload[0] == opAdmit:
		reqs, derr := decodeAdmitRequest(payload)
		if derr != nil {
			return nil, derr
		}
		if cs.tracker == nil {
			cs.tracker = features.NewTracker(s.trackerBound())
		}
		s.m.admitReqs.Inc()
		s.m.admitRows.Add(int64(len(reqs)))
		need := len(reqs) * features.Dim
		if cap(cs.rows) < need {
			cs.rows = make([]float64, need)
		}
		rows := cs.rows[:need]
		probs := make([]float64, len(reqs))
		sc := obs.Start(s.m.predictNS)
		for i, ar := range reqs {
			r := trace.Request{Time: ar.Time, ID: trace.ObjectID(ar.ID), Size: ar.Size, Cost: ar.Cost}
			cs.tracker.Features(r, ar.Free, rows[i*features.Dim:(i+1)*features.Dim])
			cs.tracker.Update(r)
		}
		m.PredictMatrix(rows, probs, s.workers)
		sc.Stop()
		return probs, nil
	default:
		return nil, fmt.Errorf("server: unknown opcode in %d-byte frame", len(payload))
	}
}

// writeResponse writes one response frame under the write deadline,
// counting timeout violations and write errors.
func (s *Server) writeResponse(conn net.Conn, timeout time.Duration, payload []byte) error {
	if timeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(timeout)) // deadline errors surface on the write itself
	}
	err := writeFrame(conn, payload)
	if err == nil {
		return nil
	}
	if isTimeout(err) {
		s.m.writeTimeouts.Inc()
		s.degrade("write_timeout", conn.RemoteAddr(), err)
	} else {
		s.m.writeErrors.Inc()
	}
	return err
}

// benignDisconnect reports whether a frame-read error is an ordinary
// client disconnect — clean between frames (io.EOF, possibly wrapped) or
// mid-frame (io.ErrUnexpectedEOF) — or our own Close tearing the socket
// down. None of these warrant logging.
func benignDisconnect(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// Close stops accepting and drains: idle connections are woken with an
// immediate read deadline and exit cleanly, in-flight responses finish
// under their write deadline, and whatever remains after DrainTimeout is
// force-closed (counted, surfaced via OnDegrade).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	// Wake handlers blocked waiting for the next frame; handlers notice
	// the drain and exit without treating the wake as a timeout.
	wake := time.Now()
	for _, c := range conns {
		_ = c.SetReadDeadline(wake) // best effort; the conn may be racing its own close
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if dt := s.drainTimeout(); dt > 0 {
		timer := time.NewTimer(dt)
		defer timer.Stop()
		select {
		case <-done:
			return err
		case <-timer.C:
		}
	}
	// Grace expired (or drain disabled): force-close survivors.
	s.mu.Lock()
	for c := range s.conns {
		s.m.drainKills.Inc()
		s.degrade("drain_force_close", c.RemoteAddr(), nil)
		_ = c.Close() // force handlers to unblock; their errors are benign here
	}
	s.mu.Unlock()
	<-done
	return err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
