package server

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/trace"
)

// Server serves admission-likelihood predictions over TCP. The deployed
// model is swappable at runtime (SetModel), mirroring LFO's per-window
// model handoff, and every connection is handled by its own goroutine.
type Server struct {
	model    atomic.Pointer[gbdt.Model]
	listener net.Listener
	workers  int

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logf receives connection-level errors; defaults to log.Printf.
	// Must be set before Serve.
	Logf func(format string, args ...interface{})
}

// New returns a server deploying the given model. workers bounds the
// per-request prediction parallelism (0 = all available cores, 1 =
// serial).
func New(model *gbdt.Model, workers int) *Server {
	s := &Server{workers: workers, conns: make(map[net.Conn]struct{}), Logf: log.Printf}
	s.model.Store(model)
	return s
}

// SetModel atomically swaps the deployed model.
func (s *Server) SetModel(m *gbdt.Model) { s.model.Store(m) }

// Listen binds the address (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.Logf("server: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // already shutting down; nothing to report to
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle serves one connection until EOF or error.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close() // best-effort teardown of a served connection
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Per-connection feature tracker for the compact opAdmit protocol;
	// allocated lazily on the first opAdmit frame.
	var tracker *features.Tracker
	buf := make([]float64, features.Dim)
	for {
		payload, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && err.Error() != "EOF" {
				// Benign EOF on client disconnect; log the rest.
				if !isEOF(err) {
					s.Logf("server: read from %s: %v", conn.RemoteAddr(), err)
				}
			}
			return
		}
		m := s.model.Load()
		if m == nil {
			if werr := writeFrame(conn, encodeError("no model deployed")); werr != nil {
				return
			}
			continue
		}
		var probs []float64
		switch {
		case len(payload) > 0 && payload[0] == opPredict:
			rows, derr := decodePredictRequest(payload, features.Dim)
			if derr != nil {
				err = derr
				break
			}
			probs = make([]float64, len(rows)/features.Dim)
			m.PredictBatch(rows, probs, s.workers)
		case len(payload) > 0 && payload[0] == opAdmit:
			reqs, derr := decodeAdmitRequest(payload)
			if derr != nil {
				err = derr
				break
			}
			if tracker == nil {
				tracker = features.NewTracker(1 << 22)
			}
			probs = make([]float64, len(reqs))
			for i, ar := range reqs {
				r := trace.Request{Time: ar.Time, ID: trace.ObjectID(ar.ID), Size: ar.Size, Cost: ar.Cost}
				tracker.Features(r, ar.Free, buf)
				probs[i] = m.Predict(buf)
				tracker.Update(r)
			}
		default:
			err = fmt.Errorf("server: unknown opcode in %d-byte frame", len(payload))
		}
		if err != nil {
			if werr := writeFrame(conn, encodeError(err.Error())); werr != nil {
				return
			}
			continue
		}
		if err := writeFrame(conn, encodePredictResponse(probs)); err != nil {
			return
		}
	}
}

func isEOF(err error) bool {
	return err != nil && (err.Error() == "EOF" || errors.Is(err, net.ErrClosed))
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close() // force handlers to unblock; their errors are benign here
	}
	s.mu.Unlock()
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a prediction-service client. It is safe for sequential use;
// wrap with a pool for concurrency.
type Client struct {
	conn net.Conn
}

// Dial connects to a prediction server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Predict sends a flat row-major feature matrix (features.Dim wide) and
// returns one probability per row.
func (c *Client) Predict(rows []float64) ([]float64, error) {
	if len(rows)%features.Dim != 0 {
		return nil, fmt.Errorf("server: rows length %d not a multiple of dim %d", len(rows), features.Dim)
	}
	if err := writeFrame(c.conn, encodePredictRequest(rows, features.Dim)); err != nil {
		return nil, fmt.Errorf("server: send: %w", err)
	}
	payload, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("server: receive: %w", err)
	}
	return decodePredictResponse(payload)
}

// Admit sends raw request tuples over the compact protocol (the server
// tracks per-object feature history for this connection) and returns one
// admission likelihood per request. A tenth of the bandwidth of Predict.
func (c *Client) Admit(reqs []AdmitRequest) ([]float64, error) {
	if err := writeFrame(c.conn, encodeAdmitRequest(reqs)); err != nil {
		return nil, fmt.Errorf("server: send: %w", err)
	}
	payload, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("server: receive: %w", err)
	}
	return decodePredictResponse(payload)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
