package server

import (
	"fmt"
	"net"
	"time"

	"lfo/internal/features"
	"lfo/internal/obs"
)

// Default values for the client's robustness knobs. As on the server,
// each knob reads as: 0 = the default below, negative = disabled.
const (
	// DefaultClientTimeout bounds one request/response attempt.
	DefaultClientTimeout = 5 * time.Second
	// DefaultMaxRetries is how many times a failed attempt is retried on
	// a fresh connection before the error surfaces to the caller.
	DefaultMaxRetries = 2
	// DefaultBackoff is the sleep before the first retry; it doubles per
	// subsequent retry of the same call.
	DefaultBackoff = 5 * time.Millisecond
)

// ClientConfig tunes the client's robustness behavior. The zero value
// gives safe defaults (per-attempt timeout, bounded retries with
// exponential backoff).
type ClientConfig struct {
	// Timeout bounds one attempt — connect, request write, response
	// read. 0 means DefaultClientTimeout; negative disables the
	// deadline (an attempt may then block until the peer acts).
	Timeout time.Duration

	// MaxRetries is how many fresh-connection retries follow a failed
	// attempt. 0 means DefaultMaxRetries; negative means fail on the
	// first transport error. Remote application errors (opError frames)
	// are never retried.
	MaxRetries int

	// Backoff is the sleep before the first retry, doubling per
	// subsequent retry. 0 means DefaultBackoff; negative retries
	// immediately.
	Backoff time.Duration

	// Dial, when set, replaces net.Dial("tcp", addr) — tests use it to
	// interpose fault-injecting connections.
	Dial func() (net.Conn, error)

	// Obs, when set, counts retries, reconnects, per-attempt timeouts,
	// and calls that failed after exhausting retries.
	Obs *obs.Registry
}

func (cfg ClientConfig) timeout() time.Duration {
	switch {
	case cfg.Timeout > 0:
		return cfg.Timeout
	case cfg.Timeout < 0:
		return 0
	default:
		return DefaultClientTimeout
	}
}

func (cfg ClientConfig) maxRetries() int {
	switch {
	case cfg.MaxRetries > 0:
		return cfg.MaxRetries
	case cfg.MaxRetries < 0:
		return 0
	default:
		return DefaultMaxRetries
	}
}

func (cfg ClientConfig) backoff() time.Duration {
	switch {
	case cfg.Backoff > 0:
		return cfg.Backoff
	case cfg.Backoff < 0:
		return 0
	default:
		return DefaultBackoff
	}
}

type clientMetrics struct {
	retries    *obs.Counter
	reconnects *obs.Counter
	timeouts   *obs.Counter
	failures   *obs.Counter
}

func newClientMetrics(r *obs.Registry) clientMetrics {
	return clientMetrics{
		retries:    r.Counter("client_retries_total"),
		reconnects: r.Counter("client_reconnects_total"),
		timeouts:   r.Counter("client_timeouts_total"),
		failures:   r.Counter("client_failures_total"),
	}
}

// Client is a prediction-service client. It is synchronous and not safe
// for concurrent use (the protocol allows one in-flight request per
// connection).
//
// Calls fail fast rather than hang: each attempt runs under
// ClientConfig.Timeout, and a transport failure (error, timeout, partial
// write) closes the connection — the stream may be desynchronized — and
// retries on a fresh one, with exponential backoff, up to MaxRetries.
type Client struct {
	cfg  ClientConfig
	dial func() (net.Conn, error)
	conn net.Conn
	m    clientMetrics
}

// Dial connects to a prediction server with default robustness settings.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a prediction server with explicit settings. The
// initial connect fails fast like calls do (no retries: a dead address
// should surface immediately).
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	c := &Client{cfg: cfg, dial: cfg.Dial, m: newClientMetrics(cfg.Obs)}
	if c.dial == nil {
		c.dial = func() (net.Conn, error) {
			d := net.Dialer{Timeout: cfg.timeout()}
			return d.Dial("tcp", addr)
		}
	}
	conn, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	c.conn = conn
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// dropConn discards a connection whose stream state is no longer
// trustworthy (failed or timed-out attempt, partial write).
func (c *Client) dropConn() {
	if c.conn != nil {
		_ = c.conn.Close() // the stream is desynced; nothing useful can fail here
		c.conn = nil
	}
}

// call performs one request/response exchange with retries. The request
// frame is idempotent to resend: each retry runs on a fresh connection.
func (c *Client) call(req []byte) ([]byte, error) {
	retries := c.cfg.maxRetries()
	backoff := c.cfg.backoff()
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			c.m.retries.Inc()
			if backoff > 0 {
				time.Sleep(backoff << uint(min(attempt-1, 16)))
			}
		}
		if c.conn == nil {
			var conn net.Conn
			conn, err = c.dial()
			if err != nil {
				continue
			}
			c.conn = conn
			c.m.reconnects.Inc()
		}
		if t := c.cfg.timeout(); t > 0 {
			_ = c.conn.SetDeadline(time.Now().Add(t)) // deadline errors surface on the I/O below
		}
		var resp []byte
		resp, err = c.attempt(req)
		if err == nil {
			return resp, nil
		}
		if isTimeout(err) {
			c.m.timeouts.Inc()
		}
		// The connection may hold a half-written request or a half-read
		// response; it cannot be reused.
		c.dropConn()
	}
	c.m.failures.Inc()
	return nil, fmt.Errorf("server: call failed after %d attempts: %w", retries+1, err)
}

func (c *Client) attempt(req []byte) ([]byte, error) {
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	return readFrame(c.conn, maxFramePayload)
}

// Predict sends a flat row-major feature matrix (len divisible by
// features.Dim) and returns one probability per row.
func (c *Client) Predict(rows []float64) ([]float64, error) {
	payload, err := c.call(encodePredictRequest(rows, features.Dim))
	if err != nil {
		return nil, err
	}
	return decodePredictResponse(payload)
}

// Admit sends raw request tuples over the compact stateful protocol and
// returns one admission probability per tuple.
//
// Note the session caveat: the server tracks per-object history per
// connection, so a retry that reconnects loses accumulated history for
// this client. The call still succeeds; early predictions after a
// reconnect see cold features.
func (c *Client) Admit(reqs []AdmitRequest) ([]float64, error) {
	payload, err := c.call(encodeAdmitRequest(reqs))
	if err != nil {
		return nil, err
	}
	return decodePredictResponse(payload)
}
