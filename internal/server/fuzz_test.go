package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"lfo/internal/features"
)

// fuzzFrameMax is the frame bound the fuzz target reads under — small
// enough that a genuine over-allocation would show up immediately as an
// OOM-ish allocation spike rather than hide under the default 64 MiB cap.
const fuzzFrameMax = 1 << 20

// FuzzFrameDecode feeds arbitrary bytes through the whole frame codec:
// the length-prefixed reader and all three payload decoders. Nothing may
// panic, and readFrame may not allocate anywhere near a lying length
// header's claim (it grows the buffer only as bytes actually arrive).
func FuzzFrameDecode(f *testing.F) {
	// A valid single-row predict request.
	f.Add(frameBytes(encodePredictRequest(make([]float64, features.Dim), features.Dim)))
	// A valid compact admit request.
	f.Add(frameBytes(encodeAdmitRequest([]AdmitRequest{{Time: 1, ID: 2, Size: 3, Cost: 4, Free: 5}})))
	// A valid response and an error frame.
	f.Add(frameBytes(encodePredictResponse([]float64{0.25, 0.75})))
	f.Add(frameBytes(encodeError("remote error text")))
	// Degenerate shapes: empty input, empty frame, truncated header,
	// truncated payload, lying row counts, huge claimed length.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{5, 0})
	f.Add([]byte{8, 0, 0, 0, 1, 2, 3})
	f.Add(frameBytes([]byte{1, 0xff, 0xff, 0xff, 0xff}))
	f.Add(frameBytes([]byte{2, 0xff, 0xff, 0xff, 0xff, 9, 9}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data), fuzzFrameMax)
		if err != nil {
			return
		}
		if len(payload) > fuzzFrameMax {
			t.Fatalf("readFrame returned %d bytes past the %d cap", len(payload), fuzzFrameMax)
		}
		// Every decoder must handle every accepted frame without
		// panicking, whatever the opcode byte claims.
		if rows, err := decodePredictRequest(payload, features.Dim); err == nil {
			if len(rows)%features.Dim != 0 {
				t.Fatalf("decoded predict rows length %d not a multiple of dim", len(rows))
			}
		}
		if reqs, err := decodeAdmitRequest(payload); err == nil {
			if len(payload) != 5+len(reqs)*admitRowBytes {
				t.Fatalf("decoded %d admit rows from %d payload bytes", len(reqs), len(payload))
			}
		}
		_, _ = decodePredictResponse(payload)
	})
}

// TestRegenerateFuzzCorpus rewrites the committed seed corpus under
// testdata/fuzz when LFO_REGEN_CORPUS=1 is set; otherwise it is a no-op.
// The committed files mirror the in-code f.Add seeds so `go test` (and
// the check.sh fuzz smoke) always replays them from a fresh checkout.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("LFO_REGEN_CORPUS") == "" {
		t.Skip("set LFO_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	seeds := map[string][]byte{
		"seed-predict-row":   frameBytes(encodePredictRequest(make([]float64, features.Dim), features.Dim)),
		"seed-admit-row":     frameBytes(encodeAdmitRequest([]AdmitRequest{{Time: 1, ID: 2, Size: 3, Cost: 4, Free: 5}})),
		"seed-response":      frameBytes(encodePredictResponse([]float64{0.25, 0.75})),
		"seed-error-frame":   frameBytes(encodeError("remote error text")),
		"seed-empty-frame":   {0, 0, 0, 0},
		"seed-short-header":  {5, 0},
		"seed-truncated":     {8, 0, 0, 0, 1, 2, 3},
		"seed-lying-predict": frameBytes([]byte{1, 0xff, 0xff, 0xff, 0xff}),
		"seed-lying-admit":   frameBytes([]byte{2, 0xff, 0xff, 0xff, 0xff, 9, 9}),
		"seed-huge-claim":    {0xff, 0xff, 0xff, 0xff, 1, 2, 3},
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func frameBytes(payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// lyingReader hands out a 4-byte header claiming a huge frame and then
// drips a few real bytes before EOF.
type lyingReader struct {
	header [4]byte
	body   int
	pos    int
}

func (r *lyingReader) Read(p []byte) (int, error) {
	if r.pos < 4 {
		n := copy(p, r.header[r.pos:])
		r.pos += n
		return n, nil
	}
	if r.pos-4 >= r.body {
		return 0, io.EOF
	}
	if len(p) > 1 {
		p = p[:1] // drip one byte at a time
	}
	p[0] = 0xab
	r.pos++
	return 1, nil
}

// TestReadFrameNoUpfrontAllocation pins the over-allocation fix the fuzz
// target watches for: a header claiming the full frame bound while only
// delivering a handful of bytes must not make readFrame allocate the
// claimed size.
func TestReadFrameNoUpfrontAllocation(t *testing.T) {
	const claimed = 48 << 20
	r := &lyingReader{body: 100}
	binary.LittleEndian.PutUint32(r.header[:], claimed)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err := readFrame(r, 64<<20)
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated frame accepted")
	}
	// The 100 delivered bytes fit in the first chunk; total allocation
	// must stay around frameAllocChunk, nowhere near the claimed 48 MiB.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Errorf("readFrame allocated %d bytes for a %d-byte delivery claiming %d", grew, 100, claimed)
	}
}
