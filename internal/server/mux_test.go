package server

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lfo/internal/features"
	"lfo/internal/gbdt"
)

// dialMux connects a MuxConn to a test server.
func dialMux(t *testing.T, addr string) *MuxConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMuxConn(conn)
	t.Cleanup(func() { _ = mc.Close() })
	return mc
}

// randAdmitBatch builds n deterministic pseudo-random admit tuples.
func randAdmitBatch(rng *rand.Rand, n int) []AdmitRequest {
	reqs := make([]AdmitRequest, n)
	for i := range reqs {
		reqs[i] = AdmitRequest{
			Time: rng.Int63n(1 << 40),
			ID:   rng.Uint64() % 4096,
			Size: 1 + rng.Int63n(1<<20),
			Cost: rng.Float64() * 10,
			Free: rng.Int63n(1 << 30),
		}
	}
	return reqs
}

// TestMuxPipelinedPredict keeps several predict batches in flight on one
// connection and checks that responses come back in order, correlated,
// and numerically identical to a local PredictMatrix call.
func TestMuxPipelinedPredict(t *testing.T) {
	m := testModel(t)
	_, addr := startServer(t, m)
	mc := dialMux(t, addr)

	rng := rand.New(rand.NewSource(7))
	const batches, rows = 6, 17
	all := make([][]float64, batches)
	for b := range all {
		rowsBuf := make([]float64, rows*features.Dim)
		for i := range rowsBuf {
			rowsBuf[i] = rng.Float64() * 100
		}
		all[b] = rowsBuf
	}
	// Write every batch before reading anything: all six are in flight.
	for b, rowsBuf := range all {
		if err := mc.WritePredictBatch(uint64(100+b), rowsBuf, features.Dim); err != nil {
			t.Fatalf("write batch %d: %v", b, err)
		}
	}
	for b, rowsBuf := range all {
		id, probs, err := mc.ReadResponse()
		if err != nil {
			t.Fatalf("read batch %d: %v", b, err)
		}
		if id != uint64(100+b) {
			t.Fatalf("batch %d: correlation ID %d, want %d", b, id, 100+b)
		}
		want := make([]float64, rows)
		m.PredictMatrix(rowsBuf, want, 1)
		for i := range want {
			if probs[i] != want[i] {
				t.Fatalf("batch %d row %d: prob %v, want %v", b, i, probs[i], want[i])
			}
		}
	}
}

// TestMuxAdmitMatchesClassic replays the same admit stream through a
// classic Client (one connection) and through pipelined mux batches
// (another connection): both per-connection trackers start cold, so the
// responses must be identical row for row.
func TestMuxAdmitMatchesClassic(t *testing.T) {
	m := testModel(t)
	_, addr := startServer(t, m)

	rng := rand.New(rand.NewSource(11))
	const batches, rows = 5, 23
	stream := make([][]AdmitRequest, batches)
	for b := range stream {
		stream[b] = randAdmitBatch(rng, rows)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	classic := make([][]float64, batches)
	for b := range stream {
		probs, err := c.Admit(stream[b])
		if err != nil {
			t.Fatalf("classic admit batch %d: %v", b, err)
		}
		classic[b] = probs
	}

	mc := dialMux(t, addr)
	for b := range stream {
		if err := mc.WriteAdmitBatch(uint64(b), stream[b]); err != nil {
			t.Fatalf("mux write batch %d: %v", b, err)
		}
	}
	for b := range stream {
		id, probs, err := mc.ReadResponse()
		if err != nil {
			t.Fatalf("mux read batch %d: %v", b, err)
		}
		if id != uint64(b) {
			t.Fatalf("batch %d: correlation ID %d", b, id)
		}
		for i := range probs {
			if probs[i] != classic[b][i] {
				t.Fatalf("batch %d row %d: mux %v, classic %v", b, i, probs[i], classic[b][i])
			}
		}
	}
}

// TestMuxErrorCorrelated: an application error inside a mux envelope
// comes back under the same correlation ID, and the connection remains
// usable for the next batch.
func TestMuxErrorCorrelated(t *testing.T) {
	m := testModel(t)
	_, addr := startServer(t, m)
	mc := dialMux(t, addr)

	// Inner payload with a lying row count: decodable envelope, bad body.
	// encodeMuxResponse builds the same envelope a request uses.
	bad := encodeMuxResponse(42, []byte{opPredict, 0xff, 0xff, 0xff, 0xff})
	if err := writeFrame(muxRawConn(mc), bad); err != nil {
		t.Fatal(err)
	}
	id, _, err := mc.ReadResponse()
	if err == nil {
		t.Fatal("lying predict batch succeeded")
	}
	if id != 42 {
		t.Fatalf("error correlated to ID %d, want 42", id)
	}
	if !strings.Contains(err.Error(), "remote error") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The stream is still in sync: a good batch goes through.
	good := randAdmitBatch(rand.New(rand.NewSource(3)), 4)
	if err := mc.WriteAdmitBatch(43, good); err != nil {
		t.Fatal(err)
	}
	id, probs, err := mc.ReadResponse()
	if err != nil || id != 43 || len(probs) != 4 {
		t.Fatalf("post-error batch: id=%d len=%d err=%v", id, len(probs), err)
	}
}

// muxRawConn exposes the MuxConn's transport for tests that craft frames.
func muxRawConn(mc *MuxConn) net.Conn { return mc.conn }

// testModelBiased trains a second, distinguishable model whose label rule
// differs from testModel's so rollout swaps are observable.
func testModelBiased(t *testing.T) *gbdt.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	ds := gbdt.NewDataset(features.Dim)
	row := make([]float64, features.Dim)
	for i := 0; i < 2000; i++ {
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		label := 0.0
		if row[features.FeatSize] < 30 { // inverted, shifted rule
			label = 1
		}
		ds.Append(row, label)
	}
	p := gbdt.DefaultParams()
	p.NumIterations = 10
	m, err := gbdt.Train(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestModelRolloutSwapsAtomically pushes a versioned model over the wire
// and verifies swap, idempotent re-push, stale rejection, and that
// predictions actually change.
func TestModelRolloutSwapsAtomically(t *testing.T) {
	mA := testModel(t)
	mB := testModelBiased(t)
	srv, addr := startServer(t, mA)

	row := make([]float64, features.Dim)
	for i := range row {
		row[i] = 50
	}
	wantA, wantB := mA.Predict(row), mB.Predict(row)
	if wantA == wantB {
		t.Fatalf("test models agree on the probe row (%v); pick a different row", wantA)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	probe := func() float64 {
		t.Helper()
		probs, err := c.Predict(row)
		if err != nil {
			t.Fatal(err)
		}
		return probs[0]
	}
	if got := probe(); got != wantA {
		t.Fatalf("pre-rollout prediction %v, want %v", got, wantA)
	}

	mc := dialMux(t, addr)
	if err := mc.Rollout(2, mB); err != nil {
		t.Fatalf("rollout v2: %v", err)
	}
	if v := srv.ModelVersion(); v != 2 {
		t.Fatalf("deployed version %d, want 2", v)
	}
	if got := probe(); got != wantB {
		t.Fatalf("post-rollout prediction %v, want %v", got, wantB)
	}
	// Re-pushing the deployed version acks idempotently.
	if err := mc.Rollout(2, mB); err != nil {
		t.Fatalf("idempotent re-push: %v", err)
	}
	// A stale version is rejected and does not swap.
	if err := mc.Rollout(1, mA); err == nil {
		t.Fatal("stale rollout accepted")
	}
	if got := probe(); got != wantB {
		t.Fatalf("stale rollout changed the model: %v", got)
	}
	// Version 0 is reserved.
	if err := mc.Rollout(0, mA); err == nil {
		t.Fatal("version-0 rollout accepted")
	}
}

// TestMuxEncodeDecodeIdentity is the codec property test: for seeded
// random batches, encode→decode is the identity for admit requests,
// predict requests, and enveloped responses.
func TestMuxEncodeDecodeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for iter := 0; iter < 200; iter++ {
		id := rng.Uint64()
		n := rng.Intn(65)

		// Admit batch.
		reqs := randAdmitBatch(rng, n)
		frame := appendMuxAdmit(nil, id, reqs)
		payload, err := readFrame(bytes.NewReader(frame), maxFramePayload)
		if err != nil {
			t.Fatalf("iter %d: reading appended admit frame: %v", iter, err)
		}
		gotID, inner, err := decodeMux(payload)
		if err != nil || gotID != id {
			t.Fatalf("iter %d: envelope id=%d err=%v", iter, gotID, err)
		}
		gotReqs, err := decodeAdmitRequest(inner)
		if err != nil {
			t.Fatalf("iter %d: inner admit decode: %v", iter, err)
		}
		if len(gotReqs) != len(reqs) {
			t.Fatalf("iter %d: %d rows, want %d", iter, len(gotReqs), len(reqs))
		}
		for i := range reqs {
			if gotReqs[i] != reqs[i] {
				t.Fatalf("iter %d row %d: %+v != %+v", iter, i, gotReqs[i], reqs[i])
			}
		}

		// Predict batch.
		rows := make([]float64, n*features.Dim)
		for i := range rows {
			rows[i] = rng.NormFloat64() * 1000
		}
		frame = appendMuxPredict(nil, id^0x5555, rows, features.Dim)
		payload, err = readFrame(bytes.NewReader(frame), maxFramePayload)
		if err != nil {
			t.Fatalf("iter %d: reading appended predict frame: %v", iter, err)
		}
		gotID, inner, err = decodeMux(payload)
		if err != nil || gotID != id^0x5555 {
			t.Fatalf("iter %d: predict envelope id=%d err=%v", iter, gotID, err)
		}
		gotRows, err := decodePredictRequest(inner, features.Dim)
		if err != nil {
			t.Fatalf("iter %d: inner predict decode: %v", iter, err)
		}
		for i := range rows {
			if gotRows[i] != rows[i] && !(math.IsNaN(gotRows[i]) && math.IsNaN(rows[i])) {
				t.Fatalf("iter %d float %d: %v != %v", iter, i, gotRows[i], rows[i])
			}
		}

		// Enveloped response.
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		resp := encodeMuxResponse(id, encodePredictResponse(probs))
		gotID, inner, err = decodeMux(resp)
		if err != nil || gotID != id {
			t.Fatalf("iter %d: response envelope id=%d err=%v", iter, gotID, err)
		}
		gotProbs, err := decodePredictResponse(inner)
		if err != nil {
			t.Fatalf("iter %d: inner response decode: %v", iter, err)
		}
		for i := range probs {
			if gotProbs[i] != probs[i] {
				t.Fatalf("iter %d prob %d: %v != %v", iter, i, gotProbs[i], probs[i])
			}
		}
	}
}

// FuzzMuxFrameDecode feeds arbitrary bytes through the mux layer: the
// frame reader, the envelope splitter, every inner decoder, and the
// model-swap/ack parsers. Nothing may panic, envelope arithmetic must
// stay consistent, and re-enveloping a decoded payload must round-trip.
func FuzzMuxFrameDecode(f *testing.F) {
	for _, seed := range muxFuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data), fuzzFrameMax)
		if err != nil {
			return
		}
		if id, inner, err := decodeMux(payload); err == nil {
			if len(inner)+muxHdrBytes != len(payload) {
				t.Fatalf("envelope arithmetic: %d inner + %d header != %d payload", len(inner), muxHdrBytes, len(payload))
			}
			// Inner decoders must tolerate whatever the envelope carried.
			_, _ = decodePredictRequest(inner, features.Dim)
			_, _ = decodeAdmitRequest(inner)
			_, _ = decodePredictResponse(inner)
			// Round trip: re-enveloping the inner payload reproduces it.
			rt := encodeMuxResponse(id, inner)
			id2, inner2, err2 := decodeMux(rt)
			if err2 != nil || id2 != id || !bytes.Equal(inner2, inner) {
				t.Fatalf("mux re-encode round trip failed: id %d→%d err=%v", id, id2, err2)
			}
		}
		if v, body, err := decodeModelSwap(payload); err == nil {
			if len(body)+muxHdrBytes != len(payload) {
				t.Fatalf("model swap arithmetic broken")
			}
			if v2, err := decodeModelAck(encodeModelAck(v)); err != nil || v2 != v {
				t.Fatalf("model ack round trip: %d→%d err=%v", v, v2, err)
			}
		}
		_, _ = decodeModelAck(payload)
	})
}

// muxFuzzSeeds builds the seed corpus shared by the in-code f.Add calls
// and the committed testdata/fuzz files.
func muxFuzzSeeds() [][]byte {
	admit := appendMuxAdmit(nil, 7, []AdmitRequest{{Time: 1, ID: 2, Size: 3, Cost: 4, Free: 5}})
	predict := appendMuxPredict(nil, 9, make([]float64, features.Dim), features.Dim)
	resp := frameBytes(encodeMuxResponse(7, encodePredictResponse([]float64{0.25, 0.75})))
	muxErr := frameBytes(encodeMuxResponse(8, encodeError("remote error text")))
	swap := frameBytes(encodeModelSwap(3, []byte{1, 2, 3, 4}))
	ack := frameBytes(encodeModelAck(3))
	return [][]byte{
		admit,
		predict,
		resp,
		muxErr,
		swap,
		ack,
		// Truncated envelope: opcode but a short correlation ID.
		frameBytes([]byte{opMux, 1, 2, 3}),
		// Envelope with an empty inner payload.
		frameBytes([]byte{opMux, 0, 0, 0, 0, 0, 0, 0, 0}),
		// Envelope wrapping a lying inner row count.
		frameBytes(encodeMuxResponse(5, []byte{opAdmit, 0xff, 0xff, 0xff, 0xff, 1})),
		// Model swap with no body.
		frameBytes([]byte{opModel, 9, 0, 0, 0, 0, 0, 0, 0}),
	}
}

// TestRegenerateMuxFuzzCorpus rewrites the committed FuzzMuxFrameDecode
// seed corpus when LFO_REGEN_CORPUS=1 (mirrors TestRegenerateFuzzCorpus).
func TestRegenerateMuxFuzzCorpus(t *testing.T) {
	if os.Getenv("LFO_REGEN_CORPUS") == "" {
		t.Skip("set LFO_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzMuxFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	names := []string{
		"seed-mux-admit", "seed-mux-predict", "seed-mux-response",
		"seed-mux-error", "seed-model-swap", "seed-model-ack",
		"seed-short-envelope", "seed-empty-inner", "seed-lying-inner",
		"seed-empty-model",
	}
	seeds := muxFuzzSeeds()
	if len(names) != len(seeds) {
		t.Fatalf("%d names for %d seeds", len(names), len(seeds))
	}
	for i, name := range names {
		entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seeds[i])
		if err := os.WriteFile(filepath.Join(dir, name), []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
