package server

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lfo/internal/faultnet"
	"lfo/internal/features"
	"lfo/internal/obs"
)

// degradeLog collects OnDegrade events (fired from serving goroutines).
type degradeLog struct {
	mu  sync.Mutex
	evs []DegradeEvent
}

func (l *degradeLog) hook() func(DegradeEvent) {
	return func(ev DegradeEvent) {
		l.mu.Lock()
		l.evs = append(l.evs, ev)
		l.mu.Unlock()
	}
}

func (l *degradeLog) kinds() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.evs))
	for i, ev := range l.evs {
		out[i] = ev.Kind
	}
	return out
}

func waitCounter(t *testing.T, c *obs.Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Value() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter stuck at %d, want %d", c.Value(), want)
}

// TestReadTimeoutClosesIdleConn: a connection that never sends a frame is
// closed once ReadTimeout elapses, counted and surfaced via OnDegrade.
func TestReadTimeoutClosesIdleConn(t *testing.T) {
	reg := obs.NewRegistry()
	var dl degradeLog
	s := New(testModel(t), 1)
	s.Logf = t.Logf
	s.Obs = reg
	s.ReadTimeout = 50 * time.Millisecond
	s.OnDegrade = dl.hook()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The server must hang up on its own; bound our read just in case.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection not closed by read deadline")
	}
	waitCounter(t, reg.Counter("server_read_timeouts_total"), 1)
	if kinds := dl.kinds(); len(kinds) != 1 || kinds[0] != "read_timeout" {
		t.Errorf("degrade events = %v, want [read_timeout]", kinds)
	}
}

// TestFrameLimitRejects: a frame header over MaxFramePayload gets an
// error frame back and the connection closed (the stream is desynced).
func TestFrameLimitRejects(t *testing.T) {
	reg := obs.NewRegistry()
	var dl degradeLog
	s := New(testModel(t), 1)
	s.Logf = t.Logf
	s.Obs = reg
	s.MaxFramePayload = 1024
	s.OnDegrade = dl.hook()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xff, 0xff, 0x01, 0x00}); err != nil { // claims ~128KiB
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := readFrame(conn, maxFramePayload)
	if err != nil {
		t.Fatalf("no error frame before close: %v", err)
	}
	if _, err := decodePredictResponse(payload); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("unexpected reject response: %v", err)
	}
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("connection not closed after frame reject: %v", err)
	}
	if got := reg.Counter("server_frame_limit_rejects_total").Value(); got != 1 {
		t.Errorf("server_frame_limit_rejects_total = %d, want 1", got)
	}
	if kinds := dl.kinds(); len(kinds) != 1 || kinds[0] != "frame_limit" {
		t.Errorf("degrade events = %v, want [frame_limit]", kinds)
	}
}

// TestConnLimitRejects: connections past MaxConns get an error frame and
// are closed, while the connection holding the slot keeps working.
func TestConnLimitRejects(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(testModel(t), 1)
	s.Logf = t.Logf
	s.Obs = reg
	s.MaxConns = 1
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c1, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	rows := make([]float64, features.Dim)
	if _, err := c1.Predict(rows); err != nil { // slot now provably held
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := readFrame(conn, maxFramePayload)
	if err != nil {
		t.Fatalf("no reject frame: %v", err)
	}
	if _, err := decodePredictResponse(payload); err == nil || !strings.Contains(err.Error(), "connection limit") {
		t.Errorf("unexpected reject response: %v", err)
	}
	if got := reg.Counter("server_conn_limit_rejects_total").Value(); got != 1 {
		t.Errorf("server_conn_limit_rejects_total = %d, want 1", got)
	}
	// The admitted connection is unaffected.
	if _, err := c1.Predict(rows); err != nil {
		t.Errorf("in-limit connection broken by reject: %v", err)
	}
}

// TestCloseDrainsIdleConnsGracefully: Close wakes idle handlers via an
// immediate read deadline; nothing is force-closed.
func TestCloseDrainsIdleConnsGracefully(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(testModel(t), 1)
	s.Logf = t.Logf
	s.Obs = reg
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Predict(make([]float64, features.Dim)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("drain of an idle connection took %v", elapsed)
	}
	if got := reg.Counter("server_drain_force_closes_total").Value(); got != 0 {
		t.Errorf("idle connection was force-closed (%d)", got)
	}
	if got := reg.Gauge("server_open_connections").Value(); got != 0 {
		t.Errorf("server_open_connections = %d after Close", got)
	}
}

// TestCloseForceClosesStuckConns: a handler stuck in an injected
// no-deadline stall ignores the drain wake-up; after DrainTimeout it is
// force-closed, counted, and surfaced.
func TestCloseForceClosesStuckConns(t *testing.T) {
	reg := obs.NewRegistry()
	var dl degradeLog
	s := New(testModel(t), 1)
	s.Logf = t.Logf
	s.Obs = reg
	s.ReadTimeout = -1 // no read deadline: the stall can only end at conn close
	s.DrainTimeout = 50 * time.Millisecond
	s.OnDegrade = dl.hook()
	sched := faultnet.NewSchedule(faultnet.Config{StallRead: 1000})
	pl := newPipeListener()
	s.Serve(faultnet.Wrap(pl, sched))
	conn, err := pl.dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Wait for the handler to enter the stalled read.
	deadline := time.Now().Add(5 * time.Second)
	for sched.Stats().StallReads == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler never reached the stalled read")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("server_drain_force_closes_total").Value(); got != 1 {
		t.Errorf("server_drain_force_closes_total = %d, want 1", got)
	}
	found := false
	for _, k := range dl.kinds() {
		if k == "drain_force_close" {
			found = true
		}
	}
	if !found {
		t.Errorf("no drain_force_close degrade event in %v", dl.kinds())
	}
}

// TestClientFailsFastOnStall is the satellite fix: a server that accepts
// and then never responds must not hang Predict — the per-attempt
// deadline fires and the bounded retries exhaust quickly.
func TestClientFailsFastOnStall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { // swallow the request, never answer
				_, _ = io.Copy(io.Discard, c)
				_ = c.Close()
			}(conn)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	reg := obs.NewRegistry()
	c, err := DialConfig(ln.Addr().String(), ClientConfig{
		Timeout:    60 * time.Millisecond,
		MaxRetries: 1,
		Backoff:    time.Millisecond,
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Predict(make([]float64, features.Dim))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Predict succeeded against a stalling server")
	}
	if elapsed > 2*time.Second {
		t.Errorf("Predict took %v against a stalling server, want fast failure", elapsed)
	}
	if got := reg.Counter("client_timeouts_total").Value(); got == 0 {
		t.Error("client_timeouts_total = 0, want per-attempt timeouts counted")
	}
	if got := reg.Counter("client_failures_total").Value(); got != 1 {
		t.Errorf("client_failures_total = %d, want 1", got)
	}
}

// TestClientRecoversAcrossServerRestart: retries re-dial, so a client
// outlives its server connection being torn down entirely.
func TestClientRecoversAcrossServerRestart(t *testing.T) {
	s1 := New(testModel(t), 1)
	s1.Logf = t.Logf
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialConfig(addr.String(), ClientConfig{MaxRetries: 8, Backoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows := make([]float64, features.Dim)
	if _, err := c.Predict(rows); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// Rebind the same address and serve again.
	s2 := New(testModel(t), 1)
	s2.Logf = t.Logf
	if _, err := s2.Listen(addr.String()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	if _, err := c.Predict(rows); err != nil {
		t.Errorf("client did not recover across server restart: %v", err)
	}
}
