package server

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressPredictWithModelSwap hammers the server from many client
// goroutines while another goroutine continuously swaps the deployed
// model — the production pattern of LFO's per-window handoff under live
// traffic. Run under -race (scripts/check.sh does) to catch unsynchronized
// model or connection state.
func TestStressPredictWithModelSwap(t *testing.T) {
	modelA := testModel(t)
	modelB := testModel(t)
	s, addr := startServer(t, modelA)

	const (
		clients  = 8
		churners = 4
		requests = 60
		rowsPer  = 16
	)

	// Swapper: flips the deployed model as fast as it can until stopped.
	var stop atomic.Bool
	var swaps atomic.Int64
	swapperDone := make(chan struct{})
	go func() {
		defer close(swapperDone)
		for !stop.Load() {
			s.SetModel(modelB)
			s.SetModel(modelA)
			swaps.Add(2)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, clients+churners)

	// Steady clients: one connection each, a stream of batch predicts.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			rows := randRows(rowsPer, seed)
			for i := 0; i < requests; i++ {
				probs, err := cl.Predict(rows)
				if err != nil {
					errs <- err
					return
				}
				if len(probs) != rowsPer {
					t.Errorf("got %d probs, want %d", len(probs), rowsPer)
					return
				}
				for _, p := range probs {
					if p < 0 || p > 1 {
						t.Errorf("probability %g outside [0,1]", p)
						return
					}
				}
			}
		}(int64(c + 1))
	}

	// Connection churners: dial, fire one request, hang up. Exercises the
	// accept/teardown paths that share the connection set with Close.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				cl, err := Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				_, perr := cl.Predict(randRows(1, seed))
				cerr := cl.Close()
				if perr != nil {
					errs <- perr
					return
				}
				if cerr != nil {
					errs <- cerr
					return
				}
			}
		}(int64(100 + c))
	}

	wg.Wait()
	stop.Store(true)
	<-swapperDone
	close(errs)
	for err := range errs {
		t.Errorf("client error: %v", err)
	}
	if swaps.Load() == 0 {
		t.Error("model swapper never ran")
	}
}
