package server

import (
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lfo/internal/faultnet"
	"lfo/internal/features"
	"lfo/internal/obs"
)

// pipeListener is an in-memory net.Listener over net.Pipe. Pipes make
// chaos runs fully deterministic: every Write is delivered as exactly one
// Read, so the server's per-connection operation indices — the keys of
// the fault schedule — never depend on kernel segmentation or timing.
type pipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn, 64), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial hands the listener one pipe end and returns the other.
func (l *pipeListener) dial() (net.Conn, error) {
	client, srv := net.Pipe()
	select {
	case l.ch <- srv:
		return client, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// chaosConfig is the shared fault schedule for the determinism runs:
// every fault kind at once, rates high enough that a run of chaosCalls
// calls sees many of each.
func chaosConfig(seed uint64) faultnet.Config {
	return faultnet.Config{
		Seed:        seed,
		ShortRead:   40,
		ShortWrite:  40,
		StallRead:   20,
		StallWrite:  20,
		DropRead:    40,
		DropWrite:   40,
		AcceptError: 100,
		MaxShort:    6,
	}
}

const chaosCalls = 80

// chaosOutcome is everything a chaos session observes; runs with the same
// seed must produce identical outcomes, field for field.
type chaosOutcome struct {
	results string // per-call probabilities, bit-exact
	server  string // server counters+gauges snapshot
	client  string // client counters+gauges snapshot
	stats   faultnet.Stats
}

// dumpCountersGauges renders the deterministic part of a registry
// (histograms record wall-clock latencies and are excluded).
func dumpCountersGauges(r *obs.Registry) string {
	snap := r.Snapshot()
	var b strings.Builder
	for _, m := range snap.Counters {
		fmt.Fprintf(&b, "%s %d\n", m.Name, m.Value)
	}
	for _, m := range snap.Gauges {
		fmt.Fprintf(&b, "%s %d\n", m.Name, m.Value)
	}
	return b.String()
}

// waitNoOpenConns polls until every handler has finished (and therefore
// every counter increment has settled) before the final snapshot.
func waitNoOpenConns(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 && s.Obs.Gauge("server_open_connections").Value() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("handlers never went idle")
}

// waitAcceptTail waits for the accept loop's deterministic tail. After
// the last accepted connection, the loop keeps consuming schedule
// decisions (counting injected rejects, with backoff) until the next Pass
// decision, where it blocks in the underlying Accept. A pure replay of
// the schedule tells exactly how many accept errors must be counted once
// the loop has settled.
func waitAcceptTail(t *testing.T, seed uint64, sreg *obs.Registry, accepted int64) {
	t.Helper()
	replay := faultnet.NewSchedule(chaosConfig(seed))
	var want, passes int64
	for idx := int64(0); passes <= accepted; idx++ {
		if replay.Decide(-1, faultnet.OpAccept, idx).Action == faultnet.Reject {
			want++
		} else {
			passes++
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if sreg.Counter("server_accept_errors_total").Value() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("server_accept_errors_total = %d never reached replayed %d",
		sreg.Counter("server_accept_errors_total").Value(), want)
}

// runChaosSession drives chaosCalls sequential Predict calls through a
// fault-injecting pipe listener and returns everything observed.
func runChaosSession(t *testing.T, seed uint64, workers int) chaosOutcome {
	t.Helper()
	m := testModel(t)
	sreg, creg := obs.NewRegistry(), obs.NewRegistry()
	s := New(m, workers)
	s.Logf = func(format string, args ...interface{}) {} // injected drops are expected noise
	s.Obs = sreg
	s.ReadTimeout = 100 * time.Millisecond
	s.WriteTimeout = 100 * time.Millisecond
	s.DrainTimeout = 5 * time.Second
	sched := faultnet.NewSchedule(chaosConfig(seed))
	pl := newPipeListener()
	s.Serve(faultnet.Wrap(pl, sched))

	c, err := DialConfig("pipe", ClientConfig{
		Timeout:    2 * time.Second, // well past the server's deadlines: the server side times out first, deterministically
		MaxRetries: 64,
		Backoff:    -1, // immediate retries keep the run fast; determinism is schedule-given
		Dial:       pl.dial,
		Obs:        creg,
	})
	if err != nil {
		t.Fatal(err)
	}

	rows := make([]float64, features.Dim)
	var results strings.Builder
	for i := 0; i < chaosCalls; i++ {
		for j := range rows {
			rows[j] = float64((i*31+j*7)%23) / 4
		}
		probs, err := c.Predict(rows)
		if err != nil {
			t.Fatalf("call %d surfaced an error retries should have absorbed: %v", i, err)
		}
		if len(probs) != 1 {
			t.Fatalf("call %d returned %d probs", i, len(probs))
		}
		fmt.Fprintf(&results, "%d %x\n", i, math.Float64bits(probs[0]))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitNoOpenConns(t, s)
	waitAcceptTail(t, seed, sreg, creg.Counter("client_reconnects_total").Value()+1)
	out := chaosOutcome{
		results: results.String(),
		server:  dumpCountersGauges(sreg),
		client:  dumpCountersGauges(creg),
		stats:   sched.Stats(),
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestChaosScheduleMatchesCounters is the exact-accounting half of the
// chaos gate: each injected fault kind maps 1:1 onto a hardened-path
// counter, so the observed counters must equal the schedule's own
// injection stats — no fault unobserved, no phantom failures.
func TestChaosSchedule(t *testing.T) {
	out := runChaosSession(t, 1234, 1)
	st := out.stats
	if st.ShortReads == 0 || st.ShortWrites == 0 || st.StallReads == 0 ||
		st.StallWrites == 0 || st.DropReads == 0 || st.DropWrites == 0 || st.AcceptErrors == 0 {
		t.Fatalf("schedule too tame, some fault kind never injected: %+v", st)
	}
	vars := map[string]int64{}
	for _, line := range strings.Split(out.server+out.client, "\n") {
		var name string
		var v int64
		if _, err := fmt.Sscanf(line, "%s %d", &name, &v); err == nil {
			vars[name] = v
		}
	}
	// Server-side accounting: injected stalls run into the corresponding
	// deadline; drops and desyncing short writes surface as read/write
	// errors; accept injections land on the resilient accept loop.
	checks := []struct {
		counter string
		want    int64
	}{
		{"server_read_timeouts_total", st.StallReads},
		{"server_write_timeouts_total", st.StallWrites},
		{"server_read_errors_total", st.DropReads},
		{"server_write_errors_total", st.DropWrites + st.ShortWrites},
		{"server_accept_errors_total", st.AcceptErrors},
		{"server_bad_requests_total", 0},
		{"server_drain_force_closes_total", 0},
		{"server_open_connections", 0},
		// The client never exhausts retries and never hits its own (much
		// longer) deadline: degradation is absorbed, not surfaced.
		{"client_failures_total", 0},
		{"client_timeouts_total", 0},
	}
	for _, c := range checks {
		if got := vars[c.counter]; got != c.want {
			t.Errorf("%s = %d, want %d (schedule %+v)", c.counter, got, c.want, st)
		}
	}
	// Every retry re-dials a fresh connection after dropping the desynced
	// one, so the two counters must agree.
	if vars["client_retries_total"] != vars["client_reconnects_total"] {
		t.Errorf("retries %d != reconnects %d", vars["client_retries_total"], vars["client_reconnects_total"])
	}
	if vars["client_retries_total"] == 0 {
		t.Error("chaos run never forced a retry")
	}
}

// TestChaosDeterminism is the regression half of the gate: the same
// seeded schedule must reproduce byte-identical client results, metrics
// snapshots, and injection stats across runs and across server worker
// counts.
func TestChaosDeterminism(t *testing.T) {
	base := runChaosSession(t, 42, 1)
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"rerun", 1},
		{"workers4", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runChaosSession(t, 42, tc.workers)
			if got.stats != base.stats {
				t.Errorf("injection stats diverged:\n%+v\n%+v", got.stats, base.stats)
			}
			if got.results != base.results {
				t.Error("client results diverged between identical seeded runs")
			}
			if got.server != base.server {
				t.Errorf("server snapshots diverged:\n--- base\n%s--- got\n%s", base.server, got.server)
			}
			if got.client != base.client {
				t.Errorf("client snapshots diverged:\n--- base\n%s--- got\n%s", base.client, got.client)
			}
		})
	}
	// Different seed, different chaos — guard against the schedule being
	// ignored entirely.
	other := runChaosSession(t, 43, 1)
	if other.stats == base.stats {
		t.Error("different seeds injected identical fault sequences")
	}
}

// TestChaosRemoteAdmitterFallback is exercised from the core package side
// (see internal/core); here we only pin the serving-path prerequisite it
// depends on: with retries disabled, every conn-killing fault surfaces as
// exactly one client failure, deterministically.
func TestChaosFailFastWithoutRetries(t *testing.T) {
	m := testModel(t)
	sched := faultnet.NewSchedule(chaosConfig(7))
	pl := newPipeListener()
	s := New(m, 1)
	s.Logf = func(format string, args ...interface{}) {}
	s.Obs = obs.NewRegistry()
	s.ReadTimeout = 100 * time.Millisecond
	s.WriteTimeout = 100 * time.Millisecond
	s.Serve(faultnet.Wrap(pl, sched))
	defer s.Close()

	creg := obs.NewRegistry()
	c, err := DialConfig("pipe", ClientConfig{
		Timeout:    2 * time.Second,
		MaxRetries: -1, // fail on first transport error
		Dial:       pl.dial,
		Obs:        creg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows := make([]float64, features.Dim)
	var failures int64
	for i := 0; i < 40; i++ {
		if _, err := c.Predict(rows); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("chaos schedule never failed a call")
	}
	if got := creg.Counter("client_failures_total").Value(); got != failures {
		t.Errorf("client_failures_total = %d, observed %d failed calls", got, failures)
	}
	if got := creg.Counter("client_retries_total").Value(); got != 0 {
		t.Errorf("client_retries_total = %d with retries disabled", got)
	}
}
