package drift

import (
	"math"
	"math/rand"
	"testing"
)

// The detector's production use monitors the leading 5 columns of the
// feature rows (size, cost, free bytes, and the two most recent request
// gaps). The tests mirror that: 5-feature rows with size-like,
// cost-like, and gap-like positive distributions plus NaN missingness.
const testFeatures = 5

// sampleRow draws one 5-feature row. Each feature has its own scale so a
// shift on one is invisible on the others.
func sampleRow(rng *rand.Rand, row []float64) {
	row[0] = math.Exp(rng.NormFloat64()*1.5 + 8)  // size, ~3 KiB median
	row[1] = math.Exp(rng.NormFloat64()*1.0 + 4)  // cost
	row[2] = math.Exp(rng.NormFloat64()*0.5 + 20) // free bytes
	row[3] = math.Exp(rng.NormFloat64()*2.0 + 5)  // gap 0
	if rng.Float64() < 0.3 {                      // gap 1 often missing
		row[4] = math.NaN()
	} else {
		row[4] = math.Exp(rng.NormFloat64()*2.0 + 7)
	}
}

func feed(d *Detector, rng *rand.Rand, n int, mutate func(row []float64)) {
	row := make([]float64, testFeatures)
	for i := 0; i < n; i++ {
		sampleRow(rng, row)
		if mutate != nil {
			mutate(row)
		}
		d.Observe(row)
	}
}

func newTestDetector(t *testing.T) *Detector {
	t.Helper()
	d, err := New(Config{Features: testFeatures})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Features: -1},
		{Features: 5, Bins: 1},
		{Features: 5, MinSamples: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted invalid config %+v", cfg)
		}
	}
}

// TestSameDistributionStaysBelowTrigger is the null-hypothesis property:
// feeding the training-window distribution back in keeps every feature's
// PSI well below the trigger, across seeds.
func TestSameDistributionStaysBelowTrigger(t *testing.T) {
	for _, seed := range []int64{1, 42, 12345} {
		d := newTestDetector(t)
		rng := rand.New(rand.NewSource(seed))
		feed(d, rng, 5000, nil)
		d.SetReference()
		feed(d, rng, 5000, nil)
		if !d.Ready() {
			t.Fatalf("seed %d: detector not ready after 5000 live rows", seed)
		}
		f, score := d.MaxScore()
		if score >= DefaultThreshold {
			t.Errorf("seed %d: same-distribution max PSI %.4f (feature %d) crossed trigger %.2f",
				seed, score, f, DefaultThreshold)
		}
	}
}

// TestShiftedFeatureCrossesTrigger is the alternative-hypothesis
// property, table-driven over all 5 monitored features: scaling or
// offsetting any single feature pushes its PSI (and only its PSI
// meaningfully) over the trigger.
func TestShiftedFeatureCrossesTrigger(t *testing.T) {
	shifts := []struct {
		name   string
		f      int
		mutate func(row []float64)
	}{
		{"size-scale-8x", 0, func(r []float64) { r[0] *= 8 }},
		{"cost-offset", 1, func(r []float64) { r[1] += 4096 }},
		{"free-scale-down", 2, func(r []float64) { r[2] /= 16 }},
		{"gap0-scale-16x", 3, func(r []float64) { r[3] *= 16 }},
		{"gap1-now-present", 4, func(r []float64) {
			if math.IsNaN(r[4]) {
				r[4] = 1024 // missingness rate collapses to zero
			}
		}},
	}
	for _, tc := range shifts {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 42, 12345} {
				d := newTestDetector(t)
				rng := rand.New(rand.NewSource(seed))
				feed(d, rng, 5000, nil)
				d.SetReference()
				feed(d, rng, 5000, tc.mutate)
				got := d.Score(tc.f)
				if got <= DefaultThreshold {
					t.Errorf("seed %d: shifted feature %d PSI %.4f did not cross trigger %.2f",
						seed, tc.f, got, DefaultThreshold)
				}
				f, max := d.MaxScore()
				if f != tc.f {
					t.Errorf("seed %d: MaxScore picked feature %d (%.4f), want shifted feature %d (%.4f)",
						seed, f, max, tc.f, got)
				}
			}
		})
	}
}

// TestMinSamplesGate: scores are suppressed until the live window has
// enough rows to be meaningful.
func TestMinSamplesGate(t *testing.T) {
	d, err := New(Config{Features: testFeatures, MinSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	feed(d, rng, 500, nil)
	d.SetReference()
	feed(d, rng, 99, func(r []float64) { r[0] *= 100 })
	if d.Ready() {
		t.Fatal("Ready with 99 < 100 live rows")
	}
	if f, s := d.MaxScore(); f != -1 || s != 0 {
		t.Fatalf("MaxScore before ready = (%d, %v), want (-1, 0)", f, s)
	}
	feed(d, rng, 1, func(r []float64) { r[0] *= 100 })
	if !d.Ready() {
		t.Fatal("not Ready at exactly MinSamples rows")
	}
}

// TestNoReferenceNeverReady: without SetReference the detector must stay
// silent no matter how much it observes.
func TestNoReferenceNeverReady(t *testing.T) {
	d := newTestDetector(t)
	rng := rand.New(rand.NewSource(3))
	feed(d, rng, 2000, nil)
	if d.Ready() {
		t.Fatal("Ready without a reference")
	}
	if s := d.Score(0); s != 0 {
		t.Fatalf("Score without reference = %v, want 0", s)
	}
}

// TestSetReferenceResetsLive: promoting a reference clears the live
// window, so the next scoring period starts fresh.
func TestSetReferenceResetsLive(t *testing.T) {
	d := newTestDetector(t)
	rng := rand.New(rand.NewSource(5))
	feed(d, rng, 1000, nil)
	d.SetReference()
	if d.liveN != 0 {
		t.Fatalf("liveN = %d after SetReference, want 0", d.liveN)
	}
	// A second SetReference after a shifted live window re-baselines:
	// the shifted distribution becomes the new normal.
	feed(d, rng, 2000, func(r []float64) { r[0] *= 8 })
	d.SetReference()
	feed(d, rng, 2000, func(r []float64) { r[0] *= 8 })
	if _, score := d.MaxScore(); score >= DefaultThreshold {
		t.Errorf("re-baselined detector still reports drift: PSI %.4f", score)
	}
}

// TestShortRowCountsMissing: rows shorter than Features are counted as
// missing rather than panicking.
func TestShortRowCountsMissing(t *testing.T) {
	d := newTestDetector(t)
	d.Observe([]float64{1, 2}) // 3 columns short
	if d.liveN != 1 {
		t.Fatalf("liveN = %d, want 1", d.liveN)
	}
}

// TestDeterministic: identical observation sequences yield bit-identical
// scores.
func TestDeterministic(t *testing.T) {
	run := func() (int, float64) {
		d := newTestDetector(t)
		rng := rand.New(rand.NewSource(77))
		feed(d, rng, 3000, nil)
		d.SetReference()
		feed(d, rng, 3000, func(r []float64) { r[2] *= 4 })
		return d.MaxScore()
	}
	f1, s1 := run()
	f2, s2 := run()
	if f1 != f2 || s1 != s2 {
		t.Fatalf("reruns differ: (%d, %v) vs (%d, %v)", f1, s1, f2, s2)
	}
}

// BenchmarkDriftObserve pins the per-row cost of the live histogram
// update, the piece that sits on the serving path.
func BenchmarkDriftObserve(b *testing.B) {
	d, err := New(Config{Features: testFeatures})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 256)
	for i := range rows {
		rows[i] = make([]float64, testFeatures)
		sampleRow(rng, rows[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(rows[i%len(rows)])
	}
}

// BenchmarkDriftMaxScore pins the cost of a full scoring pass (run every
// DriftCheckEvery requests by core, not per request).
func BenchmarkDriftMaxScore(b *testing.B) {
	d, err := New(Config{Features: testFeatures})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	row := make([]float64, testFeatures)
	for i := 0; i < 2000; i++ {
		sampleRow(rng, row)
		d.Observe(row)
	}
	d.SetReference()
	for i := 0; i < 2000; i++ {
		sampleRow(rng, row)
		d.Observe(row)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.MaxScore()
	}
}
