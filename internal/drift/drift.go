// Package drift detects feature-distribution shift between the window a
// model was trained on and the live request stream it is serving.
//
// The statistic is a streaming Population Stability Index (PSI) per
// feature. Each monitored feature gets a fixed histogram: one bin for
// missing values (NaN), one for non-positives, and log2-spaced bins for
// positive magnitudes — the same binning for the reference and the live
// window, so no quantile estimation is needed on a stream. When a model
// is (re)trained, SetReference snapshots the live histogram as the
// training distribution and resets the live counts; afterwards
//
//	PSI(f) = Σ_bins (pᵢ − qᵢ)·ln(pᵢ/qᵢ)
//
// with Laplace-smoothed bin probabilities p (live) and q (reference).
// The classic credit-scoring rule of thumb reads PSI < 0.1 as stable,
// 0.1–0.25 as moderate shift, and > 0.25 as a population change that
// warrants retraining; DefaultThreshold adopts the 0.25 break.
//
// The detector is allocation-free after construction and fully
// deterministic: fixed bin edges, no sampling, no clocks.
package drift

import (
	"fmt"
	"math"
)

// DefaultBins is the number of log2 magnitude bins per feature (on top
// of the missing and non-positive bins). 40 doublings cover 1 through
// ~10^12, comfortably past object sizes, costs, and inter-arrival gaps.
const DefaultBins = 40

// DefaultMinSamples is the number of live observations required before
// Score reports a non-zero PSI; below it the live histogram is noise.
const DefaultMinSamples = 500

// DefaultThreshold is the PSI above which callers should treat the
// feature as drifted (the classic 0.25 "population changed" break).
const DefaultThreshold = 0.25

// laplace is the smoothing mass added to every bin count so empty bins
// never produce infinite log-ratios.
const laplace = 0.5

// Config parameterizes a Detector.
type Config struct {
	// Features is the number of monitored features (one histogram each).
	// Required.
	Features int
	// Bins is the number of log2 magnitude bins; 0 means DefaultBins.
	Bins int
	// MinSamples gates scoring until the live window has this many rows;
	// 0 means DefaultMinSamples.
	MinSamples int
}

// Detector maintains per-feature reference and live histograms.
type Detector struct {
	features   int
	bins       int // total bins per feature, including missing + nonpos
	minSamples int
	// ref and live are [features][bins] counts, flattened.
	ref  []float64
	live []float64
	// refN and liveN are the row counts behind each histogram.
	refN  int64
	liveN int64
	// hasRef records whether SetReference has ever been called.
	hasRef bool
	// scratch holds the per-feature scores computed by MaxScore.
	scratch []float64
}

// New returns a detector. Observe counts rows into the live histogram;
// SetReference promotes the live histogram to the reference (the
// training-window snapshot) and clears the live side.
func New(cfg Config) (*Detector, error) {
	if cfg.Features <= 0 {
		return nil, fmt.Errorf("drift: Features must be positive, got %d", cfg.Features)
	}
	if cfg.Bins == 0 {
		cfg.Bins = DefaultBins
	}
	if cfg.Bins < 2 {
		return nil, fmt.Errorf("drift: Bins must be at least 2, got %d", cfg.Bins)
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = DefaultMinSamples
	}
	if cfg.MinSamples < 1 {
		return nil, fmt.Errorf("drift: MinSamples must be positive, got %d", cfg.MinSamples)
	}
	total := cfg.Bins + 2 // + missing bin + non-positive bin
	return &Detector{
		features:   cfg.Features,
		bins:       total,
		minSamples: cfg.MinSamples,
		ref:        make([]float64, cfg.Features*total),
		live:       make([]float64, cfg.Features*total),
		scratch:    make([]float64, cfg.Features),
	}, nil
}

// Features returns the number of monitored features.
func (d *Detector) Features() int { return d.features }

// bin maps a value to its histogram bin: 0 for missing (NaN), 1 for
// non-positive, 2+k for values in [2^k, 2^(k+1)), clamped to the last bin.
func (d *Detector) bin(v float64) int {
	if math.IsNaN(v) {
		return 0
	}
	if v <= 0 {
		return 1
	}
	k := int(math.Log2(v))
	if k < 0 {
		k = 0
	}
	if k > d.bins-3 {
		k = d.bins - 3
	}
	return 2 + k
}

// Observe counts one feature row into the live histogram. The row may be
// longer than Features; extra columns are ignored (a features.Dim row is
// observed on its leading columns). Rows shorter than Features are an
// error the caller should have prevented; they are counted as missing.
//
//lfo:hotpath
func (d *Detector) Observe(row []float64) {
	for f := 0; f < d.features; f++ {
		v := math.NaN()
		if f < len(row) {
			v = row[f]
		}
		d.live[f*d.bins+d.bin(v)]++
	}
	d.liveN++
}

// SetReference snapshots the live histogram as the training-window
// reference and resets the live side. Call it when a training round is
// launched on the just-closed window, so the reference matches what the
// incoming model saw.
func (d *Detector) SetReference() {
	copy(d.ref, d.live)
	d.refN = d.liveN
	d.resetLive()
	d.hasRef = true
}

// resetLive zeroes the live histogram.
func (d *Detector) resetLive() {
	for i := range d.live {
		d.live[i] = 0
	}
	d.liveN = 0
}

// Ready reports whether Score can return a meaningful value: a reference
// exists and the live window has at least MinSamples rows.
func (d *Detector) Ready() bool {
	return d.hasRef && d.refN > 0 && d.liveN >= int64(d.minSamples)
}

// Score returns the PSI of feature f's live distribution against the
// reference, or 0 when not Ready.
func (d *Detector) Score(f int) float64 {
	if !d.Ready() || f < 0 || f >= d.features {
		return 0
	}
	return d.psi(f)
}

// psi computes the Laplace-smoothed PSI for one feature.
func (d *Detector) psi(f int) float64 {
	off := f * d.bins
	smooth := laplace * float64(d.bins)
	refTot := float64(d.refN) + smooth
	liveTot := float64(d.liveN) + smooth
	sum := 0.0
	for b := 0; b < d.bins; b++ {
		q := (d.ref[off+b] + laplace) / refTot
		p := (d.live[off+b] + laplace) / liveTot
		sum += (p - q) * math.Log(p/q)
	}
	return sum
}

// MaxScore returns the largest per-feature PSI and the feature index it
// belongs to (-1 and 0 when not Ready). This is the trigger statistic:
// drift on any monitored feature is drift.
func (d *Detector) MaxScore() (feature int, score float64) {
	if !d.Ready() {
		return -1, 0
	}
	feature, score = -1, 0
	for f := 0; f < d.features; f++ {
		s := d.psi(f)
		d.scratch[f] = s
		if feature == -1 || s > score {
			feature, score = f, s
		}
	}
	return feature, score
}

// Scores returns the per-feature PSI vector as filled by the last
// MaxScore call; the slice is owned by the detector.
func (d *Detector) Scores() []float64 { return d.scratch }
