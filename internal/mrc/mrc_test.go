package mrc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lfo/internal/gen"
	"lfo/internal/opt"
	"lfo/internal/policy"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

func mkTrace(reqs ...[2]int64) *trace.Trace {
	t := &trace.Trace{}
	for i, r := range reqs {
		t.Requests = append(t.Requests, trace.Request{
			Time: int64(i), ID: trace.ObjectID(r[0]), Size: r[1], Cost: float64(r[1]),
		})
	}
	return t
}

func TestFenwick(t *testing.T) {
	f := newFenwick(8)
	f.Add(0, 5)
	f.Add(3, 2)
	f.Add(7, 9)
	if got := f.Sum(0, 7); got != 16 {
		t.Errorf("Sum(0,7) = %d, want 16", got)
	}
	if got := f.Sum(1, 6); got != 2 {
		t.Errorf("Sum(1,6) = %d, want 2", got)
	}
	f.Add(3, -2)
	if got := f.Sum(1, 6); got != 0 {
		t.Errorf("after removal Sum(1,6) = %d, want 0", got)
	}
	if got := f.Sum(5, 2); got != 0 {
		t.Errorf("empty range = %d, want 0", got)
	}
}

func TestFenwickMatchesBruteForce(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 32
		fw := newFenwick(n)
		ref := make([]int64, n)
		for _, op := range ops {
			i := int(op) % n
			v := int64(op%7) - 3
			fw.Add(i, v)
			ref[i] += v
		}
		for lo := 0; lo < n; lo += 5 {
			for hi := lo; hi < n; hi += 3 {
				var want int64
				for k := lo; k <= hi; k++ {
					want += ref[k]
				}
				if fw.Sum(lo, hi) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCurveHandExample(t *testing.T) {
	// Trace: a(2) b(3) a(2) c(1) b(3).
	// a@2: unique between = b(3); distance = 3 + 2 = 5.
	// b@4: unique between = a(2) + c(1); distance = 3 + 3 = 6.
	tr := mkTrace([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{1, 2}, [2]int64{3, 1}, [2]int64{2, 3})
	c := ComputeLRU(tr)
	// Cache 4: no hits. Cache 5: a hits (1/5 reqs, 2/11 bytes).
	// Cache 6+: both hit (2/5, 5/11).
	if got := c.OHR(4); got != 0 {
		t.Errorf("OHR(4) = %g, want 0", got)
	}
	if got := c.OHR(5); got != 0.2 {
		t.Errorf("OHR(5) = %g, want 0.2", got)
	}
	if got := c.BHR(5); got != 2.0/11.0 {
		t.Errorf("BHR(5) = %g, want %g", got, 2.0/11.0)
	}
	if got := c.OHR(6); got != 0.4 {
		t.Errorf("OHR(6) = %g, want 0.4", got)
	}
	if got := c.BHR(1 << 30); got != 5.0/11.0 {
		t.Errorf("BHR(inf) = %g, want %g", got, 5.0/11.0)
	}
	if got := c.MaxUseful(); got != 6 {
		t.Errorf("MaxUseful = %d, want 6", got)
	}
}

// TestCurveMatchesSimulatorExactly: the Mattson condition is exact for
// byte-capacity LRU, so the curve must agree bit-for-bit with a real LRU
// simulation at any cache size at least as large as the biggest object.
func TestCurveMatchesSimulatorExactly(t *testing.T) {
	cfg := gen.WebMix(20000, 9)
	tr, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	maxSize := tr.ComputeStats().MaxSize
	curve := ComputeLRU(tr)
	for _, size := range []int64{maxSize, maxSize * 4, maxSize * 16, maxSize * 64} {
		m := sim.Run(tr, policy.NewLRU(size), sim.Options{})
		if got, want := curve.OHR(size), m.OHR(); got != want {
			t.Errorf("size %d: curve OHR %.6f != simulated %.6f", size, got, want)
		}
		if got, want := curve.BHR(size), m.BHR(); got != want {
			t.Errorf("size %d: curve BHR %.6f != simulated %.6f", size, got, want)
		}
	}
}

// TestCurveMonotone: hit ratios never decrease with cache size.
func TestCurveMonotone(t *testing.T) {
	tr, err := gen.Generate(gen.CDNMix(10000, 4))
	if err != nil {
		t.Fatal(err)
	}
	curve := ComputeLRU(tr)
	prevB, prevO := -1.0, -1.0
	for _, size := range LogSizes(1<<10, 1<<34, 40) {
		b, o := curve.BHR(size), curve.OHR(size)
		if b < prevB || o < prevO {
			t.Fatalf("curve not monotone at %d", size)
		}
		prevB, prevO = b, o
	}
}

// TestOPTCurveDominatesLRU: at every size, OPT's hit ratio bounds LRU's.
func TestOPTCurveDominatesLRU(t *testing.T) {
	tr, err := gen.Generate(gen.WebMix(5000, 6))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	lru := ComputeLRU(tr)
	sizes := []int64{1 << 18, 1 << 20, 1 << 22}
	optPts, err := ComputeOPT(tr, sizes, opt.Config{Algorithm: opt.AlgoFlow})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sizes {
		if optPts[i].BHR < lru.BHR(s)-1e-9 {
			t.Errorf("size %d: OPT BHR %.4f < LRU %.4f", s, optPts[i].BHR, lru.BHR(s))
		}
	}
}

func TestComputeOPTRejectsBadSize(t *testing.T) {
	tr := mkTrace([2]int64{1, 1})
	if _, err := ComputeOPT(tr, []int64{0}, opt.Config{}); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestLogSizes(t *testing.T) {
	sizes := LogSizes(1024, 1<<20, 11)
	if len(sizes) != 11 {
		t.Fatalf("len = %d", len(sizes))
	}
	if sizes[0] != 1024 || sizes[10] != 1<<20 {
		t.Errorf("endpoints = %d, %d", sizes[0], sizes[10])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("not increasing at %d: %v", i, sizes)
		}
	}
	if got := LogSizes(100, 50, 5); len(got) != 1 || got[0] != 100 {
		t.Errorf("degenerate LogSizes = %v", got)
	}
}

func TestEmptyTraceCurve(t *testing.T) {
	c := ComputeLRU(&trace.Trace{})
	if c.BHR(100) != 0 || c.OHR(100) != 0 || c.MaxUseful() != 0 {
		t.Error("empty curve not zero")
	}
}

// TestCurveColdMissesNeverHit: a trace of distinct objects has an all-zero
// curve at any size.
func TestCurveColdMissesNeverHit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := &trace.Trace{}
	for i := 0; i < 1000; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: int64(i), ID: trace.ObjectID(i), Size: 1 + rng.Int63n(1000),
		})
	}
	c := ComputeLRU(tr)
	if c.OHR(1<<40) != 0 {
		t.Error("one-hit-wonder trace produced hits")
	}
}

// TestSampledCurveApproximatesExact: SHARDS sampling at 20%, averaged
// over several hash salts, must track the exact curve within a few
// hit-ratio points at meaningful sizes. (A single draw can be off by
// ~0.1 on a Zipf-headed trace, depending on whether the hottest objects
// land in the sample; averaging washes that out.)
func TestSampledCurveApproximatesExact(t *testing.T) {
	tr, err := gen.Generate(gen.WebMix(60000, 17))
	if err != nil {
		t.Fatal(err)
	}
	exact := ComputeLRU(tr)
	const draws = 6
	for _, size := range []int64{4 << 20, 16 << 20, 64 << 20} {
		var mean float64
		for salt := uint64(0); salt < draws; salt++ {
			sampled, err := ComputeLRUSampled(tr, 0.2, salt*0x9e3779b97f4a7c15)
			if err != nil {
				t.Fatal(err)
			}
			mean += sampled.OHR(size)
		}
		mean /= draws
		de := exact.OHR(size)
		if diff := de - mean; diff > 0.06 || diff < -0.06 {
			t.Errorf("size %d: sampled mean OHR %.4f vs exact %.4f (diff %.4f)", size, mean, de, diff)
		}
	}
}

func TestSampledCurveRateValidation(t *testing.T) {
	tr := mkTrace([2]int64{1, 1})
	for _, rate := range []float64{0, -0.5, 1.5} {
		if _, err := ComputeLRUSampled(tr, rate, 0); err == nil {
			t.Errorf("rate %g accepted", rate)
		}
	}
	// rate 1 must be the exact curve.
	c, err := ComputeLRUSampled(tr, 1, 0)
	if err != nil || c == nil {
		t.Fatalf("rate 1: %v", err)
	}
}

// TestSampledCurveRateOneBypassesSampling pins the rate >= 1 fast path
// (tightened from an exact float == 1 during the lfolint float-equal
// sweep): a full-rate "sample" must be the exact curve, point for point
// and independent of the hash salt.
func TestSampledCurveRateOneBypassesSampling(t *testing.T) {
	tr, err := gen.Generate(gen.WebMix(20000, 23))
	if err != nil {
		t.Fatal(err)
	}
	exact := ComputeLRU(tr)
	for _, salt := range []uint64{0, 0x9e3779b97f4a7c15} {
		sampled, err := ComputeLRUSampled(tr, 1, salt)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int64{1 << 20, 8 << 20, 64 << 20} {
			if got, want := sampled.OHR(size), exact.OHR(size); got != want {
				t.Errorf("salt %#x size %d: OHR %v != exact %v", salt, size, got, want)
			}
			if got, want := sampled.BHR(size), exact.BHR(size); got != want {
				t.Errorf("salt %#x size %d: BHR %v != exact %v", salt, size, got, want)
			}
		}
	}
}
