package mrc

// fenwick is a binary indexed tree over int64 sums, used to count the
// unique bytes touched between two accesses to the same object in
// O(log n) per request.
type fenwick struct {
	tree []int64
}

func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]int64, n+1)}
}

// Add adds v at position i (0-based).
func (f *fenwick) Add(i int, v int64) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += v
	}
}

// prefix returns the sum of positions [0, i] (0-based, inclusive).
func (f *fenwick) prefix(i int) int64 {
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// Sum returns the sum over positions [lo, hi] inclusive; zero for an
// empty range.
func (f *fenwick) Sum(lo, hi int) int64 {
	if lo > hi {
		return 0
	}
	s := f.prefix(hi)
	if lo > 0 {
		s -= f.prefix(lo - 1)
	}
	return s
}
