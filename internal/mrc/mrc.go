// Package mrc computes miss-ratio curves (hit ratio as a function of
// cache size) for request traces — the cache-provisioning view of a
// workload that §5 of the paper points to (Sundarrajan et al.'s footprint
// descriptors [72]).
//
// For LRU the curve is exact and computed in one O(n log n) pass with
// Mattson's stack algorithm generalized to variable object sizes: a
// request to object o hits in an LRU cache of capacity C if and only if
// the unique bytes touched since o's previous request, plus o's own size,
// do not exceed C. (LRU with byte capacities retains the stack inclusion
// property, so the condition is exact; see the package tests, which
// verify bit-for-bit agreement with the simulator.)
//
// For OPT the curve is sampled by running the opt package's solver at
// each candidate size.
package mrc

import (
	"fmt"
	"math"
	"sort"

	"lfo/internal/opt"
	"lfo/internal/par"
	"lfo/internal/trace"
)

// Curve is a hit-ratio-vs-cache-size function for one policy on one
// trace. Query it with BHR/OHR at arbitrary cache sizes.
type Curve struct {
	// reuse distances (bytes) per request, -1 for cold misses; sorted
	// copies with cumulative weights answer queries.
	distSorted []int64
	objCum     []float64 // cumulative request count at distSorted[i]
	byteCum    []float64 // cumulative request bytes at distSorted[i]

	totalReqs  float64
	totalBytes float64
}

// ComputeLRU builds the exact LRU miss-ratio curve for the trace.
func ComputeLRU(tr *trace.Trace) *Curve {
	n := tr.Len()
	f := newFenwick(n)
	lastPos := make(map[trace.ObjectID]int, 1024)

	type sample struct {
		dist  int64
		bytes float64
	}
	samples := make([]sample, 0, n)
	c := &Curve{}
	for i, r := range tr.Requests {
		c.totalReqs++
		c.totalBytes += float64(r.Size)
		if p, ok := lastPos[r.ID]; ok {
			// Unique bytes touched strictly between the two accesses:
			// every object's most recent access in (p, i) carries its
			// size as a marker.
			unique := f.Sum(p+1, i-1)
			samples = append(samples, sample{dist: unique + r.Size, bytes: float64(r.Size)})
			f.Add(p, -r.Size) // move o's marker from p to i
		}
		f.Add(i, r.Size)
		lastPos[r.ID] = i
	}

	sort.Slice(samples, func(a, b int) bool { return samples[a].dist < samples[b].dist })
	c.distSorted = make([]int64, len(samples))
	c.objCum = make([]float64, len(samples))
	c.byteCum = make([]float64, len(samples))
	var oc, bc float64
	for i, s := range samples {
		oc++
		bc += s.bytes
		c.distSorted[i] = s.dist
		c.objCum[i] = oc
		c.byteCum[i] = bc
	}
	return c
}

// hitIndex returns the number of samples with distance <= size.
func (c *Curve) hitIndex(size int64) int {
	return sort.Search(len(c.distSorted), func(i int) bool { return c.distSorted[i] > size })
}

// OHR returns the object hit ratio at the given cache size.
func (c *Curve) OHR(size int64) float64 {
	if c.totalReqs == 0 {
		return 0
	}
	i := c.hitIndex(size)
	if i == 0 {
		return 0
	}
	return c.objCum[i-1] / c.totalReqs
}

// BHR returns the byte hit ratio at the given cache size.
func (c *Curve) BHR(size int64) float64 {
	if c.totalBytes == 0 {
		return 0
	}
	i := c.hitIndex(size)
	if i == 0 {
		return 0
	}
	return c.byteCum[i-1] / c.totalBytes
}

// MaxUseful returns the smallest cache size at which the curve saturates
// (every reuse becomes a hit) — the trace's maximal useful cache size.
func (c *Curve) MaxUseful() int64 {
	if len(c.distSorted) == 0 {
		return 0
	}
	return c.distSorted[len(c.distSorted)-1]
}

// Point is one (size, hit-ratio) sample of a curve.
type Point struct {
	CacheSize int64
	BHR       float64
	OHR       float64
}

// Sample evaluates the curve at each size.
func (c *Curve) Sample(sizes []int64) []Point {
	pts := make([]Point, len(sizes))
	for i, s := range sizes {
		pts[i] = Point{CacheSize: s, BHR: c.BHR(s), OHR: c.OHR(s)}
	}
	return pts
}

// ComputeOPT samples the offline-optimal hit ratios at each cache size
// using the opt package (exact flow per time-axis segment up to
// opt.Config.AutoFlowLimit intervals, segmented beyond — see
// opt.Config.Segments). cfg.CacheSize is overridden per point; leave
// cfg.RankFraction at its full-solve default so the curve upper-bounds
// every online policy at every size. The sizes are solved concurrently
// under cfg.Workers (0 = all cores); each point writes only its own slot,
// so the curve is byte-identical for any worker count.
func ComputeOPT(tr *trace.Trace, sizes []int64, cfg opt.Config) ([]Point, error) {
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("mrc: non-positive cache size %d", s)
		}
	}
	pts := make([]Point, len(sizes))
	errs := make([]error, len(sizes))
	par.Ranges(len(sizes), cfg.Workers, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := cfg
			c.CacheSize = sizes[i]
			res, err := opt.Compute(tr, c)
			if err != nil {
				errs[i] = err
				continue
			}
			pts[i] = Point{CacheSize: sizes[i], BHR: res.BHR(), OHR: res.OHR()}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pts, nil
}

// ComputeLRUSampled approximates the LRU curve using SHARDS-style spatial
// sampling (Waldspurger et al., FAST 2015): only objects whose hashed ID
// falls below the sampling rate are traced, and measured reuse distances
// are scaled by 1/rate. Memory and time shrink by ~1/rate, making
// curve computation practical for multi-billion-request traces, at an
// accuracy loss of a few hit-ratio points on a single draw (with heavy
// Zipf heads, whether the hottest objects land in the sample dominates
// the variance — average curves over several salts to tighten the
// estimate). rate must be in (0, 1]; salt varies the hash draw.
func ComputeLRUSampled(tr *trace.Trace, rate float64, salt uint64) (*Curve, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("mrc: sampling rate %g outside (0,1]", rate)
	}
	if rate >= 1 {
		return ComputeLRU(tr), nil
	}
	threshold := uint64(rate * float64(1<<32))
	sub := &trace.Trace{}
	for _, r := range tr.Requests {
		if hash32(uint64(r.ID)^salt) < threshold {
			sub.Requests = append(sub.Requests, r)
		}
	}
	c := ComputeLRU(sub)
	// Scale distances back to full-trace byte terms. Ratios (hit counts
	// over sampled totals) already estimate the full-trace ratios under
	// spatial sampling, so only the distance axis needs rescaling.
	inv := 1 / rate
	for i := range c.distSorted {
		c.distSorted[i] = int64(float64(c.distSorted[i]) * inv)
	}
	return c, nil
}

// hash32 maps an object ID to a uniform 32-bit value (SplitMix64 finalizer).
func hash32(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x >> 32
}

// LogSizes returns k cache sizes geometrically spaced in [lo, hi].
func LogSizes(lo, hi int64, k int) []int64 {
	if k < 2 || hi <= lo {
		return []int64{lo}
	}
	sizes := make([]int64, k)
	ratio := float64(hi) / float64(lo)
	for i := 0; i < k; i++ {
		sizes[i] = int64(float64(lo) * math.Pow(ratio, float64(i)/float64(k-1)))
	}
	sizes[k-1] = hi
	return sizes
}
