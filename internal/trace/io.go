package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Read parses a text trace from r. Each non-empty line holds
// "<time> <id> <size> [<cost>]"; lines starting with '#' are comments.
// When the cost column is absent, Cost is set to the object size (the BHR
// convention, §2.1).
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	t := &Trace{}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("trace: line %d: want at least 3 fields, got %d", lineno, len(fields))
		}
		tm, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %v", lineno, err)
		}
		id, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad id: %v", lineno, err)
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %v", lineno, err)
		}
		cost := float64(size)
		if len(fields) >= 4 {
			cost, err = strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad cost: %v", lineno, err)
			}
		}
		t.Requests = append(t.Requests, Request{Time: tm, ID: ObjectID(id), Size: size, Cost: cost})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return t, nil
}

// Write writes the trace in the text format understood by Read, including
// the cost column.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Requests {
		if _, err := fmt.Fprintf(bw, "%d %d %d %g\n", r.Time, uint64(r.ID), r.Size, r.Cost); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	return bw.Flush()
}

// ReadFile reads a text trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile writes a text trace to path, creating or truncating it.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, t); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}

// binaryMagic identifies the binary trace format ("LFOT" + version 1).
var binaryMagic = [4]byte{'L', 'F', 'O', '1'}

// WriteBinary writes the trace in a compact little-endian binary format:
// a 4-byte magic, a uint64 request count, then per request Time (int64),
// ID (uint64), Size (int64), Cost (float64).
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(t.Requests)))
	if _, err := bw.Write(buf[:8]); err != nil {
		return err
	}
	for _, r := range t.Requests {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(r.Time))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(r.ID))
		binary.LittleEndian.PutUint64(buf[16:24], uint64(r.Size))
		binary.LittleEndian.PutUint64(buf[24:32], uint64FromFloat(r.Cost))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad binary magic %q", magic)
	}
	var buf [32]byte
	if _, err := io.ReadFull(br, buf[:8]); err != nil {
		return nil, fmt.Errorf("trace: binary count: %w", err)
	}
	n := binary.LittleEndian.Uint64(buf[:8])
	const maxRequests = 1 << 34
	if n > maxRequests {
		return nil, fmt.Errorf("trace: binary count %d exceeds limit", n)
	}
	t := &Trace{Requests: make([]Request, 0, n)}
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: binary request %d: %w", i, err)
		}
		t.Requests = append(t.Requests, Request{
			Time: int64(binary.LittleEndian.Uint64(buf[0:8])),
			ID:   ObjectID(binary.LittleEndian.Uint64(buf[8:16])),
			Size: int64(binary.LittleEndian.Uint64(buf[16:24])),
			Cost: floatFromUint64(binary.LittleEndian.Uint64(buf[24:32])),
		})
	}
	return t, nil
}

func uint64FromFloat(f float64) uint64 { return math.Float64bits(f) }

func floatFromUint64(u uint64) float64 { return math.Float64frombits(u) }
