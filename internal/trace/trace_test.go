package trace

import (
	"errors"
	"testing"
	"testing/quick"
)

// paperTrace is the running example from Figure 3 of the paper: four
// objects a=1, b=2, c=3, d=4 with sizes 3, 1, 1, 2.
func paperTrace() *Trace {
	ids := []ObjectID{1, 2, 3, 2, 4, 1, 3, 4, 1, 2, 2, 1}
	sizes := map[ObjectID]int64{1: 3, 2: 1, 3: 1, 4: 2}
	t := &Trace{}
	for i, id := range ids {
		t.Requests = append(t.Requests, Request{Time: int64(i), ID: id, Size: sizes[id], Cost: float64(sizes[id])})
	}
	return t
}

func TestValidateOK(t *testing.T) {
	if err := paperTrace().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := (&Trace{}).Validate(); err != nil {
		t.Fatalf("Validate(empty) = %v, want nil", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		reqs []Request
	}{
		{"time goes backwards", []Request{{Time: 5, ID: 1, Size: 1}, {Time: 4, ID: 2, Size: 1}}},
		{"zero size", []Request{{Time: 0, ID: 1, Size: 0}}},
		{"negative size", []Request{{Time: 0, ID: 1, Size: -3}}},
		{"negative cost", []Request{{Time: 0, ID: 1, Size: 1, Cost: -1}}},
		{"size change", []Request{{Time: 0, ID: 1, Size: 1}, {Time: 1, ID: 1, Size: 2}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := (&Trace{Requests: tc.reqs}).Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !errors.Is(err, ErrInvalidTrace) {
				t.Fatalf("Validate() error %v does not wrap ErrInvalidTrace", err)
			}
		})
	}
}

func TestWithCostsBHR(t *testing.T) {
	tr := paperTrace()
	for i := range tr.Requests {
		tr.Requests[i].Cost = 42 // garbage to be overwritten
	}
	got := tr.WithCosts(ObjectiveBHR)
	for i, r := range got.Requests {
		if r.Cost != float64(r.Size) {
			t.Errorf("request %d: cost = %g, want size %d", i, r.Cost, r.Size)
		}
	}
	// Original must be untouched.
	if tr.Requests[0].Cost != 42 {
		t.Error("WithCosts mutated the receiver")
	}
}

func TestWithCostsOHR(t *testing.T) {
	got := paperTrace().WithCosts(ObjectiveOHR)
	for i, r := range got.Requests {
		if r.Cost != 1 {
			t.Errorf("request %d: cost = %g, want 1", i, r.Cost)
		}
	}
}

func TestWithCostsCostIsIdentity(t *testing.T) {
	tr := paperTrace()
	if got := tr.WithCosts(ObjectiveCost); got != tr {
		t.Error("WithCosts(ObjectiveCost) should return the receiver")
	}
}

func TestObjectiveString(t *testing.T) {
	tests := []struct {
		o    Objective
		want string
	}{{ObjectiveBHR, "bhr"}, {ObjectiveOHR, "ohr"}, {ObjectiveCost, "cost"}}
	for _, tc := range tests {
		if got := tc.o.String(); got != tc.want {
			t.Errorf("%v.String() = %q, want %q", int(tc.o), got, tc.want)
		}
	}
}

func TestParseObjective(t *testing.T) {
	for _, want := range []Objective{ObjectiveBHR, ObjectiveOHR, ObjectiveCost} {
		got, err := ParseObjective(want.String())
		if err != nil || got != want {
			t.Errorf("ParseObjective(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := ParseObjective("nope"); err == nil {
		t.Error("ParseObjective(nope) = nil error, want error")
	}
}

func TestComputeStats(t *testing.T) {
	s := paperTrace().ComputeStats()
	if s.Requests != 12 {
		t.Errorf("Requests = %d, want 12", s.Requests)
	}
	if s.UniqueObjects != 4 {
		t.Errorf("UniqueObjects = %d, want 4", s.UniqueObjects)
	}
	if s.UniqueBytes != 3+1+1+2 {
		t.Errorf("UniqueBytes = %d, want 7", s.UniqueBytes)
	}
	wantTotal := int64(4*3 + 4*1 + 2*1 + 2*2) // a×4, b×4, c×2, d×2
	if s.TotalBytes != wantTotal {
		t.Errorf("TotalBytes = %d, want %d", s.TotalBytes, wantTotal)
	}
	if s.MinSize != 1 || s.MaxSize != 3 {
		t.Errorf("MinSize,MaxSize = %d,%d, want 1,3", s.MinSize, s.MaxSize)
	}
	if s.OneHitWonders != 0 {
		t.Errorf("OneHitWonders = %d, want 0", s.OneHitWonders)
	}
}

func TestComputeStatsOneHitWonders(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Time: 0, ID: 1, Size: 10},
		{Time: 1, ID: 2, Size: 20},
		{Time: 2, ID: 1, Size: 10},
	}}
	s := tr.ComputeStats()
	if s.OneHitWonders != 1 {
		t.Errorf("OneHitWonders = %d, want 1", s.OneHitWonders)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := (&Trace{}).ComputeStats()
	if s.Requests != 0 || s.TotalBytes != 0 || s.UniqueObjects != 0 {
		t.Errorf("empty stats = %+v, want zero", s)
	}
}

func TestSliceClamps(t *testing.T) {
	tr := paperTrace()
	tests := []struct {
		lo, hi, want int
	}{
		{0, 12, 12},
		{-5, 3, 3},
		{10, 100, 2},
		{8, 4, 0},
		{0, 0, 0},
	}
	for _, tc := range tests {
		if got := tr.Slice(tc.lo, tc.hi).Len(); got != tc.want {
			t.Errorf("Slice(%d,%d).Len() = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestWindows(t *testing.T) {
	tr := paperTrace() // 12 requests
	ws := tr.Windows(5)
	if len(ws) != 3 {
		t.Fatalf("Windows(5) returned %d windows, want 3", len(ws))
	}
	if ws[0].Len() != 5 || ws[1].Len() != 5 || ws[2].Len() != 2 {
		t.Errorf("window lengths = %d,%d,%d, want 5,5,2", ws[0].Len(), ws[1].Len(), ws[2].Len())
	}
	total := 0
	for _, w := range ws {
		total += w.Len()
	}
	if total != tr.Len() {
		t.Errorf("windows cover %d requests, want %d", total, tr.Len())
	}
}

func TestWindowsPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Windows(0) did not panic")
		}
	}()
	paperTrace().Windows(0)
}

func TestNextRequestIndex(t *testing.T) {
	tr := paperTrace()
	next := tr.NextRequestIndex()
	// Trace: a b c b d a c d a b b a  (indices 0..11)
	want := []int{5, 3, 6, 9, 7, 8, -1, -1, 11, 10, -1, -1}
	for i := range want {
		if next[i] != want[i] {
			t.Errorf("next[%d] = %d, want %d", i, next[i], want[i])
		}
	}
}

func TestPrevRequestIndex(t *testing.T) {
	tr := paperTrace()
	prev := tr.PrevRequestIndex()
	want := []int{-1, -1, -1, 1, -1, 0, 2, 4, 5, 3, 9, 8}
	for i := range want {
		if prev[i] != want[i] {
			t.Errorf("prev[%d] = %d, want %d", i, prev[i], want[i])
		}
	}
}

// TestNextPrevInverse checks that next and prev index maps are inverses:
// if next[i] = j >= 0 then prev[j] = i, and vice versa.
func TestNextPrevInverse(t *testing.T) {
	tr := paperTrace()
	next := tr.NextRequestIndex()
	prev := tr.PrevRequestIndex()
	for i, j := range next {
		if j >= 0 && prev[j] != i {
			t.Errorf("next[%d]=%d but prev[%d]=%d", i, j, j, prev[j])
		}
	}
	for j, i := range prev {
		if i >= 0 && next[i] != j {
			t.Errorf("prev[%d]=%d but next[%d]=%d", j, i, i, next[i])
		}
	}
}

// TestNextPrevInverseProperty extends the inverse check to arbitrary
// request ID sequences.
func TestNextPrevInverseProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		tr := &Trace{}
		for i, id := range ids {
			tr.Requests = append(tr.Requests, Request{Time: int64(i), ID: ObjectID(id), Size: 1, Cost: 1})
		}
		next := tr.NextRequestIndex()
		prev := tr.PrevRequestIndex()
		for i, j := range next {
			if j >= 0 {
				if prev[j] != i || tr.Requests[i].ID != tr.Requests[j].ID {
					return false
				}
				// No intermediate request to the same object.
				for k := i + 1; k < j; k++ {
					if tr.Requests[k].ID == tr.Requests[i].ID {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWindowsProperty: windows always partition the trace exactly.
func TestWindowsProperty(t *testing.T) {
	f := func(n uint8, w uint8) bool {
		if w == 0 {
			return true
		}
		tr := &Trace{}
		for i := 0; i < int(n); i++ {
			tr.Requests = append(tr.Requests, Request{Time: int64(i), ID: 1, Size: 1})
		}
		ws := tr.Windows(int(w))
		total := 0
		for i, win := range ws {
			if win.Len() == 0 {
				return false
			}
			if i < len(ws)-1 && win.Len() != int(w) {
				return false
			}
			total += win.Len()
		}
		return total == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
