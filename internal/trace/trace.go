// Package trace defines the request trace model used throughout the LFO
// repository: a sequence of timestamped requests to sized objects, each with
// an optional retrieval cost.
//
// The on-disk text format is compatible with webcachesim-style traces:
//
//	<time> <object-id> <size> [<cost>]
//
// one request per line, whitespace separated. A binary format
// (see ReadBinary/WriteBinary) is provided for fast round trips of large
// traces.
package trace

import (
	"errors"
	"fmt"
)

// ObjectID identifies a cached object. Production CDN traces anonymize URLs
// to dense integer identifiers; we follow that convention.
type ObjectID uint64

// Request is a single request in a trace.
//
// Cost is the retrieval cost charged when the request misses. Under the
// byte-hit-ratio (BHR) objective the cost equals the object size; under the
// object-hit-ratio (OHR) objective it is 1 (see §2.1 of the paper, and
// WithCosts).
type Request struct {
	// Time is a logical or wall-clock timestamp. Traces must be sorted by
	// non-decreasing Time.
	Time int64
	// ID identifies the requested object.
	ID ObjectID
	// Size is the object size in bytes. Sizes are assumed stable per
	// object within a trace window; Validate enforces this.
	Size int64
	// Cost is the retrieval cost of a miss for this request.
	Cost float64
}

// Trace is an ordered sequence of requests.
type Trace struct {
	Requests []Request
}

// Len returns the number of requests in the trace.
func (t *Trace) Len() int { return len(t.Requests) }

// Objective selects how per-request retrieval costs are assigned.
type Objective int

const (
	// ObjectiveBHR sets each request's cost to the object size, so that
	// minimizing miss cost maximizes the byte hit ratio.
	ObjectiveBHR Objective = iota
	// ObjectiveOHR sets each request's cost to 1, so that minimizing miss
	// cost maximizes the object hit ratio.
	ObjectiveOHR
	// ObjectiveCost keeps the per-request costs already present in the
	// trace (e.g. measured retrieval latencies).
	ObjectiveCost
)

// String returns the objective's short name.
func (o Objective) String() string {
	switch o {
	case ObjectiveBHR:
		return "bhr"
	case ObjectiveOHR:
		return "ohr"
	case ObjectiveCost:
		return "cost"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// ParseObjective parses "bhr", "ohr" or "cost".
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "bhr":
		return ObjectiveBHR, nil
	case "ohr":
		return ObjectiveOHR, nil
	case "cost":
		return ObjectiveCost, nil
	}
	return 0, fmt.Errorf("trace: unknown objective %q (want bhr, ohr or cost)", s)
}

// WithCosts returns a copy of t with request costs assigned per the
// objective. For ObjectiveCost the trace is returned unmodified (no copy).
func (t *Trace) WithCosts(o Objective) *Trace {
	if o == ObjectiveCost {
		return t
	}
	out := &Trace{Requests: make([]Request, len(t.Requests))}
	copy(out.Requests, t.Requests)
	for i := range out.Requests {
		switch o {
		case ObjectiveBHR:
			out.Requests[i].Cost = float64(out.Requests[i].Size)
		case ObjectiveOHR:
			out.Requests[i].Cost = 1
		}
	}
	return out
}

// ErrInvalidTrace is wrapped by all Validate errors.
var ErrInvalidTrace = errors.New("trace: invalid trace")

// Validate checks trace invariants: non-decreasing timestamps, positive
// sizes, non-negative costs, and per-object size stability. It returns nil
// for an empty trace.
func (t *Trace) Validate() error {
	sizes := make(map[ObjectID]int64)
	var prev int64
	for i, r := range t.Requests {
		if i > 0 && r.Time < prev {
			return fmt.Errorf("%w: request %d: time %d < previous %d", ErrInvalidTrace, i, r.Time, prev)
		}
		prev = r.Time
		if r.Size <= 0 {
			return fmt.Errorf("%w: request %d: non-positive size %d", ErrInvalidTrace, i, r.Size)
		}
		if r.Cost < 0 {
			return fmt.Errorf("%w: request %d: negative cost %g", ErrInvalidTrace, i, r.Cost)
		}
		if s, ok := sizes[r.ID]; ok {
			if s != r.Size {
				return fmt.Errorf("%w: request %d: object %d size changed %d -> %d", ErrInvalidTrace, i, r.ID, s, r.Size)
			}
		} else {
			sizes[r.ID] = r.Size
		}
	}
	return nil
}

// Stats summarizes a trace.
type Stats struct {
	Requests      int
	UniqueObjects int
	TotalBytes    int64 // sum of request sizes
	UniqueBytes   int64 // sum of distinct object sizes (working set)
	MinSize       int64
	MaxSize       int64
	MeanSize      float64
	OneHitWonders int // objects requested exactly once
}

// ComputeStats scans the trace once and returns summary statistics.
func (t *Trace) ComputeStats() Stats {
	var s Stats
	s.Requests = len(t.Requests)
	if s.Requests == 0 {
		return s
	}
	counts := make(map[ObjectID]int, 1024)
	sizes := make(map[ObjectID]int64, 1024)
	s.MinSize = t.Requests[0].Size
	for _, r := range t.Requests {
		counts[r.ID]++
		sizes[r.ID] = r.Size
		s.TotalBytes += r.Size
		if r.Size < s.MinSize {
			s.MinSize = r.Size
		}
		if r.Size > s.MaxSize {
			s.MaxSize = r.Size
		}
	}
	s.UniqueObjects = len(counts)
	for id, n := range counts {
		s.UniqueBytes += sizes[id]
		if n == 1 {
			s.OneHitWonders++
		}
	}
	s.MeanSize = float64(s.TotalBytes) / float64(s.Requests)
	return s
}

// Slice returns a sub-trace covering requests [lo, hi). The underlying
// request slice is shared, not copied.
func (t *Trace) Slice(lo, hi int) *Trace {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.Requests) {
		hi = len(t.Requests)
	}
	if lo > hi {
		lo = hi
	}
	return &Trace{Requests: t.Requests[lo:hi]}
}

// Windows splits the trace chronologically into consecutive windows of n
// requests each; the final window may be shorter. n must be positive.
func (t *Trace) Windows(n int) []*Trace {
	if n <= 0 {
		panic("trace: Windows requires n > 0")
	}
	var out []*Trace
	for lo := 0; lo < len(t.Requests); lo += n {
		hi := lo + n
		if hi > len(t.Requests) {
			hi = len(t.Requests)
		}
		out = append(out, t.Slice(lo, hi))
	}
	return out
}

// NextRequestIndex computes, for every request, the index of the next
// request to the same object, or -1 when the object is not requested again
// within the trace. This is the L_i quantity used by the OPT ranking in
// §2.1 and by several policies.
func (t *Trace) NextRequestIndex() []int {
	next := make([]int, len(t.Requests))
	last := make(map[ObjectID]int, 1024)
	for i := len(t.Requests) - 1; i >= 0; i-- {
		if j, ok := last[t.Requests[i].ID]; ok {
			next[i] = j
		} else {
			next[i] = -1
		}
		last[t.Requests[i].ID] = i
	}
	return next
}

// PrevRequestIndex computes, for every request, the index of the previous
// request to the same object, or -1 for an object's first request.
func (t *Trace) PrevRequestIndex() []int {
	prev := make([]int, len(t.Requests))
	last := make(map[ObjectID]int, 1024)
	for i := range t.Requests {
		if j, ok := last[t.Requests[i].ID]; ok {
			prev[i] = j
		} else {
			prev[i] = -1
		}
		last[t.Requests[i].ID] = i
	}
	return prev
}
