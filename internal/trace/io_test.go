package trace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadBasic(t *testing.T) {
	in := "# comment\n1 100 32768\n2 101 500 2.5\n\n3 100 32768\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	want := []Request{
		{Time: 1, ID: 100, Size: 32768, Cost: 32768},
		{Time: 2, ID: 101, Size: 500, Cost: 2.5},
		{Time: 3, ID: 100, Size: 32768, Cost: 32768},
	}
	if !reflect.DeepEqual(tr.Requests, want) {
		t.Errorf("Read = %+v, want %+v", tr.Requests, want)
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct{ name, in string }{
		{"too few fields", "1 2\n"},
		{"bad time", "x 2 3\n"},
		{"bad id", "1 x 3\n"},
		{"bad size", "1 2 x\n"},
		{"bad cost", "1 2 3 x\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.in)); err == nil {
				t.Errorf("Read(%q) = nil error, want error", tc.in)
			}
		})
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := paperTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got.Requests, tr.Requests)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := paperTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Errorf("binary round trip mismatch:\n got %+v\nwant %+v", got.Requests, tr.Requests)
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Error("ReadBinary accepted bad magic")
	}
}

func TestBinaryRejectsTruncated(t *testing.T) {
	tr := paperTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	b := buf.Bytes()
	for _, cut := range []int{0, 3, 11, len(b) - 1} {
		if _, err := ReadBinary(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("ReadBinary accepted trace truncated to %d bytes", cut)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	tr := paperTrace()
	if err := WriteFile(path, tr); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Error("file round trip mismatch")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("ReadFile(missing) = nil error")
	}
}

// TestBinaryRoundTripProperty round-trips random traces through the binary
// codec.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{}
		tm := int64(0)
		for i := 0; i < int(n); i++ {
			tm += rng.Int63n(10)
			tr.Requests = append(tr.Requests, Request{
				Time: tm,
				ID:   ObjectID(rng.Uint64()),
				Size: 1 + rng.Int63n(1<<30),
				Cost: rng.Float64() * 1e6,
			})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got.Requests) != len(tr.Requests) {
			return false
		}
		return reflect.DeepEqual(got.Requests, tr.Requests) || (len(tr.Requests) == 0 && len(got.Requests) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
