package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"lfo/internal/lint"
)

func loadFixtureModule(t *testing.T, name string) []*lint.Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", name, err)
	}
	return pkgs
}

// TestLoadMultiPackageModule walks a nested module and pins exactly which
// directories become packages: the root, the nested chain, and the
// build-tagged package — but not the constraint-excluded directory and
// never anything under vendor/.
func TestLoadMultiPackageModule(t *testing.T) {
	pkgs := loadFixtureModule(t, "loader")
	got := make(map[string]*lint.Package, len(pkgs))
	var rels []string
	for _, p := range pkgs {
		got[p.Rel] = p
		rels = append(rels, p.Rel)
	}
	for _, rel := range []string{"", "a", "a/b", "tagged"} {
		if got[rel] == nil {
			t.Errorf("package %q not loaded; have %v", rel, rels)
		}
	}
	if got["skiponly"] != nil {
		t.Errorf("skiponly has no buildable files and must be skipped")
	}
	for rel := range got {
		if strings.HasPrefix(rel, "vendor") {
			t.Errorf("vendored package %q must not be walked", rel)
		}
	}
	if root := got[""]; root != nil {
		if root.Path != "loaderfix" {
			t.Errorf("root package path = %q, want loaderfix", root.Path)
		}
		if root.Types == nil || root.Types.Name() != "loaderfix" {
			t.Errorf("root package not type-checked")
		}
	}
	if a := got["a"]; a != nil && a.Path != "loaderfix/a" {
		t.Errorf("nested package path = %q, want loaderfix/a", a.Path)
	}
}

// TestLoadBuildTags checks //go:build evaluation: the unconstrained and
// gc-tagged files load, the never-satisfied one is excluded (it declares
// a conflicting const, so mistakenly loading it fails the type check).
func TestLoadBuildTags(t *testing.T) {
	pkgs := loadFixtureModule(t, "loader")
	var tagged *lint.Package
	for _, p := range pkgs {
		if p.Rel == "tagged" {
			tagged = p
		}
	}
	if tagged == nil {
		t.Fatal("tagged package not loaded")
	}
	var names []string
	for _, f := range tagged.Files {
		names = append(names, filepath.Base(tagged.Fset.Position(f.Pos()).Filename))
	}
	want := map[string]bool{"doc.go": true, "on.go": true}
	if len(names) != len(want) {
		t.Fatalf("tagged files = %v, want doc.go and on.go only", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("file %s should have been excluded by its build constraint", n)
		}
	}
}

// TestLoadTestFilesParsedNotChecked pins the test-file contract: _test.go
// files are collected for comment auditing but never type-checked — the
// fixture's test file references an undefined identifier on purpose.
func TestLoadTestFilesParsedNotChecked(t *testing.T) {
	pkgs := loadFixtureModule(t, "loader")
	for _, p := range pkgs {
		if p.Rel != "a" {
			continue
		}
		if len(p.TestFiles) != 1 {
			t.Fatalf("package a has %d test files, want 1", len(p.TestFiles))
		}
		name := filepath.Base(p.Fset.Position(p.TestFiles[0].Pos()).Filename)
		if name != "a_test.go" {
			t.Errorf("test file = %s, want a_test.go", name)
		}
		return
	}
	t.Fatal("package a not loaded")
}

// TestLoadErrorOnUnbuildableImport: importing a package whose every file
// is excluded by build constraints is a load error, not a silent skip.
func TestLoadErrorOnUnbuildableImport(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "loaderbad"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = lint.LoadModule(root)
	if err == nil {
		t.Fatal("LoadModule(loaderbad) succeeded, want error")
	}
	if !strings.Contains(err.Error(), "no buildable Go source") {
		t.Errorf("error %q does not name the unbuildable import", err)
	}
}

// TestLoadOwnPackages is the self-hosting regression: lfolint must be
// able to load the packages that implement lfolint.
func TestLoadOwnPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	want := map[string]bool{"internal/lint": false, "internal/lint/flow": false, "cmd/lfolint": false}
	for _, p := range pkgs {
		if _, ok := want[p.Rel]; ok {
			want[p.Rel] = true
		}
	}
	for rel, seen := range want {
		if !seen {
			t.Errorf("package %s did not load", rel)
		}
	}
}
