package lint_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"lfo/internal/lint"
)

// fixtureRule maps each fixture package under testdata/src to the rule it
// exercises. Every rule must appear at least once: the golden files are
// what proves a rule actually fires.
var fixtureRule = map[string]string{
	"timenow":      "time-now",
	"globalrand":   "global-rand",
	"maporder":     "map-order",
	"floateq":      "float-equal",
	"uncheckederr": "unchecked-error",
	"fmtprint":     "fmt-print",
	"mutexcopy":    "mutex-copy",
	"wgmisuse":     "waitgroup-misuse",
	"suppress":     "time-now", // exercises the waiver mechanism
	"suppressbad":  "time-now", // checked by TestMalformedSuppression
	"stalewaiver":  "time-now", // checked by TestStaleWaiver
}

func loadFixtures(t *testing.T) map[string]*lint.Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.NewLoader(root, "fixture").LoadAll()
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	byRel := make(map[string]*lint.Package, len(pkgs))
	for _, p := range pkgs {
		byRel[p.Rel] = p
	}
	return byRel
}

func ruleByName(t *testing.T, name string) lint.Rule {
	t.Helper()
	for _, r := range lint.AllRules() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no rule named %q", name)
	return lint.Rule{}
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// wants extracts the expected-diagnostic annotations of a fixture package:
// (file, line) -> expected message substrings.
func wants(p *lint.Package) map[string][]string {
	out := make(map[string][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					pos := p.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					out[key] = append(out[key], m[1])
				}
			}
		}
	}
	return out
}

// TestGoldenFixtures runs each rule over its fixture package and requires
// an exact match between reported diagnostics and // want annotations.
// Disabling a rule makes its wants unmatched, so every rule has a test
// that fails without it.
func TestGoldenFixtures(t *testing.T) {
	byRel := loadFixtures(t)
	for rel, ruleName := range fixtureRule {
		if rel == "suppressbad" {
			continue // covered by TestMalformedSuppression
		}
		t.Run(rel, func(t *testing.T) {
			p, ok := byRel[rel]
			if !ok {
				t.Fatalf("fixture package %q not loaded", rel)
			}
			rule := ruleByName(t, ruleName)
			policy := lint.Policy{rule.Name: lint.Scope{}}
			diags := lint.Run([]*lint.Package{p}, []lint.Rule{rule}, policy)

			expected := wants(p)
			matched := 0
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				subs := expected[key]
				found := false
				for i, sub := range subs {
					if strings.Contains(d.Message, sub) {
						expected[key] = append(subs[:i], subs[i+1:]...)
						found = true
						matched++
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, subs := range expected {
				for _, sub := range subs {
					t.Errorf("missing diagnostic at %s: want message containing %q", key, sub)
				}
			}
			if t.Failed() {
				t.Logf("rule %s reported %d diagnostic(s), matched %d", ruleName, len(diags), matched)
			}
		})
	}
}

// TestMalformedSuppression verifies that a reasonless directive is itself
// reported and does not waive the finding it sits above.
func TestMalformedSuppression(t *testing.T) {
	p := loadFixtures(t)["suppressbad"]
	if p == nil {
		t.Fatal("fixture package suppressbad not loaded")
	}
	rule := ruleByName(t, "time-now")
	diags := lint.Run([]*lint.Package{p}, []lint.Rule{rule}, lint.Policy{rule.Name: lint.Scope{}})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (malformed directive + unsuppressed finding):\n%v", len(diags), diags)
	}
	if diags[0].Rule != "suppression" || !strings.Contains(diags[0].Message, "malformed") {
		t.Errorf("first diagnostic should report the malformed directive, got %s", diags[0])
	}
	if diags[1].Rule != "time-now" {
		t.Errorf("second diagnostic should be the unsuppressed time-now finding, got %s", diags[1])
	}
}

// TestStaleWaiver pins the three directive fates: a waiver suppressing a
// live finding stays silent, a waiver whose rule ran but no longer fires
// becomes a finding, a waiver naming a rule that did not run is left
// alone, and a waiver in a _test.go file is always reported dead.
func TestStaleWaiver(t *testing.T) {
	p := loadFixtures(t)["stalewaiver"]
	if p == nil {
		t.Fatal("fixture package stalewaiver not loaded")
	}
	rule := ruleByName(t, "time-now")
	policy := lint.Policy{rule.Name: lint.Scope{}, lint.StaleWaiverRule: lint.Scope{}}
	diags := lint.Run([]*lint.Package{p}, []lint.Rule{rule}, policy)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (one stale waiver + one dead test-file waiver):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != lint.StaleWaiverRule {
			t.Errorf("diagnostic has rule %q, want %q: %s", d.Rule, lint.StaleWaiverRule, d)
		}
	}
	if !strings.Contains(diags[0].Message, "stale waiver") || !strings.Contains(diags[0].Pos.Filename, "stalewaiver.go") {
		t.Errorf("first diagnostic should be the stale waiver in stalewaiver.go, got %s", diags[0])
	}
	if !strings.Contains(diags[1].Message, "_test.go file has no effect") || !strings.Contains(diags[1].Pos.Filename, "stalewaiver_test.go") {
		t.Errorf("second diagnostic should be the dead test-file waiver, got %s", diags[1])
	}
	// Without StaleWaiverRule in the policy nothing is reported: the live
	// waiver suppresses its finding and staleness is not audited.
	if extra := lint.Run([]*lint.Package{p}, []lint.Rule{rule}, lint.Policy{rule.Name: lint.Scope{}}); len(extra) != 0 {
		t.Errorf("policy without %s still reported %v", lint.StaleWaiverRule, extra)
	}
}

// TestEveryRuleHasFixture keeps the rule set and the golden files in sync.
func TestEveryRuleHasFixture(t *testing.T) {
	covered := make(map[string]bool)
	for _, rn := range fixtureRule {
		covered[rn] = true
	}
	for _, r := range lint.AllRules() {
		if !covered[r.Name] {
			t.Errorf("rule %q has no golden fixture under testdata/src", r.Name)
		}
	}
	policy := lint.DefaultPolicy()
	for _, r := range lint.AllRules() {
		if _, ok := policy[r.Name]; !ok {
			t.Errorf("rule %q missing from DefaultPolicy", r.Name)
		}
	}
}

// TestDefaultPolicyTiers pins the policy scoping: determinism rules cover
// the deterministic core only, float rules the numeric kernels only, and
// hygiene rules everything (with cliutil exempt from fmt-print).
func TestDefaultPolicyTiers(t *testing.T) {
	policy := lint.DefaultPolicy()
	cases := []struct {
		rule string
		rel  string
		want bool
	}{
		{"time-now", "internal/gbdt", true},
		{"time-now", "internal/opt", true},
		{"time-now", "internal/experiments", true},
		{"time-now", "internal/trace", false}, // I/O layer may read clocks
		{"time-now", "cmd/lfosim", false},
		{"global-rand", "internal/gen", true},
		{"global-rand", "internal/server", false},
		{"map-order", "internal/analysis", true},
		{"map-order", "internal/core", true},
		{"float-equal", "internal/mcf", true},
		{"float-equal", "internal/mrc", true},
		{"float-equal", "internal/gen", false},
		{"unchecked-error", "cmd/optcalc", true},
		{"unchecked-error", "internal/server", true},
		{"unchecked-error", "", true}, // module root package
		{"fmt-print", "internal/analysis", true},
		{"fmt-print", "internal/cliutil", false}, // the sanctioned output layer
		{"fmt-print", "cmd/lfosim", false},       // CLIs own their stdout
		{"mutex-copy", "internal/tiered", true},
		{"mutex-copy", "examples/quickstart", true},
		{"waitgroup-misuse", "internal/server", true},
		{"waitgroup-misuse", "internal/par", true},
		{"waitgroup-misuse", "cmd/lfosim", true},
	}
	for _, c := range cases {
		scope, ok := policy[c.rule]
		if !ok {
			t.Errorf("rule %q not in DefaultPolicy", c.rule)
			continue
		}
		if got := scope.Matches(c.rel); got != c.want {
			t.Errorf("policy[%s].Matches(%q) = %v, want %v", c.rule, c.rel, got, c.want)
		}
	}
}

// TestRepoIsLintClean is the enforceable gate: the repository itself must
// stay free of non-suppressed findings, so a regression fails go test
// (tier 1) as well as scripts/check.sh.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := lint.Run(pkgs, lint.AllRules(), lint.DefaultPolicy())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
