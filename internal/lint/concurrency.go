package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// isWaitGroupMethod reports whether call invokes the named method on a
// sync.WaitGroup receiver (by value or pointer).
func isWaitGroupMethod(p *Package, call *ast.CallExpr, name string) bool {
	fn := callee(p, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// ruleWaitGroupMisuse flags the two classic sync.WaitGroup mistakes inside
// a `go func() { ... }` literal:
//
//   - wg.Add called inside the spawned goroutine: the scheduler may run
//     Wait before the goroutine's Add, so Wait returns early. Add must
//     happen on the spawning side, before the go statement.
//   - wg.Done called as a plain statement instead of deferred: a panic or
//     early return between the work and the Done leaks the WaitGroup and
//     deadlocks Wait.
//
// Only function literals launched directly by a go statement are scanned:
// named methods that happen to run on a goroutine (e.g. an accept loop
// that Adds before spawning per-connection handlers) are legitimate
// spawning sides, not misuse.
func ruleWaitGroupMisuse() Rule {
	return Rule{
		Name: "waitgroup-misuse",
		Doc:  "flag wg.Add inside a spawned goroutine and non-deferred wg.Done; Add before go, defer Done inside",
		Run: func(p *Package, report func(pos token.Pos, format string, args ...interface{})) {
			inspect(p, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				fl, ok := gs.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.GoStmt:
						// Nested go statements are visited by the outer
						// walk in their own right.
						return false
					case *ast.DeferStmt:
						// Deferred Done is the correct pattern.
						return false
					case *ast.ExprStmt:
						if call, isCall := m.X.(*ast.CallExpr); isCall && isWaitGroupMethod(p, call, "Done") {
							report(call.Pos(), "wg.Done is not deferred; a panic between here and the goroutine's end would deadlock Wait — use defer wg.Done()")
						}
					case *ast.CallExpr:
						if isWaitGroupMethod(p, m, "Add") {
							report(m.Pos(), "wg.Add inside the spawned goroutine races with Wait; call Add before the go statement")
						}
					}
					return true
				})
				return true
			})
		},
	}
}
