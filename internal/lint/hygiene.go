package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ruleUncheckedError flags call statements that silently discard an error
// result in library code. Terminal output through fmt.Print*/os.Stdout and
// writes to never-failing in-memory buffers are exempt; everything else
// must be handled or explicitly assigned to _.
func ruleUncheckedError() Rule {
	return Rule{
		Name: "unchecked-error",
		Doc:  "flag call statements that discard an error result; handle it or assign to _ explicitly",
		Run: func(p *Package, report func(pos token.Pos, format string, args ...interface{})) {
			inspect(p, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok || !returnsError(p, call) || errorExempt(p, call) {
					return true
				}
				report(call.Pos(), "error return of %s is discarded; handle it or assign to _ explicitly", calleeName(p, call))
				return true
			})
		},
	}
}

func returnsError(p *Package, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errorExempt reports whether the call's error is conventionally
// uncheckable: terminal output, or writes to in-memory buffers whose
// Write* methods are documented to never fail.
func errorExempt(p *Package, call *ast.CallExpr) bool {
	if fn := callee(p, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		name := fn.Name()
		if strings.HasPrefix(name, "Print") {
			return true // process stdout: best-effort by convention
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return isStdStream(p, call.Args[0]) || neverFailWriter(p.Info.TypeOf(call.Args[0]))
		}
	}
	// Methods on in-memory buffers (bytes.Buffer, strings.Builder) return
	// a vestigial nil error.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isMethod := p.Info.Selections[sel]; isMethod && neverFailWriter(s.Recv()) {
			return true
		}
	}
	return false
}

// isStdStream reports whether e denotes os.Stdout or os.Stderr.
func isStdStream(p *Package, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Var)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
		(obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

func neverFailWriter(t types.Type) bool {
	switch types.TypeString(t, nil) {
	case "*bytes.Buffer", "bytes.Buffer", "*strings.Builder", "strings.Builder":
		return true
	}
	return false
}

func calleeName(p *Package, call *ast.CallExpr) string {
	if fn := callee(p, call); fn != nil {
		return fn.Name()
	}
	return "call"
}

// ruleFmtPrint forbids writing to process stdout/stderr from internal
// library packages: libraries return values (or take an io.Writer);
// terminal output is the CLI layer's job, via cliutil.
func ruleFmtPrint() Rule {
	return Rule{
		Name: "fmt-print",
		Doc:  "forbid fmt.Print*/os.Stdout writes in internal library packages; return values or go through cliutil",
		Run: func(p *Package, report func(pos token.Pos, format string, args ...interface{})) {
			inspect(p, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callee(p, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
					return true
				}
				name := fn.Name()
				switch {
				case name == "Print" || name == "Printf" || name == "Println":
					report(call.Pos(), "fmt.%s writes to process stdout from library code; return values or write through an injected io.Writer", name)
				case strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 && isStdStream(p, call.Args[0]):
					report(call.Pos(), "fmt.%s to a process std stream from library code; write through an injected io.Writer", name)
				}
				return true
			})
		},
	}
}

// lockTypes are the sync types that must never be copied once used.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

// lockPath returns a human-readable path to a sync lock type contained by
// value in t ("sync.Mutex", "struct field mu sync.Mutex"), or "".
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	switch u := types.Unalias(t).(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		return lockPath(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lp := lockPath(u.Field(i).Type(), seen); lp != "" {
				return lp
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return ""
}

// copiesValue reports whether e reads an existing value (as opposed to
// constructing a fresh one), so that using it by value is a copy.
func copiesValue(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// ruleMutexCopy flags sync primitives copied by value: non-pointer
// receivers/params whose type contains a lock, assignments that
// duplicate an existing lock-bearing value, lock-bearing loop variables,
// and lock-bearing values passed as call arguments. A copied mutex forks
// the lock state and silently stops excluding anything.
func ruleMutexCopy() Rule {
	return Rule{
		Name: "mutex-copy",
		Doc:  "flag sync.Mutex/RWMutex/WaitGroup/... copied by value (params, receivers, assignments, range)",
		Run: func(p *Package, report func(pos token.Pos, format string, args ...interface{})) {
			lockIn := func(e ast.Expr) string {
				t := p.Info.TypeOf(e)
				if t == nil {
					return ""
				}
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					return ""
				}
				return lockPath(t, make(map[types.Type]bool))
			}
			inspect(p, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					// Results are exempt: constructors returning a fresh
					// zero-valued lock by value are idiomatic and safe.
					fields := []*ast.FieldList{n.Recv, n.Type.Params}
					for _, fl := range fields {
						if fl == nil {
							continue
						}
						for _, f := range fl.List {
							if lp := lockIn(f.Type); lp != "" {
								report(f.Pos(), "%s passes %s by value; use a pointer", n.Name.Name, lp)
							}
						}
					}
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						if i >= len(n.Lhs) || !copiesValue(rhs) {
							continue
						}
						if lp := lockIn(rhs); lp != "" {
							report(n.Pos(), "assignment copies %s by value; use a pointer", lp)
						}
					}
				case *ast.RangeStmt:
					if n.Value != nil {
						if lp := lockIn(n.Value); lp != "" {
							report(n.Value.Pos(), "range value copies %s each iteration; range over indices or pointers", lp)
						}
					}
				case *ast.CallExpr:
					if isBuiltinAppend(p, n) {
						return true
					}
					for _, arg := range n.Args {
						if !copiesValue(arg) {
							continue
						}
						if lp := lockIn(arg); lp != "" {
							report(arg.Pos(), "argument copies %s by value; pass a pointer", lp)
						}
					}
				}
				return true
			})
		},
	}
}
