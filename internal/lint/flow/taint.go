package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lfo/internal/lint"
)

// SanctionedTelemetry lists package paths (module-relative, suffix-matched)
// whose functions are treated as determinism-clean even though they read
// clocks: the observability layer records wall-clock latency by design,
// and its values feed metrics endpoints only — never decisions, labels,
// model bytes, or anything hashed into test goldens. Calls *into* these
// packages are not traversed; nothing in the deterministic core may be
// *implemented* there.
var SanctionedTelemetry = []string{"internal/obs"}

// taintKind classifies the root cause of a nondeterminism witness.
type taintKind string

const (
	taintClock taintKind = "wall clock"
	taintRand  taintKind = "global math/rand"
	taintEnv   taintKind = "environment read"
	taintFS    taintKind = "filesystem read"
	taintMap   taintKind = "unordered map iteration"
)

// taintWitness explains why a function is nondeterministic: the root
// source and the call chain from the function's first offending callee
// down to that source.
type taintWitness struct {
	kind taintKind
	// chain is the path to the source, outermost callee first, ending in
	// a description of the source itself with its position.
	chain []string
}

// osEnvReads and osFSReads are the os functions whose results depend on
// the host environment or filesystem state.
var osEnvReads = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
	"Getpid": true, "Getppid": true, "Hostname": true, "UserHomeDir": true,
	"UserCacheDir": true, "UserConfigDir": true, "TempDir": true, "Getwd": true,
}
var osFSReads = map[string]bool{
	"Open": true, "OpenFile": true, "ReadFile": true, "ReadDir": true,
	"Stat": true, "Lstat": true, "ReadLink": true,
}

// randConstructors build explicitly seeded generators and are therefore
// deterministic; every other package-level math/rand function draws from
// the process-global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

// sourceTaint classifies a statically resolved callee as a nondeterminism
// source, or returns "".
func sourceTaint(fn *types.Func) taintKind {
	pkg := fn.Pkg()
	if pkg == nil || recvOf(fn) != nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return taintClock
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return taintRand
		}
	case "os":
		if osEnvReads[fn.Name()] {
			return taintEnv
		}
		if osFSReads[fn.Name()] {
			return taintFS
		}
	}
	return ""
}

// sanctioned reports whether p is a sanctioned telemetry package.
func sanctioned(p *lint.Package) bool {
	for _, s := range SanctionedTelemetry {
		if matchesRel(p.Rel, s) {
			return true
		}
	}
	return false
}

// taintSummaries computes, by fixed point over the call graph, a
// nondeterminism witness for every function that transitively reaches a
// source. A function is tainted if its body calls a source directly
// (regardless of whether the result is used — rand.Shuffle taints by side
// effect), returns a slice built in map-iteration order, or calls a
// tainted module function outside the sanctioned telemetry boundary.
func taintSummaries(g *Graph) map[*Func]*taintWitness {
	sum := make(map[*Func]*taintWitness)
	// Base facts: direct sources.
	for _, fn := range g.Order {
		for _, c := range fn.Calls {
			if k := sourceTaint(c.Callee); k != "" {
				sum[fn] = &taintWitness{kind: k, chain: []string{srcDesc(g, c)}}
				break
			}
		}
		if sum[fn] == nil {
			if pos, ok := mapOrderReturn(fn); ok {
				sum[fn] = &taintWitness{kind: taintMap, chain: []string{fmt.Sprintf("map-ordered slice built at %s", g.position(pos))}}
			}
		}
	}
	// Propagate caller-ward until stable.
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Order {
			if sum[fn] != nil {
				continue
			}
			for _, c := range fn.Calls {
				callee := g.Node(c.Callee)
				if callee == nil || sanctioned(callee.Pkg) {
					continue
				}
				w := sum[callee]
				if w == nil {
					continue
				}
				sum[fn] = &taintWitness{kind: w.kind, chain: append([]string{shortName(callee.Obj)}, w.chain...)}
				changed = true
				break
			}
		}
	}
	return sum
}

func srcDesc(g *Graph, c Call) string {
	return fmt.Sprintf("%s at %s", shortName(c.Callee), g.position(c.Site.Pos()))
}

func (g *Graph) position(pos token.Pos) string {
	p := g.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// mapOrderReturn reports whether fn returns a slice whose element order is
// dictated by map iteration: a `range` over a map appends to a variable
// declared outside the loop, the variable reaches a return statement, and
// no sort.*/slices.* call touches it after the loop. This is the
// interprocedural extension of the syntactic map-order rule: it marks the
// *function* as a taint source so callers in the deterministic core are
// flagged even when the map lives in a helper package.
func mapOrderReturn(fn *Func) (token.Pos, bool) {
	p := fn.Pkg
	var found token.Pos
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(as.Lhs) {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					continue
				}
				if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
					continue
				}
				lhs, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Uses[lhs]
				if obj == nil {
					obj = p.Info.Defs[lhs]
				}
				if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()) {
					continue // loop-local collector
				}
				if returnedUnsorted(p, fn.Decl, rs, obj) {
					found = as.Pos()
					return false
				}
			}
			return true
		})
		return true
	})
	return found, found.IsValid()
}

// returnedUnsorted reports whether obj appears in a return statement of fn
// and is not passed to a sort.*/slices.* call after the range statement.
func returnedUnsorted(p *lint.Package, fn *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	returned, sorted := false, false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if id, ok := ast.Unparen(e).(*ast.Ident); ok && p.Info.Uses[id] == obj {
					returned = true
				}
			}
		case *ast.CallExpr:
			if n.Pos() < rs.End() {
				return true
			}
			fnObj, _ := p.Info.Uses[calleeIdent(n)].(*types.Func)
			if fnObj == nil || fnObj.Pkg() == nil {
				return true
			}
			if path := fnObj.Pkg().Path(); path != "sort" && path != "slices" {
				return true
			}
			for _, arg := range n.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && p.Info.Uses[id] == obj {
						sorted = true
					}
					return !sorted
				})
			}
		}
		return true
	})
	return returned && !sorted
}

// calleeIdent returns the identifier naming a call's target, or nil.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

// ruleFlowDeterminism builds the flow-determinism rule: in scoped packages
// (the deterministic core), report every call to a module function whose
// summary is tainted, plus direct environment/filesystem reads (direct
// clock and rand calls are already covered by the syntactic rules).
func ruleFlowDeterminism() lint.Rule {
	return lint.Rule{
		Name: "flow-determinism",
		Doc:  "forbid values/effects derived from clocks, global rand, env/FS reads, or map order from reaching the deterministic core through any helper chain",
		RunModule: func(pkgs []*lint.Package, inScope func(*lint.Package) bool, report func(pos token.Pos, format string, args ...interface{})) {
			g := Build(pkgs)
			sum := taintSummaries(g)
			for _, fn := range g.Order {
				if !inScope(fn.Pkg) || sanctioned(fn.Pkg) {
					continue
				}
				for _, c := range fn.Calls {
					// Direct env/FS sources have no syntactic rule of
					// their own; report them here.
					switch sourceTaint(c.Callee) {
					case taintEnv:
						report(c.Site.Pos(), "%s reads the process environment; the deterministic core must take configuration as explicit inputs", shortName(c.Callee))
						continue
					case taintFS:
						report(c.Site.Pos(), "%s reads the filesystem; the deterministic core must take data as explicit inputs (load outside, pass values in)", shortName(c.Callee))
						continue
					}
					callee := g.Node(c.Callee)
					if callee == nil || sanctioned(callee.Pkg) {
						continue
					}
					if w := sum[callee]; w != nil {
						report(c.Site.Pos(), "call to %s is nondeterministic (%s: %s → %s); deterministic-core outputs must not depend on it",
							shortName(callee.Obj), w.kind, shortName(callee.Obj), strings.Join(w.chain, " → "))
					}
				}
			}
		},
	}
}
