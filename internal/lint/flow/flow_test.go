package flow_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"lfo/internal/lint"
	"lfo/internal/lint/flow"
)

// ruleFixtures maps each flow rule to the fixture packages that carry its
// // want annotations. Every rule runs over the *whole* fixture module —
// the analyses are interprocedural, so out-of-scope packages still feed
// the call graph — but findings may only land in the listed packages.
var ruleFixtures = map[string][]string{
	"flow-determinism": {"core"},
	"hotpath-alloc":    {"hot", "hotutil"},
	"goroutine-join":   {"gr"},
	"lock-order":       {"locks"},
}

// rulePolicy scopes each rule the way DefaultPolicy does: determinism
// taint is confined to the fixture's stand-in core, the rest are
// module-wide.
var rulePolicy = map[string]lint.Scope{
	"flow-determinism": {Include: []string{"core"}},
	"hotpath-alloc":    {},
	"goroutine-join":   {},
	"lock-order":       {},
}

func loadFixtures(t *testing.T) []*lint.Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.NewLoader(root, "fixture").LoadAll()
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	return pkgs
}

func ruleByName(t *testing.T, name string) lint.Rule {
	t.Helper()
	for _, r := range flow.Rules() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no flow rule named %q", name)
	return lint.Rule{}
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// wants extracts the expected-diagnostic annotations of the given fixture
// packages: (file, line) -> expected message substrings.
func wants(pkgs []*lint.Package, rels []string) map[string][]string {
	want := make(map[string]bool, len(rels))
	for _, r := range rels {
		want[r] = true
	}
	out := make(map[string][]string)
	for _, p := range pkgs {
		if !want[p.Rel] {
			continue
		}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						pos := p.Fset.Position(c.Pos())
						key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
						out[key] = append(out[key], m[1])
					}
				}
			}
		}
	}
	return out
}

// TestGoldenFixtures runs each flow rule over the full fixture module and
// requires an exact match between reported diagnostics and // want
// annotations. The fixtures are built so every finding crosses at least
// one function boundary — and for the headline cases, a package boundary:
// determinism taint surfaces in core only via helper → helper/deep →
// time.Now, and the hotpath alloc in hotutil is two packages away from
// the //lfo:hotpath annotation in hot.
func TestGoldenFixtures(t *testing.T) {
	pkgs := loadFixtures(t)
	for ruleName, rels := range ruleFixtures {
		t.Run(ruleName, func(t *testing.T) {
			rule := ruleByName(t, ruleName)
			policy := lint.Policy{rule.Name: rulePolicy[ruleName]}
			diags := lint.Run(pkgs, []lint.Rule{rule}, policy)

			expected := wants(pkgs, rels)
			matched := 0
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				subs := expected[key]
				found := false
				for i, sub := range subs {
					if strings.Contains(d.Message, sub) {
						expected[key] = append(subs[:i], subs[i+1:]...)
						found = true
						matched++
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, subs := range expected {
				for _, sub := range subs {
					t.Errorf("missing diagnostic at %s: want message containing %q", key, sub)
				}
			}
			if t.Failed() {
				t.Logf("rule %s reported %d diagnostic(s), matched %d", ruleName, len(diags), matched)
			}
		})
	}
}

// TestTaintChainNamesEveryHop pins the diagnostic quality contract: a
// cross-package taint finding must spell out the full helper chain down
// to the source call, or nobody can act on it.
func TestTaintChainNamesEveryHop(t *testing.T) {
	pkgs := loadFixtures(t)
	rule := ruleByName(t, "flow-determinism")
	diags := lint.Run(pkgs, []lint.Rule{rule}, lint.Policy{rule.Name: {Include: []string{"core"}}})
	var chain string
	for _, d := range diags {
		if strings.Contains(d.Message, "helper.Laundered") {
			chain = d.Message
			break
		}
	}
	if chain == "" {
		t.Fatal("no diagnostic mentions helper.Laundered")
	}
	for _, hop := range []string{"helper.Laundered", "deep.Stamp", "time.Now"} {
		if !strings.Contains(chain, hop) {
			t.Errorf("taint chain omits hop %q: %s", hop, chain)
		}
	}
}

// TestHotpathWaiverIsHonored checks the waiver contract on the hot path:
// the //lfolint:ignore hotpath-alloc directive in hot.go must suppress
// the new(float64) finding on the line below it, and only that finding.
func TestHotpathWaiverIsHonored(t *testing.T) {
	pkgs := loadFixtures(t)
	rule := ruleByName(t, "hotpath-alloc")
	diags := lint.Run(pkgs, []lint.Rule{rule}, lint.Policy{rule.Name: {}})
	for _, d := range diags {
		if strings.Contains(d.Message, "new allocates") {
			t.Errorf("waived new(float64) finding leaked through: %s", d)
		}
	}
}

// TestAllRulesHaveFixtures keeps flow.Rules and the fixture map in sync,
// and pins every flow rule into DefaultPolicy so the repo gate runs them.
func TestAllRulesHaveFixtures(t *testing.T) {
	policy := lint.DefaultPolicy()
	for _, r := range flow.Rules() {
		if _, ok := ruleFixtures[r.Name]; !ok {
			t.Errorf("flow rule %q has no fixture entry in ruleFixtures", r.Name)
		}
		if _, ok := policy[r.Name]; !ok {
			t.Errorf("flow rule %q missing from lint.DefaultPolicy", r.Name)
		}
		if r.RunModule == nil {
			t.Errorf("flow rule %q must be module-wide (RunModule)", r.Name)
		}
	}
}

// TestRepoIsFlowClean is the enforceable gate for the interprocedural
// rules: the repository itself must stay free of non-suppressed flow
// findings, mirroring lint's TestRepoIsLintClean.
func TestRepoIsFlowClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := lint.Run(pkgs, flow.Rules(), lint.DefaultPolicy())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
