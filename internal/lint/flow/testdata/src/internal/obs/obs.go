// Package obs stands in for the sanctioned telemetry boundary: it reads
// clocks by design and is exempt from determinism taint.
package obs

import "time"

// LatencyNS reads the wall clock; sanctioned.
func LatencyNS(start int64) int64 {
	return time.Now().UnixNano() - start
}
