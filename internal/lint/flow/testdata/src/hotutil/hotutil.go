// Package hotutil is called from an annotated hot path in package hot;
// its allocations are reported at their own sites with the root chain.
package hotutil

// Box holds a float behind a pointer.
type Box struct {
	V float64
	P *float64
}

// Alloc heap-allocates a Box.
func Alloc(x float64) *Box {
	return &Box{V: x} // want "address-taken composite literal escapes"
}
