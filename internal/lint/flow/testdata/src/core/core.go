// Package core stands in for the deterministic core: flow-determinism is
// scoped to it in the tests.
package core

import (
	"os"
	"sort"

	"fixture/helper"
	"fixture/helper/deep"
	"fixture/internal/obs"
)

// Label computes a deterministic label but launders a wall-clock read
// through two helper hops.
func Label(x int) int64 {
	base := int64(helper.Clean(x)) // clean helper: no finding
	stamp := helper.Laundered()    // want "nondeterministic (wall clock: helper.Laundered → deep.Stamp → time.Now"
	return base + stamp
}

// Order leaks map iteration order from a helper into core output.
func Order(m map[string]int) []string {
	ks := helper.Keys(m) // want "nondeterministic (unordered map iteration"
	return ks
}

// Perturb launders a global-rand side effect: no value returned anywhere.
func Perturb(xs []int) {
	deep.Shuffle(xs) // want "nondeterministic (global math/rand"
}

// Configured reads the environment directly from core.
func Configured() string {
	return os.Getenv("LFO_MODE") // want "reads the process environment"
}

// LoadBytes reads the filesystem directly from core.
func LoadBytes(path string) []byte {
	b, err := os.ReadFile(path) // want "reads the filesystem"
	if err != nil {
		return nil
	}
	return b
}

// Timed uses the sanctioned telemetry boundary; no finding.
func Timed(start int64) int64 {
	return obs.LatencyNS(start)
}

// SortedOrder collects and sorts: the helper is tainted but this function
// never calls it; sorting its own map locally is the job of the syntactic
// map-order rule, not this one.
func SortedOrder(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Waived shows a reasoned waiver suppressing the finding.
func Waived() int64 {
	//lfolint:ignore flow-determinism fixture: demonstrates the waiver path
	return helper.Laundered()
}
