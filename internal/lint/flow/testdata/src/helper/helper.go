// Package helper is an out-of-scope utility package: the deterministic
// core calls into it, so taint must be tracked through it.
package helper

import "fixture/helper/deep"

// Laundered hides a wall-clock read behind two helper hops.
func Laundered() int64 {
	return deep.Stamp() + 1
}

// Keys returns map keys in iteration order — a map-order taint source.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Clean is a pure helper; calls to it are fine.
func Clean(x int) int {
	return x * 2
}
