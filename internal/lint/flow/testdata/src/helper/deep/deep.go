// Package deep is the second helper hop.
package deep

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Shuffle perturbs data via the process-global rand source: taint by side
// effect, with no return value involved.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
