// Package hot exercises the hotpath-alloc rule.
package hot

import (
	"fmt"

	"fixture/hotutil"
)

// State carries reusable buffers for the hot loop.
type State struct {
	buf     []float64
	scratch hotutil.Box
}

//lfo:hotpath
func (s *State) Step(x float64, f func(float64) float64) float64 {
	tmp := make([]float64, 8) // want "make allocates"
	tmp[0] = x
	s.buf = append(s.buf, x) // want "append may grow"
	b := hotutil.Alloc(x)    // transitive callee alloc: reported inside hotutil
	y := f(x)                // want "dynamic call (func value f) cannot be verified"
	fmt.Println(y)           // want "fmt.Println allocates"
	if x < 0 {
		panic(fmt.Sprintf("hot: negative %v", x)) // exempt: panic path
	}
	//lfolint:ignore hotpath-alloc fixture: demonstrates an amortized one-time setup waiver
	held := new(float64)
	*held = b.V
	s.scratch = hotutil.Box{V: *held}
	return y + *held + clean(x)
}

// clean is a transitive callee with no allocations: no findings.
func clean(x float64) float64 {
	return x * 0.5
}
