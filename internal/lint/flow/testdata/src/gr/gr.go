// Package gr exercises the goroutine-join rule.
package gr

import (
	"context"
	"sync"
)

// FireAndForget spawns work nobody can wait for.
func FireAndForget(xs []int) {
	go func() { // want "no visible join path"
		for i := range xs {
			xs[i]++
		}
	}()
}

// WGJoined accounts the goroutine to a WaitGroup before spawning.
func WGJoined(xs []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range xs {
			xs[i]++
		}
	}()
	wg.Wait()
}

// ChannelJoined signals completion on a channel.
func ChannelJoined(xs []int) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		for i := range xs {
			xs[i]++
		}
		close(done)
	}()
	return done
}

// CtxJoined watches a context: selecting on Done is a join path.
func CtxJoined(ctx context.Context, tick <-chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

// NamedJoined spawns a named function that signals through a callee.
func NamedJoined(w *Worker) {
	go w.loop()
}

// NamedUnjoined spawns a named function with no signal anywhere.
func NamedUnjoined(w *Worker) {
	go w.spin() // want "no visible join path"
}

// Worker is a goroutine host.
type Worker struct {
	done chan struct{}
	n    int
}

func (w *Worker) loop() {
	w.finish()
}

// finish is the transitive signal: loop → finish → close.
func (w *Worker) finish() {
	close(w.done)
}

func (w *Worker) spin() {
	for i := 0; i < 1000; i++ {
		w.n++
	}
}
