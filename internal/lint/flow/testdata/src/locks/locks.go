// Package locks exercises the lock-order rule.
package locks

import "sync"

// S holds an inconsistently ordered mutex pair (a, b) and a consistent
// one (c, d — always c before d, including through a callee).
type S struct {
	a, b sync.Mutex
	c, d sync.Mutex
	n    int
}

// AB locks a then b: establishes the (a, b) order.
func (s *S) AB() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	s.n++
	s.b.Unlock()
}

// BA locks b then a: the inversion.
func (s *S) BA() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock() // want "lock order inversion"
	s.n++
	s.a.Unlock()
}

// CD locks c then d directly.
func (s *S) CD() {
	s.c.Lock()
	defer s.c.Unlock()
	s.d.Lock()
	s.n++
	s.d.Unlock()
}

// CthenD takes c, then acquires d through a callee: same order as CD, so
// no finding — but the edge is recorded interprocedurally.
func (s *S) CthenD() {
	s.c.Lock()
	defer s.c.Unlock()
	s.bumpUnderD()
}

// bumpUnderD acquires d; callers may hold other locks.
func (s *S) bumpUnderD() {
	s.d.Lock()
	s.n++
	s.d.Unlock()
}

// T holds a pair inverted only through a callee chain.
type T struct {
	x, y sync.Mutex
	n    int
}

// XY locks x, then y via a helper.
func (t *T) XY() {
	t.x.Lock()
	defer t.x.Unlock()
	t.underY()
}

func (t *T) underY() {
	t.y.Lock()
	t.n++
	t.y.Unlock()
}

// YX locks y, then x via a helper: an inversion only visible
// interprocedurally.
func (t *T) YX() {
	t.y.Lock()
	defer t.y.Unlock()
	t.underX() // want "lock order inversion"
}

func (t *T) underX() {
	t.x.Lock()
	t.n++
	t.x.Unlock()
}
