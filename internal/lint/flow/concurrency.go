package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"lfo/internal/lint"
)

// isSyncMethod reports whether fn is the named method on the named sync
// type (WaitGroup, Mutex, RWMutex, ...), directly or through a pointer
// receiver.
func isSyncMethod(fn *types.Func, typeName string, names ...string) bool {
	if fn == nil {
		return false
	}
	recv := recvOf(fn)
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != typeName {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// signalSummaries computes, by fixed point, which functions contain a
// completion signal a waiter could observe: any channel operation (send,
// receive, close, select, range-over-channel), a WaitGroup method, or a
// call to a module function that signals.
func signalSummaries(g *Graph) map[*Func]bool {
	sig := make(map[*Func]bool)
	for _, fn := range g.Order {
		if nodeSignals(fn.Pkg, fn.Decl.Body, nil, nil) {
			sig[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Order {
			if sig[fn] {
				continue
			}
			for _, c := range fn.Calls {
				if callee := g.Node(c.Callee); callee != nil && sig[callee] {
					sig[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return sig
}

// nodeSignals reports whether the AST subtree contains a direct completion
// signal, or (when g and sig are non-nil) a call to a module function
// whose summary signals.
func nodeSignals(p *lint.Package, node ast.Node, g *Graph, sig map[*Func]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					found = true
					return false
				}
			}
			fn, _ := p.Info.Uses[calleeIdent(n)].(*types.Func)
			if isSyncMethod(fn, "WaitGroup", "Done", "Wait", "Add") {
				found = true
				return false
			}
			if g != nil && fn != nil {
				if callee := g.Node(fn); callee != nil && sig[callee] {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// ruleGoroutineJoin builds the goroutine-join rule: every go statement
// must have a visible join path — a WaitGroup.Add on the spawning side
// before the statement, or a completion signal (channel op / WaitGroup
// method) inside the spawned function, possibly via its callees. A
// goroutine nobody can wait for outlives shutdown silently: work is lost
// on exit and tests leak state between cases.
func ruleGoroutineJoin() lint.Rule {
	return lint.Rule{
		Name: "goroutine-join",
		Doc:  "flag goroutines spawned without a join path (no prior wg.Add, no channel/WaitGroup signal inside the goroutine)",
		RunModule: func(pkgs []*lint.Package, inScope func(*lint.Package) bool, report func(pos token.Pos, format string, args ...interface{})) {
			g := Build(pkgs)
			sig := signalSummaries(g)
			for _, fn := range g.Order {
				if !inScope(fn.Pkg) {
					continue
				}
				p := fn.Pkg
				ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if addBeforePos(p, fn.Decl.Body, gs.Pos()) {
						return true // accounted to a WaitGroup on the spawning side
					}
					// Does the spawned function itself signal completion?
					switch target := ast.Unparen(gs.Call.Fun).(type) {
					case *ast.FuncLit:
						if nodeSignals(p, target.Body, g, sig) {
							return true
						}
					default:
						if callee, _ := resolveCall(p, gs.Call); callee != nil {
							if node := g.Node(callee); node != nil && sig[node] {
								return true
							}
						}
					}
					report(gs.Pos(), "goroutine has no visible join path: no wg.Add before the spawn and no channel/WaitGroup signal inside it (or its callees); a caller cannot wait for this work to finish")
					return true
				})
			}
		},
	}
}

// addBeforePos reports whether a WaitGroup.Add call occurs in body before
// pos — the spawning-side accounting pattern.
func addBeforePos(p *lint.Package, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		fn, _ := p.Info.Uses[calleeIdent(call)].(*types.Func)
		if isSyncMethod(fn, "WaitGroup", "Add") {
			found = true
		}
		return !found
	})
	return found
}

// lockEdge is one acquisition edge: while holding `held`, `acquired` was
// locked at pos (directly or inside a callee). It doubles as the held-
// stack entry, where only held/heldLabel are meaningful.
type lockEdge struct {
	held, acquired types.Object
	pos            token.Pos
	heldLabel      string
	acquiredLabel  string
}

// lockIdent resolves a Lock/RLock/Unlock/RUnlock call to the identity of
// the mutex it operates on: the field or variable object of the receiver
// expression. All instances of a struct share the field object, which is
// exactly the granularity pairwise ordering needs.
func lockIdent(p *lint.Package, call *ast.CallExpr) (obj types.Object, label string, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", ""
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if !isSyncMethod(fn, "Mutex", "Lock", "Unlock", "TryLock") &&
		!isSyncMethod(fn, "RWMutex", "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock") {
		return nil, "", ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[x.Sel]
	default:
		return nil, "", ""
	}
	if obj == nil {
		return nil, "", ""
	}
	return obj, types.ExprString(sel.X), fn.Name()
}

// lockSummaries computes, by fixed point, the set of lock objects each
// function may acquire, including through its static callees.
func lockSummaries(g *Graph) map[*Func]map[types.Object]string {
	acq := make(map[*Func]map[types.Object]string)
	add := func(fn *Func, obj types.Object, label string) bool {
		m := acq[fn]
		if m == nil {
			m = make(map[types.Object]string)
			acq[fn] = m
		}
		if _, ok := m[obj]; ok {
			return false
		}
		m[obj] = label
		return true
	}
	for _, fn := range g.Order {
		p := fn.Pkg
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj, label, op := lockIdent(p, call); obj != nil && (op == "Lock" || op == "RLock") {
					add(fn, obj, label)
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Order {
			for _, c := range fn.Calls {
				callee := g.Node(c.Callee)
				if callee == nil {
					continue
				}
				for obj, label := range acq[callee] {
					if add(fn, obj, label) {
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// ruleLockOrder builds the lock-order rule: record every "B acquired
// while holding A" edge — within a function body in source order, and
// through calls to functions whose summaries acquire locks — then report
// pairs observed in both orders anywhere in the module. Two goroutines
// taking such a pair in opposite orders deadlock.
func ruleLockOrder() lint.Rule {
	return lint.Rule{
		Name: "lock-order",
		Doc:  "flag mutex pairs acquired in inconsistent order anywhere in the module (deadlock risk), including through callees",
		RunModule: func(pkgs []*lint.Package, inScope func(*lint.Package) bool, report func(pos token.Pos, format string, args ...interface{})) {
			g := Build(pkgs)
			acq := lockSummaries(g)
			type pair struct{ a, b types.Object }
			edges := make(map[pair]*lockEdge)
			var order []pair
			record := func(e lockEdge) {
				key := pair{e.held, e.acquired}
				if _, ok := edges[key]; !ok {
					edges[key] = &e
					order = append(order, key)
				}
			}
			for _, fn := range g.Order {
				if !inScope(fn.Pkg) {
					continue
				}
				p := fn.Pkg
				var held []lockEdge // labels reused: held stack (object+label)
				ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.DeferStmt:
						return false // deferred unlocks keep the lock held to the end
					case *ast.GoStmt:
						return false // a spawned goroutine is a fresh lock context
					case *ast.CallExpr:
						if obj, label, op := lockIdent(p, n); obj != nil {
							switch op {
							case "Lock", "RLock", "TryLock", "TryRLock":
								for _, h := range held {
									if h.held != obj {
										record(lockEdge{held: h.held, acquired: obj, pos: n.Pos(), heldLabel: h.heldLabel, acquiredLabel: label})
									}
								}
								held = append(held, lockEdge{held: obj, heldLabel: label})
							case "Unlock", "RUnlock":
								for i := len(held) - 1; i >= 0; i-- {
									if held[i].held == obj {
										held = append(held[:i], held[i+1:]...)
										break
									}
								}
							}
							return true
						}
						// A callee that acquires locks while we hold one
						// extends the order relation interprocedurally.
						if len(held) == 0 {
							return true
						}
						if callee, _ := resolveCall(p, n); callee != nil {
							if node := g.Node(callee); node != nil {
								for obj, label := range acq[node] {
									for _, h := range held {
										if h.held != obj {
											record(lockEdge{held: h.held, acquired: obj, pos: n.Pos(), heldLabel: h.heldLabel, acquiredLabel: label})
										}
									}
								}
							}
						}
					}
					return true
				})
			}
			// Deterministic pair scan: report each inverted pair once, at
			// the later of the two edges.
			sort.Slice(order, func(i, j int) bool {
				return g.Fset.Position(edges[order[i]].pos).Offset < g.Fset.Position(edges[order[j]].pos).Offset
			})
			reported := make(map[pair]bool)
			for _, key := range order {
				rev := pair{key.b, key.a}
				if reported[rev] || edges[rev] == nil {
					continue
				}
				reported[key] = true
				e, r := edges[key], edges[rev]
				later, earlier := e, r
				if g.Fset.Position(later.pos).Offset < g.Fset.Position(earlier.pos).Offset {
					later, earlier = earlier, later
				}
				report(later.pos, "lock order inversion: %s acquired while holding %s here, but %s is acquired while holding %s at %s; pick one pairwise order and use it everywhere",
					later.acquiredLabel, later.heldLabel, earlier.acquiredLabel, earlier.heldLabel, g.position(earlier.pos))
			}
		},
	}
}

// Rules returns the interprocedural flow rules in stable order, for
// appending to lint.AllRules.
func Rules() []lint.Rule {
	return []lint.Rule{
		ruleFlowDeterminism(),
		ruleHotpathAlloc(),
		ruleGoroutineJoin(),
		ruleLockOrder(),
	}
}
