// Package flow implements lfolint's interprocedural analyses: a
// module-wide call graph with summary-based, fixed-point propagation, and
// four rules built on top of it.
//
//   - flow-determinism: values and effects derived from wall clocks,
//     global randomness, environment/filesystem reads, or unordered map
//     iteration must not reach the deterministic core, even when laundered
//     through arbitrarily deep helper chains across packages.
//   - hotpath-alloc: functions annotated //lfo:hotpath — and everything
//     they statically call — must not allocate (composite literals, append
//     growth, boxing, fmt, closures, goroutines, ...).
//   - goroutine-join: every spawned goroutine needs a visible join path
//     (a WaitGroup accounted before the spawn, or a completion signal —
//     channel operation or WaitGroup.Done — inside the goroutine).
//   - lock-order: mutexes must be acquired in a consistent pairwise order
//     across the whole module, including locks taken by callees.
//
// Like the syntactic rules in package lint, everything here is stdlib-only
// (go/ast + go/types). The engine is sound only over *static* call edges:
// calls through interfaces or function values cannot be followed, so the
// hot-path rule reports them as unverifiable and the determinism rule
// documents them as a known blind spot.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"lfo/internal/lint"
)

// Func is one module function or method with a body, a node of the call
// graph. Function literals are attributed to their enclosing declaration:
// their statements, call sites, and allocation sites all count against the
// declared function that contains them.
type Func struct {
	// Obj is the canonical (generic-origin) function object.
	Obj *types.Func
	// Decl is the declaration; Decl.Body is non-nil.
	Decl *ast.FuncDecl
	// Pkg is the package holding the declaration.
	Pkg *lint.Package
	// Calls are the statically resolved call sites, in source order.
	Calls []Call
	// Dynamic are call sites the engine cannot resolve (interface
	// methods, func values), in source order.
	Dynamic []DynSite
}

// Call is one statically resolved call site.
type Call struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Callee is the canonical callee object. It has a Graph node only if
	// it is declared (with a body) inside the module.
	Callee *types.Func
}

// DynSite is a call site whose target cannot be determined statically.
type DynSite struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Desc says why the target is unknown ("interface method (io.Reader).Read",
	// "func value fn", ...).
	Desc string
}

// Graph is the module-wide call graph.
type Graph struct {
	// Pkgs are the packages the graph was built from.
	Pkgs []*lint.Package
	// Funcs maps canonical function objects to their nodes.
	Funcs map[*types.Func]*Func
	// Order lists every node sorted by source position, so fixed-point
	// iteration and reporting are deterministic.
	Order []*Func
	// Fset positions every node.
	Fset *token.FileSet
}

// Build constructs the call graph over every declared function of pkgs.
func Build(pkgs []*lint.Package) *Graph {
	g := &Graph{Pkgs: pkgs, Funcs: make(map[*types.Func]*Func)}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Func{Obj: canonical(obj), Decl: fd, Pkg: p}
				fn.collectCalls()
				g.Funcs[fn.Obj] = fn
				g.Order = append(g.Order, fn)
			}
		}
	}
	sort.Slice(g.Order, func(i, j int) bool {
		a, b := g.Fset.Position(g.Order[i].Decl.Pos()), g.Fset.Position(g.Order[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return g
}

// Node returns the graph node for fn (resolving generic instantiations to
// their origin), or nil if fn is not declared in the module.
func (g *Graph) Node(fn *types.Func) *Func {
	if fn == nil {
		return nil
	}
	return g.Funcs[canonical(fn)]
}

// canonical maps an instantiated generic function or method to the
// declared origin object that keys the graph.
func canonical(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// collectCalls resolves every call expression in the function body,
// including those inside nested function literals.
func (fn *Func) collectCalls() {
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, dyn := resolveCall(fn.Pkg, call)
		switch {
		case callee != nil:
			fn.Calls = append(fn.Calls, Call{Site: call, Callee: callee})
		case dyn != "":
			fn.Dynamic = append(fn.Dynamic, DynSite{Site: call, Desc: dyn})
		}
		return true
	})
}

// resolveCall classifies a call expression. It returns a non-nil callee
// for statically resolved calls, a non-empty description for dynamic
// calls, and (nil, "") for non-calls in call syntax: conversions, builtin
// invocations, and immediately-invoked function literals (whose bodies are
// already part of the enclosing node).
func resolveCall(p *lint.Package, call *ast.CallExpr) (callee *types.Func, dynamic string) {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](...) / x.m[T](...).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if p.Info.Types[idx.X].IsType() {
			return nil, "" // conversion to a generic type
		}
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[fun].(type) {
		case *types.Func:
			return canonical(obj), ""
		case *types.Builtin, *types.TypeName:
			return nil, "" // builtin or conversion: handled by the walkers
		case *types.Var:
			return nil, "func value " + fun.Name
		case nil:
			return nil, "" // conversion to an unnamed type
		}
		return nil, "call through " + fun.Name
	case *ast.SelectorExpr:
		switch obj := p.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			if recv := recvOf(obj); recv != nil && types.IsInterface(recv.Type()) {
				return nil, "interface method " + shortName(obj)
			}
			return canonical(obj), ""
		case *types.Var:
			return nil, "func-valued field/variable " + fun.Sel.Name
		case *types.TypeName:
			return nil, "" // conversion to a package-qualified type
		}
		return nil, "call through " + fun.Sel.Name
	case *ast.FuncLit:
		return nil, "" // immediately invoked; body walked in place
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.StarExpr,
		*ast.InterfaceType, *ast.StructType, *ast.FuncType:
		return nil, "" // conversion
	}
	return nil, "indirect call"
}

// recvOf returns the receiver variable of a method, or nil.
func recvOf(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

// shortName renders a function object for diagnostics with package names
// instead of full import paths: "par.Ranges", "(*gbdt.Model).Predict".
func shortName(fn *types.Func) string {
	name := fn.FullName()
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() != pkg.Name() {
		name = strings.ReplaceAll(name, pkg.Path()+".", pkg.Name()+".")
	}
	return name
}

// matchesRel reports whether the module-relative package path rel matches
// sel, either exactly, as a path prefix of rel, or as a trailing path
// ("internal/obs" matches "x/internal/obs" so fixtures can stand in for
// real trees).
func matchesRel(rel, sel string) bool {
	return rel == sel || strings.HasPrefix(rel, sel+"/") || strings.HasSuffix(rel, "/"+sel)
}
