package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lfo/internal/lint"
)

// HotpathDirective marks a function whose entire static call tree must be
// allocation-free. Place it in the function's doc comment:
//
//	//lfo:hotpath
//	func (m *Model) Predict(row []float64) float64 { ... }
//
// The rule reports every allocation site — composite literals that reach
// the heap, make/new, append growth, closures, goroutine spawns, fmt
// calls, string/byte conversions, string concatenation, and interface
// boxing — in the annotated function and everything it statically calls,
// as well as call sites it cannot verify (interface methods, func values,
// unanalyzed stdlib). Waive individual sites with
// //lfolint:ignore hotpath-alloc <reason>; allocations inside panic
// arguments are exempt (the program is already dying).
const HotpathDirective = "//lfo:hotpath"

// allocAllowedPkgs are stdlib packages whose exported functions are known
// not to allocate on any path a hot loop would take: pure math, atomic
// ops, and the sync primitives' fast paths.
var allocAllowedPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync":        true,
	"sync/atomic": true,
	"runtime":     true,
}

// allocAllowedFuncs are individually vetted non-allocating stdlib
// functions from packages that otherwise do allocate.
var allocAllowedFuncs = map[string]bool{
	"io.ReadFull":    true,
	"io.ReadAtLeast": true,
	"errors.Is":      true,
	"errors.As":      true,
	"errors.Unwrap":  true,
	"sort.Search":    true,
}

// isHotpath reports whether the declaration carries the //lfo:hotpath
// directive in its doc comment.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
			return true
		}
	}
	return false
}

// hotChain records how a function became hot: the annotated root and the
// call path from it.
type hotChain struct {
	root *Func
	path []string // shortNames from root (exclusive) to this function (inclusive)
}

func (h hotChain) describe(fn *Func) string {
	if len(h.path) == 0 {
		return fmt.Sprintf("//lfo:hotpath function %s", shortName(fn.Obj))
	}
	return fmt.Sprintf("%s, reachable from //lfo:hotpath %s (via %s)",
		shortName(fn.Obj), shortName(h.root.Obj), strings.Join(h.path, " → "))
}

// ruleHotpathAlloc builds the hotpath-alloc rule: breadth-first over the
// static call graph from every annotated root, reporting each allocation
// site and unverifiable call at its own position (so waivers sit on the
// offending line), with the root chain in the message.
func ruleHotpathAlloc() lint.Rule {
	return lint.Rule{
		Name: "hotpath-alloc",
		Doc:  "enforce zero allocations in //lfo:hotpath functions and everything they statically call",
		RunModule: func(pkgs []*lint.Package, inScope func(*lint.Package) bool, report func(pos token.Pos, format string, args ...interface{})) {
			g := Build(pkgs)
			// BFS from the annotated roots; first chain to reach a
			// function wins (deterministic via g.Order).
			reached := make(map[*Func]hotChain)
			var queue []*Func
			for _, fn := range g.Order {
				if isHotpath(fn.Decl) && inScope(fn.Pkg) {
					reached[fn] = hotChain{root: fn}
					queue = append(queue, fn)
				}
			}
			for len(queue) > 0 {
				fn := queue[0]
				queue = queue[1:]
				chain := reached[fn]
				for _, c := range fn.Calls {
					callee := g.Node(c.Callee)
					if callee == nil {
						continue
					}
					if _, seen := reached[callee]; seen {
						continue
					}
					reached[callee] = hotChain{root: chain.root, path: append(append([]string(nil), chain.path...), shortName(callee.Obj))}
					queue = append(queue, callee)
				}
			}
			for _, fn := range g.Order {
				chain, hot := reached[fn]
				if !hot {
					continue
				}
				ctx := chain.describe(fn)
				inPanic := panicRanges(fn)
				reportAllocSites(fn, ctx, report)
				// Calls the engine cannot follow are findings too: an
				// unverified callee could allocate freely. fmt calls are
				// already reported by the site walker, and anything on a
				// panic path is exempt.
				for _, d := range fn.Dynamic {
					if inPanic(d.Site.Pos()) {
						continue
					}
					report(d.Site.Pos(), "in %s: dynamic call (%s) cannot be verified allocation-free; devirtualize or waive with a reason", ctx, d.Desc)
				}
				for _, c := range fn.Calls {
					if g.Node(c.Callee) != nil || allocAllowed(c.Callee) || inPanic(c.Site.Pos()) {
						continue
					}
					if pkg := c.Callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
						continue
					}
					report(c.Site.Pos(), "in %s: call into unanalyzed %s; hot paths may only call module code or vetted stdlib", ctx, shortName(c.Callee))
				}
			}
		},
	}
}

// panicRanges returns a predicate reporting whether a position lies
// inside the arguments of a panic call in fn — the allocation exemption
// zone.
func panicRanges(fn *Func) func(token.Pos) bool {
	type span struct{ lo, hi token.Pos }
	var spans []span
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPanicCall(fn.Pkg, call) {
			spans = append(spans, span{call.Lparen, call.Rparen})
			return false
		}
		return true
	})
	return func(pos token.Pos) bool {
		for _, s := range spans {
			if pos > s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}
}

// allocAllowed reports whether an out-of-module callee is vetted
// allocation-free.
func allocAllowed(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true // error.Error and friends from the universe scope
	}
	if allocAllowedPkgs[pkg.Path()] {
		return true
	}
	if allocAllowedFuncs[pkg.Path()+"."+fn.Name()] {
		return true
	}
	// The encoding/binary byte-order methods (LittleEndian.Uint32 and
	// friends) are pure shifts; the reflection-based top-level
	// Read/Write/Size are not.
	if pkg.Path() == "encoding/binary" && recvOf(fn) != nil {
		return true
	}
	return false
}

// reportAllocSites walks one function body and reports every construct
// that allocates (or may), skipping panic arguments.
func reportAllocSites(fn *Func, ctx string, report func(pos token.Pos, format string, args ...interface{})) {
	p := fn.Pkg
	// Pre-pass: composite literals that are address-taken escape to the
	// heap even when their type alone would not force it.
	addrTaken := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			if cl, ok := ast.Unparen(ue.X).(*ast.CompositeLit); ok {
				addrTaken[cl] = true
			}
		}
		return true
	})
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(p, n) {
				return false // allocations on the panic path are exempt
			}
			reportCallAlloc(p, n, ctx, report)
		case *ast.CompositeLit:
			t := p.Info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "in %s: slice literal allocates its backing array", ctx)
			case *types.Map:
				report(n.Pos(), "in %s: map literal allocates", ctx)
			default:
				if addrTaken[n] {
					report(n.Pos(), "in %s: address-taken composite literal escapes to the heap", ctx)
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "in %s: function literal allocates a closure", ctx)
		case *ast.GoStmt:
			report(n.Pos(), "in %s: go statement allocates a goroutine", ctx)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(p, n) && !isConstExpr(p, n) {
				report(n.Pos(), "in %s: string concatenation allocates", ctx)
				// Children of a concat chain would re-report; one finding
				// per chain is enough.
				return false
			}
		}
		return true
	})
}

// reportCallAlloc handles the call-shaped allocation sources: builtins,
// conversions, fmt, and interface boxing at argument positions.
func reportCallAlloc(p *lint.Package, call *ast.CallExpr, ctx string, report func(pos token.Pos, format string, args ...interface{})) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				report(call.Pos(), "in %s: append may grow and reallocate; preallocate or waive with the amortization argument", ctx)
			case "make":
				report(call.Pos(), "in %s: make allocates", ctx)
			case "new":
				report(call.Pos(), "in %s: new allocates", ctx)
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type.Underlying(), p.Info.TypeOf(call.Args[0])
		if from != nil && !isConstExpr(p, call.Args[0]) {
			if isStringSliceConv(to, from.Underlying()) {
				report(call.Pos(), "in %s: string/byte-slice conversion copies its payload", ctx)
			}
		}
		return
	}
	callee, _ := resolveCall(p, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		report(call.Pos(), "in %s: fmt.%s allocates (formatting state and boxed arguments)", ctx, callee.Name())
		return
	}
	// Interface boxing: a concrete non-pointer argument passed to an
	// interface-typed parameter allocates unless it is nil or already an
	// interface. Pointer-shaped values fit in the interface word.
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) || isPointerShaped(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "in %s: argument boxes a %s into interface %s", ctx, at.String(), pt.String())
	}
}

func isPanicCall(p *lint.Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isStringExpr(p *lint.Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(p *lint.Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

func isStringSliceConv(to, from types.Type) bool {
	toSlice, toIsSlice := to.(*types.Slice)
	fromSlice, fromIsSlice := from.(*types.Slice)
	toStr := isBasicString(to)
	fromStr := isBasicString(from)
	byteOrRune := func(s *types.Slice) bool {
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	if toIsSlice && fromStr {
		return byteOrRune(toSlice)
	}
	if toStr && fromIsSlice {
		return byteOrRune(fromSlice)
	}
	return false
}

func isBasicString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isPointerShaped reports whether values of t fit the interface data word
// without allocating: pointers, maps, channels, funcs, and unsafe
// pointers.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}
