// Package vendored lives under vendor/ and must never be walked: lint
// findings in third-party code are not ours to fix.
package vendored

func init() { panic("vendored code must not be loaded") }
