module loaderfix

go 1.22
