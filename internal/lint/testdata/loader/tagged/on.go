//go:build gc

package tagged

// OnGC is only visible under the gc toolchain, which is what builds us.
const OnGC = true
