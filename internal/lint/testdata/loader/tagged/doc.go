// Package tagged mixes constrained and unconstrained files.
package tagged

// Always is in the unconstrained file.
const Always = true
