//go:build lfolint_never_set

package tagged

// This file must be excluded by its build constraint; if it were loaded,
// the duplicate Always declaration would fail the type check.
const Always = false
