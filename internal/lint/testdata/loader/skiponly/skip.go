//go:build lfolint_never_set

// Package skiponly has no buildable files at all; LoadAll must skip the
// directory instead of failing.
package skiponly

const Skipped = true
