// Package loaderfix is the root package of the loader-test module.
package loaderfix

import "loaderfix/a"

// Root exercises a root-package import of a nested package.
func Root() int { return a.A() }
