// Package b is the innermost package of the loader-test module.
package b

// B anchors the import chain.
func B() int { return 40 }
