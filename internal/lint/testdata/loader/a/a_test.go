package a

// Test files are parsed for comments only, never type-checked: this
// undefined reference must not break loading.
var _ = thisIdentifierDoesNotExistAnywhere
