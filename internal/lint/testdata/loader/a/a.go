// Package a imports its own subpackage, exercising nested resolution.
package a

import "loaderfix/a/b"

// A chains into the doubly nested package.
func A() int { return b.B() + 1 }
