// Fixture for the global-rand rule.
package globalrand

import "math/rand"

// Draw uses the process-global source — forbidden.
func Draw() float64 {
	return rand.Float64() // want "global rand.Float64 draws from the process-wide source"
}

// Pick uses the process-global source — forbidden.
func Pick(n int) int {
	return rand.Intn(n) // want "global rand.Intn draws from the process-wide source"
}

// Seeded constructs an explicitly seeded generator — allowed.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Method calls on a seeded *rand.Rand are allowed.
func UseRand(r *rand.Rand) int {
	return r.Intn(10)
}
