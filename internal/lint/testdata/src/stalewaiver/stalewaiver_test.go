package stalewaiver

import (
	"testing"
	"time"
)

func TestNow(t *testing.T) {
	//lfolint:ignore time-now waivers in test files are always dead: lfolint does not lint tests
	if Now().After(time.Now()) {
		t.Fatal("clock went backwards")
	}
}
