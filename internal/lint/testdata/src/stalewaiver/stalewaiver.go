// Package stalewaiver exercises stale-waiver detection: a directive that
// suppresses a live finding is fine, one whose rule ran but no longer
// fires is itself a finding, and one naming a rule that did not run is
// left alone (staleness undecidable).
package stalewaiver

import "time"

// Now carries a live waiver: the call below still fires time-now.
func Now() time.Time {
	//lfolint:ignore time-now this waiver is live: the call below still reads the clock
	return time.Now()
}

// Stale carries a dead waiver: nothing on the next line reads a clock.
func Stale() int {
	//lfolint:ignore time-now the clock read was refactored away; directive left behind on purpose
	return 42
}

// Undecidable waives a rule the test run does not enable; staleness
// cannot be decided, so no finding.
func Undecidable() int {
	//lfolint:ignore global-rand rule not run in this test; must not be reported stale
	return 7
}
