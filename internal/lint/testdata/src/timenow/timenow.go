// Fixture for the time-now rule.
package timenow

import "time"

// Stamp reads the wall clock — forbidden in the deterministic core.
func Stamp() int64 {
	t := time.Now() // want "time.Now breaks run-to-run reproducibility"
	return t.UnixNano()
}

// FromTrace builds a time from trace data — allowed.
func FromTrace(ts int64) time.Time {
	return time.Unix(0, ts)
}

// Elapsed uses a passed-in reference point — allowed.
func Elapsed(start, now time.Time) time.Duration {
	return now.Sub(start)
}
