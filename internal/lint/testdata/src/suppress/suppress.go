// Fixture for the //lfolint:ignore suppression mechanism, exercised with
// the time-now rule.
package suppress

import "time"

// StandaloneDirective is waived by the comment on the line above.
func StandaloneDirective() int64 {
	//lfolint:ignore time-now fixture demonstrates a justified waiver
	start := time.Now()
	return start.UnixNano()
}

// SameLineDirective is waived by the trailing comment.
func SameLineDirective() int64 {
	return time.Now().UnixNano() //lfolint:ignore time-now same-line waivers work too
}

// WrongRule names a different rule, so time-now still fires.
func WrongRule() int64 {
	//lfolint:ignore float-equal reason given but for an unrelated rule
	return time.Now().UnixNano() // want "time.Now breaks run-to-run reproducibility"
}
