// Fixture for the float-equal rule.
package floateq

import "sort"

// Eq compares floats exactly — forbidden.
func Eq(a, b float64) bool {
	return a == b // want "exact float comparison"
}

// Neq compares floats exactly — forbidden.
func Neq(a, b float32) bool {
	return a != b // want "exact float comparison"
}

// Sentinel compares against a literal 0 — allowed.
func Sentinel(x float64) bool {
	return x == 0
}

// SentinelFlipped has the literal on the left — allowed.
func SentinelFlipped(x float64) bool {
	return 0.0 != x
}

// Comparator uses exact comparison inside a sort predicate — allowed
// (epsilon comparators are not transitive).
func Comparator(xs []float64, idx []int) {
	sort.Slice(idx, func(a, b int) bool {
		if xs[idx[a]] != xs[idx[b]] {
			return xs[idx[a]] > xs[idx[b]]
		}
		return idx[a] < idx[b]
	})
}

type byValue struct{ vals []float64 }

func (b byValue) Len() int      { return len(b.vals) }
func (b byValue) Swap(i, j int) { b.vals[i], b.vals[j] = b.vals[j], b.vals[i] }

// Less methods are ordering predicates — allowed.
func (b byValue) Less(i, j int) bool {
	if b.vals[i] != b.vals[j] {
		return b.vals[i] < b.vals[j]
	}
	return i < j
}

// IntEq compares integers — not this rule's business.
func IntEq(a, b int) bool {
	return a == b
}
