// Fixture for the waitgroup-misuse rule.
package wgmisuse

import "sync"

// AddInside increments the counter from inside the goroutine it guards —
// Wait can observe the zero count and return before the work starts.
func AddInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "wg.Add inside the spawned goroutine"
		defer wg.Done()
	}()
	wg.Wait()
}

// PlainDone calls Done as an ordinary statement — a panic in work() would
// skip it and deadlock Wait.
func PlainDone(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		work()
		wg.Done() // want "wg.Done is not deferred"
	}()
	wg.Wait()
}

// Correct is the sanctioned pattern: Add on the spawning side, Done
// deferred first thing in the goroutine.
func Correct(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// SpawningSide shows the accept-loop shape written as a func literal: the
// rule flags the Add conservatively (an accept loop that holds its own
// count may Add for children safely — use //lfolint:ignore there, or a
// named method, which is out of the rule's FuncLit scope). The nested
// goroutine's plain Done is flagged through the outer walk.
func SpawningSide(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wg.Add(1) // want "wg.Add inside the spawned goroutine"
		go func() {
			work()
			wg.Done() // want "wg.Done is not deferred"
		}()
	}()
	wg.Wait()
}

// NotAWaitGroup has Add/Done methods but is not sync.WaitGroup — ignored.
type NotAWaitGroup struct{ n int }

func (c *NotAWaitGroup) Add(d int) { c.n += d }
func (c *NotAWaitGroup) Done()     { c.n-- }

// Lookalike exercises the type check: same method names, different type.
func Lookalike() {
	var c NotAWaitGroup
	go func() {
		c.Add(1)
		c.Done()
	}()
}
