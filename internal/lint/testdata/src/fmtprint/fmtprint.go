// Fixture for the fmt-print rule.
package fmtprint

import (
	"fmt"
	"io"
	"os"
)

// Report prints to process streams from library code — forbidden.
func Report(n int) {
	fmt.Printf("n=%d\n", n)             // want "fmt.Printf writes to process stdout"
	fmt.Println("done")                 // want "fmt.Println writes to process stdout"
	fmt.Fprintf(os.Stdout, "n=%d\n", n) // want "fmt.Fprintf to a process std stream"
	fmt.Fprintln(os.Stderr, "warn")     // want "fmt.Fprintln to a process std stream"
}

// ToWriter writes through an injected writer — allowed.
func ToWriter(w io.Writer, n int) {
	fmt.Fprintf(w, "n=%d\n", n)
}

// Format produces a value — allowed.
func Format(n int) string {
	return fmt.Sprintf("n=%d", n)
}
