// Fixture for the mutex-copy rule.
package mutexcopy

import "sync"

// Counter carries a lock; copying it forks the lock state.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Wrapped embeds a lock-bearing struct.
type Wrapped struct {
	Counter
	label string
}

// ByValue takes the lock by value — forbidden.
func ByValue(c Counter) int { // want "ByValue passes sync.Mutex by value"
	return c.n
}

// ByPointer shares the lock — allowed.
func ByPointer(c *Counter) int {
	return c.n
}

// Get copies the lock through its receiver — forbidden.
func (c Counter) Get() int { // want "Get passes sync.Mutex by value"
	return c.n
}

// Embedded locks are found through struct recursion — forbidden.
func UseWrapped(w Wrapped) { // want "UseWrapped passes sync.Mutex by value"
	_ = w.label
}

// Copy duplicates an existing lock — forbidden.
func Copy(c *Counter) {
	d := *c // want "assignment copies sync.Mutex by value"
	_ = d.n
}

// Fresh returns a zero-valued lock from a constructor — allowed.
func Fresh() Counter {
	return Counter{}
}

// Range copies the lock every iteration — forbidden.
func Range(cs []Counter) int {
	total := 0
	for _, c := range cs { // want "range value copies sync.Mutex"
		total += c.n
	}
	return total
}

// RangeIndex iterates by index — allowed.
func RangeIndex(cs []Counter) int {
	total := 0
	for i := range cs {
		total += cs[i].n
	}
	return total
}

// Pass hands a dereferenced lock to a callee — forbidden (both the call
// site and the callee's by-value parameter are flagged).
func Pass(c *Counter) {
	take(*c) // want "argument copies sync.Mutex by value"
}

func take(c Counter) int { // want "take passes sync.Mutex by value"
	return c.n
}

// WaitGroups are locks too — forbidden.
func WaitForAll(wg sync.WaitGroup) { // want "WaitForAll passes sync.WaitGroup by value"
	wg.Wait()
}
