// Fixture for the map-order rule.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

// AppendDerived appends computed values in map order — forbidden even
// though a sort follows, because the appended values are not the loop
// variables themselves.
func AppendDerived(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v*2) // want "inside map iteration makes its element order depend on map order"
	}
	sort.Ints(out)
	return out
}

// CollectAndSort is the canonical deterministic idiom — allowed.
func CollectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectNoSort collects keys but never sorts them — forbidden.
func CollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "inside map iteration makes its element order depend on map order"
	}
	return keys
}

// PrintAll writes output in map order — forbidden.
func PrintAll(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "output written inside map iteration"
	}
}

// SumFloats accumulates floats in map order — forbidden (float addition
// is not associative).
func SumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation"
	}
	return sum
}

// SumInts accumulates integers — allowed (exact and commutative).
func SumInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// LocalAppend appends to a slice scoped inside the loop body — allowed.
func LocalAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// SliceAppend ranges over a slice, not a map — allowed.
func SliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
