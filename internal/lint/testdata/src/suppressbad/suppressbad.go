// Fixture for malformed suppression directives: a waiver without a reason
// is itself reported and suppresses nothing. Checked explicitly by
// TestMalformedSuppression rather than via want annotations.
package suppressbad

import "time"

// MissingReason carries a reasonless directive.
func MissingReason() int64 {
	//lfolint:ignore time-now
	return time.Now().UnixNano()
}
