// Fixture for the unchecked-error rule.
package uncheckederr

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

// Drop discards Close's error — forbidden.
func Drop(f *os.File) {
	f.Close() // want "error return of Close is discarded"
}

// DropEncode discards an error from an interface method — forbidden.
func DropEncode(enc interface{ Encode(v interface{}) error }) {
	enc.Encode(1) // want "error return of Encode is discarded"
}

// Handled propagates the error — allowed.
func Handled(f *os.File) error {
	return f.Close()
}

// Explicit discards with an assignment, visibly — allowed.
func Explicit(f *os.File) {
	_ = f.Close()
}

// Terminal output is best-effort by convention — allowed.
func Terminal(n int) {
	fmt.Println("progress", n)
	fmt.Fprintf(os.Stderr, "note %d\n", n)
}

// In-memory buffers document that writes never fail — allowed.
func Buffers(b *bytes.Buffer, sb *strings.Builder) {
	b.WriteString("x")
	sb.WriteString("y")
	fmt.Fprintf(b, "z %d", 1)
}

// NoError calls a function with no error result — not this rule's business.
func NoError(xs []int) {
	clear(xs)
}
