module loaderbad

go 1.22
