//go:build lfolint_never_set

package gone

const Value = 1
