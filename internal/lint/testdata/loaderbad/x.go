// Package loaderbad imports a package whose every file is excluded by
// build constraints: loading must fail with a clear error.
package loaderbad

import "loaderbad/gone"

var _ = gone.Value
