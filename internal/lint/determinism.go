package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// callee resolves a call expression to the package-level function or
// method it invokes, or nil.
func callee(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// calleeIs reports whether call invokes a package-level function of pkgPath
// named one of names (any name if names is empty).
func calleeIs(p *Package, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := callee(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// ruleTimeNow forbids wall-clock reads in the deterministic core: OPT
// labels and trained models must be a pure function of the trace and the
// seed, so timestamps must come from the trace (or an injected clock),
// never from the host.
func ruleTimeNow() Rule {
	return Rule{
		Name: "time-now",
		Doc:  "forbid time.Now in the deterministic core; take timestamps from the trace or an injected clock",
		Run: func(p *Package, report func(pos token.Pos, format string, args ...interface{})) {
			inspect(p, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if calleeIs(p, call, "time", "Now") {
					report(call.Pos(), "time.Now breaks run-to-run reproducibility; use trace timestamps or an injected clock")
				}
				return true
			})
		},
	}
}

// randConstructors are the math/rand functions that build an explicitly
// seeded generator; everything else at package level draws from the
// process-global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// ruleGlobalRand forbids the global math/rand functions (and the
// deprecated rand.Seed) in the deterministic core: all randomness must
// flow from an explicitly seeded *rand.Rand.
func ruleGlobalRand() Rule {
	return Rule{
		Name: "global-rand",
		Doc:  "forbid global math/rand functions in the deterministic core; use an explicitly seeded *rand.Rand",
		Run: func(p *Package, report func(pos token.Pos, format string, args ...interface{})) {
			inspect(p, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, path := range []string{"math/rand", "math/rand/v2"} {
					if calleeIs(p, call, path) {
						fn := callee(p, call)
						if randConstructors[fn.Name()] {
							return true
						}
						report(call.Pos(), "global rand.%s draws from the process-wide source; use an explicitly seeded *rand.Rand", fn.Name())
					}
				}
				return true
			})
		},
	}
}

// ruleMapOrder flags `range` over a map whose body has order-dependent
// effects: appending to an outer slice, writing output, or accumulating
// floating-point sums (float addition is not associative, so iteration
// order changes the result bits). Collecting just the keys is allowed when
// the enclosing function visibly sorts the collector afterwards — that is
// the canonical deterministic pattern.
func ruleMapOrder() Rule {
	return Rule{
		Name: "map-order",
		Doc:  "flag map iteration with order-dependent effects (appends, output, float accumulation)",
		Run: func(p *Package, report func(pos token.Pos, format string, args ...interface{})) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					fn, ok := n.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						return true
					}
					checkMapRanges(p, fn, report)
					return true
				})
			}
		},
	}
}

func checkMapRanges(p *Package, fn *ast.FuncDecl, report func(pos token.Pos, format string, args ...interface{})) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapBody(p, fn, rs, report)
		return true
	})
}

// loopVars returns the objects bound by the range statement's key/value.
func loopVars(p *Package, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := p.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// declaredOutside reports whether ident's object is declared outside the
// given node's extent.
func declaredOutside(p *Package, id *ast.Ident, n ast.Node) (types.Object, bool) {
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return nil, false
	}
	return obj, obj.Pos() < n.Pos() || obj.Pos() > n.End()
}

func checkMapBody(p *Package, fn *ast.FuncDecl, rs *ast.RangeStmt, report func(pos token.Pos, format string, args ...interface{})) {
	lv := loopVars(p, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			switch stmt.Tok {
			case token.ASSIGN, token.DEFINE:
				// x = append(x, ...) into a slice declared outside the loop.
				for i, rhs := range stmt.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(p, call) || i >= len(stmt.Lhs) {
						continue
					}
					id, ok := stmt.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj, outside := declaredOutside(p, id, rs)
					if !outside {
						continue
					}
					if appendsOnlyLoopVars(call, lv, p) && sortedAfter(p, fn, rs, obj) {
						continue // collect-then-sort: the deterministic idiom
					}
					report(stmt.Pos(), "append to %q inside map iteration makes its element order depend on map order; collect keys and sort first", id.Name)
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				// Float accumulation: addition is not associative, so the
				// accumulated bits depend on visit order.
				id, ok := stmt.Lhs[0].(*ast.Ident)
				if !ok {
					break
				}
				if _, outside := declaredOutside(p, id, rs); !outside {
					break
				}
				if isFloat(p.Info.TypeOf(stmt.Lhs[0])) {
					report(stmt.Pos(), "floating-point accumulation into %q inside map iteration is order-dependent; iterate sorted keys", id.Name)
				}
			}
		case *ast.CallExpr:
			if writesOutput(p, stmt) {
				report(stmt.Pos(), "output written inside map iteration appears in map order; iterate sorted keys")
				return false // one finding per write call
			}
		}
		return true
	})
}

func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendsOnlyLoopVars reports whether every appended value is a bare range
// variable — i.e. the loop only collects keys/values.
func appendsOnlyLoopVars(call *ast.CallExpr, lv map[types.Object]bool, p *Package) bool {
	for _, arg := range call.Args[1:] {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || !lv[p.Info.Uses[id]] {
			return false
		}
	}
	return true
}

// sortedAfter reports whether, after the range statement, the enclosing
// function passes obj to a sort.* or slices.Sort* call.
func sortedAfter(p *Package, fn *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		if !calleeIs(p, call, "sort") && !calleeIs(p, call, "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// writesOutput reports whether the call is an fmt print/write or an
// io.Writer-style method — side effects whose order the map dictates.
func writesOutput(p *Package, call *ast.CallExpr) bool {
	if fn := callee(p, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		name := fn.Name()
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		_, isMethod := p.Info.Selections[sel]
		return isMethod
	}
	return false
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
