// Package lint implements lfolint, the repository's custom static
// analyzer. It enforces the invariants the LFO reproduction depends on —
// determinism of the training pipeline, float-comparison safety in the
// numeric kernels, and API hygiene in library code — using only the
// standard library's go/parser, go/ast, go/types, and go/token.
//
// Rules are gated by per-package policy tiers (DefaultPolicy): the
// deterministic core forbids wall clocks and global randomness, the
// numeric kernels forbid exact float equality, and every package is held
// to error-handling and lock-copy hygiene. Individual findings can be
// waived in place with
//
//	//lfolint:ignore <rule> <reason>
//
// on the offending line or the line above it; the reason is mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Rule names the rule that produced it (e.g. "time-now").
	Rule string
	// Message describes the problem and the expected remedy.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Rule is one lint check, run once per applicable package.
type Rule struct {
	// Name identifies the rule in diagnostics and suppression directives.
	Name string
	// Doc is a one-line description, shown by lfolint -rules.
	Doc string
	// Run inspects the package and reports findings.
	Run func(p *Package, report func(pos token.Pos, format string, args ...interface{}))
}

// Scope selects the packages a rule applies to, by module-relative path.
type Scope struct {
	// Include lists path prefixes ("internal/gbdt" matches the package
	// and its subpackages). An empty list matches every package.
	Include []string
	// Exclude lists path prefixes carved out of Include.
	Exclude []string
}

// Matches reports whether the module-relative package path rel is in scope.
func (s Scope) Matches(rel string) bool {
	for _, e := range s.Exclude {
		if matchPrefix(rel, e) {
			return false
		}
	}
	if len(s.Include) == 0 {
		return true
	}
	for _, i := range s.Include {
		if matchPrefix(rel, i) {
			return true
		}
	}
	return false
}

func matchPrefix(rel, sel string) bool {
	return rel == sel || strings.HasPrefix(rel, sel+"/")
}

// Policy maps rule names to the package scope they run in.
type Policy map[string]Scope

// DeterministicCore lists the packages whose output must be bit-identical
// for a given seed: the trace generator, the OPT labeler, the learner, and
// everything the experiment harness assembles from them.
var DeterministicCore = []string{
	"internal/gen",
	"internal/gbdt",
	"internal/opt",
	"internal/mcf",
	"internal/core",
	"internal/experiments",
	"internal/features",
}

// NumericKernels lists the float-heavy packages where exact equality is a
// correctness hazard.
var NumericKernels = []string{
	"internal/gbdt",
	"internal/mcf",
	"internal/mrc",
	"internal/opt",
	"internal/analysis",
}

// DefaultPolicy returns the repository's policy tiers.
func DefaultPolicy() Policy {
	mapOrder := append(append([]string(nil), DeterministicCore...), NumericKernels...)
	return Policy{
		"time-now":         {Include: DeterministicCore},
		"global-rand":      {Include: DeterministicCore},
		"map-order":        {Include: mapOrder},
		"float-equal":      {Include: NumericKernels},
		"unchecked-error":  {},
		"fmt-print":        {Include: []string{"internal"}, Exclude: []string{"internal/cliutil"}},
		"mutex-copy":       {},
		"waitgroup-misuse": {},
	}
}

// AllRules returns every rule lfolint knows, in stable order.
func AllRules() []Rule {
	return []Rule{
		ruleTimeNow(),
		ruleGlobalRand(),
		ruleMapOrder(),
		ruleFloatEqual(),
		ruleUncheckedError(),
		ruleFmtPrint(),
		ruleMutexCopy(),
		ruleWaitGroupMisuse(),
	}
}

// Run applies every rule its policy scopes to each package and returns the
// non-suppressed diagnostics sorted by position.
func Run(pkgs []*Package, rules []Rule, policy Policy) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup, malformed := suppressions(pkg)
		diags = append(diags, malformed...)
		for _, rule := range rules {
			scope, ok := policy[rule.Name]
			if !ok {
				continue // rule not enabled by this policy
			}
			if !scope.Matches(pkg.Rel) {
				continue
			}
			rule.Run(pkg, func(pos token.Pos, format string, args ...interface{}) {
				d := Diagnostic{Pos: pkg.Fset.Position(pos), Rule: rule.Name, Message: fmt.Sprintf(format, args...)}
				if !sup.covers(d) {
					diags = append(diags, d)
				}
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "//lfolint:ignore"

// suppressed records which (file, line) pairs waive which rules.
type suppressed map[string]map[int]map[string]bool

func (s suppressed) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	// A directive suppresses findings on its own line and the line below
	// it, so both trailing and standalone comment placement work.
	return lines[d.Pos.Line][d.Rule] || lines[d.Pos.Line-1][d.Rule]
}

// suppressions scans a package's comments for //lfolint:ignore directives.
// Directives missing a reason are themselves reported: a waiver with no
// justification is exactly the silent regression the linter exists to
// prevent.
func suppressions(pkg *Package) (suppressed, []Diagnostic) {
	sup := make(suppressed)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:     pos,
						Rule:    "suppression",
						Message: "malformed //lfolint:ignore directive: want \"//lfolint:ignore <rule> <reason>\" with a non-empty reason",
					})
					continue
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					sup[pos.Filename] = byLine
				}
				rules := byLine[pos.Line]
				if rules == nil {
					rules = make(map[string]bool)
					byLine[pos.Line] = rules
				}
				for _, r := range strings.Split(fields[0], ",") {
					rules[r] = true
				}
			}
		}
	}
	return sup, malformed
}

// inspect walks every file of the package.
func inspect(p *Package, fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
