// Package lint implements lfolint, the repository's custom static
// analyzer. It enforces the invariants the LFO reproduction depends on —
// determinism of the training pipeline, float-comparison safety in the
// numeric kernels, and API hygiene in library code — using only the
// standard library's go/parser, go/ast, go/types, and go/token.
//
// Rules are gated by per-package policy tiers (DefaultPolicy): the
// deterministic core forbids wall clocks and global randomness, the
// numeric kernels forbid exact float equality, and every package is held
// to error-handling and lock-copy hygiene. Individual findings can be
// waived in place with
//
//	//lfolint:ignore <rule> <reason>
//
// on the offending line or the line above it; the reason is mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Rule names the rule that produced it (e.g. "time-now").
	Rule string
	// Message describes the problem and the expected remedy.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Rule is one lint check. Per-package rules set Run and are invoked once
// per in-scope package; module-wide rules (the interprocedural flow
// analyses) set RunModule instead and are invoked once with every loaded
// package, so they can follow call chains across package boundaries.
// Exactly one of Run and RunModule must be set.
type Rule struct {
	// Name identifies the rule in diagnostics and suppression directives.
	Name string
	// Doc is a one-line description, shown by lfolint -rules.
	Doc string
	// Run inspects one package and reports findings.
	Run func(p *Package, report func(pos token.Pos, format string, args ...interface{}))
	// RunModule inspects the whole module at once. inScope reports
	// whether findings rooted in a package should be reported (the rule
	// may still traverse out-of-scope packages for call-graph context).
	RunModule func(pkgs []*Package, inScope func(*Package) bool, report func(pos token.Pos, format string, args ...interface{}))
}

// Scope selects the packages a rule applies to, by module-relative path.
type Scope struct {
	// Include lists path prefixes ("internal/gbdt" matches the package
	// and its subpackages). An empty list matches every package.
	Include []string
	// Exclude lists path prefixes carved out of Include.
	Exclude []string
}

// Matches reports whether the module-relative package path rel is in scope.
func (s Scope) Matches(rel string) bool {
	for _, e := range s.Exclude {
		if matchPrefix(rel, e) {
			return false
		}
	}
	if len(s.Include) == 0 {
		return true
	}
	for _, i := range s.Include {
		if matchPrefix(rel, i) {
			return true
		}
	}
	return false
}

func matchPrefix(rel, sel string) bool {
	return rel == sel || strings.HasPrefix(rel, sel+"/")
}

// Policy maps rule names to the package scope they run in.
type Policy map[string]Scope

// DeterministicCore lists the packages whose output must be bit-identical
// for a given seed: the trace generator, the OPT labeler, the learner, and
// everything the experiment harness assembles from them.
var DeterministicCore = []string{
	"internal/gen",
	"internal/gbdt",
	"internal/opt",
	"internal/mcf",
	"internal/core",
	"internal/evict",
	"internal/experiments",
	"internal/features",
	"internal/policy/ogd",
	"internal/drift",
}

// NumericKernels lists the float-heavy packages where exact equality is a
// correctness hazard.
var NumericKernels = []string{
	"internal/gbdt",
	"internal/mcf",
	"internal/mrc",
	"internal/opt",
	"internal/analysis",
}

// DefaultPolicy returns the repository's policy tiers. The interprocedural
// flow rules (built in internal/lint/flow) are scoped here alongside the
// syntactic ones: flow-determinism guards the same deterministic core the
// time-now/global-rand rules do, but follows taint through helper chains
// in *any* package; the remaining flow rules are module-wide because
// their findings are rooted wherever the annotation or spawn site lives.
func DefaultPolicy() Policy {
	mapOrder := append(append([]string(nil), DeterministicCore...), NumericKernels...)
	return Policy{
		"time-now":         {Include: DeterministicCore},
		"global-rand":      {Include: DeterministicCore},
		"map-order":        {Include: mapOrder},
		"float-equal":      {Include: NumericKernels},
		"unchecked-error":  {},
		"fmt-print":        {Include: []string{"internal"}, Exclude: []string{"internal/cliutil"}},
		"mutex-copy":       {},
		"waitgroup-misuse": {},
		"flow-determinism": {Include: DeterministicCore},
		"hotpath-alloc":    {},
		"goroutine-join":   {},
		"lock-order":       {},
		StaleWaiverRule:    {},
	}
}

// AllRules returns every rule lfolint knows, in stable order.
func AllRules() []Rule {
	return []Rule{
		ruleTimeNow(),
		ruleGlobalRand(),
		ruleMapOrder(),
		ruleFloatEqual(),
		ruleUncheckedError(),
		ruleFmtPrint(),
		ruleMutexCopy(),
		ruleWaitGroupMisuse(),
	}
}

// StaleWaiverRule names the synthetic rule that flags //lfolint:ignore
// directives which no longer suppress anything. It is emitted by Run
// itself (not by a Rule) because staleness is only decidable after every
// other rule has reported: a directive is stale when all the rules it
// names ran and none of them produced a finding on its line. Enable it by
// including it in the policy; lfolint -only drops it automatically when
// the requested subset could not prove staleness.
const StaleWaiverRule = "stale-waiver"

// Run applies every rule its policy scopes to each package and returns the
// non-suppressed diagnostics sorted by position. Module-wide rules run
// once over the full package list. When the policy enables
// StaleWaiverRule, directives that suppressed nothing are reported too.
func Run(pkgs []*Package, rules []Rule, policy Policy) []Diagnostic {
	sup, diags := collectSuppressions(pkgs)
	ran := make(map[string]bool)
	for _, rule := range rules {
		scope, ok := policy[rule.Name]
		if !ok {
			continue // rule not enabled by this policy
		}
		ran[rule.Name] = true
		report := func(pos token.Pos, format string, args ...interface{}) {
			d := Diagnostic{Pos: pkgs[0].Fset.Position(pos), Rule: rule.Name, Message: fmt.Sprintf(format, args...)}
			if !sup.covers(d) {
				diags = append(diags, d)
			}
		}
		if rule.RunModule != nil {
			if len(pkgs) == 0 {
				continue
			}
			rule.RunModule(pkgs, func(p *Package) bool { return scope.Matches(p.Rel) }, report)
			continue
		}
		for _, pkg := range pkgs {
			if scope.Matches(pkg.Rel) {
				rule.Run(pkg, report)
			}
		}
	}
	if _, ok := policy[StaleWaiverRule]; ok {
		diags = append(diags, staleWaivers(sup, ran)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "//lfolint:ignore"

// directive is one well-formed //lfolint:ignore comment. Run marks it
// used when it suppresses a finding; unused directives become
// stale-waiver findings themselves.
type directive struct {
	pos   token.Position
	rules []string
	// testFile marks directives found in _test.go files, which lfolint
	// never lints: such a waiver can never suppress anything.
	testFile bool
	used     bool
}

// suppressed indexes directives by (filename, line) and keeps the full
// list for the stale-waiver pass.
type suppressed struct {
	byLine map[string]map[int][]*directive
	all    []*directive
}

func (s *suppressed) covers(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	// A directive suppresses findings on its own line and the line below
	// it, so both trailing and standalone comment placement work.
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			for _, r := range dir.rules {
				if r == d.Rule {
					dir.used = true
					return true
				}
			}
		}
	}
	return false
}

// collectSuppressions scans every package's comments (including test
// files, where waivers are inert) for //lfolint:ignore directives.
// Directives missing a reason are reported immediately: a waiver with no
// justification is exactly the silent regression the linter exists to
// prevent.
func collectSuppressions(pkgs []*Package) (*suppressed, []Diagnostic) {
	sup := &suppressed{byLine: make(map[string]map[int][]*directive)}
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
		for i, f := range files {
			isTest := i >= len(pkg.Files)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Pos:     pos,
							Rule:    "suppression",
							Message: "malformed //lfolint:ignore directive: want \"//lfolint:ignore <rule> <reason>\" with a non-empty reason",
						})
						continue
					}
					dir := &directive{pos: pos, rules: strings.Split(fields[0], ","), testFile: isTest}
					byLine := sup.byLine[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]*directive)
						sup.byLine[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], dir)
					sup.all = append(sup.all, dir)
				}
			}
		}
	}
	return sup, malformed
}

// staleWaivers reports directives that provably suppressed nothing: every
// rule the directive names was executed this run and none fired on its
// line. Directives naming a rule that did not run are skipped — their
// staleness is undecidable — except in test files, where no rule ever
// runs and every directive is dead by construction.
func staleWaivers(sup *suppressed, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range sup.all {
		if dir.used {
			continue
		}
		if dir.testFile {
			out = append(out, Diagnostic{
				Pos:     dir.pos,
				Rule:    StaleWaiverRule,
				Message: fmt.Sprintf("//lfolint:ignore %s in a _test.go file has no effect: lfolint does not lint test files; delete the directive", strings.Join(dir.rules, ",")),
			})
			continue
		}
		decidable := true
		for _, r := range dir.rules {
			if !ran[r] {
				decidable = false
				break
			}
		}
		if decidable {
			out = append(out, Diagnostic{
				Pos:     dir.pos,
				Rule:    StaleWaiverRule,
				Message: fmt.Sprintf("stale waiver: rule(s) %s no longer report on this line; delete the //lfolint:ignore directive", strings.Join(dir.rules, ",")),
			})
		}
	}
	return out
}

// inspect walks every file of the package.
func inspect(p *Package, fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
