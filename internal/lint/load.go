package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under lint.
type Package struct {
	// Path is the import path (e.g. "lfo/internal/gbdt").
	Path string
	// Rel is the path relative to the module root ("" for the root
	// package); policy tiers match against this.
	Rel string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// TestFiles are the parsed _test.go files. They are parsed for
	// comments only (suppression auditing), never type-checked or linted.
	TestFiles []*ast.File
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Types is the type-checked package.
	Types *types.Package
	// Info holds type information for every expression in Files.
	Info *types.Info
}

// Loader type-checks every package of a module using only the standard
// library: module-internal imports resolve by path mapping under the
// module root, everything else (stdlib) through go/importer's source
// importer. Test files are excluded — lint targets shipping code.
type Loader struct {
	root string
	mod  string
	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package
	busy map[string]bool
	info *types.Info
}

// NewLoader returns a loader for the module rooted at root with the given
// module path (as declared in go.mod).
func NewLoader(root, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		root: root,
		mod:  modPath,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*Package),
		busy: make(map[string]bool),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
}

// ModulePath reads the module declaration from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s/go.mod", root)
}

// LoadModule discovers and type-checks every package under root (the
// directory containing go.mod), returning them sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	return NewLoader(root, modPath).LoadAll()
}

// LoadAll walks the module tree and type-checks every package directory.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, rerr := filepath.Rel(l.root, path)
			if rerr != nil {
				return rerr
			}
			importPath := l.mod
			if rel != "." {
				importPath = l.mod + "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, importPath)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walk module: %w", err)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // every file excluded by build constraints
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// load type-checks one module package by import path, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.mod), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files, testFiles []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, fmt.Errorf("lint: %w", perr)
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			testFiles = append(testFiles, f)
			continue
		}
		if !buildTagsSatisfied(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[path] = nil // remembered: nothing buildable here
		return nil, nil
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Rel: rel, Dir: dir, Files: files, TestFiles: testFiles, Fset: l.fset, Types: tpkg, Info: l.info}
	l.pkgs[path] = p
	return p, nil
}

// unixGOOS lists the GOOS values the "unix" build tag covers (the subset
// this repository could plausibly build on).
var unixGOOS = map[string]bool{
	"linux": true, "darwin": true, "freebsd": true, "netbsd": true,
	"openbsd": true, "dragonfly": true, "solaris": true, "aix": true,
}

// buildTagsSatisfied evaluates the file's //go:build constraint (if any)
// for the host GOOS/GOARCH under the gc toolchain with cgo disabled.
// Files with no constraint always build. Release tags (go1.x) are assumed
// satisfied — the toolchain compiling lfolint is at least as new as the
// module's go directive.
func buildTagsSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed constraint: let the type-checker complain
			}
			return expr.Eval(func(tag string) bool {
				switch {
				case tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc":
					return true
				case tag == "unix":
					return unixGOOS[runtime.GOOS]
				case strings.HasPrefix(tag, "go1"):
					return true
				}
				return false
			})
		}
	}
	return true
}

// loaderImporter adapts the Loader for use as a types.Importer: module
// packages come from the loader itself, everything else from the stdlib
// source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.mod || strings.HasPrefix(path, l.mod+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no buildable Go source for %s", path)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
