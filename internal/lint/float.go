package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// ruleFloatEqual flags `==` and `!=` between floating-point operands in
// the numeric kernels. Rounding makes exact float equality fragile —
// comparisons should use an epsilon (or restructure to avoid the compare).
// Two forms are sanctioned:
//
//   - comparison against a literal 0 sentinel, which the kernels use for
//     "field never set" checks on values only ever assigned exact
//     constants, and
//   - comparisons inside ordering predicates (sort comparator literals
//     and Less methods), where *exact* comparison is required: an epsilon
//     comparator is not transitive and corrupts the sort.
func ruleFloatEqual() Rule {
	return Rule{
		Name: "float-equal",
		Doc:  "flag ==/!= between floats in numeric kernels (literal-0 sentinels and sort comparators allowed)",
		Run: func(p *Package, report func(pos token.Pos, format string, args ...interface{})) {
			exempt := comparatorRanges(p)
			inspect(p, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.Info.TypeOf(be.X)) || !isFloat(p.Info.TypeOf(be.Y)) {
					return true
				}
				if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
					return true
				}
				for _, r := range exempt {
					if be.Pos() >= r[0] && be.Pos() <= r[1] {
						return true
					}
				}
				report(be.OpPos, "exact float comparison (%s) is rounding-sensitive; compare with an epsilon or restructure", be.Op)
				return true
			})
		},
	}
}

// comparatorRanges returns the position extents of ordering predicates:
// function literals passed to sort.*/slices.* and methods named Less.
// Exact comparison inside them is correct by construction — a comparator
// must induce a strict weak order, which epsilon comparison breaks.
func comparatorRanges(p *Package) [][2]token.Pos {
	var out [][2]token.Pos
	inspect(p, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !calleeIs(p, n, "sort") && !calleeIs(p, n, "slices") {
				return true
			}
			for _, arg := range n.Args {
				if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					out = append(out, [2]token.Pos{fl.Pos(), fl.End()})
				}
			}
		case *ast.FuncDecl:
			if n.Recv != nil && n.Name.Name == "Less" && n.Body != nil {
				out = append(out, [2]token.Pos{n.Body.Pos(), n.Body.End()})
			}
		}
		return true
	})
	return out
}

// isZeroConst reports whether e is a compile-time constant equal to zero —
// the sanctioned sentinel for "never assigned".
func isZeroConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}
