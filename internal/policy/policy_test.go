package policy

import (
	"testing"

	"lfo/internal/gen"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// mkTrace builds a trace from (id, size) pairs with unit costs.
func mkTrace(reqs ...[2]int64) *trace.Trace {
	t := &trace.Trace{}
	for i, r := range reqs {
		t.Requests = append(t.Requests, trace.Request{
			Time: int64(i), ID: trace.ObjectID(r[0]), Size: r[1], Cost: float64(r[1]),
		})
	}
	return t
}

func TestRegistryConstructsAll(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 1<<20, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Errorf("%q has empty Name()", name)
		}
		// Smoke: run a few requests without panicking.
		for i := 0; i < 100; i++ {
			p.Request(trace.Request{Time: int64(i), ID: trace.ObjectID(i % 10), Size: 100, Cost: 100})
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("nope", 100, 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Capacity 3 unit objects; access 1,2,3 then 1; adding 4 evicts 2.
	p := NewLRU(3)
	tr := mkTrace([2]int64{1, 1}, [2]int64{2, 1}, [2]int64{3, 1}, [2]int64{1, 1}, [2]int64{4, 1}, [2]int64{2, 1}, [2]int64{1, 1})
	var hits []bool
	for _, r := range tr.Requests {
		hits = append(hits, p.Request(r))
	}
	want := []bool{false, false, false, true, false, false, true}
	for i := range want {
		if hits[i] != want[i] {
			t.Errorf("request %d: hit = %v, want %v", i, hits[i], want[i])
		}
	}
}

func TestFIFOEvictionOrder(t *testing.T) {
	// Capacity 2; 1,2 inserted; touching 1 does NOT protect it in FIFO.
	p := NewFIFO(2)
	seq := mkTrace([2]int64{1, 1}, [2]int64{2, 1}, [2]int64{1, 1}, [2]int64{3, 1}, [2]int64{1, 1})
	var hits []bool
	for _, r := range seq.Requests {
		hits = append(hits, p.Request(r))
	}
	// 3 evicts 1 (oldest), so the last request to 1 misses.
	want := []bool{false, false, true, false, false}
	for i := range want {
		if hits[i] != want[i] {
			t.Errorf("request %d: hit = %v, want %v", i, hits[i], want[i])
		}
	}
}

func TestLFUKeepsFrequent(t *testing.T) {
	p := NewLFU(2)
	// 1 requested 3×, 2 once, then 3 arrives: 2 must be evicted.
	for _, r := range mkTrace([2]int64{1, 1}, [2]int64{1, 1}, [2]int64{1, 1}, [2]int64{2, 1}, [2]int64{3, 1}).Requests {
		p.Request(r)
	}
	if !p.Request(trace.Request{Time: 10, ID: 1, Size: 1, Cost: 1}) {
		t.Error("frequent object 1 was evicted")
	}
	if p.Request(trace.Request{Time: 11, ID: 2, Size: 1, Cost: 1}) {
		t.Error("infrequent object 2 survived")
	}
}

func TestLRUKPrefersEvictingSingleReference(t *testing.T) {
	// LRU-2: objects with only one reference have infinite backward
	// K-distance and are evicted before twice-referenced objects.
	p := NewLRUK(2, 2)
	reqs := mkTrace(
		[2]int64{1, 1}, [2]int64{1, 1}, // object 1: two refs
		[2]int64{2, 1}, // object 2: one ref (victim)
	)
	for _, r := range reqs.Requests {
		p.Request(r)
	}
	p.Request(trace.Request{Time: 5, ID: 3, Size: 1, Cost: 1}) // evicts 2
	if !p.Request(trace.Request{Time: 6, ID: 1, Size: 1, Cost: 1}) {
		t.Error("object 1 (two refs) was evicted before object 2 (one ref)")
	}
	if p.Request(trace.Request{Time: 7, ID: 2, Size: 1, Cost: 1}) {
		t.Error("object 2 (one ref) survived")
	}
}

func TestGDSFPrefersSmallUnderUnitCost(t *testing.T) {
	// With equal frequency and cost, GDSF priority = L + C/S favors
	// keeping small objects.
	p := NewGDSF(100)
	p.Request(trace.Request{Time: 0, ID: 1, Size: 60, Cost: 1})
	p.Request(trace.Request{Time: 1, ID: 2, Size: 40, Cost: 1})
	// Cache full (100/100). Object 3 (40B) must evict the large 1 first.
	p.Request(trace.Request{Time: 2, ID: 3, Size: 40, Cost: 1})
	// Probe 2 first (a hit does not disturb residency), then 1.
	if !p.Request(trace.Request{Time: 3, ID: 2, Size: 40, Cost: 1}) {
		t.Error("small object 2 was evicted")
	}
	if p.Request(trace.Request{Time: 4, ID: 1, Size: 60, Cost: 1}) {
		t.Error("large object 1 survived over small object 2")
	}
}

func TestLFUDAAgingAllowsTurnover(t *testing.T) {
	// A formerly hot object must eventually drain after the mix shifts.
	p := NewLFUDA(2)
	for i := 0; i < 100; i++ {
		p.Request(trace.Request{Time: int64(i), ID: 1, Size: 1, Cost: 1})
	}
	// New phase: objects 2 and 3 alternate. With aging, they displace 1's
	// huge frequency after a bounded number of misses.
	turnedOver := false
	for i := 0; i < 50 && !turnedOver; i++ {
		p.Request(trace.Request{Time: int64(100 + 2*i), ID: 2, Size: 1, Cost: 1})
		hit3 := p.Request(trace.Request{Time: int64(101 + 2*i), ID: 3, Size: 1, Cost: 1})
		hit2 := p.Request(trace.Request{Time: int64(102 + 2*i), ID: 2, Size: 1, Cost: 1})
		if hit2 || hit3 {
			turnedOver = true
		}
	}
	if !turnedOver {
		t.Error("LFUDA never aged out the stale hot object")
	}
	// Plain LFU, in contrast, never recovers in this scenario.
	q := NewLFU(2)
	for i := 0; i < 100; i++ {
		q.Request(trace.Request{Time: int64(i), ID: 1, Size: 1, Cost: 1})
	}
	lfuHit := false
	for i := 0; i < 50; i++ {
		if q.Request(trace.Request{Time: int64(100 + 2*i), ID: 2, Size: 1, Cost: 1}) {
			lfuHit = true
		}
		q.Request(trace.Request{Time: int64(101 + 2*i), ID: 3, Size: 1, Cost: 1})
	}
	if lfuHit {
		t.Error("plain LFU unexpectedly aged out the hot object (test premise broken)")
	}
}

func TestS4LRUPromotion(t *testing.T) {
	// Hits promote across segments; a once-hit object outlives streams of
	// one-timers.
	p := NewS4LRU(8)
	p.Request(trace.Request{Time: 0, ID: 1, Size: 1, Cost: 1})
	p.Request(trace.Request{Time: 1, ID: 1, Size: 1, Cost: 1}) // promote to seg 1
	// Stream 20 distinct one-timers through: they churn segment 0 only.
	for i := 0; i < 20; i++ {
		p.Request(trace.Request{Time: int64(2 + i), ID: trace.ObjectID(100 + i), Size: 1, Cost: 1})
	}
	if !p.Request(trace.Request{Time: 50, ID: 1, Size: 1, Cost: 1}) {
		t.Error("promoted object was churned out of S4LRU")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	tr, err := gen.Generate(gen.WebMix(5000, 3))
	if err != nil {
		t.Fatal(err)
	}
	a := sim.Run(tr, NewRandom(1<<20, 7), sim.Options{})
	b := sim.Run(tr, NewRandom(1<<20, 7), sim.Options{})
	if a.Hits != b.Hits {
		t.Error("same seed, different results")
	}
}

// TestAllPoliciesRespectCapacity runs every policy over a mixed trace and
// checks (via a shadow accounting wrapper) they never exceed capacity.
func TestAllPoliciesRespectCapacity(t *testing.T) {
	tr, err := gen.Generate(gen.CDNMix(8000, 11))
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 8 << 20
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := New(name, capacity, 1)
			if err != nil {
				t.Fatal(err)
			}
			m := sim.Run(tr, p, sim.Options{})
			if m.Requests != tr.Len() {
				t.Errorf("metrics requests %d != trace %d", m.Requests, tr.Len())
			}
			// Feasibility: replay hits; every hit must be to an object
			// requested before (no phantom hits).
			seen := map[trace.ObjectID]bool{}
			q, _ := New(name, capacity, 1)
			for _, r := range tr.Requests {
				if q.Request(r) && !seen[r.ID] {
					t.Fatalf("hit on never-before-seen object %d", r.ID)
				}
				seen[r.ID] = true
			}
		})
	}
}

// TestHitRatiosSane: on a skewed web trace with a reasonably large cache,
// every policy must beat 5% OHR, and smarter policies must beat LRU in
// BHR terms... at least GDSF should beat RND.
func TestHitRatiosSane(t *testing.T) {
	tr, err := gen.Generate(gen.WebMix(30000, 5))
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 4 << 20
	results := map[string]*sim.Metrics{}
	for _, name := range Names() {
		p, _ := New(name, capacity, 1)
		results[name] = sim.Run(tr, p, sim.Options{Warmup: 5000})
	}
	for name, m := range results {
		if m.OHR() < 0.02 {
			t.Errorf("%s OHR = %.4f, implausibly low", name, m.OHR())
		}
		if m.OHR() > 0.999 {
			t.Errorf("%s OHR = %.4f, implausibly high", name, m.OHR())
		}
	}
	if results["gdsf"].OHR() <= results["rnd"].OHR() {
		t.Errorf("GDSF OHR %.4f <= RND %.4f", results["gdsf"].OHR(), results["rnd"].OHR())
	}
}

// TestOversizedObjectsBypassed: objects larger than the cache can never
// hit nor corrupt accounting.
func TestOversizedObjectsBypassed(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if p.Request(trace.Request{Time: int64(i), ID: 1, Size: 5000, Cost: 5000}) {
				t.Errorf("%s: oversized object hit", name)
			}
		}
	}
}
