// Package policy implements the caching systems the paper compares LFO
// against (Fig 1 and Fig 6): RND, FIFO, LRU, LRU-K, LFU, LFUDA, GDSF,
// GD-Wheel, S4LRU, AdaptSize, Hyperbolic, LHD, a model-free RL baseline
// (RLC), and a TinyLFU extension. All policies implement sim.Policy, are
// byte-accurate, and are deterministic given their construction
// parameters.
package policy

import (
	"fmt"
	"sort"

	"lfo/internal/policy/ogd"
	"lfo/internal/sim"
)

// Constructor builds a policy instance for a given cache capacity (bytes)
// and deterministic seed (used only by randomized policies).
type Constructor func(capacity int64, seed int64) sim.Policy

// registry maps policy names to constructors.
var registry = map[string]Constructor{
	"rnd":        func(c, s int64) sim.Policy { return NewRandom(c, s) },
	"fifo":       func(c, s int64) sim.Policy { return NewFIFO(c) },
	"lru":        func(c, s int64) sim.Policy { return NewLRU(c) },
	"lruk":       func(c, s int64) sim.Policy { return NewLRUK(c, 2) },
	"lfu":        func(c, s int64) sim.Policy { return NewLFU(c) },
	"lfuda":      func(c, s int64) sim.Policy { return NewLFUDA(c) },
	"gdsf":       func(c, s int64) sim.Policy { return NewGDSF(c) },
	"gdwheel":    func(c, s int64) sim.Policy { return NewGDWheel(c) },
	"s4lru":      func(c, s int64) sim.Policy { return NewS4LRU(c) },
	"adaptsize":  func(c, s int64) sim.Policy { return NewAdaptSize(c, s) },
	"hyperbolic": func(c, s int64) sim.Policy { return NewHyperbolic(c, s) },
	"lhd":        func(c, s int64) sim.Policy { return NewLHD(c, s) },
	"tinylfu":    func(c, s int64) sim.Policy { return NewTinyLFU(c) },
	"rlc":        func(c, s int64) sim.Policy { return NewRLC(c, s) },
	"ogd": func(c, s int64) sim.Policy {
		p, err := ogd.New(ogd.Config{CacheSize: c})
		if err != nil {
			panic(err) // only reachable with a non-positive capacity
		}
		return p
	},
}

// New constructs a policy by name. Names returns the valid names.
func New(name string, capacity, seed int64) (sim.Policy, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (valid: %v)", name, Names())
	}
	return c(capacity, seed), nil
}

// Names returns the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
