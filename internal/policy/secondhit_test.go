package policy

import (
	"testing"

	"lfo/internal/trace"
)

func shReq(id trace.ObjectID) trace.Request {
	return trace.Request{ID: id, Size: 100, Cost: 1}
}

func TestSecondHitCensorAdmitsOnSecondRequest(t *testing.T) {
	p := NewSecondHitCensor(0)
	if ok, lik := p.Admit(shReq(1), 0); ok || lik != 0 {
		t.Errorf("first request admitted (ok=%v lik=%v)", ok, lik)
	}
	p.Observe(shReq(1))
	if ok, lik := p.Admit(shReq(1), 0); !ok || lik != 1 {
		t.Errorf("second request not admitted (ok=%v lik=%v)", ok, lik)
	}
	// Other objects remain unseen.
	if ok, _ := p.Admit(shReq(2), 0); ok {
		t.Error("unseen object admitted")
	}
}

func TestSecondHitCensorRotatesGenerations(t *testing.T) {
	p := NewSecondHitCensor(2)
	// Fill generation 1 with {1,2}, then force two rotations with {3,4}
	// and {5,6}: object 1 must be forgotten, recent ones remembered.
	for id := trace.ObjectID(1); id <= 6; id++ {
		p.Observe(shReq(id))
	}
	if ok, _ := p.Admit(shReq(1), 0); ok {
		t.Error("object from two generations ago still admitted")
	}
	for id := trace.ObjectID(5); id <= 6; id++ {
		if ok, _ := p.Admit(shReq(id), 0); !ok {
			t.Errorf("recent object %d not admitted", id)
		}
	}
	// Memory stays bounded by 2×maxIDs.
	if total := len(p.cur) + len(p.prev); total > 4 {
		t.Errorf("censor remembers %d IDs, bound is 4", total)
	}
}

func TestSecondHitCensorRepeatsDoNotRotate(t *testing.T) {
	p := NewSecondHitCensor(2)
	p.Observe(shReq(1))
	p.Observe(shReq(2))
	// Re-observing a known object at the bound must not discard history.
	p.Observe(shReq(1))
	p.Observe(shReq(2))
	for id := trace.ObjectID(1); id <= 2; id++ {
		if ok, _ := p.Admit(shReq(id), 0); !ok {
			t.Errorf("repeated object %d forgotten by spurious rotation", id)
		}
	}
}

// remembered counts the distinct IDs across both generations.
func (p *SecondHitCensor) remembered() int {
	n := len(p.prev)
	for id := range p.cur {
		if _, ok := p.prev[id]; !ok {
			n++
		}
	}
	return n
}

// TestSecondHitCensorMemoryBound pins the documented invariant: once the
// first generation has filled, the censor remembers between maxIDs and
// 2×maxIDs distinct objects at every step of an all-distinct stream.
func TestSecondHitCensorMemoryBound(t *testing.T) {
	const maxIDs = 8
	p := NewSecondHitCensor(maxIDs)
	for id := trace.ObjectID(1); id <= 10*maxIDs; id++ {
		p.Observe(shReq(id))
		if n := p.remembered(); int(id) >= maxIDs && (n < maxIDs || n > 2*maxIDs) {
			t.Fatalf("after %d distinct observes: remembered %d IDs, want in [%d, %d]",
				id, n, maxIDs, 2*maxIDs)
		}
	}
}

// TestSecondHitCensorBurstRetention pins the rotation-order fix: a
// rotation must happen only after the triggering insert lands, so every
// observed ID survives at least maxIDs subsequent distinct-new observes.
// With the old rotate-before-insert order, a single brand-new ID arriving
// at a full current generation dropped the previous generation
// immediately — the new ID "bought" its slot by flushing history.
func TestSecondHitCensorBurstRetention(t *testing.T) {
	const maxIDs = 8
	for offset := 0; offset < maxIDs; offset++ {
		p := NewSecondHitCensor(maxIDs)
		// Position the victim ID at every possible phase of a generation.
		var next trace.ObjectID = 1
		for i := 0; i < offset; i++ {
			p.Observe(shReq(next))
			next++
		}
		victim := next
		p.Observe(shReq(victim))
		next++
		// A burst of maxIDs-1 distinct one-hit wonders must not evict it.
		for i := 0; i < maxIDs-1; i++ {
			p.Observe(shReq(next))
			next++
			if ok, _ := p.Admit(shReq(victim), 0); !ok {
				t.Fatalf("offset %d: victim forgotten after %d distinct observes, want >= %d",
					offset, i+1, maxIDs-1)
			}
		}
	}
}

func TestSecondHitCensorUnbounded(t *testing.T) {
	p := NewSecondHitCensor(-1)
	for id := trace.ObjectID(0); id < 1000; id++ {
		p.Observe(shReq(id))
	}
	for id := trace.ObjectID(0); id < 1000; id++ {
		if ok, _ := p.Admit(shReq(id), 0); !ok {
			t.Fatalf("unbounded censor forgot object %d", id)
		}
	}
}
