package policy

import (
	"testing"

	"lfo/internal/trace"
)

func shReq(id trace.ObjectID) trace.Request {
	return trace.Request{ID: id, Size: 100, Cost: 1}
}

func TestSecondHitCensorAdmitsOnSecondRequest(t *testing.T) {
	p := NewSecondHitCensor(0)
	if ok, lik := p.Admit(shReq(1), 0); ok || lik != 0 {
		t.Errorf("first request admitted (ok=%v lik=%v)", ok, lik)
	}
	p.Observe(shReq(1))
	if ok, lik := p.Admit(shReq(1), 0); !ok || lik != 1 {
		t.Errorf("second request not admitted (ok=%v lik=%v)", ok, lik)
	}
	// Other objects remain unseen.
	if ok, _ := p.Admit(shReq(2), 0); ok {
		t.Error("unseen object admitted")
	}
}

func TestSecondHitCensorRotatesGenerations(t *testing.T) {
	p := NewSecondHitCensor(2)
	// Fill generation 1 with {1,2}, then force two rotations with {3,4}
	// and {5,6}: object 1 must be forgotten, recent ones remembered.
	for id := trace.ObjectID(1); id <= 6; id++ {
		p.Observe(shReq(id))
	}
	if ok, _ := p.Admit(shReq(1), 0); ok {
		t.Error("object from two generations ago still admitted")
	}
	for id := trace.ObjectID(5); id <= 6; id++ {
		if ok, _ := p.Admit(shReq(id), 0); !ok {
			t.Errorf("recent object %d not admitted", id)
		}
	}
	// Memory stays bounded by 2×maxIDs.
	if total := len(p.cur) + len(p.prev); total > 4 {
		t.Errorf("censor remembers %d IDs, bound is 4", total)
	}
}

func TestSecondHitCensorRepeatsDoNotRotate(t *testing.T) {
	p := NewSecondHitCensor(2)
	p.Observe(shReq(1))
	p.Observe(shReq(2))
	// Re-observing a known object at the bound must not discard history.
	p.Observe(shReq(1))
	p.Observe(shReq(2))
	for id := trace.ObjectID(1); id <= 2; id++ {
		if ok, _ := p.Admit(shReq(id), 0); !ok {
			t.Errorf("repeated object %d forgotten by spurious rotation", id)
		}
	}
}

func TestSecondHitCensorUnbounded(t *testing.T) {
	p := NewSecondHitCensor(-1)
	for id := trace.ObjectID(0); id < 1000; id++ {
		p.Observe(shReq(id))
	}
	for id := trace.ObjectID(0); id < 1000; id++ {
		if ok, _ := p.Admit(shReq(id), 0); !ok {
			t.Fatalf("unbounded censor forgot object %d", id)
		}
	}
}
