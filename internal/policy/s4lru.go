package policy

import (
	"container/list"

	"lfo/internal/sim"
	"lfo/internal/trace"
)

// s4Segments is S4LRU's queue count (Huang et al., SOSP 2013 [33]).
const s4Segments = 4

// S4LRU is segmented LRU with four equally sized segments. Objects enter
// the lowest segment; a hit promotes an object to the head of the next
// higher segment. When a segment overflows, its tail demotes to the head
// of the segment below; overflow of the lowest segment evicts.
type S4LRU struct {
	store    *sim.Store[*s4Meta]
	segs     [s4Segments]*list.List // front = most recent
	segBytes [s4Segments]int64
	segCap   int64
}

type s4Meta struct {
	id   trace.ObjectID
	elem *list.Element
	seg  int
	size int64
}

// NewS4LRU returns a four-segment segmented-LRU cache.
func NewS4LRU(capacity int64) *S4LRU {
	p := &S4LRU{store: sim.NewStore[*s4Meta](capacity), segCap: capacity / s4Segments}
	if p.segCap < 1 {
		p.segCap = 1
	}
	for i := range p.segs {
		p.segs[i] = list.New()
	}
	return p
}

// Name implements sim.Policy.
func (p *S4LRU) Name() string { return "S4LRU" }

// insert places an object at the head of segment s and rebalances
// overflow downwards, evicting from segment 0.
func (p *S4LRU) insert(m *s4Meta, s int) {
	m.seg = s
	m.elem = p.segs[s].PushFront(m)
	p.segBytes[s] += m.size
	// Cascade overflow down the segments.
	for i := s; i >= 1; i-- {
		for p.segBytes[i] > p.segCap {
			tail := p.segs[i].Back()
			tm := tail.Value.(*s4Meta)
			p.segs[i].Remove(tail)
			p.segBytes[i] -= tm.size
			tm.seg = i - 1
			tm.elem = p.segs[i-1].PushFront(tm)
			p.segBytes[i-1] += tm.size
		}
	}
	p.evictOverflow()
}

// evictOverflow evicts from segment 0 while the total exceeds capacity.
func (p *S4LRU) evictOverflow() {
	for p.store.Used() > p.store.Capacity() || p.segBytes[0] > p.segCap {
		tail := p.segs[0].Back()
		if tail == nil {
			return
		}
		tm := tail.Value.(*s4Meta)
		p.segs[0].Remove(tail)
		p.segBytes[0] -= tm.size
		p.store.Remove(tm.id)
	}
}

// Request implements sim.Policy.
func (p *S4LRU) Request(r trace.Request) bool {
	if e := p.store.Get(r.ID); e != nil {
		m := e.Payload
		// Promote to the next segment (capped at the top).
		p.segs[m.seg].Remove(m.elem)
		p.segBytes[m.seg] -= m.size
		next := m.seg + 1
		if next >= s4Segments {
			next = s4Segments - 1
		}
		p.insert(m, next)
		return true
	}
	if r.Size > p.store.Capacity() || r.Size > p.segCap {
		return false
	}
	e := p.store.Add(r.ID, r.Size)
	m := &s4Meta{size: r.Size, id: r.ID}
	e.Payload = m
	p.insert(m, 0)
	return false
}
