package policy

import (
	"testing"

	"lfo/internal/trace"
)

// TestOversizedObjectRejectedByAllPolicies feeds every registered policy a
// request larger than the cache and pins the required guard: the policy
// must return a miss without touching its eviction loop. A policy missing
// the `r.Size > capacity` check either panics in Store.Add or spins
// evicting a cache that can never fit the object.
func TestOversizedObjectRejectedByAllPolicies(t *testing.T) {
	const capacity = 1 << 20
	oversized := trace.Request{ID: 1 << 40, Size: capacity + 1, Cost: 1}

	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p, err := New(name, capacity, 1)
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}

			// The hardest case first: an oversized request against an empty
			// cache, where a broken eviction loop has nothing to evict.
			if p.Request(oversized) {
				t.Error("oversized request against empty cache reported a hit")
			}

			// Warm the cache with admissible objects, then retry — the
			// guard must also fire before evicting resident objects.
			for i := 0; i < 64; i++ {
				r := trace.Request{Time: int64(i), ID: trace.ObjectID(i), Size: 32 << 10, Cost: 1}
				p.Request(r)
				p.Request(r)
			}
			oversized.Time = 64
			if p.Request(oversized) {
				t.Error("oversized request against warm cache reported a hit")
			}

			// The policy must still function afterwards: a small object
			// requested repeatedly must eventually hit (probabilistic and
			// doorkeeper admissions need a few tries, so allow many).
			hot := trace.Request{ID: 1 << 41, Size: 1 << 10, Cost: 1}
			hits := 0
			for i := 0; i < 200; i++ {
				hot.Time = int64(65 + i)
				if p.Request(hot) {
					hits++
				}
			}
			if hits == 0 {
				t.Error("hot object never hit after oversized request")
			}
		})
	}
}

// TestOversizedEqualToCapacityAdmits pins the boundary: an object of
// exactly the capacity is admissible, not oversized.
func TestOversizedEqualToCapacityAdmits(t *testing.T) {
	const capacity = 1 << 20
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p, err := New(name, capacity, 1)
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			r := trace.Request{ID: 7, Size: capacity, Cost: 1}
			p.Request(r)
			r.Time = 1
			if !p.Request(r) {
				t.Skipf("policy %s declined a capacity-sized object (allowed, but not a hit)", name)
			}
		})
	}
}
