package policy

import (
	"container/list"
	"math/bits"

	"lfo/internal/sim"
	"lfo/internal/trace"
)

// GD-Wheel geometry: wheelLevels hierarchical wheels of wheelSlots slots
// each cover cost values up to wheelSlots^wheelLevels - 1.
const (
	wheelSlots  = 256
	wheelLevels = 4
)

// GDWheel implements the Greedy-Dual cost-aware policy with hierarchical
// cost wheels (Li & Cox, EuroSys 2015 [49]). Greedy-Dual assigns each
// object the priority H = L + C (L the global age, C the retrieval cost)
// and evicts the minimum; GD-Wheel makes this O(1) by placing objects on
// timing-wheel-like cost wheels and representing L as the wheel hands.
// A hit restores the object's priority by repositioning it C slots ahead
// of the hand. Per-level occupancy bitmaps let the hands jump directly to
// the next occupied slot, so evictions stay O(1) even when costs span the
// full wheel range (CDN byte costs do).
type GDWheel struct {
	store    *sim.Store[*gdwEntry]
	wheels   [wheelLevels][wheelSlots]*list.List
	occupied [wheelLevels]slotmap
	hand     [wheelLevels]int
	count    int // total queued entries, to guard hand advancement
}

// gdwEntry locates an object on the wheels.
type gdwEntry struct {
	elem      *list.Element
	level     int
	slot      int
	remainder int64 // cost below this level's resolution, for migration
	id        trace.ObjectID
}

// NewGDWheel returns a Greedy-Dual cache backed by cost wheels.
func NewGDWheel(capacity int64) *GDWheel {
	p := &GDWheel{store: sim.NewStore[*gdwEntry](capacity)}
	for l := 0; l < wheelLevels; l++ {
		for s := 0; s < wheelSlots; s++ {
			p.wheels[l][s] = list.New()
		}
	}
	return p
}

// Name implements sim.Policy.
func (p *GDWheel) Name() string { return "GD-Wheel" }

// levelSpan[l] = wheelSlots^l, the cost covered by one slot of level l.
var levelSpan = func() [wheelLevels + 1]int64 {
	var s [wheelLevels + 1]int64
	s[0] = 1
	for i := 1; i <= wheelLevels; i++ {
		s[i] = s[i-1] * wheelSlots
	}
	return s
}()

// costUnits quantizes a retrieval cost onto the wheel range [1, max].
func costUnits(c float64) int64 {
	u := int64(c)
	if u < 1 {
		u = 1
	}
	if max := levelSpan[wheelLevels] - 1; u > max {
		u = max
	}
	return u
}

// place inserts an entry c cost units ahead of the hands.
func (p *GDWheel) place(e *gdwEntry, c int64) {
	level := 0
	for level+1 < wheelLevels && c >= levelSpan[level+1] {
		level++
	}
	offset := c / levelSpan[level]
	e.level = level
	e.slot = int((int64(p.hand[level]) + offset) % wheelSlots)
	e.remainder = c % levelSpan[level]
	e.elem = p.wheels[level][e.slot].PushBack(e)
	p.occupied[level].set(e.slot)
	p.count++
}

// unlink removes an entry from its wheel slot.
func (p *GDWheel) unlink(e *gdwEntry) {
	l := p.wheels[e.level][e.slot]
	l.Remove(e.elem)
	if l.Len() == 0 {
		p.occupied[e.level].clear(e.slot)
	}
	e.elem = nil
	p.count--
}

// evictOne moves the hands to the next due object and evicts it.
func (p *GDWheel) evictOne() {
	if p.count == 0 {
		panic("policy: GDWheel evict with empty wheels")
	}
	for guard := 0; ; guard++ {
		if guard > wheelLevels*wheelSlots {
			panic("policy: GDWheel hand sweep failed to locate entries")
		}
		if s, ok := p.occupied[0].next(p.hand[0]); ok {
			p.hand[0] = s
			e := p.wheels[0][s].Front().Value.(*gdwEntry)
			p.unlink(e)
			p.store.Remove(e.id)
			return
		}
		// Level 0 exhausted for this rotation: wrap and pull the next
		// occupied higher-level slot down.
		p.hand[0] = 0
		p.pull(1)
	}
}

// pull advances level l's hand to its next occupied slot — cascading to
// level l+1 when this rotation of level l is exhausted — and migrates that
// slot's entries down to finer wheels. Migration always places entries at
// levels strictly below l (remainders are below this level's resolution),
// so after pull returns, the caller re-scans its own level.
func (p *GDWheel) pull(l int) {
	if l >= wheelLevels {
		// Carry beyond the top wheel is vacuous: lower levels wrap and
		// re-scan entries placed for their next rotation.
		return
	}
	if s, ok := p.occupied[l].next(p.hand[l] + 1); ok {
		p.migrate(l, s)
		return
	}
	// This rotation of level l is exhausted: wrap, carry into level l+1
	// (which migrates entries into levels <= l), then forward anything
	// now due on this level — including entries that had been placed
	// "behind the hand" for this new rotation.
	p.hand[l] = 0
	p.pull(l + 1)
	if s, ok := p.occupied[l].next(0); ok {
		p.migrate(l, s)
	}
}

// migrate moves level l's hand to slot s and re-places the slot's entries
// on finer wheels according to their remainders.
func (p *GDWheel) migrate(l, s int) {
	p.hand[l] = s
	slot := p.wheels[l][s]
	for slot.Len() > 0 {
		e := slot.Front().Value.(*gdwEntry)
		p.unlink(e)
		p.place(e, e.remainder)
	}
}

// Request implements sim.Policy.
func (p *GDWheel) Request(r trace.Request) bool {
	if e := p.store.Get(r.ID); e != nil {
		// Hit: restore priority to H = L + C.
		ent := e.Payload
		p.unlink(ent)
		p.place(ent, costUnits(r.Cost))
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	for !p.store.Fits(r.Size) {
		p.evictOne()
	}
	e := p.store.Add(r.ID, r.Size)
	ent := &gdwEntry{id: r.ID}
	e.Payload = ent
	p.place(ent, costUnits(r.Cost))
	return false
}

// slotmap is a 256-bit occupancy bitmap.
type slotmap [wheelSlots / 64]uint64

func (m *slotmap) set(i int)   { m[i/64] |= 1 << (i % 64) }
func (m *slotmap) clear(i int) { m[i/64] &^= 1 << (i % 64) }

// next returns the first occupied slot >= from, if any.
func (m *slotmap) next(from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	w := from / 64
	// Mask off bits below `from` in the first word.
	cur := m[w] &^ ((1 << (from % 64)) - 1)
	for {
		if cur != 0 {
			return w*64 + bits.TrailingZeros64(cur), true
		}
		w++
		if w >= len(m) {
			return 0, false
		}
		cur = m[w]
	}
}
