package policy

import (
	"math/rand"

	"lfo/internal/pq"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// Random admits everything and evicts uniformly random victims (RND in
// Fig 1 of the paper).
type Random struct {
	store *sim.Store[int] // payload: index into ids
	ids   []trace.ObjectID
	rng   *rand.Rand
}

// NewRandom returns a random-eviction cache.
func NewRandom(capacity, seed int64) *Random {
	return &Random{store: sim.NewStore[int](capacity), rng: rand.New(rand.NewSource(seed))}
}

// Name implements sim.Policy.
func (p *Random) Name() string { return "RND" }

// Request implements sim.Policy.
func (p *Random) Request(r trace.Request) bool {
	if p.store.Has(r.ID) {
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	for !p.store.Fits(r.Size) {
		i := p.rng.Intn(len(p.ids))
		victim := p.ids[i]
		last := len(p.ids) - 1
		p.ids[i] = p.ids[last]
		p.store.Get(p.ids[i]).Payload = i
		p.ids = p.ids[:last]
		p.store.Remove(victim)
	}
	e := p.store.Add(r.ID, r.Size)
	e.Payload = len(p.ids)
	p.ids = append(p.ids, r.ID)
	return false
}

// FIFO evicts in insertion order. The queue is threaded through the store
// entries, so admissions reuse recycled entries instead of allocating.
type FIFO struct {
	store *sim.Store[links]
	queue entryList // head = oldest
}

// NewFIFO returns a first-in-first-out cache.
func NewFIFO(capacity int64) *FIFO {
	return &FIFO{store: sim.NewStore[links](capacity)}
}

// Name implements sim.Policy.
func (p *FIFO) Name() string { return "FIFO" }

// Request implements sim.Policy.
func (p *FIFO) Request(r trace.Request) bool {
	if p.store.Has(r.ID) {
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	for !p.store.Fits(r.Size) {
		oldest := p.queue.head
		p.queue.remove(oldest)
		p.store.Remove(oldest.ID)
	}
	p.queue.pushBack(p.store.Add(r.ID, r.Size))
	return false
}

// LRU evicts the least recently used object. The recency list is threaded
// through the store entries, so admissions reuse recycled entries instead
// of allocating.
type LRU struct {
	store *sim.Store[links]
	lru   entryList // head = most recent
}

// NewLRU returns a least-recently-used cache.
func NewLRU(capacity int64) *LRU {
	return &LRU{store: sim.NewStore[links](capacity)}
}

// Name implements sim.Policy.
func (p *LRU) Name() string { return "LRU" }

// Request implements sim.Policy.
func (p *LRU) Request(r trace.Request) bool {
	if e := p.store.Get(r.ID); e != nil {
		p.lru.moveToFront(e)
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	for !p.store.Fits(r.Size) {
		tail := p.lru.tail
		p.lru.remove(tail)
		p.store.Remove(tail.ID)
	}
	p.lru.pushFront(p.store.Add(r.ID, r.Size))
	return false
}

// LFU evicts the least frequently used object (in-cache frequency).
type LFU struct {
	store *sim.Store[int64] // payload: frequency
	pq    *pq.Queue
}

// NewLFU returns a least-frequently-used cache.
func NewLFU(capacity int64) *LFU {
	return &LFU{store: sim.NewStore[int64](capacity), pq: pq.New()}
}

// Name implements sim.Policy.
func (p *LFU) Name() string { return "LFU" }

// Request implements sim.Policy.
func (p *LFU) Request(r trace.Request) bool {
	if e := p.store.Get(r.ID); e != nil {
		e.Payload++
		p.pq.Update(r.ID, float64(e.Payload))
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	for !p.store.Fits(r.Size) {
		id, _ := p.pq.PopMin()
		p.store.Remove(id)
	}
	e := p.store.Add(r.ID, r.Size)
	e.Payload = 1
	p.pq.Push(r.ID, 1)
	return false
}
