package policy

import (
	"container/list"
	"math"
	"math/rand"

	"lfo/internal/che"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// AdaptSize (Berger, Sitaraman, Harchol-Balter, NSDI 2017 [12]) is LRU
// with probabilistic size-aware admission: a missed object of size s is
// admitted with probability e^{−s/c}. The size threshold c is re-tuned
// every tuning window by evaluating candidate values against a Che/Markov
// model of the observed request mix and keeping the candidate with the
// highest predicted object hit ratio.
type AdaptSize struct {
	store *sim.Store[*list.Element]
	lru   *list.List
	rng   *rand.Rand

	c float64 // current admission parameter

	// Tuning-window statistics.
	window     int
	windowSeen int
	stats      map[trace.ObjectID]*asStat
}

type asStat struct {
	count int
	size  int64
}

// NewAdaptSize returns an AdaptSize cache. The seed drives the admission
// coin flips.
func NewAdaptSize(capacity, seed int64) *AdaptSize {
	return &AdaptSize{
		store:  sim.NewStore[*list.Element](capacity),
		lru:    list.New(),
		rng:    rand.New(rand.NewSource(seed)),
		c:      float64(capacity) / 100, // permissive start; tuned online
		window: 50000,
		stats:  make(map[trace.ObjectID]*asStat, 4096),
	}
}

// Name implements sim.Policy.
func (p *AdaptSize) Name() string { return "AdaptSize" }

// retune evaluates candidate c values on the window's statistics with the
// Che approximation and adopts the OHR-maximizing candidate.
func (p *AdaptSize) retune() {
	objs := make([]che.Object, 0, len(p.stats))
	for _, s := range p.stats {
		objs = append(objs, che.Object{
			Rate: float64(s.count) / float64(p.windowSeen),
			Size: float64(s.size),
		})
	}
	if len(objs) == 0 {
		return
	}
	bestC, bestOHR := p.c, -1.0
	// Log-spaced candidates from 256 B to 4× capacity.
	for c := 256.0; c <= 4*float64(p.store.Capacity()); c *= 2 {
		for i := range objs {
			objs[i].PAdmit = math.Exp(-objs[i].Size / c)
		}
		ohr, _ := che.Ratios(objs, float64(p.store.Capacity()))
		if ohr > bestOHR {
			bestOHR, bestC = ohr, c
		}
	}
	p.c = bestC
	p.stats = make(map[trace.ObjectID]*asStat, len(p.stats))
	p.windowSeen = 0
}

// Request implements sim.Policy.
func (p *AdaptSize) Request(r trace.Request) bool {
	// Window statistics.
	st := p.stats[r.ID]
	if st == nil {
		st = &asStat{size: r.Size}
		p.stats[r.ID] = st
	}
	st.count++
	p.windowSeen++
	if p.windowSeen >= p.window {
		p.retune()
	}

	if e := p.store.Get(r.ID); e != nil {
		p.lru.MoveToFront(e.Payload)
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	// Probabilistic size-aware admission.
	if p.rng.Float64() >= math.Exp(-float64(r.Size)/p.c) {
		return false
	}
	for !p.store.Fits(r.Size) {
		tail := p.lru.Back()
		id := tail.Value.(trace.ObjectID)
		p.lru.Remove(tail)
		p.store.Remove(id)
	}
	e := p.store.Add(r.ID, r.Size)
	e.Payload = p.lru.PushFront(r.ID)
	return false
}
