package policy

import "lfo/internal/sim"

// links threads an intrusive doubly-linked list through store entry
// payloads, so recency/insertion-order policies need no per-request node
// allocation: the store recycles entries, and the list rides along.
type links struct {
	prev, next *sim.StoreEntry[links]
}

// entryList is the list head/tail over link-threaded store entries.
// Entries must be unlinked (remove) before sim.Store.Remove recycles them.
type entryList struct {
	head, tail *sim.StoreEntry[links]
}

func (l *entryList) pushFront(e *sim.StoreEntry[links]) {
	e.Payload.prev = nil
	e.Payload.next = l.head
	if l.head != nil {
		l.head.Payload.prev = e
	} else {
		l.tail = e
	}
	l.head = e
}

func (l *entryList) pushBack(e *sim.StoreEntry[links]) {
	e.Payload.next = nil
	e.Payload.prev = l.tail
	if l.tail != nil {
		l.tail.Payload.next = e
	} else {
		l.head = e
	}
	l.tail = e
}

func (l *entryList) remove(e *sim.StoreEntry[links]) {
	if e.Payload.prev != nil {
		e.Payload.prev.Payload.next = e.Payload.next
	} else {
		l.head = e.Payload.next
	}
	if e.Payload.next != nil {
		e.Payload.next.Payload.prev = e.Payload.prev
	} else {
		l.tail = e.Payload.prev
	}
	e.Payload.prev, e.Payload.next = nil, nil
}

func (l *entryList) moveToFront(e *sim.StoreEntry[links]) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}
