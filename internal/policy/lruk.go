package policy

import (
	"math"

	"lfo/internal/pq"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// LRUK implements the LRU-K replacement policy (O'Neil et al. [60]):
// evict the resident object whose K-th most recent reference is oldest
// (its "backward K-distance" is largest). Objects with fewer than K
// references have infinite backward K-distance and are evicted first.
//
// Reference history is retained for recently seen non-resident objects as
// well (the paper's HIST), bounded to historyLimit entries.
type LRUK struct {
	store    *sim.Store[struct{}]
	k        int
	pq       *pq.Queue // priority = K-th last reference time (min = oldest = evict)
	hist     map[trace.ObjectID][]int64
	histCap  int
	histFIFO []trace.ObjectID
	clock    int64
}

// NewLRUK returns an LRU-K cache (typically k=2).
func NewLRUK(capacity int64, k int) *LRUK {
	if k < 1 {
		panic("policy: LRU-K requires k >= 1")
	}
	return &LRUK{
		store:   sim.NewStore[struct{}](capacity),
		k:       k,
		pq:      pq.New(),
		hist:    make(map[trace.ObjectID][]int64, 1024),
		histCap: 1 << 20,
	}
}

// Name implements sim.Policy.
func (p *LRUK) Name() string { return "LRU-K" }

// kDistance returns the K-th most recent reference time, or -Inf when the
// object has fewer than K references (making it the preferred victim).
func (p *LRUK) kDistance(h []int64) float64 {
	if len(h) < p.k {
		return math.Inf(-1)
	}
	return float64(h[len(h)-p.k])
}

// touch appends a reference and trims history to K entries.
func (p *LRUK) touch(id trace.ObjectID) []int64 {
	h, seen := p.hist[id]
	h = append(h, p.clock)
	if len(h) > p.k {
		h = h[len(h)-p.k:]
	}
	p.hist[id] = h
	if !seen {
		p.histFIFO = append(p.histFIFO, id)
		for len(p.hist) > p.histCap && len(p.histFIFO) > 0 {
			old := p.histFIFO[0]
			p.histFIFO = p.histFIFO[1:]
			if !p.store.Has(old) { // never drop history of resident objects
				delete(p.hist, old)
			}
		}
	}
	return h
}

// Request implements sim.Policy.
func (p *LRUK) Request(r trace.Request) bool {
	p.clock++
	h := p.touch(r.ID)
	if p.store.Has(r.ID) {
		p.pq.Update(r.ID, p.kDistance(h))
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	for !p.store.Fits(r.Size) {
		id, _ := p.pq.PopMin()
		p.store.Remove(id)
	}
	p.store.Add(r.ID, r.Size)
	p.pq.Push(r.ID, p.kDistance(h))
	return false
}
