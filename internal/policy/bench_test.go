package policy

import (
	"testing"

	"lfo/internal/trace"
)

// BenchmarkGDSFRequest drives GDSF at steady-state eviction churn: every
// request is a miss that evicts one resident and admits the newcomer, the
// worst case for per-admission allocation. With the value-typed payload
// and the store/pq freelists this path is allocation-free; the budget is
// pinned at 0 in testdata/alloc_budgets.txt.
func BenchmarkGDSFRequest(b *testing.B) {
	const (
		capacity = 1 << 16 // 64 resident objects of 1 KiB
		objSize  = 1 << 10
		universe = 256 // 4x capacity: sequential cycling never hits
	)
	p := NewGDSF(capacity)
	reqs := make([]trace.Request, universe)
	for i := range reqs {
		reqs[i] = trace.Request{Time: int64(i), ID: trace.ObjectID(i), Size: objSize, Cost: 1}
	}
	// Warm through the whole universe twice so the store and pq freelists
	// and map buckets reach their steady-state footprint.
	for round := 0; round < 2; round++ {
		for _, r := range reqs {
			p.Request(r)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Request(reqs[i%universe])
	}
}
